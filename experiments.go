package agingcgra

import (
	"fmt"
	"strings"

	"agingcgra/internal/aging"
	"agingcgra/internal/area"
	"agingcgra/internal/core"
	"agingcgra/internal/dse"
	"agingcgra/internal/fabric"
	"agingcgra/internal/prog"
	"agingcgra/internal/report"
	"agingcgra/internal/stats"
)

// ExperimentOptions tunes the figure/table drivers.
type ExperimentOptions struct {
	// Size is the workload scale (default Small, the paper's setting).
	Size Size
	// Benchmarks restricts the suite (default: all ten).
	Benchmarks []string
	// Workers bounds design-point parallelism: 0 selects runtime.NumCPU,
	// 1 forces the serial path. Outputs are identical either way.
	Workers int
	// Allocator names the allocation strategy Fig6 sweeps with (default
	// "baseline", the paper's setting; "explore" sweeps the wear-aware
	// placement explorer instead). See AllocatorNames.
	Allocator string
}

// allocatorFactory lowers the named strategy onto the sweep engine; the
// name is validated up front so the factory itself cannot fail.
func (o ExperimentOptions) allocatorFactory() (dse.AllocatorFactory, error) {
	if o.Allocator == "" {
		return dse.BaselineFactory, nil
	}
	if _, err := NewAllocator(o.Allocator, fabric.NewGeometry(2, 16)); err != nil {
		return nil, err
	}
	name := o.Allocator
	return func(g fabric.Geometry) Allocator {
		a, err := NewAllocator(name, g)
		if err != nil {
			// Validated above; a geometry-dependent failure here must not
			// silently run the baseline under the requested label.
			panic(err)
		}
		return a
	}, nil
}

// dseOptions lowers the facade options onto the sweep engine, installing a
// fresh GPP-reference memo shared by every design point of one experiment.
func (o ExperimentOptions) dseOptions() dse.Options {
	return dse.Options{
		Size:       o.Size,
		Benchmarks: o.Benchmarks,
		Workers:    o.Workers,
		Refs:       dse.NewRefCache(),
	}
}

// Scenario identifies the paper's three designs of interest.
type Scenario = dse.Scenario

// The paper's scenarios.
const (
	BE = dse.BE
	BP = dse.BP
	BU = dse.BU
)

// ScenarioGeometries returns the geometries the paper selects: BE (L16,W2),
// BP (L32,W4) and BU (L32,W8).
func ScenarioGeometries() map[Scenario]Geometry { return dse.ScenarioGeometries() }

// ---------------------------------------------------------------------------
// Fig. 1 — motivational utilization heat map.

// Fig1Result is the motivational experiment: per-FU utilization of a 4x8
// fabric under traditional (greedy, utilization-unaware) mapping.
type Fig1Result struct {
	Suite *SuiteResult
	Util  *core.UtilizationMap
}

// Fig1 runs the motivational analysis on the paper's 4-row, 8-column 1D
// fabric with the baseline allocator.
func Fig1(opt ExperimentOptions) (*Fig1Result, error) {
	res, err := dse.RunSuite(fabric.NewGeometry(4, 8), dse.BaselineFactory, opt.dseOptions())
	if err != nil {
		return nil, err
	}
	return &Fig1Result{Suite: res, Util: res.Util}, nil
}

// Render draws the heat map in the figure's orientation.
func (r *Fig1Result) Render() string {
	var b strings.Builder
	b.WriteString("Fig. 1 - FU utilization, 4x8 fabric, traditional mapping\n")
	b.WriteString(report.Heatmap(r.Util))
	maxD, cell := r.Util.Max()
	fmt.Fprintf(&b, "max %.1f%% at (R%d,C%d), min %.1f%%, avg %.1f%%\n",
		100*maxD, cell.Row+1, cell.Col+1, 100*r.Util.Min(), 100*r.Util.Avg())
	return b.String()
}

// ---------------------------------------------------------------------------
// Fig. 6 — design-space exploration.

// Fig6Point is one design point of the exploration.
type Fig6Point struct {
	Geom      Geometry
	RelTime   float64
	Speedup   float64
	RelEnergy float64
	AvgUtil   float64
}

// Fig6Result is the full exploration plus the scenario selection.
type Fig6Result struct {
	Points    []Fig6Point
	Selected  map[Scenario]Geometry
	suiteByPt []*SuiteResult
}

// Fig6 sweeps the 12 fabric sizes with the configured allocator (default
// baseline, the paper's setting).
func Fig6(opt ExperimentOptions) (*Fig6Result, error) {
	factory, err := opt.allocatorFactory()
	if err != nil {
		return nil, err
	}
	results, err := dse.Sweep(nil, factory, opt.dseOptions())
	if err != nil {
		return nil, err
	}
	out := &Fig6Result{Selected: make(map[Scenario]Geometry)}
	for _, r := range results {
		out.Points = append(out.Points, Fig6Point{
			Geom:      r.Geom,
			RelTime:   r.RelTime(),
			Speedup:   r.Speedup(),
			RelEnergy: r.RelEnergy(),
			AvgUtil:   r.AvgUtil(),
		})
	}
	out.suiteByPt = results
	for sc, res := range dse.SelectScenarios(results) {
		out.Selected[sc] = res.Geom
	}
	return out, nil
}

// Render prints the scatter data as a table.
func (r *Fig6Result) Render() string {
	tab := &report.Table{Header: []string{"design", "exec time [x]", "energy [x]", "speedup", "occupation"}}
	for _, p := range r.Points {
		tab.AddRow(p.Geom.String(),
			fmt.Sprintf("%.3f", p.RelTime),
			fmt.Sprintf("%.3f", p.RelEnergy),
			fmt.Sprintf("%.2fx", p.Speedup),
			fmt.Sprintf("%.1f%%", 100*p.AvgUtil))
	}
	var b strings.Builder
	b.WriteString("Fig. 6 - design-space exploration (baseline allocation)\n")
	b.WriteString(tab.String())
	for _, sc := range []Scenario{BE, BP, BU} {
		if g, ok := r.Selected[sc]; ok {
			fmt.Fprintf(&b, "selected %s: %v\n", sc, g)
		}
	}
	return b.String()
}

// ---------------------------------------------------------------------------
// Fig. 7 — BE utilization, baseline vs proposed.

// Fig7Result compares per-FU utilization under both allocators on the BE
// design.
type Fig7Result struct {
	Geom     Geometry
	Baseline *SuiteResult
	Proposed *SuiteResult
}

// Fig7 runs the BE scenario with both allocators.
func Fig7(opt ExperimentOptions) (*Fig7Result, error) {
	cmps, err := scenarioComparisons([]Geometry{dse.ScenarioGeometries()[BE]}, opt)
	if err != nil {
		return nil, err
	}
	return cmps[0], nil
}

// scenarioComparisons runs every geometry with both allocators — one
// baseline/proposed point pair per geometry — through the parallel sweep
// engine, sharing one GPP-reference memo across all the points.
func scenarioComparisons(geoms []Geometry, opt ExperimentOptions) ([]*Fig7Result, error) {
	points := make([]dse.Point, 0, 2*len(geoms))
	for _, g := range geoms {
		points = append(points,
			dse.Point{Geom: g, Factory: dse.BaselineFactory},
			dse.Point{Geom: g, Factory: dse.ProposedFactory})
	}
	results, err := dse.RunPoints(points, opt.dseOptions())
	if err != nil {
		return nil, err
	}
	out := make([]*Fig7Result, len(geoms))
	for i, g := range geoms {
		out[i] = &Fig7Result{Geom: g, Baseline: results[2*i], Proposed: results[2*i+1]}
	}
	return out, nil
}

// Render stacks the two heat maps like the figure.
func (r *Fig7Result) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Fig. 7 - FU utilization on %v\n", r.Geom)
	b.WriteString(report.HeatmapComparison(
		"Baseline allocation:", r.Baseline.Util,
		"Proposed (utilization-aware) allocation:", r.Proposed.Util))
	bMax, _ := r.Baseline.Util.Max()
	pMax, _ := r.Proposed.Util.Max()
	fmt.Fprintf(&b, "max utilization: baseline %.1f%% -> proposed %.1f%%\n", 100*bMax, 100*pMax)
	return b.String()
}

// ---------------------------------------------------------------------------
// Fig. 8 — utilization PDFs and delay-over-time curves.

// Fig8Series is one scenario's worth of Fig. 8 data.
type Fig8Series struct {
	Scenario Scenario
	Geom     Geometry

	BaselineDuty []float64
	ProposedDuty []float64

	BaselineWorst float64
	ProposedWorst float64

	// Delay degradation sampled quarterly over the horizon, per allocator.
	BaselineDelay []aging.DelayPoint
	ProposedDelay []aging.DelayPoint
}

// Fig8Result covers all three scenarios.
type Fig8Result struct {
	Series []Fig8Series
	// HorizonYears is the time axis length.
	HorizonYears int
}

// Fig8 runs all scenarios with both allocators and evaluates the NBTI
// delay model on the worst-case utilizations.
func Fig8(opt ExperimentOptions) (*Fig8Result, error) {
	model := aging.NewModel()
	const horizon = 10
	out := &Fig8Result{HorizonYears: horizon}
	geoms := dse.ScenarioGeometries()
	scenarios := []Scenario{BE, BP, BU}
	cmps, err := scenarioComparisons(scenarioGeomList(scenarios, geoms), opt)
	if err != nil {
		return nil, err
	}
	for i, sc := range scenarios {
		cmp := cmps[i]
		bWorst, _ := cmp.Baseline.Util.Max()
		pWorst, _ := cmp.Proposed.Util.Max()
		out.Series = append(out.Series, Fig8Series{
			Scenario:      sc,
			Geom:          geoms[sc],
			BaselineDuty:  append([]float64(nil), cmp.Baseline.Util.Duty...),
			ProposedDuty:  append([]float64(nil), cmp.Proposed.Util.Duty...),
			BaselineWorst: bWorst,
			ProposedWorst: pWorst,
			BaselineDelay: model.DelaySeries(bWorst, horizon, 4),
			ProposedDelay: model.DelaySeries(pWorst, horizon, 4),
		})
	}
	return out, nil
}

// Render prints the utilization PDFs and compact delay curves.
func (r *Fig8Result) Render() string {
	var b strings.Builder
	b.WriteString("Fig. 8 - utilization distributions and NBTI delay increase\n")
	for _, s := range r.Series {
		fmt.Fprintf(&b, "\n[%s %v]\n", s.Scenario, s.Geom)
		b.WriteString(report.UtilizationPDF("  baseline utilization PDF", s.BaselineDuty, 10))
		b.WriteString(report.UtilizationPDF("  proposed utilization PDF", s.ProposedDuty, 10))
		fmt.Fprintf(&b, "  delay increase over %d years (baseline): %s (%.1f%% at end)\n",
			r.HorizonYears, report.Sparkline(delayValues(s.BaselineDelay)),
			100*s.BaselineDelay[len(s.BaselineDelay)-1].Increase)
		fmt.Fprintf(&b, "  delay increase over %d years (proposed): %s (%.1f%% at end)\n",
			r.HorizonYears, report.Sparkline(delayValues(s.ProposedDelay)),
			100*s.ProposedDelay[len(s.ProposedDelay)-1].Increase)
	}
	return b.String()
}

func scenarioGeomList(scs []Scenario, geoms map[Scenario]Geometry) []Geometry {
	out := make([]Geometry, len(scs))
	for i, sc := range scs {
		out[i] = geoms[sc]
	}
	return out
}

func delayValues(pts []aging.DelayPoint) []float64 {
	out := make([]float64, len(pts))
	for i, p := range pts {
		out[i] = p.Increase
	}
	return out
}

// ---------------------------------------------------------------------------
// Table I — utilization and lifetime improvements.

// Table1Row is one scenario row of Table I.
type Table1Row struct {
	Scenario      Scenario
	Geom          Geometry
	AvgUtil       float64
	BaselineWorst float64
	ProposedWorst float64
	// LifetimeImprovement is baseline-worst / proposed-worst, per Eq. 1.
	LifetimeImprovement float64
	// BaselineLifetimeYears and ProposedLifetimeYears are the 10%-delay
	// end-of-life estimates.
	BaselineLifetimeYears float64
	ProposedLifetimeYears float64
	// PerfOverhead is the proposed allocator's execution-time overhead.
	PerfOverhead float64
}

// Table1Result is the full Table I.
type Table1Result struct {
	Rows []Table1Row
}

// Table1 reproduces the paper's Table I on the three scenarios.
func Table1(opt ExperimentOptions) (*Table1Result, error) {
	model := aging.NewModel()
	out := &Table1Result{}
	geoms := dse.ScenarioGeometries()
	scenarios := []Scenario{BE, BP, BU}
	cmps, err := scenarioComparisons(scenarioGeomList(scenarios, geoms), opt)
	if err != nil {
		return nil, err
	}
	for i, sc := range scenarios {
		cmp := cmps[i]
		bWorst, _ := cmp.Baseline.Util.Max()
		pWorst, _ := cmp.Proposed.Util.Max()
		out.Rows = append(out.Rows, Table1Row{
			Scenario:              sc,
			Geom:                  geoms[sc],
			AvgUtil:               cmp.Baseline.Util.Avg(),
			BaselineWorst:         bWorst,
			ProposedWorst:         pWorst,
			LifetimeImprovement:   model.Improvement(bWorst, pWorst),
			BaselineLifetimeYears: model.Lifetime(bWorst),
			ProposedLifetimeYears: model.Lifetime(pWorst),
			PerfOverhead:          float64(cmp.Proposed.TRCycles)/float64(cmp.Baseline.TRCycles) - 1,
		})
	}
	return out, nil
}

// Render prints Table I.
func (r *Table1Result) Render() string {
	tab := &report.Table{Header: []string{
		"Scenario", "Avg util", "Baseline worst", "Proposed worst",
		"Lifetime improv.", "Life (base)", "Life (prop)", "Perf overhead",
	}}
	for _, row := range r.Rows {
		tab.AddRow(
			fmt.Sprintf("%s %v", row.Scenario, row.Geom),
			fmt.Sprintf("%.1f%%", 100*row.AvgUtil),
			fmt.Sprintf("%.1f%%", 100*row.BaselineWorst),
			fmt.Sprintf("%.1f%%", 100*row.ProposedWorst),
			fmt.Sprintf("%.2fx", row.LifetimeImprovement),
			fmt.Sprintf("%.1fy", row.BaselineLifetimeYears),
			fmt.Sprintf("%.1fy", row.ProposedLifetimeYears),
			fmt.Sprintf("%.2f%%", 100*row.PerfOverhead),
		)
	}
	return "Table I - utilization and lifetime improvements\n" + tab.String()
}

// ---------------------------------------------------------------------------
// Table II — area overhead.

// Table2Result is the area comparison on the BE design.
type Table2Result struct {
	Overhead area.Overhead
	// CriticalPathBasePs and CriticalPathModPs are the single-column data
	// critical paths.
	CriticalPathBasePs float64
	CriticalPathModPs  float64
	// Movement itemises the added hardware.
	Movement area.Breakdown
}

// Table2 evaluates the structural area model on the BE design.
func Table2() *Table2Result {
	m := area.NewModel()
	g := dse.ScenarioGeometries()[BE]
	return &Table2Result{
		Overhead:           m.Overhead(g),
		CriticalPathBasePs: m.ColumnCriticalPathPs(g, false),
		CriticalPathModPs:  m.ColumnCriticalPathPs(g, true),
		Movement:           m.MovementHardware(g),
	}
}

// Render prints Table II plus the latency check.
func (r *Table2Result) Render() string {
	o := r.Overhead
	tab := &report.Table{Header: []string{"", "Baseline", "Modified"}}
	tab.AddRow("Area [um2]",
		fmt.Sprintf("%.0f", o.BaselineArea),
		fmt.Sprintf("%.0f (%+.2f%%)", o.ModifiedArea, 100*o.AreaIncrease()))
	tab.AddRow("# Cells",
		fmt.Sprintf("%d", o.BaselineCells),
		fmt.Sprintf("%d (%+.2f%%)", o.ModifiedCells, 100*o.CellsIncrease()))
	tab.AddRow("Column critical path [ps]",
		fmt.Sprintf("%.0f", r.CriticalPathBasePs),
		fmt.Sprintf("%.0f", r.CriticalPathModPs))
	var b strings.Builder
	fmt.Fprintf(&b, "Table II - CGRA area overhead (%v)\n", o.Geom)
	b.WriteString(tab.String())
	b.WriteString("movement hardware:\n")
	for _, c := range r.Movement.Components {
		fmt.Fprintf(&b, "  %-24s %7d cells %9.0f um2\n", c.Name, c.Cells, c.Area)
	}
	return b.String()
}

// ---------------------------------------------------------------------------
// Convenience: suite-wide utilization flatness metrics for ablations.

// FlatnessMetrics summarises how evenly a run spread its stress.
type FlatnessMetrics struct {
	Max  float64
	Avg  float64
	CoV  float64
	Gini float64
}

// Flatness computes dispersion metrics over a suite result's duty map.
func Flatness(s *SuiteResult) FlatnessMetrics {
	duty := s.Util.Duty
	m, _ := s.Util.Max()
	return FlatnessMetrics{
		Max:  m,
		Avg:  s.Util.Avg(),
		CoV:  stats.CoV(duty),
		Gini: stats.Gini(duty),
	}
}

// SuiteOnce runs the suite for an arbitrary geometry/allocator pair; the
// ablation benches build on it. The allocator name is validated up front so
// an unknown name fails with an error instead of panicking mid-sweep.
func SuiteOnce(g Geometry, allocator string, opt ExperimentOptions) (*SuiteResult, error) {
	if _, err := NewAllocator(allocator, g); err != nil {
		return nil, err
	}
	factory := func(gg fabric.Geometry) (a Allocator) {
		a, err := NewAllocator(allocator, gg)
		if err != nil {
			panic(err) // validated above; geometry-dependent failure only
		}
		return a
	}
	return dse.RunSuite(g, factory, opt.dseOptions())
}

// ValidateSuiteSmall is a convenience used by tests and the repro command:
// it checks every benchmark still produces its golden checksum at the
// given size on the plain interpreter.
func ValidateSuiteSmall(size Size) error {
	for _, b := range prog.All() {
		if _, _, err := b.RunReference(size); err != nil {
			return err
		}
	}
	return nil
}
