package agingcgra

import "testing"

// faultCfg is the shared BE/crc32 recovery scenario: an accelerated fault
// ramp so intermittent faults (and hard deaths) land well inside the
// horizon, with the oracle hidden — placement consumes the runtime's
// observed health map only.
func faultCfg() LifetimeConfig {
	return LifetimeConfig{
		Allocator:  "baseline",
		Benchmarks: []string{"crc32"},
		EpochYears: 0.5,
		MaxYears:   8,
		Seed:       7,
		Faults:     &FaultModel{IntermittentAt: 0.4, MaxProb: 0.05},
		Recovery:   &RecoveryPolicy{CheckEvery: 1},
	}
}

// TestFaultRecoveryIntegration pins the PR 6 recovery story end to end on
// the BE design: with every offload verified (CheckEvery=1) no corruption
// escapes silently, faults are actually injected and detected, and
// probation recovers quarantined false positives within the horizon.
func TestFaultRecoveryIntegration(t *testing.T) {
	res, err := RunLifetime(faultCfg())
	if err != nil {
		t.Fatal(err)
	}
	rec := res.Recovery
	if rec == nil {
		t.Fatal("recovery-enabled run must carry a RecoveryReport")
	}
	st := rec.Stats
	if st.FaultedExecs == 0 {
		t.Fatal("scenario injected no faults; the story is vacuous")
	}
	if st.DetectedFaults == 0 {
		t.Error("checker detected nothing despite faults")
	}
	if st.SilentEscapes != 0 {
		t.Errorf("CheckEvery=1 committed %d silent escapes; full verification must catch every fault", st.SilentEscapes)
	}
	if st.Quarantines == 0 {
		t.Error("repeated detections should quarantine suspect cells")
	}
	// The checker blames whole footprints, so healthy neighbours get
	// quarantined alongside faulty cells — and probation must recover them.
	if st.FalsePositiveQuarantines == 0 {
		t.Error("whole-footprint blame should produce false-positive quarantines")
	}
	if st.Reinstatements == 0 {
		t.Error("probation should reinstate quarantined false positives")
	}
}

// TestRecoveryBeatsFailStop compares the recovery layer against the
// no-recovery baseline (fail-stop: first detection routes everything to the
// GPP forever) on the identical scenario: retry + quarantine + probation
// must sustain strictly more on-fabric throughput across the horizon.
func TestRecoveryBeatsFailStop(t *testing.T) {
	recovery, err := RunLifetime(faultCfg())
	if err != nil {
		t.Fatal(err)
	}
	failStopCfg := faultCfg()
	failStopCfg.Recovery = &RecoveryPolicy{CheckEvery: 1, FailStop: true}
	failStop, err := RunLifetime(failStopCfg)
	if err != nil {
		t.Fatal(err)
	}
	offloads := func(r *LifetimeResult) uint64 {
		var total uint64
		for _, rec := range r.Timeline {
			total += rec.Offloads
		}
		return total
	}
	ro, fo := offloads(recovery), offloads(failStop)
	if ro <= fo {
		t.Errorf("recovery sustained %d offloads, fail-stop %d; recovery must be strictly higher", ro, fo)
	}
	if failStop.Recovery.Stats.DetectedFaults == 0 {
		t.Error("fail-stop run never latched; comparison is vacuous")
	}
}

// TestRecoveryWithoutFaultsDetectsHardDeaths runs recovery with no
// intermittent-fault model: hard end-of-life deaths are the only fault
// source, and the runtime must still discover them (deterministic faults on
// dead footprints) with measurable detection latency instead of reading the
// oracle's instant alive→dead flip.
func TestRecoveryWithoutFaultsDetectsHardDeaths(t *testing.T) {
	cfg := faultCfg()
	cfg.Faults = nil
	cfg.MaxYears = 10
	res, err := RunLifetime(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rec := res.Recovery
	if rec == nil {
		t.Fatal("recovery-enabled run must carry a RecoveryReport")
	}
	if res.TotalDeaths == 0 {
		t.Fatal("horizon too short: no hard deaths to detect")
	}
	if rec.DetectedDeaths == 0 {
		t.Error("hard deaths were never discovered through detection")
	}
	if rec.FalseNegatives != 0 {
		t.Errorf("%d dead cells never quarantined: deterministic dead-footprint faults must surface them", rec.FalseNegatives)
	}
	if rec.DetectedDeaths > 0 && rec.MeanDetectionLatencyYears <= 0 {
		t.Error("detection latency should be positive: discovery takes at least part of an epoch")
	}
}
