package agingcgra

import (
	"testing"

	"agingcgra/internal/alloc"
	"agingcgra/internal/dse"
	"agingcgra/internal/fabric"
)

// The benchmarks below regenerate every table and figure of the paper's
// evaluation at the Small (paper-equivalent) workload scale, reporting the
// headline numbers as benchmark metrics. Run with:
//
//	go test -bench=. -benchmem
//
// Ablation benches cover the design choices called out in DESIGN.md.

func benchOpts() ExperimentOptions { return ExperimentOptions{Size: Small} }

// BenchmarkFig1UtilizationHeatmap regenerates the motivational heat map:
// traditional mapping on a 4x8 fabric.
func BenchmarkFig1UtilizationHeatmap(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := Fig1(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		maxD, _ := r.Util.Max()
		b.ReportMetric(100*maxD, "maxUtil%")
		b.ReportMetric(100*r.Util.Min(), "minUtil%")
		b.ReportMetric(100*r.Util.Avg(), "avgUtil%")
	}
}

// BenchmarkFig6DesignSpace regenerates the 12-point design-space
// exploration with relative time, energy and occupancy, using the parallel
// sweep engine (worker pool over design points, memoized GPP references).
func BenchmarkFig6DesignSpace(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := Fig6(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		for _, p := range r.Points {
			if p.Geom == NewGeometry(2, 16) {
				b.ReportMetric(p.Speedup, "BEspeedup")
				b.ReportMetric(p.RelEnergy, "BErelEnergy")
			}
			if p.Geom == NewGeometry(8, 32) {
				b.ReportMetric(p.RelEnergy, "BUrelEnergy")
			}
		}
	}
}

// BenchmarkFig6DesignSpaceSerial pins the same sweep to a single worker:
// the parallel/serial ratio of these two benchmarks is the sweep engine's
// wall-clock speedup on this machine (the outputs are identical).
func BenchmarkFig6DesignSpaceSerial(b *testing.B) {
	for i := 0; i < b.N; i++ {
		opt := benchOpts()
		opt.Workers = 1
		if _, err := Fig6(opt); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig7UtilizationBE regenerates the BE heat-map comparison:
// baseline vs utilization-aware allocation.
func BenchmarkFig7UtilizationBE(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := Fig7(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		bMax, _ := r.Baseline.Util.Max()
		pMax, _ := r.Proposed.Util.Max()
		b.ReportMetric(100*bMax, "baseWorst%")
		b.ReportMetric(100*pMax, "propWorst%")
	}
}

// BenchmarkFig8UtilizationPDF regenerates the utilization distributions of
// all three scenarios under both allocators.
func BenchmarkFig8UtilizationPDF(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := Fig8(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(100*r.Series[0].ProposedWorst, "BEpropWorst%")
		b.ReportMetric(100*r.Series[2].ProposedWorst, "BUpropWorst%")
	}
}

// BenchmarkFig8DelayOverTime regenerates the NBTI delay-increase curves
// (the lower panel of Fig. 8) from the measured worst-case utilizations.
func BenchmarkFig8DelayOverTime(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := Fig8(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		s := r.Series[0]
		last := len(s.BaselineDelay) - 1
		b.ReportMetric(100*s.BaselineDelay[last].Increase, "BEbaseDelay10y%")
		b.ReportMetric(100*s.ProposedDelay[last].Increase, "BEpropDelay10y%")
	}
}

// BenchmarkTable1Lifetime regenerates Table I: worst-case utilizations and
// the lifetime improvements of the three scenarios.
func BenchmarkTable1Lifetime(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := Table1(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.Rows[0].LifetimeImprovement, "BEimprove")
		b.ReportMetric(r.Rows[1].LifetimeImprovement, "BPimprove")
		b.ReportMetric(r.Rows[2].LifetimeImprovement, "BUimprove")
	}
}

// BenchmarkTable2Area regenerates Table II: the area overhead of the
// movement hardware on the BE design.
func BenchmarkTable2Area(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := Table2()
		b.ReportMetric(100*r.Overhead.AreaIncrease(), "areaOverhead%")
		b.ReportMetric(100*r.Overhead.CellsIncrease(), "cellsOverhead%")
		b.ReportMetric(r.CriticalPathBasePs, "critPathPs")
	}
}

// ---------------------------------------------------------------------------
// Ablations (DESIGN.md section 5).

func ablationFlatness(b *testing.B, allocator string) FlatnessMetrics {
	b.Helper()
	res, err := SuiteOnce(NewGeometry(2, 16), allocator, benchOpts())
	if err != nil {
		b.Fatal(err)
	}
	return Flatness(res)
}

// BenchmarkAblationMovementPatterns compares the paper's snake pattern
// against the alternative full- and partial-coverage patterns.
func BenchmarkAblationMovementPatterns(b *testing.B) {
	patterns := []string{
		"utilization-aware",
		"utilization-aware-rowmajor",
		"utilization-aware-diagonal",
		"utilization-aware-shuffled",
		"utilization-aware-horizontal",
		"utilization-aware-vertical",
	}
	for _, p := range patterns {
		p := p
		b.Run(p, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				f := ablationFlatness(b, p)
				b.ReportMetric(100*f.Max, "worst%")
				b.ReportMetric(f.CoV, "cov")
			}
		})
	}
}

// BenchmarkAblationPivotScope compares one global pivot against
// per-configuration pivots.
func BenchmarkAblationPivotScope(b *testing.B) {
	g := fabric.NewGeometry(2, 16)
	cases := []struct {
		name    string
		factory dse.AllocatorFactory
	}{
		{"global", func(gg fabric.Geometry) alloc.Allocator {
			return alloc.NewUtilizationAware(gg)
		}},
		{"per-config", func(gg fabric.Geometry) alloc.Allocator {
			return alloc.NewUtilizationAware(gg, alloc.WithPerConfigPivot())
		}},
	}
	for _, c := range cases {
		c := c
		b.Run(c.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res, err := dse.RunSuite(g, c.factory, dse.Options{Size: Small})
				if err != nil {
					b.Fatal(err)
				}
				m, _ := res.Util.Max()
				b.ReportMetric(100*m, "worst%")
			}
		})
	}
}

// BenchmarkAblationMovementPeriod varies how often the pivot advances.
func BenchmarkAblationMovementPeriod(b *testing.B) {
	g := fabric.NewGeometry(2, 16)
	for _, period := range []uint64{1, 4, 16, 64} {
		period := period
		b.Run(benchName("period", period), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				factory := func(gg fabric.Geometry) alloc.Allocator {
					return alloc.NewUtilizationAware(gg, alloc.WithPeriod(period))
				}
				res, err := dse.RunSuite(g, factory, dse.Options{Size: Small})
				if err != nil {
					b.Fatal(err)
				}
				m, _ := res.Util.Max()
				b.ReportMetric(100*m, "worst%")
			}
		})
	}
}

func benchName(prefix string, v uint64) string {
	return prefix + "=" + string('0'+rune(v/10)) + string('0'+rune(v%10))
}

// BenchmarkAblationHealthAware compares the future-work stress-feedback
// allocator against blind rotation.
func BenchmarkAblationHealthAware(b *testing.B) {
	for _, name := range []string{"utilization-aware", "health-aware"} {
		name := name
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				f := ablationFlatness(b, name)
				b.ReportMetric(100*f.Max, "worst%")
				b.ReportMetric(f.Gini, "gini")
			}
		})
	}
}

// BenchmarkAblationExposedReconfig quantifies what the wavefront
// configuration broadcast buys: with the overlap disabled, every movement
// costs visible reconfiguration cycles.
func BenchmarkAblationExposedReconfig(b *testing.B) {
	g := fabric.NewGeometry(2, 16)
	for _, exposed := range []bool{false, true} {
		exposed := exposed
		name := "wavefront"
		if exposed {
			name = "exposed"
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				factory := func(gg fabric.Geometry) alloc.Allocator {
					return alloc.NewUtilizationAware(gg)
				}
				var eng dse.Options
				eng.Size = Small
				eng.Engine.ExposeReconfig = exposed
				res, err := dse.RunSuite(g, factory, eng)
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(res.Speedup(), "speedup")
			}
		})
	}
}

// BenchmarkEngineThroughput measures raw co-simulation speed (instructions
// per second) on one benchmark, the practical cost of using the simulator.
func BenchmarkEngineThroughput(b *testing.B) {
	s, err := NewSystem(Config{Allocator: "utilization-aware"})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	var instrs uint64
	for i := 0; i < b.N; i++ {
		res, err := s.RunBenchmark("crc32", Small)
		if err != nil {
			b.Fatal(err)
		}
		instrs += res.Report.TotalInstrs
	}
	b.ReportMetric(float64(instrs)/b.Elapsed().Seconds(), "instrs/s")
}
