package agingcgra

import (
	"strings"
	"testing"
)

func TestNewSystemDefaults(t *testing.T) {
	s, err := NewSystem(Config{})
	if err != nil {
		t.Fatal(err)
	}
	g := s.Geometry()
	if g.Rows != 2 || g.Cols != 16 {
		t.Errorf("default geometry %v, want the BE design (2x16)", g)
	}
}

func TestNewSystemValidation(t *testing.T) {
	if _, err := NewSystem(Config{Rows: -1}); err == nil {
		t.Error("negative rows accepted")
	}
	if _, err := NewSystem(Config{Allocator: "nope"}); err == nil {
		t.Error("unknown allocator accepted")
	}
}

func TestAllocatorRegistry(t *testing.T) {
	g := NewGeometry(2, 8)
	for _, name := range AllocatorNames() {
		a, err := NewAllocator(name, g)
		if err != nil || a == nil {
			t.Errorf("NewAllocator(%q): %v", name, err)
		}
	}
	if _, err := NewAllocator("bogus", g); err == nil {
		t.Error("unknown name accepted")
	}
	// Aliases.
	for _, alias := range []string{"", "proposed", "snake"} {
		if _, err := NewAllocator(alias, g); err != nil {
			t.Errorf("alias %q rejected: %v", alias, err)
		}
	}
}

func TestBenchmarksList(t *testing.T) {
	names := Benchmarks()
	if len(names) != 10 {
		t.Fatalf("suite has %d benchmarks, want 10", len(names))
	}
	if names[0] != "bitcount" || names[9] != "susan_smoothing" {
		t.Errorf("unexpected order: %v", names)
	}
}

func TestRunBenchmarkEndToEnd(t *testing.T) {
	s, err := NewSystem(Config{Allocator: "utilization-aware"})
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.RunBenchmark("crc32", Tiny)
	if err != nil {
		t.Fatal(err)
	}
	if res.Speedup() <= 1 {
		t.Errorf("speedup = %v, want > 1", res.Speedup())
	}
	if res.Report.Offloads == 0 {
		t.Error("no offloads")
	}
	if res.RelEnergy <= 0 {
		t.Error("no energy computed")
	}
}

func TestRunBenchmarkUnknown(t *testing.T) {
	s, _ := NewSystem(Config{})
	if _, err := s.RunBenchmark("nope", Tiny); err == nil {
		t.Error("unknown benchmark accepted")
	}
}

func TestRunSuiteTiny(t *testing.T) {
	s, err := NewSystem(Config{Rows: 2, Cols: 16, Allocator: "baseline"})
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.RunSuite(Tiny)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.PerBench) != 10 {
		t.Errorf("suite ran %d benchmarks", len(res.PerBench))
	}
	if res.Speedup() <= 1 {
		t.Errorf("suite speedup = %v", res.Speedup())
	}
}

func TestFig1Tiny(t *testing.T) {
	r, err := Fig1(ExperimentOptions{Size: Tiny})
	if err != nil {
		t.Fatal(err)
	}
	if r.Util.Geom.Rows != 4 || r.Util.Geom.Cols != 8 {
		t.Errorf("Fig1 geometry %v, want 4x8", r.Util.Geom)
	}
	// The motivational gradient: top-left hotter than bottom-right.
	if r.Util.At(0, 0) <= r.Util.At(3, 7) {
		t.Errorf("no corner bias: (0,0)=%v (3,7)=%v", r.Util.At(0, 0), r.Util.At(3, 7))
	}
	out := r.Render()
	if !strings.Contains(out, "Fig. 1") || !strings.Contains(out, "R4") {
		t.Error("bad rendering")
	}
}

func TestFig7AndTable1Tiny(t *testing.T) {
	f7, err := Fig7(ExperimentOptions{Size: Tiny})
	if err != nil {
		t.Fatal(err)
	}
	bMax, _ := f7.Baseline.Util.Max()
	pMax, _ := f7.Proposed.Util.Max()
	if pMax >= bMax {
		t.Errorf("proposed worst %v not below baseline worst %v", pMax, bMax)
	}
	if !strings.Contains(f7.Render(), "Fig. 7") {
		t.Error("bad rendering")
	}

	t1, err := Table1(ExperimentOptions{Size: Tiny})
	if err != nil {
		t.Fatal(err)
	}
	if len(t1.Rows) != 3 {
		t.Fatalf("Table1 rows = %d", len(t1.Rows))
	}
	// Lifetime improvement must grow with fabric size (BE < BP < BU).
	if !(t1.Rows[0].LifetimeImprovement < t1.Rows[1].LifetimeImprovement &&
		t1.Rows[1].LifetimeImprovement < t1.Rows[2].LifetimeImprovement) {
		t.Errorf("improvements not monotone: %+v", t1.Rows)
	}
	// Performance overhead must be negligible everywhere.
	for _, row := range t1.Rows {
		if row.PerfOverhead > 0.02 {
			t.Errorf("%s: perf overhead %.2f%% > 2%%", row.Scenario, 100*row.PerfOverhead)
		}
	}
	if !strings.Contains(t1.Render(), "Table I") {
		t.Error("bad rendering")
	}
}

func TestFig8Tiny(t *testing.T) {
	r, err := Fig8(ExperimentOptions{Size: Tiny})
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Series) != 3 {
		t.Fatalf("series = %d", len(r.Series))
	}
	for _, s := range r.Series {
		if s.ProposedWorst >= s.BaselineWorst {
			t.Errorf("%s: rotation did not reduce worst util", s.Scenario)
		}
		// The delay curves must reflect the utilization ordering.
		last := len(s.BaselineDelay) - 1
		if s.ProposedDelay[last].Increase >= s.BaselineDelay[last].Increase {
			t.Errorf("%s: proposed delay curve not below baseline", s.Scenario)
		}
	}
	if !strings.Contains(r.Render(), "Fig. 8") {
		t.Error("bad rendering")
	}
}

func TestTable2(t *testing.T) {
	r := Table2()
	if r.Overhead.AreaIncrease() <= 0 || r.Overhead.AreaIncrease() >= 0.10 {
		t.Errorf("area increase %.2f%% outside (0,10%%)", 100*r.Overhead.AreaIncrease())
	}
	if r.CriticalPathBasePs != r.CriticalPathModPs {
		t.Error("movement hardware must not change the critical path")
	}
	out := r.Render()
	if !strings.Contains(out, "Table II") || !strings.Contains(out, "wraparound-muxes") {
		t.Error("bad rendering")
	}
}

func TestFlatness(t *testing.T) {
	base, err := SuiteOnce(NewGeometry(2, 16), "baseline", ExperimentOptions{Size: Tiny})
	if err != nil {
		t.Fatal(err)
	}
	rot, err := SuiteOnce(NewGeometry(2, 16), "utilization-aware", ExperimentOptions{Size: Tiny})
	if err != nil {
		t.Fatal(err)
	}
	fb, fr := Flatness(base), Flatness(rot)
	if fr.CoV >= fb.CoV {
		t.Errorf("rotation did not reduce CoV: %v vs %v", fr.CoV, fb.CoV)
	}
	if fr.Gini >= fb.Gini {
		t.Errorf("rotation did not reduce Gini: %v vs %v", fr.Gini, fb.Gini)
	}
}

func TestValidateSuite(t *testing.T) {
	if err := ValidateSuiteSmall(Tiny); err != nil {
		t.Fatal(err)
	}
}

func TestFig6TinySubset(t *testing.T) {
	// Full 12-point sweep at Tiny with a subset for test speed.
	r, err := Fig6(ExperimentOptions{Size: Tiny, Benchmarks: []string{"crc32", "sha", "qsort"}})
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Points) != 12 {
		t.Fatalf("points = %d, want 12", len(r.Points))
	}
	for _, p := range r.Points {
		if p.RelTime >= 1 {
			t.Errorf("%v: no speedup (relTime %v)", p.Geom, p.RelTime)
		}
	}
	if !strings.Contains(r.Render(), "Fig. 6") {
		t.Error("bad rendering")
	}
	if len(r.Selected) != 3 {
		t.Errorf("selected %d scenarios", len(r.Selected))
	}
}
