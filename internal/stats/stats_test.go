package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{1, 2, 3, 4})
	if s.N != 4 || s.Mean != 2.5 || s.Min != 1 || s.Max != 4 {
		t.Errorf("summary = %+v", s)
	}
	if math.Abs(s.StdDev-math.Sqrt(1.25)) > 1e-12 {
		t.Errorf("stddev = %v", s.StdDev)
	}
	if s.Median != 2.5 {
		t.Errorf("median = %v", s.Median)
	}
	odd := Summarize([]float64{5, 1, 3})
	if odd.Median != 3 {
		t.Errorf("odd median = %v", odd.Median)
	}
	if z := Summarize(nil); z.N != 0 {
		t.Error("empty input should give zero summary")
	}
}

func TestCoV(t *testing.T) {
	if CoV([]float64{2, 2, 2}) != 0 {
		t.Error("constant data must have zero CoV")
	}
	if CoV([]float64{0, 0}) != 0 {
		t.Error("zero mean must not divide by zero")
	}
	if CoV([]float64{1, 3}) <= 0 {
		t.Error("dispersed data must have positive CoV")
	}
}

func TestGini(t *testing.T) {
	if g := Gini([]float64{1, 1, 1, 1}); math.Abs(g) > 1e-12 {
		t.Errorf("uniform gini = %v, want 0", g)
	}
	// All mass on one element of n: gini = (n-1)/n.
	if g := Gini([]float64{0, 0, 0, 8}); math.Abs(g-0.75) > 1e-12 {
		t.Errorf("concentrated gini = %v, want 0.75", g)
	}
	if Gini(nil) != 0 || Gini([]float64{0, 0}) != 0 {
		t.Error("degenerate inputs must give 0")
	}
	// Permutation invariance.
	a := Gini([]float64{1, 5, 2, 9})
	b := Gini([]float64{9, 2, 5, 1})
	if math.Abs(a-b) > 1e-12 {
		t.Error("gini must be order-invariant")
	}
}

func TestHistogram(t *testing.T) {
	bins := Histogram([]float64{0.05, 0.15, 0.15, 0.95, 1.2, -0.5}, 10, 0, 1)
	if len(bins) != 10 {
		t.Fatalf("bins = %d", len(bins))
	}
	if bins[0].Count != 2 { // 0.05 and clamped -0.5
		t.Errorf("bin0 count = %d, want 2", bins[0].Count)
	}
	if bins[1].Count != 2 {
		t.Errorf("bin1 count = %d, want 2", bins[1].Count)
	}
	if bins[9].Count != 2 { // 0.95 and clamped 1.2
		t.Errorf("bin9 count = %d, want 2", bins[9].Count)
	}
	var total float64
	for _, b := range bins {
		total += b.Frac
	}
	if math.Abs(total-1) > 1e-12 {
		t.Errorf("fractions sum to %v", total)
	}
	if Histogram(nil, 0, 0, 1) != nil || Histogram(nil, 4, 1, 0) != nil {
		t.Error("degenerate histogram configs must return nil")
	}
}

func TestKDEIntegratesToOne(t *testing.T) {
	xs := []float64{0.2, 0.3, 0.4, 0.41, 0.6}
	pts := KDE(xs, 400, -1, 2, 0)
	if len(pts) != 400 {
		t.Fatalf("points = %d", len(pts))
	}
	var integral float64
	for i := 1; i < len(pts); i++ {
		dx := pts[i].X - pts[i-1].X
		integral += (pts[i].Density + pts[i-1].Density) / 2 * dx
	}
	if math.Abs(integral-1) > 0.02 {
		t.Errorf("KDE integrates to %v, want ~1", integral)
	}
}

func TestKDEPeaksNearData(t *testing.T) {
	xs := []float64{0.5, 0.5, 0.5}
	pts := KDE(xs, 101, 0, 1, 0.05)
	best := 0
	for i, p := range pts {
		if p.Density > pts[best].Density {
			best = i
		}
	}
	if math.Abs(pts[best].X-0.5) > 0.02 {
		t.Errorf("KDE peak at %v, want 0.5", pts[best].X)
	}
}

func TestKDEDegenerate(t *testing.T) {
	if KDE(nil, 10, 0, 1, 0) != nil {
		t.Error("empty data must return nil")
	}
	if KDE([]float64{1}, 1, 0, 1, 0) != nil {
		t.Error("n<2 must return nil")
	}
}

// Property: histogram counts always total the sample count.
func TestHistogramTotalProperty(t *testing.T) {
	f := func(raw []float64) bool {
		xs := make([]float64, 0, len(raw))
		for _, x := range raw {
			if !math.IsNaN(x) && !math.IsInf(x, 0) {
				xs = append(xs, x)
			}
		}
		bins := Histogram(xs, 8, 0, 1)
		total := 0
		for _, b := range bins {
			total += b.Count
		}
		return total == len(xs)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: Gini is scale-invariant.
func TestGiniScaleInvariant(t *testing.T) {
	f := func(a, b, c, d uint8) bool {
		xs := []float64{float64(a) + 1, float64(b) + 1, float64(c) + 1, float64(d) + 1}
		ys := make([]float64, len(xs))
		for i := range xs {
			ys[i] = xs[i] * 7.5
		}
		return math.Abs(Gini(xs)-Gini(ys)) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{15, 20, 35, 40, 50}
	cases := []struct {
		p, want float64
	}{
		{5, 15},   // ceil(0.05*5)=1 -> first sample
		{30, 20},  // ceil(1.5)=2
		{40, 20},  // ceil(2.0)=2
		{50, 35},  // ceil(2.5)=3
		{100, 50}, // always the max
		{150, 50}, // clamped to 100
		{0, 15},   // lower clamp: p = 0 is the minimum sample
		{-5, 15},  // lower clamp: negative p too
	}
	for _, c := range cases {
		if got := Percentile(xs, c.p); got != c.want {
			t.Errorf("Percentile(%v, %v) = %v, want %v", xs, c.p, got, c.want)
		}
	}
	if !math.IsNaN(Percentile(nil, 50)) {
		t.Error("Percentile of empty input should be NaN")
	}
	// Input must not be mutated (the fleet aggregator shares slices).
	unsorted := []float64{3, 1, 2}
	Percentile(unsorted, 50)
	if unsorted[0] != 3 || unsorted[1] != 1 || unsorted[2] != 2 {
		t.Errorf("Percentile mutated its input: %v", unsorted)
	}
	// A single sample is every percentile of itself.
	for _, p := range []float64{-1, 0, 50, 100, 200} {
		if got := Percentile([]float64{7}, p); got != 7 {
			t.Errorf("Percentile([7], %v) = %v, want 7", p, got)
		}
	}
}
