// Package stats provides the small statistics toolkit the experiment
// reports need: summary statistics, histograms and Gaussian kernel density
// estimates over per-FU utilization values (the probability density plots
// of Fig. 7 and Fig. 8), dispersion measures used by the ablation benches
// to compare movement patterns, and nearest-rank percentiles for the fleet
// service's lifetime distributions.
//
// Every function is a pure function of its input slice — inputs are never
// mutated (sorting copies first) — so results are deterministic and safe
// to compute concurrently over shared data.
package stats

import (
	"math"
	"sort"
)

// Summary holds the usual descriptive statistics.
type Summary struct {
	N        int
	Mean     float64
	Min, Max float64
	StdDev   float64
	Median   float64
}

// Summarize computes a Summary over xs; zero value for empty input.
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		return Summary{}
	}
	s := Summary{N: len(xs), Min: xs[0], Max: xs[0]}
	for _, x := range xs {
		s.Mean += x
		if x < s.Min {
			s.Min = x
		}
		if x > s.Max {
			s.Max = x
		}
	}
	s.Mean /= float64(len(xs))
	var ss float64
	for _, x := range xs {
		d := x - s.Mean
		ss += d * d
	}
	s.StdDev = math.Sqrt(ss / float64(len(xs)))
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	mid := len(sorted) / 2
	if len(sorted)%2 == 1 {
		s.Median = sorted[mid]
	} else {
		s.Median = (sorted[mid-1] + sorted[mid]) / 2
	}
	return s
}

// CoV returns the coefficient of variation (stddev/mean), the flatness
// metric used to compare allocation strategies; 0 for degenerate input.
func CoV(xs []float64) float64 {
	s := Summarize(xs)
	if s.Mean == 0 {
		return 0
	}
	return s.StdDev / s.Mean
}

// Gini returns the Gini coefficient of xs (0 = perfectly balanced
// utilization, 1 = maximally concentrated).
func Gini(xs []float64) float64 {
	n := len(xs)
	if n == 0 {
		return 0
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	var cum, total float64
	for i, x := range sorted {
		cum += x * float64(2*(i+1)-n-1)
		total += x
	}
	if total == 0 {
		return 0
	}
	return cum / (float64(n) * total)
}

// Percentile returns the p-th percentile of xs by the nearest-rank method:
// the smallest element with at least p% of the samples at or below it
// (index ceil(p/100*N)-1 of the ascending sort). Nearest-rank always
// returns an actual sample — no interpolation — so percentiles over death
// ages stay real, attributable device outcomes. p is clamped into
// [0, 100]: p <= 0 returns the minimum sample, p >= 100 the maximum.
// NaN for empty input.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	if p <= 0 {
		return sorted[0]
	}
	if p > 100 {
		p = 100
	}
	idx := int(math.Ceil(p/100*float64(len(sorted)))) - 1
	if idx < 0 {
		// Tiny positive p: ceil(p/100*N) can still be 0; rank 1 applies.
		idx = 0
	}
	return sorted[idx]
}

// HistogramBin is one bin of a histogram.
type HistogramBin struct {
	// Lo and Hi bound the bin: [Lo, Hi).
	Lo, Hi float64
	// Count is the number of samples in the bin.
	Count int
	// Frac is Count normalised by the total sample count.
	Frac float64
}

// Histogram bins xs into n equal-width bins over [lo, hi]; the last bin is
// closed. Samples outside the range are clamped into the edge bins.
func Histogram(xs []float64, n int, lo, hi float64) []HistogramBin {
	if n < 1 || hi <= lo {
		return nil
	}
	bins := make([]HistogramBin, n)
	w := (hi - lo) / float64(n)
	for i := range bins {
		bins[i].Lo = lo + float64(i)*w
		bins[i].Hi = bins[i].Lo + w
	}
	for _, x := range xs {
		i := int((x - lo) / w)
		if i < 0 {
			i = 0
		}
		if i >= n {
			i = n - 1
		}
		bins[i].Count++
	}
	if len(xs) > 0 {
		for i := range bins {
			bins[i].Frac = float64(bins[i].Count) / float64(len(xs))
		}
	}
	return bins
}

// KDEPoint is one sample of a kernel density estimate.
type KDEPoint struct {
	X, Density float64
}

// KDE computes a Gaussian kernel density estimate of xs sampled at n
// evenly spaced points over [lo, hi]. A non-positive bandwidth selects
// Silverman's rule of thumb.
func KDE(xs []float64, n int, lo, hi, bandwidth float64) []KDEPoint {
	if len(xs) == 0 || n < 2 || hi <= lo {
		return nil
	}
	h := bandwidth
	if h <= 0 {
		s := Summarize(xs)
		h = 1.06 * s.StdDev * math.Pow(float64(len(xs)), -0.2)
		if h <= 0 {
			h = (hi - lo) / float64(n)
		}
	}
	out := make([]KDEPoint, n)
	norm := 1 / (float64(len(xs)) * h * math.Sqrt(2*math.Pi))
	for i := 0; i < n; i++ {
		x := lo + (hi-lo)*float64(i)/float64(n-1)
		var d float64
		for _, xi := range xs {
			z := (x - xi) / h
			d += math.Exp(-0.5 * z * z)
		}
		out[i] = KDEPoint{X: x, Density: d * norm}
	}
	return out
}
