package cfgcache

import "agingcgra/internal/fabric"

// RemapCache memoizes shape-remapped configurations per hot region,
// alongside the PC-indexed translation cache: the shape search (a mapper
// run per candidate shape × anchor) is far too expensive to repeat on
// every offload of a blocked configuration. Which placements *exist* is a
// pure function of the instruction sequence and the health map; how they
// *rank* additionally snapshots the allocator's observed duty at search
// time, so an entry is the decision taken at the region's first offload
// under one fabric state — deliberately held, like the explorer's pivot
// hold period, rather than re-ranked as within-run duty drifts. Entries
// are keyed by the configuration's StartPC and valid for exactly one
// (health version, wear version) pair: a cell death invalidates which
// placements exist, a wear advance invalidates which placement the wear
// scoring prefers, so any version change flushes the cache wholesale
// (versions only grow; every entry is stale). Negative results are cached
// too — a region no shape can place stays on the GPP without re-searching
// until the fabric state changes.
type RemapCache struct {
	healthVer uint64
	wearVer   uint64
	valid     bool
	entries   map[uint32]RemapEntry
	stats     RemapStats
}

// RemapEntry is one memoized shape-search outcome.
type RemapEntry struct {
	// Cfg is the remapped configuration and Off the pivot it fits at; both
	// are zero when OK is false (no live placement under any shape).
	Cfg *fabric.Config
	Off fabric.Offset
	OK  bool
}

// RemapStats counts remap-cache events.
type RemapStats struct {
	Hits    uint64
	Misses  uint64
	Flushes uint64
}

// NewRemapCache builds an empty remap cache.
func NewRemapCache() *RemapCache {
	return &RemapCache{entries: make(map[uint32]RemapEntry)}
}

// sync flushes the cache when the observed fabric state moved past the one
// the entries were computed for.
func (rc *RemapCache) sync(healthVer, wearVer uint64) {
	if rc.valid && rc.healthVer == healthVer && rc.wearVer == wearVer {
		return
	}
	if len(rc.entries) > 0 {
		rc.entries = make(map[uint32]RemapEntry)
		rc.stats.Flushes++
	}
	rc.healthVer, rc.wearVer, rc.valid = healthVer, wearVer, true
}

// Lookup returns the memoized outcome for the region starting at pc under
// the given fabric state, if one is cached.
func (rc *RemapCache) Lookup(pc uint32, healthVer, wearVer uint64) (RemapEntry, bool) {
	rc.sync(healthVer, wearVer)
	e, ok := rc.entries[pc]
	if ok {
		rc.stats.Hits++
	} else {
		rc.stats.Misses++
	}
	return e, ok
}

// Insert memoizes a shape-search outcome for the region starting at pc.
func (rc *RemapCache) Insert(pc uint32, healthVer, wearVer uint64, e RemapEntry) {
	rc.sync(healthVer, wearVer)
	rc.entries[pc] = e
}

// Len returns the number of memoized regions for the current fabric state.
func (rc *RemapCache) Len() int { return len(rc.entries) }

// Stats returns the event counters.
func (rc *RemapCache) Stats() RemapStats { return rc.stats }
