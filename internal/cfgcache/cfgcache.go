// Package cfgcache implements TransRec's configuration cache: translated
// CGRA configurations indexed by the PC of their first instruction (Fig. 2,
// step 3/4 of the paper), with bounded capacity and LRU or FIFO
// replacement.
//
// Two invariants carry the rest of the system:
//
//   - Probe cost: the hot loop probes twice per retired instruction, so
//     Cache maintains a dense table indexed by (PC − TextBase)/4 kept in
//     exact sync with the authoritative LRU map — a lookup is one array
//     load, and the map remains the fallback for out-of-window PCs.
//   - State keying: a cached artifact is a decision taken under one
//     fabric state. Cache.SyncState flushes translations wholesale when
//     the observed (health, wear) versions move (the shape-translating
//     DBT's contract), and RemapCache keys rescue-search outcomes —
//     positive and negative — on (StartPC, Health.Version, Wear.Version).
//     Neither structure ever serves an entry recorded under a different
//     version than the caller currently observes.
package cfgcache

import (
	"fmt"

	"agingcgra/internal/fabric"
)

// Policy selects the replacement policy.
type Policy int

const (
	// LRU evicts the least recently used configuration.
	LRU Policy = iota
	// FIFO evicts the oldest configuration.
	FIFO
)

func (p Policy) String() string {
	switch p {
	case LRU:
		return "lru"
	case FIFO:
		return "fifo"
	}
	return fmt.Sprintf("policy(%d)", int(p))
}

// Stats counts cache events.
type Stats struct {
	Hits       uint64
	Misses     uint64
	Insertions uint64
	Evictions  uint64
	// Flushes counts wholesale state invalidations (SyncState observing a
	// moved health/wear version under shape-aware translation).
	Flushes uint64
}

// HitRate returns hits / (hits + misses), or 0 when empty.
func (s Stats) HitRate() float64 {
	total := s.Hits + s.Misses
	if total == 0 {
		return 0
	}
	return float64(s.Hits) / float64(total)
}

type entry struct {
	cfg        *fabric.Config
	prev, next *entry
}

// Cache is a PC-indexed configuration cache. The zero value is not usable;
// call New.
type Cache struct {
	capacity int
	policy   Policy
	entries  map[uint32]*entry
	// head is most recently used / most recently inserted; tail is the
	// eviction candidate.
	head, tail *entry
	stats      Stats

	// dense, when non-nil, is a direct translation table over a contiguous
	// window of word-aligned PCs starting at denseBase: slot (pc-denseBase)/4
	// holds the resident entry for pc, or nil. The map stays authoritative
	// (it backs replacement and out-of-window PCs); the dense table is a
	// probe accelerator the engine attaches over the text segment so the
	// per-retired-instruction residency checks become one array load.
	dense     []*entry
	denseBase uint32

	// State keying for shape-aware translation (SyncState): the (health,
	// wear) versions the resident translations' shape decisions were taken
	// under, mirroring RemapCache's wholesale-flush contract.
	stateHealth uint64
	stateWear   uint64
	stateValid  bool
}

// New builds a cache holding at most capacity configurations.
func New(capacity int, policy Policy) *Cache {
	if capacity < 1 {
		capacity = 1
	}
	return &Cache{
		capacity: capacity,
		policy:   policy,
		entries:  make(map[uint32]*entry, capacity),
	}
}

// SyncState keys the resident translations on the fabric state their shape
// decisions were taken under, mirroring cfgcache.RemapCache: when the
// observed (health version, wear version) pair moves past the recorded
// one, every resident translation's shape was chosen for a fabric that no
// longer exists — a death changes which shapes place, a wear advance
// changes which shape the wear tie-break prefers — so the cache flushes
// wholesale (versions only grow; every entry is stale) and reports it, and
// the engine lets the trace builder re-translate against the new state.
// The first call only records the state. Engines translating
// shape-unaware never call this and keep the plain PC-keyed behaviour.
func (c *Cache) SyncState(healthVer, wearVer uint64) (flushed bool) {
	if c.stateValid && c.stateHealth == healthVer && c.stateWear == wearVer {
		return false
	}
	moved := c.stateValid
	c.stateHealth, c.stateWear, c.stateValid = healthVer, wearVer, true
	if moved && len(c.entries) > 0 {
		c.Clear()
		c.stats.Flushes++
		return true
	}
	return false
}

// Capacity returns the configured entry limit.
func (c *Cache) Capacity() int { return c.capacity }

// Len returns the number of resident configurations.
func (c *Cache) Len() int { return len(c.entries) }

// Stats returns the event counters.
func (c *Cache) Stats() Stats { return c.stats }

// EnableDense attaches (or re-attaches) a dense translation table covering
// n word-aligned instructions starting at base — typically the program's
// text segment. Already-resident in-window configurations are indexed;
// calling it again with the same window is a no-op so it is cheap to invoke
// at the top of every run.
func (c *Cache) EnableDense(base uint32, n int) {
	if n <= 0 {
		return
	}
	if c.dense != nil && c.denseBase == base && len(c.dense) == n {
		return
	}
	c.denseBase = base
	c.dense = make([]*entry, n)
	for pc, e := range c.entries {
		if i, ok := c.denseSlot(pc); ok {
			c.dense[i] = e
		}
	}
}

// denseSlot maps pc to its dense-table index, if the table covers it.
func (c *Cache) denseSlot(pc uint32) (int, bool) {
	if c.dense == nil {
		return 0, false
	}
	// pc < denseBase wraps to a huge offset and fails the length check.
	off := pc - c.denseBase
	if off&3 != 0 {
		return 0, false
	}
	i := int(off >> 2)
	if i >= len(c.dense) {
		return 0, false
	}
	return i, true
}

// probe finds the entry for pc without touching stats or recency, through
// the dense table when it covers pc.
func (c *Cache) probe(pc uint32) (*entry, bool) {
	if i, ok := c.denseSlot(pc); ok {
		e := c.dense[i]
		return e, e != nil
	}
	e, ok := c.entries[pc]
	return e, ok
}

// Lookup finds the configuration starting at pc, updating hit/miss counts
// and (for LRU) recency.
func (c *Cache) Lookup(pc uint32) (*fabric.Config, bool) {
	e, ok := c.probe(pc)
	if !ok {
		c.stats.Misses++
		return nil, false
	}
	c.stats.Hits++
	if c.policy == LRU {
		c.moveToFront(e)
	}
	return e.cfg, true
}

// Contains reports residency without touching stats or recency.
func (c *Cache) Contains(pc uint32) bool {
	_, ok := c.probe(pc)
	return ok
}

// Insert stores a configuration, evicting if necessary. Re-inserting an
// existing StartPC replaces the old configuration.
func (c *Cache) Insert(cfg *fabric.Config) {
	if cfg == nil {
		return
	}
	if e, ok := c.entries[cfg.StartPC]; ok {
		e.cfg = cfg
		c.moveToFront(e)
		c.stats.Insertions++
		return
	}
	if len(c.entries) >= c.capacity {
		c.evict()
	}
	e := &entry{cfg: cfg}
	c.entries[cfg.StartPC] = e
	if i, ok := c.denseSlot(cfg.StartPC); ok {
		c.dense[i] = e
	}
	c.pushFront(e)
	c.stats.Insertions++
}

// Remove drops the configuration starting at pc, if resident.
func (c *Cache) Remove(pc uint32) {
	if e, ok := c.entries[pc]; ok {
		c.unlink(e)
		delete(c.entries, pc)
		if i, ok := c.denseSlot(pc); ok {
			c.dense[i] = nil
		}
	}
}

// Clear drops every entry, keeping statistics.
func (c *Cache) Clear() {
	c.entries = make(map[uint32]*entry, c.capacity)
	c.head, c.tail = nil, nil
	if c.dense != nil {
		clear(c.dense)
	}
}

// Configs returns the resident configurations from most to least recent.
func (c *Cache) Configs() []*fabric.Config {
	out := make([]*fabric.Config, 0, len(c.entries))
	for e := c.head; e != nil; e = e.next {
		out = append(out, e.cfg)
	}
	return out
}

func (c *Cache) evict() {
	if c.tail == nil {
		return
	}
	victim := c.tail
	c.unlink(victim)
	delete(c.entries, victim.cfg.StartPC)
	if i, ok := c.denseSlot(victim.cfg.StartPC); ok {
		c.dense[i] = nil
	}
	c.stats.Evictions++
}

func (c *Cache) pushFront(e *entry) {
	e.prev = nil
	e.next = c.head
	if c.head != nil {
		c.head.prev = e
	}
	c.head = e
	if c.tail == nil {
		c.tail = e
	}
}

func (c *Cache) unlink(e *entry) {
	if e.prev != nil {
		e.prev.next = e.next
	} else {
		c.head = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	} else {
		c.tail = e.prev
	}
	e.prev, e.next = nil, nil
}

func (c *Cache) moveToFront(e *entry) {
	if c.head == e {
		return
	}
	c.unlink(e)
	c.pushFront(e)
}
