package cfgcache

import (
	"testing"

	"agingcgra/internal/fabric"
)

func cfg(pc uint32) *fabric.Config {
	return &fabric.Config{StartPC: pc, Geom: fabric.NewGeometry(2, 8)}
}

func TestLookupMissAndHit(t *testing.T) {
	c := New(4, LRU)
	if _, ok := c.Lookup(0x1000); ok {
		t.Fatal("hit on empty cache")
	}
	c.Insert(cfg(0x1000))
	got, ok := c.Lookup(0x1000)
	if !ok || got.StartPC != 0x1000 {
		t.Fatal("miss after insert")
	}
	st := c.Stats()
	if st.Hits != 1 || st.Misses != 1 || st.Insertions != 1 {
		t.Errorf("stats = %+v", st)
	}
	if st.HitRate() != 0.5 {
		t.Errorf("hit rate = %v, want 0.5", st.HitRate())
	}
}

func TestLRUEviction(t *testing.T) {
	c := New(2, LRU)
	c.Insert(cfg(0x1))
	c.Insert(cfg(0x2))
	c.Lookup(0x1) // make 0x1 most recent
	c.Insert(cfg(0x3))
	if c.Contains(0x2) {
		t.Error("0x2 should have been evicted (LRU)")
	}
	if !c.Contains(0x1) || !c.Contains(0x3) {
		t.Error("0x1 and 0x3 should be resident")
	}
	if c.Stats().Evictions != 1 {
		t.Errorf("evictions = %d, want 1", c.Stats().Evictions)
	}
}

func TestFIFOEviction(t *testing.T) {
	c := New(2, FIFO)
	c.Insert(cfg(0x1))
	c.Insert(cfg(0x2))
	c.Lookup(0x1) // FIFO ignores recency
	c.Insert(cfg(0x3))
	if c.Contains(0x1) {
		t.Error("0x1 should have been evicted (FIFO)")
	}
	if !c.Contains(0x2) || !c.Contains(0x3) {
		t.Error("0x2 and 0x3 should be resident")
	}
}

func TestReplaceExisting(t *testing.T) {
	c := New(2, LRU)
	c.Insert(cfg(0x1))
	newer := cfg(0x1)
	newer.UsedCols = 5
	c.Insert(newer)
	if c.Len() != 1 {
		t.Fatalf("len = %d, want 1", c.Len())
	}
	got, _ := c.Lookup(0x1)
	if got.UsedCols != 5 {
		t.Error("replacement did not take effect")
	}
	if c.Stats().Evictions != 0 {
		t.Error("replacement should not evict")
	}
}

func TestRemoveAndClear(t *testing.T) {
	c := New(4, LRU)
	c.Insert(cfg(0x1))
	c.Insert(cfg(0x2))
	c.Remove(0x1)
	if c.Contains(0x1) || c.Len() != 1 {
		t.Error("Remove failed")
	}
	c.Remove(0x999) // no-op
	c.Clear()
	if c.Len() != 0 || c.Contains(0x2) {
		t.Error("Clear failed")
	}
	// Cache still usable after Clear.
	c.Insert(cfg(0x3))
	if !c.Contains(0x3) {
		t.Error("insert after Clear failed")
	}
}

func TestConfigsOrder(t *testing.T) {
	c := New(4, LRU)
	c.Insert(cfg(0x1))
	c.Insert(cfg(0x2))
	c.Insert(cfg(0x3))
	c.Lookup(0x1)
	got := c.Configs()
	want := []uint32{0x1, 0x3, 0x2}
	if len(got) != 3 {
		t.Fatalf("len = %d", len(got))
	}
	for i := range want {
		if got[i].StartPC != want[i] {
			t.Errorf("configs[%d] = %#x, want %#x", i, got[i].StartPC, want[i])
		}
	}
}

func TestCapacityFloor(t *testing.T) {
	c := New(0, LRU)
	if c.Capacity() != 1 {
		t.Errorf("capacity = %d, want 1", c.Capacity())
	}
	c.Insert(cfg(0x1))
	c.Insert(cfg(0x2))
	if c.Len() != 1 {
		t.Errorf("len = %d, want 1", c.Len())
	}
}

func TestNilInsert(t *testing.T) {
	c := New(2, LRU)
	c.Insert(nil)
	if c.Len() != 0 {
		t.Error("nil insert should be ignored")
	}
}

func TestManyInsertionsStayBounded(t *testing.T) {
	c := New(8, LRU)
	for pc := uint32(0); pc < 1000; pc += 4 {
		c.Insert(cfg(pc))
		if c.Len() > 8 {
			t.Fatalf("cache grew to %d entries", c.Len())
		}
	}
	if c.Len() != 8 {
		t.Errorf("len = %d, want 8", c.Len())
	}
	// The 8 most recent PCs must be resident.
	for pc := uint32(1000 - 8*4); pc < 1000; pc += 4 {
		if !c.Contains(pc) {
			t.Errorf("recent pc %#x missing", pc)
		}
	}
}

func TestPolicyString(t *testing.T) {
	if LRU.String() != "lru" || FIFO.String() != "fifo" {
		t.Error("policy names wrong")
	}
	if Policy(9).String() == "" {
		t.Error("unknown policy should format")
	}
}

// denseCacheEqual checks every PC in window agrees between dense probes and
// the authoritative map.
func denseCacheEqual(t *testing.T, c *Cache, base uint32, n int) {
	t.Helper()
	for i := 0; i < n; i++ {
		pc := base + uint32(i)*4
		_, inMap := c.entries[pc]
		if got := c.Contains(pc); got != inMap {
			t.Errorf("pc %#x: dense Contains=%v, map residency=%v", pc, got, inMap)
		}
	}
}

func TestDenseTableTracksMutations(t *testing.T) {
	const base, window = 0x1000, 64
	c := New(4, LRU)
	c.Insert(cfg(base))         // resident before the table exists
	c.EnableDense(base, window) // must index existing entries
	denseCacheEqual(t, c, base, window)

	for _, pc := range []uint32{base + 8, base + 16, base + 24, base + 32} {
		c.Insert(cfg(pc)) // last insert evicts base through the dense slot
	}
	denseCacheEqual(t, c, base, window)
	if c.Contains(base) {
		t.Error("evicted entry still visible through dense table")
	}

	c.Remove(base + 16)
	denseCacheEqual(t, c, base, window)

	if _, ok := c.Lookup(base + 8); !ok {
		t.Error("dense lookup missed a resident entry")
	}
	if _, ok := c.Lookup(base + 16); ok {
		t.Error("dense lookup hit a removed entry")
	}

	c.Clear()
	denseCacheEqual(t, c, base, window)
	if c.Len() != 0 {
		t.Errorf("len after clear = %d", c.Len())
	}

	// Out-of-window and misaligned PCs fall back to the map path.
	out := base + uint32(window)*4 + 100
	c.Insert(cfg(out))
	if !c.Contains(out) {
		t.Error("out-of-window entry lost")
	}
	if c.Contains(base + 2) {
		t.Error("misaligned pc reported resident")
	}
}

func TestDenseLookupKeepsStatsAndRecency(t *testing.T) {
	const base = 0x1000
	plain := New(2, LRU)
	dense := New(2, LRU)
	dense.EnableDense(base, 32)
	ops := func(c *Cache) Stats {
		c.Insert(cfg(base))
		c.Insert(cfg(base + 4))
		c.Lookup(base)     // hit; moves base to front
		c.Lookup(base + 8) // miss
		c.Insert(cfg(base + 8))
		// base+4 was least recent, must have been evicted.
		c.Lookup(base + 4)
		return c.Stats()
	}
	if a, b := ops(plain), ops(dense); a != b {
		t.Errorf("stats diverge: plain %+v dense %+v", a, b)
	}
	if plain.Contains(base+4) || dense.Contains(base+4) {
		t.Error("LRU recency diverged from expectation")
	}
}

// TestRemapCacheVersionedFlush pins the shape-cache contract: entries are
// reused while the (health, wear) versions stand still, any version change
// flushes the whole cache (every entry was searched under the old fabric
// state), and negative outcomes are memoized like positive ones.
func TestRemapCacheVersionedFlush(t *testing.T) {
	rc := NewRemapCache()
	if _, ok := rc.Lookup(0x1000, 1, 1); ok {
		t.Fatal("empty cache reported a hit")
	}
	rc.Insert(0x1000, 1, 1, RemapEntry{Cfg: cfg(0x1000), Off: fabric.Offset{Row: 1}, OK: true})
	rc.Insert(0x2000, 1, 1, RemapEntry{OK: false}) // negative result
	if e, ok := rc.Lookup(0x1000, 1, 1); !ok || !e.OK || e.Off.Row != 1 {
		t.Fatalf("positive entry lost: %+v ok=%v", e, ok)
	}
	if e, ok := rc.Lookup(0x2000, 1, 1); !ok || e.OK {
		t.Fatalf("negative entry lost: %+v ok=%v", e, ok)
	}
	if rc.Len() != 2 {
		t.Fatalf("len = %d, want 2", rc.Len())
	}

	// Health version moves: both entries are stale.
	if _, ok := rc.Lookup(0x1000, 2, 1); ok {
		t.Fatal("stale entry survived a health version change")
	}
	if rc.Len() != 0 {
		t.Fatalf("len after flush = %d, want 0", rc.Len())
	}
	rc.Insert(0x1000, 2, 1, RemapEntry{OK: true})

	// Wear version moves: flushed again.
	if _, ok := rc.Lookup(0x1000, 2, 2); ok {
		t.Fatal("stale entry survived a wear version change")
	}
	st := rc.Stats()
	if st.Flushes != 2 {
		t.Errorf("flushes = %d, want 2", st.Flushes)
	}
	if st.Hits != 2 || st.Misses != 3 {
		t.Errorf("hits/misses = %d/%d, want 2/3", st.Hits, st.Misses)
	}
}

// TestSyncStateFlushesOnVersionMove pins the translation-cache state
// keying behind shape-aware translation, mirroring RemapCache: the first
// SyncState only records the (health, wear) versions, an unchanged state
// keeps every entry, and any version move flushes wholesale — dense table
// included — and counts a flush.
func TestSyncStateFlushesOnVersionMove(t *testing.T) {
	c := New(8, LRU)
	c.EnableDense(0x1000, 16)
	if c.SyncState(1, 0) {
		t.Error("first SyncState flushed; it should only record the state")
	}
	c.Insert(cfg(0x1000))
	c.Insert(cfg(0x1008))
	if c.SyncState(1, 0) {
		t.Error("unchanged state flushed")
	}
	if c.Len() != 2 {
		t.Fatalf("len = %d, want 2", c.Len())
	}

	if !c.SyncState(2, 0) {
		t.Error("health version move did not flush")
	}
	if c.Len() != 0 {
		t.Errorf("len = %d after health flush, want 0", c.Len())
	}
	if c.Contains(0x1000) {
		t.Error("dense table still reports a flushed translation")
	}

	c.Insert(cfg(0x1000))
	if !c.SyncState(2, 7) {
		t.Error("wear version move did not flush")
	}
	if got := c.Stats().Flushes; got != 2 {
		t.Errorf("flushes = %d, want 2", got)
	}

	// An empty cache observing a move records it without counting a flush.
	if c.SyncState(3, 7) {
		t.Error("empty cache reported a flush")
	}
}
