// Package trace is the lifetime simulator's observability layer: a
// deterministic per-epoch event stream (epoch resolved, cell deaths,
// fault activity, quarantine/reinstate transitions, remap rescues, GPP
// fallbacks) plus per-FU duty/wear heatmap snapshots, emitted by
// internal/lifetime behind an opt-in Sink and rendered by cgra-lifetime
// (CSV + self-contained HTML) and the cgra-lifetimed streaming endpoint
// (NDJSON).
//
// The contract that makes the layer more than logging:
//
//   - The event stream is a pure function of (scenario, seed): identical
//     serial vs parallel, warm vs cold epoch store, traced vs untraced
//     simulation outcome. Every event is derived either from state the
//     epoch loop recomputes every epoch (aging deaths, wear, health) or
//     from the memoized epoch outcome itself, which replayed epochs
//     re-add verbatim — so a memo-replayed epoch re-emits the same events
//     its original simulation did, mirroring how search and recovery
//     stat deltas are re-added.
//   - Tracing is observation-only: a nil Sink short-circuits every
//     emission site, so the untraced hot path allocates nothing and the
//     traced run's Result is byte-identical to the untraced run's.
package trace

import "agingcgra/internal/fabric"

// Event kinds, in the order they can appear within one epoch.
const (
	// KindFault reports an epoch's fault-manifestation activity (faulted
	// executions, checker detections, silent escapes). Recurs on replayed
	// epochs: a steady state keeps faulting even when the simulator
	// memoized the outcome.
	KindFault = "fault"
	// KindQuarantine and KindReinstate are the monitor's per-cell
	// transitions. They only ever occur on freshly simulated epochs: a
	// transition bumps the monitor version, so the next epoch's memo key
	// differs and cannot replay.
	KindQuarantine = "quarantine"
	KindReinstate  = "reinstate"
	// KindRemapRescue counts the epoch's offloads kept on-fabric by a
	// shape-adaptive remap (the allocator substituted an architecturally
	// equivalent reshaped configuration).
	KindRemapRescue = "remap_rescue"
	// KindGPPFallback counts the epoch's offloads the placement refused —
	// every pivot would drive a failed FU and no alternative shape fit —
	// so the step retired on the GPP.
	KindGPPFallback = "gpp_fallback"
	// KindDeath is one FU crossing end-of-life, at its interpolated age.
	KindDeath = "death"
	// KindEpoch is the epoch-resolved summary (always emitted, last
	// regular event of the epoch).
	KindEpoch = "epoch"
	// KindSnapshot is the per-FU duty/wear heatmap at the epoch boundary.
	KindSnapshot = "snapshot"
)

// Event is one observability record. The struct is deliberately flat —
// one shape for every kind, unused fields omitted from JSON — so NDJSON
// consumers and the CSV renderer stay schema-free. Slices in snapshot
// events are copies owned by the receiver.
type Event struct {
	Kind string `json:"kind"`
	// Scenario is the emitting scenario's resolved name.
	Scenario string `json:"scenario,omitempty"`
	// Epoch is the step index, Years the cumulative age at the end of the
	// epoch the event belongs to.
	Epoch int     `json:"epoch"`
	Years float64 `json:"years"`

	// Cell-scoped fields (death, quarantine, reinstate). AgeYears is the
	// interpolated death age for deaths; TruthDead cross-references a
	// quarantine against ground truth.
	Cell      *fabric.Cell `json:"cell,omitempty"`
	AgeYears  float64      `json:"age_years,omitempty"`
	TruthDead bool         `json:"truth_dead,omitempty"`

	// Count-scoped fields (fault, remap_rescue, gpp_fallback). For fault
	// events Count is the faulted executions; Detected and Escapes break
	// out the checker's view.
	Count    uint64 `json:"count,omitempty"`
	Detected uint64 `json:"detected,omitempty"`
	Escapes  uint64 `json:"escapes,omitempty"`

	// Epoch-summary fields (epoch).
	Replayed       bool    `json:"replayed,omitempty"`
	Speedup        float64 `json:"speedup,omitempty"`
	AliveFraction  float64 `json:"alive_fraction,omitempty"`
	WorstUtil      float64 `json:"worst_util,omitempty"`
	MeanUtil       float64 `json:"mean_util,omitempty"`
	Offloads       uint64  `json:"offloads,omitempty"`
	Deaths         int     `json:"deaths,omitempty"`
	SearchCycles   float64 `json:"search_cycles,omitempty"`
	RecoveryCycles float64 `json:"recovery_cycles,omitempty"`

	// Heatmap fields (snapshot): row-major per-FU series over a
	// Rows x Cols grid, plus the dead-cell indices (ground truth) and the
	// runtime's observed-dead indices when a recovery monitor is running.
	Rows         int       `json:"rows,omitempty"`
	Cols         int       `json:"cols,omitempty"`
	Duty         []float64 `json:"duty,omitempty"`
	WearYears    []float64 `json:"wear_years,omitempty"`
	Dead         []int     `json:"dead,omitempty"`
	ObservedDead []int     `json:"observed_dead,omitempty"`
}

// Sink receives the event stream of one scenario run. Emit is called
// from the goroutine running the scenario, strictly ordered; a Sink used
// by one Run needs no internal locking.
type Sink interface {
	Emit(Event)
}

// Recorder is a Sink that collects every event in emission order.
type Recorder struct {
	Events []Event
}

// Emit appends ev.
func (r *Recorder) Emit(ev Event) { r.Events = append(r.Events, ev) }

// Func adapts a function to the Sink interface (the streaming endpoint's
// NDJSON writer).
type Func func(Event)

// Emit calls f.
func (f Func) Emit(ev Event) { f(ev) }
