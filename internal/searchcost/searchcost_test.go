package searchcost

import (
	"testing"

	"agingcgra/internal/fabric"
)

func TestAssessPricesFamiliesIndependently(t *testing.T) {
	m := Model{ScoreCycles: 1, ProjectCycles: 4, ProbeCycles: 2, EnergyPerCycleNJ: 0.5}
	c := Counts{
		PivotScans: 3, PivotCells: 100, PivotProjections: 32,
		RemapScans: 1, RemapCandidates: 7, RemapProbes: 40,
		LadderScans: 2, LadderCandidates: 12, LadderProbes: 30,
	}
	b := m.Assess(c)
	if want := 32*4.0 + 100*1.0; b.Explorer.Cycles != want {
		t.Errorf("explorer cycles %v, want %v", b.Explorer.Cycles, want)
	}
	if want := 40 * 2.0; b.Remap.Cycles != want {
		t.Errorf("remap cycles %v, want %v", b.Remap.Cycles, want)
	}
	if want := 30 * 2.0; b.Translation.Cycles != want {
		t.Errorf("translation cycles %v, want %v", b.Translation.Cycles, want)
	}
	total := b.Total()
	if want := b.Explorer.Cycles + b.Remap.Cycles + b.Translation.Cycles; total.Cycles != want {
		t.Errorf("total cycles %v, want %v", total.Cycles, want)
	}
	if want := total.Cycles * 0.5; total.EnergyNJ != want {
		t.Errorf("total energy %v, want %v", total.EnergyNJ, want)
	}
}

func TestZeroCountsCostNothing(t *testing.T) {
	b := DefaultModel().Assess(Counts{})
	if tot := b.Total(); tot.Cycles != 0 || tot.EnergyNJ != 0 {
		t.Errorf("zero counts priced at %+v", tot)
	}
	if !(Counts{}).Zero() {
		t.Error("zero value not Zero")
	}
}

func TestAddSubRoundTrip(t *testing.T) {
	a := Counts{PivotScans: 5, PivotCells: 50, RemapProbes: 9, LadderScans: 2, LadderProbes: 17}
	b := Counts{PivotScans: 2, PivotCells: 20, RemapProbes: 4, LadderScans: 1, LadderProbes: 10}
	var sum Counts
	sum.Add(a)
	sum.Add(b)
	if got := sum.Sub(b); got != a {
		t.Errorf("(a+b)-b = %+v, want %+v", got, a)
	}
}

func TestPerOffloadAmortisation(t *testing.T) {
	c := Cost{Cycles: 100, EnergyNJ: 10}
	if got := c.PerOffload(4); got.Cycles != 25 || got.EnergyNJ != 2.5 {
		t.Errorf("per-offload = %+v", got)
	}
	if got := c.PerOffload(0); got != c {
		t.Errorf("zero offloads should return the undivided cost, got %+v", got)
	}
}

// TestScanBounds pins the analytic worst cases against the ladder: the
// full halving ladder on the BE design, a 32-op trace.
func TestScanBounds(t *testing.T) {
	g := fabric.NewGeometry(2, 16)
	l := fabric.DefaultShapeLadder()
	var want uint64
	for _, s := range l.Shapes(g) {
		want += 32 * uint64(s.NumFUs())
	}
	if got := LadderScanBound(l, g, 32); got != want {
		t.Errorf("ladder bound %d, want %d", got, want)
	}
	if got := RemapScanBound(l, g, 32); got != want*uint64(g.NumFUs()) {
		t.Errorf("remap bound %d, want %d", got, want*uint64(g.NumFUs()))
	}
}
