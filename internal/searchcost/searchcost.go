// Package searchcost is the derived hardware-cost model for the exhaustive
// searches the allocation stack runs: the wear-aware explorer's pivot scan,
// the shape-adaptive remapper's (shape × anchor) rescue scan, and the DBT's
// translation-time shape-ladder scan. Each of those was introduced with the
// assertion that its hold period or memoization makes it "cheap in
// hardware"; this package replaces the assertion with numbers derived from
// the scans' actual structure.
//
// The derivation works from event counts, not wall clock: the searching
// components tally how many scans they ran and how many elementary
// evaluations each scan performed (pivots scored, per-cell ΔVt lookups,
// mapper cell probes — the counters the explorer, the remapper and the
// engine expose through the Instrumented interface), and the Model prices
// each elementary evaluation in controller cycles and energy. An elementary
// evaluation is one comparator/MAC-scale operation of the allocation
// controller — a table lookup plus compare for a pivot score, an
// occupancy-plus-health check for a mapper probe — so the totals scale with
// exactly the work a hardware search engine would issue, and the
// per-offload overhead can be compared directly against the offload's
// useful cycles.
package searchcost

import "agingcgra/internal/fabric"

// Counts tallies the search work of one run (or one epoch): how many scans
// each search family ran and how many elementary evaluations they issued.
// All counters are exact event counts accumulated by the searching
// components themselves, so serial and parallel simulations of the same
// scenario produce identical Counts.
type Counts struct {
	// PivotScans counts full explorer re-explorations; PivotCells the
	// per-cell score evaluations those scans issued (candidate pivots ×
	// cells per configuration); PivotProjections the per-cell Eq. 1
	// projection-table refreshes hoisted out of the pivot loop.
	PivotScans       uint64 `json:"pivot_scans"`
	PivotCells       uint64 `json:"pivot_cells"`
	PivotProjections uint64 `json:"pivot_projections"`

	// RemapScans counts (shape × anchor) rescue searches; RemapCandidates
	// the mapper invocations inside them; RemapProbes the mapper cell
	// probes (occupancy + health checks) those invocations performed.
	// RemapProjections counts the per-cell Eq. 1 projection refreshes the
	// rescue's wear ranking pays, and RemapCells its per-candidate score
	// evaluations — the same evaluation types as the explorer's, issued by
	// the rescue scan.
	RemapScans       uint64 `json:"remap_scans"`
	RemapCandidates  uint64 `json:"remap_candidates"`
	RemapProbes      uint64 `json:"remap_probes"`
	RemapProjections uint64 `json:"remap_projections"`
	RemapCells       uint64 `json:"remap_cells"`

	// LadderScans counts translation-time shape searches (one per
	// shape-aware translation); LadderCandidates the shapes mapped;
	// LadderProbes the mapper cell probes inside them.
	LadderScans      uint64 `json:"ladder_scans"`
	LadderCandidates uint64 `json:"ladder_candidates"`
	LadderProbes     uint64 `json:"ladder_probes"`

	// Recovery-layer verification work (internal/recover): CheckerRuns
	// counts sampled offload verifications and CheckerInstrs the
	// instructions each re-executed against the GPP guided-replay reference;
	// RetryExecs counts on-fabric retry executions after a detected fault
	// and RetryCycles their fabric cycles (retries re-run the whole
	// configuration, so they are priced at actual execution cycles, not
	// per-evaluation); RecoveryProbes counts the per-cell probation test
	// vectors run against quarantined FUs.
	CheckerRuns    uint64 `json:"checker_runs,omitempty"`
	CheckerInstrs  uint64 `json:"checker_instrs,omitempty"`
	RetryExecs     uint64 `json:"retry_execs,omitempty"`
	RetryCycles    uint64 `json:"retry_cycles,omitempty"`
	RecoveryProbes uint64 `json:"recovery_probes,omitempty"`
}

// Add accumulates other into c.
func (c *Counts) Add(other Counts) {
	c.PivotScans += other.PivotScans
	c.PivotCells += other.PivotCells
	c.PivotProjections += other.PivotProjections
	c.RemapScans += other.RemapScans
	c.RemapCandidates += other.RemapCandidates
	c.RemapProbes += other.RemapProbes
	c.RemapProjections += other.RemapProjections
	c.RemapCells += other.RemapCells
	c.LadderScans += other.LadderScans
	c.LadderCandidates += other.LadderCandidates
	c.LadderProbes += other.LadderProbes
	c.CheckerRuns += other.CheckerRuns
	c.CheckerInstrs += other.CheckerInstrs
	c.RetryExecs += other.RetryExecs
	c.RetryCycles += other.RetryCycles
	c.RecoveryProbes += other.RecoveryProbes
}

// Sub returns c minus other, for delta accounting across a shared
// allocator (a suite run snapshots the allocator's counters before and
// after each engine).
func (c Counts) Sub(other Counts) Counts {
	return Counts{
		PivotScans:       c.PivotScans - other.PivotScans,
		PivotCells:       c.PivotCells - other.PivotCells,
		PivotProjections: c.PivotProjections - other.PivotProjections,
		RemapScans:       c.RemapScans - other.RemapScans,
		RemapCandidates:  c.RemapCandidates - other.RemapCandidates,
		RemapProbes:      c.RemapProbes - other.RemapProbes,
		RemapProjections: c.RemapProjections - other.RemapProjections,
		RemapCells:       c.RemapCells - other.RemapCells,
		LadderScans:      c.LadderScans - other.LadderScans,
		LadderCandidates: c.LadderCandidates - other.LadderCandidates,
		LadderProbes:     c.LadderProbes - other.LadderProbes,
		CheckerRuns:      c.CheckerRuns - other.CheckerRuns,
		CheckerInstrs:    c.CheckerInstrs - other.CheckerInstrs,
		RetryExecs:       c.RetryExecs - other.RetryExecs,
		RetryCycles:      c.RetryCycles - other.RetryCycles,
		RecoveryProbes:   c.RecoveryProbes - other.RecoveryProbes,
	}
}

// Zero reports whether no search work was counted.
func (c Counts) Zero() bool { return c == Counts{} }

// Instrumented is implemented by searching components (the explorer, the
// remapper) that expose their accumulated search counters; the engine
// collects per-run deltas through it.
type Instrumented interface {
	SearchCounts() Counts
}

// Model prices elementary search evaluations in allocation-controller
// cycles and energy. The defaults are derived from the search structure,
// not asserted: see DefaultModel.
type Model struct {
	// ScoreCycles is one pivot-scan cell evaluation: a projected-ΔVt table
	// lookup plus a running max/sum compare.
	ScoreCycles float64 `json:"score_cycles"`
	// ProjectCycles is one per-cell Eq. 1 projection refresh: the
	// polynomial evaluation filling the score table, issued once per cell
	// per exploration (it is hoisted out of the pivot loop).
	ProjectCycles float64 `json:"project_cycles"`
	// ProbeCycles is one mapper cell probe: an occupancy bit plus a health
	// bit plus the port/context bookkeeping of the greedy row search.
	ProbeCycles float64 `json:"probe_cycles"`
	// CheckCyclesPerInstr is one checker-verified instruction: the GPP
	// re-retires it from the guided-replay tables (one cycle for the ALU
	// classes that dominate offloaded traces) and a comparator matches the
	// result against the fabric's, so two controller-scale cycles per
	// instruction checked.
	CheckCyclesPerInstr float64 `json:"check_cycles_per_instr"`
	// ProbeExecCycles is one probation test vector against a quarantined FU:
	// load a known pattern, execute one op, compare — a fixed short sequence
	// independent of the workload.
	ProbeExecCycles float64 `json:"probe_exec_cycles"`
	// EnergyPerCycleNJ converts controller cycles to nanojoules.
	EnergyPerCycleNJ float64 `json:"energy_per_cycle_nj"`
}

// DefaultModel is the calibration used throughout: score evaluations are
// single-cycle (one comparator fed by a resident table), projection
// refreshes four cycles (the Eq. 1 fractional power evaluated by a small
// lookup-multiply pipeline), mapper probes single-cycle (two bit tests and
// an increment), and the controller burns 0.1 nJ per cycle — an order of
// magnitude below the fabric's per-FU active power, as a scalar search
// engine beside a 32-FU array should.
func DefaultModel() Model {
	return Model{
		ScoreCycles:         1,
		ProjectCycles:       4,
		ProbeCycles:         1,
		CheckCyclesPerInstr: 2,
		ProbeExecCycles:     32,
		EnergyPerCycleNJ:    0.1,
	}
}

// Cost is derived search overhead: controller cycles and energy.
type Cost struct {
	Cycles   float64 `json:"cycles"`
	EnergyNJ float64 `json:"energy_nj"`
}

func (c Cost) add(o Cost) Cost {
	return Cost{Cycles: c.Cycles + o.Cycles, EnergyNJ: c.EnergyNJ + o.EnergyNJ}
}

// Breakdown splits derived search overhead by search family.
type Breakdown struct {
	// Explorer is the pivot scan: projection refresh plus pivot scoring.
	Explorer Cost `json:"explorer"`
	// Remap is the allocation-time (shape × anchor) rescue scan.
	Remap Cost `json:"remap"`
	// Translation is the DBT's translation-time shape-ladder scan.
	Translation Cost `json:"translation"`
	// Recovery is the fault-detection layer's verification work: sampled
	// checker re-executions, on-fabric retries and probation test vectors.
	Recovery Cost `json:"recovery"`
}

// Total sums the families.
func (b Breakdown) Total() Cost {
	return b.Explorer.add(b.Remap).add(b.Translation).add(b.Recovery)
}

// Assess derives the cycle and energy cost of the counted search work.
func (m Model) Assess(c Counts) Breakdown {
	price := func(cycles float64) Cost {
		return Cost{Cycles: cycles, EnergyNJ: cycles * m.EnergyPerCycleNJ}
	}
	return Breakdown{
		Explorer: price(float64(c.PivotProjections)*m.ProjectCycles +
			float64(c.PivotCells)*m.ScoreCycles),
		Remap: price(float64(c.RemapProbes)*m.ProbeCycles +
			float64(c.RemapProjections)*m.ProjectCycles +
			float64(c.RemapCells)*m.ScoreCycles),
		Translation: price(float64(c.LadderProbes) * m.ProbeCycles),
		Recovery: price(float64(c.CheckerInstrs)*m.CheckCyclesPerInstr +
			float64(c.RetryCycles) +
			float64(c.RecoveryProbes)*m.ProbeExecCycles),
	}
}

// PerOffload divides a cost evenly over the offloads it was amortised
// across: the per-offload search overhead the hold periods and caches are
// supposed to keep negligible. A zero offload count returns the undivided
// cost (nothing to amortise over).
func (c Cost) PerOffload(offloads uint64) Cost {
	if offloads == 0 {
		return c
	}
	return Cost{
		Cycles:   c.Cycles / float64(offloads),
		EnergyNJ: c.EnergyNJ / float64(offloads),
	}
}

// LadderScanBound returns the worst-case mapper probes of one
// translation-time ladder scan on geometry g: every rung maps every trace
// op against every cell of the rung. It bounds (and sanity-checks) the
// counted LadderProbes per scan; the analytic form documents how the scan
// scales with the ladder and the fabric.
func LadderScanBound(l fabric.ShapeLadder, g fabric.Geometry, traceLen int) uint64 {
	var total uint64
	for _, s := range l.Shapes(g) {
		total += uint64(traceLen) * uint64(s.NumFUs())
	}
	return total
}

// RemapScanBound returns the worst-case mapper probes of one (shape ×
// anchor) rescue scan: the ladder bound multiplied by the anchor count.
func RemapScanBound(l fabric.ShapeLadder, g fabric.Geometry, traceLen int) uint64 {
	return LadderScanBound(l, g, traceLen) * uint64(g.NumFUs())
}
