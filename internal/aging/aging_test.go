package aging

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeltaVtFormula(t *testing.T) {
	c := DefaultConditions()
	// Hand-evaluated Eq. 1 at T=350K, Vdd=0.8, t=3, u=1:
	// 0.005 * exp(-1500/350) * 0.8^4 * 3^(1/6).
	want := 0.005 * math.Exp(-1500.0/350) * math.Pow(0.8, 4) * math.Pow(3, 1.0/6)
	if got := c.DeltaVt(3, 1); math.Abs(got-want) > 1e-15 {
		t.Errorf("DeltaVt(3,1) = %v, want %v", got, want)
	}
	if c.DeltaVt(0, 1) != 0 || c.DeltaVt(1, 0) != 0 {
		t.Error("zero time or utilization must give zero aging")
	}
}

func TestDeltaVtMonotonicity(t *testing.T) {
	c := DefaultConditions()
	f := func(a, b uint8) bool {
		t1 := 0.1 + float64(a)/16
		t2 := t1 + float64(b)/16 + 0.01
		return c.DeltaVt(t2, 0.5) > c.DeltaVt(t1, 0.5) &&
			c.DeltaVt(1, math.Min(t2, 1)) >= c.DeltaVt(1, math.Min(t1, 1))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDeltaVtDependsOnProduct(t *testing.T) {
	// ΔVt depends only on t·u: halving utilization doubles lifetime.
	c := DefaultConditions()
	a := c.DeltaVt(3, 1.0)
	b := c.DeltaVt(6, 0.5)
	if math.Abs(a-b) > 1e-15 {
		t.Errorf("DeltaVt(3,1)=%v != DeltaVt(6,0.5)=%v", a, b)
	}
}

func TestCalibration(t *testing.T) {
	m := NewModel()
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	// At the calibration point the delay increase is exactly the
	// threshold.
	if got := m.DelayIncrease(3, 1); math.Abs(got-0.10) > 1e-12 {
		t.Errorf("DelayIncrease(3,1) = %v, want 0.10", got)
	}
	if got := m.Lifetime(1); math.Abs(got-3) > 1e-12 {
		t.Errorf("Lifetime(1) = %v, want 3", got)
	}
}

// TestPaperScenarios reproduces the paper's Table I arithmetic: lifetime
// improvements from the published worst-case utilizations.
func TestPaperScenarios(t *testing.T) {
	m := NewModel()
	cases := []struct {
		name           string
		uBase, uProp   float64
		wantImprove    float64
		improveEpsilon float64
	}{
		{"BE", 0.945, 0.411, 2.29, 0.02},
		{"BP", 0.981, 0.224, 4.37, 0.02},
		{"BU", 0.981, 0.123, 7.97, 0.02},
	}
	for _, c := range cases {
		got := m.Improvement(c.uBase, c.uProp)
		if math.Abs(got-c.wantImprove) > c.improveEpsilon {
			t.Errorf("%s: improvement = %.3f, want %.2f", c.name, got, c.wantImprove)
		}
		// Cross-check: the lifetimes individually.
		lb, lp := m.Lifetime(c.uBase), m.Lifetime(c.uProp)
		if math.Abs(lp/lb-got) > 1e-9 {
			t.Errorf("%s: lifetime ratio %v inconsistent with improvement %v", c.name, lp/lb, got)
		}
	}
	// The paper's BE narrative: 10% degradation at ~3 years baseline vs
	// ~7 years proposed.
	if lb := m.Lifetime(0.945); math.Abs(lb-3.17) > 0.01 {
		t.Errorf("BE baseline lifetime = %.2f years, want ~3.17", lb)
	}
	if lp := m.Lifetime(0.411); math.Abs(lp-7.30) > 0.01 {
		t.Errorf("BE proposed lifetime = %.2f years, want ~7.30", lp)
	}
}

func TestLifetimeClosedFormMatchesNumeric(t *testing.T) {
	m := NewModel()
	for _, u := range []float64{1, 0.945, 0.5, 0.411, 0.224, 0.123, 0.056, 0.01} {
		closed := m.Lifetime(u)
		numeric := m.LifetimeNumeric(u)
		if math.Abs(closed-numeric)/closed > 1e-6 {
			t.Errorf("u=%v: closed %v vs numeric %v", u, closed, numeric)
		}
	}
}

func TestLifetimeEdgeCases(t *testing.T) {
	m := NewModel()
	if !math.IsInf(m.Lifetime(0), 1) {
		t.Error("zero utilization must never fail")
	}
	if !math.IsInf(m.Improvement(0.9, 0), 1) {
		t.Error("improvement to zero utilization must be infinite")
	}
	if m.Improvement(0, 0.5) != 1 {
		t.Error("improvement from zero baseline defaults to 1")
	}
}

func TestDelaySeries(t *testing.T) {
	m := NewModel()
	s := m.DelaySeries(0.945, 10, 4)
	if len(s) != 41 {
		t.Fatalf("series length %d, want 41", len(s))
	}
	if s[0].Years != 0 || s[0].Increase != 0 {
		t.Error("series must start at origin")
	}
	for i := 1; i < len(s); i++ {
		if s[i].Increase <= s[i-1].Increase {
			t.Fatalf("series not strictly increasing at %d", i)
		}
	}
	if s[len(s)-1].Years != 10 {
		t.Errorf("series ends at %v years, want 10", s[len(s)-1].Years)
	}
}

func TestGuardbandFrequency(t *testing.T) {
	m := NewModel()
	f := m.GuardbandFrequency(3, 1)
	want := 1 / 1.1
	if math.Abs(f-want) > 1e-12 {
		t.Errorf("guardband = %v, want %v", f, want)
	}
	if m.GuardbandFrequency(0, 1) != 1 {
		t.Error("fresh silicon needs no guardband")
	}
}

func TestConditionsValidate(t *testing.T) {
	bad := []Conditions{
		{TemperatureK: 0, Vdd: 0.8, Vt0: 0.3},
		{TemperatureK: 350, Vdd: 0, Vt0: 0.3},
		{TemperatureK: 350, Vdd: 3, Vt0: 0.3},
		{TemperatureK: 350, Vdd: 0.8, Vt0: 0.9},
		{TemperatureK: 350, Vdd: 0.8, Vt0: 0},
	}
	for _, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("conditions %+v accepted", c)
		}
	}
	if err := DefaultConditions().Validate(); err != nil {
		t.Error(err)
	}
}

func TestModelValidate(t *testing.T) {
	m := NewModel()
	m.FailThreshold = 0
	if err := m.Validate(); err == nil {
		t.Error("zero threshold accepted")
	}
	m = NewModel()
	m.CalibYears = -1
	if err := m.Validate(); err == nil {
		t.Error("negative calibration accepted")
	}
}

// Temperature and voltage sensitivity: hotter and higher-Vdd parts age
// faster (relevant to the lifetime-planning example).
func TestSensitivity(t *testing.T) {
	hot := DefaultConditions()
	hot.TemperatureK = 400
	cold := DefaultConditions()
	cold.TemperatureK = 300
	if hot.DeltaVt(3, 1) <= cold.DeltaVt(3, 1) {
		t.Error("hotter must age faster")
	}
	hi := DefaultConditions()
	hi.Vdd = 1.0
	if hi.DeltaVt(3, 1) <= DefaultConditions().DeltaVt(3, 1) {
		t.Error("higher Vdd must age faster")
	}
}
