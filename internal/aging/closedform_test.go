package aging

import (
	"math"
	"testing"
)

// TestLifetimeClosedForm pins Eq. 1's central consequence against the
// paper's calibration: because ΔVt depends on t and u only through t·u, the
// lifetime at the 10%-over-3-years calibration is exactly 3/u.
func TestLifetimeClosedForm(t *testing.T) {
	m := NewModel()
	for u := 0.001; u <= 1.0; u += 0.001 {
		if got, want := m.Lifetime(u), 3/u; math.Abs(got-want) > 1e-9 {
			t.Fatalf("Lifetime(%v) = %v, want 3/u = %v", u, got, want)
		}
	}
	// The paper's Table I utilization numbers, spot-checked.
	for _, c := range []struct{ u, years float64 }{
		{1.0, 3.0},
		{0.945, 3.0 / 0.945},
		{0.411, 3.0 / 0.411},
		{0.224, 3.0 / 0.224},
		{0.123, 3.0 / 0.123},
	} {
		if got := m.Lifetime(c.u); math.Abs(got-c.years) > 1e-9 {
			t.Errorf("Lifetime(%v) = %v, want %v", c.u, got, c.years)
		}
	}
	if !math.IsInf(m.Lifetime(0), 1) {
		t.Error("Lifetime(0) should be +Inf (an unused device never ages out)")
	}
}

// TestLifetimeNumericAgreesWithClosedForm validates the closed form against
// the bisection solver.
func TestLifetimeNumericAgreesWithClosedForm(t *testing.T) {
	m := NewModel()
	for _, u := range []float64{1.0, 0.945, 0.5, 0.411, 0.224, 0.123, 0.05} {
		cf, num := m.Lifetime(u), m.LifetimeNumeric(u)
		if math.Abs(cf-num)/cf > 1e-6 {
			t.Errorf("u=%v: closed form %v vs numeric %v", u, cf, num)
		}
	}
}

// TestDeltaVtMonotone checks ΔVt is strictly increasing in time, duty cycle
// and supply voltage — the physical sanity Eq. 1 must keep.
func TestDeltaVtMonotone(t *testing.T) {
	c := DefaultConditions()
	for i := 1; i < 200; i++ {
		t0, t1 := float64(i)*0.1, float64(i+1)*0.1
		if c.DeltaVt(t0, 0.5) >= c.DeltaVt(t1, 0.5) {
			t.Fatalf("DeltaVt not increasing in t at %v years", t0)
		}
	}
	for i := 1; i < 100; i++ {
		u0, u1 := float64(i)*0.01, float64(i+1)*0.01
		if c.DeltaVt(3, u0) >= c.DeltaVt(3, u1) {
			t.Fatalf("DeltaVt not increasing in u at %v", u0)
		}
	}
	for i := 0; i < 50; i++ {
		lo, hi := c, c
		lo.Vdd = 0.5 + float64(i)*0.01
		hi.Vdd = 0.5 + float64(i+1)*0.01
		if lo.DeltaVt(3, 0.5) >= hi.DeltaVt(3, 0.5) {
			t.Fatalf("DeltaVt not increasing in Vdd at %v V", lo.Vdd)
		}
	}
	if c.DeltaVt(0, 0.5) != 0 || c.DeltaVt(3, 0) != 0 {
		t.Error("DeltaVt must be zero at t=0 or u=0")
	}
}

// TestGuardbandConsistentWithDelay pins GuardbandFrequency == 1/(1+delay)
// and the calibration anchor: 10% delay at exactly (3 years, u=1).
func TestGuardbandConsistentWithDelay(t *testing.T) {
	m := NewModel()
	for _, years := range []float64{0.5, 1, 3, 7, 15} {
		for _, u := range []float64{0.1, 0.411, 0.945, 1} {
			d := m.DelayIncrease(years, u)
			if got, want := m.GuardbandFrequency(years, u), 1/(1+d); math.Abs(got-want) > 1e-12 {
				t.Errorf("GuardbandFrequency(%v, %v) = %v, want %v", years, u, got, want)
			}
		}
	}
	if got := m.DelayIncrease(m.CalibYears, m.CalibUtil); math.Abs(got-m.FailThreshold) > 1e-12 {
		t.Errorf("calibration point: delay %v, want %v", got, m.FailThreshold)
	}
	if got := m.GuardbandFrequency(3, 1); math.Abs(got-1/1.1) > 1e-12 {
		t.Errorf("guardband at end of life = %v, want %v", got, 1/1.1)
	}
}

// TestAccelerationFactor checks the damage-equivalence factor used by the
// lifetime simulator: 1 at calibration conditions, monotone in T and Vdd,
// and consistent with ΔVt equivalence — aging t years at conditions c
// produces the same ΔVt as t·AF years at calibration conditions.
func TestAccelerationFactor(t *testing.T) {
	m := NewModel()
	if got := m.AccelerationFactor(m.Cond); got != 1 {
		t.Fatalf("AccelerationFactor at calibration conditions = %v, want exactly 1", got)
	}

	hot := m.Cond
	hot.TemperatureK += 30
	if m.AccelerationFactor(hot) <= 1 {
		t.Error("hotter part must age faster")
	}
	cool := m.Cond
	cool.TemperatureK -= 30
	if m.AccelerationFactor(cool) >= 1 {
		t.Error("cooler part must age slower")
	}
	over := m.Cond
	over.Vdd += 0.1
	if m.AccelerationFactor(over) <= 1 {
		t.Error("overdriven part must age faster")
	}

	// Damage equivalence: ΔVt(t, u | c) == ΔVt(t·AF, u | calibration).
	for _, c := range []Conditions{hot, cool, over} {
		af := m.AccelerationFactor(c)
		for _, years := range []float64{0.5, 2, 10} {
			want := c.DeltaVt(years, 0.7)
			got := m.Cond.DeltaVt(years*af, 0.7)
			if math.Abs(got-want)/want > 1e-9 {
				t.Errorf("cond %+v: ΔVt(%v y) = %v, equivalent %v", c, years, want, got)
			}
		}
	}
}
