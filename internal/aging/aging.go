// Package aging implements the paper's NBTI model (Section II.A, Eq. 1):
//
//	ΔVt = 0.005 · e^(−1500/T) · Vdd⁴ · t^(1/6) · u^(1/6)
//
// with the delay degradation approximated to first order as the relative
// increase in Vt. The end-of-life criterion follows the paper's worst-case
// calibration: a device under 100% stress reaches 10% delay degradation
// after 3 years (the "10% over 3 years" literature estimate the paper
// adopts). Because ΔVt depends on the product t·u, the lifetime at a fixed
// degradation threshold scales exactly as 1/u — which is why the paper's
// lifetime improvement equals the worst-utilization ratio.
package aging

import (
	"fmt"
	"math"
)

// Conditions holds the operating point of the NBTI model.
type Conditions struct {
	// TemperatureK is the junction temperature in kelvin.
	TemperatureK float64
	// Vdd is the supply voltage in volts.
	Vdd float64
	// Vt0 is the nominal threshold voltage in volts, used to convert ΔVt
	// into relative delay degradation.
	Vt0 float64
}

// DefaultConditions is the worst-case corner used throughout: a hot 15nm
// low-power embedded part.
func DefaultConditions() Conditions {
	return Conditions{
		TemperatureK: 350, // 77°C hot spot
		Vdd:          0.8,
		Vt0:          0.35,
	}
}

// Validate checks physical plausibility.
func (c Conditions) Validate() error {
	if c.TemperatureK <= 0 {
		return fmt.Errorf("aging: temperature %v K must be positive", c.TemperatureK)
	}
	if c.Vdd <= 0 || c.Vdd > 2 {
		return fmt.Errorf("aging: Vdd %v V out of range", c.Vdd)
	}
	if c.Vt0 <= 0 || c.Vt0 >= c.Vdd {
		return fmt.Errorf("aging: Vt0 %v V must be in (0, Vdd)", c.Vt0)
	}
	return nil
}

// DeltaVt evaluates Eq. 1: the long-term NBTI-induced threshold-voltage
// increase (volts) after tYears years at duty cycle u in [0, 1].
func (c Conditions) DeltaVt(tYears, u float64) float64 {
	if tYears <= 0 || u <= 0 {
		return 0
	}
	return 0.005 *
		math.Exp(-1500/c.TemperatureK) *
		math.Pow(c.Vdd, 4) *
		math.Pow(tYears, 1.0/6) *
		math.Pow(u, 1.0/6)
}

// Model couples the NBTI conditions with the end-of-life calibration.
type Model struct {
	Cond Conditions
	// FailThreshold is the relative delay degradation considered
	// end-of-life (paper: 0.10).
	FailThreshold float64
	// CalibYears is the time to FailThreshold at u = CalibUtil
	// (paper: 3 years at worst case).
	CalibYears float64
	// CalibUtil is the duty cycle of the calibration device (1.0 = a
	// device stressed continuously).
	CalibUtil float64
}

// NewModel returns the paper's calibration: 10% degradation after 3 years
// of continuous worst-case stress.
func NewModel() Model {
	return Model{
		Cond:          DefaultConditions(),
		FailThreshold: 0.10,
		CalibYears:    3,
		CalibUtil:     1.0,
	}
}

// Validate checks the model parameters.
func (m Model) Validate() error {
	if err := m.Cond.Validate(); err != nil {
		return err
	}
	if m.FailThreshold <= 0 || m.FailThreshold >= 1 {
		return fmt.Errorf("aging: fail threshold %v out of (0,1)", m.FailThreshold)
	}
	if m.CalibYears <= 0 || m.CalibUtil <= 0 || m.CalibUtil > 1 {
		return fmt.Errorf("aging: calibration %v years at u=%v invalid", m.CalibYears, m.CalibUtil)
	}
	return nil
}

// delayScale converts ΔVt to relative delay degradation such that the
// calibration point lands exactly on FailThreshold.
func (m Model) delayScale() float64 {
	ref := m.Cond.DeltaVt(m.CalibYears, m.CalibUtil)
	if ref == 0 {
		return 0
	}
	return m.FailThreshold / ref
}

// DelayIncrease returns the relative delay degradation after tYears at
// duty cycle u (e.g. 0.1 = 10% slower).
func (m Model) DelayIncrease(tYears, u float64) float64 {
	return m.Cond.DeltaVt(tYears, u) * m.delayScale()
}

// Lifetime returns the years until the delay degradation reaches
// FailThreshold for a device at duty cycle u. Because ΔVt ∝ (t·u)^(1/6),
// the closed form is CalibYears · CalibUtil / u.
func (m Model) Lifetime(u float64) float64 {
	if u <= 0 {
		return math.Inf(1)
	}
	return m.CalibYears * m.CalibUtil / u
}

// LifetimeNumeric solves for the lifetime by bisection; it exists to
// validate the closed form and to support alternative delay mappings.
func (m Model) LifetimeNumeric(u float64) float64 {
	if u <= 0 {
		return math.Inf(1)
	}
	lo, hi := 0.0, 1e6
	for i := 0; i < 200; i++ {
		mid := (lo + hi) / 2
		if m.DelayIncrease(mid, u) < m.FailThreshold {
			lo = mid
		} else {
			hi = mid
		}
	}
	return (lo + hi) / 2
}

// AccelerationFactor returns how much faster NBTI damage accrues at
// operating conditions c than at the model's calibration conditions: the
// factor multiplying effective stress-years. From Eq. 1, ΔVt scales with
// K(T,Vdd) = e^(−1500/T)·Vdd⁴ and with (t·u)^(1/6), so matching the damage
// of one year at c takes (K(c)/K(cal))⁶ years at calibration conditions.
// Identical conditions return exactly 1.
func (m Model) AccelerationFactor(c Conditions) float64 {
	if c == m.Cond {
		return 1
	}
	k := func(c Conditions) float64 {
		return math.Exp(-1500/c.TemperatureK) * math.Pow(c.Vdd, 4)
	}
	return math.Pow(k(c)/k(m.Cond), 6)
}

// Improvement returns the lifetime-extension factor when the worst-case
// duty cycle drops from uBaseline to uProposed: the paper's Table I metric.
func (m Model) Improvement(uBaseline, uProposed float64) float64 {
	if uBaseline <= 0 {
		return 1
	}
	if uProposed <= 0 {
		return math.Inf(1)
	}
	return uBaseline / uProposed
}

// DelaySeries samples the delay degradation over the years for the Fig. 8
// (bottom) curves.
type DelayPoint struct {
	Years float64
	// Increase is the relative delay degradation.
	Increase float64
}

// DelaySeries returns maxYears+1 yearly samples of delay degradation for a
// device at duty cycle u, starting at year 0.
func (m Model) DelaySeries(u float64, maxYears int, perYear int) []DelayPoint {
	if perYear < 1 {
		perYear = 1
	}
	n := maxYears*perYear + 1
	out := make([]DelayPoint, n)
	for i := 0; i < n; i++ {
		t := float64(i) / float64(perYear)
		out[i] = DelayPoint{Years: t, Increase: m.DelayIncrease(t, u)}
	}
	return out
}

// GuardbandFrequency returns the fraction of nominal frequency a design
// must be clocked at to survive `years` at duty cycle u without timing
// failure: 1 / (1 + delay increase).
func (m Model) GuardbandFrequency(years, u float64) float64 {
	return 1 / (1 + m.DelayIncrease(years, u))
}
