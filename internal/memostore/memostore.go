// Package memostore is the concurrency-safe, content-addressed memo store
// behind the fleet-scale lifetime service: a bounded LRU map from a
// caller-chosen content key to an immutable computed value, with
// single-flight computation and hit/miss/eviction counters.
//
// The store itself is policy-free — it does not know what a scenario or an
// epoch is. The *keying discipline* is the caller's contract, and it is the
// same rule the per-run epoch memo established in PRs 2–6: a key must cover
// every input the cached computation's outcome is a pure function of
// (scenario fingerprint, health version, wear version, faults/monitor
// versions — whichever of those the computation observes). A key that
// under-describes its inputs returns stale values silently; nothing in this
// package can detect that.
//
// Invariants later PRs must preserve:
//
//   - Values are immutable once stored. A value may be handed to any number
//     of concurrent readers (fleet requests share one *lifetime.Result per
//     distinct device key), so callers must never mutate a value obtained
//     from — or inserted into — the store.
//   - GetOrCompute is single-flight per key: concurrent callers of the same
//     key block on one computation instead of duplicating it, and the
//     computed value (or error — errors are memoized too, matching the
//     historical dse.RefCache contract) is shared.
//   - Determinism: the store only ever substitutes a value for a
//     computation of the same key. Provided callers key correctly, a warm
//     store and a cold store produce byte-identical results — the service's
//     repeat-request and serial-vs-parallel determinism tests pin this.
package memostore

import (
	"container/list"
	"sync"
)

// Stats is a point-in-time snapshot of the store's counters.
type Stats struct {
	// Hits counts lookups served from the store, Misses lookups that had
	// to compute (GetOrCompute) or came back empty (Get).
	Hits   uint64 `json:"hits"`
	Misses uint64 `json:"misses"`
	// Evictions counts entries discarded by the LRU bound.
	Evictions uint64 `json:"evictions"`
	// Entries is the current entry count, Capacity the LRU bound
	// (0 = unbounded).
	Entries  int `json:"entries"`
	Capacity int `json:"capacity"`
}

// HitRate is Hits/(Hits+Misses); 0 before any lookup.
func (s Stats) HitRate() float64 {
	total := s.Hits + s.Misses
	if total == 0 {
		return 0
	}
	return float64(s.Hits) / float64(total)
}

type entry struct {
	key  any
	elem *list.Element
	once sync.Once
	val  any
	err  error
	// done reports that the single-flight computation has completed; it is
	// guarded by Store.mu. Entries still in flight are exempt from LRU
	// eviction (see evictLocked): evicting one would detach the map entry
	// from the running computation, so a racing caller of the same key
	// would silently start a duplicate.
	done bool
}

// Store is a content-addressed LRU memo map. Safe for concurrent use.
// Keys may be any comparable value; values are stored as written and must
// be treated as immutable by every caller.
type Store struct {
	mu  sync.Mutex
	cap int
	m   map[any]*entry
	lru *list.List // front = most recently used

	hits, misses, evictions uint64
}

// New builds an empty store bounded to capacity entries (<= 0: unbounded).
func New(capacity int) *Store {
	if capacity < 0 {
		capacity = 0
	}
	return &Store{cap: capacity, m: make(map[any]*entry), lru: list.New()}
}

// lookup returns the entry for key, creating (and LRU-inserting) it when
// absent. created reports whether this call created it.
func (s *Store) lookup(key any) (e *entry, created bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if e, ok := s.m[key]; ok {
		s.hits++
		s.lru.MoveToFront(e.elem)
		return e, false
	}
	s.misses++
	e = &entry{key: key}
	e.elem = s.lru.PushFront(e)
	s.m[key] = e
	s.evictLocked()
	return e, true
}

// evictLocked trims the store to capacity, walking from the LRU tail and
// skipping entries whose computation is still in flight. The store may
// therefore sit temporarily over capacity while computations run;
// GetOrCompute re-trims as each one completes. Requires s.mu held.
func (s *Store) evictLocked() {
	if s.cap <= 0 {
		return
	}
	for back := s.lru.Back(); back != nil && len(s.m) > s.cap; {
		victim := back.Value.(*entry)
		prev := back.Prev()
		if victim.done {
			s.lru.Remove(back)
			delete(s.m, victim.key)
			s.evictions++
		}
		back = prev
	}
}

// GetOrCompute returns the memoized value for key, running compute at most
// once per resident key (single-flight: concurrent callers of the same key
// share one computation). Errors are memoized alongside values: a key whose
// computation failed keeps failing until the entry is evicted. The returned
// value must be treated as immutable.
func (s *Store) GetOrCompute(key any, compute func() (any, error)) (any, error) {
	e, _ := s.lookup(key)
	e.once.Do(func() {
		e.val, e.err = compute()
		// Only now may the LRU evict this entry; trim any over-capacity
		// slack that eviction deferred while the computation ran.
		s.mu.Lock()
		e.done = true
		s.evictLocked()
		s.mu.Unlock()
	})
	return e.val, e.err
}

// Stats returns a snapshot of the store's counters.
func (s *Store) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return Stats{
		Hits:      s.hits,
		Misses:    s.misses,
		Evictions: s.evictions,
		Entries:   len(s.m),
		Capacity:  s.cap,
	}
}
