package memostore

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
)

func TestGetOrComputeMemoizes(t *testing.T) {
	s := New(0)
	calls := 0
	for i := 0; i < 3; i++ {
		v, err := s.GetOrCompute("k", func() (any, error) {
			calls++
			return 42, nil
		})
		if err != nil {
			t.Fatal(err)
		}
		if v.(int) != 42 {
			t.Fatalf("got %v", v)
		}
	}
	if calls != 1 {
		t.Fatalf("compute ran %d times, want 1", calls)
	}
	st := s.Stats()
	if st.Misses != 1 || st.Hits != 2 || st.Entries != 1 {
		t.Fatalf("stats %+v, want 1 miss, 2 hits, 1 entry", st)
	}
	if got := st.HitRate(); got < 0.66 || got > 0.67 {
		t.Fatalf("hit rate %v, want 2/3", got)
	}
}

func TestErrorsAreMemoized(t *testing.T) {
	s := New(0)
	boom := errors.New("boom")
	calls := 0
	for i := 0; i < 2; i++ {
		_, err := s.GetOrCompute("k", func() (any, error) {
			calls++
			return nil, boom
		})
		if !errors.Is(err, boom) {
			t.Fatalf("got %v, want boom", err)
		}
	}
	if calls != 1 {
		t.Fatalf("failing compute ran %d times, want 1 (errors memoized)", calls)
	}
}

func TestLRUEviction(t *testing.T) {
	s := New(2)
	get := func(k string) {
		t.Helper()
		if _, err := s.GetOrCompute(k, func() (any, error) { return k, nil }); err != nil {
			t.Fatal(err)
		}
	}
	get("a")
	get("b")
	get("a") // refresh a: b is now LRU
	get("c") // evicts b
	st := s.Stats()
	if st.Evictions != 1 || st.Entries != 2 {
		t.Fatalf("stats %+v, want 1 eviction, 2 entries", st)
	}
	// b must recompute; a must not.
	calls := 0
	if _, err := s.GetOrCompute("b", func() (any, error) { calls++; return "b", nil }); err != nil {
		t.Fatal(err)
	}
	if calls != 1 {
		t.Fatal("evicted key b served stale value")
	}
	calls = 0
	if _, err := s.GetOrCompute("a", func() (any, error) { calls++; return "a", nil }); err != nil {
		t.Fatal(err)
	}
	// Inserting b again (cap 2, entries a,c) evicted the LRU — which was a
	// after its refresh? No: order after get("c") is [c, a]; the b insert
	// makes [b, c] evicting a. So a recomputes here.
	if calls != 1 {
		t.Fatalf("expected a to have been evicted by b's reinsert")
	}
}

func TestUnboundedNeverEvicts(t *testing.T) {
	s := New(0)
	for i := 0; i < 1000; i++ {
		k := fmt.Sprintf("k%d", i)
		if _, err := s.GetOrCompute(k, func() (any, error) { return i, nil }); err != nil {
			t.Fatal(err)
		}
	}
	st := s.Stats()
	if st.Evictions != 0 || st.Entries != 1000 {
		t.Fatalf("stats %+v, want 0 evictions, 1000 entries", st)
	}
}

func TestSingleFlightConcurrent(t *testing.T) {
	s := New(0)
	var calls atomic.Int64
	var wg sync.WaitGroup
	start := make(chan struct{})
	const goroutines = 32
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			v, err := s.GetOrCompute("k", func() (any, error) {
				calls.Add(1)
				return 7, nil
			})
			if err != nil || v.(int) != 7 {
				t.Errorf("got %v, %v", v, err)
			}
		}()
	}
	close(start)
	wg.Wait()
	if calls.Load() != 1 {
		t.Fatalf("compute ran %d times under contention, want 1", calls.Load())
	}
	st := s.Stats()
	if st.Hits+st.Misses != goroutines {
		t.Fatalf("stats %+v, want %d lookups", st, goroutines)
	}
}

func TestStructKeys(t *testing.T) {
	type key struct {
		fp            string
		health, wear  uint64
		faults, monit uint64
	}
	s := New(0)
	k1 := key{fp: "a", health: 1, wear: 2}
	k2 := key{fp: "a", health: 1, wear: 3}
	if _, err := s.GetOrCompute(k1, func() (any, error) { return 1, nil }); err != nil {
		t.Fatal(err)
	}
	calls := 0
	if _, err := s.GetOrCompute(k2, func() (any, error) { calls++; return 2, nil }); err != nil {
		t.Fatal(err)
	}
	if calls != 1 {
		t.Fatal("distinct struct keys collided")
	}
}

// TestInFlightEntryNotEvicted pins the eviction fix: an entry whose
// computation is still running must not be evicted by the LRU bound —
// eviction would detach the map entry from the running computation, so a
// racing caller of the same key would start a duplicate. The store sits
// temporarily over capacity instead and trims once the computation lands.
func TestInFlightEntryNotEvicted(t *testing.T) {
	s := New(1)
	var aCalls atomic.Int64
	entered := make(chan struct{})
	block := make(chan struct{})
	results := make(chan any, 2)

	// First caller of "a": blocks mid-computation.
	go func() {
		v, _ := s.GetOrCompute("a", func() (any, error) {
			aCalls.Add(1)
			close(entered)
			<-block
			return "A", nil
		})
		results <- v
	}()
	<-entered

	// "b" lands while "a" is in flight; with cap=1 the old code evicted the
	// in-flight "a" here. Instead the LRU skips "a" and trims the completed
	// "b" itself once its computation lands — capacity is honored by
	// sacrificing the evictable entry, never the in-flight one.
	if v, err := s.GetOrCompute("b", func() (any, error) { return "B", nil }); err != nil || v != "B" {
		t.Fatalf("b: got %v, %v", v, err)
	}
	if st := s.Stats(); st.Entries != 1 || st.Evictions != 1 {
		t.Fatalf("want the completed \"b\" evicted and \"a\" kept: %+v", st)
	}

	// Second caller of "a" must join the in-flight computation, not start
	// its own. Its lookup registers as a hit; wait for that before
	// unblocking so the join provably raced with the running computation.
	go func() {
		v, _ := s.GetOrCompute("a", func() (any, error) {
			aCalls.Add(1)
			return "duplicate", nil
		})
		results <- v
	}()
	for s.Stats().Hits < 1 {
		runtime.Gosched()
	}
	close(block)

	for i := 0; i < 2; i++ {
		if v := <-results; v != "A" {
			t.Fatalf("caller %d of \"a\" got %v, want shared \"A\"", i, v)
		}
	}
	if n := aCalls.Load(); n != 1 {
		t.Fatalf("computation of \"a\" ran %d times, want 1 (single-flight)", n)
	}
	// At rest: exactly one resident entry, and it is "a" — a further call
	// hits the memo without recomputing.
	if v, _ := s.GetOrCompute("a", func() (any, error) { return "recomputed", nil }); v != "A" {
		t.Fatalf("\"a\" lost after completion: got %v", v)
	}
	if st := s.Stats(); st.Entries != 1 || st.Evictions != 1 {
		t.Fatalf("store not at capacity after completion: %+v", st)
	}
}
