package explore

import (
	"math"
	"testing"

	"agingcgra/internal/alloc"
	"agingcgra/internal/fabric"
)

// testConfig is an L-shaped three-cell configuration: wide enough that dead
// cells genuinely constrain placement, small enough that live placements
// exist until the fabric is nearly gone.
func testConfig(g fabric.Geometry) *fabric.Config {
	return &fabric.Config{
		StartPC: 0x1000,
		Geom:    g,
		Ops: []fabric.PlacedOp{
			{Seq: 0, Row: 0, Col: 0, Width: 1},
			{Seq: 1, Row: 0, Col: 1, Width: 1},
			{Seq: 2, Row: 1, Col: 0, Width: 1},
		},
		UsedCols: 2,
	}
}

// xorshift is the deterministic pseudo-random source the property tests
// derive wear patterns and kill orders from.
func xorshift(state *uint32) uint32 {
	*state ^= *state << 13
	*state ^= *state >> 17
	*state ^= *state << 5
	return *state
}

func anyLivePlacement(h *fabric.Health, cfg *fabric.Config, g fabric.Geometry) bool {
	for r := 0; r < g.Rows; r++ {
		for c := 0; c < g.Cols; c++ {
			if h.PlacementOK(cfg.Cells(), fabric.Offset{Row: r, Col: c}) {
				return true
			}
		}
	}
	return false
}

// TestNeverPlacesOnDeadFU kills cells one by one under an evolving wear map
// and checks the explorer's every proposal stays on live FUs for as long as
// any live placement exists.
func TestNeverPlacesOnDeadFU(t *testing.T) {
	g := fabric.NewGeometry(2, 8)
	cfg := testConfig(g)
	e := New(g)
	h := fabric.NewHealth(g)
	w := fabric.NewWear(g)
	e.SetHealth(h)
	e.SetWear(w)

	state := uint32(0x1234567)
	for kill := 0; kill < g.NumFUs(); kill++ {
		cell := fabric.Cell{
			Row: int(xorshift(&state)) % g.Rows,
			Col: int(xorshift(&state)) % g.Cols,
		}
		h.Kill(cell)
		w.Add(cell, float64(xorshift(&state)%100)/25)
		if !anyLivePlacement(h, cfg, g) {
			return // fabric exhausted: the controller falls back to the GPP
		}
		for i := 0; i < 40; i++ {
			off := e.Next(cfg)
			if !h.PlacementOK(cfg.Cells(), off) {
				t.Fatalf("after %d kills: explorer proposed dead placement %v (dead: %v)",
					h.DeadCount(), off, h.DeadCells())
			}
			e.ObserveStress(cfg.Cells(), off, uint64(10+i))
		}
	}
}

// TestNeverWorseThanSkipScan pins the explorer's defining property: its
// placement minimises the maximum projected ΔVt over every live pivot, so
// in particular it never scores worse than the skip-scan fallback it
// replaces (the pattern walk advanced to the first live pivot).
func TestNeverWorseThanSkipScan(t *testing.T) {
	g := fabric.NewGeometry(2, 8)
	cfg := testConfig(g)
	snake := alloc.Snake{}.Sequence(g)

	state := uint32(0xbeef)
	for trial := 0; trial < 50; trial++ {
		e := New(g)
		h := fabric.NewHealth(g)
		w := fabric.NewWear(g)
		for i := 0; i < g.NumFUs(); i++ {
			cell := fabric.Cell{Row: i / g.Cols, Col: i % g.Cols}
			w.Add(cell, float64(xorshift(&state)%1000)/100)
			if xorshift(&state)%5 == 0 {
				h.Kill(cell)
			}
		}
		if !anyLivePlacement(h, cfg, g) {
			continue
		}
		e.SetHealth(h)
		e.SetWear(w)

		chosen := e.Next(cfg)
		chosenScore := e.Score(cfg, chosen)

		// Argmin over the whole live pivot space...
		for r := 0; r < g.Rows; r++ {
			for c := 0; c < g.Cols; c++ {
				off := fabric.Offset{Row: r, Col: c}
				if !h.PlacementOK(cfg.Cells(), off) {
					continue
				}
				if s := e.Score(cfg, off); chosenScore > s+1e-15 {
					t.Fatalf("trial %d: explorer score %v at %v beaten by %v at %v",
						trial, chosenScore, chosen, s, off)
				}
			}
		}
		// ...which subsumes the skip-scan fallback: the first live pivot of
		// the snake walk, from any starting phase.
		for phase := range snake {
			for k := 0; k < len(snake); k++ {
				off := snake[(phase+k)%len(snake)]
				if h.PlacementOK(cfg.Cells(), off) {
					if s := e.Score(cfg, off); chosenScore > s+1e-15 {
						t.Fatalf("trial %d: explorer worse than skip-scan pivot %v", trial, off)
					}
					break
				}
			}
		}
	}
}

// TestWearSteersPlacement seeds heavy wear on the left half of the fabric
// and checks the explorer's placement avoids the most-degraded cells.
func TestWearSteersPlacement(t *testing.T) {
	g := fabric.NewGeometry(2, 8)
	cfg := testConfig(g)
	e := New(g)
	w := fabric.NewWear(g)
	for r := 0; r < g.Rows; r++ {
		for c := 0; c < 4; c++ {
			w.Add(fabric.Cell{Row: r, Col: c}, 2.5)
		}
	}
	e.SetWear(w)

	off := e.Next(cfg)
	for _, cell := range cfg.Cells() {
		p := off.Apply(cell, g)
		if y := w.YearsAt(p); y > 0 {
			t.Fatalf("placement %v touches worn cell %v (%.1f stress-years) although fresh cells fit",
				off, p, y)
		}
	}
}

// TestRecomputesOnWearChange pins the staleness rule: a wear update between
// executions forces an immediate re-exploration instead of waiting out the
// RecomputeEvery hold period.
func TestRecomputesOnWearChange(t *testing.T) {
	g := fabric.NewGeometry(1, 8)
	cfg := &fabric.Config{
		StartPC:  0x1000,
		Geom:     g,
		Ops:      []fabric.PlacedOp{{Seq: 0, Row: 0, Col: 0, Width: 1}},
		UsedCols: 1,
	}
	e := New(g, WithRecomputeEvery(1000))
	w := fabric.NewWear(g)
	e.SetWear(w)

	first := e.Next(cfg)
	if first != (fabric.Offset{}) {
		t.Fatalf("fresh fabric placement %v, want the zero offset", first)
	}
	// Age the held cell far past everything else: the held pivot is stale.
	w.Add(fabric.Cell{Row: 0, Col: 0}, 10)
	next := e.Next(cfg)
	if next == first {
		t.Fatalf("explorer held pivot %v across a wear change", next)
	}
	p := next.Apply(fabric.Cell{Row: 0, Col: 0}, g)
	if w.YearsAt(p) != 0 {
		t.Fatalf("re-exploration landed on worn cell %v", p)
	}
}

// TestHorizonProjectionIsFinite sanity-checks Score: projected ΔVt must be
// finite and monotone in accumulated wear.
func TestHorizonProjectionIsFinite(t *testing.T) {
	g := fabric.NewGeometry(2, 8)
	cfg := testConfig(g)
	e := New(g)
	w := fabric.NewWear(g)
	e.SetWear(w)

	s0 := e.Score(cfg, fabric.Offset{})
	if math.IsNaN(s0) || math.IsInf(s0, 0) || s0 < 0 {
		t.Fatalf("fresh-fabric score %v", s0)
	}
	w.Add(fabric.Cell{Row: 0, Col: 0}, 3)
	s1 := e.Score(cfg, fabric.Offset{})
	if !(s1 > s0) {
		t.Fatalf("score did not grow with wear: %v -> %v", s0, s1)
	}
}

// TestHeldPivotRevalidatedPerConfig regresses the small-fabric trap: the
// pivot held for one configuration's footprint must not be proposed for a
// different footprint it would dead-hit. The controller's skip-scan is
// bounded by NumFUs proposals, so on fabrics smaller than the hold period a
// stale proposal repeated NumFUs times would wrongly force a GPP fallback.
func TestHeldPivotRevalidatedPerConfig(t *testing.T) {
	g := fabric.NewGeometry(2, 4) // NumFUs = 8 < the 16-execution hold
	narrow := &fabric.Config{
		StartPC:  0x1000,
		Geom:     g,
		Ops:      []fabric.PlacedOp{{Seq: 0, Row: 0, Col: 0, Width: 1}},
		UsedCols: 1,
	}
	wide := &fabric.Config{
		StartPC: 0x2000,
		Geom:    g,
		Ops: []fabric.PlacedOp{
			{Seq: 0, Row: 0, Col: 0, Width: 1},
			{Seq: 1, Row: 1, Col: 0, Width: 1},
		},
		UsedCols: 1,
	}
	e := New(g)
	h := fabric.NewHealth(g)
	e.SetHealth(h)
	e.SetWear(fabric.NewWear(g))

	// Hold a pivot explored for the narrow footprint...
	held := e.Next(narrow)
	// ...then kill the cell directly below it, so the wide footprint
	// dead-hits at the held pivot while plenty of live placements remain.
	h.Kill(held.Apply(fabric.Cell{Row: 1, Col: 0}, g))
	// Burn the post-kill staleness recompute on the narrow config: its
	// single-cell footprint stays clear of the dead cell, so the held
	// pivot can legitimately survive this exploration.
	e.Next(narrow)

	for i := 0; i < g.NumFUs(); i++ {
		off := e.Next(wide)
		if !h.PlacementOK(wide.Cells(), off) {
			t.Fatalf("proposal %d for the wide footprint dead-hits at %v", i, off)
		}
	}
}

// TestHoldPeriodCountsCommittedExecutions regresses the hold-period
// accounting bug: the RecomputeEvery clock must advance on committed
// executions (ObserveStress), not on allocator proposals. The controller's
// dead-cell skip-scan calls Next up to NumFUs times per offload, so under
// the pre-fix per-proposal counting a skip-scan-heavy workload silently
// eroded RecomputeEvery=16 toward "recompute every offload" (and could
// re-explore mid-scan). The scenario drives exactly that mix: one
// placeable kernel committed once per round, plus one unplaceable kernel
// whose offload burns a full NumFUs-proposal skip-scan every round.
func TestHoldPeriodCountsCommittedExecutions(t *testing.T) {
	g := fabric.NewGeometry(2, 4) // NumFUs = 8, below the 16-commit hold
	narrow := &fabric.Config{
		StartPC:  0x1000,
		Geom:     g,
		Ops:      []fabric.PlacedOp{{Seq: 0, Row: 0, Col: 0, Width: 1}},
		UsedCols: 1,
	}
	// The wide kernel needs the whole fabric: one dead cell anywhere makes
	// it unplaceable, so the controller's Place loop proposes NumFUs times.
	var wideOps []fabric.PlacedOp
	for i := 0; i < g.NumFUs(); i++ {
		wideOps = append(wideOps, fabric.PlacedOp{
			Seq: i, Row: i / g.Cols, Col: i % g.Cols, Width: 1,
		})
	}
	wide := &fabric.Config{StartPC: 0x2000, Geom: g, Ops: wideOps, UsedCols: g.Cols}

	e := New(g) // RecomputeEvery = 16
	h := fabric.NewHealth(g)
	h.Kill(fabric.Cell{Row: 1, Col: 3})
	e.SetHealth(h)
	e.SetWear(fabric.NewWear(g))

	const rounds = 40
	for i := 0; i < rounds; i++ {
		// One committed offload of the placeable kernel...
		off := e.Next(narrow)
		if !h.PlacementOK(narrow.Cells(), off) {
			t.Fatalf("round %d: narrow proposal %v dead-hits", i, off)
		}
		e.ObserveStress(narrow.Cells(), off, 10)
		// ...then the controller's full skip-scan for the unplaceable one.
		for j := 0; j < g.NumFUs(); j++ {
			if off := e.Next(wide); h.PlacementOK(wide.Cells(), off) {
				t.Fatalf("round %d: wide kernel placed despite the dead cell at %v", i, off)
			}
		}
	}

	// 40 commits at RecomputeEvery=16 re-explore the narrow kernel at
	// commits 0, 16 and 32; the unplaceable wide kernel costs exactly one
	// exploration for the whole (unchanged) health state. Per-proposal
	// counting would have advanced the clock 9x per round and rescanned the
	// unplaceable footprint on every proposal — hundreds of explorations.
	if got := e.Explorations(); got != 4 {
		t.Errorf("%d explorations over %d rounds, want 4 (3 narrow re-explorations + 1 wide no-live scan)",
			got, rounds)
	}
}

// TestHeldPivotKeyedPerConfig regresses the shared-pivot bug: with a
// multi-kernel mix the explorer used to hold one global pivot, so kernel B
// inherited a pivot explored for kernel A's footprint — liveness was
// revalidated but the wear score was not, and B could ride a
// wear-suboptimal placement for a whole hold period. Keyed per StartPC,
// each kernel's first proposal is the argmin for its own footprint.
func TestHeldPivotKeyedPerConfig(t *testing.T) {
	g := fabric.NewGeometry(2, 8)
	kernelA := &fabric.Config{ // single-cell footprint
		StartPC:  0x1000,
		Geom:     g,
		Ops:      []fabric.PlacedOp{{Seq: 0, Row: 0, Col: 0, Width: 1}},
		UsedCols: 1,
	}
	kernelB := &fabric.Config{ // vertical pair: needs both rows of a column
		StartPC: 0x2000,
		Geom:    g,
		Ops: []fabric.PlacedOp{
			{Seq: 0, Row: 0, Col: 0, Width: 1},
			{Seq: 1, Row: 1, Col: 0, Width: 1},
		},
		UsedCols: 1,
	}

	e := New(g)
	// Background wear of 1y everywhere; (0,3) is the uniquely freshest
	// single cell (A's argmin) but its row-1 neighbour is the most worn
	// cell of the fabric, so the shared pivot would be the worst possible
	// inheritance for B, whose own argmin is the column-5 pair.
	fresh := fabric.Cell{Row: 0, Col: 3} // A's argmin
	pairCol := 5                         // B's argmin column
	w := fabric.NewWear(g)
	for r := 0; r < g.Rows; r++ {
		for c := 0; c < g.Cols; c++ {
			cell := fabric.Cell{Row: r, Col: c}
			switch {
			case cell == fresh: // 0y: A's unique argmin
			case cell == (fabric.Cell{Row: 1, Col: 3}):
				w.Add(cell, 5) // the trap below A's pivot
			case c == pairCol:
				w.Add(cell, 0.1) // B's argmin pair
			default:
				w.Add(cell, 1)
			}
		}
	}
	e.SetWear(w)

	offA := e.Next(kernelA)
	if got := offA.Apply(fabric.Cell{Row: 0, Col: 0}, g); got != fresh {
		t.Fatalf("kernel A placed on %v, want the freshest cell %v", got, fresh)
	}
	offB := e.Next(kernelB)
	worst := 0.0
	for _, cell := range kernelB.Cells() {
		if y := w.YearsAt(offB.Apply(cell, g)); y > worst {
			worst = y
		}
	}
	if worst > 0.1 {
		t.Errorf("kernel B inherited a wear-suboptimal pivot %v (worst cell %v stress-years); want its own argmin pair at column %d",
			offB, worst, pairCol)
	}
}
