// Package explore implements the wear-aware placement explorer: the
// HeLEx-style health/layout exploration the paper leaves as future work.
//
// The utilization-aware allocators balance duty a priori by rotating a
// pivot; once cells start dying, the controller's skip-scan merely advances
// that rotation to the first live pivot, so post-failure wear
// re-concentrates on whichever survivors happen to sit next in the pattern.
// The Explorer instead *chooses* among live placements: for every candidate
// pivot of a translation it projects the post-placement wear of each FU the
// configuration would touch — the accumulated stress-years threaded out of
// the lifetime simulator (fabric.Wear) plus the pattern's observed duty
// footprint projected over a short horizon — evaluates the projected ΔVt
// under the paper's Eq. 1 NBTI model, and picks the placement minimising the
// maximum projected ΔVt. Minimising the worst projected degradation is
// exactly maximising the time until the next FU crosses the end-of-life
// threshold.
//
// Because an exhaustive pivot search per execution would be costly in
// hardware, the search runs every RecomputeEvery *committed* executions and
// the chosen pivot is held in between; a health or wear state change forces
// an immediate re-exploration, mirroring alloc.HealthAware. The hold period
// counts executions the controller actually committed (ObserveStress), not
// allocator proposals: the controller's dead-cell skip-scan may call Next
// up to NumFUs times per offload, and counting those proposals would
// silently erode RecomputeEvery toward "recompute every offload" on
// failing fabrics. The held pivot is additionally keyed per configuration
// (object identity — StartPC alone collides across a mix's programs,
// which share a text base): a pivot explored for one kernel's footprint
// is never blindly inherited by another kernel whose footprint it may be
// wear-suboptimal (or dead-hitting) for. The cost of the scans is no longer asserted
// cheap: the explorer counts its explorations and per-cell evaluations,
// and internal/searchcost derives the per-offload overhead from them.
package explore

import (
	"fmt"
	"math"

	"agingcgra/internal/aging"
	"agingcgra/internal/alloc"
	"agingcgra/internal/fabric"
	"agingcgra/internal/searchcost"
)

// Explorer is the wear-aware placement explorer. It implements
// alloc.Allocator plus the three feedback interfaces the controller
// forwards: HealthSetter (dead cells), WearSetter (cross-epoch
// stress-years) and StressObserver (within-run duty).
type Explorer struct {
	geom  fabric.Geometry
	model aging.Model
	// horizonYears scales the within-run duty footprint into projected
	// stress-years: the explorer assumes the observed allocation pattern
	// persists for this long when ranking candidate placements.
	horizonYears float64
	// recomputeEvery is the pivot re-exploration period in executions.
	recomputeEvery uint64

	health *fabric.Health
	wear   *fabric.Wear

	// Within-run observed stress (physical cells, row-major), fed back by
	// the controller on every committed execution.
	stress []uint64
	active uint64

	// count is the number of committed executions observed so far: the
	// clock the hold period runs on. Allocator proposals (Next calls) do
	// not advance it — only ObserveStress does.
	count uint64
	// pivots holds the per-configuration exploration state: the held
	// pivot, the commit count at which it expires, and the fabric-state
	// versions it was explored under. The key is the configuration object
	// itself, not its StartPC: one allocator serves every benchmark of a
	// lifetime mix and the programs share a text base, so distinct
	// kernels can collide on a PC while their footprints (and therefore
	// their pivot argmins and no-live verdicts) differ. The map is never
	// iterated, so pointer keying stays deterministic.
	pivots map[*fabric.Config]*pivotState

	// cellVt caches the per-cell projected ΔVt of the last exploration; the
	// projection depends only on the cell, not on the candidate pivot, so
	// one pass amortises the Eq. 1 evaluation across the whole pivot scan.
	cellVt []float64

	// counts tallies the search work for the derived cost model.
	counts searchcost.Counts
}

// pivotState is one configuration's held exploration outcome.
type pivotState struct {
	off fabric.Offset
	// nextAt is the committed-execution count at which the pivot expires.
	nextAt uint64
	// healthVer/wearVer are the fabric-state versions the pivot was
	// explored under; either moving marks it stale.
	healthVer uint64
	wearVer   uint64
	// noLive records that the exploration found no live placement for this
	// footprint at healthVer: further proposals skip the (futile) rescan
	// until the health state changes, so an unplaceable configuration
	// costs one exploration per fabric state instead of one per proposal.
	noLive bool
}

// Option configures the Explorer.
type Option func(*Explorer)

// WithModel selects the NBTI model scoring projected wear (default
// aging.NewModel, the paper's calibration).
func WithModel(m aging.Model) Option {
	return func(e *Explorer) { e.model = m }
}

// WithHorizon sets the projection horizon in years (default 1).
func WithHorizon(years float64) Option {
	return func(e *Explorer) {
		if years > 0 {
			e.horizonYears = years
		}
	}
}

// WithRecomputeEvery sets the pivot re-exploration period (default 16,
// matching alloc.HealthAware).
func WithRecomputeEvery(n int) Option {
	return func(e *Explorer) {
		if n >= 1 {
			e.recomputeEvery = uint64(n)
		}
	}
}

// New builds a wear-aware placement explorer for the geometry.
func New(g fabric.Geometry, opts ...Option) *Explorer {
	e := &Explorer{
		geom:           g,
		model:          aging.NewModel(),
		horizonYears:   1,
		recomputeEvery: 16,
		stress:         make([]uint64, g.NumFUs()),
		pivots:         make(map[*fabric.Config]*pivotState),
		cellVt:         make([]float64, g.NumFUs()),
	}
	for _, o := range opts {
		o(e)
	}
	return e
}

// Name implements alloc.Allocator.
func (e *Explorer) Name() string {
	return fmt.Sprintf("explore/every=%d", e.recomputeEvery)
}

// SetHealth implements alloc.HealthSetter.
func (e *Explorer) SetHealth(h *fabric.Health) { e.health = h }

// SetWear implements alloc.WearSetter.
func (e *Explorer) SetWear(w *fabric.Wear) { e.wear = w }

// ObserveStress implements alloc.StressObserver. Committed executions are
// also the clock of the pivot hold period: one commit advances the count
// by one, however many proposals the controller's skip-scan consumed to
// place it.
func (e *Explorer) ObserveStress(cells []fabric.Cell, off fabric.Offset, cycles uint64) {
	for _, cell := range cells {
		p := off.Apply(cell, e.geom)
		e.stress[p.Row*e.geom.Cols+p.Col] += cycles
	}
	e.active += cycles
	e.count++
}

// versions snapshots the observable fabric-state versions (zero when a map
// is not attached).
func (e *Explorer) versions() (healthVer, wearVer uint64) {
	if e.health != nil {
		healthVer = e.health.Version()
	}
	if e.wear != nil {
		wearVer = e.wear.Version()
	}
	return healthVer, wearVer
}

// Next implements alloc.Allocator: the configuration's held pivot,
// re-explored once its hold period of recomputeEvery committed executions
// expires, immediately on health/wear changes, and whenever the held pivot
// would drive the footprint onto a dead FU. The last rule matters on
// fabrics smaller than the hold period: the controller's skip-scan is
// bounded by NumFUs proposals, so without it a stale pivot could exhaust
// the scan and force a GPP fallback although live placements exist.
//
// The pivot (and its hold state) is keyed by the configuration object:
// with a multi-kernel mix, one kernel never inherits a pivot explored for
// another kernel's footprint — the inherited liveness check used to save
// correctness there, but the wear score was never revalidated, so the
// second kernel could ride a wear-suboptimal pivot for a whole hold
// period. Proposals do not advance the hold clock (ObserveStress does), so
// repeated skip-scan calls within one offload can neither erode the period
// nor trigger a mid-scan re-exploration.
func (e *Explorer) Next(cfg *fabric.Config) fabric.Offset {
	if cfg == nil {
		return fabric.Offset{}
	}
	st, ok := e.pivots[cfg]
	if !ok {
		st = &pivotState{}
		e.pivots[cfg] = st
		st.nextAt = e.count // unexplored: force the first search
	}
	healthVer, wearVer := e.versions()
	stale := st.healthVer != healthVer || st.wearVer != wearVer
	recompute := stale || e.count >= st.nextAt
	if !recompute && e.health != nil && e.health.DeadCount() > 0 &&
		!e.health.PlacementOK(cfg.Cells(), st.off) {
		// The footprint dead-hits the held pivot. If the last exploration
		// under this exact health state already proved no live placement
		// exists, rescanning is futile — the controller will fall back to
		// the GPP; otherwise re-explore immediately.
		if st.noLive {
			return st.off
		}
		recompute = true
	}
	if recompute {
		if st.noLive && !stale {
			// Known-unplaceable under an unchanged health state: the expiry
			// of the hold period cannot create a live placement.
			st.nextAt = e.count + e.recomputeEvery
			return st.off
		}
		st.healthVer, st.wearVer = healthVer, wearVer
		st.off = e.Explore(cfg)
		st.nextAt = e.count + e.recomputeEvery
		st.noLive = e.health != nil && e.health.DeadCount() > 0 &&
			!e.health.PlacementOK(cfg.Cells(), st.off)
	}
	return st.off
}

// projectCells fills cellVt with each physical cell's projected ΔVt:
// accumulated cross-epoch stress-years plus the within-run duty footprint
// extended over the horizon, evaluated under Eq. 1. The projection is a
// per-cell property — candidate pivots only decide *which* cells the
// configuration stresses next — so it is computed once per exploration.
func (e *Explorer) projectCells() {
	for r := 0; r < e.geom.Rows; r++ {
		for c := 0; c < e.geom.Cols; c++ {
			i := r*e.geom.Cols + c
			years := 0.0
			if e.wear != nil {
				years = e.wear.YearsAt(fabric.Cell{Row: r, Col: c})
			}
			if e.active > 0 {
				duty := float64(e.stress[i]) / float64(e.active)
				years += duty * e.horizonYears
			}
			// Eq. 1 depends on t and u only through t·u, so stress-years at
			// u=1 give the cell's ΔVt directly.
			e.cellVt[i] = e.model.Cond.DeltaVt(years, 1)
		}
	}
}

// Explore scans every pivot and returns the live placement minimising the
// maximum projected ΔVt over the cells the configuration would occupy; ties
// break by total projected ΔVt, then by row-major pivot order for
// determinism. Pivots whose placement would drive a dead FU are excluded;
// when no live placement exists the zero offset is returned and the
// controller's own health check rejects the offload (GPP fallback).
func (e *Explorer) Explore(cfg *fabric.Config) fabric.Offset {
	e.projectCells()
	cells := cfg.Cells()
	checkHealth := e.health != nil && e.health.DeadCount() > 0
	best := fabric.Offset{}
	bestMax := math.Inf(1)
	bestSum := math.Inf(1)
	found := false
	e.counts.PivotScans++
	e.counts.PivotProjections += uint64(e.geom.NumFUs())
	for r := 0; r < e.geom.Rows; r++ {
		for c := 0; c < e.geom.Cols; c++ {
			off := fabric.Offset{Row: r, Col: c}
			if checkHealth && !e.health.PlacementOK(cells, off) {
				continue
			}
			e.counts.PivotCells += uint64(len(cells))
			maxVt, sumVt := e.scoreProjected(cells, off)
			if !found || maxVt < bestMax || (maxVt == bestMax && sumVt < bestSum) {
				best, bestMax, bestSum, found = off, maxVt, sumVt, true
			}
		}
	}
	return best
}

// scoreProjected evaluates one candidate against the cached projection.
func (e *Explorer) scoreProjected(cells []fabric.Cell, off fabric.Offset) (maxVt, sumVt float64) {
	for _, cell := range cells {
		p := off.Apply(cell, e.geom)
		vt := e.cellVt[p.Row*e.geom.Cols+p.Col]
		if vt > maxVt {
			maxVt = vt
		}
		sumVt += vt
	}
	return maxVt, sumVt
}

// Score returns the maximum projected ΔVt of placing cfg at off under the
// explorer's current state: the objective Explore minimises. Exposed so
// tests (and diagnostics) can compare the explorer's choice against
// alternatives such as the skip-scan fallback it replaces.
func (e *Explorer) Score(cfg *fabric.Config, off fabric.Offset) float64 {
	e.projectCells()
	return e.ProjectedScore(cfg, off)
}

// Reproject refreshes the per-cell ΔVt projection table ProjectedScore
// evaluates against. Callers scoring many candidates under one fabric
// state (the shape-adaptive remapper's (shape × anchor) search) pay the
// Eq. 1 pass once here instead of once per Score call.
func (e *Explorer) Reproject() { e.projectCells() }

// ProjectedScore evaluates one candidate against the last projection
// (see Reproject); Score is Reproject followed by ProjectedScore.
func (e *Explorer) ProjectedScore(cfg *fabric.Config, off fabric.Offset) float64 {
	maxVt, _ := e.scoreProjected(cfg.Cells(), off)
	return maxVt
}

// SearchCounts implements searchcost.Instrumented: the accumulated pivot
// scans, per-cell score evaluations and projection refreshes the derived
// cost model prices. Explorations counts full scans directly — the number
// the hold-period regression tests pin.
func (e *Explorer) SearchCounts() searchcost.Counts { return e.counts }

// Explorations returns how many full pivot scans ran so far.
func (e *Explorer) Explorations() uint64 { return e.counts.PivotScans }

var (
	_ alloc.Allocator         = (*Explorer)(nil)
	_ alloc.HealthSetter      = (*Explorer)(nil)
	_ alloc.WearSetter        = (*Explorer)(nil)
	_ alloc.StressObserver    = (*Explorer)(nil)
	_ searchcost.Instrumented = (*Explorer)(nil)
)
