// Package explore implements the wear-aware placement explorer: the
// HeLEx-style health/layout exploration the paper leaves as future work.
//
// The utilization-aware allocators balance duty a priori by rotating a
// pivot; once cells start dying, the controller's skip-scan merely advances
// that rotation to the first live pivot, so post-failure wear
// re-concentrates on whichever survivors happen to sit next in the pattern.
// The Explorer instead *chooses* among live placements: for every candidate
// pivot of a translation it projects the post-placement wear of each FU the
// configuration would touch — the accumulated stress-years threaded out of
// the lifetime simulator (fabric.Wear) plus the pattern's observed duty
// footprint projected over a short horizon — evaluates the projected ΔVt
// under the paper's Eq. 1 NBTI model, and picks the placement minimising the
// maximum projected ΔVt. Minimising the worst projected degradation is
// exactly maximising the time until the next FU crosses the end-of-life
// threshold.
//
// # Incremental projection
//
// The projection inputs are maintained as deltas, not recomputed per scan:
// ObserveStress adjusts only the cells of the committed footprint (the
// dirty set of one commit is exactly the placement's physical cells), and
// the cross-epoch wear snapshot is reconciled only when fabric.Wear's
// version moves — between commits the snapshot is provably clean. The scan
// itself never evaluates Eq. 1 per cell: a cell's projected stress-years
// are wearY[i] + stress[i]·(horizon/active), one fused multiply-add against
// the incrementally maintained tables, and because Eq. 1's ΔVt is strictly
// increasing in stress-years (it depends on t and u only through t·u), the
// pivot minimising the maximum projected years is exactly the pivot
// minimising the maximum projected ΔVt — the model is applied once to the
// winning maximum instead of once per cell. Ties on the maximum break by
// the footprint's total projected stress-years, then by row-major pivot
// order, so the scan stays deterministic.
//
// The scan prunes: a candidate whose running maximum already exceeds the
// best-so-far (seeded from the previously held pivot's score) cannot win
// and its remaining cells are not scored. Pruning, parallel striping and
// the incremental tables are simulator-side shortcuts around the *same*
// argmin; the searchcost counters keep reporting the work the modeled
// hardware search engine would issue — one projection-table refresh per
// cell per scan and one score evaluation per cell of every live candidate —
// so counted work is identical between the pruned/parallel scan and a full
// serial rescan (the argmin-equals-full-scan property test pins both).
//
// Because an exhaustive pivot search per execution would be costly in
// hardware, the search runs every RecomputeEvery *committed* executions and
// the chosen pivot is held in between; a health or wear state change forces
// an immediate re-exploration, mirroring alloc.HealthAware. The hold period
// counts executions the controller actually committed (ObserveStress), not
// allocator proposals: the controller's dead-cell skip-scan may call Next
// up to NumFUs times per offload, and counting those proposals would
// silently erode RecomputeEvery toward "recompute every offload" on
// failing fabrics. The held pivot is additionally keyed per configuration
// (object identity — StartPC alone collides across a mix's programs,
// which share a text base): a pivot explored for one kernel's footprint
// is never blindly inherited by another kernel whose footprint it may be
// wear-suboptimal (or dead-hitting) for. The cost of the scans is no longer
// asserted cheap: the explorer counts its explorations and per-cell
// evaluations, and internal/searchcost derives the per-offload overhead
// from them.
//
// # Snapshot consistency
//
// Score and ProjectedScore always evaluate against the same incrementally
// maintained state the pivot scan reads — there is no separately cached
// per-cell ΔVt table that can go stale between a scan and an external
// scoring call. The shape-adaptive remapper's reshape comparison and the
// explorer's own argmin therefore score against the same snapshot by
// construction; Reproject remains as the explicit synchronisation point
// callers use before scoring candidates concurrently.
package explore

import (
	"fmt"
	"math"
	"runtime"

	"agingcgra/internal/aging"
	"agingcgra/internal/alloc"
	"agingcgra/internal/fabric"
	"agingcgra/internal/pscan"
	"agingcgra/internal/searchcost"
)

// minParallelPivots is the smallest pivot count worth fanning a scan out
// over goroutines: below it the per-stripe bookkeeping costs more than the
// scan. The paper's 4x8 fabric always scans serially; the wide sweep
// geometries cross the threshold.
const minParallelPivots = 64

// Explorer is the wear-aware placement explorer. It implements
// alloc.Allocator plus the three feedback interfaces the controller
// forwards: HealthSetter (dead cells), WearSetter (cross-epoch
// stress-years) and StressObserver (within-run duty).
type Explorer struct {
	geom  fabric.Geometry
	model aging.Model
	// horizonYears scales the within-run duty footprint into projected
	// stress-years: the explorer assumes the observed allocation pattern
	// persists for this long when ranking candidate placements.
	horizonYears float64
	// recomputeEvery is the pivot re-exploration period in executions.
	recomputeEvery uint64
	// workers bounds the goroutine pool of large pivot scans (<= 0 selects
	// GOMAXPROCS; 1 forces the serial scan). The scan outcome and the
	// searchcost counters are identical for every worker count.
	workers int

	health *fabric.Health
	wear   *fabric.Wear

	// rowBase/colMod are the toroidal index tables: the physical row-major
	// index of virtual cell (r, c) under pivot (pr, pc) is
	// rowBase[r+pr] + colMod[c+pc], replacing two modulo reductions per
	// cell with two table loads on every scan, commit and score path.
	rowBase []int
	colMod  []int

	// Within-run observed stress (physical cells, row-major), fed back by
	// the controller on every committed execution: the delta-updated half
	// of the incremental projection. One commit dirties exactly the cells
	// of its footprint.
	stress []uint64
	active uint64

	// wearY is the reconciled snapshot of fabric.Wear (stress-years per
	// physical cell): the cross-epoch half of the incremental projection.
	// It is refreshed only when the wear version moves (or the map is
	// swapped), never per scan.
	wearY    []float64
	wearSeen uint64
	wearOld  bool // snapshot must resync regardless of version equality
	// yProj is the per-scan projection table: yProj[i] = wearY[i] +
	// stress[i]·k, materialised once per Explore (the modeled hardware's
	// projection refresh, PivotProjections += NumFUs) so the pivot loop
	// reads one float per cell instead of recomputing the FMA per
	// candidate. It is only valid within the Explore call that filled it.
	yProj []float64

	// count is the number of committed executions observed so far: the
	// clock the hold period runs on. Allocator proposals (Next calls) do
	// not advance it — only ObserveStress does.
	count uint64
	// pivots holds the per-configuration exploration state: the held
	// pivot, the commit count at which it expires, and the fabric-state
	// versions it was explored under. The key is the configuration object
	// itself, not its StartPC: one allocator serves every benchmark of a
	// lifetime mix and the programs share a text base, so distinct
	// kernels can collide on a PC while their footprints (and therefore
	// their pivot argmins and no-live verdicts) differ. The map is never
	// iterated, so pointer keying stays deterministic. lastCfg/lastSt
	// short-circuit the map hash for the common case of one configuration
	// offloading repeatedly (a kernel's inner loop).
	pivots  map[*fabric.Config]*pivotState
	lastCfg *fabric.Config
	lastSt  *pivotState

	// counts tallies the search work for the derived cost model.
	counts searchcost.Counts
}

// pivotState is one configuration's held exploration outcome.
type pivotState struct {
	off fabric.Offset
	// nextAt is the committed-execution count at which the pivot expires.
	nextAt uint64
	// healthVer/wearVer are the fabric-state versions the pivot was
	// explored under; either moving marks it stale.
	healthVer uint64
	wearVer   uint64
	// noLive records that the exploration found no live placement for this
	// footprint at healthVer: further proposals skip the (futile) rescan
	// until the health state changes, so an unplaceable configuration
	// costs one exploration per fabric state instead of one per proposal.
	noLive bool
	// explored marks that off is a real exploration outcome (the zero
	// state is "never explored", whose zero off must not seed pruning).
	explored bool
}

// Option configures the Explorer.
type Option func(*Explorer)

// WithModel selects the NBTI model scoring projected wear (default
// aging.NewModel, the paper's calibration).
func WithModel(m aging.Model) Option {
	return func(e *Explorer) { e.model = m }
}

// WithHorizon sets the projection horizon in years (default 1).
func WithHorizon(years float64) Option {
	return func(e *Explorer) {
		if years > 0 {
			e.horizonYears = years
		}
	}
}

// WithRecomputeEvery sets the pivot re-exploration period (default 16,
// matching alloc.HealthAware).
func WithRecomputeEvery(n int) Option {
	return func(e *Explorer) {
		if n >= 1 {
			e.recomputeEvery = uint64(n)
		}
	}
}

// WithWorkers bounds the goroutine pool large pivot scans fan out over
// (default 0: GOMAXPROCS; 1 forces serial scans). Any worker count yields
// byte-identical results and searchcost counters — the reduction is an
// index-ordered argmin and the counters are order-invariant sums — so the
// knob trades only wall clock.
func WithWorkers(n int) Option {
	return func(e *Explorer) { e.workers = n }
}

// New builds a wear-aware placement explorer for the geometry.
func New(g fabric.Geometry, opts ...Option) *Explorer {
	e := &Explorer{
		geom:           g,
		model:          aging.NewModel(),
		horizonYears:   1,
		recomputeEvery: 16,
		rowBase:        make([]int, 2*g.Rows),
		colMod:         make([]int, 2*g.Cols),
		stress:         make([]uint64, g.NumFUs()),
		wearY:          make([]float64, g.NumFUs()),
		yProj:          make([]float64, g.NumFUs()),
		pivots:         make(map[*fabric.Config]*pivotState),
	}
	for i := range e.rowBase {
		e.rowBase[i] = (i % g.Rows) * g.Cols
	}
	for i := range e.colMod {
		e.colMod[i] = i % g.Cols
	}
	for _, o := range opts {
		o(e)
	}
	return e
}

// Name implements alloc.Allocator.
func (e *Explorer) Name() string {
	return fmt.Sprintf("explore/every=%d", e.recomputeEvery)
}

// SetHealth implements alloc.HealthSetter.
func (e *Explorer) SetHealth(h *fabric.Health) { e.health = h }

// SetWear implements alloc.WearSetter.
func (e *Explorer) SetWear(w *fabric.Wear) {
	e.wear = w
	e.wearOld = true // force a resync: a swapped map may share a version
}

// ObserveStress implements alloc.StressObserver. Committed executions are
// also the clock of the pivot hold period: one commit advances the count
// by one, however many proposals the controller's skip-scan consumed to
// place it. The update touches exactly the committed footprint's physical
// cells — the dirty set of the incremental projection — plus the shared
// active-cycles denominator.
func (e *Explorer) ObserveStress(cells []fabric.Cell, off fabric.Offset, cycles uint64) {
	if uint(off.Row) >= uint(e.geom.Rows) || uint(off.Col) >= uint(e.geom.Cols) {
		off = fabric.Offset{Row: off.Row % e.geom.Rows, Col: off.Col % e.geom.Cols}
	}
	rb := e.rowBase[off.Row:]
	cm := e.colMod[off.Col:]
	for _, cell := range cells {
		e.stress[rb[cell.Row]+cm[cell.Col]] += cycles
	}
	e.active += cycles
	e.count++
}

// syncWear reconciles the wear snapshot with fabric.Wear. The snapshot is
// clean whenever the wear version has not moved, so the reconciliation
// runs once per cross-epoch wear advance instead of once per scan.
func (e *Explorer) syncWear() {
	if e.wear == nil {
		if e.wearOld {
			for i := range e.wearY {
				e.wearY[i] = 0
			}
			e.wearOld = false
		}
		return
	}
	if v := e.wear.Version(); e.wearOld || v != e.wearSeen {
		e.wearY = e.wear.CopyYears(e.wearY)
		e.wearSeen = v
		e.wearOld = false
	}
}

// dutyScale returns the per-cycle horizon scaling of the projection: a
// cell's projected stress-years are wearY + stress·dutyScale.
func (e *Explorer) dutyScale() float64 {
	if e.active == 0 {
		return 0
	}
	return e.horizonYears / float64(e.active)
}

// versions snapshots the observable fabric-state versions (zero when a map
// is not attached).
func (e *Explorer) versions() (healthVer, wearVer uint64) {
	if e.health != nil {
		healthVer = e.health.Version()
	}
	if e.wear != nil {
		wearVer = e.wear.Version()
	}
	return healthVer, wearVer
}

// Next implements alloc.Allocator: the configuration's held pivot,
// re-explored once its hold period of recomputeEvery committed executions
// expires, immediately on health/wear changes, and whenever the held pivot
// would drive the footprint onto a dead FU. The last rule matters on
// fabrics smaller than the hold period: the controller's skip-scan is
// bounded by NumFUs proposals, so without it a stale pivot could exhaust
// the scan and force a GPP fallback although live placements exist.
//
// The pivot (and its hold state) is keyed by the configuration object:
// with a multi-kernel mix, one kernel never inherits a pivot explored for
// another kernel's footprint — the inherited liveness check used to save
// correctness there, but the wear score was never revalidated, so the
// second kernel could ride a wear-suboptimal pivot for a whole hold
// period. Proposals do not advance the hold clock (ObserveStress does), so
// repeated skip-scan calls within one offload can neither erode the period
// nor trigger a mid-scan re-exploration.
func (e *Explorer) Next(cfg *fabric.Config) fabric.Offset {
	if cfg == nil {
		return fabric.Offset{}
	}
	st := e.lastSt
	if cfg != e.lastCfg {
		var ok bool
		st, ok = e.pivots[cfg]
		if !ok {
			st = &pivotState{}
			e.pivots[cfg] = st
			st.nextAt = e.count // unexplored: force the first search
		}
		e.lastCfg, e.lastSt = cfg, st
	}
	healthVer, wearVer := e.versions()
	stale := st.healthVer != healthVer || st.wearVer != wearVer
	recompute := stale || e.count >= st.nextAt
	if !recompute && e.health != nil && e.health.DeadCount() > 0 &&
		!e.health.PlacementOK(cfg.Cells(), st.off) {
		// The footprint dead-hits the held pivot. If the last exploration
		// under this exact health state already proved no live placement
		// exists, rescanning is futile — the controller will fall back to
		// the GPP; otherwise re-explore immediately.
		if st.noLive {
			return st.off
		}
		recompute = true
	}
	if recompute {
		if st.noLive && !stale {
			// Known-unplaceable under an unchanged health state: the expiry
			// of the hold period cannot create a live placement.
			st.nextAt = e.count + e.recomputeEvery
			return st.off
		}
		st.healthVer, st.wearVer = healthVer, wearVer
		st.off = e.Explore(cfg)
		st.explored = true
		st.nextAt = e.count + e.recomputeEvery
		st.noLive = e.health != nil && e.health.DeadCount() > 0 &&
			!e.health.PlacementOK(cfg.Cells(), st.off)
	}
	return st.off
}

// stripeResult is one stripe's share of a pivot scan: the stripe-local
// argmin plus the order-invariant work counter.
type stripeResult struct {
	idx  int // winning pivot index, -1 when the stripe holds no live pivot
	maxY float64
	sumY float64
	// cells is the stripe's live-candidate score evaluations: len(cells)
	// for every fully-live pivot, pruned or not, exactly what a full
	// serial rescan would count.
	cells uint64
}

// Explore scans every pivot and returns the live placement minimising the
// maximum projected ΔVt over the cells the configuration would occupy.
// Because ΔVt is strictly increasing in projected stress-years, the scan
// ranks candidates on years directly; ties on the maximum break by the
// footprint's total projected stress-years, then by row-major pivot order
// for determinism. Pivots whose placement would drive a dead FU are
// excluded; when no live placement exists the zero offset is returned and
// the controller's own health check rejects the offload (GPP fallback).
//
// The scan seeds its pruning bound with the previously held pivot's score
// and fans out over a bounded goroutine pool on large fabrics; neither
// changes the argmin (pruning only discards candidates whose running
// maximum is already strictly worse, and the parallel reduction is an
// index-ordered argmin over stripe results), and the searchcost counters
// are order-invariant sums, so serial, pruned and parallel scans are
// byte-identical in outcome and counted work.
func (e *Explorer) Explore(cfg *fabric.Config) fabric.Offset {
	e.syncWear()
	cells := cfg.Cells()
	var dead []bool
	if e.health != nil && e.health.DeadCount() > 0 {
		dead = e.health.DeadMask()
	}
	k := e.dutyScale()
	e.counts.PivotScans++
	e.counts.PivotProjections += uint64(e.geom.NumFUs())
	for i, w := range e.wearY {
		e.yProj[i] = w + float64(e.stress[i])*k
	}

	// Seed the pruning bound with the held pivot's current score: in
	// steady state the argmin moves slowly, so most candidates abort on
	// their first cell worse than the incumbent.
	seed := math.Inf(1)
	st := e.lastSt
	if cfg != e.lastCfg {
		st = e.pivots[cfg]
	}
	if st != nil && st.explored {
		if maxY, _, live := e.scoreYears(cells, st.off, dead, k); live {
			seed = maxY
		}
	}

	n := e.geom.NumFUs()
	workers := e.workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if n < minParallelPivots {
		workers = 1
	}
	if pscan.Count(n, workers) == 1 {
		// Serial fast path: the common small-fabric case pays no stripe
		// slice, closure or reduction — one direct scan per exploration.
		sr := e.scanPivots(cells, dead, seed, 0, n)
		e.counts.PivotCells += sr.cells
		if sr.idx < 0 {
			return fabric.Offset{}
		}
		return fabric.Offset{Row: sr.idx / e.geom.Cols, Col: sr.idx % e.geom.Cols}
	}
	stripes := make([]stripeResult, pscan.Count(n, workers))
	pscan.Run(n, workers, func(s, lo, hi int) {
		stripes[s] = e.scanPivots(cells, dead, seed, lo, hi)
	})

	best := fabric.Offset{}
	bestIdx := -1
	bestMax, bestSum := math.Inf(1), math.Inf(1)
	for _, sr := range stripes {
		e.counts.PivotCells += sr.cells
		if sr.idx < 0 {
			continue
		}
		if bestIdx < 0 || sr.maxY < bestMax ||
			(sr.maxY == bestMax && (sr.sumY < bestSum ||
				(sr.sumY == bestSum && sr.idx < bestIdx))) {
			bestIdx, bestMax, bestSum = sr.idx, sr.maxY, sr.sumY
		}
	}
	if bestIdx >= 0 {
		best = fabric.Offset{Row: bestIdx / e.geom.Cols, Col: bestIdx % e.geom.Cols}
	}
	return best
}

// scanPivots evaluates the pivot index range [lo, hi) and returns the
// stripe-local argmin by (max projected years, total projected years,
// row-major order). seed bounds the pruning from the start; the bound then
// tightens to the stripe's own best. A pruned candidate still completes
// its liveness walk so the counted work stays that of the full rescan.
func (e *Explorer) scanPivots(cells []fabric.Cell, dead []bool, seed float64, lo, hi int) stripeResult {
	if dead == nil {
		return e.scanPivotsHealthy(cells, seed, lo, hi)
	}
	sr := stripeResult{idx: -1, maxY: math.Inf(1), sumY: math.Inf(1)}
	thr := seed
	cols := e.geom.Cols
	yProj := e.yProj
	pr, pc := lo/cols, lo%cols
	for p := lo; p < hi; p++ {
		rb := e.rowBase[pr:]
		cm := e.colMod[pc:]
		if pc++; pc == cols {
			pc = 0
			pr++
		}
		maxY, sumY := 0.0, 0.0
		live, pruned := true, false
		for ci := 0; ci < len(cells); ci++ {
			cell := cells[ci]
			idx := rb[cell.Row] + cm[cell.Col]
			if dead[idx] {
				live = false
				break
			}
			y := yProj[idx]
			sumY += y
			if y > maxY {
				maxY = y
				if y > thr {
					// Cannot win: the final maximum is at least y. Finish
					// the liveness walk so the pivot is classified — and
					// counted — exactly as a full scan would.
					pruned = true
					for _, c2 := range cells[ci+1:] {
						if dead[rb[c2.Row]+cm[c2.Col]] {
							live = false
							break
						}
					}
					break
				}
			}
		}
		if !live {
			continue
		}
		sr.cells += uint64(len(cells))
		if pruned {
			continue
		}
		if sr.idx < 0 || maxY < sr.maxY || (maxY == sr.maxY && sumY < sr.sumY) {
			sr.idx, sr.maxY, sr.sumY = p, maxY, sumY
			if maxY < thr {
				thr = maxY
			}
		}
	}
	return sr
}

// scanPivotsHealthy is scanPivots for a fully-live fabric: every pivot is a
// live candidate, so the dead checks, the liveness walk after a prune and
// the per-pivot live classification all drop out of the inner loop. The
// steady-state scan (no failures yet) spends most of the simulation here.
func (e *Explorer) scanPivotsHealthy(cells []fabric.Cell, seed float64, lo, hi int) stripeResult {
	sr := stripeResult{idx: -1, maxY: math.Inf(1), sumY: math.Inf(1)}
	thr := seed
	cols := e.geom.Cols
	yProj := e.yProj
	pr, pc := lo/cols, lo%cols
	for p := lo; p < hi; p++ {
		rb := e.rowBase[pr:]
		cm := e.colMod[pc:]
		if pc++; pc == cols {
			pc = 0
			pr++
		}
		maxY, sumY := 0.0, 0.0
		pruned := false
		for _, cell := range cells {
			idx := rb[cell.Row] + cm[cell.Col]
			y := yProj[idx]
			sumY += y
			if y > maxY {
				maxY = y
				if y > thr {
					pruned = true
					break
				}
			}
		}
		if pruned {
			continue
		}
		if sr.idx < 0 || maxY < sr.maxY || (maxY == sr.maxY && sumY < sr.sumY) {
			sr.idx, sr.maxY, sr.sumY = p, maxY, sumY
			if maxY < thr {
				thr = maxY
			}
		}
	}
	sr.cells = uint64(hi-lo) * uint64(len(cells))
	return sr
}

// scoreYears evaluates one candidate: the maximum and total projected
// stress-years over the footprint, and whether the placement is live.
func (e *Explorer) scoreYears(cells []fabric.Cell, off fabric.Offset, dead []bool, k float64) (maxY, sumY float64, live bool) {
	if uint(off.Row) >= uint(e.geom.Rows) || uint(off.Col) >= uint(e.geom.Cols) {
		off = fabric.Offset{Row: off.Row % e.geom.Rows, Col: off.Col % e.geom.Cols}
	}
	rb := e.rowBase[off.Row:]
	cm := e.colMod[off.Col:]
	for _, cell := range cells {
		idx := rb[cell.Row] + cm[cell.Col]
		if dead != nil && dead[idx] {
			return 0, 0, false
		}
		y := e.wearY[idx] + float64(e.stress[idx])*k
		sumY += y
		if y > maxY {
			maxY = y
		}
	}
	return maxY, sumY, true
}

// Score returns the maximum projected ΔVt of placing cfg at off under the
// explorer's current state: the objective Explore minimises. Exposed so
// tests (and diagnostics) can compare the explorer's choice against
// alternatives such as the skip-scan fallback it replaces. ΔVt is strictly
// increasing in projected stress-years, so evaluating Eq. 1 once on the
// footprint's worst cell equals the maximum of per-cell evaluations.
func (e *Explorer) Score(cfg *fabric.Config, off fabric.Offset) float64 {
	e.syncWear()
	return e.ProjectedScore(cfg, off)
}

// Reproject synchronises the projection state external scorers evaluate
// against (the wear snapshot reconciliation). Callers scoring many
// candidates under one fabric state — the shape-adaptive remapper's
// (shape × anchor) search, possibly from several goroutines — synchronise
// once here; ProjectedScore is then a pure read.
func (e *Explorer) Reproject() { e.syncWear() }

// ProjectedScore evaluates one candidate against the incrementally
// maintained projection state (see Reproject); Score is Reproject followed
// by ProjectedScore. Unlike the pre-incremental explorer there is no
// separately cached ΔVt table to go stale: every call scores the same
// snapshot the pivot scan reads.
func (e *Explorer) ProjectedScore(cfg *fabric.Config, off fabric.Offset) float64 {
	maxY, _, _ := e.scoreYears(cfg.Cells(), off, nil, e.dutyScale())
	return e.model.Cond.DeltaVt(maxY, 1)
}

// SearchCounts implements searchcost.Instrumented: the accumulated pivot
// scans, per-cell score evaluations and projection refreshes the derived
// cost model prices. The counters report the work the modeled hardware
// search engine would issue — a full projection refresh per scan and one
// evaluation per cell of every live candidate — invariant to the
// simulator's pruning, memoization and parallel striping, so serial and
// parallel runs of one scenario produce identical Counts. Explorations
// counts full scans directly — the number the hold-period regression
// tests pin.
func (e *Explorer) SearchCounts() searchcost.Counts { return e.counts }

// Explorations returns how many full pivot scans ran so far.
func (e *Explorer) Explorations() uint64 { return e.counts.PivotScans }

var (
	_ alloc.Allocator         = (*Explorer)(nil)
	_ alloc.HealthSetter      = (*Explorer)(nil)
	_ alloc.WearSetter        = (*Explorer)(nil)
	_ alloc.StressObserver    = (*Explorer)(nil)
	_ searchcost.Instrumented = (*Explorer)(nil)
)
