// Package explore implements the wear-aware placement explorer: the
// HeLEx-style health/layout exploration the paper leaves as future work.
//
// The utilization-aware allocators balance duty a priori by rotating a
// pivot; once cells start dying, the controller's skip-scan merely advances
// that rotation to the first live pivot, so post-failure wear
// re-concentrates on whichever survivors happen to sit next in the pattern.
// The Explorer instead *chooses* among live placements: for every candidate
// pivot of a translation it projects the post-placement wear of each FU the
// configuration would touch — the accumulated stress-years threaded out of
// the lifetime simulator (fabric.Wear) plus the pattern's observed duty
// footprint projected over a short horizon — evaluates the projected ΔVt
// under the paper's Eq. 1 NBTI model, and picks the placement minimising the
// maximum projected ΔVt. Minimising the worst projected degradation is
// exactly maximising the time until the next FU crosses the end-of-life
// threshold.
//
// Because an exhaustive pivot search per execution would be costly in
// hardware, the search runs every RecomputeEvery executions and the chosen
// pivot is held in between; a health or wear state change forces an
// immediate re-exploration, mirroring alloc.HealthAware.
package explore

import (
	"fmt"
	"math"

	"agingcgra/internal/aging"
	"agingcgra/internal/alloc"
	"agingcgra/internal/fabric"
)

// Explorer is the wear-aware placement explorer. It implements
// alloc.Allocator plus the three feedback interfaces the controller
// forwards: HealthSetter (dead cells), WearSetter (cross-epoch
// stress-years) and StressObserver (within-run duty).
type Explorer struct {
	geom  fabric.Geometry
	model aging.Model
	// horizonYears scales the within-run duty footprint into projected
	// stress-years: the explorer assumes the observed allocation pattern
	// persists for this long when ranking candidate placements.
	horizonYears float64
	// recomputeEvery is the pivot re-exploration period in executions.
	recomputeEvery uint64

	health    *fabric.Health
	healthVer uint64
	wear      *fabric.Wear
	wearVer   uint64

	// Within-run observed stress (physical cells, row-major), fed back by
	// the controller on every committed execution.
	stress []uint64
	active uint64

	count   uint64
	current fabric.Offset

	// cellVt caches the per-cell projected ΔVt of the last exploration; the
	// projection depends only on the cell, not on the candidate pivot, so
	// one pass amortises the Eq. 1 evaluation across the whole pivot scan.
	cellVt []float64
}

// Option configures the Explorer.
type Option func(*Explorer)

// WithModel selects the NBTI model scoring projected wear (default
// aging.NewModel, the paper's calibration).
func WithModel(m aging.Model) Option {
	return func(e *Explorer) { e.model = m }
}

// WithHorizon sets the projection horizon in years (default 1).
func WithHorizon(years float64) Option {
	return func(e *Explorer) {
		if years > 0 {
			e.horizonYears = years
		}
	}
}

// WithRecomputeEvery sets the pivot re-exploration period (default 16,
// matching alloc.HealthAware).
func WithRecomputeEvery(n int) Option {
	return func(e *Explorer) {
		if n >= 1 {
			e.recomputeEvery = uint64(n)
		}
	}
}

// New builds a wear-aware placement explorer for the geometry.
func New(g fabric.Geometry, opts ...Option) *Explorer {
	e := &Explorer{
		geom:           g,
		model:          aging.NewModel(),
		horizonYears:   1,
		recomputeEvery: 16,
		stress:         make([]uint64, g.NumFUs()),
		cellVt:         make([]float64, g.NumFUs()),
	}
	for _, o := range opts {
		o(e)
	}
	return e
}

// Name implements alloc.Allocator.
func (e *Explorer) Name() string {
	return fmt.Sprintf("explore/every=%d", e.recomputeEvery)
}

// SetHealth implements alloc.HealthSetter.
func (e *Explorer) SetHealth(h *fabric.Health) {
	e.health = h
	if h != nil {
		e.healthVer = h.Version()
	}
}

// SetWear implements alloc.WearSetter.
func (e *Explorer) SetWear(w *fabric.Wear) {
	e.wear = w
	if w != nil {
		e.wearVer = w.Version()
	}
}

// ObserveStress implements alloc.StressObserver.
func (e *Explorer) ObserveStress(cells []fabric.Cell, off fabric.Offset, cycles uint64) {
	for _, cell := range cells {
		p := off.Apply(cell, e.geom)
		e.stress[p.Row*e.geom.Cols+p.Col] += cycles
	}
	e.active += cycles
}

// stale reports whether the held pivot may rest on outdated state: a cell
// died or the lifetime simulator advanced the wear map since the last
// exploration.
func (e *Explorer) stale() bool {
	if e.health != nil && e.healthVer != e.health.Version() {
		return true
	}
	if e.wear != nil && e.wearVer != e.wear.Version() {
		return true
	}
	return false
}

// Next implements alloc.Allocator: the held pivot, re-explored every
// recomputeEvery executions, immediately on health/wear changes, and
// whenever the held pivot — explored for a possibly different footprint —
// would drive this configuration onto a dead FU. The last rule matters on
// fabrics smaller than the hold period: the controller's skip-scan is
// bounded by NumFUs proposals, so without it a stale pivot could exhaust
// the scan and force a GPP fallback although live placements exist.
func (e *Explorer) Next(cfg *fabric.Config) fabric.Offset {
	if cfg != nil {
		recompute := e.count%e.recomputeEvery == 0 || e.stale()
		if !recompute && e.health != nil && e.health.DeadCount() > 0 &&
			!e.health.PlacementOK(cfg.Cells(), e.current) {
			recompute = true
		}
		if recompute {
			if e.health != nil {
				e.healthVer = e.health.Version()
			}
			if e.wear != nil {
				e.wearVer = e.wear.Version()
			}
			e.current = e.Explore(cfg)
		}
	}
	e.count++
	return e.current
}

// projectCells fills cellVt with each physical cell's projected ΔVt:
// accumulated cross-epoch stress-years plus the within-run duty footprint
// extended over the horizon, evaluated under Eq. 1. The projection is a
// per-cell property — candidate pivots only decide *which* cells the
// configuration stresses next — so it is computed once per exploration.
func (e *Explorer) projectCells() {
	for r := 0; r < e.geom.Rows; r++ {
		for c := 0; c < e.geom.Cols; c++ {
			i := r*e.geom.Cols + c
			years := 0.0
			if e.wear != nil {
				years = e.wear.YearsAt(fabric.Cell{Row: r, Col: c})
			}
			if e.active > 0 {
				duty := float64(e.stress[i]) / float64(e.active)
				years += duty * e.horizonYears
			}
			// Eq. 1 depends on t and u only through t·u, so stress-years at
			// u=1 give the cell's ΔVt directly.
			e.cellVt[i] = e.model.Cond.DeltaVt(years, 1)
		}
	}
}

// Explore scans every pivot and returns the live placement minimising the
// maximum projected ΔVt over the cells the configuration would occupy; ties
// break by total projected ΔVt, then by row-major pivot order for
// determinism. Pivots whose placement would drive a dead FU are excluded;
// when no live placement exists the zero offset is returned and the
// controller's own health check rejects the offload (GPP fallback).
func (e *Explorer) Explore(cfg *fabric.Config) fabric.Offset {
	e.projectCells()
	cells := cfg.Cells()
	checkHealth := e.health != nil && e.health.DeadCount() > 0
	best := fabric.Offset{}
	bestMax := math.Inf(1)
	bestSum := math.Inf(1)
	found := false
	for r := 0; r < e.geom.Rows; r++ {
		for c := 0; c < e.geom.Cols; c++ {
			off := fabric.Offset{Row: r, Col: c}
			if checkHealth && !e.health.PlacementOK(cells, off) {
				continue
			}
			maxVt, sumVt := e.scoreProjected(cells, off)
			if !found || maxVt < bestMax || (maxVt == bestMax && sumVt < bestSum) {
				best, bestMax, bestSum, found = off, maxVt, sumVt, true
			}
		}
	}
	return best
}

// scoreProjected evaluates one candidate against the cached projection.
func (e *Explorer) scoreProjected(cells []fabric.Cell, off fabric.Offset) (maxVt, sumVt float64) {
	for _, cell := range cells {
		p := off.Apply(cell, e.geom)
		vt := e.cellVt[p.Row*e.geom.Cols+p.Col]
		if vt > maxVt {
			maxVt = vt
		}
		sumVt += vt
	}
	return maxVt, sumVt
}

// Score returns the maximum projected ΔVt of placing cfg at off under the
// explorer's current state: the objective Explore minimises. Exposed so
// tests (and diagnostics) can compare the explorer's choice against
// alternatives such as the skip-scan fallback it replaces.
func (e *Explorer) Score(cfg *fabric.Config, off fabric.Offset) float64 {
	e.projectCells()
	return e.ProjectedScore(cfg, off)
}

// Reproject refreshes the per-cell ΔVt projection table ProjectedScore
// evaluates against. Callers scoring many candidates under one fabric
// state (the shape-adaptive remapper's (shape × anchor) search) pay the
// Eq. 1 pass once here instead of once per Score call.
func (e *Explorer) Reproject() { e.projectCells() }

// ProjectedScore evaluates one candidate against the last projection
// (see Reproject); Score is Reproject followed by ProjectedScore.
func (e *Explorer) ProjectedScore(cfg *fabric.Config, off fabric.Offset) float64 {
	maxVt, _ := e.scoreProjected(cfg.Cells(), off)
	return maxVt
}

var (
	_ alloc.Allocator      = (*Explorer)(nil)
	_ alloc.HealthSetter   = (*Explorer)(nil)
	_ alloc.WearSetter     = (*Explorer)(nil)
	_ alloc.StressObserver = (*Explorer)(nil)
)
