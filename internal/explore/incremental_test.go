package explore

import (
	"math"
	"testing"

	"agingcgra/internal/aging"
	"agingcgra/internal/fabric"
)

// refState is the brute-force reference of the incremental projection: it
// mirrors every ObserveStress into its own stress table and recomputes the
// projection from the live fabric.Wear map on every query — exactly what
// the pre-incremental explorer did per scan.
type refState struct {
	geom    fabric.Geometry
	model   aging.Model
	horizon float64
	wear    *fabric.Wear
	stress  []uint64
	active  uint64
}

func newRefState(g fabric.Geometry, w *fabric.Wear) *refState {
	return &refState{
		geom:    g,
		model:   aging.NewModel(),
		horizon: 1,
		wear:    w,
		stress:  make([]uint64, g.NumFUs()),
	}
}

func (r *refState) observe(cells []fabric.Cell, off fabric.Offset, cycles uint64) {
	for _, c := range cells {
		p := off.Apply(c, r.geom)
		r.stress[p.Row*r.geom.Cols+p.Col] += cycles
	}
	r.active += cycles
}

// score is the reference objective: max over the footprint of
// ΔVt(wearYears + stress·horizon/active), evaluated per cell from scratch.
func (r *refState) score(cfg *fabric.Config, off fabric.Offset) float64 {
	k := 0.0
	if r.active > 0 {
		k = r.horizon / float64(r.active)
	}
	maxVt := 0.0
	for _, c := range cfg.Cells() {
		p := off.Apply(c, r.geom)
		y := r.wear.YearsAt(p) + float64(r.stress[p.Row*r.geom.Cols+p.Col])*k
		if vt := r.model.Cond.DeltaVt(y, 1); vt > maxVt {
			maxVt = vt
		}
	}
	return maxVt
}

// TestIncrementalProjectionMatchesFullRecompute drives the explorer through
// random interleavings of committed executions, hard deaths, probation
// revives (the recovery layer's observed-health flow) and cross-epoch wear
// advances, and pins after every step that the incrementally maintained
// projection scores exactly what a full per-cell recompute from the live
// maps produces — and that Explore's argmin is never beaten by any live
// pivot under the reference objective.
func TestIncrementalProjectionMatchesFullRecompute(t *testing.T) {
	g := fabric.NewGeometry(4, 8)
	cfg := testConfig(g)
	state := uint32(0xbeef01)
	for trial := 0; trial < 5; trial++ {
		h := fabric.NewHealth(g)
		w := fabric.NewWear(g)
		e := New(g)
		e.SetHealth(h)
		e.SetWear(w)
		ref := newRefState(g, w)

		for step := 0; step < 300; step++ {
			cell := fabric.Cell{
				Row: int(xorshift(&state)) % g.Rows,
				Col: int(xorshift(&state)) % g.Cols,
			}
			switch xorshift(&state) % 8 {
			case 0, 1, 2, 3: // committed execution at a random pivot
				off := fabric.Offset{Row: cell.Row, Col: cell.Col}
				cycles := uint64(xorshift(&state)%500 + 1)
				e.ObserveStress(cfg.Cells(), off, cycles)
				ref.observe(cfg.Cells(), off, cycles)
			case 4: // hard death
				h.Kill(cell)
			case 5: // probation revive (observed-health flow)
				if dead := h.DeadCells(); len(dead) > 0 {
					h.Revive(dead[int(xorshift(&state))%len(dead)])
				}
			default: // cross-epoch wear advance
				w.Add(cell, float64(xorshift(&state)%1000)/4000.0)
			}

			// Score equality at a random pivot: incremental == recompute.
			off := fabric.Offset{
				Row: int(xorshift(&state)) % g.Rows,
				Col: int(xorshift(&state)) % g.Cols,
			}
			got := e.Score(cfg, off)
			want := ref.score(cfg, off)
			if math.Abs(got-want) > 1e-15*(1+math.Abs(want)) {
				t.Fatalf("trial %d step %d: incremental score %.18g != recompute %.18g at %v",
					trial, step, got, want, off)
			}

			if step%25 != 0 {
				continue
			}
			// Argmin optimality under the reference objective: no live
			// pivot beats the explorer's choice.
			chosen := e.Explore(cfg)
			if !h.PlacementOK(cfg.Cells(), chosen) && anyLivePlacement(h, cfg, g) {
				t.Fatalf("trial %d step %d: Explore chose dead placement %v with live pivots available",
					trial, step, chosen)
			}
			if h.PlacementOK(cfg.Cells(), chosen) {
				chosenScore := ref.score(cfg, chosen)
				for r := 0; r < g.Rows; r++ {
					for c := 0; c < g.Cols; c++ {
						off := fabric.Offset{Row: r, Col: c}
						if !h.PlacementOK(cfg.Cells(), off) {
							continue
						}
						if s := ref.score(cfg, off); s < chosenScore-1e-15*(1+chosenScore) {
							t.Fatalf("trial %d step %d: pivot %v scores %.18g, beats chosen %v at %.18g",
								trial, step, off, s, chosen, chosenScore)
						}
					}
				}
			}
		}
	}
}

// TestParallelScanMatchesSerial drives two explorers — one forced serial,
// one striped over four workers — through an identical history on a fabric
// large enough to cross the parallel threshold, with a clustered failure
// blob in the middle, and pins that every exploration returns the same
// pivot and that the searchcost counters match exactly: the counted work
// models the hardware scan, so striping must not change it.
func TestParallelScanMatchesSerial(t *testing.T) {
	g := fabric.NewGeometry(8, 16) // 128 pivots >= minParallelPivots
	cfg := testConfig(g)
	mk := func(workers int) (*Explorer, *fabric.Health, *fabric.Wear) {
		e := New(g, WithWorkers(workers))
		h := fabric.NewHealth(g)
		w := fabric.NewWear(g)
		e.SetHealth(h)
		e.SetWear(w)
		return e, h, w
	}
	es, hs, ws := mk(1)
	ep, hp, wp := mk(4)

	state := uint32(0xfeed02)
	for step := 0; step < 400; step++ {
		cell := fabric.Cell{
			Row: int(xorshift(&state)) % g.Rows,
			Col: int(xorshift(&state)) % g.Cols,
		}
		switch xorshift(&state) % 8 {
		case 0, 1, 2, 3, 4:
			off := fabric.Offset{Row: cell.Row, Col: cell.Col}
			cycles := uint64(xorshift(&state)%300 + 1)
			es.ObserveStress(cfg.Cells(), off, cycles)
			ep.ObserveStress(cfg.Cells(), off, cycles)
		case 5: // clustered failure: kill a 2x2 blob
			for dr := 0; dr < 2; dr++ {
				for dc := 0; dc < 2; dc++ {
					c := fabric.Cell{Row: (cell.Row + dr) % g.Rows, Col: (cell.Col + dc) % g.Cols}
					hs.Kill(c)
					hp.Kill(c)
				}
			}
		default:
			years := float64(xorshift(&state)%1000) / 4000.0
			ws.Add(cell, years)
			wp.Add(cell, years)
		}
		offS := es.Explore(cfg)
		offP := ep.Explore(cfg)
		if offS != offP {
			t.Fatalf("step %d: serial chose %v, parallel chose %v", step, offS, offP)
		}
	}
	if cs, cp := es.SearchCounts(), ep.SearchCounts(); cs != cp {
		t.Fatalf("searchcost counts diverge:\nserial:   %+v\nparallel: %+v", cs, cp)
	}
}
