package area

import (
	"math"
	"testing"

	"agingcgra/internal/fabric"
)

func beGeom() fabric.Geometry { return fabric.NewGeometry(2, 16) }

func TestBaselineInventoryComplete(t *testing.T) {
	m := NewModel()
	b := m.Baseline(beGeom())
	want := []string{
		"fu-array", "input-crossbars", "output-crossbars",
		"config-registers", "input-context", "reconfig-logic",
		"load-store-unit", "result-buffer",
	}
	for _, name := range want {
		c, ok := b.Find(name)
		if !ok {
			t.Errorf("missing component %q", name)
			continue
		}
		if c.Cells <= 0 || c.Area <= 0 {
			t.Errorf("component %q has empty size: %+v", name, c)
		}
	}
	if _, ok := b.Find("hmove-cfg-muxes"); ok {
		t.Error("baseline must not contain movement hardware")
	}
}

func TestModifiedAddsExactlyMovementHardware(t *testing.T) {
	m := NewModel()
	g := beGeom()
	base := m.Baseline(g)
	mod := m.Modified(g)
	mv := m.MovementHardware(g)
	if mod.TotalCells() != base.TotalCells()+mv.TotalCells() {
		t.Error("modified cells != baseline + movement")
	}
	if math.Abs(mod.TotalArea()-(base.TotalArea()+mv.TotalArea())) > 1e-9 {
		t.Error("modified area != baseline + movement")
	}
	for _, name := range []string{"hmove-cfg-muxes", "vmove-barrel-shifters", "wraparound-muxes"} {
		if c, ok := mv.Find(name); !ok || c.Cells == 0 {
			t.Errorf("movement hardware missing %q", name)
		}
	}
}

// TestTableIIShape pins the paper's Table II claims: the BE design's
// baseline lands in the published magnitude and the movement overhead
// stays below 10% in both cells and area.
func TestTableIIShape(t *testing.T) {
	m := NewModel()
	o := m.Overhead(beGeom())
	if o.BaselineCells < 50_000 || o.BaselineCells > 120_000 {
		t.Errorf("BE baseline cells = %d, want the paper's magnitude (~79,540)", o.BaselineCells)
	}
	if o.BaselineArea < 15_000 || o.BaselineArea > 45_000 {
		t.Errorf("BE baseline area = %.0f um2, want the paper's magnitude (~28,995)", o.BaselineArea)
	}
	if inc := o.CellsIncrease(); inc <= 0 || inc >= 0.10 {
		t.Errorf("cell increase = %.2f%%, must be positive and below 10%%", 100*inc)
	}
	if inc := o.AreaIncrease(); inc <= 0 || inc >= 0.10 {
		t.Errorf("area increase = %.2f%%, must be positive and below 10%%", 100*inc)
	}
	if o.String() == "" {
		t.Error("empty Table II rendering")
	}
}

// The overhead must stay below 10% across the whole design space, not just
// the BE scenario.
func TestOverheadBelowTenPercentEverywhere(t *testing.T) {
	m := NewModel()
	for _, rows := range []int{2, 4, 8} {
		for _, cols := range []int{8, 16, 24, 32} {
			g := fabric.NewGeometry(rows, cols)
			o := m.Overhead(g)
			if inc := o.AreaIncrease(); inc >= 0.10 {
				t.Errorf("%v: area increase %.2f%% >= 10%%", g, 100*inc)
			}
		}
	}
}

// TestCriticalPathUnchanged pins the paper's 120 ps claim: the movement
// hardware must not slow the data path, and the BE column must land near
// 120 ps.
func TestCriticalPathUnchanged(t *testing.T) {
	m := NewModel()
	g := beGeom()
	base := m.ColumnCriticalPathPs(g, false)
	mod := m.ColumnCriticalPathPs(g, true)
	if base != mod {
		t.Errorf("movement hardware changed the critical path: %v -> %v ps", base, mod)
	}
	if base < 100 || base > 140 {
		t.Errorf("BE column critical path = %v ps, want ~120 ps", base)
	}
}

func TestAreaScalesWithFabric(t *testing.T) {
	m := NewModel()
	small := m.Baseline(fabric.NewGeometry(2, 8)).TotalArea()
	big := m.Baseline(fabric.NewGeometry(8, 32)).TotalArea()
	if big <= small*7 {
		t.Errorf("8x32 fabric (%.0f) should be much larger than 2x8 (%.0f)", big, small)
	}
}

func TestMovementOverheadGrowsSublinearly(t *testing.T) {
	// The relative overhead should not explode with fabric size: it is
	// dominated by per-column structures, like the baseline.
	m := NewModel()
	be := m.Overhead(fabric.NewGeometry(2, 16)).AreaIncrease()
	bu := m.Overhead(fabric.NewGeometry(8, 32)).AreaIncrease()
	if bu > 2*be {
		t.Errorf("overhead grew from %.2f%% to %.2f%%: should stay flat-ish", 100*be, 100*bu)
	}
}

func TestConfigCacheArea(t *testing.T) {
	m := NewModel()
	g := beGeom()
	a128 := m.ConfigCacheAreaUm2(g, 128)
	a256 := m.ConfigCacheAreaUm2(g, 256)
	if a128 <= 0 {
		t.Fatal("cache area must be positive")
	}
	if math.Abs(a256-2*a128) > 1e-9 {
		t.Error("cache area must scale linearly with entries")
	}
}

func TestMuxTreeCells(t *testing.T) {
	cases := map[int]int{1: 0, 2: 1, 3: 2, 4: 3, 8: 7}
	for n, want := range cases {
		if got := muxTreeCells(n); got != want {
			t.Errorf("muxTreeCells(%d) = %d, want %d", n, got, want)
		}
	}
}

func TestLog2Ceil(t *testing.T) {
	cases := map[int]int{1: 1, 2: 1, 3: 2, 4: 2, 5: 3, 8: 3, 9: 4}
	for n, want := range cases {
		if got := log2ceil(n); got != want {
			t.Errorf("log2ceil(%d) = %d, want %d", n, got, want)
		}
	}
}
