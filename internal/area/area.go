// Package area is the structural area model standing in for the paper's
// Cadence RTL Compiler + NanGate 15nm synthesis flow (Table II). It builds
// a cell-level inventory of the CGRA fabric — FU slices, per-column
// crossbars, configuration registers, reconfiguration logic, load/store
// unit, result buffering — and of the three movement extensions of
// Section III.B: the per-column configuration-line multiplexers
// (horizontal movement, Fig. 5b), the per-column barrel shifters on the
// configuration register groups (vertical movement, Fig. 5c), and the
// per-column, per-context-line 2:1 wrap-around multiplexers.
//
// Absolute µm² are calibrated to 15nm-like standard cell sizes; the claims
// under test are relative: the movement hardware must stay below 10% of
// the fabric (the paper measures +4.15% area / +4.45% cells on the BE
// design) and must not touch the data-path critical path (120 ps per
// column in both variants).
package area

import (
	"fmt"

	"agingcgra/internal/energy"
	"agingcgra/internal/fabric"
)

// DataWidth is the fabric's datapath width in bits.
const DataWidth = 32

// CellLibrary gives per-cell areas in µm² for a 15nm-like library.
type CellLibrary struct {
	INV   float64
	NAND2 float64
	MUX2  float64
	XOR2  float64
	DFF   float64
	FA    float64 // full adder
}

// NanGate15 returns the default library calibration.
func NanGate15() CellLibrary {
	return CellLibrary{
		INV:   0.098,
		NAND2: 0.147,
		MUX2:  0.245,
		XOR2:  0.294,
		DFF:   0.785,
		FA:    0.882,
	}
}

// Component is one named block of the inventory.
type Component struct {
	Name  string
	Cells int
	Area  float64 // µm²
}

// Breakdown is a full inventory.
type Breakdown struct {
	Components []Component
}

// TotalCells sums the cell counts.
func (b Breakdown) TotalCells() int {
	n := 0
	for _, c := range b.Components {
		n += c.Cells
	}
	return n
}

// TotalArea sums the areas in µm².
func (b Breakdown) TotalArea() float64 {
	a := 0.0
	for _, c := range b.Components {
		a += c.Area
	}
	return a
}

// Find returns the named component.
func (b Breakdown) Find(name string) (Component, bool) {
	for _, c := range b.Components {
		if c.Name == name {
			return c, true
		}
	}
	return Component{}, false
}

// Model computes inventories for a fabric geometry.
type Model struct {
	Lib CellLibrary
}

// NewModel returns the default model.
func NewModel() Model { return Model{Lib: NanGate15()} }

// muxTreeCells returns the MUX2 count of an n:1 multiplexer tree per bit.
func muxTreeCells(n int) int {
	if n <= 1 {
		return 0
	}
	return n - 1
}

func log2ceil(n int) int {
	b := 0
	for v := 1; v < n; v <<= 1 {
		b++
	}
	if b == 0 {
		b = 1
	}
	return b
}

// fuSlice returns (cells, area) of one FU grid slice: a 32-bit ALU column
// slice with adder, logic unit, one shifter stage set, the operand/result
// steering and local control. Multi-column units (multiplier, divider,
// memory interfaces) are modelled as multiple slices, matching how the
// configuration grid accounts them.
func (m Model) fuSlice() (int, float64) {
	adder := DataWidth          // FA per bit
	logic := 7 * DataWidth      // and/or/xor plus steering NAND2
	shifter := 5 * DataWidth    // MUX2: full 32-bit barrel shifter stages
	mulFA := 12 * DataWidth     // multiplier array share (FA)
	mulGlue := 12 * DataWidth   // multiplier partial products (NAND2)
	resultMux := 4 * DataWidth  // MUX2: function select tree
	comparator := 2 * DataWidth // XOR2
	control := 3*DataWidth + 32 // INV/NAND decode
	buffers := 8 * DataWidth    // INV drive/repeaters
	cells := adder + logic + shifter + mulFA + mulGlue + resultMux +
		comparator + control + buffers
	areaV := float64(adder+mulFA)*m.Lib.FA +
		float64(logic+mulGlue)*m.Lib.NAND2 +
		float64(shifter+resultMux)*m.Lib.MUX2 +
		float64(comparator)*m.Lib.XOR2 +
		float64(control+buffers)*m.Lib.INV
	return cells, areaV
}

// Baseline returns the inventory of the unmodified TransRec CGRA.
func (m Model) Baseline(g fabric.Geometry) Breakdown {
	W, L, ctx := g.Rows, g.Cols, g.CtxLines
	var b Breakdown
	add := func(name string, cells int, area float64) {
		b.Components = append(b.Components, Component{Name: name, Cells: cells, Area: area})
	}

	// FU array.
	fuC, fuA := m.fuSlice()
	add("fu-array", W*L*fuC, float64(W*L)*fuA)

	// Input crossbars: per column, each FU has two operand selects over the
	// context lines, DataWidth bits wide.
	inMux := L * W * 2 * DataWidth * muxTreeCells(ctx)
	add("input-crossbars", inMux, float64(inMux)*m.Lib.MUX2)

	// Output crossbars: per column, each context line selects among the W
	// FU outputs plus the pass-through of the previous column.
	outMux := L * ctx * DataWidth * muxTreeCells(W+1)
	add("output-crossbars", outMux, float64(outMux)*m.Lib.MUX2)

	// Configuration registers: the per-column configuration word.
	cfgBits := energy.ConfigBitsPerColumn(g)
	add("config-registers", L*cfgBits, float64(L*cfgBits)*m.Lib.DFF)

	// Input context registers.
	ctxRegs := ctx * DataWidth
	add("input-context", ctxRegs, float64(ctxRegs)*m.Lib.DFF)

	// Reconfiguration logic: CfgLines line drivers/latches plus the column
	// write-enable sequencer.
	reconf := g.CfgLines*cfgBits + 8*L
	add("reconfig-logic", reconf, float64(g.CfgLines*cfgBits)*m.Lib.DFF+float64(8*L)*m.Lib.NAND2)

	// Load/store unit: address generation, one read and one write port
	// queue entries.
	lsu := 2*DataWidth /*AGU FA*/ + 8*DataWidth /*queues DFF*/ + 400
	add("load-store-unit", lsu, float64(2*DataWidth)*m.Lib.FA+float64(8*DataWidth)*m.Lib.DFF+400*m.Lib.NAND2)

	// Result/commit buffering toward the ROB (Fig. 4a).
	rob := 2 * ctx * DataWidth
	add("result-buffer", rob, float64(rob)*m.Lib.DFF)

	return b
}

// Modified returns the inventory with the utilization-aware movement
// hardware added.
func (m Model) Modified(g fabric.Geometry) Breakdown {
	b := m.Baseline(g)
	for _, c := range m.MovementHardware(g).Components {
		b.Components = append(b.Components, c)
	}
	return b
}

// MovementHardware returns only the Section III.B extensions.
func (m Model) MovementHardware(g fabric.Geometry) Breakdown {
	W, L, ctx := g.Rows, g.Cols, g.CtxLines
	cfgBits := energy.ConfigBitsPerColumn(g)
	var b Breakdown
	add := func(name string, cells int, area float64) {
		b.Components = append(b.Components, Component{Name: name, Cells: cells, Area: area})
	}

	// Horizontal movement: per column, an n:1 multiplexer lets the column
	// listen to any configuration line (Fig. 5b).
	hm := L * cfgBits * muxTreeCells(g.CfgLines)
	add("hmove-cfg-muxes", hm, float64(hm)*m.Lib.MUX2)

	// Vertical movement: barrel shifters on the three per-column register
	// groups (input muxes, FUs, output muxes - Fig. 5c); a W-position
	// barrel shifter is log2(W) MUX2 stages over the group's bits.
	stages := log2ceil(W)
	vm := L * cfgBits * stages
	add("vmove-barrel-shifters", vm, float64(vm)*m.Lib.MUX2)

	// Wrap-around: one 2:1 multiplexer per column per context line
	// selecting between the previous column's line and the initial input
	// context.
	wrap := L * ctx * DataWidth
	add("wraparound-muxes", wrap, float64(wrap)*m.Lib.MUX2)

	return b
}

// Overhead summarises Table II: baseline vs modified totals and relative
// increases.
type Overhead struct {
	Geom          fabric.Geometry
	BaselineCells int
	ModifiedCells int
	BaselineArea  float64
	ModifiedArea  float64
}

// CellsIncrease returns the relative cell-count increase.
func (o Overhead) CellsIncrease() float64 {
	if o.BaselineCells == 0 {
		return 0
	}
	return float64(o.ModifiedCells-o.BaselineCells) / float64(o.BaselineCells)
}

// AreaIncrease returns the relative area increase.
func (o Overhead) AreaIncrease() float64 {
	if o.BaselineArea == 0 {
		return 0
	}
	return (o.ModifiedArea - o.BaselineArea) / o.BaselineArea
}

// Overhead computes the Table II comparison for a geometry.
func (m Model) Overhead(g fabric.Geometry) Overhead {
	base := m.Baseline(g)
	mod := m.Modified(g)
	return Overhead{
		Geom:          g,
		BaselineCells: base.TotalCells(),
		ModifiedCells: mod.TotalCells(),
		BaselineArea:  base.TotalArea(),
		ModifiedArea:  mod.TotalArea(),
	}
}

// Timing constants for the column critical path (15nm-like).
const (
	mux2DelayPs = 12.0
	aluDelayPs  = 62.0
)

// ColumnCriticalPathPs estimates the single-column data critical path:
// input crossbar tree, ALU, output crossbar tree. The movement hardware
// does not appear: the configuration-line muxes and barrel shifters sit on
// the (non-critical) configuration path, and the wrap-around selection
// folds into the output crossbar's select tree, which only deepens when
// W+2 crosses a power of two.
func (m Model) ColumnCriticalPathPs(g fabric.Geometry, modified bool) float64 {
	inLevels := log2ceil(g.CtxLines)
	outInputs := g.Rows + 1
	if modified {
		outInputs = g.Rows + 2 // wrap-around adds the input-context leg
	}
	outLevels := log2ceil(outInputs)
	return float64(inLevels)*mux2DelayPs + aluDelayPs + float64(outLevels)*mux2DelayPs
}

// ConfigCacheAreaUm2 is the FinCACTI-substitute SRAM estimate for the
// configuration cache: entries × columns × bits per column at a 15nm SRAM
// bit-cell density (µm² per bit including array overheads).
func (m Model) ConfigCacheAreaUm2(g fabric.Geometry, entries int) float64 {
	const um2PerBit = 0.0255
	bits := entries * g.Cols * energy.ConfigBitsPerColumn(g)
	return float64(bits) * um2PerBit
}

// String renders an Overhead like Table II.
func (o Overhead) String() string {
	return fmt.Sprintf("%v: area %.0f -> %.0f um2 (%+.2f%%), cells %d -> %d (%+.2f%%)",
		o.Geom, o.BaselineArea, o.ModifiedArea, 100*o.AreaIncrease(),
		o.BaselineCells, o.ModifiedCells, 100*o.CellsIncrease())
}
