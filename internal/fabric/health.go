package fabric

import "fmt"

// Health tracks which FU cells of a fabric are still functional. It is the
// first-class form of the failure-injection mechanism: the mapper consults it
// when placing new configurations, the aging-mitigation controller consults
// it when choosing pivots, and the lifetime simulator mutates it as cells
// cross the end-of-life delay threshold.
//
// A Health is owned by one simulated fabric instance and is not safe for
// concurrent mutation; scenario sweeps give every scenario its own Health.
type Health struct {
	geom      Geometry
	dead      []bool
	deadCount int
	version   uint64
}

// NewHealth builds an all-alive health map for the geometry.
func NewHealth(g Geometry) *Health {
	return &Health{geom: g, dead: make([]bool, g.NumFUs())}
}

// NewHealthWithDead builds a health map with the given cells already failed.
// Out-of-range cells are rejected.
func NewHealthWithDead(g Geometry, dead []Cell) (*Health, error) {
	h := NewHealth(g)
	for _, c := range dead {
		if !h.inRange(c) {
			return nil, fmt.Errorf("fabric: dead cell %v outside geometry %v", c, g)
		}
		h.Kill(c)
	}
	return h, nil
}

// Geometry returns the fabric geometry the health map covers.
func (h *Health) Geometry() Geometry { return h.geom }

func (h *Health) inRange(c Cell) bool {
	return c.Row >= 0 && c.Row < h.geom.Rows && c.Col >= 0 && c.Col < h.geom.Cols
}

// Kill marks a cell as failed. It reports whether the cell was newly killed
// (false for repeated kills and out-of-range cells).
func (h *Health) Kill(c Cell) bool {
	if !h.inRange(c) {
		return false
	}
	i := c.Row*h.geom.Cols + c.Col
	if h.dead[i] {
		return false
	}
	h.dead[i] = true
	h.deadCount++
	h.version++
	return true
}

// Revive marks a failed cell functional again and reports whether the cell
// was newly revived (false for live and out-of-range cells). Ground-truth
// aging never revives — hard failures are permanent — but the recovery
// layer's *observed* health map uses it when a quarantined cell passes
// probation: the quarantine was the runtime's belief, not physics.
func (h *Health) Revive(c Cell) bool {
	if !h.inRange(c) {
		return false
	}
	i := c.Row*h.geom.Cols + c.Col
	if !h.dead[i] {
		return false
	}
	h.dead[i] = false
	h.deadCount--
	h.version++
	return true
}

// Dead reports whether the cell has failed. Out-of-range cells read as dead.
func (h *Health) Dead(c Cell) bool {
	if !h.inRange(c) {
		return true
	}
	return h.dead[c.Row*h.geom.Cols+c.Col]
}

// Alive is the complement of Dead.
func (h *Health) Alive(c Cell) bool { return !h.Dead(c) }

// DeadCount returns the number of failed cells.
func (h *Health) DeadCount() int { return h.deadCount }

// AliveFraction returns the surviving fraction of the fabric.
func (h *Health) AliveFraction() float64 {
	n := h.geom.NumFUs()
	if n == 0 {
		return 0
	}
	return float64(n-h.deadCount) / float64(n)
}

// DeadCells lists the failed cells in row-major order.
func (h *Health) DeadCells() []Cell {
	out := make([]Cell, 0, h.deadCount)
	for r := 0; r < h.geom.Rows; r++ {
		for c := 0; c < h.geom.Cols; c++ {
			if h.dead[r*h.geom.Cols+c] {
				out = append(out, Cell{Row: r, Col: c})
			}
		}
	}
	return out
}

// Version increments on every state change; callers memoizing placement
// decisions use it to invalidate their caches.
func (h *Health) Version() uint64 { return h.version }

// DeadMask exposes the row-major liveness bitmap for read-only scanning:
// hot placement scans index it directly instead of paying a bounds check
// and index computation per Dead call. The slice aliases the health map's
// state — callers must not modify it, and must not hold it across
// mutations they cannot observe (Version guards that).
func (h *Health) DeadMask() []bool { return h.dead }

// PlacementOK reports whether shifting a configuration occupying the given
// virtual cells by off would keep every op on a live FU.
func (h *Health) PlacementOK(cells []Cell, off Offset) bool {
	for _, c := range cells {
		p := off.Apply(c, h.geom)
		if h.dead[p.Row*h.geom.Cols+p.Col] {
			return false
		}
	}
	return true
}
