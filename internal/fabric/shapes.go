package fabric

import "fmt"

// ShapeLadder generates the candidate shape list the layout-space searches
// walk: the shape-adaptive remapper's (shape × anchor) rescue scan and the
// DBT's translation-time ladder scan share one ladder, so a kernel remapped
// at allocation time and a kernel translated shape-aware explore the same
// space. A ladder is expressed as fractions of the physical geometry —
// ColFracs × RowFracs, crossed widest-first — so one definition scales
// across every fabric size the design-space exploration sweeps.
//
// The zero value is not a usable ladder; take DefaultShapeLadder (the
// halving ladder the remapper shipped with) or ShapeLadderByName for the
// sweepable variants.
type ShapeLadder struct {
	// Name identifies the ladder in reports and DSE sweeps.
	Name string
	// ColFracs lists the fractions of the physical column count tried, in
	// search order (widest first keeps the search deterministic and biased
	// toward architectural throughput).
	ColFracs []float64
	// RowFracs lists the fractions of the physical row count crossed with
	// every column fraction. Fractions that floor below one row clamp to a
	// single row, so 0 is the conventional "down to one row" rung.
	RowFracs []float64
}

// DefaultShapeLadder is the halving ladder: the full fabric (a masked
// re-map at every anchor already flows around most clusters), then
// three-quarter-, half- and quarter-length rectangles at full height, half
// height and a single row. Narrower shapes force the greedy mapper to
// stack ops onto more rows — the "narrower/taller" reshaping — which is
// what fits a full-length sequence into the live half of a partially dead
// fabric.
func DefaultShapeLadder() ShapeLadder {
	return ShapeLadder{
		Name:     "halving",
		ColFracs: []float64{1, 0.75, 0.5, 0.25},
		RowFracs: []float64{1, 0.5, 0},
	}
}

// ShapeLadderNames lists the named ladder variants in the order the
// shape-ladder DSE sweeps them.
func ShapeLadderNames() []string {
	return []string{"halving", "full-only", "columns", "rows", "fine"}
}

// ShapeLadderByName returns a named ladder variant:
//
//   - "halving": the default (see DefaultShapeLadder);
//   - "full-only": only the full fabric — the degenerate ladder that
//     reduces the search to a masked re-map of the original shape;
//   - "columns": length reductions at full height only (no row folding);
//   - "rows": height reductions at full length only;
//   - "fine": eighth-step length reductions crossed with the default
//     heights — the densest (most expensive) ladder.
func ShapeLadderByName(name string) (ShapeLadder, error) {
	switch name {
	case "", "halving":
		return DefaultShapeLadder(), nil
	case "full-only":
		return ShapeLadder{Name: "full-only", ColFracs: []float64{1}, RowFracs: []float64{1}}, nil
	case "columns":
		return ShapeLadder{Name: "columns", ColFracs: []float64{1, 0.75, 0.5, 0.25}, RowFracs: []float64{1}}, nil
	case "rows":
		return ShapeLadder{Name: "rows", ColFracs: []float64{1}, RowFracs: []float64{1, 0.5, 0}}, nil
	case "fine":
		return ShapeLadder{
			Name:     "fine",
			ColFracs: []float64{1, 0.875, 0.75, 0.625, 0.5, 0.375, 0.25, 0.125},
			RowFracs: []float64{1, 0.5, 0},
		}, nil
	}
	return ShapeLadder{}, fmt.Errorf("fabric: unknown shape ladder %q (want one of %v)",
		name, ShapeLadderNames())
}

// Shapes materialises the ladder for a physical geometry: every (column
// fraction × row fraction) rectangle, floored to whole cells, clamped to at
// least one row/column, deduplicated in search order. Every shape keeps the
// physical context/configuration line provisioning: the lines span the
// whole fabric regardless of which sub-rectangle the ops occupy.
func (l ShapeLadder) Shapes(g Geometry) []Geometry {
	var out []Geometry
	seen := make(map[[2]int]bool)
	clamp := func(frac float64, dim int) int {
		n := int(frac * float64(dim))
		if n < 1 {
			return 1
		}
		if n > dim {
			return dim
		}
		return n
	}
	for _, cf := range l.ColFracs {
		cols := clamp(cf, g.Cols)
		for _, rf := range l.RowFracs {
			rows := clamp(rf, g.Rows)
			k := [2]int{rows, cols}
			if seen[k] {
				continue
			}
			seen[k] = true
			out = append(out, Geometry{
				Rows: rows, Cols: cols,
				CtxLines: g.CtxLines, CfgLines: g.CfgLines,
			})
		}
	}
	return out
}

// Len returns the number of rungs the ladder expands to on a geometry:
// the candidate count the search-cost model charges per ladder scan.
func (l ShapeLadder) Len(g Geometry) int { return len(l.Shapes(g)) }
