package fabric

import "fmt"

// Faults tracks each FU cell's per-execution intermittent-fault probability:
// the third versioned fabric-state layer beside Health (dead/alive) and Wear
// (accumulated stress). Aged transistors misbehave intermittently before
// they die — increased delay causes marginal timing paths to flip bits on
// some executions — so the lifetime simulator derives each cell's
// probability from its consumed lifetime once it crosses a configurable
// intermittent threshold, and the fault-injection layer draws against the
// map on every offload that occupies the cell.
//
// Like Health and Wear, a Faults map is owned by one simulated fabric
// instance and is not safe for concurrent mutation; Version increments on
// every state change so epoch memos and caches can key on it.
type Faults struct {
	geom    Geometry
	prob    []float64
	risky   int
	version uint64
}

// NewFaults builds an all-reliable fault map for the geometry.
func NewFaults(g Geometry) *Faults {
	return &Faults{geom: g, prob: make([]float64, g.NumFUs())}
}

// Geometry returns the fabric geometry the fault map covers.
func (f *Faults) Geometry() Geometry { return f.geom }

func (f *Faults) inRange(c Cell) bool {
	return c.Row >= 0 && c.Row < f.geom.Rows && c.Col >= 0 && c.Col < f.geom.Cols
}

// Set assigns a cell's per-execution fault probability, clamped to [0, 1],
// and reports whether the map changed (the version only advances on actual
// change, so re-deriving an unchanged map keeps epoch memos valid).
// Out-of-range cells are ignored.
func (f *Faults) Set(c Cell, p float64) bool {
	if !f.inRange(c) {
		return false
	}
	if p < 0 {
		p = 0
	} else if p > 1 {
		p = 1
	}
	i := c.Row*f.geom.Cols + c.Col
	if f.prob[i] == p {
		return false
	}
	if f.prob[i] == 0 {
		f.risky++
	} else if p == 0 {
		f.risky--
	}
	f.prob[i] = p
	f.version++
	return true
}

// At returns a cell's per-execution fault probability. Out-of-range cells
// read as zero.
func (f *Faults) At(c Cell) float64 {
	if !f.inRange(c) {
		return 0
	}
	return f.prob[c.Row*f.geom.Cols+c.Col]
}

// Risky reports whether any cell has a non-zero fault probability: the
// injection layer's fast path skips per-cell draws entirely on a fully
// reliable fabric.
func (f *Faults) Risky() bool { return f.risky > 0 }

// Version increments on every state change; the lifetime epoch memo keys on
// it exactly like Health.Version and Wear.Version.
func (f *Faults) Version() uint64 { return f.version }

// String summarises the map for debugging.
func (f *Faults) String() string {
	worst, cell := 0.0, Cell{}
	for r := 0; r < f.geom.Rows; r++ {
		for c := 0; c < f.geom.Cols; c++ {
			if p := f.prob[r*f.geom.Cols+c]; p > worst {
				worst, cell = p, Cell{Row: r, Col: c}
			}
		}
	}
	return fmt.Sprintf("faults{%v, %d risky, worst %.3g at %v}", f.geom, f.risky, worst, cell)
}
