package fabric

import "testing"

func TestFaultsSetClampAndAt(t *testing.T) {
	g := NewGeometry(2, 4)
	f := NewFaults(g)
	if f.At(Cell{Row: 0, Col: 0}) != 0 {
		t.Fatal("fresh fault map should be all zero")
	}
	if f.Risky() {
		t.Fatal("fresh fault map should not be risky")
	}
	if !f.Set(Cell{Row: 0, Col: 1}, 0.25) {
		t.Error("first set should report a change")
	}
	if got := f.At(Cell{Row: 0, Col: 1}); got != 0.25 {
		t.Errorf("At = %v, want 0.25", got)
	}
	if !f.Risky() {
		t.Error("non-zero probability should make the map risky")
	}
	// Clamping: out-of-range probabilities land on the boundary.
	f.Set(Cell{Row: 1, Col: 0}, 3.0)
	if got := f.At(Cell{Row: 1, Col: 0}); got != 1 {
		t.Errorf("At after Set(3.0) = %v, want clamp to 1", got)
	}
	f.Set(Cell{Row: 1, Col: 1}, -0.5)
	if got := f.At(Cell{Row: 1, Col: 1}); got != 0 {
		t.Errorf("At after Set(-0.5) = %v, want clamp to 0", got)
	}
	// Out-of-range cells: no-op set, zero read.
	if f.Set(Cell{Row: 9, Col: 0}, 0.5) {
		t.Error("out-of-range set should be rejected")
	}
	if f.At(Cell{Row: 9, Col: 0}) != 0 {
		t.Error("out-of-range cells must read zero probability")
	}
}

func TestFaultsVersionBumpsOnlyOnChange(t *testing.T) {
	f := NewFaults(NewGeometry(2, 4))
	v0 := f.Version()
	if !f.Set(Cell{Row: 0, Col: 0}, 0.1) {
		t.Fatal("first set should change")
	}
	v1 := f.Version()
	if v1 == v0 {
		t.Error("version must change when a probability changes")
	}
	if f.Set(Cell{Row: 0, Col: 0}, 0.1) {
		t.Error("repeated identical set should report no change")
	}
	if f.Version() != v1 {
		t.Error("version must not change on a no-op set")
	}
	// Clamped writes that land on the stored value are no-ops too: the
	// epoch memo keys on this version, so a quiescent fault field must not
	// force re-simulation.
	f.Set(Cell{Row: 1, Col: 1}, 0)
	if f.Version() != v1 {
		t.Error("writing zero over zero must not move the version")
	}
}

func TestFaultsRiskyTracksCount(t *testing.T) {
	f := NewFaults(NewGeometry(2, 4))
	c := Cell{Row: 0, Col: 2}
	f.Set(c, 0.3)
	if !f.Risky() {
		t.Fatal("risky after raising one cell")
	}
	f.Set(c, 0)
	if f.Risky() {
		t.Error("clearing the only risky cell should clear Risky")
	}
}
