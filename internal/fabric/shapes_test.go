package fabric

import (
	"reflect"
	"testing"
)

// TestDefaultLadderMatchesHalvingScan pins the extraction: the default
// ladder reproduces the remapper's original hard-coded halving scan —
// cols ∈ {L, 3L/4, L/2, L/4} crossed with rows ∈ {W, W/2, 1}, deduplicated
// in that order, line provisioning inherited from the physical geometry.
func TestDefaultLadderMatchesHalvingScan(t *testing.T) {
	for _, g := range []Geometry{
		NewGeometry(2, 16), NewGeometry(4, 8), NewGeometry(8, 32),
		NewGeometry(1, 8), NewGeometry(2, 3), NewGeometry(1, 1),
	} {
		var want []Geometry
		seen := make(map[[2]int]bool)
		add := func(rows, cols int) {
			if rows < 1 || cols < 1 || seen[[2]int{rows, cols}] {
				return
			}
			seen[[2]int{rows, cols}] = true
			want = append(want, Geometry{Rows: rows, Cols: cols, CtxLines: g.CtxLines, CfgLines: g.CfgLines})
		}
		for _, cols := range []int{g.Cols, (3 * g.Cols) / 4, g.Cols / 2, g.Cols / 4} {
			for _, rows := range []int{g.Rows, g.Rows / 2, 1} {
				add(rows, cols)
			}
		}
		got := DefaultShapeLadder().Shapes(g)
		if !reflect.DeepEqual(got, want) {
			t.Errorf("%v: default ladder %v, want the original halving scan %v", g, got, want)
		}
	}
}

// TestShapeLadderByName checks every advertised variant materialises to
// valid, in-bounds, deduplicated shapes with the full fabric first, and
// that unknown names are rejected.
func TestShapeLadderByName(t *testing.T) {
	g := NewGeometry(2, 16)
	for _, name := range ShapeLadderNames() {
		l, err := ShapeLadderByName(name)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if l.Name != name {
			t.Errorf("ladder %q reports name %q", name, l.Name)
		}
		shapes := l.Shapes(g)
		if len(shapes) == 0 {
			t.Fatalf("%s: empty ladder", name)
		}
		if shapes[0] != (Geometry{Rows: g.Rows, Cols: g.Cols, CtxLines: g.CtxLines, CfgLines: g.CfgLines}) {
			t.Errorf("%s: first rung %v is not the full fabric", name, shapes[0])
		}
		seen := make(map[[2]int]bool)
		for _, s := range shapes {
			if err := s.Validate(); err != nil {
				t.Errorf("%s: invalid shape %v: %v", name, s, err)
			}
			if s.Rows > g.Rows || s.Cols > g.Cols {
				t.Errorf("%s: shape %v exceeds the physical geometry", name, s)
			}
			if s.CtxLines != g.CtxLines || s.CfgLines != g.CfgLines {
				t.Errorf("%s: shape %v lost the physical line provisioning", name, s)
			}
			k := [2]int{s.Rows, s.Cols}
			if seen[k] {
				t.Errorf("%s: duplicate shape %v", name, s)
			}
			seen[k] = true
		}
	}
	if _, err := ShapeLadderByName("no-such-ladder"); err == nil {
		t.Error("unknown ladder name accepted")
	}
	if l, err := ShapeLadderByName(""); err != nil || l.Name != "halving" {
		t.Errorf("empty name = (%v, %v), want the default halving ladder", l.Name, err)
	}
}

// TestLadderClampsToOneCell pins the degenerate-geometry behaviour:
// fractions flooring below one cell clamp instead of vanishing, so every
// ladder is non-empty on every valid geometry.
func TestLadderClampsToOneCell(t *testing.T) {
	for _, name := range ShapeLadderNames() {
		l, _ := ShapeLadderByName(name)
		for _, g := range []Geometry{NewGeometry(1, 1), NewGeometry(1, 2), NewGeometry(2, 1)} {
			shapes := l.Shapes(g)
			if len(shapes) == 0 {
				t.Fatalf("%s on %v: empty ladder", name, g)
			}
			for _, s := range shapes {
				if s.Rows < 1 || s.Cols < 1 {
					t.Errorf("%s on %v: degenerate shape %v", name, g, s)
				}
			}
		}
	}
}
