package fabric

import (
	"testing"
	"testing/quick"

	"agingcgra/internal/isa"
)

func TestGeometryValidate(t *testing.T) {
	if err := NewGeometry(2, 16).Validate(); err != nil {
		t.Errorf("valid geometry rejected: %v", err)
	}
	bad := []Geometry{
		{Rows: 0, Cols: 16, CtxLines: 4, CfgLines: 4},
		{Rows: 2, Cols: 0, CtxLines: 4, CfgLines: 4},
		{Rows: 2, Cols: 16, CtxLines: 0, CfgLines: 4},
		{Rows: 2, Cols: 16, CtxLines: 4, CfgLines: 0},
	}
	for _, g := range bad {
		if err := g.Validate(); err == nil {
			t.Errorf("geometry %+v accepted", g)
		}
	}
}

func TestGeometryDerived(t *testing.T) {
	g := NewGeometry(4, 32)
	if g.NumFUs() != 128 {
		t.Errorf("NumFUs = %d, want 128", g.NumFUs())
	}
	if g.String() != "L32,W4" {
		t.Errorf("String = %q", g.String())
	}
	if g.CfgLines != 4 {
		t.Errorf("CfgLines = %d, want 4 (the paper's Fig. 5 broadcast)", g.CfgLines)
	}
	if g.ReconfigCycles() != 8 {
		t.Errorf("ReconfigCycles = %d, want 8 (32 cols / 4 lines)", g.ReconfigCycles())
	}
	small := NewGeometry(2, 8)
	if small.CfgLines != 4 {
		t.Errorf("small CfgLines = %d, want 4", small.CfgLines)
	}
	if small.CtxLines != 6 {
		t.Errorf("CtxLines = %d, want 2*2+2", small.CtxLines)
	}
}

func TestOffsetApplyWrapAround(t *testing.T) {
	g := NewGeometry(4, 8)
	cases := []struct {
		off  Offset
		in   Cell
		want Cell
	}{
		{Offset{0, 0}, Cell{1, 2}, Cell{1, 2}},
		{Offset{1, 1}, Cell{3, 7}, Cell{0, 0}},
		{Offset{2, 5}, Cell{1, 4}, Cell{3, 1}},
		{Offset{3, 7}, Cell{3, 7}, Cell{2, 6}},
	}
	for _, c := range cases {
		if got := c.off.Apply(c.in, g); got != c.want {
			t.Errorf("Apply(%v, %v) = %v, want %v", c.off, c.in, got, c.want)
		}
	}
}

// Property: applying any offset keeps cells in bounds and is a bijection on
// the cell grid.
func TestOffsetBijection(t *testing.T) {
	g := NewGeometry(4, 8)
	f := func(or, oc uint8) bool {
		off := Offset{Row: int(or) % g.Rows, Col: int(oc) % g.Cols}
		seen := make(map[Cell]bool)
		for r := 0; r < g.Rows; r++ {
			for c := 0; c < g.Cols; c++ {
				p := off.Apply(Cell{r, c}, g)
				if p.Row < 0 || p.Row >= g.Rows || p.Col < 0 || p.Col >= g.Cols {
					return false
				}
				if seen[p] {
					return false
				}
				seen[p] = true
			}
		}
		return len(seen) == g.NumFUs()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestLatencyTable(t *testing.T) {
	lat := DefaultLatencies()
	if err := lat.Validate(); err != nil {
		t.Fatal(err)
	}
	if lat.Columns(isa.ClassALU) != 1 {
		t.Error("ALU must be one column (half a cycle), per Section III.A")
	}
	if lat.Columns(isa.ClassLoad) != 4 || lat.Columns(isa.ClassStore) != 4 {
		t.Error("memory ops must span four columns (two cycles), per Section III.A")
	}
	if lat.Columns(isa.ClassJump) != 0 {
		t.Error("direct jumps consume no FU")
	}
	if lat.Columns(isa.ClassSys) != 0 {
		t.Error("sys ops are never mapped")
	}
	badLat := lat
	badLat.Mul = 0
	if err := badLat.Validate(); err == nil {
		t.Error("zero Mul latency accepted")
	}
}

func TestCyclesForColumns(t *testing.T) {
	cases := []struct {
		cols int
		want uint64
	}{{0, 0}, {-1, 0}, {1, 1}, {2, 1}, {3, 2}, {4, 2}, {31, 16}, {32, 16}}
	for _, c := range cases {
		if got := CyclesForColumns(c.cols); got != c.want {
			t.Errorf("CyclesForColumns(%d) = %d, want %d", c.cols, got, c.want)
		}
	}
}

func testConfig() *Config {
	g := NewGeometry(2, 16)
	return &Config{
		StartPC: 0x1000,
		Geom:    g,
		Ops: []PlacedOp{
			{Seq: 0, PC: 0x1000, Inst: isa.Inst{Op: isa.ADD}, Row: 0, Col: 0, Width: 1},
			{Seq: 1, PC: 0x1004, Inst: isa.Inst{Op: isa.LW}, Row: 1, Col: 0, Width: 4},
			{Seq: 2, PC: 0x1008, Inst: isa.Inst{Op: isa.ADD}, Row: 0, Col: 4, Width: 1},
			{Seq: 3, PC: 0x100c, Inst: isa.Inst{Op: isa.JAL}, Taken: true, Width: 0},
			{Seq: 4, PC: 0x0800, Inst: isa.Inst{Op: isa.BNE}, Taken: true, Row: 0, Col: 5, Width: 1},
		},
		UsedCols: 6,
	}
}

func TestConfigValidate(t *testing.T) {
	c := testConfig()
	if err := c.Validate(); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}

	overlap := testConfig()
	overlap.Ops[2].Col = 0 // collides with op 0
	if err := overlap.Validate(); err == nil {
		t.Error("overlapping ops accepted")
	}

	outside := testConfig()
	outside.Ops[1].Col = 14 // load spans past column 16
	if err := outside.Validate(); err == nil {
		t.Error("out-of-bounds op accepted")
	}

	badCols := testConfig()
	badCols.UsedCols = 3
	if err := badCols.Validate(); err == nil {
		t.Error("inconsistent UsedCols accepted")
	}

	badSeq := testConfig()
	badSeq.Ops[1].Seq = 0
	if err := badSeq.Validate(); err == nil {
		t.Error("non-increasing Seq accepted")
	}
}

func TestConfigCells(t *testing.T) {
	c := testConfig()
	cells := c.Cells()
	// op0: (0,0); op1: (1,0..3); op2: (0,4); op4: (0,5); jump: none.
	want := []Cell{{0, 0}, {0, 4}, {0, 5}, {1, 0}, {1, 1}, {1, 2}, {1, 3}}
	if len(cells) != len(want) {
		t.Fatalf("got %d cells %v, want %d", len(cells), cells, len(want))
	}
	for i := range want {
		if cells[i] != want[i] {
			t.Errorf("cells[%d] = %v, want %v", i, cells[i], want[i])
		}
	}
	// Cached: second call returns the same slice.
	if &c.Cells()[0] != &cells[0] {
		t.Error("Cells not cached")
	}
}

func TestConfigExecCycles(t *testing.T) {
	c := testConfig()
	if got := c.ExecCycles(); got != 3 {
		t.Errorf("ExecCycles = %d, want 3 (6 columns)", got)
	}
	// Exiting at seq 2: max end col among seq <= 2 is 5 -> 3 cycles.
	if got := c.ExecCyclesTo(2); got != 3 {
		t.Errorf("ExecCyclesTo(2) = %d, want 3", got)
	}
	// Exiting at seq 0: 1 column -> 1 cycle.
	if got := c.ExecCyclesTo(0); got != 1 {
		t.Errorf("ExecCyclesTo(0) = %d, want 1", got)
	}
}
