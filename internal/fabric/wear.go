package fabric

import "fmt"

// Wear tracks the accumulated NBTI stress of every FU cell in
// calibration-equivalent stress-years: Eq. 1's ΔVt depends on time and duty
// cycle only through their product t·u, so one number per cell captures the
// whole aging history. The lifetime simulator owns and advances the map at
// epoch boundaries; wear-adaptive allocators (alloc.WearSetter) read it to
// steer placements away from the most-degraded cells.
//
// A Wear is owned by one simulated fabric instance and is not safe for
// concurrent mutation; scenario sweeps give every scenario its own Wear.
type Wear struct {
	geom    Geometry
	years   []float64
	version uint64
}

// NewWear builds an all-fresh wear map for the geometry.
func NewWear(g Geometry) *Wear {
	return &Wear{geom: g, years: make([]float64, g.NumFUs())}
}

// Geometry returns the fabric geometry the wear map covers.
func (w *Wear) Geometry() Geometry { return w.geom }

func (w *Wear) inRange(c Cell) bool {
	return c.Row >= 0 && c.Row < w.geom.Rows && c.Col >= 0 && c.Col < w.geom.Cols
}

// Add accrues stress-years on a cell and reports whether the map changed.
// Non-positive deltas and out-of-range cells are ignored.
func (w *Wear) Add(c Cell, years float64) bool {
	if years <= 0 || !w.inRange(c) {
		return false
	}
	w.years[c.Row*w.geom.Cols+c.Col] += years
	w.version++
	return true
}

// YearsAt returns the accumulated stress-years of a cell. Out-of-range cells
// read as zero.
func (w *Wear) YearsAt(c Cell) float64 {
	if !w.inRange(c) {
		return 0
	}
	return w.years[c.Row*w.geom.Cols+c.Col]
}

// Max returns the highest accumulated stress and its cell: the FU closest to
// end-of-life on a fabric with uniform conditions.
func (w *Wear) Max() (float64, Cell) {
	best, cell := 0.0, Cell{}
	for r := 0; r < w.geom.Rows; r++ {
		for c := 0; c < w.geom.Cols; c++ {
			if y := w.years[r*w.geom.Cols+c]; y > best {
				best, cell = y, Cell{Row: r, Col: c}
			}
		}
	}
	return best, cell
}

// Version increments on every state change; callers memoizing placement
// decisions (or whole epoch outcomes) use it to invalidate their caches,
// exactly like Health.Version.
func (w *Wear) Version() uint64 { return w.version }

// CopyYears copies the per-cell stress-years (row-major) into dst, growing
// it as needed, and returns the filled slice. Incremental scorers snapshot
// the map through it once per version move instead of calling YearsAt per
// cell per scan.
func (w *Wear) CopyYears(dst []float64) []float64 {
	if cap(dst) < len(w.years) {
		dst = make([]float64, len(w.years))
	}
	dst = dst[:len(w.years)]
	copy(dst, w.years)
	return dst
}

// String summarises the map for debugging.
func (w *Wear) String() string {
	max, cell := w.Max()
	return fmt.Sprintf("wear{%v, max %.3fy at %v}", w.geom, max, cell)
}
