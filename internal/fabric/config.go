package fabric

import (
	"fmt"

	"agingcgra/internal/isa"
)

// PlacedOp is one instruction of a virtual configuration together with its
// position in the virtual (pivot-relative) coordinate system.
type PlacedOp struct {
	// Seq is the index of this op in the captured dynamic sequence.
	Seq int
	// PC is the instruction's address, used to follow the sequence during
	// replay.
	PC uint32
	// Inst is the instruction.
	Inst isa.Inst
	// Taken records, for control transfers, the branch direction observed
	// when the configuration was translated. Replay exits early when the
	// actual direction diverges.
	Taken bool
	// Row and Col place the op in virtual fabric coordinates.
	Row, Col int
	// Width is the number of columns the op spans (its latency class).
	Width int
}

// EndCol returns the first column after the op.
func (p PlacedOp) EndCol() int { return p.Col + p.Width }

// Config is a virtual CGRA configuration: a placed dynamic instruction
// sequence, pivot at (0,0). The utilization-aware allocator shifts the
// whole configuration by an Offset at load time; nothing in the Config
// itself changes.
type Config struct {
	// StartPC indexes the configuration in the configuration cache.
	StartPC uint32
	// Geom is the fabric the configuration was placed for.
	Geom Geometry
	// Ops holds the placed operations in sequence order. Direct jumps have
	// Width 0: they consume no FU.
	Ops []PlacedOp
	// UsedCols is the highest EndCol over all ops.
	UsedCols int

	cells []Cell // cached occupied cells

	// Replay accelerator tables, computed once on first use: the engine
	// replays hot configurations millions of times and batches its per-op
	// accounting through these prefix sums instead of re-deriving it per
	// retired instruction.
	execPrefix  []uint64    // [k] = exec cycles when the first k ops ran
	classPrefix [][8]uint64 // [k] = per-isa.Class op counts of the first k ops
	replayPCs   []uint32    // op addresses in sequence order
	replayDirs  []int8      // expected branch direction: -1 none, 0/1 not-taken/taken
}

// NumOps returns the number of instructions in the configuration.
func (c *Config) NumOps() int { return len(c.Ops) }

// Cells returns every FU cell occupied by the configuration, in a stable
// order, computed once. An op of width w occupies w consecutive cells in
// its row. The returned slice must not be modified.
func (c *Config) Cells() []Cell {
	if c.cells != nil {
		return c.cells
	}
	seen := make(map[Cell]bool)
	for _, op := range c.Ops {
		for w := 0; w < op.Width; w++ {
			cell := Cell{Row: op.Row, Col: op.Col + w}
			if !seen[cell] {
				seen[cell] = true
				c.cells = append(c.cells, cell)
			}
		}
	}
	// Stable order: row-major.
	sortCells(c.cells)
	return c.cells
}

func sortCells(cells []Cell) {
	// Insertion sort: cell lists are small and this avoids pulling in
	// sort.Slice allocations on a hot path.
	for i := 1; i < len(cells); i++ {
		for j := i; j > 0; j-- {
			a, b := cells[j-1], cells[j]
			if a.Row < b.Row || (a.Row == b.Row && a.Col <= b.Col) {
				break
			}
			cells[j-1], cells[j] = cells[j], cells[j-1]
		}
	}
}

// ExecCyclesTo returns the execution time, in processor cycles, of running
// the configuration up to and including the op at sequence position
// exitSeq (or the whole configuration when exitSeq is the last op).
func (c *Config) ExecCyclesTo(exitSeq int) uint64 {
	maxEnd := 0
	for _, op := range c.Ops {
		if op.Seq > exitSeq {
			break
		}
		if e := op.EndCol(); e > maxEnd {
			maxEnd = e
		}
	}
	return CyclesForColumns(maxEnd)
}

// ExecCycles returns the execution time of the full configuration.
func (c *Config) ExecCycles() uint64 { return CyclesForColumns(c.UsedCols) }

// ensurePrefixes builds the replay accelerator tables.
func (c *Config) ensurePrefixes() {
	if c.execPrefix != nil {
		return
	}
	c.execPrefix = make([]uint64, len(c.Ops)+1)
	c.classPrefix = make([][8]uint64, len(c.Ops)+1)
	c.replayPCs = make([]uint32, len(c.Ops))
	c.replayDirs = make([]int8, len(c.Ops))
	maxEnd := 0
	var classes [8]uint64
	for i, op := range c.Ops {
		if e := op.EndCol(); e > maxEnd {
			maxEnd = e
		}
		classes[op.Inst.Op.Class()]++
		c.execPrefix[i+1] = CyclesForColumns(maxEnd)
		c.classPrefix[i+1] = classes
		c.replayPCs[i] = op.PC
		c.replayDirs[i] = -1
		if op.Inst.IsBranch() {
			c.replayDirs[i] = 0
			if op.Taken {
				c.replayDirs[i] = 1
			}
		}
	}
	// Zero ops executed still pays for the first op's column span,
	// mirroring ExecCyclesTo's exitSeq floor of Ops[0].Seq.
	if len(c.Ops) > 0 {
		c.execPrefix[0] = c.execPrefix[1]
	}
}

// ExecCyclesFirst returns the execution time when exactly the first n ops
// of the sequence executed: identical to ExecCyclesTo(Ops[n-1].Seq) (and,
// for n == 0, to ExecCyclesTo(Ops[0].Seq), the early-exit floor) but O(1)
// after the first call.
func (c *Config) ExecCyclesFirst(n int) uint64 {
	c.ensurePrefixes()
	return c.execPrefix[n]
}

// ClassCountsFirst returns per-isa.Class op counts of the first n ops,
// memoized like ExecCyclesFirst.
func (c *Config) ClassCountsFirst(n int) [8]uint64 {
	c.ensurePrefixes()
	return c.classPrefix[n]
}

// ReplayTables returns the sequence's op addresses and expected branch
// directions (-1 for non-branches, else 0/1) in the compact form the
// replay inner loop consumes. The slices are memoized; callers must not
// modify them.
func (c *Config) ReplayTables() (pcs []uint32, dirs []int8) {
	c.ensurePrefixes()
	return c.replayPCs, c.replayDirs
}

// Validate checks the structural invariants of a placed configuration:
// every op within bounds, no two ops sharing an FU cell, UsedCols
// consistent, and sequence numbers strictly increasing.
func (c *Config) Validate() error {
	if err := c.Geom.Validate(); err != nil {
		return err
	}
	occupied := make(map[Cell]int)
	maxEnd := 0
	lastSeq := -1
	for i, op := range c.Ops {
		if op.Seq <= lastSeq {
			return fmt.Errorf("fabric: op %d sequence %d not increasing", i, op.Seq)
		}
		lastSeq = op.Seq
		if op.Width == 0 {
			continue // direct jump, no FU
		}
		if op.Row < 0 || op.Row >= c.Geom.Rows {
			return fmt.Errorf("fabric: op %d row %d outside geometry %v", i, op.Row, c.Geom)
		}
		if op.Col < 0 || op.EndCol() > c.Geom.Cols {
			return fmt.Errorf("fabric: op %d cols [%d,%d) outside geometry %v",
				i, op.Col, op.EndCol(), c.Geom)
		}
		for w := 0; w < op.Width; w++ {
			cell := Cell{Row: op.Row, Col: op.Col + w}
			if prev, dup := occupied[cell]; dup {
				return fmt.Errorf("fabric: ops %d and %d overlap at %v", prev, i, cell)
			}
			occupied[cell] = i
		}
		if e := op.EndCol(); e > maxEnd {
			maxEnd = e
		}
	}
	if c.UsedCols != maxEnd {
		return fmt.Errorf("fabric: UsedCols = %d, computed %d", c.UsedCols, maxEnd)
	}
	return nil
}
