package fabric

import "testing"

func TestHealthKillAndQueries(t *testing.T) {
	g := NewGeometry(2, 4)
	h := NewHealth(g)
	if h.DeadCount() != 0 || h.AliveFraction() != 1 {
		t.Fatal("fresh health map should be all alive")
	}
	if !h.Kill(Cell{Row: 1, Col: 2}) {
		t.Fatal("first kill should report newly killed")
	}
	if h.Kill(Cell{Row: 1, Col: 2}) {
		t.Error("repeated kill should be idempotent")
	}
	if h.Kill(Cell{Row: 5, Col: 0}) {
		t.Error("out-of-range kill should be rejected")
	}
	if !h.Dead(Cell{Row: 1, Col: 2}) || h.Alive(Cell{Row: 1, Col: 2}) {
		t.Error("killed cell should read dead")
	}
	if h.Dead(Cell{Row: 0, Col: 0}) {
		t.Error("untouched cell should read alive")
	}
	if !h.Dead(Cell{Row: -1, Col: 0}) {
		t.Error("out-of-range cells must read dead")
	}
	if got, want := h.AliveFraction(), 7.0/8; got != want {
		t.Errorf("alive fraction %v, want %v", got, want)
	}
	if cells := h.DeadCells(); len(cells) != 1 || cells[0] != (Cell{Row: 1, Col: 2}) {
		t.Errorf("dead cells %v", cells)
	}
}

func TestHealthVersionBumpsOnChange(t *testing.T) {
	h := NewHealth(NewGeometry(2, 4))
	v0 := h.Version()
	h.Kill(Cell{Row: 0, Col: 0})
	if h.Version() == v0 {
		t.Error("version must change on a kill")
	}
	v1 := h.Version()
	h.Kill(Cell{Row: 0, Col: 0}) // idempotent
	if h.Version() != v1 {
		t.Error("version must not change on a no-op kill")
	}
}

func TestHealthPlacementOK(t *testing.T) {
	g := NewGeometry(2, 4)
	h := NewHealth(g)
	h.Kill(Cell{Row: 0, Col: 0})
	cells := []Cell{{Row: 0, Col: 0}, {Row: 0, Col: 1}}
	if h.PlacementOK(cells, Offset{}) {
		t.Error("identity placement over a dead cell should fail")
	}
	if !h.PlacementOK(cells, Offset{Row: 1}) {
		t.Error("shifting to the live row should pass")
	}
	// Wrap-around: offset col 3 maps virtual col 1 onto physical col 0.
	if h.PlacementOK(cells, Offset{Col: 3}) {
		t.Error("wrapped placement over the dead cell should fail")
	}
}

func TestNewHealthWithDead(t *testing.T) {
	g := NewGeometry(2, 4)
	h, err := NewHealthWithDead(g, []Cell{{Row: 0, Col: 1}, {Row: 1, Col: 3}})
	if err != nil {
		t.Fatal(err)
	}
	if h.DeadCount() != 2 {
		t.Errorf("dead count %d, want 2", h.DeadCount())
	}
	if _, err := NewHealthWithDead(g, []Cell{{Row: 9, Col: 9}}); err == nil {
		t.Error("out-of-range dead cell accepted")
	}
}

func TestHealthRevive(t *testing.T) {
	g := NewGeometry(2, 4)
	h := NewHealth(g)
	c := Cell{Row: 1, Col: 2}
	if h.Revive(c) {
		t.Error("reviving an alive cell should be a no-op")
	}
	h.Kill(c)
	v := h.Version()
	if !h.Revive(c) {
		t.Fatal("reviving a dead cell should report a change")
	}
	if h.Dead(c) || h.DeadCount() != 0 {
		t.Error("revived cell should read alive again")
	}
	if h.Version() == v {
		t.Error("revive must bump the version")
	}
	v = h.Version()
	if h.Revive(c) {
		t.Error("repeated revive should be idempotent")
	}
	if h.Version() != v {
		t.Error("no-op revive must not move the version")
	}
	if h.Revive(Cell{Row: 5, Col: 0}) {
		t.Error("out-of-range revive should be rejected")
	}
}
