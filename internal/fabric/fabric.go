// Package fabric models the TransRec CGRA reconfigurable unit: a matrix of
// functional units (FUs) organised in rows (parallelism) and columns
// (sequential execution), with left-to-right data propagation over context
// lines, per-column crossbars, and a column-broadcast reconfiguration
// network (Fig. 4 and Fig. 5 of the paper).
//
// Time is measured in "columns": the technology's ALU latency is half a
// processor cycle, so one column corresponds to half a cycle and
// ColumnsPerCycle columns execute per processor cycle. Loads and stores are
// bound by the data cache and span four columns (two cycles).
package fabric

import (
	"fmt"

	"agingcgra/internal/isa"
)

// ColumnsPerCycle is the number of fabric columns traversed per processor
// cycle (ALUs have half-cycle latency).
const ColumnsPerCycle = 2

// Geometry describes a fabric instance.
type Geometry struct {
	// Rows is the width W: the number of parallel FUs per column.
	Rows int
	// Cols is the length L: the number of sequential columns.
	Cols int
	// CtxLines is the number of context lines crossing each column
	// boundary; it bounds how many live values a configuration may carry
	// from one column to the next.
	CtxLines int
	// CfgLines is the number n of configuration broadcast lines: the
	// reconfiguration logic writes n columns per cycle (Fig. 5a), so a full
	// reload takes ceil(Cols/CfgLines) cycles.
	CfgLines int
}

// NewGeometry builds a geometry with the default context/configuration
// line provisioning for the given fabric size.
func NewGeometry(rows, cols int) Geometry {
	return Geometry{
		Rows:     rows,
		Cols:     cols,
		CtxLines: DefaultCtxLines(rows),
		CfgLines: DefaultCfgLines(cols),
	}
}

// DefaultCtxLines provisions context lines: enough for every row's result
// plus a couple of long-range values. Live-in values do not consume lines
// end-to-end because the wrap-around 2:1 multiplexer injects the initial
// input context at any column (Section III.B).
func DefaultCtxLines(rows int) int { return 2*rows + 2 }

// DefaultCfgLines is the paper's n=4 configuration broadcast (Fig. 5a).
// Reconfiguration proceeds as a wavefront at CfgLines columns per cycle
// while execution propagates at ColumnsPerCycle columns per cycle; since
// n exceeds the execution rate, the broadcast stays ahead of the data and
// reloading is fully hidden behind the per-offload startup.
func DefaultCfgLines(cols int) int { return 4 }

// Validate checks the geometry for consistency.
func (g Geometry) Validate() error {
	if g.Rows < 1 || g.Cols < 1 {
		return fmt.Errorf("fabric: geometry %dx%d must be at least 1x1", g.Rows, g.Cols)
	}
	if g.CtxLines < 1 {
		return fmt.Errorf("fabric: geometry needs at least one context line")
	}
	if g.CfgLines < 1 {
		return fmt.Errorf("fabric: geometry needs at least one configuration line")
	}
	return nil
}

// NumFUs returns the total FU cell count W*L.
func (g Geometry) NumFUs() int { return g.Rows * g.Cols }

// ReconfigCycles is the time to broadcast a full configuration into the
// fabric: ceil(Cols / CfgLines). With the default wavefront broadcast this
// latency is overlapped with execution; it is exposed only in the
// ablation that disables the overlap (dbt.Options.ExposeReconfig).
func (g Geometry) ReconfigCycles() uint64 {
	return uint64((g.Cols + g.CfgLines - 1) / g.CfgLines)
}

// String formats the geometry in the paper's (L, W) notation.
func (g Geometry) String() string {
	return fmt.Sprintf("L%d,W%d", g.Cols, g.Rows)
}

// Cell identifies one FU position in the fabric.
type Cell struct {
	Row, Col int
}

// Offset is a toroidal displacement applied to a virtual configuration when
// it is allocated onto the physical fabric: the pivot position of the
// utilization-aware movement (Fig. 3).
type Offset struct {
	Row, Col int
}

// Apply maps a virtual cell to its physical position under the offset,
// with wrap-around in both dimensions.
func (o Offset) Apply(c Cell, g Geometry) Cell {
	return Cell{
		Row: (c.Row + o.Row) % g.Rows,
		Col: (c.Col + o.Col) % g.Cols,
	}
}

// LatencyTable gives each instruction class its column span.
type LatencyTable struct {
	ALU    int // single-column integer ops
	Mul    int // hardware multiplier
	Div    int // iterative divider
	Load   int // data-cache read (paper: four columns / two cycles)
	Store  int // data-cache write
	Branch int // compare-and-exit
}

// DefaultLatencies is the column-span calibration used throughout: ALUs are
// one column (half a cycle) and memory operations four columns (two
// cycles), exactly as in Section III.A; multipliers take a full cycle and
// the divider four cycles.
func DefaultLatencies() LatencyTable {
	return LatencyTable{
		ALU:    1,
		Mul:    2,
		Div:    8,
		Load:   4,
		Store:  4,
		Branch: 1,
	}
}

// Columns returns the column span of an instruction class. ClassSys
// instructions are never mapped; they return 0.
func (t LatencyTable) Columns(c isa.Class) int {
	switch c {
	case isa.ClassALU:
		return t.ALU
	case isa.ClassMul:
		return t.Mul
	case isa.ClassDiv:
		return t.Div
	case isa.ClassLoad:
		return t.Load
	case isa.ClassStore:
		return t.Store
	case isa.ClassBranch:
		return t.Branch
	case isa.ClassJump:
		// Direct jumps consume no FU: their target is a constant resolved
		// at translation time. They still occupy a trace slot.
		return 0
	}
	return 0
}

// Validate checks that every mapped class has a positive span.
func (t LatencyTable) Validate() error {
	for _, v := range []struct {
		name string
		cols int
	}{
		{"ALU", t.ALU}, {"Mul", t.Mul}, {"Div", t.Div},
		{"Load", t.Load}, {"Store", t.Store}, {"Branch", t.Branch},
	} {
		if v.cols < 1 {
			return fmt.Errorf("fabric: latency for %s must be >= 1 column", v.name)
		}
	}
	return nil
}

// CyclesForColumns converts a column count to whole processor cycles.
func CyclesForColumns(cols int) uint64 {
	if cols <= 0 {
		return 0
	}
	return uint64((cols + ColumnsPerCycle - 1) / ColumnsPerCycle)
}
