package fabric

import (
	"testing"
)

func TestPatternCells(t *testing.T) {
	g := NewGeometry(2, 16)
	cases := []struct {
		name  string
		count int
	}{
		{"healthy", 0},
		{"none", 0},
		{"column", 2}, // default C/2
		{"column:0", 2},
		{"columns:0+8", 4},
		{"quadrant", 8}, // row 0 × cols 0-7
		{"checkerboard", 16},
		{"checkerboard:1", 16},
		{"survivor-row:1", 16},
	}
	for _, tc := range cases {
		cells, err := PatternCells(tc.name, g)
		if err != nil {
			t.Errorf("%s: %v", tc.name, err)
			continue
		}
		if len(cells) != tc.count {
			t.Errorf("%s: %d cells, want %d", tc.name, len(cells), tc.count)
		}
		seen := make(map[Cell]bool)
		for _, c := range cells {
			if c.Row < 0 || c.Row >= g.Rows || c.Col < 0 || c.Col >= g.Cols {
				t.Errorf("%s: cell %v outside %v", tc.name, c, g)
			}
			if seen[c] {
				t.Errorf("%s: duplicate cell %v", tc.name, c)
			}
			seen[c] = true
		}
	}

	// The two checkerboard parities partition the fabric.
	a, _ := PatternCells("checkerboard:0", g)
	b, _ := PatternCells("checkerboard:1", g)
	if len(a)+len(b) != g.NumFUs() {
		t.Errorf("checkerboard parities cover %d cells, want %d", len(a)+len(b), g.NumFUs())
	}

	// The survivor row itself stays alive.
	surv, _ := PatternCells("survivor-row:1", g)
	for _, c := range surv {
		if c.Row == 1 {
			t.Errorf("survivor-row:1 kills survivor cell %v", c)
		}
	}

	for _, bad := range []string{"nope", "column:99", "columns", "columns:0+99", "survivor-row:7", "checkerboard:5"} {
		if _, err := PatternCells(bad, g); err == nil {
			t.Errorf("PatternCells(%q) succeeded, want error", bad)
		}
	}
}
