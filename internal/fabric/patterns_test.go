package fabric

import (
	"testing"
)

func TestPatternCells(t *testing.T) {
	g := NewGeometry(2, 16)
	cases := []struct {
		name  string
		count int
	}{
		{"healthy", 0},
		{"none", 0},
		{"column", 2}, // default C/2
		{"column:0", 2},
		{"columns:0+8", 4},
		{"quadrant", 8}, // row 0 × cols 0-7
		{"checkerboard", 16},
		{"checkerboard:1", 16},
		{"survivor-row:1", 16},
	}
	for _, tc := range cases {
		cells, err := PatternCells(tc.name, g)
		if err != nil {
			t.Errorf("%s: %v", tc.name, err)
			continue
		}
		if len(cells) != tc.count {
			t.Errorf("%s: %d cells, want %d", tc.name, len(cells), tc.count)
		}
		seen := make(map[Cell]bool)
		for _, c := range cells {
			if c.Row < 0 || c.Row >= g.Rows || c.Col < 0 || c.Col >= g.Cols {
				t.Errorf("%s: cell %v outside %v", tc.name, c, g)
			}
			if seen[c] {
				t.Errorf("%s: duplicate cell %v", tc.name, c)
			}
			seen[c] = true
		}
	}

	// The two checkerboard parities partition the fabric.
	a, _ := PatternCells("checkerboard:0", g)
	b, _ := PatternCells("checkerboard:1", g)
	if len(a)+len(b) != g.NumFUs() {
		t.Errorf("checkerboard parities cover %d cells, want %d", len(a)+len(b), g.NumFUs())
	}

	// The survivor row itself stays alive.
	surv, _ := PatternCells("survivor-row:1", g)
	for _, c := range surv {
		if c.Row == 1 {
			t.Errorf("survivor-row:1 kills survivor cell %v", c)
		}
	}

	for _, bad := range []string{"nope", "column:99", "columns", "columns:0+99", "survivor-row:7", "checkerboard:5"} {
		if _, err := PatternCells(bad, g); err == nil {
			t.Errorf("PatternCells(%q) succeeded, want error", bad)
		}
	}
}

// TestPatternCellsDegenerateGeometries pins the named patterns on the
// geometries where the "middle column", "quadrant" and "checkerboard"
// defaults are easiest to get wrong: single-row, single-column and minimal
// square fabrics. Every pattern must either resolve to in-range,
// duplicate-free cells or fail with a clean error — never panic, never
// emit a cell outside the fabric.
func TestPatternCellsDegenerateGeometries(t *testing.T) {
	geoms := []Geometry{NewGeometry(1, 4), NewGeometry(4, 1), NewGeometry(2, 2)}
	names := []string{
		"healthy", "none",
		"column", "column:0",
		"columns:0", "columns:0+0",
		"quadrant",
		"checkerboard", "checkerboard:1",
		"survivor-row", "survivor-row:0",
	}
	for _, g := range geoms {
		for _, name := range names {
			cells, err := PatternCells(name, g)
			if err != nil {
				// An error is acceptable on degenerate fabrics (e.g. an
				// index outside a 1-wide dimension) as long as it is
				// descriptive, not a panic.
				continue
			}
			seen := make(map[Cell]bool, len(cells))
			for _, c := range cells {
				if c.Row < 0 || c.Row >= g.Rows || c.Col < 0 || c.Col >= g.Cols {
					t.Errorf("%v / %s: cell %v outside fabric", g, name, c)
				}
				if seen[c] {
					t.Errorf("%v / %s: duplicate cell %v", g, name, c)
				}
				seen[c] = true
			}
		}
	}
}

// TestPatternCellsDedupRepeatedColumns pins the repeated-column case
// directly: columns:0+0 must collapse to one column's cells.
func TestPatternCellsDedupRepeatedColumns(t *testing.T) {
	g := NewGeometry(2, 4)
	cells, err := PatternCells("columns:0+0", g)
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != g.Rows {
		t.Fatalf("columns:0+0 yielded %d cells, want %d (one column, deduplicated)", len(cells), g.Rows)
	}
}
