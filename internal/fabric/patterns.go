package fabric

import (
	"fmt"
	"strconv"
	"strings"
)

// Clustered-failure patterns: the named dead-cell layouts the shape-adaptive
// remap evaluation injects. Real end-of-life failures correlate spatially —
// a shared power rail takes out a column, a hot corner takes out a quadrant
// — and clustered deaths are exactly what pivot translation alone cannot
// route around, so these patterns are the stress inputs for the remap
// allocator and the lifetime simulator's InitialDead injection.

// DeadColumnCells returns every cell of physical column col (both rows of
// the BE design, all W rows in general): the shared-column failure that
// blocks any configuration spanning the full fabric length.
func DeadColumnCells(g Geometry, col int) []Cell {
	out := make([]Cell, 0, g.Rows)
	for r := 0; r < g.Rows; r++ {
		out = append(out, Cell{Row: r, Col: col})
	}
	return out
}

// DeadColumnsCells returns the union of several dead columns.
func DeadColumnsCells(g Geometry, cols ...int) []Cell {
	var out []Cell
	for _, c := range cols {
		out = append(out, DeadColumnCells(g, c)...)
	}
	return out
}

// DeadQuadrantCells returns the top-left quadrant: rows [0, ceil(R/2)) ×
// columns [0, ceil(C/2)).
func DeadQuadrantCells(g Geometry) []Cell {
	rows := (g.Rows + 1) / 2
	cols := (g.Cols + 1) / 2
	out := make([]Cell, 0, rows*cols)
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			out = append(out, Cell{Row: r, Col: c})
		}
	}
	return out
}

// CheckerboardCells returns every cell whose row+column parity matches
// parity (0 or 1): the worst-case scattered cluster, leaving no two
// horizontally adjacent live cells, so no multi-column op can be placed
// anywhere.
func CheckerboardCells(g Geometry, parity int) []Cell {
	var out []Cell
	for r := 0; r < g.Rows; r++ {
		for c := 0; c < g.Cols; c++ {
			if (r+c)%2 == parity&1 {
				out = append(out, Cell{Row: r, Col: c})
			}
		}
	}
	return out
}

// SurvivorRowCells returns every cell outside row survivor: the whole
// fabric dead except one row, the extreme case where only a 1×L shape
// still fits.
func SurvivorRowCells(g Geometry, survivor int) []Cell {
	var out []Cell
	for r := 0; r < g.Rows; r++ {
		if r == survivor {
			continue
		}
		for c := 0; c < g.Cols; c++ {
			out = append(out, Cell{Row: r, Col: c})
		}
	}
	return out
}

// PatternCells resolves a named failure pattern for a geometry. Recognised
// names (an optional ":index" selects the column / parity / survivor row,
// defaulting to the fabric middle, parity 0 and row 0 respectively):
//
//	healthy | none            no dead cells
//	column[:c]               one dead column (default C/2)
//	columns:c1+c2+...        several dead columns
//	quadrant                 the top-left quadrant
//	checkerboard[:parity]    every cell of one checkerboard parity
//	survivor-row[:r]         everything except row r
func PatternCells(name string, g Geometry) ([]Cell, error) {
	base, arg, hasArg := strings.Cut(name, ":")
	idx := func(def, max int) (int, error) {
		if !hasArg {
			return def, nil
		}
		n, err := strconv.Atoi(arg)
		if err != nil || n < 0 || n >= max {
			return 0, fmt.Errorf("fabric: pattern %q: index must be in [0,%d)", name, max)
		}
		return n, nil
	}
	switch base {
	case "healthy", "none", "":
		return nil, nil
	case "column", "dead-column":
		c, err := idx(g.Cols/2, g.Cols)
		if err != nil {
			return nil, err
		}
		return DeadColumnCells(g, c), nil
	case "columns", "dead-columns":
		if !hasArg {
			return nil, fmt.Errorf("fabric: pattern %q needs columns, e.g. columns:0+8", name)
		}
		var cols []int
		for _, s := range strings.Split(arg, "+") {
			n, err := strconv.Atoi(s)
			if err != nil || n < 0 || n >= g.Cols {
				return nil, fmt.Errorf("fabric: pattern %q: column %q must be in [0,%d)", name, s, g.Cols)
			}
			cols = append(cols, n)
		}
		// A repeated column (columns:0+0) must not yield duplicate cells:
		// injecting the list into a health map would double-count deaths.
		return dedupCells(DeadColumnsCells(g, cols...)), nil
	case "quadrant", "dead-quadrant":
		return DeadQuadrantCells(g), nil
	case "checkerboard", "checker":
		p, err := idx(0, 2)
		if err != nil {
			return nil, err
		}
		return CheckerboardCells(g, p), nil
	case "survivor-row", "row-survivor":
		r, err := idx(0, g.Rows)
		if err != nil {
			return nil, err
		}
		return SurvivorRowCells(g, r), nil
	}
	return nil, fmt.Errorf("fabric: unknown failure pattern %q (want healthy, column[:c], columns:c1+c2, quadrant, checkerboard[:p], survivor-row[:r])", name)
}

// dedupCells drops repeated cells, preserving first-occurrence order.
func dedupCells(cells []Cell) []Cell {
	seen := make(map[Cell]bool, len(cells))
	out := cells[:0]
	for _, c := range cells {
		if seen[c] {
			continue
		}
		seen[c] = true
		out = append(out, c)
	}
	return out
}

// PatternNames lists the named failure patterns PatternCells accepts.
func PatternNames() []string {
	return []string{"healthy", "column", "columns:c1+c2", "quadrant", "checkerboard", "survivor-row"}
}
