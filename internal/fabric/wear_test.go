package fabric

import "testing"

func TestWearAccrualAndVersion(t *testing.T) {
	g := NewGeometry(2, 4)
	w := NewWear(g)
	if w.Version() != 0 {
		t.Fatalf("fresh wear version %d, want 0", w.Version())
	}
	for r := 0; r < g.Rows; r++ {
		for c := 0; c < g.Cols; c++ {
			if y := w.YearsAt(Cell{Row: r, Col: c}); y != 0 {
				t.Fatalf("fresh wear at (%d,%d) = %v, want 0", r, c, y)
			}
		}
	}

	if !w.Add(Cell{Row: 0, Col: 1}, 1.5) {
		t.Fatal("positive accrual rejected")
	}
	if w.Version() != 1 {
		t.Fatalf("version after one Add = %d, want 1", w.Version())
	}
	if got := w.YearsAt(Cell{Row: 0, Col: 1}); got != 1.5 {
		t.Fatalf("YearsAt = %v, want 1.5", got)
	}
	w.Add(Cell{Row: 0, Col: 1}, 0.5)
	if got := w.YearsAt(Cell{Row: 0, Col: 1}); got != 2.0 {
		t.Fatalf("accumulated YearsAt = %v, want 2.0", got)
	}

	// Zero/negative deltas and out-of-range cells leave state and version
	// untouched: memoizing callers rely on Version only moving on change.
	v := w.Version()
	if w.Add(Cell{Row: 0, Col: 0}, 0) || w.Add(Cell{Row: 1, Col: 2}, -1) ||
		w.Add(Cell{Row: 5, Col: 5}, 1) {
		t.Error("no-op accruals reported a change")
	}
	if w.Version() != v {
		t.Errorf("no-op accruals moved version %d -> %d", v, w.Version())
	}
	if w.YearsAt(Cell{Row: 9, Col: 9}) != 0 {
		t.Error("out-of-range cell reads nonzero wear")
	}

	w.Add(Cell{Row: 1, Col: 3}, 7)
	max, cell := w.Max()
	if max != 7 || cell != (Cell{Row: 1, Col: 3}) {
		t.Errorf("Max = %v at %v, want 7 at (1,3)", max, cell)
	}
}
