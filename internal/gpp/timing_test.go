package gpp

import (
	"testing"

	"agingcgra/internal/isa"
)

func TestCyclesForClasses(t *testing.T) {
	tm := DefaultTiming()
	cases := []struct {
		in    isa.Inst
		taken bool
		want  uint64
	}{
		{isa.Inst{Op: isa.ADD}, false, tm.ALU},
		{isa.Inst{Op: isa.MUL}, false, tm.Mul},
		{isa.Inst{Op: isa.DIV}, false, tm.Div},
		{isa.Inst{Op: isa.LW}, false, tm.Load},
		{isa.Inst{Op: isa.SW}, false, tm.Store},
		{isa.Inst{Op: isa.ECALL}, false, tm.ALU},
		// Backward branch taken: predicted correctly, pays redirect only.
		{isa.Inst{Op: isa.BNE, Imm: -8}, true, tm.ALU + tm.TakenRedirect},
		// Backward branch not taken: mispredicted.
		{isa.Inst{Op: isa.BNE, Imm: -8}, false, tm.ALU + tm.Mispredict},
		// Forward branch not taken: predicted correctly.
		{isa.Inst{Op: isa.BEQ, Imm: 8}, false, tm.ALU},
		// Forward branch taken: redirect + mispredict.
		{isa.Inst{Op: isa.BEQ, Imm: 8}, true, tm.ALU + tm.TakenRedirect + tm.Mispredict},
		// Jumps always pay the redirect.
		{isa.Inst{Op: isa.JAL, Imm: 16}, true, tm.ALU + tm.TakenRedirect},
		{isa.Inst{Op: isa.JALR}, true, tm.ALU + tm.TakenRedirect},
	}
	for _, c := range cases {
		if got := tm.CyclesFor(c.in, c.taken); got != c.want {
			t.Errorf("CyclesFor(%v, taken=%v) = %d, want %d", c.in, c.taken, got, c.want)
		}
	}
}

func TestPredictTaken(t *testing.T) {
	if !PredictTaken(isa.Inst{Op: isa.BNE, Imm: -4}) {
		t.Error("backward branch should predict taken")
	}
	if PredictTaken(isa.Inst{Op: isa.BNE, Imm: 4}) {
		t.Error("forward branch should predict not taken")
	}
}

func TestTimingMonotonicity(t *testing.T) {
	// A sanity property: divide is the slowest op, ALU the fastest.
	tm := DefaultTiming()
	if tm.Div <= tm.Mul || tm.Mul <= tm.ALU {
		t.Error("expected Div > Mul > ALU in the default calibration")
	}
	if tm.Load < tm.ALU {
		t.Error("loads should cost at least as much as ALU ops")
	}
}
