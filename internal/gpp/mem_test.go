package gpp

import (
	"testing"
	"testing/quick"
)

func TestMemoryWordRoundTrip(t *testing.T) {
	m := NewMemory(4096)
	f := func(addr uint16, v uint32) bool {
		a := uint32(addr) &^ 3 // aligned, in range
		if int(a)+4 > m.Size() {
			return true
		}
		if err := m.StoreWord(a, v); err != nil {
			return false
		}
		got, err := m.LoadWord(a)
		return err == nil && got == v
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMemoryLittleEndian(t *testing.T) {
	m := NewMemory(64)
	if err := m.StoreWord(0, 0x04030201); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		b, err := m.LoadByte(uint32(i))
		if err != nil {
			t.Fatal(err)
		}
		if b != byte(i+1) {
			t.Errorf("byte %d = %d, want %d", i, b, i+1)
		}
	}
	h, err := m.LoadHalf(2)
	if err != nil {
		t.Fatal(err)
	}
	if h != 0x0403 {
		t.Errorf("half at 2 = %#x, want 0x0403", h)
	}
}

func TestMemoryBounds(t *testing.T) {
	m := NewMemory(16)
	if _, err := m.LoadWord(13); err == nil {
		t.Error("load straddling end should fail")
	}
	if err := m.StoreWord(16, 1); err == nil {
		t.Error("store at size should fail")
	}
	if _, err := m.LoadByte(15); err != nil {
		t.Error("last byte should be accessible")
	}
	if err := m.WriteBytes(8, make([]byte, 9)); err == nil {
		t.Error("overlong WriteBytes should fail")
	}
	var ae *AccessError
	_, err := m.LoadWord(1 << 30)
	if !asAccessError(err, &ae) {
		t.Fatalf("error %T is not AccessError", err)
	}
	if ae.Addr != 1<<30 || ae.Op != "load" {
		t.Errorf("AccessError fields = %+v", ae)
	}
}

func TestWordsHelpers(t *testing.T) {
	m := NewMemory(1024)
	in := []uint32{1, 2, 3, 0xdeadbeef}
	if err := m.WriteWords(100, in); err != nil {
		t.Fatal(err)
	}
	out, err := m.ReadWords(100, len(in))
	if err != nil {
		t.Fatal(err)
	}
	for i := range in {
		if out[i] != in[i] {
			t.Errorf("word %d = %#x, want %#x", i, out[i], in[i])
		}
	}
	buf, err := m.ReadBytes(100, 4)
	if err != nil {
		t.Fatal(err)
	}
	if buf[0] != 1 || buf[3] != 0 {
		t.Errorf("ReadBytes = %v", buf)
	}
}
