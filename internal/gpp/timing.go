package gpp

import "agingcgra/internal/isa"

// Timing is the cycle model of the single-issue in-order GPP. It mirrors the
// role of gem5's TimingSimple CPU in the paper: a base cost per instruction
// class, a fetch-redirect bubble for taken control transfers, and a penalty
// for mispredicted conditional branches under a static backward-taken /
// forward-not-taken (BTFN) predictor. Data caches are assumed to hit; the
// MiBench "small" working sets the paper uses fit comfortably in L1.
type Timing struct {
	ALU   uint64 // cycles for simple integer ops
	Mul   uint64 // cycles for multiply-class ops
	Div   uint64 // cycles for divide/remainder ops
	Load  uint64 // cycles for loads (cache hit)
	Store uint64 // cycles for stores (cache hit, write buffer)

	// TakenRedirect is the fetch bubble paid by every taken control
	// transfer (branch or jump), even when correctly predicted: the core
	// has no BTB, so the new fetch address is known only at decode.
	TakenRedirect uint64
	// Mispredict is the additional penalty when a conditional branch
	// resolves against the BTFN prediction.
	Mispredict uint64
}

// DefaultTiming returns the calibration used throughout the reproduction.
// It mirrors gem5's TimingSimple single-issue core on a small embedded
// memory hierarchy: L1 hits still cost several cycles on the timing path,
// and taken control transfers pay a two-cycle fetch redirect since the
// front end has no BTB.
func DefaultTiming() Timing {
	return Timing{
		ALU:           1,
		Mul:           4,
		Div:           16,
		Load:          4,
		Store:         1,
		TakenRedirect: 2,
		Mispredict:    3,
	}
}

// PredictTaken is the static BTFN prediction for a conditional branch:
// backward branches (negative offset) are predicted taken.
func PredictTaken(in isa.Inst) bool { return in.Imm < 0 }

// CyclesFor returns the cycle cost of one retired instruction. taken is
// meaningful only for control transfers.
func (t Timing) CyclesFor(in isa.Inst, taken bool) uint64 {
	switch in.Op.Class() {
	case isa.ClassALU:
		return t.ALU
	case isa.ClassMul:
		return t.Mul
	case isa.ClassDiv:
		return t.Div
	case isa.ClassLoad:
		return t.Load
	case isa.ClassStore:
		return t.Store
	case isa.ClassBranch:
		c := t.ALU
		if taken {
			c += t.TakenRedirect
		}
		if taken != PredictTaken(in) {
			c += t.Mispredict
		}
		return c
	case isa.ClassJump:
		return t.ALU + t.TakenRedirect
	case isa.ClassSys:
		return t.ALU
	}
	return t.ALU
}
