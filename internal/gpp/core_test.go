package gpp

import (
	"strings"
	"testing"

	"agingcgra/internal/isa"
)

func run(t *testing.T, src string) *Core {
	t.Helper()
	p, err := isa.Assemble(src, isa.AsmOptions{TextBase: TextBase})
	if err != nil {
		t.Fatalf("assemble: %v", err)
	}
	c := New(p)
	if _, err := c.Run(1_000_000, nil); err != nil {
		t.Fatalf("run: %v", err)
	}
	return c
}

func TestArithmetic(t *testing.T) {
	c := run(t, `
		li a0, 7
		li a1, 5
		add  t0, a0, a1
		sub  t1, a0, a1
		xor  t2, a0, a1
		or   t3, a0, a1
		and  t4, a0, a1
		sll  t5, a0, a1
		ecall
	`)
	want := map[isa.Reg]uint32{
		isa.T0: 12, isa.T1: 2, isa.T2: 2, isa.T3: 7, isa.T4: 5, isa.T5: 7 << 5,
	}
	for r, v := range want {
		if c.Regs[r] != v {
			t.Errorf("%v = %d, want %d", r, c.Regs[r], v)
		}
	}
}

func TestSignedComparisons(t *testing.T) {
	c := run(t, `
		li a0, -3
		li a1, 2
		slt  t0, a0, a1
		sltu t1, a0, a1
		slti t2, a0, 0
		sltiu t3, a1, 10
		sra  t4, a0, a1
		srl  t5, a0, a1
		ecall
	`)
	if c.Regs[isa.T0] != 1 {
		t.Errorf("slt -3<2 = %d, want 1", c.Regs[isa.T0])
	}
	if c.Regs[isa.T1] != 0 {
		t.Errorf("sltu 0xfffffffd<2 = %d, want 0", c.Regs[isa.T1])
	}
	if c.Regs[isa.T2] != 1 || c.Regs[isa.T3] != 1 {
		t.Errorf("slti/sltiu = %d/%d, want 1/1", c.Regs[isa.T2], c.Regs[isa.T3])
	}
	if int32(c.Regs[isa.T4]) != -1 {
		t.Errorf("sra -3>>2 = %d, want -1", int32(c.Regs[isa.T4]))
	}
	if c.Regs[isa.T5] != 0x3fffffff {
		t.Errorf("srl = %#x, want 0x3fffffff", c.Regs[isa.T5])
	}
}

func TestMultiplyDivide(t *testing.T) {
	c := run(t, `
		li a0, -7
		li a1, 3
		mul   t0, a0, a1
		mulh  t1, a0, a1
		mulhu t2, a0, a1
		div   t3, a0, a1
		rem   t4, a0, a1
		divu  t5, a0, a1
		ecall
	`)
	if int32(c.Regs[isa.T0]) != -21 {
		t.Errorf("mul = %d, want -21", int32(c.Regs[isa.T0]))
	}
	if int32(c.Regs[isa.T1]) != -1 {
		t.Errorf("mulh = %d, want -1 (high bits of -21)", int32(c.Regs[isa.T1]))
	}
	// mulhu: 0xfffffff9 * 3 = 0x2_fffffeb -> high word 2.
	if c.Regs[isa.T2] != 2 {
		t.Errorf("mulhu = %d, want 2", c.Regs[isa.T2])
	}
	if int32(c.Regs[isa.T3]) != -2 || int32(c.Regs[isa.T4]) != -1 {
		t.Errorf("div/rem = %d/%d, want -2/-1", int32(c.Regs[isa.T3]), int32(c.Regs[isa.T4]))
	}
	if c.Regs[isa.T5] != 0xfffffff9/3 {
		t.Errorf("divu = %d, want %d", c.Regs[isa.T5], uint32(0xfffffff9)/3)
	}
}

func TestDivideEdgeCases(t *testing.T) {
	c := run(t, `
		li a0, 5
		li a1, 0
		div  t0, a0, a1
		divu t1, a0, a1
		rem  t2, a0, a1
		remu t3, a0, a1
		li a2, -2147483648
		li a3, -1
		div  t4, a2, a3
		rem  t5, a2, a3
		ecall
	`)
	if c.Regs[isa.T0] != ^uint32(0) || c.Regs[isa.T1] != ^uint32(0) {
		t.Errorf("div by zero = %#x/%#x, want all-ones", c.Regs[isa.T0], c.Regs[isa.T1])
	}
	if c.Regs[isa.T2] != 5 || c.Regs[isa.T3] != 5 {
		t.Errorf("rem by zero = %d/%d, want 5/5", c.Regs[isa.T2], c.Regs[isa.T3])
	}
	if c.Regs[isa.T4] != 1<<31 {
		t.Errorf("overflow div = %#x, want 0x80000000", c.Regs[isa.T4])
	}
	if c.Regs[isa.T5] != 0 {
		t.Errorf("overflow rem = %d, want 0", c.Regs[isa.T5])
	}
}

func TestLoadsStores(t *testing.T) {
	c := run(t, `
		li   t0, 0x10000
		li   t1, 0x89abcdef
		sw   t1, 0(t0)
		lw   t2, 0(t0)
		lh   t3, 0(t0)
		lhu  t4, 0(t0)
		lb   t5, 3(t0)
		lbu  t6, 3(t0)
		sb   t1, 8(t0)
		lbu  s0, 8(t0)
		sh   t1, 12(t0)
		lhu  s1, 12(t0)
		ecall
	`)
	lowHalf := uint16(0xcdef)
	topByte := uint8(0x89)
	if c.Regs[isa.T2] != 0x89abcdef {
		t.Errorf("lw = %#x", c.Regs[isa.T2])
	}
	if int32(c.Regs[isa.T3]) != int32(int16(lowHalf)) {
		t.Errorf("lh = %#x", c.Regs[isa.T3])
	}
	if c.Regs[isa.T4] != 0xcdef {
		t.Errorf("lhu = %#x", c.Regs[isa.T4])
	}
	if int32(c.Regs[isa.T5]) != int32(int8(topByte)) {
		t.Errorf("lb = %#x", c.Regs[isa.T5])
	}
	if c.Regs[isa.T6] != 0x89 {
		t.Errorf("lbu = %#x", c.Regs[isa.T6])
	}
	if c.Regs[isa.S0] != 0xef {
		t.Errorf("sb/lbu = %#x", c.Regs[isa.S0])
	}
	if c.Regs[isa.S1] != 0xcdef {
		t.Errorf("sh/lhu = %#x", c.Regs[isa.S1])
	}
}

func TestLoopAndBranches(t *testing.T) {
	// Sum 1..100 = 5050.
	c := run(t, `
		li t0, 0
		li t1, 1
		li t2, 100
	loop:
		add t0, t0, t1
		addi t1, t1, 1
		ble t1, t2, loop
		mv a0, t0
		ecall
	`)
	if c.Regs[isa.A0] != 5050 {
		t.Errorf("sum = %d, want 5050", c.Regs[isa.A0])
	}
}

func TestCallReturn(t *testing.T) {
	c := run(t, `
	_start:
		li   a0, 20
		call double
		call double
		ecall
	double:
		add a0, a0, a0
		ret
	`)
	if c.Regs[isa.A0] != 80 {
		t.Errorf("a0 = %d, want 80", c.Regs[isa.A0])
	}
}

func TestStackUse(t *testing.T) {
	c := run(t, `
		addi sp, sp, -16
		li   t0, 42
		sw   t0, 0(sp)
		sw   zero, 4(sp)
		lw   t1, 0(sp)
		addi sp, sp, 16
		mv   a0, t1
		ecall
	`)
	if c.Regs[isa.A0] != 42 {
		t.Errorf("a0 = %d, want 42", c.Regs[isa.A0])
	}
	if c.Regs[isa.SP] != StackTop {
		t.Errorf("sp = %#x, want %#x", c.Regs[isa.SP], uint32(StackTop))
	}
}

func TestLuiAuipc(t *testing.T) {
	c := run(t, `
		lui   t0, 0x12345
		auipc t1, 0
		ecall
	`)
	if c.Regs[isa.T0] != 0x12345000 {
		t.Errorf("lui = %#x", c.Regs[isa.T0])
	}
	if c.Regs[isa.T1] != TextBase+4 {
		t.Errorf("auipc = %#x, want %#x", c.Regs[isa.T1], uint32(TextBase+4))
	}
}

func TestX0IsZero(t *testing.T) {
	c := run(t, `
		li  t0, 99
		add zero, t0, t0
		mv  a0, zero
		ecall
	`)
	if c.Regs[isa.A0] != 0 || c.Regs[isa.X0] != 0 {
		t.Error("x0 was written")
	}
}

func TestHaltState(t *testing.T) {
	c := run(t, "ecall")
	if !c.Halted() {
		t.Fatal("core not halted after ecall")
	}
	if _, err := c.Step(); err == nil {
		t.Fatal("Step after halt should fail")
	}
}

func TestRunLimit(t *testing.T) {
	p, err := isa.Assemble("loop: j loop", isa.AsmOptions{TextBase: TextBase})
	if err != nil {
		t.Fatal(err)
	}
	c := New(p)
	n, err := c.Run(1000, nil)
	if err == nil || !strings.Contains(err.Error(), "limit") {
		t.Fatalf("want limit error, got n=%d err=%v", n, err)
	}
	if n != 1000 {
		t.Errorf("retired %d, want 1000", n)
	}
}

func TestReset(t *testing.T) {
	c := run(t, `
		li a0, 1
		ecall
	`)
	c.Reset()
	if c.Halted() || c.PC != c.Program().Entry || c.Regs[isa.A0] != 0 {
		t.Error("Reset did not restore initial state")
	}
	if c.Regs[isa.SP] != StackTop {
		t.Error("Reset did not restore sp")
	}
	if _, err := c.Run(100, nil); err != nil {
		t.Fatalf("re-run after reset: %v", err)
	}
	if c.Regs[isa.A0] != 1 {
		t.Error("re-run produced wrong result")
	}
}

func TestRetireStream(t *testing.T) {
	p, err := isa.Assemble(`
		li t0, 3
	loop:
		addi t0, t0, -1
		bnez t0, loop
		ecall
	`, isa.AsmOptions{TextBase: TextBase})
	if err != nil {
		t.Fatal(err)
	}
	c := New(p)
	var pcs []uint32
	var takens []bool
	if _, err := c.Run(100, func(r Retire) {
		pcs = append(pcs, r.PC)
		takens = append(takens, r.Taken)
	}); err != nil {
		t.Fatal(err)
	}
	// li, then 3 iterations of (addi, bnez), then ecall = 8 retirements.
	if len(pcs) != 8 {
		t.Fatalf("retired %d instructions, want 8", len(pcs))
	}
	// The bnez is taken twice, then falls through.
	if !takens[2] || !takens[4] || takens[6] {
		t.Errorf("branch taken pattern = %v", takens)
	}
}

func TestMemoryFault(t *testing.T) {
	p, err := isa.Assemble(`
		li t0, 0x7fffffff
		lw t1, 0(t0)
		ecall
	`, isa.AsmOptions{TextBase: TextBase})
	if err != nil {
		t.Fatal(err)
	}
	c := New(p)
	_, err = c.Run(100, nil)
	if err == nil {
		t.Fatal("expected access fault")
	}
	var ae *AccessError
	if !asAccessError(err, &ae) {
		t.Fatalf("error %T is not AccessError", err)
	}
}

func asAccessError(err error, target **AccessError) bool {
	ae, ok := err.(*AccessError)
	if ok {
		*target = ae
	}
	return ok
}

func TestJALRClearsLowBit(t *testing.T) {
	c := run(t, `
		la   t0, target+1
		jalr ra, 0(t0)
		ecall
	target:
		li a0, 7
		ecall
	`)
	if c.Regs[isa.A0] != 7 {
		t.Errorf("a0 = %d, want 7 (jalr should clear bit 0)", c.Regs[isa.A0])
	}
}

// TestRunExpectedGuidedReplay exercises the replay primitive: full
// sequences, PC divergence, and branch-direction divergence.
func TestRunExpectedGuidedReplay(t *testing.T) {
	p, err := isa.Assemble(`
_start:
	li   t0, 1
	li   t1, 2
	add  t2, t0, t1
	beq  t0, t1, skip
	add  t3, t2, t0
skip:
	ecall
`, isa.AsmOptions{TextBase: TextBase})
	if err != nil {
		t.Fatalf("assemble: %v", err)
	}

	pcAt := func(i int) uint32 { return p.AddrOf(i) }

	// Full straight-line replay: four ops, branch not taken as expected.
	c := New(p)
	pcs := []uint32{pcAt(0), pcAt(1), pcAt(2), pcAt(3)}
	dirs := []int8{-1, -1, -1, 0}
	n, early, err := c.RunExpected(pcs, dirs)
	if err != nil || n != 4 || early {
		t.Fatalf("straight-line replay: n=%d early=%v err=%v", n, early, err)
	}
	if c.Regs[isa.T2] != 3 {
		t.Errorf("t2 = %d, want 3", c.Regs[isa.T2])
	}

	// Branch-direction divergence: expect taken, observe not-taken. The
	// branch executes (counted) and the replay reports an early exit.
	c = New(p)
	dirs = []int8{-1, -1, -1, 1}
	n, early, err = c.RunExpected(pcs, dirs)
	if err != nil || n != 4 || !early {
		t.Fatalf("diverging branch: n=%d early=%v err=%v", n, early, err)
	}

	// PC divergence: the sequence expects an op the control flow never
	// reaches; nothing past the divergence executes.
	c = New(p)
	pcs = []uint32{pcAt(0), pcAt(2)}
	dirs = []int8{-1, -1}
	n, early, err = c.RunExpected(pcs, dirs)
	if err != nil || n != 1 || !early {
		t.Fatalf("pc divergence: n=%d early=%v err=%v", n, early, err)
	}
	if c.RetiredCount() != 1 {
		t.Errorf("retired = %d, want 1", c.RetiredCount())
	}
}

// TestRunTracksIndexAcrossJumps asserts the incremental index tracking in
// Run survives taken branches, jumps and returns.
func TestRunTracksIndexAcrossJumps(t *testing.T) {
	c := run(t, `
_start:
	li   a0, 0
	li   t0, 3
loop:
	addi a0, a0, 5
	addi t0, t0, -1
	bne  t0, zero, loop
	jal  ra, sub
	j    done
sub:
	addi a0, a0, 100
	jalr zero, ra, 0
done:
	ecall
`)
	if c.Regs[isa.A0] != 115 {
		t.Errorf("a0 = %d, want 115", c.Regs[isa.A0])
	}
}
