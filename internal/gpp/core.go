package gpp

import (
	"fmt"

	"agingcgra/internal/isa"
)

// Core is a functional RV32IM interpreter. It is deliberately free of any
// timing or acceleration concerns: the TransRec engine layers performance
// and stress accounting on top of the retired-instruction stream, so the
// architectural state here is always the ground truth regardless of whether
// a sequence is attributed to the GPP or to the CGRA.
type Core struct {
	Regs [isa.NumRegs]uint32
	PC   uint32
	Mem  *Memory

	prog    *isa.Program
	halted  bool
	retired uint64
}

// Retire describes one retired instruction.
type Retire struct {
	// PC is the address the instruction executed at.
	PC uint32
	// Index is the text-segment index of the instruction.
	Index int
	// Inst is the instruction itself.
	Inst isa.Inst
	// NextPC is the address of the next instruction to execute.
	NextPC uint32
	// Taken reports, for conditional branches, whether the branch was taken.
	Taken bool
}

// New builds a core with the program loaded, PC at the entry point and the
// stack pointer initialised below the top of memory.
func New(p *isa.Program) *Core {
	c := &Core{
		Mem:  NewMemory(MemSize),
		prog: p,
		PC:   p.Entry,
	}
	c.Regs[isa.SP] = StackTop
	return c
}

// Program returns the loaded program.
func (c *Core) Program() *isa.Program { return c.prog }

// Release returns the core's memory to the pool once the caller is done
// with the architectural state. The core must not be used afterwards.
func (c *Core) Release() {
	if c.Mem != nil {
		c.Mem.Release()
		c.Mem = nil
	}
}

// Halted reports whether the core has executed ecall.
func (c *Core) Halted() bool { return c.halted }

// RetiredCount returns the number of instructions retired so far.
func (c *Core) RetiredCount() uint64 { return c.retired }

// Reset rewinds architectural state to the program entry, preserving memory
// contents (so input data written by the harness survives).
func (c *Core) Reset() {
	c.Regs = [isa.NumRegs]uint32{}
	c.Regs[isa.SP] = StackTop
	c.PC = c.prog.Entry
	c.halted = false
	c.retired = 0
}

// Step executes exactly one instruction and reports what retired.
func (c *Core) Step() (Retire, error) {
	if c.halted {
		return Retire{}, fmt.Errorf("gpp: step after halt at pc %#x", c.PC)
	}
	idx := c.prog.IndexOf(c.PC)
	if idx < 0 {
		return Retire{}, fmt.Errorf("gpp: pc %#x outside text segment", c.PC)
	}
	return c.stepIdx(idx)
}

// stepIdx executes the instruction at text index idx (which must equal
// IndexOf(c.PC)); Run tracks the index incrementally across sequential
// retirements so the common fall-through case skips the address decode.
func (c *Core) stepIdx(idx int) (Retire, error) {
	in := c.prog.Text[idx]
	ret := Retire{PC: c.PC, Index: idx, Inst: in}

	nextPC := c.PC + 4
	rs1 := c.Regs[in.Rs1]
	rs2 := c.Regs[in.Rs2]
	var rd uint32
	writeRd := true

	switch in.Op {
	case isa.ADD:
		rd = rs1 + rs2
	case isa.SUB:
		rd = rs1 - rs2
	case isa.SLL:
		rd = rs1 << (rs2 & 31)
	case isa.SLT:
		if int32(rs1) < int32(rs2) {
			rd = 1
		}
	case isa.SLTU:
		if rs1 < rs2 {
			rd = 1
		}
	case isa.XOR:
		rd = rs1 ^ rs2
	case isa.SRL:
		rd = rs1 >> (rs2 & 31)
	case isa.SRA:
		rd = uint32(int32(rs1) >> (rs2 & 31))
	case isa.OR:
		rd = rs1 | rs2
	case isa.AND:
		rd = rs1 & rs2

	case isa.MUL:
		rd = rs1 * rs2
	case isa.MULH:
		rd = uint32(uint64(int64(int32(rs1))*int64(int32(rs2))) >> 32)
	case isa.MULHSU:
		rd = uint32(uint64(int64(int32(rs1))*int64(uint64(rs2))) >> 32)
	case isa.MULHU:
		rd = uint32(uint64(rs1) * uint64(rs2) >> 32)
	case isa.DIV:
		switch {
		case rs2 == 0:
			rd = ^uint32(0)
		case int32(rs1) == -1<<31 && int32(rs2) == -1:
			rd = rs1
		default:
			rd = uint32(int32(rs1) / int32(rs2))
		}
	case isa.DIVU:
		if rs2 == 0 {
			rd = ^uint32(0)
		} else {
			rd = rs1 / rs2
		}
	case isa.REM:
		switch {
		case rs2 == 0:
			rd = rs1
		case int32(rs1) == -1<<31 && int32(rs2) == -1:
			rd = 0
		default:
			rd = uint32(int32(rs1) % int32(rs2))
		}
	case isa.REMU:
		if rs2 == 0 {
			rd = rs1
		} else {
			rd = rs1 % rs2
		}

	case isa.ADDI:
		rd = rs1 + uint32(in.Imm)
	case isa.SLTI:
		if int32(rs1) < in.Imm {
			rd = 1
		}
	case isa.SLTIU:
		if rs1 < uint32(in.Imm) {
			rd = 1
		}
	case isa.XORI:
		rd = rs1 ^ uint32(in.Imm)
	case isa.ORI:
		rd = rs1 | uint32(in.Imm)
	case isa.ANDI:
		rd = rs1 & uint32(in.Imm)
	case isa.SLLI:
		rd = rs1 << (uint32(in.Imm) & 31)
	case isa.SRLI:
		rd = rs1 >> (uint32(in.Imm) & 31)
	case isa.SRAI:
		rd = uint32(int32(rs1) >> (uint32(in.Imm) & 31))

	case isa.LUI:
		rd = uint32(in.Imm) << 12
	case isa.AUIPC:
		rd = c.PC + uint32(in.Imm)<<12

	case isa.LB:
		b, err := c.Mem.LoadByte(rs1 + uint32(in.Imm))
		if err != nil {
			return ret, err
		}
		rd = uint32(int32(int8(b)))
	case isa.LH:
		h, err := c.Mem.LoadHalf(rs1 + uint32(in.Imm))
		if err != nil {
			return ret, err
		}
		rd = uint32(int32(int16(h)))
	case isa.LW:
		w, err := c.Mem.LoadWord(rs1 + uint32(in.Imm))
		if err != nil {
			return ret, err
		}
		rd = w
	case isa.LBU:
		b, err := c.Mem.LoadByte(rs1 + uint32(in.Imm))
		if err != nil {
			return ret, err
		}
		rd = uint32(b)
	case isa.LHU:
		h, err := c.Mem.LoadHalf(rs1 + uint32(in.Imm))
		if err != nil {
			return ret, err
		}
		rd = uint32(h)

	case isa.SB:
		if err := c.Mem.StoreByte(rs1+uint32(in.Imm), byte(rs2)); err != nil {
			return ret, err
		}
		writeRd = false
	case isa.SH:
		if err := c.Mem.StoreHalf(rs1+uint32(in.Imm), uint16(rs2)); err != nil {
			return ret, err
		}
		writeRd = false
	case isa.SW:
		if err := c.Mem.StoreWord(rs1+uint32(in.Imm), rs2); err != nil {
			return ret, err
		}
		writeRd = false

	case isa.BEQ:
		writeRd = false
		if rs1 == rs2 {
			nextPC = c.PC + uint32(in.Imm)
			ret.Taken = true
		}
	case isa.BNE:
		writeRd = false
		if rs1 != rs2 {
			nextPC = c.PC + uint32(in.Imm)
			ret.Taken = true
		}
	case isa.BLT:
		writeRd = false
		if int32(rs1) < int32(rs2) {
			nextPC = c.PC + uint32(in.Imm)
			ret.Taken = true
		}
	case isa.BGE:
		writeRd = false
		if int32(rs1) >= int32(rs2) {
			nextPC = c.PC + uint32(in.Imm)
			ret.Taken = true
		}
	case isa.BLTU:
		writeRd = false
		if rs1 < rs2 {
			nextPC = c.PC + uint32(in.Imm)
			ret.Taken = true
		}
	case isa.BGEU:
		writeRd = false
		if rs1 >= rs2 {
			nextPC = c.PC + uint32(in.Imm)
			ret.Taken = true
		}

	case isa.JAL:
		rd = c.PC + 4
		nextPC = c.PC + uint32(in.Imm)
		ret.Taken = true
	case isa.JALR:
		rd = c.PC + 4
		nextPC = (rs1 + uint32(in.Imm)) &^ 1
		ret.Taken = true

	case isa.ECALL:
		writeRd = false
		c.halted = true
		nextPC = c.PC

	default:
		return ret, fmt.Errorf("gpp: unimplemented op %v at pc %#x", in.Op, c.PC)
	}

	if writeRd && in.Rd != isa.X0 {
		c.Regs[in.Rd] = rd
	}
	c.PC = nextPC
	ret.NextPC = nextPC
	c.retired++
	return ret, nil
}

// RunExpected replays a translated instruction sequence: it executes while
// the PC follows pcs, stopping before the first op whose address diverges
// from the actual control flow and after the first branch whose observed
// direction differs from dirs (-1 marks non-branches, otherwise 0/1 is the
// expected not-taken/taken outcome). It returns the number of instructions
// executed and whether the replay exited the sequence early. This is the
// inner loop of configuration replay, with the text index tracked
// incrementally exactly like Run.
func (c *Core) RunExpected(pcs []uint32, dirs []int8) (n int, early bool, err error) {
	idx := -1
	textLen := len(c.prog.Text)
	for n < len(pcs) {
		if c.PC != pcs[n] {
			return n, true, nil
		}
		if c.halted {
			return n, true, fmt.Errorf("gpp: step after halt at pc %#x", c.PC)
		}
		if idx < 0 {
			if idx = c.prog.IndexOf(c.PC); idx < 0 {
				return n, true, fmt.Errorf("gpp: pc %#x outside text segment", c.PC)
			}
		}
		r, err := c.stepIdx(idx)
		if err != nil {
			return n, true, err
		}
		n++
		if d := dirs[n-1]; d >= 0 && r.Taken != (d == 1) {
			return n, true, nil
		}
		if r.NextPC == r.PC+4 && idx+1 < textLen {
			idx++
		} else {
			idx = -1
		}
	}
	return n, false, nil
}

// Run executes until halt or until limit instructions have retired, invoking
// hook (if non-nil) for every retirement. It returns the number of
// instructions retired by this call.
//
// The loop tracks the text index incrementally: a fall-through retirement
// advances it by one instead of re-deriving it from the PC, so only taken
// control transfers pay for IndexOf.
func (c *Core) Run(limit uint64, hook func(Retire)) (uint64, error) {
	var n uint64
	textLen := len(c.prog.Text)
	idx := c.prog.IndexOf(c.PC)
	for !c.halted && n < limit {
		if idx < 0 || idx >= textLen {
			return n, fmt.Errorf("gpp: pc %#x outside text segment", c.PC)
		}
		r, err := c.stepIdx(idx)
		if err != nil {
			return n, err
		}
		n++
		if r.NextPC == r.PC+4 {
			idx++
		} else {
			idx = c.prog.IndexOf(r.NextPC)
		}
		if hook != nil {
			hook(r)
		}
	}
	if !c.halted && n >= limit {
		return n, fmt.Errorf("gpp: instruction limit %d reached at pc %#x", limit, c.PC)
	}
	return n, nil
}
