// Package gpp models the general-purpose processor of the TransRec system:
// a single-issue, in-order RV32IM core with a flat memory and a simple,
// deterministic timing model. It plays the role gem5's TimingSimple CPU
// plays in the paper's evaluation: it executes the benchmark functionally
// and provides the retired-instruction stream that feeds the DBT module.
package gpp

import (
	"encoding/binary"
	"fmt"
	"math/bits"
	"sync"
)

// Default memory layout. Text sits low, static data in the middle, the stack
// grows down from the top.
const (
	TextBase  = 0x1000
	DataBase  = 0x10000
	MemSize   = 1 << 21 // 2 MiB
	StackTop  = MemSize - 16
	WordBytes = 4
)

// Memory is a flat little-endian byte-addressable memory.
//
// Every mutation marks its 4 KiB page in a dirty bitmap, which is what
// makes the Release/NewMemory pool cheap: a recycled memory only zeroes
// the pages its previous life touched (program text, static data, the few
// stack pages a kernel uses) instead of the whole image. A lifetime
// simulation builds one core per benchmark per epoch, so without the pool
// the 2 MiB zeroing dominated the epoch loop's allocation cost.
type Memory struct {
	data  []byte
	dirty []uint64 // 1 bit per 4 KiB page
}

const (
	pageShift = 12 // 4 KiB dirty-tracking granularity
	pageBytes = 1 << pageShift
)

// memPool recycles full-sized (MemSize) memories, the only size the
// simulator allocates in steady state. Odd-sized memories (tests) are
// allocated fresh.
var memPool = sync.Pool{}

// NewMemory returns a zeroed memory of the given size in bytes, recycling
// a released one when available: a pooled memory has only its previously
// dirtied pages zeroed, which is byte-for-byte identical to a fresh
// allocation because clean pages were never written.
func NewMemory(size int) *Memory {
	if size == MemSize {
		if v := memPool.Get(); v != nil {
			m := v.(*Memory)
			m.scrub()
			return m
		}
	}
	pages := (size + pageBytes - 1) / pageBytes
	return &Memory{
		data:  make([]byte, size),
		dirty: make([]uint64, (pages+63)/64),
	}
}

// Release returns the memory to the pool. The caller must not touch it
// afterwards; the next NewMemory of the same size may hand it out again.
func (m *Memory) Release() {
	if len(m.data) == MemSize {
		memPool.Put(m)
	}
}

// scrub zeroes every dirty page and clears the bitmap, restoring the
// all-zero state of a fresh allocation.
func (m *Memory) scrub() {
	for w, set := range m.dirty {
		for set != 0 {
			page := w*64 + bits.TrailingZeros64(set)
			lo := page << pageShift
			hi := lo + pageBytes
			if hi > len(m.data) {
				hi = len(m.data)
			}
			clear(m.data[lo:hi])
			set &= set - 1
		}
		m.dirty[w] = 0
	}
}

// mark flags the page containing addr as dirty; the store paths call it
// for the first and last byte of every write.
func (m *Memory) mark(addr uint32) {
	p := addr >> pageShift
	m.dirty[p>>6] |= 1 << (p & 63)
}

// Size returns the memory size in bytes.
func (m *Memory) Size() int { return len(m.data) }

// AccessError describes an out-of-bounds memory access.
type AccessError struct {
	Addr uint32
	Size int
	Op   string
}

func (e *AccessError) Error() string {
	return fmt.Sprintf("gpp: %s of %d bytes at %#x out of bounds", e.Op, e.Size, e.Addr)
}

func (m *Memory) check(addr uint32, size int, op string) error {
	if int64(addr)+int64(size) > int64(len(m.data)) {
		return &AccessError{Addr: addr, Size: size, Op: op}
	}
	return nil
}

// LoadWord reads a 32-bit little-endian word.
func (m *Memory) LoadWord(addr uint32) (uint32, error) {
	if err := m.check(addr, 4, "load"); err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint32(m.data[addr:]), nil
}

// LoadHalf reads a 16-bit little-endian halfword.
func (m *Memory) LoadHalf(addr uint32) (uint16, error) {
	if err := m.check(addr, 2, "load"); err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint16(m.data[addr:]), nil
}

// LoadByte reads one byte.
func (m *Memory) LoadByte(addr uint32) (byte, error) {
	if err := m.check(addr, 1, "load"); err != nil {
		return 0, err
	}
	return m.data[addr], nil
}

// StoreWord writes a 32-bit little-endian word.
func (m *Memory) StoreWord(addr uint32, v uint32) error {
	if err := m.check(addr, 4, "store"); err != nil {
		return err
	}
	m.mark(addr)
	m.mark(addr + 3)
	binary.LittleEndian.PutUint32(m.data[addr:], v)
	return nil
}

// StoreHalf writes a 16-bit little-endian halfword.
func (m *Memory) StoreHalf(addr uint32, v uint16) error {
	if err := m.check(addr, 2, "store"); err != nil {
		return err
	}
	m.mark(addr)
	m.mark(addr + 1)
	binary.LittleEndian.PutUint16(m.data[addr:], v)
	return nil
}

// StoreByte writes one byte.
func (m *Memory) StoreByte(addr uint32, v byte) error {
	if err := m.check(addr, 1, "store"); err != nil {
		return err
	}
	m.mark(addr)
	m.data[addr] = v
	return nil
}

// WriteBytes copies buf into memory at addr.
func (m *Memory) WriteBytes(addr uint32, buf []byte) error {
	if err := m.check(addr, len(buf), "store"); err != nil {
		return err
	}
	if len(buf) > 0 {
		for p := addr >> pageShift; p <= (addr+uint32(len(buf))-1)>>pageShift; p++ {
			m.dirty[p>>6] |= 1 << (p & 63)
		}
	}
	copy(m.data[addr:], buf)
	return nil
}

// ReadBytes copies n bytes starting at addr into a fresh slice.
func (m *Memory) ReadBytes(addr uint32, n int) ([]byte, error) {
	if err := m.check(addr, n, "load"); err != nil {
		return nil, err
	}
	out := make([]byte, n)
	copy(out, m.data[addr:])
	return out, nil
}

// WriteWords writes a word slice starting at addr.
func (m *Memory) WriteWords(addr uint32, words []uint32) error {
	if err := m.check(addr, len(words)*4, "store"); err != nil {
		return err
	}
	if len(words) > 0 {
		for p := addr >> pageShift; p <= (addr+uint32(len(words)*4)-1)>>pageShift; p++ {
			m.dirty[p>>6] |= 1 << (p & 63)
		}
	}
	for i, w := range words {
		binary.LittleEndian.PutUint32(m.data[addr+uint32(i)*4:], w)
	}
	return nil
}

// ReadWords reads n words starting at addr.
func (m *Memory) ReadWords(addr uint32, n int) ([]uint32, error) {
	if err := m.check(addr, n*4, "load"); err != nil {
		return nil, err
	}
	out := make([]uint32, n)
	for i := range out {
		out[i] = binary.LittleEndian.Uint32(m.data[addr+uint32(i)*4:])
	}
	return out, nil
}
