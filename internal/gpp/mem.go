// Package gpp models the general-purpose processor of the TransRec system:
// a single-issue, in-order RV32IM core with a flat memory and a simple,
// deterministic timing model. It plays the role gem5's TimingSimple CPU
// plays in the paper's evaluation: it executes the benchmark functionally
// and provides the retired-instruction stream that feeds the DBT module.
package gpp

import (
	"encoding/binary"
	"fmt"
)

// Default memory layout. Text sits low, static data in the middle, the stack
// grows down from the top.
const (
	TextBase  = 0x1000
	DataBase  = 0x10000
	MemSize   = 1 << 21 // 2 MiB
	StackTop  = MemSize - 16
	WordBytes = 4
)

// Memory is a flat little-endian byte-addressable memory.
type Memory struct {
	data []byte
}

// NewMemory allocates a zeroed memory of the given size in bytes.
func NewMemory(size int) *Memory {
	return &Memory{data: make([]byte, size)}
}

// Size returns the memory size in bytes.
func (m *Memory) Size() int { return len(m.data) }

// AccessError describes an out-of-bounds memory access.
type AccessError struct {
	Addr uint32
	Size int
	Op   string
}

func (e *AccessError) Error() string {
	return fmt.Sprintf("gpp: %s of %d bytes at %#x out of bounds", e.Op, e.Size, e.Addr)
}

func (m *Memory) check(addr uint32, size int, op string) error {
	if int64(addr)+int64(size) > int64(len(m.data)) {
		return &AccessError{Addr: addr, Size: size, Op: op}
	}
	return nil
}

// LoadWord reads a 32-bit little-endian word.
func (m *Memory) LoadWord(addr uint32) (uint32, error) {
	if err := m.check(addr, 4, "load"); err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint32(m.data[addr:]), nil
}

// LoadHalf reads a 16-bit little-endian halfword.
func (m *Memory) LoadHalf(addr uint32) (uint16, error) {
	if err := m.check(addr, 2, "load"); err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint16(m.data[addr:]), nil
}

// LoadByte reads one byte.
func (m *Memory) LoadByte(addr uint32) (byte, error) {
	if err := m.check(addr, 1, "load"); err != nil {
		return 0, err
	}
	return m.data[addr], nil
}

// StoreWord writes a 32-bit little-endian word.
func (m *Memory) StoreWord(addr uint32, v uint32) error {
	if err := m.check(addr, 4, "store"); err != nil {
		return err
	}
	binary.LittleEndian.PutUint32(m.data[addr:], v)
	return nil
}

// StoreHalf writes a 16-bit little-endian halfword.
func (m *Memory) StoreHalf(addr uint32, v uint16) error {
	if err := m.check(addr, 2, "store"); err != nil {
		return err
	}
	binary.LittleEndian.PutUint16(m.data[addr:], v)
	return nil
}

// StoreByte writes one byte.
func (m *Memory) StoreByte(addr uint32, v byte) error {
	if err := m.check(addr, 1, "store"); err != nil {
		return err
	}
	m.data[addr] = v
	return nil
}

// WriteBytes copies buf into memory at addr.
func (m *Memory) WriteBytes(addr uint32, buf []byte) error {
	if err := m.check(addr, len(buf), "store"); err != nil {
		return err
	}
	copy(m.data[addr:], buf)
	return nil
}

// ReadBytes copies n bytes starting at addr into a fresh slice.
func (m *Memory) ReadBytes(addr uint32, n int) ([]byte, error) {
	if err := m.check(addr, n, "load"); err != nil {
		return nil, err
	}
	out := make([]byte, n)
	copy(out, m.data[addr:])
	return out, nil
}

// WriteWords writes a word slice starting at addr.
func (m *Memory) WriteWords(addr uint32, words []uint32) error {
	if err := m.check(addr, len(words)*4, "store"); err != nil {
		return err
	}
	for i, w := range words {
		binary.LittleEndian.PutUint32(m.data[addr+uint32(i)*4:], w)
	}
	return nil
}

// ReadWords reads n words starting at addr.
func (m *Memory) ReadWords(addr uint32, n int) ([]uint32, error) {
	if err := m.check(addr, n*4, "load"); err != nil {
		return nil, err
	}
	out := make([]uint32, n)
	for i := range out {
		out[i] = binary.LittleEndian.Uint32(m.data[addr+uint32(i)*4:])
	}
	return out, nil
}
