// Package mapper implements the DBT's instruction-to-fabric placement: the
// "traditional energy-efficient mapping" of the paper. Operations are
// placed greedily at the earliest data-ready column and the first available
// row, which is exactly the policy that biases utilization toward the
// top-left corner of the fabric (Fig. 1) and motivates the
// utilization-aware allocator.
package mapper

import (
	"sync"

	"agingcgra/internal/fabric"
	"agingcgra/internal/isa"
)

// TraceEntry is one dynamically captured instruction, in execution order.
type TraceEntry struct {
	// PC is the instruction address.
	PC uint32
	// Inst is the decoded instruction.
	Inst isa.Inst
	// Taken is the observed direction for control transfers.
	Taken bool
}

// Options configures placement.
type Options struct {
	// Geom is the target fabric.
	Geom fabric.Geometry
	// Lat gives per-class column spans.
	Lat fabric.LatencyTable
	// MaxOps caps the number of placed operations (0 = no cap).
	MaxOps int
	// Disabled marks failed FU cells the mapper must route around: the
	// end-of-life degradation scenario of the paper's introduction, where
	// dead FUs progressively limit ILP.
	Disabled func(cell fabric.Cell) bool
	// Probes, when non-nil, accumulates the number of FU cell probes
	// (occupancy + health checks of the greedy row search) the placement
	// performed. The shape searches pass a counter here so the
	// searchcost model can price their scans from the work actually done
	// instead of a worst-case bound.
	Probes *uint64
}

// Map places the longest prefix of trace that fits the fabric under the
// greedy first-fit policy and returns the resulting virtual configuration
// plus the number of trace entries consumed. It returns (nil, 0) when not
// even the first entry can be placed.
//
// Placement constraints:
//   - data dependencies: an op starts no earlier than the end column of
//     each of its producers (values travel left to right on context lines);
//   - memory: the data cache accepts one read and one write per cycle
//     ("one read and one write", Section III.A), so loads (stores) reserve
//     the read (write) port for their issue window of ColumnsPerCycle
//     columns; latencies overlap but issue is serialised. Loads and stores
//     are not reordered around stores (no disambiguation);
//   - stores are non-speculative: they start after every earlier branch;
//   - context-line pressure: the number of live values crossing any column
//     boundary may not exceed Geom.CtxLines;
//   - system instructions and indirect jumps (jalr) are never mapped.
func Map(trace []TraceEntry, opt Options) (*fabric.Config, int) {
	if err := opt.Geom.Validate(); err != nil {
		return nil, 0
	}
	if err := opt.Lat.Validate(); err != nil {
		return nil, 0
	}
	s := newPlaceState(opt)
	defer s.release()
	var ops []fabric.PlacedOp
	usedCols := 0

	for i, e := range trace {
		if opt.MaxOps > 0 && len(ops) >= opt.MaxOps {
			break
		}
		op, ok := s.place(i, e)
		if !ok {
			break
		}
		ops = append(ops, op)
		if e := op.EndCol(); e > usedCols {
			usedCols = e
		}
	}
	if len(ops) == 0 {
		return nil, 0
	}
	consumed := ops[len(ops)-1].Seq + 1
	return &fabric.Config{
		StartPC:  trace[0].PC,
		Geom:     opt.Geom,
		Ops:      ops,
		UsedCols: usedCols,
	}, consumed
}

type liveValue struct {
	endCol  int // column from which the value is available
	lastUse int // highest consumer start column so far
	// injectable marks values served by the input context: the wrap-around
	// 2:1 multiplexer injects them at any column, so they occupy a context
	// line only at the boundaries where they are actually consumed, not
	// end-to-end. Live-ins and translation-time constants qualify.
	injectable bool
	// injectedLow/injectedHigh record the boundaries already counted for an
	// injectable value, so two consumers at one column share the line. The
	// bitmask covers boundaries below 64 — every fabric in the sweep space —
	// with a lazily allocated map behind it for wider geometries.
	injectedLow  uint64
	injectedHigh map[int]bool
}

func (v *liveValue) isInjected(b int) bool {
	if b < 64 {
		return v.injectedLow&(1<<uint(b)) != 0
	}
	return v.injectedHigh[b]
}

func (v *liveValue) setInjected(b int) {
	if b < 64 {
		v.injectedLow |= 1 << uint(b)
		return
	}
	if v.injectedHigh == nil {
		v.injectedHigh = make(map[int]bool)
	}
	v.injectedHigh[b] = true
}

// placeState is the mapper's working state. It is pooled and reused across
// Map calls: the shape searches run Map once per (shape × anchor) candidate,
// and a fresh pair of maps plus five slices per probe dominated the
// allocation profile of the translation-time ladder. Values live in an
// arena slice indexed through a fixed register file, so placement does no
// map operations at all on fabrics narrower than 64 columns.
type placeState struct {
	opt  Options
	rows int
	cols int

	occ       []bool // FU occupancy, row-major
	readPort  []bool // data-cache read port per column
	writePort []bool // data-cache write port per column

	// regValue maps each architectural register to the value currently
	// holding it within the configuration: an index+1 into the values
	// arena, 0 when the register has not been seen yet.
	regValue [isa.NumRegs]int32
	values   []liveValue
	crossing []int // live values crossing each column boundary

	lastStoreEnd  int // loads/stores may not start before this
	lastMemEnd    int // stores may not start before this
	lastBranchEnd int // stores may not start before this (non-speculative)
}

var statePool = sync.Pool{New: func() any { return new(placeState) }}

func newPlaceState(opt Options) *placeState {
	g := opt.Geom
	s := statePool.Get().(*placeState)
	s.opt = opt
	s.rows, s.cols = g.Rows, g.Cols
	s.occ = resetBools(s.occ, g.Rows*g.Cols)
	s.readPort = resetBools(s.readPort, g.Cols)
	s.writePort = resetBools(s.writePort, g.Cols)
	s.regValue = [isa.NumRegs]int32{}
	s.values = s.values[:0]
	if cap(s.crossing) < g.Cols+1 {
		s.crossing = make([]int, g.Cols+1)
	} else {
		s.crossing = s.crossing[:g.Cols+1]
		clear(s.crossing)
	}
	s.lastStoreEnd, s.lastMemEnd, s.lastBranchEnd = 0, 0, 0
	return s
}

// release returns the state to the pool. Nothing in it is referenced by the
// produced Config — PlacedOps carry their own data — so reuse is safe.
func (s *placeState) release() {
	s.opt = Options{} // drop the Disabled closure and Probes pointer
	statePool.Put(s)
}

func resetBools(b []bool, n int) []bool {
	if cap(b) < n {
		return make([]bool, n)
	}
	b = b[:n]
	clear(b)
	return b
}

// newValue appends a value to the arena and binds register r to it.
func (s *placeState) newValue(r isa.Reg, v liveValue) {
	s.values = append(s.values, v)
	s.regValue[r] = int32(len(s.values))
}

// sourceValue resolves the value feeding register r, registering a live-in
// on first use. The zero register is a constant and never travels on a
// line; it resolves to nil.
func (s *placeState) sourceValue(r isa.Reg) *liveValue {
	if r == isa.X0 {
		return nil
	}
	id := s.regValue[r]
	if id == 0 {
		// Live-ins are fed by the input context: available at column 0,
		// injectable at any column via the wrap-around 2:1 mux.
		s.newValue(r, liveValue{endCol: 0, lastUse: -1, injectable: true})
		id = s.regValue[r]
	}
	return &s.values[id-1]
}

// earliestCol returns the first column the entry may start at, from data,
// memory and speculation constraints.
func (s *placeState) earliestCol(in isa.Inst) int {
	c := 0
	if in.ReadsRs1() {
		if v := s.sourceValue(in.Rs1); v != nil && v.endCol > c {
			c = v.endCol
		}
	}
	if in.ReadsRs2() {
		if v := s.sourceValue(in.Rs2); v != nil && v.endCol > c {
			c = v.endCol
		}
	}
	if in.IsLoad() && s.lastStoreEnd > c {
		c = s.lastStoreEnd
	}
	if in.IsStore() {
		if s.lastMemEnd > c {
			c = s.lastMemEnd
		}
		if s.lastBranchEnd > c {
			c = s.lastBranchEnd
		}
	}
	return c
}

// ctxFits checks whether extending the source values' live ranges to a
// consumer at column col would exceed the context-line budget, and commits
// the extension if it fits. Injectable values (live-ins, constants) only
// occupy the consumer's own boundary; produced values occupy every
// boundary from their producer to the consumer.
func (s *placeState) ctxFits(in isa.Inst, col int, commit bool) bool {
	// Register both source values up front: exts holds pointers into the
	// values arena, and a live-in registration appends to it — resolving
	// first keeps the pointers stable while they are held.
	if in.ReadsRs1() {
		s.sourceValue(in.Rs1)
	}
	if in.ReadsRs2() {
		s.sourceValue(in.Rs2)
	}
	// Gather per-boundary increments from both sources (a value used twice
	// still occupies one line).
	type ext struct {
		v        *liveValue
		from, to int
	}
	var exts [2]ext
	n := 0
	add := func(r isa.Reg) {
		if r == isa.X0 {
			return
		}
		v := s.sourceValue(r)
		if v == nil {
			return
		}
		// Already extended by the other operand of this op?
		for i := 0; i < n; i++ {
			if exts[i].v == v {
				return
			}
		}
		if v.injectable {
			if !v.isInjected(col) {
				exts[n] = ext{v: v, from: col, to: col}
				n++
			}
			return
		}
		from := v.lastUse + 1
		if from < v.endCol {
			from = v.endCol
		}
		if col >= from {
			exts[n] = ext{v: v, from: from, to: col}
			n++
		}
	}
	if in.ReadsRs1() {
		add(in.Rs1)
	}
	if in.ReadsRs2() {
		add(in.Rs2)
	}
	// Verify.
	for i := 0; i < n; i++ {
		for b := exts[i].from; b <= exts[i].to; b++ {
			inc := 1
			for j := 0; j < i; j++ {
				if b >= exts[j].from && b <= exts[j].to {
					inc++
				}
			}
			if s.crossing[b]+inc > s.opt.Geom.CtxLines {
				return false
			}
		}
	}
	if !commit {
		return true
	}
	for i := 0; i < n; i++ {
		for b := exts[i].from; b <= exts[i].to; b++ {
			s.crossing[b]++
		}
		if exts[i].to > exts[i].v.lastUse {
			exts[i].v.lastUse = exts[i].to
		}
		if exts[i].v.injectable {
			exts[i].v.setInjected(exts[i].to)
		}
	}
	return true
}

// place attempts to place trace entry seq and returns the placed op.
func (s *placeState) place(seq int, e TraceEntry) (fabric.PlacedOp, bool) {
	in := e.Inst
	class := in.Op.Class()

	switch class {
	case isa.ClassSys:
		return fabric.PlacedOp{}, false
	case isa.ClassJump:
		if in.Op == isa.JALR {
			// Indirect target: not translatable.
			return fabric.PlacedOp{}, false
		}
		// Direct jump: no FU. The link value is a translation-time
		// constant, injected through the input context like a live-in.
		if in.WritesRd() {
			s.newValue(in.Rd, liveValue{endCol: 0, lastUse: -1, injectable: true})
		}
		return fabric.PlacedOp{
			Seq: seq, PC: e.PC, Inst: in, Taken: e.Taken, Width: 0,
		}, true
	}

	width := s.opt.Lat.Columns(class)
	start := s.earliestCol(in)

	issue := fabric.ColumnsPerCycle
	if issue > width {
		issue = width
	}
	for col := start; col+width <= s.cols; col++ {
		if in.IsLoad() && s.portBusy(s.readPort, col, issue) {
			continue
		}
		if in.IsStore() && s.portBusy(s.writePort, col, issue) {
			continue
		}
		row := s.freeRow(col, width)
		if row < 0 {
			continue
		}
		if !s.ctxFits(in, col, false) {
			// Later columns only lengthen live ranges; give up.
			return fabric.PlacedOp{}, false
		}
		s.ctxFits(in, col, true)
		s.commit(seq, in, row, col, width)
		return fabric.PlacedOp{
			Seq: seq, PC: e.PC, Inst: in, Taken: e.Taken,
			Row: row, Col: col, Width: width,
		}, true
	}
	return fabric.PlacedOp{}, false
}

// portBusy reports whether the port is busy anywhere in [col, col+width).
func (s *placeState) portBusy(port []bool, col, width int) bool {
	for w := 0; w < width; w++ {
		if port[col+w] {
			return true
		}
	}
	return false
}

// freeRow returns the first row with [col, col+width) free and healthy, or
// -1. Scanning from row 0 is the greedy bias the paper describes.
func (s *placeState) freeRow(col, width int) int {
rowLoop:
	for r := 0; r < s.rows; r++ {
		base := r * s.cols
		for w := 0; w < width; w++ {
			if s.opt.Probes != nil {
				*s.opt.Probes++
			}
			if s.occ[base+col+w] {
				continue rowLoop
			}
			if s.opt.Disabled != nil && s.opt.Disabled(fabric.Cell{Row: r, Col: col + w}) {
				continue rowLoop
			}
		}
		return r
	}
	return -1
}

// commit records the placement's resource usage and dataflow effects.
func (s *placeState) commit(seq int, in isa.Inst, row, col, width int) {
	base := row * s.cols
	for w := 0; w < width; w++ {
		s.occ[base+col+w] = true
	}
	end := col + width
	issue := fabric.ColumnsPerCycle
	if issue > width {
		issue = width
	}
	switch {
	case in.IsLoad():
		for w := 0; w < issue; w++ {
			s.readPort[col+w] = true
		}
		if end > s.lastMemEnd {
			s.lastMemEnd = end
		}
	case in.IsStore():
		for w := 0; w < issue; w++ {
			s.writePort[col+w] = true
		}
		if end > s.lastMemEnd {
			s.lastMemEnd = end
		}
		if end > s.lastStoreEnd {
			s.lastStoreEnd = end
		}
	case in.IsBranch():
		if end > s.lastBranchEnd {
			s.lastBranchEnd = end
		}
	}
	if in.WritesRd() {
		s.newValue(in.Rd, liveValue{endCol: end, lastUse: -1})
	}
}
