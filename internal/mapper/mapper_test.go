package mapper

import (
	"math/rand"
	"testing"

	"agingcgra/internal/fabric"
	"agingcgra/internal/isa"
)

func opts(rows, cols int) Options {
	return Options{Geom: fabric.NewGeometry(rows, cols), Lat: fabric.DefaultLatencies()}
}

func alu(pc uint32, rd, rs1, rs2 isa.Reg) TraceEntry {
	return TraceEntry{PC: pc, Inst: isa.Inst{Op: isa.ADD, Rd: rd, Rs1: rs1, Rs2: rs2}}
}

func TestFirstOpAtOrigin(t *testing.T) {
	cfg, n := Map([]TraceEntry{alu(0x1000, isa.T0, isa.A0, isa.A1)}, opts(4, 8))
	if cfg == nil || n != 1 {
		t.Fatalf("Map failed: cfg=%v n=%d", cfg, n)
	}
	op := cfg.Ops[0]
	if op.Row != 0 || op.Col != 0 {
		t.Errorf("first op at (%d,%d), want (0,0) - the greedy corner bias", op.Row, op.Col)
	}
	if err := cfg.Validate(); err != nil {
		t.Error(err)
	}
}

// Independent ops fill rows top-down at the same column: the bias that
// makes the top rows age fastest.
func TestIndependentOpsFillRowsFirst(t *testing.T) {
	trace := []TraceEntry{
		alu(0x1000, isa.T0, isa.A0, isa.A1),
		alu(0x1004, isa.T1, isa.A0, isa.A2),
		alu(0x1008, isa.T2, isa.A0, isa.A3),
		alu(0x100c, isa.T3, isa.A0, isa.A4),
		alu(0x1010, isa.T4, isa.A0, isa.A5),
	}
	cfg, n := Map(trace, opts(4, 8))
	if n != 5 {
		t.Fatalf("consumed %d, want 5", n)
	}
	wantPos := []fabric.Cell{{Row: 0, Col: 0}, {Row: 1, Col: 0}, {Row: 2, Col: 0}, {Row: 3, Col: 0}, {Row: 0, Col: 1}}
	for i, w := range wantPos {
		if cfg.Ops[i].Row != w.Row || cfg.Ops[i].Col != w.Col {
			t.Errorf("op %d at (%d,%d), want (%d,%d)",
				i, cfg.Ops[i].Row, cfg.Ops[i].Col, w.Row, w.Col)
		}
	}
}

// A dependence chain must occupy strictly increasing columns.
func TestDependenceChainSerialises(t *testing.T) {
	trace := []TraceEntry{
		alu(0x1000, isa.T0, isa.A0, isa.A1),
		alu(0x1004, isa.T1, isa.T0, isa.A1),
		alu(0x1008, isa.T2, isa.T1, isa.A1),
	}
	cfg, n := Map(trace, opts(4, 8))
	if n != 3 {
		t.Fatalf("consumed %d, want 3", n)
	}
	for i := 1; i < 3; i++ {
		prev, cur := cfg.Ops[i-1], cfg.Ops[i]
		if cur.Col < prev.EndCol() {
			t.Errorf("op %d col %d starts before producer end %d", i, cur.Col, prev.EndCol())
		}
	}
	if cfg.UsedCols != 3 {
		t.Errorf("UsedCols = %d, want 3", cfg.UsedCols)
	}
}

func TestLoadLatencyAndPort(t *testing.T) {
	ld := func(pc uint32, rd, rs1 isa.Reg) TraceEntry {
		return TraceEntry{PC: pc, Inst: isa.Inst{Op: isa.LW, Rd: rd, Rs1: rs1}}
	}
	// Independent loads: the read port accepts one issue per cycle
	// (ColumnsPerCycle columns), so back-to-back loads pipeline with their
	// issue windows serialised but latencies overlapping.
	cfg, n := Map([]TraceEntry{
		ld(0x1000, isa.T0, isa.A0),
		ld(0x1004, isa.T1, isa.A1),
		ld(0x1008, isa.T2, isa.A2),
	}, opts(4, 16))
	if n != 3 {
		t.Fatalf("consumed %d, want 3", n)
	}
	for i := 1; i < 3; i++ {
		prev, cur := cfg.Ops[i-1], cfg.Ops[i]
		if prev.Width != 4 || cur.Width != 4 {
			t.Fatalf("load widths %d,%d, want 4", prev.Width, cur.Width)
		}
		gap := cur.Col - prev.Col
		if gap < fabric.ColumnsPerCycle {
			t.Errorf("load %d issued %d columns after load %d; port accepts one per cycle",
				i, gap, i-1)
		}
	}
	// They must pipeline rather than fully serialise: the second load
	// starts before the first finishes (different rows).
	if cfg.Ops[1].Col >= cfg.Ops[0].EndCol() {
		t.Errorf("loads fully serialised (col %d >= %d); expected pipelining",
			cfg.Ops[1].Col, cfg.Ops[0].EndCol())
	}
}

func TestLoadStoreOrdering(t *testing.T) {
	trace := []TraceEntry{
		{PC: 0x1000, Inst: isa.Inst{Op: isa.SW, Rs1: isa.A0, Rs2: isa.A1}},
		{PC: 0x1004, Inst: isa.Inst{Op: isa.LW, Rd: isa.T0, Rs1: isa.A2}},
	}
	cfg, n := Map(trace, opts(4, 16))
	if n != 2 {
		t.Fatalf("consumed %d, want 2", n)
	}
	if cfg.Ops[1].Col < cfg.Ops[0].EndCol() {
		t.Error("load reordered above store (no disambiguation allowed)")
	}
}

func TestStoreWaitsForBranch(t *testing.T) {
	trace := []TraceEntry{
		{PC: 0x1000, Inst: isa.Inst{Op: isa.BNE, Rs1: isa.A0, Rs2: isa.A1, Imm: 8}},
		{PC: 0x1004, Inst: isa.Inst{Op: isa.SW, Rs1: isa.A2, Rs2: isa.A3}},
	}
	cfg, n := Map(trace, opts(4, 16))
	if n != 2 {
		t.Fatalf("consumed %d, want 2", n)
	}
	if cfg.Ops[1].Col < cfg.Ops[0].EndCol() {
		t.Error("speculative store placed before branch resolution")
	}
}

func TestALUCanSpeculatePastBranch(t *testing.T) {
	trace := []TraceEntry{
		{PC: 0x1000, Inst: isa.Inst{Op: isa.BNE, Rs1: isa.A0, Rs2: isa.A1, Imm: 8}},
		alu(0x1004, isa.T0, isa.A2, isa.A3),
	}
	cfg, n := Map(trace, opts(4, 16))
	if n != 2 {
		t.Fatalf("consumed %d, want 2", n)
	}
	if cfg.Ops[1].Col != 0 {
		t.Errorf("independent ALU op after branch at col %d, want 0 (speculation allowed)", cfg.Ops[1].Col)
	}
}

func TestJALTakesNoFU(t *testing.T) {
	trace := []TraceEntry{
		alu(0x1000, isa.T0, isa.A0, isa.A1),
		{PC: 0x1004, Inst: isa.Inst{Op: isa.JAL, Rd: isa.RA, Imm: 64}, Taken: true},
		alu(0x1044, isa.T1, isa.T0, isa.A1),
	}
	cfg, n := Map(trace, opts(2, 8))
	if n != 3 {
		t.Fatalf("consumed %d, want 3", n)
	}
	if cfg.Ops[1].Width != 0 {
		t.Errorf("jal width = %d, want 0", cfg.Ops[1].Width)
	}
	cells := cfg.Cells()
	if len(cells) != 2 {
		t.Errorf("config occupies %d cells, want 2 (jal consumes none)", len(cells))
	}
}

func TestJALRStopsMapping(t *testing.T) {
	trace := []TraceEntry{
		alu(0x1000, isa.T0, isa.A0, isa.A1),
		{PC: 0x1004, Inst: isa.Inst{Op: isa.JALR, Rd: isa.X0, Rs1: isa.RA}, Taken: true},
		alu(0x1008, isa.T1, isa.T0, isa.A1),
	}
	cfg, n := Map(trace, opts(2, 8))
	if n != 1 {
		t.Fatalf("consumed %d, want 1 (jalr terminates)", n)
	}
	if cfg.NumOps() != 1 {
		t.Errorf("ops = %d, want 1", cfg.NumOps())
	}
}

func TestECALLStopsMapping(t *testing.T) {
	trace := []TraceEntry{
		{PC: 0x1000, Inst: isa.Inst{Op: isa.ECALL}},
	}
	cfg, n := Map(trace, opts(2, 8))
	if cfg != nil || n != 0 {
		t.Fatalf("ecall should not map: cfg=%v n=%d", cfg, n)
	}
}

func TestCapacityTruncation(t *testing.T) {
	// A 2x2 fabric fits at most 4 single-column ALU ops.
	var trace []TraceEntry
	for i := 0; i < 10; i++ {
		trace = append(trace, alu(uint32(0x1000+4*i), isa.T0, isa.A0, isa.A1))
	}
	// Make them independent (different dests don't matter; sources the same).
	cfg, n := Map(trace, opts(2, 2))
	if cfg == nil {
		t.Fatal("nil config")
	}
	if n != 4 {
		t.Errorf("consumed %d, want 4 (fabric capacity)", n)
	}
	if err := cfg.Validate(); err != nil {
		t.Error(err)
	}
}

func TestMaxOpsCap(t *testing.T) {
	var trace []TraceEntry
	for i := 0; i < 10; i++ {
		trace = append(trace, alu(uint32(0x1000+4*i), isa.T0, isa.A0, isa.A1))
	}
	o := opts(4, 8)
	o.MaxOps = 3
	_, n := Map(trace, o)
	if n != 3 {
		t.Errorf("consumed %d, want 3 (MaxOps)", n)
	}
}

func TestContextPressureTruncates(t *testing.T) {
	// Each op produces a value consumed far away, accumulating live values
	// across the middle boundary. With only 2 context lines the third
	// long-range value must not fit.
	g := fabric.Geometry{Rows: 8, Cols: 16, CtxLines: 2, CfgLines: 4}
	o := Options{Geom: g, Lat: fabric.DefaultLatencies()}
	trace := []TraceEntry{
		alu(0x1000, isa.T0, isa.A0, isa.A0),
		alu(0x1004, isa.T1, isa.T0, isa.T0), // consumes T0 at col 1
		alu(0x1008, isa.T2, isa.T1, isa.T1),
		alu(0x100c, isa.T3, isa.T2, isa.T2),
		alu(0x1010, isa.T4, isa.T0, isa.T3), // T0 live range stretches: 2 lines crossing
		alu(0x1014, isa.T5, isa.T1, isa.T4), // T1 stretches too: 3 on some boundary
	}
	cfg, n := Map(trace, o)
	if cfg == nil {
		t.Fatal("nil config")
	}
	if n >= len(trace) {
		t.Errorf("consumed %d, expected truncation before %d", n, len(trace))
	}
}

func TestConsumedMatchesOps(t *testing.T) {
	trace := []TraceEntry{
		alu(0x1000, isa.T0, isa.A0, isa.A1),
		alu(0x1004, isa.T1, isa.T0, isa.A1),
	}
	cfg, n := Map(trace, opts(2, 8))
	if n != cfg.NumOps() {
		t.Errorf("consumed %d != ops %d", n, cfg.NumOps())
	}
	if cfg.StartPC != 0x1000 {
		t.Errorf("StartPC = %#x", cfg.StartPC)
	}
}

// randomTrace builds a plausible random trace for property testing.
func randomTrace(r *rand.Rand, n int) []TraceEntry {
	regs := []isa.Reg{isa.T0, isa.T1, isa.T2, isa.A0, isa.A1, isa.A2, isa.S0, isa.S1}
	ops := []isa.Op{isa.ADD, isa.SUB, isa.XOR, isa.AND, isa.MUL, isa.LW, isa.SW, isa.ADDI, isa.BNE, isa.SLLI}
	var out []TraceEntry
	pc := uint32(0x1000)
	for i := 0; i < n; i++ {
		op := ops[r.Intn(len(ops))]
		in := isa.Inst{
			Op:  op,
			Rd:  regs[r.Intn(len(regs))],
			Rs1: regs[r.Intn(len(regs))],
			Rs2: regs[r.Intn(len(regs))],
		}
		if op == isa.ADDI || op == isa.SLLI {
			in.Rs2 = 0
			in.Imm = int32(r.Intn(16))
		}
		if op == isa.BNE {
			in.Rd = 0
			in.Imm = 8
		}
		out = append(out, TraceEntry{PC: pc, Inst: in, Taken: op == isa.BNE && r.Intn(2) == 0})
		pc += 4
	}
	return out
}

// TestMapInvariants is the core property test: for random traces and
// geometries, every produced configuration validates structurally and
// respects dataflow order.
func TestMapInvariants(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	geoms := [][2]int{{2, 8}, {2, 16}, {4, 16}, {4, 32}, {8, 32}, {1, 4}}
	for iter := 0; iter < 500; iter++ {
		g := geoms[r.Intn(len(geoms))]
		trace := randomTrace(r, 1+r.Intn(60))
		cfg, n := Map(trace, opts(g[0], g[1]))
		if cfg == nil {
			continue
		}
		if n != cfg.Ops[len(cfg.Ops)-1].Seq+1 {
			t.Fatalf("iter %d: consumed %d mismatches last seq %d", iter, n, cfg.Ops[len(cfg.Ops)-1].Seq)
		}
		if err := cfg.Validate(); err != nil {
			t.Fatalf("iter %d: %v", iter, err)
		}
		// Dataflow: every consumer starts at or after its producer's end.
		lastWrite := map[isa.Reg]int{} // reg -> end col
		for _, op := range cfg.Ops {
			in := op.Inst
			if in.ReadsRs1() && in.Rs1 != isa.X0 {
				if e, ok := lastWrite[in.Rs1]; ok && op.Width > 0 && op.Col < e {
					t.Fatalf("iter %d: op seq %d reads %v before producer end %d", iter, op.Seq, in.Rs1, e)
				}
			}
			if in.ReadsRs2() && in.Rs2 != isa.X0 {
				if e, ok := lastWrite[in.Rs2]; ok && op.Width > 0 && op.Col < e {
					t.Fatalf("iter %d: op seq %d reads %v before producer end %d", iter, op.Seq, in.Rs2, e)
				}
			}
			if in.WritesRd() {
				if op.Width > 0 {
					lastWrite[in.Rd] = op.EndCol()
				} else {
					lastWrite[in.Rd] = 0
				}
			}
		}
	}
}
