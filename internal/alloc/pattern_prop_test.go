package alloc

import (
	"testing"

	"agingcgra/internal/fabric"
)

// propGeometries is the geometry table the coverage property is checked
// over: the paper's scenario designs plus degenerate 1xN / Nx1 shapes and
// odd sizes that catch wrap-around and parity bugs.
var propGeometries = []struct{ rows, cols int }{
	{1, 1},
	{1, 2},
	{2, 1},
	{1, 7},
	{7, 1},
	{2, 2},
	{3, 3},
	{2, 16}, // BE
	{4, 32}, // BP
	{8, 32}, // BU
	{3, 7},
	{5, 4},
}

// TestFullCoveragePatternsVisitEveryOffsetOnce pins the invariant the
// paper's lifetime-improvement-equals-utilization-ratio claim rests on:
// a full-coverage movement pattern visits each of the Rows×Cols pivot
// offsets exactly once per period, so every FU sees close-to-average duty
// over one full rotation.
func TestFullCoveragePatternsVisitEveryOffsetOnce(t *testing.T) {
	patterns := []Pattern{Snake{}, RowMajor{}, Diagonal{}, Shuffled{}, Shuffled{Seed: 12345}}
	for _, pat := range patterns {
		for _, gg := range propGeometries {
			g := fabric.NewGeometry(gg.rows, gg.cols)
			seq := pat.Sequence(g)
			if len(seq) != g.NumFUs() {
				t.Errorf("%s on %v: sequence length %d, want %d",
					pat.Name(), g, len(seq), g.NumFUs())
				continue
			}
			seen := make(map[fabric.Offset]int, len(seq))
			for i, off := range seq {
				if off.Row < 0 || off.Row >= g.Rows || off.Col < 0 || off.Col >= g.Cols {
					t.Errorf("%s on %v: offset %d = %v out of range", pat.Name(), g, i, off)
				}
				seen[off]++
			}
			for off, n := range seen {
				if n != 1 {
					t.Errorf("%s on %v: offset %v visited %d times, want exactly once",
						pat.Name(), g, off, n)
				}
			}
			if len(seen) != g.NumFUs() {
				t.Errorf("%s on %v: %d distinct offsets, want %d",
					pat.Name(), g, len(seen), g.NumFUs())
			}
		}
	}
}

// TestAblationPatternsCoverTheirAxisOnce checks the partial-coverage
// ablations: horizontal-only visits every column exactly once (full
// coverage on 1-row fabrics), vertical-only every row (full coverage on
// 1-column fabrics).
func TestAblationPatternsCoverTheirAxisOnce(t *testing.T) {
	for _, gg := range propGeometries {
		g := fabric.NewGeometry(gg.rows, gg.cols)

		hseq := HorizontalOnly{}.Sequence(g)
		if len(hseq) != g.Cols {
			t.Errorf("horizontal-only on %v: length %d, want %d", g, len(hseq), g.Cols)
		}
		cols := make(map[int]bool)
		for _, off := range hseq {
			if off.Row != 0 {
				t.Errorf("horizontal-only on %v: offset %v moves vertically", g, off)
			}
			if cols[off.Col] {
				t.Errorf("horizontal-only on %v: column %d revisited", g, off.Col)
			}
			cols[off.Col] = true
		}

		vseq := VerticalOnly{}.Sequence(g)
		if len(vseq) != g.Rows {
			t.Errorf("vertical-only on %v: length %d, want %d", g, len(vseq), g.Rows)
		}
		rows := make(map[int]bool)
		for _, off := range vseq {
			if off.Col != 0 {
				t.Errorf("vertical-only on %v: offset %v moves horizontally", g, off)
			}
			if rows[off.Row] {
				t.Errorf("vertical-only on %v: row %d revisited", g, off.Row)
			}
			rows[off.Row] = true
		}
	}
}

// TestUtilizationAwareWalkMatchesPattern checks that the allocator actually
// walks its pattern's sequence cyclically, including across the wrap.
func TestUtilizationAwareWalkMatchesPattern(t *testing.T) {
	for _, gg := range propGeometries {
		g := fabric.NewGeometry(gg.rows, gg.cols)
		u := NewUtilizationAware(g)
		want := Snake{}.Sequence(g)
		for i := 0; i < 2*len(want)+3; i++ {
			got := u.Next(nil)
			if got != want[i%len(want)] {
				t.Fatalf("%v: step %d = %v, want %v", g, i, got, want[i%len(want)])
			}
		}
	}
}
