// Package alloc implements the configuration allocation strategies: the
// paper's utilization-aware movement (Section III) plus the baseline and
// several ablation variants.
//
// An Allocator answers one question per configuration execution: at which
// pivot offset should the virtual configuration be loaded into the physical
// fabric? The baseline always answers (0,0) — configurations land where the
// greedy mapper placed them. The utilization-aware allocator advances the
// pivot along a pattern that covers the whole fabric (Fig. 3), wrapping
// around both dimensions, so every FU sees close-to-average duty over time.
package alloc

import (
	"fmt"

	"agingcgra/internal/fabric"
)

// Allocator decides the pivot offset for each execution of a configuration.
// Implementations must be deterministic.
type Allocator interface {
	// Name identifies the strategy in reports.
	Name() string
	// Next returns the offset for the upcoming execution of cfg.
	Next(cfg *fabric.Config) fabric.Offset
}

// StressObserver is implemented by allocators that adapt to accumulated
// stress; the engine feeds back every committed execution.
type StressObserver interface {
	// ObserveStress reports that cells (virtual coordinates) ran at offset
	// off for the given number of cycles.
	ObserveStress(cells []fabric.Cell, off fabric.Offset, cycles uint64)
}

// Baseline is the utilization-unaware allocator: every configuration
// executes exactly where the mapper placed it.
type Baseline struct{}

// Name implements Allocator.
func (Baseline) Name() string { return "baseline" }

// Next implements Allocator.
func (Baseline) Next(*fabric.Config) fabric.Offset { return fabric.Offset{} }

// Pattern enumerates pivot offsets covering the fabric.
type Pattern interface {
	// Name identifies the pattern.
	Name() string
	// Sequence returns the pivot offsets in visiting order. It must visit
	// every position of the grid exactly once for full coverage (ablation
	// patterns may cover less).
	Sequence(g fabric.Geometry) []fabric.Offset
}

// Snake is the paper's movement pattern (Fig. 3b): left-to-right along the
// first row, right-to-left along the second, and so on, covering the whole
// fabric before wrapping back to the start.
type Snake struct{}

// Name implements Pattern.
func (Snake) Name() string { return "snake" }

// Sequence implements Pattern.
func (Snake) Sequence(g fabric.Geometry) []fabric.Offset {
	out := make([]fabric.Offset, 0, g.NumFUs())
	for r := 0; r < g.Rows; r++ {
		if r%2 == 0 {
			for c := 0; c < g.Cols; c++ {
				out = append(out, fabric.Offset{Row: r, Col: c})
			}
		} else {
			for c := g.Cols - 1; c >= 0; c-- {
				out = append(out, fabric.Offset{Row: r, Col: c})
			}
		}
	}
	return out
}

// RowMajor walks the grid in plain row-major order.
type RowMajor struct{}

// Name implements Pattern.
func (RowMajor) Name() string { return "row-major" }

// Sequence implements Pattern.
func (RowMajor) Sequence(g fabric.Geometry) []fabric.Offset {
	out := make([]fabric.Offset, 0, g.NumFUs())
	for r := 0; r < g.Rows; r++ {
		for c := 0; c < g.Cols; c++ {
			out = append(out, fabric.Offset{Row: r, Col: c})
		}
	}
	return out
}

// HorizontalOnly rotates through columns without vertical movement: the
// ablation that needs only the Fig. 5b multiplexers, not the barrel
// shifters.
type HorizontalOnly struct{}

// Name implements Pattern.
func (HorizontalOnly) Name() string { return "horizontal-only" }

// Sequence implements Pattern.
func (HorizontalOnly) Sequence(g fabric.Geometry) []fabric.Offset {
	out := make([]fabric.Offset, 0, g.Cols)
	for c := 0; c < g.Cols; c++ {
		out = append(out, fabric.Offset{Col: c})
	}
	return out
}

// VerticalOnly rotates through rows without horizontal movement: the
// ablation that needs only the barrel shifters of Fig. 5c.
type VerticalOnly struct{}

// Name implements Pattern.
func (VerticalOnly) Name() string { return "vertical-only" }

// Sequence implements Pattern.
func (VerticalOnly) Sequence(g fabric.Geometry) []fabric.Offset {
	out := make([]fabric.Offset, 0, g.Rows)
	for r := 0; r < g.Rows; r++ {
		out = append(out, fabric.Offset{Row: r})
	}
	return out
}

// Diagonal walks anti-diagonals, an alternative full-coverage pattern that
// changes row and column simultaneously on most steps.
type Diagonal struct{}

// Name implements Pattern.
func (Diagonal) Name() string { return "diagonal" }

// Sequence implements Pattern.
func (Diagonal) Sequence(g fabric.Geometry) []fabric.Offset {
	out := make([]fabric.Offset, 0, g.NumFUs())
	for d := 0; d < g.Rows+g.Cols-1; d++ {
		for r := 0; r < g.Rows; r++ {
			c := d - r
			if c >= 0 && c < g.Cols {
				out = append(out, fabric.Offset{Row: r, Col: c})
			}
		}
	}
	return out
}

// Shuffled visits every position once per epoch in a seeded pseudo-random
// order: the "random allocation" strawman of Section III, made
// deterministic.
type Shuffled struct {
	// Seed selects the permutation; zero gets a default.
	Seed uint32
}

// Name implements Pattern.
func (s Shuffled) Name() string { return "shuffled" }

// Sequence implements Pattern.
func (s Shuffled) Sequence(g fabric.Geometry) []fabric.Offset {
	out := RowMajor{}.Sequence(g)
	state := s.Seed
	if state == 0 {
		state = 0x2545f491
	}
	next := func() uint32 {
		state ^= state << 13
		state ^= state >> 17
		state ^= state << 5
		return state
	}
	for i := len(out) - 1; i > 0; i-- {
		j := int(next() % uint32(i+1))
		out[i], out[j] = out[j], out[i]
	}
	return out
}

// UtilizationAware is the paper's proposed allocator: it advances a pivot
// along a full-coverage movement pattern, shifting every newly loaded
// configuration (with wrap-around) so utilization spreads over the fabric.
type UtilizationAware struct {
	geom    fabric.Geometry
	pattern Pattern
	seq     []fabric.Offset
	// period is how many executions share one pivot position before the
	// pivot advances (1 = move every execution, the paper's default).
	period uint64
	// perConfig tracks an independent pivot per configuration StartPC
	// instead of one global pivot.
	perConfig bool

	count    uint64
	perCount map[uint32]uint64
}

// Option configures the UtilizationAware allocator.
type Option func(*UtilizationAware)

// WithPattern selects the movement pattern (default Snake).
func WithPattern(p Pattern) Option {
	return func(u *UtilizationAware) { u.pattern = p }
}

// WithPeriod makes the pivot advance only every n executions.
func WithPeriod(n uint64) Option {
	return func(u *UtilizationAware) {
		if n >= 1 {
			u.period = n
		}
	}
}

// WithPerConfigPivot gives each configuration its own pivot walk.
func WithPerConfigPivot() Option {
	return func(u *UtilizationAware) { u.perConfig = true }
}

// NewUtilizationAware builds the proposed allocator for a fabric geometry.
func NewUtilizationAware(g fabric.Geometry, opts ...Option) *UtilizationAware {
	u := &UtilizationAware{
		geom:     g,
		pattern:  Snake{},
		period:   1,
		perCount: make(map[uint32]uint64),
	}
	for _, o := range opts {
		o(u)
	}
	u.seq = u.pattern.Sequence(g)
	if len(u.seq) == 0 {
		u.seq = []fabric.Offset{{}}
	}
	return u
}

// Name implements Allocator.
func (u *UtilizationAware) Name() string {
	name := "utilization-aware/" + u.pattern.Name()
	if u.perConfig {
		name += "/per-config"
	}
	if u.period > 1 {
		name += fmt.Sprintf("/period=%d", u.period)
	}
	return name
}

// Next implements Allocator.
func (u *UtilizationAware) Next(cfg *fabric.Config) fabric.Offset {
	var n uint64
	if u.perConfig && cfg != nil {
		n = u.perCount[cfg.StartPC]
		u.perCount[cfg.StartPC] = n + 1
	} else {
		n = u.count
		u.count++
	}
	return u.seq[(n/u.period)%uint64(len(u.seq))]
}

// Pattern returns the movement pattern in use.
func (u *UtilizationAware) Pattern() Pattern { return u.pattern }
