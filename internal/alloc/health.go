package alloc

import (
	"fmt"

	"agingcgra/internal/fabric"
)

// HealthAware is the paper's future-work extension: instead of blindly
// rotating, it uses accumulated per-FU stress to pick the pivot that
// minimises the projected worst-case stress. Because an exhaustive search
// per execution would be costly in hardware, the search runs every
// RecomputeEvery executions and the chosen pivot is held in between.
type HealthAware struct {
	geom   fabric.Geometry
	stress []uint64 // physical per-cell stressed cycles, row-major
	// recomputeEvery is the pivot re-evaluation period.
	recomputeEvery uint64
	count          uint64
	current        fabric.Offset
	// health, when set, excludes placements touching dead cells from the
	// pivot search; a health change forces an immediate recompute (the
	// held pivot may have gone stale).
	health    *fabric.Health
	healthVer uint64
}

// HealthSetter is implemented by allocators that adapt to fabric failures;
// the controller forwards its health map on SetHealth.
type HealthSetter interface {
	SetHealth(*fabric.Health)
}

// WearSetter is implemented by allocators that adapt to accumulated
// cross-epoch NBTI wear; the controller forwards the fabric's wear map on
// SetWear. Within-run stress feedback stays on StressObserver — the wear map
// carries the multi-year history the lifetime simulator accrues between
// epochs, which a fresh per-epoch allocator could not otherwise see.
type WearSetter interface {
	SetWear(*fabric.Wear)
}

// ConfigRemapper is implemented by allocators that can substitute a
// shape-remapped configuration when the held pivot's footprint hits dead or
// worn cells. Pivot translation can only slide the rectangle the mapper
// produced; once failures cluster (a dead column under a full-length
// configuration), no offset avoids them and the controller would fall back
// to the GPP even though plenty of scattered live cells remain — and even
// when some pivot is still live, every surviving pivot of a
// cluster-constrained rectangle may sit on heavily worn cells a different
// shape could avoid. A ConfigRemapper re-maps the configuration's
// instruction sequence to an alternative shape in both cases.
type ConfigRemapper interface {
	// RemapConfig decides the placement of cfg given the translation-only
	// outcome: off is the pivot the ordinary placement chose and placed
	// reports whether it found one at all. The remapper returns either cfg
	// itself at off (translation stands), or an architecturally equivalent
	// remapped configuration — the same replayed instruction sequence,
	// possibly a shorter prefix when the constrained shape cannot hold
	// every op — at the offset it fits at. Every cell the returned
	// configuration occupies under the returned offset must be live. ok is
	// false when neither translation nor any alternative shape yields a
	// live placement.
	RemapConfig(cfg *fabric.Config, off fabric.Offset, placed bool) (mapped *fabric.Config, mappedOff fabric.Offset, ok bool)
}

// NewHealthAware builds the stress-feedback allocator. recomputeEvery <= 0
// defaults to 16.
func NewHealthAware(g fabric.Geometry, recomputeEvery int) *HealthAware {
	if recomputeEvery <= 0 {
		recomputeEvery = 16
	}
	return &HealthAware{
		geom:           g,
		stress:         make([]uint64, g.NumFUs()),
		recomputeEvery: uint64(recomputeEvery),
	}
}

// Name implements Allocator.
func (h *HealthAware) Name() string {
	return fmt.Sprintf("health-aware/every=%d", h.recomputeEvery)
}

// SetHealth implements HealthSetter.
func (h *HealthAware) SetHealth(hm *fabric.Health) {
	h.health = hm
	if hm != nil {
		h.healthVer = hm.Version()
	}
}

// Next implements Allocator.
func (h *HealthAware) Next(cfg *fabric.Config) fabric.Offset {
	stale := h.health != nil && h.healthVer != h.health.Version()
	if (h.count%h.recomputeEvery == 0 || stale) && cfg != nil {
		if stale {
			h.healthVer = h.health.Version()
		}
		h.current = h.bestOffset(cfg)
	}
	h.count++
	return h.current
}

// bestOffset scans all pivots and picks the one whose placement touches the
// least-stressed cells: minimise the maximum projected stress, break ties
// by total stress, then by row-major order for determinism. Pivots whose
// placement would drive a dead FU are excluded (dead cells stop accruing
// stress, so without the exclusion their frozen-low stress would make the
// search actively prefer them); when no live pivot exists the first offset
// is returned and the controller's own health check rejects the offload.
func (h *HealthAware) bestOffset(cfg *fabric.Config) fabric.Offset {
	cells := cfg.Cells()
	checkHealth := h.health != nil && h.health.DeadCount() > 0
	best := fabric.Offset{}
	bestMax := ^uint64(0)
	bestSum := ^uint64(0)
	for r := 0; r < h.geom.Rows; r++ {
		for c := 0; c < h.geom.Cols; c++ {
			off := fabric.Offset{Row: r, Col: c}
			if checkHealth && !h.health.PlacementOK(cells, off) {
				continue
			}
			var maxS, sumS uint64
			for _, cell := range cells {
				p := off.Apply(cell, h.geom)
				s := h.stress[p.Row*h.geom.Cols+p.Col]
				if s > maxS {
					maxS = s
				}
				sumS += s
			}
			if maxS < bestMax || (maxS == bestMax && sumS < bestSum) {
				best, bestMax, bestSum = off, maxS, sumS
			}
		}
	}
	return best
}

// ObserveStress implements StressObserver.
func (h *HealthAware) ObserveStress(cells []fabric.Cell, off fabric.Offset, cycles uint64) {
	for _, cell := range cells {
		p := off.Apply(cell, h.geom)
		h.stress[p.Row*h.geom.Cols+p.Col] += cycles
	}
}

var _ Allocator = (*HealthAware)(nil)
var _ StressObserver = (*HealthAware)(nil)
