package alloc

import (
	"testing"

	"agingcgra/internal/fabric"
)

func TestBaselineAlwaysOrigin(t *testing.T) {
	var b Baseline
	cfg := &fabric.Config{Geom: fabric.NewGeometry(2, 8)}
	for i := 0; i < 10; i++ {
		if off := b.Next(cfg); off != (fabric.Offset{}) {
			t.Fatalf("baseline moved: %v", off)
		}
	}
	if b.Name() != "baseline" {
		t.Error("name wrong")
	}
}

// fullCoverage asserts a pattern visits every grid position exactly once.
func fullCoverage(t *testing.T, p Pattern, g fabric.Geometry) {
	t.Helper()
	seq := p.Sequence(g)
	if len(seq) != g.NumFUs() {
		t.Fatalf("%s: sequence length %d, want %d", p.Name(), len(seq), g.NumFUs())
	}
	seen := make(map[fabric.Offset]bool)
	for _, o := range seq {
		if o.Row < 0 || o.Row >= g.Rows || o.Col < 0 || o.Col >= g.Cols {
			t.Fatalf("%s: offset %v out of bounds", p.Name(), o)
		}
		if seen[o] {
			t.Fatalf("%s: offset %v visited twice", p.Name(), o)
		}
		seen[o] = true
	}
}

func TestFullCoveragePatterns(t *testing.T) {
	geoms := []fabric.Geometry{
		fabric.NewGeometry(2, 16),
		fabric.NewGeometry(4, 32),
		fabric.NewGeometry(8, 32),
		fabric.NewGeometry(1, 8),
	}
	for _, g := range geoms {
		fullCoverage(t, Snake{}, g)
		fullCoverage(t, RowMajor{}, g)
		fullCoverage(t, Diagonal{}, g)
		fullCoverage(t, Shuffled{Seed: 42}, g)
	}
}

func TestSnakeAdjacency(t *testing.T) {
	// The snake moves one step at a time: consecutive offsets differ by one
	// column within a row, or one row at row changes (Fig. 3b).
	g := fabric.NewGeometry(4, 8)
	seq := Snake{}.Sequence(g)
	for i := 1; i < len(seq); i++ {
		dr := seq[i].Row - seq[i-1].Row
		dc := seq[i].Col - seq[i-1].Col
		if dr < 0 {
			dr = -dr
		}
		if dc < 0 {
			dc = -dc
		}
		if dr+dc != 1 {
			t.Fatalf("snake step %d: %v -> %v is not adjacent", i, seq[i-1], seq[i])
		}
	}
}

func TestPartialPatterns(t *testing.T) {
	g := fabric.NewGeometry(4, 8)
	h := HorizontalOnly{}.Sequence(g)
	if len(h) != g.Cols {
		t.Errorf("horizontal-only length %d, want %d", len(h), g.Cols)
	}
	for _, o := range h {
		if o.Row != 0 {
			t.Errorf("horizontal-only moved vertically: %v", o)
		}
	}
	v := VerticalOnly{}.Sequence(g)
	if len(v) != g.Rows {
		t.Errorf("vertical-only length %d, want %d", len(v), g.Rows)
	}
	for _, o := range v {
		if o.Col != 0 {
			t.Errorf("vertical-only moved horizontally: %v", o)
		}
	}
}

func TestShuffledDeterministicPerSeed(t *testing.T) {
	g := fabric.NewGeometry(4, 8)
	a := Shuffled{Seed: 7}.Sequence(g)
	b := Shuffled{Seed: 7}.Sequence(g)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed produced different sequences")
		}
	}
	c := Shuffled{Seed: 8}.Sequence(g)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical sequences")
	}
}

func TestUtilizationAwareWalk(t *testing.T) {
	g := fabric.NewGeometry(2, 4)
	u := NewUtilizationAware(g)
	cfg := &fabric.Config{StartPC: 0x1000, Geom: g}
	seq := Snake{}.Sequence(g)
	for epoch := 0; epoch < 2; epoch++ {
		for i, want := range seq {
			if got := u.Next(cfg); got != want {
				t.Fatalf("epoch %d step %d: got %v, want %v", epoch, i, got, want)
			}
		}
	}
}

func TestUtilizationAwarePeriod(t *testing.T) {
	g := fabric.NewGeometry(2, 4)
	u := NewUtilizationAware(g, WithPeriod(3))
	cfg := &fabric.Config{StartPC: 0x1000, Geom: g}
	first := u.Next(cfg)
	if u.Next(cfg) != first || u.Next(cfg) != first {
		t.Fatal("pivot moved before period elapsed")
	}
	if u.Next(cfg) == first {
		t.Fatal("pivot did not move after period")
	}
}

func TestUtilizationAwarePerConfig(t *testing.T) {
	g := fabric.NewGeometry(2, 4)
	u := NewUtilizationAware(g, WithPerConfigPivot())
	a := &fabric.Config{StartPC: 0x1000, Geom: g}
	b := &fabric.Config{StartPC: 0x2000, Geom: g}
	seq := Snake{}.Sequence(g)
	// Interleaved executions: each config walks its own sequence.
	if u.Next(a) != seq[0] || u.Next(b) != seq[0] {
		t.Fatal("per-config walks should both start at seq[0]")
	}
	if u.Next(a) != seq[1] || u.Next(b) != seq[1] {
		t.Fatal("per-config walks should advance independently")
	}
}

func TestUtilizationAwareName(t *testing.T) {
	g := fabric.NewGeometry(2, 4)
	if got := NewUtilizationAware(g).Name(); got != "utilization-aware/snake" {
		t.Errorf("name = %q", got)
	}
	got := NewUtilizationAware(g, WithPattern(Diagonal{}), WithPeriod(4), WithPerConfigPivot()).Name()
	if got != "utilization-aware/diagonal/per-config/period=4" {
		t.Errorf("name = %q", got)
	}
}

func TestHealthAwareAvoidsStressedCells(t *testing.T) {
	g := fabric.NewGeometry(2, 4)
	h := NewHealthAware(g, 1)
	cfg := &fabric.Config{
		StartPC: 0x1000,
		Geom:    g,
		Ops: []fabric.PlacedOp{
			{Seq: 0, Row: 0, Col: 0, Width: 1},
		},
		UsedCols: 1,
	}
	// Stress everything except (1,2) heavily.
	for r := 0; r < 2; r++ {
		for c := 0; c < 4; c++ {
			if r == 1 && c == 2 {
				continue
			}
			h.ObserveStress([]fabric.Cell{{Row: r, Col: c}}, fabric.Offset{}, 1000)
		}
	}
	off := h.Next(cfg)
	placed := off.Apply(fabric.Cell{Row: 0, Col: 0}, g)
	if placed != (fabric.Cell{Row: 1, Col: 2}) {
		t.Errorf("health-aware placed on %v, want the cold cell (1,2)", placed)
	}
}

// TestHealthAwareAvoidsDeadCells pins the failure-adaptive behavior: a
// dead cell must never attract the pivot search (dead cells stop accruing
// stress, so without the health exclusion their frozen-low stress would
// make bestOffset actively prefer them), and a kill forces an immediate
// recompute even while the pivot is held between recompute periods.
func TestHealthAwareAvoidsDeadCells(t *testing.T) {
	g := fabric.NewGeometry(2, 4)
	h := NewHealthAware(g, 16) // long hold: the kill must break it
	hm := fabric.NewHealth(g)
	h.SetHealth(hm)
	cfg := &fabric.Config{
		StartPC:  0x1000,
		Geom:     g,
		Ops:      []fabric.PlacedOp{{Seq: 0, Row: 0, Col: 0, Width: 1}},
		UsedCols: 1,
	}
	// Leave (1,2) cold so the search picks it, then kill it.
	for r := 0; r < 2; r++ {
		for c := 0; c < 4; c++ {
			if r == 1 && c == 2 {
				continue
			}
			h.ObserveStress([]fabric.Cell{{Row: r, Col: c}}, fabric.Offset{}, 1000)
		}
	}
	off := h.Next(cfg)
	if placed := off.Apply(fabric.Cell{Row: 0, Col: 0}, g); placed != (fabric.Cell{Row: 1, Col: 2}) {
		t.Fatalf("pre-kill placement on %v, want the cold cell (1,2)", placed)
	}
	hm.Kill(fabric.Cell{Row: 1, Col: 2})
	for i := 0; i < 4; i++ {
		off = h.Next(cfg)
		placed := off.Apply(fabric.Cell{Row: 0, Col: 0}, g)
		if placed == (fabric.Cell{Row: 1, Col: 2}) {
			t.Fatalf("call %d after kill still places on the dead cell", i)
		}
	}
}

func TestHealthAwareRecomputePeriod(t *testing.T) {
	g := fabric.NewGeometry(2, 4)
	h := NewHealthAware(g, 4)
	cfg := &fabric.Config{
		StartPC:  0x1000,
		Geom:     g,
		Ops:      []fabric.PlacedOp{{Seq: 0, Row: 0, Col: 0, Width: 1}},
		UsedCols: 1,
	}
	first := h.Next(cfg)
	for i := 0; i < 3; i++ {
		if got := h.Next(cfg); got != first {
			t.Fatal("pivot changed within hold period")
		}
	}
}

func TestHealthAwareBalancesOverTime(t *testing.T) {
	// Repeatedly executing one small config must spread stress instead of
	// hammering one cell.
	g := fabric.NewGeometry(2, 8)
	h := NewHealthAware(g, 1)
	cfg := &fabric.Config{
		StartPC:  0x1000,
		Geom:     g,
		Ops:      []fabric.PlacedOp{{Seq: 0, Row: 0, Col: 0, Width: 1}},
		UsedCols: 1,
	}
	for i := 0; i < 160; i++ {
		off := h.Next(cfg)
		h.ObserveStress(cfg.Cells(), off, 10)
	}
	var maxS, minS uint64 = 0, ^uint64(0)
	for _, s := range h.stress {
		if s > maxS {
			maxS = s
		}
		if s < minS {
			minS = s
		}
	}
	// 160 executions over 16 cells: perfectly balanced would be 100 each.
	if maxS > 2*minS+20 {
		t.Errorf("health-aware imbalance: min %d max %d", minS, maxS)
	}
}
