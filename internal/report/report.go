// Package report renders experiment results in the shapes the paper's
// figures and tables use: per-FU utilization heat maps (Figs. 1 and 7),
// aligned text tables (Tables I and II), and CSV series for the scatter
// and density plots (Figs. 6 and 8).
package report

import (
	"fmt"
	"io"
	"strings"

	"agingcgra/internal/core"
	"agingcgra/internal/stats"
)

// Heatmap renders a utilization map as rows of percentages, row 1 on top,
// like the paper's Fig. 1/7 grids.
func Heatmap(u *core.UtilizationMap) string {
	var b strings.Builder
	g := u.Geom
	b.WriteString("      ")
	for c := 0; c < g.Cols; c++ {
		fmt.Fprintf(&b, " C%-3d", c+1)
	}
	b.WriteByte('\n')
	for r := 0; r < g.Rows; r++ {
		fmt.Fprintf(&b, "  R%-2d ", r+1)
		for c := 0; c < g.Cols; c++ {
			fmt.Fprintf(&b, " %3.0f%%", 100*u.At(r, c))
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// HeatmapComparison renders two maps (e.g. baseline vs proposed) stacked,
// like Fig. 7.
func HeatmapComparison(titleA string, a *core.UtilizationMap, titleB string, b *core.UtilizationMap) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s\n%s", titleA, Heatmap(a))
	fmt.Fprintf(&sb, "%s\n%s", titleB, Heatmap(b))
	return sb.String()
}

// Table renders an aligned text table with a header row.
type Table struct {
	Header []string
	Rows   [][]string
}

// AddRow appends a row of cells.
func (t *Table) AddRow(cells ...string) {
	t.Rows = append(t.Rows, cells)
}

// String renders the table with aligned columns.
func (t *Table) String() string {
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Header)
	sep := make([]string, len(t.Header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range t.Rows {
		writeRow(row)
	}
	return b.String()
}

// WriteCSV writes rows as comma-separated values. Cells containing commas
// or quotes are quoted.
func WriteCSV(w io.Writer, header []string, rows [][]string) error {
	esc := func(s string) string {
		if strings.ContainsAny(s, ",\"\n") {
			return `"` + strings.ReplaceAll(s, `"`, `""`) + `"`
		}
		return s
	}
	writeLine := func(cells []string) error {
		out := make([]string, len(cells))
		for i, c := range cells {
			out[i] = esc(c)
		}
		_, err := fmt.Fprintln(w, strings.Join(out, ","))
		return err
	}
	if err := writeLine(header); err != nil {
		return err
	}
	for _, r := range rows {
		if err := writeLine(r); err != nil {
			return err
		}
	}
	return nil
}

// UtilizationPDF renders a textual density plot of FU utilizations: the
// Fig. 8 (top) panels.
func UtilizationPDF(title string, duty []float64, bins int) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", title)
	hist := stats.Histogram(duty, bins, 0, 1)
	maxFrac := 0.0
	for _, h := range hist {
		if h.Frac > maxFrac {
			maxFrac = h.Frac
		}
	}
	for _, h := range hist {
		barLen := 0
		if maxFrac > 0 {
			barLen = int(40 * h.Frac / maxFrac)
		}
		fmt.Fprintf(&b, "  %4.0f%%-%3.0f%% |%-40s| %5.1f%%\n",
			100*h.Lo, 100*h.Hi, strings.Repeat("#", barLen), 100*h.Frac)
	}
	return b.String()
}

// SearchCostRow is one scenario's derived search-overhead summary for
// SearchCostTable: cycles per search family, the per-offload amortisation
// and the overhead fraction against the simulated execution cycles.
type SearchCostRow struct {
	Name              string
	ExplorerCycles    float64
	RemapCycles       float64
	TranslationCycles float64
	RecoveryCycles    float64
	TotalCycles       float64
	EnergyNJ          float64
	PerOffloadCycles  float64
	OverheadFrac      float64
}

// SearchCostTable renders the derived hardware cost of the placement and
// shape searches — the numbers replacing the "asserted cheap" hold-period
// story — as an aligned table, one row per scenario.
func SearchCostTable(rows []SearchCostRow) string {
	t := &Table{Header: []string{
		"scenario", "explorer", "remap", "translation", "recovery", "total", "energy", "per-offload", "overhead",
	}}
	for _, r := range rows {
		t.AddRow(
			r.Name,
			fmt.Sprintf("%.3gcy", r.ExplorerCycles),
			fmt.Sprintf("%.3gcy", r.RemapCycles),
			fmt.Sprintf("%.3gcy", r.TranslationCycles),
			fmt.Sprintf("%.3gcy", r.RecoveryCycles),
			fmt.Sprintf("%.3gcy", r.TotalCycles),
			fmt.Sprintf("%.3guJ", r.EnergyNJ/1e3),
			fmt.Sprintf("%.2fcy", r.PerOffloadCycles),
			fmt.Sprintf("%.2f%%", 100*r.OverheadFrac),
		)
	}
	return t.String()
}

// RecoveryRow is one scenario's detection/quarantine/recovery summary for
// RecoveryTable: the runtime's measured view cross-referenced against
// ground truth at the horizon.
type RecoveryRow struct {
	Name               string
	Faulted            uint64
	Detected           uint64
	Escapes            uint64
	Retries            uint64
	Backoffs           uint64
	Quarantines        uint64
	Reinstated         uint64
	TrueDead           int
	ObservedDead       int
	FalseNegatives     int
	FalsePositivesOpen int
	MeanLatencyYears   float64
}

// RecoveryTable renders the fault-recovery summary of a lifetime batch as
// an aligned table, one row per recovery-enabled scenario.
func RecoveryTable(rows []RecoveryRow) string {
	t := &Table{Header: []string{
		"scenario", "faulted", "detected", "escapes", "retries", "backoffs",
		"quarantined", "reinstated", "dead(true/obs)", "fneg", "fpos-open", "latency",
	}}
	for _, r := range rows {
		lat := "-"
		if r.MeanLatencyYears > 0 {
			lat = fmt.Sprintf("%.2fy", r.MeanLatencyYears)
		}
		t.AddRow(
			r.Name,
			fmt.Sprintf("%d", r.Faulted),
			fmt.Sprintf("%d", r.Detected),
			fmt.Sprintf("%d", r.Escapes),
			fmt.Sprintf("%d", r.Retries),
			fmt.Sprintf("%d", r.Backoffs),
			fmt.Sprintf("%d", r.Quarantines),
			fmt.Sprintf("%d", r.Reinstated),
			fmt.Sprintf("%d/%d", r.TrueDead, r.ObservedDead),
			fmt.Sprintf("%d", r.FalseNegatives),
			fmt.Sprintf("%d", r.FalsePositivesOpen),
			lat,
		)
	}
	return t.String()
}

// Sparkline renders values as a compact unicode bar string, used in
// delay-over-time summaries.
func Sparkline(xs []float64) string {
	if len(xs) == 0 {
		return ""
	}
	levels := []rune("▁▂▃▄▅▆▇█")
	maxV := xs[0]
	for _, x := range xs {
		if x > maxV {
			maxV = x
		}
	}
	var b strings.Builder
	for _, x := range xs {
		i := 0
		if maxV > 0 {
			i = int(x / maxV * float64(len(levels)-1))
		}
		if i < 0 {
			i = 0
		}
		if i >= len(levels) {
			i = len(levels) - 1
		}
		b.WriteRune(levels[i])
	}
	return b.String()
}
