package report

import (
	"strings"
	"testing"

	"agingcgra/internal/fabric"
	"agingcgra/internal/trace"
)

// traceFixture is a small hand-built stream covering every renderer
// branch: a cell-scoped event, a count-scoped event, an epoch summary
// and a snapshot.
func traceFixture() []trace.Event {
	return []trace.Event{
		{
			Kind: trace.KindDeath, Scenario: "BE", Epoch: 2, Years: 1.5,
			Cell: &fabric.Cell{Row: 1, Col: 3}, AgeYears: 1.25,
		},
		{
			Kind: trace.KindFault, Scenario: "BE", Epoch: 2, Years: 1.5,
			Count: 7, Detected: 5, Escapes: 2,
		},
		{
			Kind: trace.KindEpoch, Scenario: "BE", Epoch: 2, Years: 1.5,
			Replayed: true, Speedup: 2.25, AliveFraction: 0.875,
			WorstUtil: 0.9, MeanUtil: 0.45, Offloads: 12, Deaths: 1,
			SearchCycles: 1000, RecoveryCycles: 250,
		},
		{
			Kind: trace.KindSnapshot, Scenario: "BE", Epoch: 2, Years: 1.5,
			Rows: 2, Cols: 2,
			Duty:      []float64{0, 0.5, 1, 0.25},
			WearYears: []float64{0.1, 0.2, 0.3, 0.4},
			Dead:      []int{2}, ObservedDead: []int{1},
		},
	}
}

func TestTraceEventsCSV(t *testing.T) {
	var b strings.Builder
	if err := TraceEventsCSV(&b, traceFixture()); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(b.String(), "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("want header + 3 rows (snapshot excluded), got %d lines:\n%s",
			len(lines), b.String())
	}
	if !strings.HasPrefix(lines[0], "scenario,epoch,years,kind,cell,") {
		t.Errorf("bad header: %q", lines[0])
	}
	if want := "BE,2,1.5,death,r1c3,1.25,0,"; !strings.HasPrefix(lines[1], want) {
		t.Errorf("death row %q does not start with %q", lines[1], want)
	}
	if !strings.Contains(lines[2], ",fault,,0,0,7,5,2,") {
		t.Errorf("fault row missing counts: %q", lines[2])
	}
	if !strings.Contains(lines[3], ",epoch,") ||
		!strings.Contains(lines[3], ",1,2.25,0.875,0.9,0.45,12,1,1000,250") {
		t.Errorf("epoch row missing summary fields: %q", lines[3])
	}
}

func TestTraceSnapshotsCSV(t *testing.T) {
	var b strings.Builder
	if err := TraceSnapshotsCSV(&b, traceFixture()); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(b.String(), "\n"), "\n")
	if len(lines) != 5 {
		t.Fatalf("want header + 4 FU rows, got %d lines:\n%s", len(lines), b.String())
	}
	if lines[0] != "scenario,epoch,years,row,col,duty,wear_years,dead,observed_dead" {
		t.Errorf("bad header: %q", lines[0])
	}
	// Index 1 is row 0 col 1, observed-dead; index 2 is row 1 col 0, dead.
	if lines[2] != "BE,2,1.5,0,1,0.5,0.2,0,1" {
		t.Errorf("observed-dead row: %q", lines[2])
	}
	if lines[3] != "BE,2,1.5,1,0,1,0.3,1,0" {
		t.Errorf("dead row: %q", lines[3])
	}
}

func TestTraceHTML(t *testing.T) {
	var b strings.Builder
	if err := TraceHTML(&b, `demo <&> run`, traceFixture()); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, "demo &lt;&amp;&gt; run") {
		t.Error("title not HTML-escaped")
	}
	if !strings.Contains(out, `"kind":"snapshot"`) || !strings.Contains(out, `"wear_years"`) {
		t.Error("event data not embedded")
	}
	if !strings.Contains(out, "<!doctype html>") || !strings.Contains(out, "</html>") {
		t.Error("not a complete HTML document")
	}
	if strings.Contains(out, "http://") || strings.Contains(out, "https://") {
		t.Error("report must be standalone: no external resources")
	}
}

// TestTraceHTMLScriptSafe pins the injection guard: event text containing
// a script terminator must not break out of the embedded JSON, because
// json.Marshal escapes angle brackets.
func TestTraceHTMLScriptSafe(t *testing.T) {
	events := []trace.Event{{Kind: trace.KindEpoch, Scenario: `</script><script>alert(1)`}}
	var b strings.Builder
	if err := TraceHTML(&b, "t", events); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(b.String(), "</script><script>alert(1)") {
		t.Fatal("scenario name escaped the script block")
	}
}

// TestTraceCSVEmpty keeps the renderers total: an empty stream still
// yields a header-only CSV, not an error.
func TestTraceCSVEmpty(t *testing.T) {
	var ev, snap strings.Builder
	if err := TraceEventsCSV(&ev, nil); err != nil {
		t.Fatal(err)
	}
	if err := TraceSnapshotsCSV(&snap, nil); err != nil {
		t.Fatal(err)
	}
	if strings.Count(ev.String(), "\n") != 1 || strings.Count(snap.String(), "\n") != 1 {
		t.Error("empty stream should render a header-only CSV")
	}
}
