package report

import (
	"encoding/json"
	"fmt"
	"html"
	"io"
	"strconv"
	"strings"

	"agingcgra/internal/trace"
)

// fmtFloat renders a float for CSV with the shortest round-trip form, so
// the artifacts are byte-stable across runs.
func fmtFloat(v float64) string {
	if v == 0 {
		return "0"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

func fmtCell(e trace.Event) string {
	if e.Cell == nil {
		return ""
	}
	return fmt.Sprintf("r%dc%d", e.Cell.Row, e.Cell.Col)
}

func fmtBool(b bool) string {
	if b {
		return "1"
	}
	return "0"
}

// TraceEventsCSV writes every non-snapshot event as one CSV row: the
// flat event schema with a scenario column, in emission order. Snapshot
// events carry per-cell series and go to TraceSnapshotsCSV instead.
func TraceEventsCSV(w io.Writer, events []trace.Event) error {
	header := []string{
		"scenario", "epoch", "years", "kind", "cell", "age_years",
		"truth_dead", "count", "detected", "escapes", "replayed",
		"speedup", "alive_fraction", "worst_util", "mean_util",
		"offloads", "deaths", "search_cycles", "recovery_cycles",
	}
	var rows [][]string
	for _, e := range events {
		if e.Kind == trace.KindSnapshot {
			continue
		}
		rows = append(rows, []string{
			e.Scenario,
			strconv.Itoa(e.Epoch),
			fmtFloat(e.Years),
			e.Kind,
			fmtCell(e),
			fmtFloat(e.AgeYears),
			fmtBool(e.TruthDead),
			strconv.FormatUint(e.Count, 10),
			strconv.FormatUint(e.Detected, 10),
			strconv.FormatUint(e.Escapes, 10),
			fmtBool(e.Replayed),
			fmtFloat(e.Speedup),
			fmtFloat(e.AliveFraction),
			fmtFloat(e.WorstUtil),
			fmtFloat(e.MeanUtil),
			strconv.FormatUint(e.Offloads, 10),
			strconv.Itoa(e.Deaths),
			fmtFloat(e.SearchCycles),
			fmtFloat(e.RecoveryCycles),
		})
	}
	return WriteCSV(w, header, rows)
}

// TraceSnapshotsCSV writes the heatmap snapshots in long format: one row
// per FU per snapshot (scenario, epoch, cell position, duty, accumulated
// wear, ground-truth dead flag, observed-dead flag), ready for pivoting
// into the Fig. 7-style per-FU density plots.
func TraceSnapshotsCSV(w io.Writer, events []trace.Event) error {
	header := []string{
		"scenario", "epoch", "years", "row", "col",
		"duty", "wear_years", "dead", "observed_dead",
	}
	var rows [][]string
	for _, e := range events {
		if e.Kind != trace.KindSnapshot || e.Cols == 0 {
			continue
		}
		dead := make(map[int]bool, len(e.Dead))
		for _, i := range e.Dead {
			dead[i] = true
		}
		observed := make(map[int]bool, len(e.ObservedDead))
		for _, i := range e.ObservedDead {
			observed[i] = true
		}
		for i := range e.Duty {
			wearYears := 0.0
			if i < len(e.WearYears) {
				wearYears = e.WearYears[i]
			}
			rows = append(rows, []string{
				e.Scenario,
				strconv.Itoa(e.Epoch),
				fmtFloat(e.Years),
				strconv.Itoa(i / e.Cols),
				strconv.Itoa(i % e.Cols),
				fmtFloat(e.Duty[i]),
				fmtFloat(wearYears),
				fmtBool(dead[i]),
				fmtBool(observed[i]),
			})
		}
	}
	return WriteCSV(w, header, rows)
}

// TraceHTML writes a standalone, self-contained observability report: a
// per-snapshot heatmap grid (duty or accumulated wear per FU, dead cells
// crossed out), the death/quarantine timeline, and the per-epoch
// search/recovery cost strip — one section per scenario, no external
// resources. The output is a pure function of the event list, so it is
// golden-testable byte for byte.
func TraceHTML(w io.Writer, title string, events []trace.Event) error {
	data, err := json.Marshal(events)
	if err != nil {
		return err
	}
	page := strings.NewReplacer(
		"__TITLE__", html.EscapeString(title),
		"__DATA__", string(data), // json.Marshal escapes <, >, & — script-safe
	).Replace(traceHTMLPage)
	_, err = io.WriteString(w, page)
	return err
}

const traceHTMLPage = `<!doctype html>
<html lang="en">
<head>
<meta charset="utf-8">
<title>__TITLE__</title>
<style>
body { font: 13px/1.5 system-ui, sans-serif; margin: 1.5em; color: #222; }
h1 { font-size: 1.3em; } h2 { font-size: 1.1em; margin: 1.4em 0 .4em; }
h3 { font-size: .95em; margin: 1em 0 .3em; color: #444; }
.legend { color: #666; font-size: .85em; margin: .2em 0 .8em; }
.snaps { display: flex; flex-wrap: wrap; gap: 10px; }
.snap { text-align: center; }
.snap .cap { font-size: .75em; color: #555; }
.grid { border-collapse: collapse; }
.grid td { width: 14px; height: 14px; border: 1px solid #ddd; font-size: 0; }
.grid td.dead { background: #111 !important; position: relative; }
.grid td.obs { outline: 2px solid #e91e63; outline-offset: -2px; }
.timeline { position: relative; height: 64px; border-left: 1px solid #999;
  border-bottom: 1px solid #999; margin: .5em 0 1.5em; }
.timeline .ev { position: absolute; bottom: 0; width: 2px; height: 40px; }
.timeline .death { background: #c62828; }
.timeline .quarantine { background: #e91e63; height: 26px; }
.timeline .reinstate { background: #2e7d32; height: 26px; }
.timeline .tick { position: absolute; bottom: -18px; font-size: .7em; color: #666;
  transform: translateX(-50%); }
.costs { display: flex; align-items: flex-end; gap: 1px; height: 60px;
  border-left: 1px solid #999; border-bottom: 1px solid #999; margin-bottom: 1.5em; }
.costs .bar { width: 10px; background: #1565c0; }
.costs .bar .rec { background: #ef6c00; width: 100%; }
.costs .bar.replayed { opacity: .45; }
table.kpi { border-collapse: collapse; margin: .3em 0 .8em; }
table.kpi td, table.kpi th { border: 1px solid #ccc; padding: 2px 8px; font-size: .85em; }
select { margin-bottom: .6em; }
</style>
</head>
<body>
<h1>__TITLE__</h1>
<p class="legend">Heatmaps: one grid per epoch snapshot; black = dead FU,
pink outline = quarantined (observed dead). Timeline: red = death,
pink = quarantine, green = reinstate. Cost strip: blue = search cycles,
orange = recovery cycles; faded bars are memo-replayed epochs.</p>
<label>Heatmap metric:
<select id="metric"><option value="duty">duty cycle</option>
<option value="wear">accumulated wear (years)</option></select></label>
<div id="app"></div>
<script>
"use strict";
const EVENTS = __DATA__;
const byScenario = new Map();
for (const e of EVENTS) {
  if (!byScenario.has(e.scenario)) byScenario.set(e.scenario, []);
  byScenario.get(e.scenario).push(e);
}
const app = document.getElementById("app");
function el(tag, cls, parent) {
  const n = document.createElement(tag);
  if (cls) n.className = cls;
  if (parent) parent.appendChild(n);
  return n;
}
function heat(v, max) {
  const t = max > 0 ? Math.min(v / max, 1) : 0;
  const l = 95 - 55 * t;
  return "hsl(" + (220 - 180 * t) + ",85%," + l + "%)";
}
function render() {
  app.textContent = "";
  const metric = document.getElementById("metric").value;
  for (const [name, evs] of byScenario) {
    const sec = el("section", "", app);
    el("h2", "", sec).textContent = name;
    const snaps = evs.filter(e => e.kind === "snapshot");
    const epochs = evs.filter(e => e.kind === "epoch");
    const maxYears = evs.length ? Math.max(...evs.map(e => e.years)) : 0;

    const kpi = el("table", "kpi", sec);
    const last = epochs[epochs.length - 1];
    kpi.innerHTML = "<tr><th>epochs</th><th>replayed</th><th>final speedup</th>" +
      "<th>final alive</th><th>deaths</th></tr>" +
      "<tr><td>" + epochs.length + "</td><td>" +
      epochs.filter(e => e.replayed).length + "</td><td>" +
      (last ? (last.speedup || 0).toFixed(2) : "-") + "</td><td>" +
      (last ? (100 * (last.alive_fraction || 0)).toFixed(0) + "%" : "-") + "</td><td>" +
      evs.filter(e => e.kind === "death").length + "</td></tr>";

    el("h3", "", sec).textContent = "per-FU " +
      (metric === "duty" ? "duty" : "wear") + " heatmaps";
    const strip = el("div", "snaps", sec);
    const series = s => metric === "duty" ? (s.duty || []) : (s.wear_years || []);
    const maxV = Math.max(0, ...snaps.flatMap(s => series(s)));
    for (const s of snaps) {
      const box = el("div", "snap", strip);
      const grid = el("table", "grid", box);
      const dead = new Set(s.dead || []), obs = new Set(s.observed_dead || []);
      const vals = series(s);
      for (let r = 0; r < (s.rows || 0); r++) {
        const tr = el("tr", "", grid);
        for (let c = 0; c < (s.cols || 0); c++) {
          const i = r * s.cols + c;
          const td = el("td", "", tr);
          const v = vals[i] || 0;
          td.style.background = heat(v, maxV);
          td.title = "r" + r + "c" + c + ": " + v.toFixed(3);
          if (dead.has(i)) td.className = "dead";
          else if (obs.has(i)) td.className = "obs";
        }
      }
      el("div", "cap", box).textContent = s.years.toFixed(1) + "y";
    }

    el("h3", "", sec).textContent = "death / quarantine timeline";
    const tl = el("div", "timeline", sec);
    for (const e of evs) {
      if (e.kind !== "death" && e.kind !== "quarantine" && e.kind !== "reinstate") continue;
      const m = el("div", "ev " + e.kind, tl);
      const y = e.kind === "death" ? e.age_years : e.years;
      m.style.left = (maxYears > 0 ? 100 * y / maxYears : 0) + "%";
      m.title = e.kind + (e.cell ? " r" + e.cell.Row + "c" + e.cell.Col : "") +
        " @ " + y.toFixed(2) + "y";
    }
    for (let y = 0; y <= maxYears; y += Math.max(1, Math.ceil(maxYears / 10))) {
      const t = el("div", "tick", tl);
      t.style.left = (maxYears > 0 ? 100 * y / maxYears : 0) + "%";
      t.textContent = y + "y";
    }

    el("h3", "", sec).textContent = "search / recovery cost per epoch (cycles)";
    const costs = el("div", "costs", sec);
    const maxC = Math.max(1, ...epochs.map(e => e.search_cycles || 0));
    for (const e of epochs) {
      const total = e.search_cycles || 0, rec = e.recovery_cycles || 0;
      const bar = el("div", "bar" + (e.replayed ? " replayed" : ""), costs);
      bar.style.height = Math.max(1, 58 * total / maxC) + "px";
      const r = el("div", "rec", bar);
      r.style.height = (total > 0 ? 100 * rec / total : 0) + "%";
      bar.title = "epoch " + e.epoch + ": " + total.toFixed(0) +
        " search cycles (" + rec.toFixed(0) + " recovery)" +
        (e.replayed ? " [replayed]" : "");
    }
  }
}
document.getElementById("metric").addEventListener("change", render);
render();
</script>
</body>
</html>
`
