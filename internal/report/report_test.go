package report

import (
	"strings"
	"testing"

	"agingcgra/internal/core"
	"agingcgra/internal/fabric"
)

func testMap(t *testing.T) *core.UtilizationMap {
	t.Helper()
	g := fabric.NewGeometry(2, 4)
	tr := core.NewTracker(g)
	tr.Record([]fabric.Cell{{Row: 0, Col: 0}, {Row: 0, Col: 1}}, fabric.Offset{}, 10)
	tr.Record([]fabric.Cell{{Row: 0, Col: 0}}, fabric.Offset{}, 10)
	return tr.Utilization()
}

func TestHeatmap(t *testing.T) {
	out := Heatmap(testMap(t))
	if !strings.Contains(out, "R1") || !strings.Contains(out, "C4") {
		t.Errorf("missing labels:\n%s", out)
	}
	if !strings.Contains(out, "100%") {
		t.Errorf("expected a 100%% cell:\n%s", out)
	}
	if !strings.Contains(out, " 50%") {
		t.Errorf("expected a 50%% cell:\n%s", out)
	}
	if lines := strings.Count(out, "\n"); lines != 3 {
		t.Errorf("expected header + 2 rows, got %d lines", lines)
	}
}

func TestHeatmapComparison(t *testing.T) {
	u := testMap(t)
	out := HeatmapComparison("Baseline", u, "Proposed", u)
	if !strings.Contains(out, "Baseline") || !strings.Contains(out, "Proposed") {
		t.Error("missing titles")
	}
	if strings.Count(out, "R1") != 2 {
		t.Error("expected two stacked heatmaps")
	}
}

func TestTable(t *testing.T) {
	tab := &Table{Header: []string{"Scenario", "Improvement"}}
	tab.AddRow("BE", "2.29x")
	tab.AddRow("BP", "4.37x")
	out := tab.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("lines = %d, want 4:\n%s", len(lines), out)
	}
	if !strings.HasPrefix(lines[0], "Scenario") {
		t.Error("missing header")
	}
	if !strings.Contains(lines[1], "---") {
		t.Error("missing separator")
	}
	// Alignment: all rows equal width prefix columns.
	if !strings.Contains(lines[2], "BE        2.29x") {
		t.Errorf("row misaligned: %q", lines[2])
	}
}

func TestWriteCSV(t *testing.T) {
	var b strings.Builder
	err := WriteCSV(&b, []string{"a", "b"}, [][]string{
		{"1", "plain"},
		{"2", `with,comma and "quote"`},
	})
	if err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, "a,b\n") {
		t.Error("missing header line")
	}
	if !strings.Contains(out, `"with,comma and ""quote"""`) {
		t.Errorf("bad escaping:\n%s", out)
	}
}

func TestUtilizationPDF(t *testing.T) {
	out := UtilizationPDF("BE baseline", []float64{0.1, 0.1, 0.9}, 10)
	if !strings.Contains(out, "BE baseline") {
		t.Error("missing title")
	}
	if !strings.Contains(out, "#") {
		t.Error("missing bars")
	}
	if strings.Count(out, "\n") != 11 {
		t.Errorf("want 10 bins + title:\n%s", out)
	}
}

func TestSparkline(t *testing.T) {
	if Sparkline(nil) != "" {
		t.Error("empty input should render empty")
	}
	s := Sparkline([]float64{0, 0.5, 1})
	if len([]rune(s)) != 3 {
		t.Errorf("sparkline runes = %d, want 3", len([]rune(s)))
	}
	runes := []rune(s)
	if runes[0] >= runes[2] {
		t.Error("sparkline should rise with values")
	}
}
