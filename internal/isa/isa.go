// Package isa defines the RV32IM instruction subset used throughout the
// simulator: instruction representation, classification, binary encoding and
// a small two-pass assembler.
//
// The subset covers the integer base ISA (RV32I) plus the M extension, which
// is what the MiBench-style workloads in internal/prog need. Instructions are
// kept in decoded form (Inst) everywhere; the binary encoding in encode.go
// exists for fidelity and round-trip testing.
package isa

import "fmt"

// Op identifies an operation of the RV32IM subset.
type Op uint8

// Operations. The order groups them by instruction class; use the Class
// method rather than numeric ranges.
const (
	// Invalid is the zero Op. It never appears in assembled programs.
	Invalid Op = iota

	// RV32I register-register.
	ADD
	SUB
	SLL
	SLT
	SLTU
	XOR
	SRL
	SRA
	OR
	AND

	// RV32M.
	MUL
	MULH
	MULHSU
	MULHU
	DIV
	DIVU
	REM
	REMU

	// RV32I register-immediate.
	ADDI
	SLTI
	SLTIU
	XORI
	ORI
	ANDI
	SLLI
	SRLI
	SRAI

	// Upper-immediate.
	LUI
	AUIPC

	// Loads.
	LB
	LH
	LW
	LBU
	LHU

	// Stores.
	SB
	SH
	SW

	// Conditional branches.
	BEQ
	BNE
	BLT
	BGE
	BLTU
	BGEU

	// Unconditional jumps.
	JAL
	JALR

	// Environment call; the runtime treats it as "halt".
	ECALL

	numOps
)

// Class partitions operations by their execution resource and latency
// behaviour. The CGRA fabric assigns functional-unit latencies per class.
type Class uint8

const (
	ClassALU    Class = iota // single-column integer ops, half a cycle
	ClassMul                 // multiplier ops
	ClassDiv                 // divider ops
	ClassLoad                // data-cache reads
	ClassStore               // data-cache writes
	ClassBranch              // conditional branches (compare + exit)
	ClassJump                // unconditional control transfer
	ClassSys                 // ecall; never mapped to the CGRA
)

// Format is the RISC-V instruction encoding format.
type Format uint8

const (
	FormatR Format = iota
	FormatI
	FormatS
	FormatB
	FormatU
	FormatJ
)

type opInfo struct {
	name   string
	format Format
	class  Class
}

var opTable = [numOps]opInfo{
	Invalid: {"invalid", FormatR, ClassSys},

	ADD:    {"add", FormatR, ClassALU},
	SUB:    {"sub", FormatR, ClassALU},
	SLL:    {"sll", FormatR, ClassALU},
	SLT:    {"slt", FormatR, ClassALU},
	SLTU:   {"sltu", FormatR, ClassALU},
	XOR:    {"xor", FormatR, ClassALU},
	SRL:    {"srl", FormatR, ClassALU},
	SRA:    {"sra", FormatR, ClassALU},
	OR:     {"or", FormatR, ClassALU},
	AND:    {"and", FormatR, ClassALU},
	MUL:    {"mul", FormatR, ClassMul},
	MULH:   {"mulh", FormatR, ClassMul},
	MULHSU: {"mulhsu", FormatR, ClassMul},
	MULHU:  {"mulhu", FormatR, ClassMul},
	DIV:    {"div", FormatR, ClassDiv},
	DIVU:   {"divu", FormatR, ClassDiv},
	REM:    {"rem", FormatR, ClassDiv},
	REMU:   {"remu", FormatR, ClassDiv},

	ADDI:  {"addi", FormatI, ClassALU},
	SLTI:  {"slti", FormatI, ClassALU},
	SLTIU: {"sltiu", FormatI, ClassALU},
	XORI:  {"xori", FormatI, ClassALU},
	ORI:   {"ori", FormatI, ClassALU},
	ANDI:  {"andi", FormatI, ClassALU},
	SLLI:  {"slli", FormatI, ClassALU},
	SRLI:  {"srli", FormatI, ClassALU},
	SRAI:  {"srai", FormatI, ClassALU},

	LUI:   {"lui", FormatU, ClassALU},
	AUIPC: {"auipc", FormatU, ClassALU},

	LB:  {"lb", FormatI, ClassLoad},
	LH:  {"lh", FormatI, ClassLoad},
	LW:  {"lw", FormatI, ClassLoad},
	LBU: {"lbu", FormatI, ClassLoad},
	LHU: {"lhu", FormatI, ClassLoad},

	SB: {"sb", FormatS, ClassStore},
	SH: {"sh", FormatS, ClassStore},
	SW: {"sw", FormatS, ClassStore},

	BEQ:  {"beq", FormatB, ClassBranch},
	BNE:  {"bne", FormatB, ClassBranch},
	BLT:  {"blt", FormatB, ClassBranch},
	BGE:  {"bge", FormatB, ClassBranch},
	BLTU: {"bltu", FormatB, ClassBranch},
	BGEU: {"bgeu", FormatB, ClassBranch},

	JAL:  {"jal", FormatJ, ClassJump},
	JALR: {"jalr", FormatI, ClassJump},

	ECALL: {"ecall", FormatI, ClassSys},
}

// String returns the assembly mnemonic of the operation.
func (o Op) String() string {
	if o >= numOps {
		return fmt.Sprintf("op(%d)", uint8(o))
	}
	return opTable[o].name
}

// Format returns the RISC-V encoding format of the operation.
func (o Op) Format() Format { return opTable[o].format }

// Class returns the execution class of the operation.
func (o Op) Class() Class { return opTable[o].class }

// Ops returns every valid operation, in declaration order. The slice is
// freshly allocated; callers may modify it.
func Ops() []Op {
	ops := make([]Op, 0, numOps-1)
	for o := Op(1); o < numOps; o++ {
		ops = append(ops, o)
	}
	return ops
}

// OpByName looks up an operation by its mnemonic. It returns Invalid and
// false if the mnemonic is unknown.
func OpByName(name string) (Op, bool) {
	for o := Op(1); o < numOps; o++ {
		if opTable[o].name == name {
			return o, true
		}
	}
	return Invalid, false
}

// Inst is a decoded instruction. Imm holds the sign-extended immediate for
// I/S/B/U/J formats (for U-format it is the value before the <<12 shift,
// matching assembly syntax).
type Inst struct {
	Op  Op
	Rd  Reg
	Rs1 Reg
	Rs2 Reg
	Imm int32
}

// WritesRd reports whether the instruction architecturally writes Rd.
// Writes to x0 are discarded by the core but still count as a destination
// for dependence analysis purposes only when the register is not x0.
func (i Inst) WritesRd() bool {
	switch i.Op.Format() {
	case FormatS, FormatB:
		return false
	}
	if i.Op == ECALL {
		return false
	}
	return i.Rd != X0
}

// ReadsRs1 reports whether the instruction reads Rs1.
func (i Inst) ReadsRs1() bool {
	switch i.Op.Format() {
	case FormatU, FormatJ:
		return false
	}
	if i.Op == ECALL {
		return false
	}
	return true
}

// ReadsRs2 reports whether the instruction reads Rs2.
func (i Inst) ReadsRs2() bool {
	switch i.Op.Format() {
	case FormatR, FormatS, FormatB:
		return true
	}
	return false
}

// IsLoad reports whether the instruction reads data memory.
func (i Inst) IsLoad() bool { return i.Op.Class() == ClassLoad }

// IsStore reports whether the instruction writes data memory.
func (i Inst) IsStore() bool { return i.Op.Class() == ClassStore }

// IsMem reports whether the instruction accesses data memory.
func (i Inst) IsMem() bool { return i.IsLoad() || i.IsStore() }

// IsBranch reports whether the instruction is a conditional branch.
func (i Inst) IsBranch() bool { return i.Op.Class() == ClassBranch }

// IsJump reports whether the instruction is an unconditional control
// transfer (jal/jalr).
func (i Inst) IsJump() bool { return i.Op.Class() == ClassJump }

// IsControl reports whether the instruction may redirect the PC.
func (i Inst) IsControl() bool { return i.IsBranch() || i.IsJump() }

// String renders the instruction in conventional assembly syntax.
func (i Inst) String() string {
	switch i.Op.Format() {
	case FormatR:
		return fmt.Sprintf("%s %s, %s, %s", i.Op, i.Rd, i.Rs1, i.Rs2)
	case FormatI:
		switch {
		case i.Op == ECALL:
			return "ecall"
		case i.IsLoad() || i.Op == JALR:
			return fmt.Sprintf("%s %s, %d(%s)", i.Op, i.Rd, i.Imm, i.Rs1)
		default:
			return fmt.Sprintf("%s %s, %s, %d", i.Op, i.Rd, i.Rs1, i.Imm)
		}
	case FormatS:
		return fmt.Sprintf("%s %s, %d(%s)", i.Op, i.Rs2, i.Imm, i.Rs1)
	case FormatB:
		return fmt.Sprintf("%s %s, %s, %d", i.Op, i.Rs1, i.Rs2, i.Imm)
	case FormatU:
		return fmt.Sprintf("%s %s, %d", i.Op, i.Rd, i.Imm)
	case FormatJ:
		return fmt.Sprintf("%s %s, %d", i.Op, i.Rd, i.Imm)
	}
	return i.Op.String()
}
