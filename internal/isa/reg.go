package isa

import "fmt"

// Reg is an architectural register index, x0 through x31.
type Reg uint8

// Architectural registers with their ABI roles.
const (
	X0  Reg = iota // zero: hardwired zero
	RA             // x1: return address
	SP             // x2: stack pointer
	GP             // x3: global pointer
	TP             // x4: thread pointer
	T0             // x5
	T1             // x6
	T2             // x7
	S0             // x8 (fp)
	S1             // x9
	A0             // x10: argument / return value
	A1             // x11
	A2             // x12
	A3             // x13
	A4             // x14
	A5             // x15
	A6             // x16
	A7             // x17
	S2             // x18
	S3             // x19
	S4             // x20
	S5             // x21
	S6             // x22
	S7             // x23
	S8             // x24
	S9             // x25
	S10            // x26
	S11            // x27
	T3             // x28
	T4             // x29
	T5             // x30
	T6             // x31

	// NumRegs is the architectural register count.
	NumRegs = 32
)

var regNames = [NumRegs]string{
	"zero", "ra", "sp", "gp", "tp", "t0", "t1", "t2",
	"s0", "s1", "a0", "a1", "a2", "a3", "a4", "a5",
	"a6", "a7", "s2", "s3", "s4", "s5", "s6", "s7",
	"s8", "s9", "s10", "s11", "t3", "t4", "t5", "t6",
}

// String returns the ABI name of the register ("zero", "ra", "a0", ...).
func (r Reg) String() string {
	if r < NumRegs {
		return regNames[r]
	}
	return fmt.Sprintf("x%d", uint8(r))
}

// RegByName resolves a register by ABI name ("a0"), numeric name ("x10") or
// the alias "fp" for s0. It returns false if the name is unknown.
func RegByName(name string) (Reg, bool) {
	for i, n := range regNames {
		if n == name {
			return Reg(i), true
		}
	}
	if name == "fp" {
		return S0, true
	}
	if len(name) >= 2 && name[0] == 'x' {
		n := 0
		for _, c := range name[1:] {
			if c < '0' || c > '9' {
				return 0, false
			}
			n = n*10 + int(c-'0')
		}
		if n < NumRegs {
			return Reg(n), true
		}
	}
	return 0, false
}
