package isa

import (
	"fmt"
	"strconv"
	"strings"
)

// Program is the output of the assembler: a contiguous text segment of
// decoded instructions plus the symbol table used to resolve it.
type Program struct {
	// TextBase is the address of Text[0]. Instructions are 4 bytes each.
	TextBase uint32
	// Entry is the initial program counter (the address of the "_start"
	// label if present, otherwise TextBase).
	Entry uint32
	// Text holds the instructions in address order.
	Text []Inst
	// Symbols maps every label and predefined symbol to its address.
	Symbols map[string]uint32
}

// AddrOf returns the address of instruction index i.
func (p *Program) AddrOf(i int) uint32 { return p.TextBase + uint32(i)*4 }

// IndexOf returns the Text index for address addr, or -1 if the address is
// outside the text segment or misaligned.
func (p *Program) IndexOf(addr uint32) int {
	if addr < p.TextBase || addr%4 != 0 {
		return -1
	}
	i := int(addr-p.TextBase) / 4
	if i >= len(p.Text) {
		return -1
	}
	return i
}

// AsmOptions configures assembly.
type AsmOptions struct {
	// TextBase is the load address of the first instruction. Defaults to
	// 0x1000 when zero.
	TextBase uint32
	// Symbols predefines data symbols (name -> address) that the source may
	// reference in li/la and immediate fields.
	Symbols map[string]uint32
}

// Assemble translates RISC-V assembly source into a Program. The dialect
// supports the RV32IM subset of this package, labels, comments (# and //),
// and the usual pseudo-instructions (li, la, mv, not, neg, seqz, snez,
// beqz/bnez/bltz/bgez/blez/bgtz, bgt/ble/bgtu/bleu, j, jr, call, ret, nop,
// halt). Immediates may be decimal, hex (0x...), character ('c') or
// predefined-symbol references with an optional +/- offset.
func Assemble(src string, opts AsmOptions) (*Program, error) {
	base := opts.TextBase
	if base == 0 {
		base = 0x1000
	}
	a := &assembler{
		prog: &Program{
			TextBase: base,
			Symbols:  make(map[string]uint32),
		},
	}
	for name, addr := range opts.Symbols {
		a.prog.Symbols[name] = addr
	}

	lines := strings.Split(src, "\n")

	// Pass 1: measure, collect labels.
	pc := base
	type pending struct {
		lineNo int
		mnem   string
		args   []string
		addr   uint32
	}
	var pend []pending
	for n, raw := range lines {
		line := stripComment(strings.ReplaceAll(raw, "\t", " "))
		for {
			line = strings.TrimSpace(line)
			if line == "" {
				break
			}
			if i := strings.Index(line, ":"); i >= 0 && isLabel(line[:i]) {
				label := line[:i]
				if _, dup := a.prog.Symbols[label]; dup {
					return nil, fmt.Errorf("line %d: duplicate label %q", n+1, label)
				}
				a.prog.Symbols[label] = pc
				line = line[i+1:]
				continue
			}
			mnem, args := splitInst(line)
			size, err := a.instSize(mnem, args)
			if err != nil {
				return nil, fmt.Errorf("line %d: %v", n+1, err)
			}
			pend = append(pend, pending{n + 1, mnem, args, pc})
			pc += uint32(size) * 4
			break
		}
	}

	// Pass 2: emit.
	for _, p := range pend {
		insts, err := a.emit(p.mnem, p.args, p.addr)
		if err != nil {
			return nil, fmt.Errorf("line %d: %v", p.lineNo, err)
		}
		a.prog.Text = append(a.prog.Text, insts...)
	}

	a.prog.Entry = base
	if e, ok := a.prog.Symbols["_start"]; ok {
		a.prog.Entry = e
	}
	return a.prog, nil
}

type assembler struct {
	prog *Program
}

func stripComment(s string) string {
	if i := strings.Index(s, "#"); i >= 0 {
		s = s[:i]
	}
	if i := strings.Index(s, "//"); i >= 0 {
		s = s[:i]
	}
	return s
}

func isLabel(s string) bool {
	if s == "" {
		return false
	}
	for i, c := range s {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == '.':
		case c >= '0' && c <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

func splitInst(line string) (mnem string, args []string) {
	fields := strings.SplitN(line, " ", 2)
	mnem = strings.ToLower(strings.TrimSpace(fields[0]))
	if len(fields) == 2 {
		for _, a := range strings.Split(fields[1], ",") {
			args = append(args, strings.TrimSpace(a))
		}
	}
	return mnem, args
}

// instSize returns how many machine instructions the (possibly pseudo)
// instruction expands to. It must agree exactly with emit.
func (a *assembler) instSize(mnem string, args []string) (int, error) {
	switch mnem {
	case "li":
		if len(args) != 2 {
			return 0, fmt.Errorf("li needs 2 operands")
		}
		v, err := a.evalImm(args[1])
		if err != nil {
			return 0, err
		}
		if v >= -2048 && v <= 2047 {
			return 1, nil
		}
		if v&0xfff == 0 {
			return 1, nil // lui alone
		}
		return 2, nil
	case "la":
		return 2, nil
	case "call", "tail":
		return 1, nil
	default:
		return 1, nil
	}
}

func (a *assembler) reg(s string) (Reg, error) {
	r, ok := RegByName(s)
	if !ok {
		return 0, fmt.Errorf("unknown register %q", s)
	}
	return r, nil
}

// evalImm evaluates an immediate expression: integer literal, character
// literal, or predefined symbol with optional +/- integer offset.
func (a *assembler) evalImm(s string) (int32, error) {
	s = strings.TrimSpace(s)
	if s == "" {
		return 0, fmt.Errorf("empty immediate")
	}
	if len(s) >= 3 && s[0] == '\'' && s[len(s)-1] == '\'' {
		body := s[1 : len(s)-1]
		if body == "\\n" {
			return '\n', nil
		}
		if body == "\\t" {
			return '\t', nil
		}
		if body == "\\0" {
			return 0, nil
		}
		if len(body) == 1 {
			return int32(body[0]), nil
		}
		return 0, fmt.Errorf("bad character literal %s", s)
	}
	if v, err := strconv.ParseInt(s, 0, 64); err == nil {
		if v < -(1<<31) || v > (1<<32)-1 {
			return 0, fmt.Errorf("immediate %s out of 32-bit range", s)
		}
		return int32(uint32(v)), nil
	}
	// symbol[+|-offset]
	name, off := s, int64(0)
	for i := 1; i < len(s); i++ {
		if s[i] == '+' || s[i] == '-' {
			v, err := strconv.ParseInt(s[i:], 0, 32)
			if err != nil {
				return 0, fmt.Errorf("bad offset in %q", s)
			}
			name, off = s[:i], v
			break
		}
	}
	addr, ok := a.prog.Symbols[strings.TrimSpace(name)]
	if !ok {
		return 0, fmt.Errorf("unknown symbol %q", name)
	}
	return int32(addr) + int32(off), nil
}

// memOperand parses "off(reg)" with off optionally empty or symbolic.
func (a *assembler) memOperand(s string) (int32, Reg, error) {
	open := strings.Index(s, "(")
	close := strings.LastIndex(s, ")")
	if open < 0 || close < open {
		return 0, 0, fmt.Errorf("bad memory operand %q", s)
	}
	offStr := strings.TrimSpace(s[:open])
	var off int32
	if offStr != "" {
		v, err := a.evalImm(offStr)
		if err != nil {
			return 0, 0, err
		}
		off = v
	}
	r, err := a.reg(strings.TrimSpace(s[open+1 : close]))
	if err != nil {
		return 0, 0, err
	}
	return off, r, nil
}

func (a *assembler) branchTarget(s string, pc uint32) (int32, error) {
	if addr, ok := a.prog.Symbols[s]; ok {
		return int32(addr) - int32(pc), nil
	}
	return a.evalImm(s)
}

func argCount(mnem string, args []string, want int) error {
	if len(args) != want {
		return fmt.Errorf("%s needs %d operands, got %d", mnem, want, len(args))
	}
	return nil
}

// emit expands one source instruction to machine instructions. pc is the
// address of the first emitted instruction.
func (a *assembler) emit(mnem string, args []string, pc uint32) ([]Inst, error) {
	one := func(i Inst, err error) ([]Inst, error) {
		if err != nil {
			return nil, err
		}
		// Validate encodability early so range errors carry line numbers.
		if _, eerr := Encode(i); eerr != nil {
			return nil, eerr
		}
		return []Inst{i}, nil
	}

	switch mnem {
	case "nop":
		return one(Inst{Op: ADDI}, nil)
	case "halt", "ecall":
		return one(Inst{Op: ECALL}, nil)
	case "ret":
		return one(Inst{Op: JALR, Rd: X0, Rs1: RA}, nil)

	case "li":
		if err := argCount(mnem, args, 2); err != nil {
			return nil, err
		}
		rd, err := a.reg(args[0])
		if err != nil {
			return nil, err
		}
		v, err := a.evalImm(args[1])
		if err != nil {
			return nil, err
		}
		return a.loadImm(rd, v)
	case "la":
		if err := argCount(mnem, args, 2); err != nil {
			return nil, err
		}
		rd, err := a.reg(args[0])
		if err != nil {
			return nil, err
		}
		v, err := a.evalImm(args[1])
		if err != nil {
			return nil, err
		}
		return a.loadImm32(rd, v)

	case "mv":
		return a.aluImmPseudo(ADDI, args, 0)
	case "not":
		return a.aluImmPseudo(XORI, args, -1)
	case "seqz":
		return a.aluImmPseudo(SLTIU, args, 1)
	case "neg":
		if err := argCount(mnem, args, 2); err != nil {
			return nil, err
		}
		rd, err := a.reg(args[0])
		if err != nil {
			return nil, err
		}
		rs, err := a.reg(args[1])
		if err != nil {
			return nil, err
		}
		return one(Inst{Op: SUB, Rd: rd, Rs1: X0, Rs2: rs}, nil)
	case "snez":
		if err := argCount(mnem, args, 2); err != nil {
			return nil, err
		}
		rd, err := a.reg(args[0])
		if err != nil {
			return nil, err
		}
		rs, err := a.reg(args[1])
		if err != nil {
			return nil, err
		}
		return one(Inst{Op: SLTU, Rd: rd, Rs1: X0, Rs2: rs}, nil)

	case "j":
		if err := argCount(mnem, args, 1); err != nil {
			return nil, err
		}
		off, err := a.branchTarget(args[0], pc)
		if err != nil {
			return nil, err
		}
		return one(Inst{Op: JAL, Rd: X0, Imm: off}, nil)
	case "jal":
		switch len(args) {
		case 1:
			off, err := a.branchTarget(args[0], pc)
			if err != nil {
				return nil, err
			}
			return one(Inst{Op: JAL, Rd: RA, Imm: off}, nil)
		case 2:
			rd, err := a.reg(args[0])
			if err != nil {
				return nil, err
			}
			off, err := a.branchTarget(args[1], pc)
			if err != nil {
				return nil, err
			}
			return one(Inst{Op: JAL, Rd: rd, Imm: off}, nil)
		}
		return nil, fmt.Errorf("jal needs 1 or 2 operands")
	case "call":
		if err := argCount(mnem, args, 1); err != nil {
			return nil, err
		}
		off, err := a.branchTarget(args[0], pc)
		if err != nil {
			return nil, err
		}
		return one(Inst{Op: JAL, Rd: RA, Imm: off}, nil)
	case "jr":
		if err := argCount(mnem, args, 1); err != nil {
			return nil, err
		}
		rs, err := a.reg(args[0])
		if err != nil {
			return nil, err
		}
		return one(Inst{Op: JALR, Rd: X0, Rs1: rs}, nil)
	case "jalr":
		// jalr rd, off(rs1)  |  jalr rd, rs1, off  |  jalr rs1
		switch len(args) {
		case 1:
			rs, err := a.reg(args[0])
			if err != nil {
				return nil, err
			}
			return one(Inst{Op: JALR, Rd: RA, Rs1: rs}, nil)
		case 2:
			rd, err := a.reg(args[0])
			if err != nil {
				return nil, err
			}
			off, rs1, err := a.memOperand(args[1])
			if err != nil {
				return nil, err
			}
			return one(Inst{Op: JALR, Rd: rd, Rs1: rs1, Imm: off}, nil)
		case 3:
			rd, err := a.reg(args[0])
			if err != nil {
				return nil, err
			}
			rs1, err := a.reg(args[1])
			if err != nil {
				return nil, err
			}
			off, err := a.evalImm(args[2])
			if err != nil {
				return nil, err
			}
			return one(Inst{Op: JALR, Rd: rd, Rs1: rs1, Imm: off}, nil)
		}
		return nil, fmt.Errorf("jalr needs 1-3 operands")

	case "beqz", "bnez", "bltz", "bgez", "blez", "bgtz":
		if err := argCount(mnem, args, 2); err != nil {
			return nil, err
		}
		rs, err := a.reg(args[0])
		if err != nil {
			return nil, err
		}
		off, err := a.branchTarget(args[1], pc)
		if err != nil {
			return nil, err
		}
		switch mnem {
		case "beqz":
			return one(Inst{Op: BEQ, Rs1: rs, Rs2: X0, Imm: off}, nil)
		case "bnez":
			return one(Inst{Op: BNE, Rs1: rs, Rs2: X0, Imm: off}, nil)
		case "bltz":
			return one(Inst{Op: BLT, Rs1: rs, Rs2: X0, Imm: off}, nil)
		case "bgez":
			return one(Inst{Op: BGE, Rs1: rs, Rs2: X0, Imm: off}, nil)
		case "blez":
			return one(Inst{Op: BGE, Rs1: X0, Rs2: rs, Imm: off}, nil)
		default: // bgtz
			return one(Inst{Op: BLT, Rs1: X0, Rs2: rs, Imm: off}, nil)
		}

	case "bgt", "ble", "bgtu", "bleu":
		if err := argCount(mnem, args, 3); err != nil {
			return nil, err
		}
		rs1, err := a.reg(args[0])
		if err != nil {
			return nil, err
		}
		rs2, err := a.reg(args[1])
		if err != nil {
			return nil, err
		}
		off, err := a.branchTarget(args[2], pc)
		if err != nil {
			return nil, err
		}
		switch mnem {
		case "bgt":
			return one(Inst{Op: BLT, Rs1: rs2, Rs2: rs1, Imm: off}, nil)
		case "ble":
			return one(Inst{Op: BGE, Rs1: rs2, Rs2: rs1, Imm: off}, nil)
		case "bgtu":
			return one(Inst{Op: BLTU, Rs1: rs2, Rs2: rs1, Imm: off}, nil)
		default: // bleu
			return one(Inst{Op: BGEU, Rs1: rs2, Rs2: rs1, Imm: off}, nil)
		}
	}

	op, ok := OpByName(mnem)
	if !ok {
		return nil, fmt.Errorf("unknown mnemonic %q", mnem)
	}

	switch op.Format() {
	case FormatR:
		if err := argCount(mnem, args, 3); err != nil {
			return nil, err
		}
		rd, err := a.reg(args[0])
		if err != nil {
			return nil, err
		}
		rs1, err := a.reg(args[1])
		if err != nil {
			return nil, err
		}
		rs2, err := a.reg(args[2])
		if err != nil {
			return nil, err
		}
		return one(Inst{Op: op, Rd: rd, Rs1: rs1, Rs2: rs2}, nil)
	case FormatI:
		if op.Class() == ClassLoad {
			if err := argCount(mnem, args, 2); err != nil {
				return nil, err
			}
			rd, err := a.reg(args[0])
			if err != nil {
				return nil, err
			}
			off, rs1, err := a.memOperand(args[1])
			if err != nil {
				return nil, err
			}
			return one(Inst{Op: op, Rd: rd, Rs1: rs1, Imm: off}, nil)
		}
		if err := argCount(mnem, args, 3); err != nil {
			return nil, err
		}
		rd, err := a.reg(args[0])
		if err != nil {
			return nil, err
		}
		rs1, err := a.reg(args[1])
		if err != nil {
			return nil, err
		}
		imm, err := a.evalImm(args[2])
		if err != nil {
			return nil, err
		}
		return one(Inst{Op: op, Rd: rd, Rs1: rs1, Imm: imm}, nil)
	case FormatS:
		if err := argCount(mnem, args, 2); err != nil {
			return nil, err
		}
		rs2, err := a.reg(args[0])
		if err != nil {
			return nil, err
		}
		off, rs1, err := a.memOperand(args[1])
		if err != nil {
			return nil, err
		}
		return one(Inst{Op: op, Rs1: rs1, Rs2: rs2, Imm: off}, nil)
	case FormatB:
		if err := argCount(mnem, args, 3); err != nil {
			return nil, err
		}
		rs1, err := a.reg(args[0])
		if err != nil {
			return nil, err
		}
		rs2, err := a.reg(args[1])
		if err != nil {
			return nil, err
		}
		off, err := a.branchTarget(args[2], pc)
		if err != nil {
			return nil, err
		}
		return one(Inst{Op: op, Rs1: rs1, Rs2: rs2, Imm: off}, nil)
	case FormatU:
		if err := argCount(mnem, args, 2); err != nil {
			return nil, err
		}
		rd, err := a.reg(args[0])
		if err != nil {
			return nil, err
		}
		imm, err := a.evalImm(args[1])
		if err != nil {
			return nil, err
		}
		return one(Inst{Op: op, Rd: rd, Imm: imm}, nil)
	case FormatJ:
		if err := argCount(mnem, args, 2); err != nil {
			return nil, err
		}
		rd, err := a.reg(args[0])
		if err != nil {
			return nil, err
		}
		off, err := a.branchTarget(args[1], pc)
		if err != nil {
			return nil, err
		}
		return one(Inst{Op: op, Rd: rd, Imm: off}, nil)
	}
	return nil, fmt.Errorf("unhandled mnemonic %q", mnem)
}

// aluImmPseudo expands two-operand pseudo-instructions (mv/not/seqz) that
// map to a single immediate ALU op with a fixed immediate.
func (a *assembler) aluImmPseudo(op Op, args []string, imm int32) ([]Inst, error) {
	if len(args) != 2 {
		return nil, fmt.Errorf("pseudo-instruction needs 2 operands, got %d", len(args))
	}
	rd, err := a.reg(args[0])
	if err != nil {
		return nil, err
	}
	rs, err := a.reg(args[1])
	if err != nil {
		return nil, err
	}
	return []Inst{{Op: op, Rd: rd, Rs1: rs, Imm: imm}}, nil
}

// loadImm emits the shortest sequence that loads v into rd.
func (a *assembler) loadImm(rd Reg, v int32) ([]Inst, error) {
	if v >= -2048 && v <= 2047 {
		return []Inst{{Op: ADDI, Rd: rd, Rs1: X0, Imm: v}}, nil
	}
	if v&0xfff == 0 {
		return []Inst{{Op: LUI, Rd: rd, Imm: int32(uint32(v) >> 12)}}, nil
	}
	return a.loadImm32(rd, v)
}

// loadImm32 always emits the two-instruction lui+addi sequence, keeping
// pass-1 sizing trivial for la.
func (a *assembler) loadImm32(rd Reg, v int32) ([]Inst, error) {
	lo := v << 20 >> 20 // sign-extended low 12 bits
	hi := uint32(v-lo) >> 12
	return []Inst{
		{Op: LUI, Rd: rd, Imm: int32(hi & 0xfffff)},
		{Op: ADDI, Rd: rd, Rs1: rd, Imm: lo},
	}, nil
}
