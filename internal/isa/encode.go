package isa

import "fmt"

// RISC-V base opcodes (bits 6:0 of the encoded word).
const (
	opcOpReg  = 0b0110011 // R-type ALU / M extension
	opcOpImm  = 0b0010011 // I-type ALU
	opcLoad   = 0b0000011
	opcStore  = 0b0100011
	opcBranch = 0b1100011
	opcLUI    = 0b0110111
	opcAUIPC  = 0b0010111
	opcJAL    = 0b1101111
	opcJALR   = 0b1100111
	opcSystem = 0b1110011
)

type encInfo struct {
	opcode uint32
	funct3 uint32
	funct7 uint32
}

var encTable = map[Op]encInfo{
	ADD:    {opcOpReg, 0b000, 0b0000000},
	SUB:    {opcOpReg, 0b000, 0b0100000},
	SLL:    {opcOpReg, 0b001, 0b0000000},
	SLT:    {opcOpReg, 0b010, 0b0000000},
	SLTU:   {opcOpReg, 0b011, 0b0000000},
	XOR:    {opcOpReg, 0b100, 0b0000000},
	SRL:    {opcOpReg, 0b101, 0b0000000},
	SRA:    {opcOpReg, 0b101, 0b0100000},
	OR:     {opcOpReg, 0b110, 0b0000000},
	AND:    {opcOpReg, 0b111, 0b0000000},
	MUL:    {opcOpReg, 0b000, 0b0000001},
	MULH:   {opcOpReg, 0b001, 0b0000001},
	MULHSU: {opcOpReg, 0b010, 0b0000001},
	MULHU:  {opcOpReg, 0b011, 0b0000001},
	DIV:    {opcOpReg, 0b100, 0b0000001},
	DIVU:   {opcOpReg, 0b101, 0b0000001},
	REM:    {opcOpReg, 0b110, 0b0000001},
	REMU:   {opcOpReg, 0b111, 0b0000001},

	ADDI:  {opcOpImm, 0b000, 0},
	SLTI:  {opcOpImm, 0b010, 0},
	SLTIU: {opcOpImm, 0b011, 0},
	XORI:  {opcOpImm, 0b100, 0},
	ORI:   {opcOpImm, 0b110, 0},
	ANDI:  {opcOpImm, 0b111, 0},
	SLLI:  {opcOpImm, 0b001, 0b0000000},
	SRLI:  {opcOpImm, 0b101, 0b0000000},
	SRAI:  {opcOpImm, 0b101, 0b0100000},

	LUI:   {opcLUI, 0, 0},
	AUIPC: {opcAUIPC, 0, 0},

	LB:  {opcLoad, 0b000, 0},
	LH:  {opcLoad, 0b001, 0},
	LW:  {opcLoad, 0b010, 0},
	LBU: {opcLoad, 0b100, 0},
	LHU: {opcLoad, 0b101, 0},

	SB: {opcStore, 0b000, 0},
	SH: {opcStore, 0b001, 0},
	SW: {opcStore, 0b010, 0},

	BEQ:  {opcBranch, 0b000, 0},
	BNE:  {opcBranch, 0b001, 0},
	BLT:  {opcBranch, 0b100, 0},
	BGE:  {opcBranch, 0b101, 0},
	BLTU: {opcBranch, 0b110, 0},
	BGEU: {opcBranch, 0b111, 0},

	JAL:  {opcJAL, 0, 0},
	JALR: {opcJALR, 0b000, 0},

	ECALL: {opcSystem, 0b000, 0},
}

// Encode produces the 32-bit RISC-V machine word for the instruction.
// Immediates out of range for the format are reported as errors rather than
// silently truncated.
func Encode(i Inst) (uint32, error) {
	e, ok := encTable[i.Op]
	if !ok {
		return 0, fmt.Errorf("isa: cannot encode op %v", i.Op)
	}
	rd := uint32(i.Rd) & 31
	rs1 := uint32(i.Rs1) & 31
	rs2 := uint32(i.Rs2) & 31
	imm := i.Imm

	switch i.Op.Format() {
	case FormatR:
		return e.funct7<<25 | rs2<<20 | rs1<<15 | e.funct3<<12 | rd<<7 | e.opcode, nil
	case FormatI:
		if i.Op == SLLI || i.Op == SRLI || i.Op == SRAI {
			if imm < 0 || imm > 31 {
				return 0, fmt.Errorf("isa: shift amount %d out of range for %v", imm, i.Op)
			}
			return e.funct7<<25 | uint32(imm)<<20 | rs1<<15 | e.funct3<<12 | rd<<7 | e.opcode, nil
		}
		if imm < -2048 || imm > 2047 {
			return 0, fmt.Errorf("isa: immediate %d out of I-range for %v", imm, i.Op)
		}
		return uint32(imm)&0xfff<<20 | rs1<<15 | e.funct3<<12 | rd<<7 | e.opcode, nil
	case FormatS:
		if imm < -2048 || imm > 2047 {
			return 0, fmt.Errorf("isa: immediate %d out of S-range for %v", imm, i.Op)
		}
		u := uint32(imm) & 0xfff
		return (u>>5)<<25 | rs2<<20 | rs1<<15 | e.funct3<<12 | (u&0x1f)<<7 | e.opcode, nil
	case FormatB:
		if imm < -4096 || imm > 4095 || imm&1 != 0 {
			return 0, fmt.Errorf("isa: branch offset %d invalid for %v", imm, i.Op)
		}
		u := uint32(imm)
		w := (u>>12)&1<<31 | (u>>5)&0x3f<<25 | rs2<<20 | rs1<<15 | e.funct3<<12 |
			(u>>1)&0xf<<8 | (u>>11)&1<<7 | e.opcode
		return w, nil
	case FormatU:
		if imm < -(1<<19) || imm >= 1<<20 {
			return 0, fmt.Errorf("isa: immediate %d out of U-range for %v", imm, i.Op)
		}
		return uint32(imm)&0xfffff<<12 | rd<<7 | e.opcode, nil
	case FormatJ:
		if imm < -(1<<20) || imm >= 1<<20 || imm&1 != 0 {
			return 0, fmt.Errorf("isa: jump offset %d invalid for %v", imm, i.Op)
		}
		u := uint32(imm)
		w := (u>>20)&1<<31 | (u>>1)&0x3ff<<21 | (u>>11)&1<<20 | (u>>12)&0xff<<12 |
			rd<<7 | e.opcode
		return w, nil
	}
	return 0, fmt.Errorf("isa: unknown format for %v", i.Op)
}

// Decode parses a 32-bit RISC-V machine word into an Inst. It is the inverse
// of Encode for every instruction in the subset.
func Decode(w uint32) (Inst, error) {
	opcode := w & 0x7f
	rd := Reg(w >> 7 & 31)
	funct3 := w >> 12 & 7
	rs1 := Reg(w >> 15 & 31)
	rs2 := Reg(w >> 20 & 31)
	funct7 := w >> 25

	signExtend := func(v uint32, bits uint) int32 {
		shift := 32 - bits
		return int32(v<<shift) >> shift
	}

	switch opcode {
	case opcOpReg:
		for op, e := range encTable {
			if e.opcode == opcOpReg && e.funct3 == funct3 && e.funct7 == funct7 {
				return Inst{Op: op, Rd: rd, Rs1: rs1, Rs2: rs2}, nil
			}
		}
	case opcOpImm:
		imm := signExtend(w>>20, 12)
		switch funct3 {
		case 0b000:
			return Inst{Op: ADDI, Rd: rd, Rs1: rs1, Imm: imm}, nil
		case 0b010:
			return Inst{Op: SLTI, Rd: rd, Rs1: rs1, Imm: imm}, nil
		case 0b011:
			return Inst{Op: SLTIU, Rd: rd, Rs1: rs1, Imm: imm}, nil
		case 0b100:
			return Inst{Op: XORI, Rd: rd, Rs1: rs1, Imm: imm}, nil
		case 0b110:
			return Inst{Op: ORI, Rd: rd, Rs1: rs1, Imm: imm}, nil
		case 0b111:
			return Inst{Op: ANDI, Rd: rd, Rs1: rs1, Imm: imm}, nil
		case 0b001:
			if funct7 != 0 {
				return Inst{}, fmt.Errorf("isa: bad funct7 %#x for slli", funct7)
			}
			return Inst{Op: SLLI, Rd: rd, Rs1: rs1, Imm: int32(w >> 20 & 31)}, nil
		case 0b101:
			switch funct7 {
			case 0:
				return Inst{Op: SRLI, Rd: rd, Rs1: rs1, Imm: int32(w >> 20 & 31)}, nil
			case 0b0100000:
				return Inst{Op: SRAI, Rd: rd, Rs1: rs1, Imm: int32(w >> 20 & 31)}, nil
			}
			return Inst{}, fmt.Errorf("isa: bad funct7 %#x for srli/srai", funct7)
		}
	case opcLoad:
		imm := signExtend(w>>20, 12)
		for op, e := range encTable {
			if e.opcode == opcLoad && e.funct3 == funct3 {
				return Inst{Op: op, Rd: rd, Rs1: rs1, Imm: imm}, nil
			}
		}
	case opcStore:
		imm := signExtend(funct7<<5|uint32(rd), 12)
		for op, e := range encTable {
			if e.opcode == opcStore && e.funct3 == funct3 {
				return Inst{Op: op, Rs1: rs1, Rs2: rs2, Imm: imm}, nil
			}
		}
	case opcBranch:
		raw := (w>>31)&1<<12 | (w>>7)&1<<11 | (w>>25)&0x3f<<5 | (w>>8)&0xf<<1
		imm := signExtend(raw, 13)
		for op, e := range encTable {
			if e.opcode == opcBranch && e.funct3 == funct3 {
				return Inst{Op: op, Rs1: rs1, Rs2: rs2, Imm: imm}, nil
			}
		}
	case opcLUI:
		return Inst{Op: LUI, Rd: rd, Imm: int32(w >> 12)}, nil
	case opcAUIPC:
		return Inst{Op: AUIPC, Rd: rd, Imm: int32(w >> 12)}, nil
	case opcJAL:
		raw := (w>>31)&1<<20 | (w>>12)&0xff<<12 | (w>>20)&1<<11 | (w>>21)&0x3ff<<1
		imm := signExtend(raw, 21)
		return Inst{Op: JAL, Rd: rd, Imm: imm}, nil
	case opcJALR:
		if funct3 != 0 {
			return Inst{}, fmt.Errorf("isa: bad funct3 %#x for jalr", funct3)
		}
		return Inst{Op: JALR, Rd: rd, Rs1: rs1, Imm: signExtend(w>>20, 12)}, nil
	case opcSystem:
		if w == 0x00000073 {
			return Inst{Op: ECALL}, nil
		}
	}
	return Inst{}, fmt.Errorf("isa: cannot decode word %#08x", w)
}
