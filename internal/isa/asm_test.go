package isa

import (
	"strings"
	"testing"
)

func mustAssemble(t *testing.T, src string, opts AsmOptions) *Program {
	t.Helper()
	p, err := Assemble(src, opts)
	if err != nil {
		t.Fatalf("Assemble: %v", err)
	}
	return p
}

func TestAssembleBasic(t *testing.T) {
	p := mustAssemble(t, `
		# a tiny program
		add  a0, a1, a2
		addi t0, a0, -7
		lw   t1, 4(sp)
		sw   t1, 8(sp)
		ecall
	`, AsmOptions{})
	want := []Inst{
		{Op: ADD, Rd: A0, Rs1: A1, Rs2: A2},
		{Op: ADDI, Rd: T0, Rs1: A0, Imm: -7},
		{Op: LW, Rd: T1, Rs1: SP, Imm: 4},
		{Op: SW, Rs1: SP, Rs2: T1, Imm: 8},
		{Op: ECALL},
	}
	if len(p.Text) != len(want) {
		t.Fatalf("got %d instructions, want %d", len(p.Text), len(want))
	}
	for i := range want {
		if p.Text[i] != want[i] {
			t.Errorf("inst %d = %v, want %v", i, p.Text[i], want[i])
		}
	}
	if p.TextBase != 0x1000 || p.Entry != 0x1000 {
		t.Errorf("TextBase=%#x Entry=%#x, want both 0x1000", p.TextBase, p.Entry)
	}
}

func TestAssembleLabelsAndBranches(t *testing.T) {
	p := mustAssemble(t, `
		li   t0, 0
		li   t1, 10
	loop:
		addi t0, t0, 1
		blt  t0, t1, loop
		j    done
		nop
	done:
		ecall
	`, AsmOptions{})
	// loop is at index 2 (each li here is one instruction).
	brk := p.Text[3]
	if brk.Op != BLT {
		t.Fatalf("inst 3 = %v, want blt", brk)
	}
	if brk.Imm != -4 {
		t.Errorf("blt offset = %d, want -4", brk.Imm)
	}
	jmp := p.Text[4]
	if jmp.Op != JAL || jmp.Rd != X0 {
		t.Fatalf("inst 4 = %v, want j (jal x0)", jmp)
	}
	if jmp.Imm != 8 {
		t.Errorf("j offset = %d, want 8", jmp.Imm)
	}
}

func TestAssembleLi(t *testing.T) {
	p := mustAssemble(t, `
		li a0, 42
		li a1, -1
		li a2, 0x12345678
		li a3, 0x1000
		li a4, 0xffffffff
	`, AsmOptions{})
	// 42 and -1 are single addi; 0x12345678 is lui+addi; 0x1000 is lui;
	// 0xffffffff is addi -1.
	if p.Text[0].Op != ADDI || p.Text[0].Imm != 42 {
		t.Errorf("li 42 = %v", p.Text[0])
	}
	if p.Text[1].Op != ADDI || p.Text[1].Imm != -1 {
		t.Errorf("li -1 = %v", p.Text[1])
	}
	if p.Text[2].Op != LUI || p.Text[3].Op != ADDI {
		t.Errorf("li 0x12345678 = %v; %v", p.Text[2], p.Text[3])
	}
	// Verify lui+addi reconstructs the value.
	v := uint32(p.Text[2].Imm)<<12 + uint32(p.Text[3].Imm)
	if v != 0x12345678 {
		t.Errorf("li 0x12345678 reconstructs to %#x", v)
	}
	if p.Text[4].Op != LUI || uint32(p.Text[4].Imm) != 0x1 {
		t.Errorf("li 0x1000 = %v", p.Text[4])
	}
	if p.Text[5].Op != ADDI || p.Text[5].Imm != -1 {
		t.Errorf("li 0xffffffff = %v", p.Text[5])
	}
}

func TestAssembleLaWithSymbols(t *testing.T) {
	p := mustAssemble(t, `
		la a0, buf
		la a1, buf+36
		lw a2, 12(a0)
	`, AsmOptions{Symbols: map[string]uint32{"buf": 0x10000}})
	v := uint32(p.Text[0].Imm)<<12 + uint32(p.Text[1].Imm)
	if v != 0x10000 {
		t.Errorf("la buf reconstructs to %#x, want 0x10000", v)
	}
	v2 := uint32(p.Text[2].Imm)<<12 + uint32(p.Text[3].Imm)
	if v2 != 0x10024 {
		t.Errorf("la buf+36 reconstructs to %#x, want 0x10024", v2)
	}
}

func TestAssembleSymbolOutOfRange(t *testing.T) {
	_, err := Assemble("lw a1, buf+4(zero)", AsmOptions{
		Symbols: map[string]uint32{"buf": 0x10000},
	})
	if err == nil {
		t.Fatal("expected out-of-range immediate error")
	}
}

func TestAssemblePseudoInstructions(t *testing.T) {
	p := mustAssemble(t, `
		nop
		mv   a0, a1
		not  a2, a3
		neg  a4, a5
		seqz t0, t1
		snez t2, t3
		jr   ra
		ret
	`, AsmOptions{})
	want := []Inst{
		{Op: ADDI},
		{Op: ADDI, Rd: A0, Rs1: A1},
		{Op: XORI, Rd: A2, Rs1: A3, Imm: -1},
		{Op: SUB, Rd: A4, Rs1: X0, Rs2: A5},
		{Op: SLTIU, Rd: T0, Rs1: T1, Imm: 1},
		{Op: SLTU, Rd: T2, Rs1: X0, Rs2: T3},
		{Op: JALR, Rd: X0, Rs1: RA},
		{Op: JALR, Rd: X0, Rs1: RA},
	}
	for i := range want {
		if p.Text[i] != want[i] {
			t.Errorf("inst %d = %v, want %v", i, p.Text[i], want[i])
		}
	}
}

func TestAssembleBranchPseudos(t *testing.T) {
	p := mustAssemble(t, `
	top:
		beqz a0, top
		bnez a0, top
		bltz a0, top
		bgez a0, top
		blez a0, top
		bgtz a0, top
		bgt  a0, a1, top
		ble  a0, a1, top
		bgtu a0, a1, top
		bleu a0, a1, top
	`, AsmOptions{})
	wantOps := []Op{BEQ, BNE, BLT, BGE, BGE, BLT, BLT, BGE, BLTU, BGEU}
	for i, op := range wantOps {
		if p.Text[i].Op != op {
			t.Errorf("inst %d op = %v, want %v", i, p.Text[i].Op, op)
		}
	}
	// bgt a0,a1 swaps to blt a1,a0.
	if p.Text[6].Rs1 != A1 || p.Text[6].Rs2 != A0 {
		t.Errorf("bgt operand swap wrong: %v", p.Text[6])
	}
}

func TestAssembleCallRet(t *testing.T) {
	p := mustAssemble(t, `
	_start:
		call f
		ecall
	f:
		ret
	`, AsmOptions{})
	if p.Entry != p.TextBase {
		t.Errorf("entry = %#x, want %#x", p.Entry, p.TextBase)
	}
	if p.Text[0].Op != JAL || p.Text[0].Rd != RA || p.Text[0].Imm != 8 {
		t.Errorf("call = %v", p.Text[0])
	}
}

func TestAssembleEntryLabel(t *testing.T) {
	p := mustAssemble(t, `
	f:
		ret
	_start:
		call f
		ecall
	`, AsmOptions{})
	if p.Entry != p.TextBase+4 {
		t.Errorf("entry = %#x, want %#x", p.Entry, p.TextBase+4)
	}
}

func TestAssembleErrors(t *testing.T) {
	cases := []string{
		"frob a0, a1",
		"add a0, a1",
		"addi a0, a1, 99999",
		"lw a0, 4(q9)",
		"beq a0, a1, nowhere",
		"li a0",
		"dup:\ndup:\nnop",
	}
	for _, src := range cases {
		if _, err := Assemble(src, AsmOptions{}); err == nil {
			t.Errorf("Assemble(%q) succeeded, want error", src)
		}
	}
}

func TestAssembleErrorHasLineNumber(t *testing.T) {
	_, err := Assemble("nop\nnop\nbogus a0\n", AsmOptions{})
	if err == nil || !strings.Contains(err.Error(), "line 3") {
		t.Fatalf("error %v does not carry line number", err)
	}
}

func TestProgramAddrIndex(t *testing.T) {
	p := mustAssemble(t, "nop\nnop\nnop\n", AsmOptions{})
	for i := range p.Text {
		if got := p.IndexOf(p.AddrOf(i)); got != i {
			t.Errorf("IndexOf(AddrOf(%d)) = %d", i, got)
		}
	}
	if p.IndexOf(p.TextBase-4) != -1 || p.IndexOf(p.TextBase+1) != -1 {
		t.Error("IndexOf accepted out-of-range or misaligned address")
	}
	if p.IndexOf(p.AddrOf(len(p.Text))) != -1 {
		t.Error("IndexOf accepted address past end of text")
	}
}

// Every emitted instruction must be encodable: the assembler's contract.
func TestAssembleAllEncodable(t *testing.T) {
	p := mustAssemble(t, `
	_start:
		li   s0, 0x20000
		li   s1, 100
		li   t0, 0
	loop:
		slli t1, t0, 2
		add  t1, t1, s0
		lw   t2, 0(t1)
		mul  t2, t2, t2
		sw   t2, 0(t1)
		addi t0, t0, 1
		blt  t0, s1, loop
		ecall
	`, AsmOptions{})
	for i, in := range p.Text {
		if _, err := Encode(in); err != nil {
			t.Errorf("inst %d (%v) not encodable: %v", i, in, err)
		}
	}
}
