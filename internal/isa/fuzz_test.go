package isa_test

import (
	"testing"

	"agingcgra/internal/isa"
	"agingcgra/internal/prog"
)

// TestProgramsEncodeDecodeRoundTrip asserts the fixed point the DBT relies
// on over the real workload suite: assemble → encode → decode reproduces
// every instruction of every benchmark exactly, and re-encoding the decoded
// instruction reproduces the machine word.
func TestProgramsEncodeDecodeRoundTrip(t *testing.T) {
	for _, b := range prog.All() {
		p, err := b.Assemble()
		if err != nil {
			t.Fatalf("%s: %v", b.Name, err)
		}
		for i, inst := range p.Text {
			w, err := isa.Encode(inst)
			if err != nil {
				t.Fatalf("%s[%d]: encode %v: %v", b.Name, i, inst, err)
			}
			back, err := isa.Decode(w)
			if err != nil {
				t.Fatalf("%s[%d]: decode %#08x (%v): %v", b.Name, i, w, inst, err)
			}
			if back != inst {
				t.Fatalf("%s[%d]: round trip %v -> %#08x -> %v", b.Name, i, inst, w, back)
			}
			w2, err := isa.Encode(back)
			if err != nil || w2 != w {
				t.Fatalf("%s[%d]: re-encode %v -> %#08x, want %#08x (err %v)",
					b.Name, i, back, w2, w, err)
			}
		}
	}
}

// FuzzEncodeDecode fuzzes the decoder with arbitrary 32-bit words and
// asserts that every decodable word round-trips: Encode(Decode(w)) must be
// decodable to the identical instruction, and encode→decode→encode must be
// a fixed point. The seed corpus is the assembled instruction stream of the
// whole benchmark suite, so the fuzzer starts from every encoding shape the
// subset actually uses. CI runs this as a short -fuzztime smoke.
func FuzzEncodeDecode(f *testing.F) {
	for _, b := range prog.All() {
		p, err := b.Assemble()
		if err != nil {
			f.Fatal(err)
		}
		for _, inst := range p.Text {
			w, err := isa.Encode(inst)
			if err != nil {
				f.Fatal(err)
			}
			f.Add(w)
		}
	}
	f.Add(uint32(0x00000073)) // ecall
	f.Add(uint32(0))          // undecodable
	f.Add(^uint32(0))

	f.Fuzz(func(t *testing.T, w uint32) {
		inst, err := isa.Decode(w)
		if err != nil {
			return // not part of the subset; nothing to round-trip
		}
		w2, err := isa.Encode(inst)
		if err != nil {
			t.Fatalf("decoded %#08x to %v but cannot re-encode: %v", w, inst, err)
		}
		back, err := isa.Decode(w2)
		if err != nil {
			t.Fatalf("re-encoded %v to %#08x but cannot decode: %v", inst, w2, err)
		}
		if back != inst {
			t.Fatalf("round trip diverged: %#08x -> %v -> %#08x -> %v", w, inst, w2, back)
		}
		w3, err := isa.Encode(back)
		if err != nil || w3 != w2 {
			t.Fatalf("encode not a fixed point: %#08x vs %#08x (err %v)", w2, w3, err)
		}
	})
}
