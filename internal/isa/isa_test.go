package isa

import (
	"strings"
	"testing"
)

func TestOpStringAndLookup(t *testing.T) {
	for _, op := range Ops() {
		name := op.String()
		if name == "" || strings.Contains(name, "op(") {
			t.Fatalf("op %d has no mnemonic", op)
		}
		got, ok := OpByName(name)
		if !ok || got != op {
			t.Fatalf("OpByName(%q) = %v, %v; want %v", name, got, ok, op)
		}
	}
	if _, ok := OpByName("frobnicate"); ok {
		t.Fatal("OpByName accepted unknown mnemonic")
	}
}

func TestOpsCount(t *testing.T) {
	if got, want := len(Ops()), int(numOps)-1; got != want {
		t.Fatalf("Ops() returned %d ops, want %d", got, want)
	}
}

func TestRegNames(t *testing.T) {
	cases := []struct {
		name string
		reg  Reg
	}{
		{"zero", X0}, {"ra", RA}, {"sp", SP}, {"a0", A0}, {"a7", A7},
		{"s0", S0}, {"fp", S0}, {"s11", S11}, {"t6", T6}, {"x0", X0},
		{"x31", T6}, {"x10", A0},
	}
	for _, c := range cases {
		got, ok := RegByName(c.name)
		if !ok || got != c.reg {
			t.Errorf("RegByName(%q) = %v, %v; want %v", c.name, got, ok, c.reg)
		}
	}
	for _, bad := range []string{"", "x32", "q3", "a8x", "x-1"} {
		if _, ok := RegByName(bad); ok {
			t.Errorf("RegByName(%q) unexpectedly succeeded", bad)
		}
	}
}

func TestRegStringRoundTrip(t *testing.T) {
	for r := Reg(0); r < NumRegs; r++ {
		got, ok := RegByName(r.String())
		if !ok || got != r {
			t.Errorf("register %d round-trip failed: %q -> %v, %v", r, r.String(), got, ok)
		}
	}
}

func TestClassification(t *testing.T) {
	cases := []struct {
		in      Inst
		load    bool
		store   bool
		branch  bool
		jump    bool
		writes  bool
		readsR1 bool
		readsR2 bool
	}{
		{Inst{Op: ADD, Rd: A0, Rs1: A1, Rs2: A2}, false, false, false, false, true, true, true},
		{Inst{Op: ADDI, Rd: A0, Rs1: A1, Imm: 4}, false, false, false, false, true, true, false},
		{Inst{Op: LW, Rd: A0, Rs1: SP, Imm: 8}, true, false, false, false, true, true, false},
		{Inst{Op: SW, Rs1: SP, Rs2: A0, Imm: 8}, false, true, false, false, false, true, true},
		{Inst{Op: BEQ, Rs1: A0, Rs2: A1, Imm: 16}, false, false, true, false, false, true, true},
		{Inst{Op: JAL, Rd: RA, Imm: 64}, false, false, false, true, true, false, false},
		{Inst{Op: JALR, Rd: X0, Rs1: RA}, false, false, false, true, false, true, false},
		{Inst{Op: LUI, Rd: T0, Imm: 5}, false, false, false, false, true, false, false},
		{Inst{Op: ECALL}, false, false, false, false, false, false, false},
		// Writes to x0 are not architectural writes.
		{Inst{Op: ADD, Rd: X0, Rs1: A1, Rs2: A2}, false, false, false, false, false, true, true},
	}
	for _, c := range cases {
		if c.in.IsLoad() != c.load {
			t.Errorf("%v IsLoad = %v", c.in, c.in.IsLoad())
		}
		if c.in.IsStore() != c.store {
			t.Errorf("%v IsStore = %v", c.in, c.in.IsStore())
		}
		if c.in.IsBranch() != c.branch {
			t.Errorf("%v IsBranch = %v", c.in, c.in.IsBranch())
		}
		if c.in.IsJump() != c.jump {
			t.Errorf("%v IsJump = %v", c.in, c.in.IsJump())
		}
		if c.in.WritesRd() != c.writes {
			t.Errorf("%v WritesRd = %v", c.in, c.in.WritesRd())
		}
		if c.in.ReadsRs1() != c.readsR1 {
			t.Errorf("%v ReadsRs1 = %v", c.in, c.in.ReadsRs1())
		}
		if c.in.ReadsRs2() != c.readsR2 {
			t.Errorf("%v ReadsRs2 = %v", c.in, c.in.ReadsRs2())
		}
		if c.in.IsMem() != (c.load || c.store) {
			t.Errorf("%v IsMem = %v", c.in, c.in.IsMem())
		}
		if c.in.IsControl() != (c.branch || c.jump) {
			t.Errorf("%v IsControl = %v", c.in, c.in.IsControl())
		}
	}
}

func TestInstString(t *testing.T) {
	cases := []struct {
		in   Inst
		want string
	}{
		{Inst{Op: ADD, Rd: A0, Rs1: A1, Rs2: A2}, "add a0, a1, a2"},
		{Inst{Op: ADDI, Rd: A0, Rs1: A1, Imm: -3}, "addi a0, a1, -3"},
		{Inst{Op: LW, Rd: A0, Rs1: SP, Imm: 8}, "lw a0, 8(sp)"},
		{Inst{Op: SW, Rs1: SP, Rs2: A0, Imm: 8}, "sw a0, 8(sp)"},
		{Inst{Op: BEQ, Rs1: A0, Rs2: A1, Imm: 16}, "beq a0, a1, 16"},
		{Inst{Op: JAL, Rd: RA, Imm: 64}, "jal ra, 64"},
		{Inst{Op: ECALL}, "ecall"},
		{Inst{Op: LUI, Rd: T0, Imm: 5}, "lui t0, 5"},
	}
	for _, c := range cases {
		if got := c.in.String(); got != c.want {
			t.Errorf("String() = %q, want %q", got, c.want)
		}
	}
}

func TestClassLatenciesDistinct(t *testing.T) {
	// Every op must fall into a well-defined class.
	for _, op := range Ops() {
		c := op.Class()
		if c > ClassSys {
			t.Errorf("op %v has invalid class %d", op, c)
		}
	}
	if ADD.Class() != ClassALU || MUL.Class() != ClassMul || DIV.Class() != ClassDiv {
		t.Error("wrong class assignment for add/mul/div")
	}
	if LW.Class() != ClassLoad || SW.Class() != ClassStore {
		t.Error("wrong class assignment for lw/sw")
	}
	if BEQ.Class() != ClassBranch || JAL.Class() != ClassJump || ECALL.Class() != ClassSys {
		t.Error("wrong class assignment for beq/jal/ecall")
	}
}
