package isa

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// knownEncodings pins a few encodings against values cross-checked with the
// RISC-V specification examples.
func TestKnownEncodings(t *testing.T) {
	cases := []struct {
		in   Inst
		want uint32
	}{
		// add a0, a1, a2 -> 0x00c58533
		{Inst{Op: ADD, Rd: A0, Rs1: A1, Rs2: A2}, 0x00c58533},
		// addi a0, a0, 1 -> 0x00150513
		{Inst{Op: ADDI, Rd: A0, Rs1: A0, Imm: 1}, 0x00150513},
		// lw a0, 4(sp) -> 0x00412503
		{Inst{Op: LW, Rd: A0, Rs1: SP, Imm: 4}, 0x00412503},
		// sw a0, 4(sp) -> 0x00a12223
		{Inst{Op: SW, Rs1: SP, Rs2: A0, Imm: 4}, 0x00a12223},
		// beq a0, a1, 8 -> 0x00b50463
		{Inst{Op: BEQ, Rs1: A0, Rs2: A1, Imm: 8}, 0x00b50463},
		// lui a0, 0x12345 -> 0x12345537
		{Inst{Op: LUI, Rd: A0, Imm: 0x12345}, 0x12345537},
		// jal ra, 16 -> 0x010000ef
		{Inst{Op: JAL, Rd: RA, Imm: 16}, 0x010000ef},
		// ecall -> 0x00000073
		{Inst{Op: ECALL}, 0x00000073},
		// mul a0, a1, a2 -> 0x02c58533
		{Inst{Op: MUL, Rd: A0, Rs1: A1, Rs2: A2}, 0x02c58533},
		// srai a0, a1, 3 -> 0x4035d513
		{Inst{Op: SRAI, Rd: A0, Rs1: A1, Imm: 3}, 0x4035d513},
	}
	for _, c := range cases {
		got, err := Encode(c.in)
		if err != nil {
			t.Fatalf("Encode(%v): %v", c.in, err)
		}
		if got != c.want {
			t.Errorf("Encode(%v) = %#08x, want %#08x", c.in, got, c.want)
		}
	}
}

func TestEncodeRangeErrors(t *testing.T) {
	bad := []Inst{
		{Op: ADDI, Rd: A0, Rs1: A0, Imm: 4096},
		{Op: ADDI, Rd: A0, Rs1: A0, Imm: -4096},
		{Op: SLLI, Rd: A0, Rs1: A0, Imm: 32},
		{Op: SW, Rs1: A0, Rs2: A1, Imm: 5000},
		{Op: BEQ, Rs1: A0, Rs2: A1, Imm: 3}, // misaligned
		{Op: BEQ, Rs1: A0, Rs2: A1, Imm: 8192},
		{Op: JAL, Rd: RA, Imm: 1 << 21},
		{Op: LUI, Rd: A0, Imm: 1 << 20},
	}
	for _, in := range bad {
		if w, err := Encode(in); err == nil {
			t.Errorf("Encode(%v) = %#08x, want error", in, w)
		}
	}
}

// randomInst builds a random but encodable instruction for property testing.
func randomInst(r *rand.Rand) Inst {
	ops := Ops()
	op := ops[r.Intn(len(ops))]
	in := Inst{
		Op:  op,
		Rd:  Reg(r.Intn(32)),
		Rs1: Reg(r.Intn(32)),
		Rs2: Reg(r.Intn(32)),
	}
	switch op.Format() {
	case FormatR:
		// no immediate
	case FormatI:
		if op == SLLI || op == SRLI || op == SRAI {
			in.Imm = int32(r.Intn(32))
		} else {
			in.Imm = int32(r.Intn(4096) - 2048)
		}
	case FormatS:
		in.Imm = int32(r.Intn(4096) - 2048)
	case FormatB:
		in.Imm = int32(r.Intn(4096)-2048) * 2
	case FormatU:
		in.Imm = int32(r.Intn(1 << 20))
	case FormatJ:
		in.Imm = int32(r.Intn(1<<20)-(1<<19)) * 2
	}
	// Normalise fields the format does not encode, so equality after a
	// round-trip is well-defined.
	switch op.Format() {
	case FormatI:
		in.Rs2 = 0
	case FormatS, FormatB:
		in.Rd = 0
	case FormatU, FormatJ:
		in.Rs1, in.Rs2 = 0, 0
	}
	if op == ECALL {
		in = Inst{Op: ECALL}
	}
	return in
}

// TestEncodeDecodeRoundTrip is the core property: Decode(Encode(i)) == i for
// every well-formed instruction.
func TestEncodeDecodeRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	for n := 0; n < 20000; n++ {
		in := randomInst(r)
		w, err := Encode(in)
		if err != nil {
			t.Fatalf("Encode(%v): %v", in, err)
		}
		out, err := Decode(w)
		if err != nil {
			t.Fatalf("Decode(%#08x) from %v: %v", w, in, err)
		}
		if out != in {
			t.Fatalf("round trip mismatch: %v -> %#08x -> %v", in, w, out)
		}
	}
}

// TestDecodeRejectsGarbage uses testing/quick to check that Decode either
// fails or produces an instruction that re-encodes to the same word.
func TestDecodeRejectsGarbage(t *testing.T) {
	f := func(w uint32) bool {
		in, err := Decode(w)
		if err != nil {
			return true
		}
		back, err := Encode(in)
		if err != nil {
			// Decoded something un-encodable: a decoder bug.
			return false
		}
		return back == w
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20000}); err != nil {
		t.Error(err)
	}
}
