package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// Traceemit enforces the PR 9 memo-replay invariant inside
// internal/lifetime: every trace event is emitted from Run's epoch
// loop — either directly or through a helper whose name starts with
// "emit" that only Run (or another emit* helper) calls — and never
// from runEpoch. Emission inside runEpoch would be skipped when a
// memoized epoch replays, so traced and untraced runs (and warm and
// cold stores) would stop being byte-identical. Concretely the
// analyzer flags, in package agingcgra/internal/lifetime:
//
//   - any reference to trace.Sink's Emit (call or method value)
//     outside Run / emit* functions, and
//   - any call of an emit* helper from a function other than Run or
//     another emit* helper.
//
// A new event kind must source its data from the memoized epoch
// outcome or from state the loop recomputes every epoch; if a design
// genuinely needs another emission site, annotate it:
// //cgravet:ignore traceemit <reason>.
var Traceemit = &Analyzer{
	Name: "traceemit",
	Doc:  "restrict trace emission in internal/lifetime to Run's epoch loop (memo-replay invariant)",
	Run:  runTraceemit,
}

const (
	lifetimePkgPath = modulePath + "/internal/lifetime"
	tracePkgPath    = modulePath + "/internal/trace"
)

func runTraceemit(pass *Pass) error {
	if pass.Pkg.Path() != lifetimePkgPath {
		return nil
	}
	for _, f := range pass.NonTestFiles() {
		inspectWithStack(f, func(n ast.Node, stack []ast.Node) bool {
			switch n := n.(type) {
			case *ast.SelectorExpr:
				if n.Sel.Name != "Emit" || !pass.isTracePkgMethod(n.Sel) {
					return true
				}
				if fn := enclosingFuncName(stack); !traceEmitAllowed(fn) {
					pass.Reportf(n.Pos(),
						"trace emission in %s: events may only be emitted from Run's epoch loop or an emit* helper, never here — a memo-replayed epoch would not re-emit them (PR 9 invariant)",
						describeFunc(fn))
				}
			case *ast.CallExpr:
				id, ok := n.Fun.(*ast.Ident)
				if !ok || !strings.HasPrefix(id.Name, "emit") {
					return true
				}
				if fnObj, ok := pass.TypesInfo.Uses[id].(*types.Func); !ok || fnObj.Pkg() == nil || fnObj.Pkg().Path() != lifetimePkgPath {
					return true
				}
				if fn := enclosingFuncName(stack); !traceEmitAllowed(fn) {
					pass.Reportf(n.Pos(),
						"call of %s in %s: emit* helpers may only be invoked from Run's epoch loop or another emit* helper — a memo-replayed epoch would not re-emit their events (PR 9 invariant)",
						id.Name, describeFunc(fn))
				}
			}
			return true
		})
	}
	return nil
}

// isTracePkgMethod reports whether sel resolves to a method declared
// by (or promoted from) a type of the internal/trace package — the
// Sink interface's Emit and any concrete sink's Emit.
func (p *Pass) isTracePkgMethod(sel *ast.Ident) bool {
	obj, ok := p.TypesInfo.Uses[sel].(*types.Func)
	if !ok {
		return false
	}
	sig, ok := obj.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	return obj.Pkg() != nil && obj.Pkg().Path() == tracePkgPath
}

// traceEmitAllowed reports whether a function name is a legal
// emission site.
func traceEmitAllowed(name string) bool {
	return name == "Run" || strings.HasPrefix(name, "emit")
}

// enclosingFuncName returns the name of the innermost enclosing
// function declaration ("" for file scope; function literals inherit
// the name of the declaration that contains them, since a closure
// built inside Run still runs — or not — with Run's loop).
func enclosingFuncName(stack []ast.Node) string {
	for i := len(stack) - 1; i >= 0; i-- {
		if fd, ok := stack[i].(*ast.FuncDecl); ok {
			return fd.Name.Name
		}
	}
	return ""
}

func describeFunc(name string) string {
	if name == "" {
		return "file scope"
	}
	return name
}
