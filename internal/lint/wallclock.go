package lint

import (
	"go/ast"
	"go/types"
)

// Wallclock enforces the determinism contract's first rule: simulation
// packages (the module root and internal/...) never read the wall
// clock. Results must be a pure function of (scenario, seed) —
// byte-identical serial vs parallel, warm vs cold — and a time.Now
// anywhere under internal/ is how wall time leaks into that function.
// Wall time may only enter via cmd/ (benchmark timing, report
// timestamps) or service request plumbing, and any genuine exception
// must be annotated: //cgravet:ignore wallclock <reason>.
var Wallclock = &Analyzer{
	Name: "wallclock",
	Doc:  "forbid wall-clock reads (time.Now, time.Since, ...) in simulation packages",
	Run:  runWallclock,
}

// wallclockBanned is every package-level func of time that observes
// the wall clock or schedules against it. Constructors of explicit
// values (time.Date, time.Unix, time.Duration arithmetic) are fine.
var wallclockBanned = map[string]string{
	"Now":       "reads the wall clock",
	"Since":     "reads the wall clock",
	"Until":     "reads the wall clock",
	"Sleep":     "stalls on the wall clock",
	"Tick":      "schedules on the wall clock",
	"After":     "schedules on the wall clock",
	"AfterFunc": "schedules on the wall clock",
	"NewTicker": "schedules on the wall clock",
	"NewTimer":  "schedules on the wall clock",
}

func runWallclock(pass *Pass) error {
	if !pass.InSimulationScope() {
		return nil
	}
	for _, f := range pass.NonTestFiles() {
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			ident, ok := sel.X.(*ast.Ident)
			if !ok {
				return true
			}
			pn, ok := pass.TypesInfo.Uses[ident].(*types.PkgName)
			if !ok || pn.Imported().Path() != "time" {
				return true
			}
			why, banned := wallclockBanned[sel.Sel.Name]
			if !banned {
				return true
			}
			pass.Reportf(sel.Pos(),
				"time.%s %s inside simulation package %s; results must be a pure function of (scenario, seed) — wall time may only enter via cmd/ or service request plumbing",
				sel.Sel.Name, why, pass.Pkg.Path())
			return true
		})
	}
	return nil
}
