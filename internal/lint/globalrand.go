package lint

import (
	"go/ast"
	"go/types"
)

// Globalrand enforces the PR 6 PRNG keying rule in simulation
// packages: every pseudo-random draw must come from explicitly seeded
// local state — splitmix64-style hashing of (seed, epoch, stream,
// cell, counter), or at minimum rand.New(rand.NewSource(seed)) — never
// from math/rand's process-global generator. A global draw is shared
// mutable state: goroutine interleaving orders the draws, which is
// exactly how serial and parallel runs stop being byte-identical.
//
// Constructors that build local state (rand.New, rand.NewSource,
// rand.NewZipf, rand.NewPCG, rand.NewChaCha8) are allowed; every other
// package-level function of math/rand or math/rand/v2 (Intn, Float64,
// Perm, Shuffle, Seed, ...) draws from or reseeds the global source
// and is flagged.
var Globalrand = &Analyzer{
	Name: "globalrand",
	Doc:  "forbid draws from math/rand's global PRNG in simulation packages (seeded local state only)",
	Run:  runGlobalrand,
}

// globalrandAllowed lists the math/rand package-level functions that
// construct local generator state rather than touching the global one.
var globalrandAllowed = map[string]bool{
	"New":        true,
	"NewSource":  true,
	"NewZipf":    true,
	"NewPCG":     true, // math/rand/v2
	"NewChaCha8": true, // math/rand/v2
}

func runGlobalrand(pass *Pass) error {
	if !pass.InSimulationScope() {
		return nil
	}
	// Test files are checked too: a global draw in a test makes the
	// test itself irreproducible, and the seeded idiom
	// rand.New(rand.NewSource(n)) passes untouched.
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			ident, ok := sel.X.(*ast.Ident)
			if !ok {
				return true
			}
			pn, ok := pass.TypesInfo.Uses[ident].(*types.PkgName)
			if !ok {
				return true
			}
			path := pn.Imported().Path()
			if path != "math/rand" && path != "math/rand/v2" {
				return true
			}
			// Only package-level *functions* touch the global source;
			// type references (rand.Rand, rand.Source) are fine.
			if _, isFunc := pass.TypesInfo.Uses[sel.Sel].(*types.Func); !isFunc {
				return true
			}
			if globalrandAllowed[sel.Sel.Name] {
				return true
			}
			pass.Reportf(sel.Pos(),
				"rand.%s draws from %s's process-global PRNG in simulation package %s; use explicitly seeded local state (splitmix64 keying or rand.New(rand.NewSource(seed))) so serial and parallel runs stay byte-identical",
				sel.Sel.Name, path, pass.Pkg.Path())
			return true
		})
	}
	return nil
}
