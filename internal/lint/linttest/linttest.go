// Package linttest is the project's analysistest equivalent: it loads
// a fixture package from a testdata/src tree, type-checks it (module-
// local imports resolve within the tree, standard-library imports
// compile from GOROOT source), runs a set of lint analyzers through
// the production lint.Analyze driver — directives and suppression
// included — and compares the findings against `// want "regexp"`
// comments in the fixtures.
//
// Fixture layout mirrors x/tools: testdata/src/<import/path>/*.go.
// A want comment names every diagnostic expected on its line:
//
//	time.Now() // want `time\.Now reads the wall clock`
//	x = 1      // want "never used" "second expectation"
//
// Expectations are Go string literals (quoted or backquoted), each a
// regular expression matched against the diagnostic messages reported
// on that line. Unmatched diagnostics and unmet expectations both fail
// the test.
package linttest

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"testing"

	"agingcgra/internal/lint"
)

// Run loads the fixture package at testdata/src/<pkgpath> and checks
// the analyzers' findings against the fixtures' want comments.
func Run(t *testing.T, testdata string, analyzers []*lint.Analyzer, pkgpath string) {
	t.Helper()
	l := newLoader(filepath.Join(testdata, "src"))
	files, pkg, info, err := l.loadTarget(pkgpath)
	if err != nil {
		t.Fatalf("loading fixture %s: %v", pkgpath, err)
	}
	findings, err := lint.Analyze(l.fset, files, pkg, info, analyzers)
	if err != nil {
		t.Fatalf("analyzing fixture %s: %v", pkgpath, err)
	}
	checkWants(t, l.fset, files, findings)
}

// loader resolves imports for fixture packages: paths present under
// root load (and type-check) from the fixture tree, everything else
// comes from GOROOT source.
type loader struct {
	fset *token.FileSet
	root string
	std  types.Importer
	pkgs map[string]*types.Package
}

func newLoader(root string) *loader {
	fset := token.NewFileSet()
	return &loader{
		fset: fset,
		root: root,
		std:  importer.ForCompiler(fset, "source", nil),
		pkgs: map[string]*types.Package{},
	}
}

// Import implements types.Importer for dependency packages.
func (l *loader) Import(path string) (*types.Package, error) {
	if pkg, ok := l.pkgs[path]; ok {
		return pkg, nil
	}
	dir := filepath.Join(l.root, filepath.FromSlash(path))
	if st, err := os.Stat(dir); err == nil && st.IsDir() {
		_, pkg, _, err := l.check(path)
		return pkg, err
	}
	return l.std.Import(path)
}

// loadTarget loads the package under test, keeping its syntax and
// type info for the analyzers.
func (l *loader) loadTarget(path string) ([]*ast.File, *types.Package, *types.Info, error) {
	return l.check(path)
}

func (l *loader) check(path string) ([]*ast.File, *types.Package, *types.Info, error) {
	dir := filepath.Join(l.root, filepath.FromSlash(path))
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, nil, nil, err
	}
	var names []string
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	if len(names) == 0 {
		return nil, nil, nil, fmt.Errorf("no fixture files in %s", dir)
	}
	var files []*ast.File
	for _, name := range names {
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, nil, nil, err
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Implicits:  map[ast.Node]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Scopes:     map[ast.Node]*types.Scope{},
		Instances:  map[*ast.Ident]types.Instance{},
	}
	tc := &types.Config{Importer: l}
	pkg, err := tc.Check(path, l.fset, files, info)
	if err != nil {
		return nil, nil, nil, fmt.Errorf("type-checking %s: %w", path, err)
	}
	l.pkgs[path] = pkg
	return files, pkg, info, nil
}

// expectation is one want regexp at a file:line.
type expectation struct {
	file string
	line int
	re   *regexp.Regexp
	raw  string
	met  bool
}

// checkWants matches findings against want comments.
func checkWants(t *testing.T, fset *token.FileSet, files []*ast.File, findings []lint.Finding) {
	t.Helper()
	var wants []*expectation
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				wants = append(wants, parseWants(t, fset, c)...)
			}
		}
	}

	for _, f := range findings {
		pos := fset.Position(f.Pos)
		matched := false
		for _, w := range wants {
			if w.met || w.file != pos.Filename || w.line != pos.Line {
				continue
			}
			if w.re.MatchString(f.Message) {
				w.met = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("%s: unexpected %s diagnostic: %s", pos, f.Analyzer, f.Message)
		}
	}
	for _, w := range wants {
		if !w.met {
			t.Errorf("%s:%d: expected diagnostic matching %q, got none", w.file, w.line, w.raw)
		}
	}
}

// parseWants extracts the expectations of one comment. The comment
// text after "want" is a sequence of Go string literals. A line
// offset — `// want-1 "re"` — anchors the expectation to a nearby
// line, for diagnostics on lines fully occupied by the construct
// under test (e.g. a trailing //cgravet:ignore directive).
func parseWants(t *testing.T, fset *token.FileSet, c *ast.Comment) []*expectation {
	t.Helper()
	text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
	if !strings.HasPrefix(text, "want") {
		return nil
	}
	pos := fset.Position(c.Pos())
	rest := text[len("want"):]
	offset := 0
	if rest != "" && (rest[0] == '+' || rest[0] == '-') {
		j := 1
		for j < len(rest) && rest[j] >= '0' && rest[j] <= '9' {
			j++
		}
		if j == 1 {
			return nil
		}
		n, err := strconv.Atoi(rest[:j])
		if err != nil {
			return nil
		}
		offset = n
		rest = rest[j:]
	}
	if rest == "" || (rest[0] != ' ' && rest[0] != '\t') {
		return nil
	}
	rest = strings.TrimSpace(rest)
	pos.Line += offset
	var out []*expectation
	for rest != "" {
		var lit string
		switch rest[0] {
		case '"':
			end := matchDoubleQuote(rest)
			if end < 0 {
				t.Fatalf("%s: unterminated want pattern: %s", pos, rest)
			}
			lit = rest[:end+1]
			rest = strings.TrimSpace(rest[end+1:])
		case '`':
			end := strings.IndexByte(rest[1:], '`')
			if end < 0 {
				t.Fatalf("%s: unterminated want pattern: %s", pos, rest)
			}
			lit = rest[:end+2]
			rest = strings.TrimSpace(rest[end+2:])
		default:
			t.Fatalf("%s: malformed want comment near %q (expect quoted regexps)", pos, rest)
		}
		unq, err := strconv.Unquote(lit)
		if err != nil {
			t.Fatalf("%s: bad want literal %s: %v", pos, lit, err)
		}
		re, err := regexp.Compile(unq)
		if err != nil {
			t.Fatalf("%s: bad want regexp %q: %v", pos, unq, err)
		}
		out = append(out, &expectation{file: pos.Filename, line: pos.Line, re: re, raw: unq})
	}
	return out
}

// matchDoubleQuote returns the index of the closing quote of the
// double-quoted Go string literal at the start of s, or -1.
func matchDoubleQuote(s string) int {
	for i := 1; i < len(s); i++ {
		switch s[i] {
		case '\\':
			i++
		case '"':
			return i
		}
	}
	return -1
}
