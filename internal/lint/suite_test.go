package lint_test

import (
	"testing"

	"agingcgra/internal/lint"
	"agingcgra/internal/lint/linttest"
)

// Each analyzer runs against a fixture package seeded with violations
// (and with legal idioms that must stay silent); expectations live in
// the fixtures as `// want "regexp"` comments.

func TestWallclock(t *testing.T) {
	linttest.Run(t, "testdata", []*lint.Analyzer{lint.Wallclock}, "agingcgra/internal/simclock")
}

// TestWallclockCmdScope checks the scope rule: cmd/ binaries may read
// the wall clock, so the fixture has zero want comments and the test
// fails if the analyzer reports anything there.
func TestWallclockCmdScope(t *testing.T) {
	linttest.Run(t, "testdata", []*lint.Analyzer{lint.Wallclock}, "agingcgra/cmd/clockok")
}

func TestGlobalrand(t *testing.T) {
	linttest.Run(t, "testdata", []*lint.Analyzer{lint.Globalrand}, "agingcgra/internal/simrand")
}

func TestMaporder(t *testing.T) {
	linttest.Run(t, "testdata", []*lint.Analyzer{lint.Maporder}, "agingcgra/internal/mapemit")
}

func TestTraceemit(t *testing.T) {
	linttest.Run(t, "testdata", []*lint.Analyzer{lint.Traceemit}, "agingcgra/internal/lifetime")
}

func TestNilness(t *testing.T) {
	linttest.Run(t, "testdata", []*lint.Analyzer{lint.Nilness}, "agingcgra/internal/nilfix")
}

func TestUnusedwrite(t *testing.T) {
	linttest.Run(t, "testdata", []*lint.Analyzer{lint.Unusedwrite}, "agingcgra/internal/deadwrite")
}

// TestDirectives covers the directive contract: an ignore without a
// reason, a bare ignore, an unknown analyzer, and the spaced near-miss
// are all findings themselves — and none of them suppresses the
// wallclock violation they sit on. Only the well-formed directive in
// ValidSuppression silences its line.
func TestDirectives(t *testing.T) {
	linttest.Run(t, "testdata", []*lint.Analyzer{lint.DirectiveAnalyzer, lint.Wallclock}, "agingcgra/internal/dirfix")
}
