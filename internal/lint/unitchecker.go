package lint

import (
	"crypto/sha256"
	"encoding/json"
	"flag"
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
)

// This file implements the `go vet -vettool` command-line protocol on
// the standard library alone (the canonical implementation lives in
// golang.org/x/tools/go/analysis/unitchecker, which this dependency-
// free tree cannot import). The go command drives the tool three ways:
//
//	cgra-vet -V=full        print a version/build fingerprint
//	cgra-vet -flags         print supported flags as JSON
//	cgra-vet [flags] x.cfg  analyze one package unit described by x.cfg
//
// The cfg file carries the unit's source files plus a map from import
// paths to compiler export-data files, so each unit type-checks
// without re-loading its dependencies from source. Invoked with
// package patterns instead of a cfg file, the tool re-executes itself
// through `go vet -vettool=<self> <patterns>` so `go run
// ./cmd/cgra-vet ./...` works directly.

// vetConfig mirrors the JSON written by cmd/go for each vet unit.
type vetConfig struct {
	ID         string
	Compiler   string
	Dir        string
	ImportPath string
	GoFiles    []string
	NonGoFiles []string

	ImportMap   map[string]string
	PackageFile map[string]string
	Standard    map[string]bool

	VetxOnly   bool
	VetxOutput string
	GoVersion  string

	SucceedOnTypecheckFailure bool
}

// Main is the entry point of a cgra-vet-style multichecker over the
// given analyzers. It never returns.
func Main(analyzers ...*Analyzer) {
	progname := filepath.Base(os.Args[0])

	fs := flag.NewFlagSet(progname, flag.ExitOnError)
	versionFlag := fs.String("V", "", "print version and exit (-V=full for a build fingerprint)")
	flagsFlag := fs.Bool("flags", false, "print analyzer flags in JSON (used by the go command)")
	enabled := map[string]*bool{}
	for _, a := range analyzers {
		enabled[a.Name] = fs.Bool(a.Name, true, a.Doc)
	}
	fs.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: %s [-<analyzer>=false ...] <packages|unit.cfg>\n\n", progname)
		fmt.Fprintf(os.Stderr, "%s is the agingcgra invariants-as-lint suite; run it via\n", progname)
		fmt.Fprintf(os.Stderr, "`go vet -vettool=$(command -v %s) ./...` or directly with package patterns.\n\nAnalyzers:\n", progname)
		for _, a := range analyzers {
			fmt.Fprintf(os.Stderr, "  %-12s %s\n", a.Name, a.Doc)
		}
	}
	fs.Parse(os.Args[1:])

	if *versionFlag != "" {
		// The go command parses this exact shape to fingerprint the
		// tool for its action cache (see cmd/go/internal/work.toolID).
		if *versionFlag == "full" {
			fmt.Printf("%s version devel comments-go-here buildID=%02x\n", progname, selfHash())
		} else {
			fmt.Printf("%s version devel\n", progname)
		}
		os.Exit(0)
	}
	if *flagsFlag {
		// The go command merges these into `go vet`'s own flag set.
		type jsonFlag struct {
			Name  string
			Bool  bool
			Usage string
		}
		var out []jsonFlag
		for _, a := range analyzers {
			out = append(out, jsonFlag{Name: a.Name, Bool: true, Usage: a.Doc})
		}
		data, err := json.Marshal(out)
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", progname, err)
			os.Exit(1)
		}
		os.Stdout.Write(data)
		fmt.Println()
		os.Exit(0)
	}

	args := fs.Args()
	if len(args) == 1 && strings.HasSuffix(args[0], ".cfg") {
		var active []*Analyzer
		for _, a := range analyzers {
			if *enabled[a.Name] {
				active = append(active, a)
			}
		}
		os.Exit(runUnitFile(progname, args[0], active))
	}

	// Package patterns: delegate loading to the go command, which
	// calls back into this binary once per package unit.
	os.Exit(reexecGoVet(progname, fs, enabled, args))
}

// selfHash fingerprints the executable so the go command's cache
// invalidates when the tool is rebuilt.
func selfHash() [sha256.Size]byte {
	exe, err := os.Executable()
	if err == nil {
		if data, err := os.ReadFile(exe); err == nil {
			return sha256.Sum256(data)
		}
	}
	return sha256.Sum256([]byte(os.Args[0]))
}

// reexecGoVet runs `go vet -vettool=<self>` over the given package
// patterns, forwarding any non-default analyzer toggles.
func reexecGoVet(progname string, fs *flag.FlagSet, enabled map[string]*bool, patterns []string) int {
	exe, err := os.Executable()
	if err != nil {
		fmt.Fprintf(os.Stderr, "%s: cannot locate own executable: %v\n", progname, err)
		return 1
	}
	goArgs := []string{"vet", "-vettool=" + exe}
	fs.Visit(func(f *flag.Flag) {
		if _, ok := enabled[f.Name]; ok {
			goArgs = append(goArgs, "-"+f.Name+"="+f.Value.String())
		}
	})
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	goArgs = append(goArgs, patterns...)
	cmd := exec.Command("go", goArgs...)
	cmd.Stdout = os.Stdout
	cmd.Stderr = os.Stderr
	cmd.Stdin = os.Stdin
	if err := cmd.Run(); err != nil {
		if ee, ok := err.(*exec.ExitError); ok {
			return ee.ExitCode()
		}
		fmt.Fprintf(os.Stderr, "%s: %v\n", progname, err)
		return 1
	}
	return 0
}

// runUnitFile analyzes the package unit described by cfgPath and
// returns the process exit code (0 clean, 2 findings, 1 internal
// error — the go vet convention).
func runUnitFile(progname, cfgPath string, analyzers []*Analyzer) int {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "%s: %v\n", progname, err)
		return 1
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fmt.Fprintf(os.Stderr, "%s: parsing %s: %v\n", progname, cfgPath, err)
		return 1
	}

	// The go command re-reads this file to cache the unit's "facts";
	// this suite keeps no cross-package facts, but the file must exist.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, nil, 0o666); err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", progname, err)
			return 1
		}
	}
	if cfg.VetxOnly {
		// Dependency unit analyzed only for facts: nothing to do.
		return 0
	}

	findings, err := analyzeUnit(&cfg, analyzers)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return 0
		}
		fmt.Fprintf(os.Stderr, "%s: %v\n", progname, err)
		return 1
	}
	for _, f := range findings {
		fmt.Fprintf(os.Stderr, "%s: %s\n", f.position, f.text)
	}
	if len(findings) > 0 {
		return 2
	}
	return 0
}

// renderedFinding is a finding with its position resolved.
type renderedFinding struct {
	position string
	text     string
}

// analyzeUnit parses and type-checks the unit, then runs the analyzers.
func analyzeUnit(cfg *vetConfig, analyzers []*Analyzer) ([]renderedFinding, error) {
	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}

	pkg, info, err := typeCheckUnit(cfg, fset, files)
	if err != nil {
		return nil, err
	}

	fs, err := Analyze(fset, files, pkg, info, analyzers)
	if err != nil {
		return nil, err
	}
	var out []renderedFinding
	for _, f := range fs {
		out = append(out, renderedFinding{
			position: fset.Position(f.Pos).String(),
			text:     f.Analyzer + ": " + f.Message,
		})
	}
	return out, nil
}

// typeCheckUnit type-checks the unit against the export data of its
// dependencies, exactly as the go command prepared it.
func typeCheckUnit(cfg *vetConfig, fset *token.FileSet, files []*ast.File) (*types.Package, *types.Info, error) {
	compilerImporter := importer.ForCompiler(fset, cfg.Compiler, func(path string) (io.ReadCloser, error) {
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	})
	imp := importerFunc(func(importPath string) (*types.Package, error) {
		path, ok := cfg.ImportMap[importPath]
		if !ok {
			path = importPath
		}
		if path == "unsafe" {
			return types.Unsafe, nil
		}
		return compilerImporter.Import(path)
	})
	tc := &types.Config{
		Importer:  imp,
		GoVersion: cfg.GoVersion,
		Sizes:     types.SizesFor(cfg.Compiler, build.Default.GOARCH),
	}
	info := newTypesInfo()
	pkg, err := tc.Check(cfg.ImportPath, fset, files, info)
	if err != nil {
		return nil, nil, err
	}
	return pkg, info, nil
}

// newTypesInfo allocates the full types.Info the analyzers rely on.
func newTypesInfo() *types.Info {
	return &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Implicits:  map[ast.Node]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Scopes:     map[ast.Node]*types.Scope{},
		Instances:  map[*ast.Ident]types.Instance{},
	}
}

// importerFunc adapts a function to types.Importer.
type importerFunc func(path string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }
