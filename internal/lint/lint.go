// Package lint is the project's invariants-as-lint layer: a small
// analysis framework (in the spirit of golang.org/x/tools/go/analysis,
// reimplemented on the standard library because this tree builds with
// no external module dependencies) plus the cgra-vet analyzer suite
// that enforces the determinism and memo-key contracts documented in
// ROADMAP.md at `go vet` time, before any simulation runs.
//
// The project-specific analyzers are:
//
//   - wallclock:  no time.Now/time.Since (or any wall-clock read) in
//     simulation packages — wall time may only enter via cmd/ or
//     service request plumbing.
//   - globalrand: no draws from math/rand's shared global state in
//     simulation packages — PRNG state must be an explicitly seeded
//     local source (splitmix64-style keyed hashing per PR 6, or
//     rand.New(rand.NewSource(seed))).
//   - maporder:   a `range` over a map whose body appends to a slice
//     that is never sorted afterwards, or feeds a writer/encoder/trace
//     sink, leaks Go's randomized map order into "byte-identical"
//     outputs.
//   - traceemit:  trace emission in internal/lifetime is only legal
//     from Run's epoch loop (or its emit* helpers) — never from
//     runEpoch — so memo-replayed epochs re-emit their recorded
//     events (the PR 9 invariant).
//
// plus stdlib reimplementations of the core patterns of the stock
// x/tools checks nilness and unusedwrite (see their files for the
// precise subset), and a validator for //cgravet:ignore directives.
//
// A finding is suppressed by an audit-friendly directive on the same
// line (or the line above, or the doc comment of the enclosing
// top-level declaration):
//
//	//cgravet:ignore <analyzer> <reason>
//
// The reason is mandatory: an ignore without one is itself a finding,
// so every exception in the tree is visible and auditable.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Analyzer is one static check. Run inspects the package held by the
// Pass and reports findings through pass.Report/Reportf.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics, enable/disable
	// flags, and //cgravet:ignore directives. Lower-case, no spaces.
	Name string
	// Doc is a one-line description (shown by -flags and in usage).
	Doc string
	// Run performs the analysis. Diagnostics go through pass.Report.
	Run func(pass *Pass) error
}

// Diagnostic is one finding at a source position.
type Diagnostic struct {
	Pos     token.Pos
	Message string
}

// Pass carries one analyzer's view of one type-checked package unit.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	// report receives every diagnostic; the driver applies
	// //cgravet:ignore suppression afterwards.
	report func(Diagnostic)
}

// Report emits a diagnostic.
func (p *Pass) Report(d Diagnostic) { p.report(d) }

// Reportf emits a formatted diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// InModule reports whether the package under analysis belongs to this
// module (the agingcgra tree), as opposed to a dependency unit go vet
// hands the tool for export data only.
func (p *Pass) InModule() bool {
	path := p.Pkg.Path()
	return path == modulePath || strings.HasPrefix(path, modulePath+"/")
}

// InSimulationScope reports whether the package is one the determinism
// contract binds: the module root and everything under internal/.
// cmd/ and examples/ are process entry points where wall time and
// one-shot randomness are legitimate.
func (p *Pass) InSimulationScope() bool {
	path := p.Pkg.Path()
	return path == modulePath || strings.HasPrefix(path, modulePath+"/internal/")
}

const modulePath = "agingcgra"

// IsTestFile reports whether the file at pos is a _test.go file.
// Test code times out, polls deadlines, and builds throwaway maps;
// the simulation-determinism analyzers skip it.
func (p *Pass) IsTestFile(pos token.Pos) bool {
	return strings.HasSuffix(p.Fset.Position(pos).Filename, "_test.go")
}

// NonTestFiles yields the unit's non-test files.
func (p *Pass) NonTestFiles() []*ast.File {
	var out []*ast.File
	for _, f := range p.Files {
		if !p.IsTestFile(f.Pos()) {
			out = append(out, f)
		}
	}
	return out
}

// Suite returns the full cgra-vet analyzer set in reporting order.
// Directive validation runs first so a malformed ignore is reported
// even when the analyzer it names is disabled.
func Suite() []*Analyzer {
	return []*Analyzer{
		DirectiveAnalyzer,
		Wallclock,
		Globalrand,
		Maporder,
		Traceemit,
		Nilness,
		Unusedwrite,
	}
}

// Finding is one unsuppressed diagnostic of a named analyzer, as
// returned by Analyze.
type Finding struct {
	Analyzer string
	Pos      token.Pos
	Message  string
}

// Analyze runs the analyzers over one parsed, type-checked package:
// it parses the files' //cgravet:ignore directives, executes every
// analyzer, filters suppressed findings, and returns the rest in
// file/position order. Both the vet-tool driver and the linttest
// harness go through here, so fixtures exercise the exact production
// suppression semantics.
func Analyze(fset *token.FileSet, files []*ast.File, pkg *types.Package, info *types.Info, analyzers []*Analyzer) ([]Finding, error) {
	u := &unit{fset: fset, files: files, pkg: pkg, info: info}
	for _, f := range files {
		u.dirs = append(u.dirs, parseDirectives(fset, f)...)
	}
	fs, err := u.runAnalyzers(analyzers)
	if err != nil {
		return nil, err
	}
	out := make([]Finding, 0, len(fs))
	for _, f := range fs {
		out = append(out, Finding{Analyzer: f.analyzer, Pos: f.diag.Pos, Message: f.diag.Message})
	}
	return out, nil
}

// unit is one loaded, type-checked package plus its parsed
// //cgravet:ignore directives; the driver runs every enabled analyzer
// over it and filters the combined findings through the directives.
type unit struct {
	fset  *token.FileSet
	files []*ast.File
	pkg   *types.Package
	info  *types.Info
	dirs  []directive
}

// finding pairs a diagnostic with the analyzer that produced it.
type finding struct {
	analyzer string
	diag     Diagnostic
}

// runAnalyzers executes the analyzers over the unit and returns the
// unsuppressed findings in file/position order.
func (u *unit) runAnalyzers(analyzers []*Analyzer) ([]finding, error) {
	known := make(map[string]bool)
	for _, a := range analyzers {
		known[a.Name] = true
	}
	var out []finding
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer:  a,
			Fset:      u.fset,
			Files:     u.files,
			Pkg:       u.pkg,
			TypesInfo: u.info,
		}
		pass.report = func(d Diagnostic) {
			if u.suppressed(a.Name, d.Pos) {
				return
			}
			out = append(out, finding{analyzer: a.Name, diag: d})
		}
		if a.Name == directiveName {
			// The directive validator needs the known-analyzer set and
			// the parsed directives; smuggle them via the unit.
			if err := runDirectiveCheck(pass, u.dirs, known); err != nil {
				return nil, err
			}
			continue
		}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("analyzer %s: %w", a.Name, err)
		}
	}
	sort.SliceStable(out, func(i, j int) bool {
		pi, pj := u.fset.Position(out[i].diag.Pos), u.fset.Position(out[j].diag.Pos)
		if pi.Filename != pj.Filename {
			return pi.Filename < pj.Filename
		}
		if pi.Line != pj.Line {
			return pi.Line < pj.Line
		}
		return pi.Column < pj.Column
	})
	return out, nil
}

// suppressed reports whether a valid //cgravet:ignore directive covers
// the analyzer at the diagnostic's line. Invalid directives (missing
// reason, unknown analyzer) never suppress: they surface as findings
// of the directive analyzer instead.
func (u *unit) suppressed(analyzer string, pos token.Pos) bool {
	p := u.fset.Position(pos)
	for _, d := range u.dirs {
		if d.analyzer != analyzer || !d.valid {
			continue
		}
		if d.file == p.Filename && d.startLine <= p.Line && p.Line <= d.endLine {
			return true
		}
	}
	return false
}

// inspectWithStack walks the AST under root, calling fn with each node
// and the stack of its ancestors (outermost first, not including n).
// Returning false prunes the subtree.
func inspectWithStack(root ast.Node, fn func(n ast.Node, stack []ast.Node) bool) {
	var stack []ast.Node
	ast.Inspect(root, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		if !fn(n, stack) {
			// Pruned subtrees get no post-visit nil, so don't push.
			return false
		}
		stack = append(stack, n)
		return true
	})
}
