package lint

import (
	"go/ast"
	"go/types"
	"sort"
	"strings"
)

// Maporder flags the pattern by which Go's randomized map iteration
// order leaks into outputs the project promises are byte-identical:
// a `range` over a map whose body
//
//   - appends to a slice declared outside the loop that is never
//     sorted afterwards in the same block,
//   - writes to a writer/encoder/trace sink declared outside the loop
//     (Write*, Encode, Emit, Fprint*, Print*), or
//   - sends on a channel declared outside the loop.
//
// The blessed idiom is: collect the keys, sort them, then iterate the
// sorted keys — an append that *is* sorted in the statements following
// the loop passes. A genuinely order-independent use (e.g. feeding a
// commutative reducer through a sink-shaped API) must be annotated:
// //cgravet:ignore maporder <reason>.
var Maporder = &Analyzer{
	Name: "maporder",
	Doc:  "flag map iteration whose order reaches slices, encoders, or trace events unsorted",
	Run:  runMaporder,
}

// maporderSinks is the method/function name set treated as emission:
// once bytes or events leave through one of these in map-iteration
// order, no later sort can fix them.
var maporderSinks = map[string]bool{
	"Write": true, "WriteString": true, "WriteByte": true, "WriteRune": true,
	"WriteAll": true, "Encode": true, "Emit": true,
	"Fprint": true, "Fprintf": true, "Fprintln": true,
	"Print": true, "Printf": true, "Println": true,
}

// maporderSorters maps package path → function names that establish a
// deterministic order over a slice.
var maporderSorters = map[string]map[string]bool{
	"sort": {
		"Sort": true, "Stable": true, "Strings": true, "Ints": true,
		"Float64s": true, "Slice": true, "SliceStable": true,
	},
	"slices": {
		"Sort": true, "SortFunc": true, "SortStableFunc": true,
	},
}

func runMaporder(pass *Pass) error {
	if !pass.InModule() {
		return nil
	}
	for _, f := range pass.NonTestFiles() {
		inspectWithStack(f, func(n ast.Node, stack []ast.Node) bool {
			rs, ok := n.(*ast.RangeStmt)
			if !ok {
				return true
			}
			t := pass.TypesInfo.TypeOf(rs.X)
			if t == nil {
				return true
			}
			if _, isMap := t.Underlying().(*types.Map); !isMap {
				return true
			}
			pass.checkMapRange(rs, stack)
			return true
		})
	}
	return nil
}

// pendingAppend tracks one append target awaiting a post-loop sort:
// the root object plus the rendered expression path ("g.liveOuts"), so
// sorting a sibling field of the same struct does not count.
type pendingAppend struct {
	obj types.Object
	key string
}

// checkMapRange inspects one map-ranging loop.
func (p *Pass) checkMapRange(rs *ast.RangeStmt, stack []ast.Node) {
	// Pending appends: target (declared outside the body) → position
	// of the first append, awaiting a post-loop sort.
	pending := map[pendingAppend]ast.Node{}

	ast.Inspect(rs.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.SendStmt:
			if obj := p.rootObj(n.Chan); obj != nil && !declaredWithin(obj, rs.Body) {
				p.Reportf(n.Pos(),
					"send on %s inside map iteration publishes values in randomized map order; iterate sorted keys instead", obj.Name())
			}
		case *ast.AssignStmt:
			for i, rhs := range n.Rhs {
				call, ok := rhs.(*ast.CallExpr)
				if !ok || !p.isBuiltinAppend(call) || i >= len(n.Lhs) {
					continue
				}
				obj := p.rootObj(n.Lhs[i])
				if obj == nil || declaredWithin(obj, rs.Body) {
					continue
				}
				target := pendingAppend{obj: obj, key: exprKey(n.Lhs[i])}
				if _, seen := pending[target]; !seen {
					pending[target] = n
				}
			}
		case *ast.CallExpr:
			sel, ok := n.Fun.(*ast.SelectorExpr)
			if !ok || !maporderSinks[sel.Sel.Name] {
				return true
			}
			// Receiver (or the writer argument of an Fprint-style
			// package function) declared inside the loop body is
			// per-iteration state: order-independent.
			target := ast.Expr(sel.X)
			if _, isPkg := p.TypesInfo.Uses[firstIdent(sel.X)].(*types.PkgName); isPkg {
				if len(n.Args) > 0 && (sel.Sel.Name == "Fprint" || sel.Sel.Name == "Fprintf" || sel.Sel.Name == "Fprintln") {
					target = n.Args[0]
				} else {
					target = nil // Print/Printf/Println: process-global stdout.
				}
			}
			if target != nil {
				if obj := p.rootObj(target); obj != nil && declaredWithin(obj, rs.Body) {
					return true
				}
			}
			p.Reportf(n.Pos(),
				"%s called inside map iteration emits in randomized map order; collect and sort the keys first (or annotate: //cgravet:ignore maporder <reason>)",
				sel.Sel.Name)
		}
		return true
	})

	if len(pending) == 0 {
		return
	}
	// An append target sorted in the same block after the loop is the
	// blessed collect-then-sort idiom. Report in source order: pending
	// is itself a map, and the linter must not emit in map order.
	type failed struct {
		target pendingAppend
		at     ast.Node
	}
	var fails []failed
	for target, at := range pending {
		if p.sortedAfter(target, rs, stack) {
			continue
		}
		fails = append(fails, failed{target, at})
	}
	sort.Slice(fails, func(i, j int) bool { return fails[i].at.Pos() < fails[j].at.Pos() })
	for _, f := range fails {
		p.Reportf(f.at.Pos(),
			"append to %s inside map iteration records randomized map order and %s is never sorted afterwards in this block; sort it (sort./slices./a sort* helper) or iterate sorted keys",
			f.target.key, f.target.key)
	}
}

// sortedAfter reports whether a sorting call referencing the append
// target appears in the statements following rs within its enclosing
// block (or case clause). Three call shapes count: sort.* and
// slices.Sort* from the standard library, and — by project convention
// — any function or method whose name begins with "sort"/"Sort"
// (e.g. dfg's sortRegs).
func (p *Pass) sortedAfter(target pendingAppend, rs *ast.RangeStmt, stack []ast.Node) bool {
	var after []ast.Stmt
	for i := len(stack) - 1; i >= 0; i-- {
		var list []ast.Stmt
		switch b := stack[i].(type) {
		case *ast.BlockStmt:
			list = b.List
		case *ast.CaseClause:
			list = b.Body
		case *ast.CommClause:
			list = b.Body
		default:
			continue
		}
		for j, s := range list {
			if lab, ok := s.(*ast.LabeledStmt); ok {
				s = lab.Stmt
			}
			if s == ast.Stmt(rs) {
				after = list[j+1:]
				break
			}
		}
		break
	}
	for _, s := range after {
		found := false
		ast.Inspect(s, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if !p.isSortCall(call) {
				return true
			}
			for _, arg := range call.Args {
				if p.exprReferences(arg, target) {
					found = true
				}
			}
			return !found
		})
		if found {
			return true
		}
	}
	return false
}

// isSortCall recognizes calls that establish a deterministic order.
func (p *Pass) isSortCall(call *ast.CallExpr) bool {
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		// Local helper by naming convention: sortRegs(xs), SortRows(xs).
		return hasSortPrefix(fun.Name)
	case *ast.SelectorExpr:
		if pkgIdent, ok := fun.X.(*ast.Ident); ok {
			if pn, ok := p.TypesInfo.Uses[pkgIdent].(*types.PkgName); ok {
				names := maporderSorters[pn.Imported().Path()]
				return names != nil && names[fun.Sel.Name]
			}
		}
		// Method by naming convention: t.sortRows().
		return hasSortPrefix(fun.Sel.Name)
	}
	return false
}

func hasSortPrefix(name string) bool {
	return strings.HasPrefix(name, "sort") || strings.HasPrefix(name, "Sort")
}

// exprReferences reports whether some subexpression of e denotes the
// same path as target (same root object, same rendered selector path).
func (p *Pass) exprReferences(e ast.Expr, target pendingAppend) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if found {
			return false
		}
		ne, ok := n.(ast.Expr)
		if !ok {
			return true
		}
		if exprKey(ne) == target.key && p.rootObj(ne) == target.obj {
			found = true
			return false
		}
		return true
	})
	return found
}

// exprKey renders an ident/selector/star/paren chain as a stable path
// string ("g.liveOuts"); "" for expressions with any other shape.
func exprKey(e ast.Expr) string {
	switch x := e.(type) {
	case *ast.Ident:
		return x.Name
	case *ast.SelectorExpr:
		base := exprKey(x.X)
		if base == "" {
			return ""
		}
		return base + "." + x.Sel.Name
	case *ast.ParenExpr:
		return exprKey(x.X)
	case *ast.StarExpr:
		return exprKey(x.X)
	}
	return ""
}

// isBuiltinAppend reports whether call invokes the append builtin.
func (p *Pass) isBuiltinAppend(call *ast.CallExpr) bool {
	id, ok := call.Fun.(*ast.Ident)
	if !ok {
		return false
	}
	b, ok := p.TypesInfo.Uses[id].(*types.Builtin)
	return ok && b.Name() == "append"
}

// rootObj returns the object of the leftmost identifier of an
// expression like x, x.f, x[i], *x, or (x).f; nil when there is none.
func (p *Pass) rootObj(e ast.Expr) types.Object {
	return p.objectOf(firstIdent(e))
}

func (p *Pass) objectOf(id *ast.Ident) types.Object {
	if id == nil {
		return nil
	}
	if o := p.TypesInfo.Uses[id]; o != nil {
		return o
	}
	return p.TypesInfo.Defs[id]
}

// firstIdent returns the leftmost identifier of a selector/index/star
// chain, or nil.
func firstIdent(e ast.Expr) *ast.Ident {
	for {
		switch x := e.(type) {
		case *ast.Ident:
			return x
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.UnaryExpr:
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		case *ast.CallExpr:
			e = x.Fun
		default:
			return nil
		}
	}
}

// declaredWithin reports whether obj's declaration lies inside node.
func declaredWithin(obj types.Object, node ast.Node) bool {
	return obj != nil && node.Pos() <= obj.Pos() && obj.Pos() < node.End()
}
