package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// Unusedwrite is a standard-library reimplementation of the core
// pattern of the stock x/tools unusedwrite analyzer (the real one
// needs SSA from golang.org/x/tools, which this dependency-free tree
// cannot import): a value assigned to a local variable that is
// overwritten by a later assignment in the same straight-line
// statement sequence without ever being read is dead — usually a
// forgotten use or a copy-paste bug.
//
// The subset is deliberately conservative. Only plain assignments to
// local identifiers are tracked; variables whose address is taken or
// that any function literal captures are never tracked (a call could
// read them through the alias); and any statement other than a plain
// assignment or call expression — control flow, defer, go, declarations
// — clears all tracking, because execution could leave the straight
// line between the write and the overwrite.
var Unusedwrite = &Analyzer{
	Name: "unusedwrite",
	Doc:  "report values assigned to a variable and overwritten before any read (stdlib subset of the stock unusedwrite check)",
	Run:  runUnusedwrite,
}

func runUnusedwrite(pass *Pass) error {
	if !pass.InModule() {
		return nil
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			aliased := pass.collectAliased(fd.Body)
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				if block, ok := n.(*ast.BlockStmt); ok {
					pass.checkBlockWrites(block.List, aliased)
				}
				return true
			})
		}
	}
	return nil
}

// collectAliased returns every object whose value a function call or
// later statement could observe without naming it: address-taken
// variables (via the root of the & operand) and everything referenced
// inside a function literal.
func (p *Pass) collectAliased(body ast.Node) map[types.Object]bool {
	aliased := map[types.Object]bool{}
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.UnaryExpr:
			if n.Op == token.AND {
				if obj := p.rootObj(n.X); obj != nil {
					aliased[obj] = true
				}
			}
		case *ast.FuncLit:
			ast.Inspect(n.Body, func(m ast.Node) bool {
				if id, ok := m.(*ast.Ident); ok {
					if obj := p.objectOf(id); obj != nil {
						aliased[obj] = true
					}
				}
				return true
			})
		}
		return true
	})
	return aliased
}

// trackable reports whether obj is a local variable whose reads are
// fully visible to straight-line scanning.
func (p *Pass) trackable(obj types.Object, aliased map[types.Object]bool) bool {
	v, ok := obj.(*types.Var)
	if !ok || v.IsField() || aliased[obj] {
		return false
	}
	// Package-level variables are readable by any call.
	return v.Parent() != nil && v.Parent() != p.Pkg.Scope()
}

// checkBlockWrites scans one statement list for write-then-overwrite
// sequences with no intervening read.
func (p *Pass) checkBlockWrites(list []ast.Stmt, aliased map[types.Object]bool) {
	// pending maps a variable to the position of its last unread write.
	pending := map[types.Object]token.Pos{}

	for _, stmt := range list {
		assign, isAssign := stmt.(*ast.AssignStmt)
		_, isExpr := stmt.(*ast.ExprStmt)
		if !isAssign && !isExpr {
			// Control flow, defer, go, declarations, inc/dec, ...:
			// execution may leave the straight line here, so earlier
			// writes can be read on paths we do not model.
			pending = map[types.Object]token.Pos{}
			continue
		}
		if !isAssign || (assign.Tok != token.ASSIGN && assign.Tok != token.DEFINE) {
			// Calls cannot read a non-aliased local; op-assigns (+=)
			// read their own LHS. Either way, clear what is read.
			p.clearReads(stmt, pending)
			continue
		}

		var writeTargets []*ast.Ident
		for _, lhs := range assign.Lhs {
			if id, ok := lhs.(*ast.Ident); ok && id.Name != "_" {
				writeTargets = append(writeTargets, id)
				continue
			}
			// x.f = ... or x[i] = ... reads x.
			p.clearReads(lhs, pending)
		}
		for _, rhs := range assign.Rhs {
			p.clearReads(rhs, pending)
		}

		for _, id := range writeTargets {
			obj := p.objectOf(id)
			if obj == nil || !p.trackable(obj, aliased) {
				continue
			}
			if prev, dead := pending[obj]; dead {
				p.Reportf(prev, "value assigned to %s is never used: it is overwritten at line %d before any read",
					id.Name, p.Fset.Position(id.Pos()).Line)
			}
			pending[obj] = id.Pos()
		}
	}
}

// clearReads removes from pending every variable referenced under n.
func (p *Pass) clearReads(n ast.Node, pending map[types.Object]token.Pos) {
	ast.Inspect(n, func(m ast.Node) bool {
		if id, ok := m.(*ast.Ident); ok {
			if obj := p.objectOf(id); obj != nil {
				delete(pending, obj)
			}
		}
		return true
	})
}
