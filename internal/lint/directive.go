package lint

import (
	"go/ast"
	"go/token"
	"strings"
)

// directive is one parsed //cgravet:ignore comment.
//
//	//cgravet:ignore <analyzer> <reason>
//
// A valid directive (known analyzer, non-empty reason) suppresses that
// analyzer's findings on the lines [startLine, endLine]: its own line
// and the next (covering both trailing and stand-alone placement), or
// the whole declaration when it sits in the doc comment of a top-level
// decl — the form used to annotate a deliberately exempt function.
type directive struct {
	pos       token.Pos
	file      string
	startLine int
	endLine   int
	analyzer  string
	reason    string
	valid     bool
	// problem describes why the directive is invalid ("" when valid);
	// reported by the directive analyzer.
	problem string
}

const (
	directiveName   = "directive"
	directivePrefix = "//cgravet:ignore"
)

// DirectiveAnalyzer validates //cgravet:ignore directives. The reason
// is mandatory and the analyzer name must exist: a directive that
// fails either check is itself a finding and suppresses nothing, so
// every exception stays visible and auditable.
var DirectiveAnalyzer = &Analyzer{
	Name: directiveName,
	Doc:  "validate //cgravet:ignore directives (mandatory reason, known analyzer name)",
	// Run is dispatched specially by the driver (it needs the parsed
	// directives and the known-analyzer set); this stub keeps the
	// Analyzer shape uniform for flag registration.
	Run: func(*Pass) error { return nil },
}

// parseDirectives extracts every cgravet directive from the file,
// resolving each one's suppression scope against the AST.
func parseDirectives(fset *token.FileSet, f *ast.File) []directive {
	var out []directive
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			d, ok := parseDirectiveComment(fset, c)
			if !ok {
				continue
			}
			// A directive inside a top-level declaration's doc comment
			// covers the whole declaration.
			for _, decl := range f.Decls {
				var doc *ast.CommentGroup
				switch dd := decl.(type) {
				case *ast.FuncDecl:
					doc = dd.Doc
				case *ast.GenDecl:
					doc = dd.Doc
				}
				if doc == nil || c.Pos() < doc.Pos() || c.End() > doc.End() {
					continue
				}
				d.startLine = fset.Position(decl.Pos()).Line
				d.endLine = fset.Position(decl.End()).Line
				break
			}
			out = append(out, d)
		}
	}
	return out
}

// parseDirectiveComment parses a single comment; ok is false when the
// comment is not a cgravet directive at all. Near-miss spellings
// ("// cgravet:ignore", "//cgravet:skip") come back as invalid
// directives so they are reported instead of silently inert.
func parseDirectiveComment(fset *token.FileSet, c *ast.Comment) (directive, bool) {
	text := c.Text
	pos := fset.Position(c.Pos())
	d := directive{
		pos:       c.Pos(),
		file:      pos.Filename,
		startLine: pos.Line,
		endLine:   pos.Line + 1,
	}
	switch {
	case strings.HasPrefix(text, directivePrefix):
		rest := text[len(directivePrefix):]
		if rest != "" && rest[0] != ' ' && rest[0] != '\t' {
			// e.g. //cgravet:ignoreX — not a directive.
			return directive{}, false
		}
		fields := strings.Fields(rest)
		if len(fields) == 0 {
			d.problem = "missing analyzer name and reason: want //cgravet:ignore <analyzer> <reason>"
			return d, true
		}
		d.analyzer = fields[0]
		d.reason = strings.Join(fields[1:], " ")
		if d.reason == "" {
			d.problem = "missing reason: want //cgravet:ignore " + d.analyzer + " <why this exception is safe>"
			return d, true
		}
		d.valid = true
		return d, true
	case strings.HasPrefix(strings.TrimSpace(strings.TrimPrefix(text, "//")), "cgravet:"):
		// "// cgravet:ignore ..." or an unknown cgravet verb: a typo'd
		// directive that would otherwise silently not suppress.
		d.problem = "malformed cgravet directive: want //cgravet:ignore <analyzer> <reason> (no space after //)"
		return d, true
	}
	return directive{}, false
}

// runDirectiveCheck reports invalid directives and directives naming
// unknown analyzers.
func runDirectiveCheck(pass *Pass, dirs []directive, known map[string]bool) error {
	for _, d := range dirs {
		switch {
		case !d.valid:
			pass.Reportf(d.pos, "%s", d.problem)
		case !known[d.analyzer]:
			pass.Reportf(d.pos, "unknown analyzer %q in //cgravet:ignore directive", d.analyzer)
		}
	}
	return nil
}
