// Package dirfix seeds directive violations: //cgravet:ignore forms
// that must themselves be findings and must not suppress anything.
package dirfix

import "time"

// MissingReason has an ignore with no reason: the directive is a
// finding AND the wallclock finding it tried to cover still fires.
func MissingReason() time.Time {
	return time.Now() //cgravet:ignore wallclock
	// want-1 `missing reason: want //cgravet:ignore wallclock <why this exception is safe>` `time\.Now reads the wall clock`
}

// MissingEverything has a bare ignore.
func MissingEverything() time.Time {
	return time.Now() //cgravet:ignore
	// want-1 `missing analyzer name and reason` `time\.Now reads the wall clock`
}

// UnknownAnalyzer names an analyzer that does not exist, so nothing is
// suppressed.
func UnknownAnalyzer() time.Time {
	return time.Now() //cgravet:ignore wallhack definitely a real analyzer
	// want-1 `unknown analyzer "wallhack" in //cgravet:ignore directive` `time\.Now reads the wall clock`
}

// SpacedDirective uses the spaced near-miss spelling, which Go
// directive convention treats as a plain comment.
func SpacedDirective() time.Time {
	// cgravet:ignore wallclock spaced directives are inert
	// want-1 `malformed cgravet directive: want //cgravet:ignore <analyzer> <reason>`
	return time.Now() // want `time\.Now reads the wall clock`
}

// ValidSuppression is the correct form: reason present, analyzer
// known, finding suppressed — only the directive-free line fires.
func ValidSuppression() time.Time {
	return time.Now() //cgravet:ignore wallclock fixture exception: documented and audited
}
