// Package lifetime seeds traceemit violations: trace emission outside
// Run's epoch loop, where memo-replayed epochs would not re-emit.
package lifetime

import "agingcgra/internal/trace"

// Scenario carries the opt-in sink.
type Scenario struct {
	Trace trace.Sink
}

// Run is the epoch loop: direct emission and emit* helpers are legal
// here.
func Run(sc Scenario) {
	for epoch := 0; epoch < 4; epoch++ {
		runEpoch(sc, epoch)
		if sc.Trace != nil {
			sc.Trace.Emit(trace.Event{Kind: "epoch", Epoch: epoch})
			emitSummary(sc, epoch)
		}
	}
}

// emitSummary is an emit* helper: emission and nested emit* calls are
// legal here.
func emitSummary(sc Scenario, epoch int) {
	sc.Trace.Emit(trace.Event{Kind: "summary", Epoch: epoch})
	emitDetail(sc, epoch)
}

func emitDetail(sc Scenario, epoch int) {
	sc.Trace.Emit(trace.Event{Kind: "detail", Epoch: epoch})
}

// runEpoch simulates one epoch; its work is memoized, so emission from
// here would vanish on replayed epochs.
func runEpoch(sc Scenario, epoch int) {
	if sc.Trace != nil {
		sc.Trace.Emit(trace.Event{Kind: "fault", Epoch: epoch}) // want `trace emission in runEpoch: events may only be emitted from Run's epoch loop`
		emitSummary(sc, epoch)                                  // want `call of emitSummary in runEpoch: emit\* helpers may only be invoked from Run's epoch loop`
	}
}

// observe is neither Run nor an emit* helper.
func observe(sc Scenario, epoch int) {
	sc.Trace.Emit(trace.Event{Kind: "observe", Epoch: epoch}) // want `trace emission in observe: events may only be emitted from Run's epoch loop`
}

// annotated carries a documented exception.
func annotated(sc Scenario) {
	sc.Trace.Emit(trace.Event{Kind: "meta"}) //cgravet:ignore traceemit fixture exception: emission outside the epoch loop
}
