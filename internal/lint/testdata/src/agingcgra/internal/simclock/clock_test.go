package simclock

import "time"

// Test files are exempt from wallclock: deadlines and timeouts are
// legitimate test plumbing, so none of these are findings.
func pollDeadline() bool {
	deadline := time.Now().Add(time.Second)
	return time.Now().After(deadline)
}
