// Package simclock seeds wallclock violations for the linttest suite:
// wall-clock reads inside a simulation package.
package simclock

import "time"

// Age mixes wall time into a simulation result: two distinct seeded
// violations (a read and an interval).
func Age(start time.Time) float64 {
	now := time.Now()            // want `time\.Now reads the wall clock inside simulation package`
	elapsed := time.Since(start) // want `time\.Since reads the wall clock inside simulation package`
	return now.Sub(start).Seconds() + elapsed.Seconds()
}

// Wait schedules against the wall clock.
func Wait() {
	time.Sleep(time.Millisecond) // want `time\.Sleep stalls on the wall clock`
}

// Span is fine: time.Duration values are explicit, not sampled.
func Span(n int) time.Duration {
	return time.Duration(n) * time.Second
}

// Deadline is a documented exception, suppressed by a trailing
// directive with a mandatory reason.
func Deadline() time.Time {
	return time.Now() //cgravet:ignore wallclock fixture exception: request deadline plumbing
}

//cgravet:ignore wallclock fixture exception: whole-function annotation via doc comment
func wholeFuncExempt() time.Time {
	a := time.Now()
	b := time.Now()
	return a.Add(time.Since(b))
}
