// Package mapemit seeds maporder violations: map iteration order
// reaching slices, writers, and channels unsorted.
package mapemit

import (
	"bytes"
	"fmt"
	"io"
	"sort"
)

// UnsortedKeys appends map keys and never sorts them: the returned
// slice is in randomized map order.
func UnsortedKeys(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k) // want `append to keys inside map iteration records randomized map order`
	}
	return keys
}

// EmitRows writes rows straight from map iteration.
func EmitRows(w io.Writer, m map[string]int) {
	for k, v := range m {
		fmt.Fprintf(w, "%s,%d\n", k, v) // want `Fprintf called inside map iteration emits in randomized map order`
	}
}

// BuildReport streams into a builder declared outside the loop.
func BuildReport(m map[string]int) string {
	var b bytes.Buffer
	for k := range m {
		b.WriteString(k) // want `WriteString called inside map iteration emits in randomized map order`
	}
	return b.String()
}

// PublishValues sends map values on a shared channel.
func PublishValues(ch chan<- int, m map[string]int) {
	for _, v := range m {
		ch <- v // want `send on ch inside map iteration publishes values in randomized map order`
	}
}

// SortedKeys is the blessed collect-then-sort idiom: no finding.
func SortedKeys(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// SortedByHelper sorts through a project-convention sort* helper.
func SortedByHelper(m map[int]int) []int {
	var ks []int
	for k := range m {
		ks = append(ks, k)
	}
	sortInts(ks)
	return ks
}

func sortInts(xs []int) { sort.Ints(xs) }

// PerIterationBuffer builds per-key state inside the loop and stores
// it keyed by k: order-independent, no finding.
func PerIterationBuffer(m map[string]int) map[string]string {
	out := make(map[string]string, len(m))
	for k, v := range m {
		var b bytes.Buffer
		fmt.Fprintf(&b, "%d", v)
		out[k] = b.String()
	}
	return out
}

// Aggregate folds commutatively: no finding.
func Aggregate(m map[string]int) int {
	sum := 0
	for _, v := range m {
		sum += v
	}
	return sum
}

// AnnotatedEmit is a documented exception.
func AnnotatedEmit(w io.Writer, m map[string]int) {
	for _, v := range m {
		fmt.Fprintf(w, "%d", v) //cgravet:ignore maporder fixture exception: commutative output
	}
}
