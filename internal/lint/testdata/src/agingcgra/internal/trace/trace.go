// Package trace is a fixture stub of the real internal/trace: just
// enough surface for the traceemit analyzer fixtures to type-check.
package trace

// Event is one observability record.
type Event struct {
	Kind  string
	Epoch int
}

// Sink receives the event stream of one scenario run.
type Sink interface {
	Emit(Event)
}

// Recorder collects events in emission order.
type Recorder struct {
	Events []Event
}

// Emit appends ev.
func (r *Recorder) Emit(ev Event) { r.Events = append(r.Events, ev) }
