// Package deadwrite seeds unusedwrite violations: values overwritten
// before any read.
package deadwrite

// Overwrite assigns twice with no read between.
func Overwrite(a, b int) int {
	x := a // want `value assigned to x is never used: it is overwritten at line 8`
	x = b
	return x
}

// DoubleCompute discards the zero-init and the first computation.
func DoubleCompute(a, b int) int {
	y := 0    // want `value assigned to y is never used: it is overwritten at line 15`
	y = a * 2 // want `value assigned to y is never used: it is overwritten at line 16`
	y = b * 3
	return y
}

// ReadBetween is fine: the first value is consumed.
func ReadBetween(a, b int) int {
	x := a
	sum := x + 1
	x = b
	return x + sum
}

// ControlFlowBetween is fine: the branch may read or leave.
func ControlFlowBetween(a, b int, c bool) int {
	x := a
	if c {
		return x
	}
	x = b
	return x
}

// LoopCarried is fine: break delivers the first value past the loop.
func LoopCarried(a, b int, c bool) int {
	x := 0
	for {
		x = a
		if c {
			break
		}
		x = b
		_ = x
		break
	}
	return x
}

// Aliased is fine: the closure can read every write.
func Aliased(a, b int) func() int {
	x := a
	f := func() int { return x }
	x = b
	return f
}

// AddressTaken is fine: writes reach readers through the pointer.
func AddressTaken(a, b int) int {
	x := a
	p := &x
	x = b
	return *p
}
