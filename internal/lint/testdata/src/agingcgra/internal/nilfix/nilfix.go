// Package nilfix seeds nilness violations: uses of values that are
// provably nil in their branch.
package nilfix

// Node is a linked structure for pointer cases.
type Node struct {
	Value int
	Next  *Node
}

// Closer is an interface for nil-interface cases.
type Closer interface {
	Close() error
}

// HeadValue dereferences a pointer in the branch where it is nil.
func HeadValue(n *Node) int {
	if n == nil {
		return n.Value // want `n is nil in this branch; nil-pointer dereference will panic`
	}
	return n.Value
}

// CloseAll calls through a nil interface in the inverted guard.
func CloseAll(c Closer) error {
	if c != nil {
		return c.Close()
	} else {
		return c.Close() // want `c is nil in this branch; nil-interface dereference will panic`
	}
}

// FirstOf indexes a slice known to be nil.
func FirstOf(xs []int) int {
	if xs == nil {
		return xs[0] // want `xs is nil in this branch; indexing will panic`
	}
	return xs[0]
}

// Record writes into a map known to be nil.
func Record(m map[string]int, k string) {
	if m == nil {
		m[k] = 1 // want `m is nil in this branch; writing into a nil map will panic`
	}
	m[k] = 2
}

// Invoke calls a func value known to be nil.
func Invoke(f func() int) int {
	if f == nil {
		return f() // want `f is nil in this branch; calling it will panic`
	}
	return f()
}

// GuardThenInit is the legal idiom: the branch reassigns before use.
func GuardThenInit(n *Node) int {
	if n == nil {
		n = &Node{Value: 7}
		return n.Value
	}
	return n.Value
}

// NilMapRead is legal: reading a nil map yields the zero value.
func NilMapRead(m map[string]int, k string) int {
	if m == nil {
		return m[k]
	}
	return m[k]
}

// LenOfNil is legal: len of a nil slice is 0.
func LenOfNil(xs []int) int {
	if xs == nil {
		return len(xs)
	}
	return len(xs)
}
