// Package simrand seeds globalrand violations: draws from math/rand's
// process-global generator inside a simulation package.
package simrand

import "math/rand"

// Draw takes three distinct global draws and a reseed.
func Draw() int {
	n := rand.Intn(16)                      // want `rand\.Intn draws from math/rand's process-global PRNG`
	f := rand.Float64()                     // want `rand\.Float64 draws from math/rand's process-global PRNG`
	rand.Seed(42)                           // want `rand\.Seed draws from math/rand's process-global PRNG`
	return n + int(f*float64(rand.Int63())) // want `rand\.Int63 draws from math/rand's process-global PRNG`
}

// SeededDraw is the blessed idiom: explicitly seeded local state.
func SeededDraw(seed int64) int {
	r := rand.New(rand.NewSource(seed))
	return r.Intn(16)
}

// Local holds a reference to local generator state; the type names
// rand.Rand and rand.Source are not draws.
type Local struct {
	r   *rand.Rand
	src rand.Source
}

// Annotated is a documented exception.
func Annotated() int {
	return rand.Int() //cgravet:ignore globalrand fixture exception: deliberate one-shot draw
}
