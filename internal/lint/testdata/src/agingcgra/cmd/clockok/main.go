// Package main (cmd scope) may read the wall clock: process entry
// points timestamp reports and benchmarks. No findings expected.
package main

import (
	"fmt"
	"time"
)

func main() {
	start := time.Now()
	fmt.Println(time.Since(start))
}
