package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// Nilness is a standard-library reimplementation of the core pattern
// of the stock x/tools nilness analyzer (the real one needs SSA from
// golang.org/x/tools, which this dependency-free tree cannot import):
// inside the branch where a value is known to be nil — the body of
// `if x == nil`, or the else of `if x != nil` — any use of x that
// would panic is reported:
//
//   - field access / method call / dereference of a nil pointer,
//   - method call through a nil interface,
//   - call of a nil func value,
//   - index or slice of a nil slice,
//   - write into a nil map (reads of nil maps are legal),
//   - send or receive on a nil channel (blocks forever).
//
// Scanning stops at the first reassignment of x (or capture of &x)
// inside the branch, so the guard-then-initialize idiom passes.
var Nilness = &Analyzer{
	Name: "nilness",
	Doc:  "report uses of provably nil values (stdlib subset of the stock nilness check)",
	Run:  runNilness,
}

func runNilness(pass *Pass) error {
	if !pass.InModule() {
		return nil
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			ifs, ok := n.(*ast.IfStmt)
			if !ok {
				return true
			}
			obj, nilBranch := pass.nilComparison(ifs)
			if obj == nil || nilBranch == nil {
				return true
			}
			pass.checkNilBranch(obj, nilBranch)
			return true
		})
	}
	return nil
}

// nilComparison recognizes `if x == nil` / `if x != nil` over a plain
// identifier (with no init statement re-binding x) and returns x's
// object plus the branch in which x is nil.
func (p *Pass) nilComparison(ifs *ast.IfStmt) (types.Object, *ast.BlockStmt) {
	bin, ok := ifs.Cond.(*ast.BinaryExpr)
	if !ok || (bin.Op != token.EQL && bin.Op != token.NEQ) {
		return nil, nil
	}
	var identSide ast.Expr
	switch {
	case isNilIdent(p, bin.Y):
		identSide = bin.X
	case isNilIdent(p, bin.X):
		identSide = bin.Y
	default:
		return nil, nil
	}
	id, ok := identSide.(*ast.Ident)
	if !ok {
		return nil, nil
	}
	obj := p.objectOf(id)
	if obj == nil {
		return nil, nil
	}
	if bin.Op == token.EQL {
		return obj, ifs.Body
	}
	if els, ok := ifs.Else.(*ast.BlockStmt); ok {
		return obj, els
	}
	return nil, nil
}

func isNilIdent(p *Pass, e ast.Expr) bool {
	id, ok := e.(*ast.Ident)
	if !ok {
		return false
	}
	_, isNil := p.objectOf(id).(*types.Nil)
	return isNil
}

// checkNilBranch walks the nil branch in source order, reporting
// panicking uses of obj until obj is reassigned (or its address is
// taken, after which we know nothing).
func (p *Pass) checkNilBranch(obj types.Object, body *ast.BlockStmt) {
	t := obj.Type()
	if t == nil {
		return
	}
	stopped := false
	ast.Inspect(body, func(n ast.Node) bool {
		if stopped {
			return false
		}
		switch n := n.(type) {
		case *ast.AssignStmt:
			// RHS is evaluated before the assignment takes effect, so
			// inspect it first, then stop if obj is a target.
			for _, rhs := range n.Rhs {
				p.checkNilUses(obj, t, rhs, &stopped)
			}
			for _, lhs := range n.Lhs {
				if id, ok := lhs.(*ast.Ident); ok && p.objectOf(id) == obj {
					stopped = true
					continue
				}
				if ix, ok := lhs.(*ast.IndexExpr); ok && p.isObjIdent(ix.X, obj) && !stopped {
					if _, isMap := t.Underlying().(*types.Map); isMap {
						p.Reportf(ix.Pos(), "%s is nil in this branch; writing into a nil map will panic", obj.Name())
						continue
					}
				}
				p.checkNilUses(obj, t, lhs, &stopped)
			}
			return false
		case *ast.UnaryExpr:
			if n.Op == token.AND {
				if id, ok := n.X.(*ast.Ident); ok && p.objectOf(id) == obj {
					stopped = true // address escapes; assume reinitialized
					return false
				}
			}
		case ast.Expr:
			p.checkNilUses(obj, t, n, &stopped)
			return false
		}
		return true
	})
}

// checkNilUses reports panicking uses of obj within expr.
func (p *Pass) checkNilUses(obj types.Object, t types.Type, expr ast.Expr, stopped *bool) {
	ast.Inspect(expr, func(n ast.Node) bool {
		if *stopped {
			return false
		}
		switch n := n.(type) {
		case *ast.FuncLit:
			// The closure may run after obj is reassigned elsewhere;
			// stay silent, and stop tracking if it touches obj.
			touches := false
			ast.Inspect(n.Body, func(m ast.Node) bool {
				if id, ok := m.(*ast.Ident); ok && p.objectOf(id) == obj {
					touches = true
				}
				return !touches
			})
			if touches {
				*stopped = true
			}
			return false
		case *ast.UnaryExpr:
			if n.Op == token.AND {
				if id, ok := n.X.(*ast.Ident); ok && p.objectOf(id) == obj {
					*stopped = true
					return false
				}
			}
		case *ast.SelectorExpr:
			if p.isObjIdent(n.X, obj) && derefPanics(t, "select") {
				p.Reportf(n.Pos(), "%s is nil in this branch; %s dereference will panic", obj.Name(), kindWord(t))
			}
		case *ast.StarExpr:
			if p.isObjIdent(n.X, obj) && derefPanics(t, "deref") {
				p.Reportf(n.Pos(), "%s is nil in this branch; dereference will panic", obj.Name())
			}
		case *ast.IndexExpr:
			if p.isObjIdent(n.X, obj) && derefPanics(t, "index") {
				p.Reportf(n.Pos(), "%s is nil in this branch; indexing will panic", obj.Name())
			}
		case *ast.SliceExpr:
			// Slicing a nil slice is legal only for [:0]-style bounds;
			// be conservative and stay silent.
		case *ast.CallExpr:
			if p.isObjIdent(n.Fun, obj) && derefPanics(t, "call") {
				p.Reportf(n.Pos(), "%s is nil in this branch; calling it will panic", obj.Name())
			}
		}
		return true
	})
}

func (p *Pass) isObjIdent(e ast.Expr, obj types.Object) bool {
	if par, ok := e.(*ast.ParenExpr); ok {
		e = par.X
	}
	id, ok := e.(*ast.Ident)
	return ok && p.objectOf(id) == obj
}

// derefPanics reports whether the given use of a nil value of type t
// panics (or, for channels, blocks forever — reported the same way).
func derefPanics(t types.Type, use string) bool {
	switch t.Underlying().(type) {
	case *types.Pointer:
		return use == "select" || use == "deref" || use == "index"
	case *types.Interface:
		return use == "select" || use == "call"
	case *types.Signature:
		return use == "call"
	case *types.Slice:
		return use == "index"
	case *types.Map:
		// Reading m[k] from a nil map is legal; only writes panic, and
		// index-as-assignment-target is handled by the caller walking
		// AssignStmt LHS through this same path.
		return false
	case *types.Array:
		return false
	}
	return false
}

func kindWord(t types.Type) string {
	switch t.Underlying().(type) {
	case *types.Pointer:
		return "nil-pointer"
	case *types.Interface:
		return "nil-interface"
	default:
		return "nil"
	}
}
