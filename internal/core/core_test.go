package core

import (
	"math"
	"testing"

	"agingcgra/internal/alloc"
	"agingcgra/internal/fabric"
)

func smallConfig(g fabric.Geometry) *fabric.Config {
	return &fabric.Config{
		StartPC: 0x1000,
		Geom:    g,
		Ops: []fabric.PlacedOp{
			{Seq: 0, Row: 0, Col: 0, Width: 1},
			{Seq: 1, Row: 0, Col: 1, Width: 1},
		},
		UsedCols: 2,
	}
}

func TestTrackerRecord(t *testing.T) {
	g := fabric.NewGeometry(2, 4)
	tr := NewTracker(g)
	cells := []fabric.Cell{{Row: 0, Col: 0}, {Row: 0, Col: 1}}
	tr.Record(cells, fabric.Offset{}, 10)
	tr.Record(cells, fabric.Offset{Row: 1, Col: 2}, 5)
	if tr.ActiveCycles() != 15 || tr.TotalExecs() != 2 {
		t.Fatalf("active=%d execs=%d", tr.ActiveCycles(), tr.TotalExecs())
	}
	if tr.StressCycles(0, 0) != 10 || tr.StressCycles(0, 1) != 10 {
		t.Error("first execution stress wrong")
	}
	if tr.StressCycles(1, 2) != 5 || tr.StressCycles(1, 3) != 5 {
		t.Error("offset execution stress wrong")
	}
	if tr.StressCycles(1, 0) != 0 {
		t.Error("untouched cell has stress")
	}
}

func TestUtilizationMapMetrics(t *testing.T) {
	g := fabric.NewGeometry(2, 4)
	tr := NewTracker(g)
	cells := []fabric.Cell{{Row: 0, Col: 0}}
	tr.Record(cells, fabric.Offset{}, 30)
	tr.Record(cells, fabric.Offset{}, 30)
	tr.Record(cells, fabric.Offset{Row: 1, Col: 1}, 40)
	u := tr.Utilization()
	if got := u.At(0, 0); math.Abs(got-0.6) > 1e-12 {
		t.Errorf("duty(0,0) = %v, want 0.6", got)
	}
	if got := u.At(1, 1); math.Abs(got-0.4) > 1e-12 {
		t.Errorf("duty(1,1) = %v, want 0.4", got)
	}
	maxD, cell := u.Max()
	if maxD != 0.6 || cell != (fabric.Cell{Row: 0, Col: 0}) {
		t.Errorf("Max = %v at %v", maxD, cell)
	}
	wantAvg := (0.6 + 0.4) / 8
	if got := u.Avg(); math.Abs(got-wantAvg) > 1e-12 {
		t.Errorf("Avg = %v, want %v", got, wantAvg)
	}
	if u.Min() != 0 {
		t.Errorf("Min = %v, want 0", u.Min())
	}
	// Presence metric: (0,0) present in 2 of 3 executions.
	if got := u.PresenceAt(0, 0); math.Abs(got-2.0/3) > 1e-12 {
		t.Errorf("presence(0,0) = %v", got)
	}
}

func TestControllerBaselineConcentratesStress(t *testing.T) {
	g := fabric.NewGeometry(2, 4)
	ctrl, err := NewController(g, alloc.Baseline{})
	if err != nil {
		t.Fatal(err)
	}
	cfg := smallConfig(g)
	for i := 0; i < 8; i++ {
		off, _ := ctrl.Place(cfg)
		ctrl.Commit(cfg, off, 10)
	}
	u := ctrl.Utilization()
	if u.At(0, 0) != 1.0 || u.At(0, 1) != 1.0 {
		t.Error("baseline should keep the config's home cells at 100% duty")
	}
	if u.At(1, 0) != 0 {
		t.Error("baseline should never touch other rows")
	}
}

func TestControllerRotationBalancesStress(t *testing.T) {
	g := fabric.NewGeometry(2, 4)
	ctrl, err := NewController(g, alloc.NewUtilizationAware(g))
	if err != nil {
		t.Fatal(err)
	}
	cfg := smallConfig(g)
	// One full epoch: 8 pivot positions.
	for i := 0; i < g.NumFUs(); i++ {
		off, _ := ctrl.Place(cfg)
		ctrl.Commit(cfg, off, 10)
	}
	u := ctrl.Utilization()
	// The 2-cell config visited every pivot once: every cell must have been
	// stressed exactly twice out of 8 executions -> duty 0.25 everywhere.
	for r := 0; r < g.Rows; r++ {
		for c := 0; c < g.Cols; c++ {
			if got := u.At(r, c); math.Abs(got-0.25) > 1e-12 {
				t.Errorf("duty(%d,%d) = %v, want 0.25", r, c, got)
			}
		}
	}
}

func TestControllerFeedsStressObserver(t *testing.T) {
	g := fabric.NewGeometry(2, 4)
	h := alloc.NewHealthAware(g, 1)
	ctrl, err := NewController(g, h)
	if err != nil {
		t.Fatal(err)
	}
	cfg := smallConfig(g)
	offs := make(map[fabric.Offset]bool)
	for i := 0; i < 8; i++ {
		off, _ := ctrl.Place(cfg)
		offs[off] = true
		ctrl.Commit(cfg, off, 10)
	}
	if len(offs) < 3 {
		t.Errorf("health-aware allocator never moved (visited %d offsets); stress feedback broken", len(offs))
	}
}

func TestNewControllerValidation(t *testing.T) {
	if _, err := NewController(fabric.Geometry{}, alloc.Baseline{}); err == nil {
		t.Error("invalid geometry accepted")
	}
	if _, err := NewController(fabric.NewGeometry(2, 4), nil); err == nil {
		t.Error("nil allocator accepted")
	}
}

// Property: rotation preserves total stress (it only redistributes).
func TestRotationPreservesTotalStress(t *testing.T) {
	g := fabric.NewGeometry(4, 8)
	base, _ := NewController(g, alloc.Baseline{})
	rot, _ := NewController(g, alloc.NewUtilizationAware(g))
	cfg := smallConfig(g)
	for i := 0; i < 100; i++ {
		ob, _ := base.Place(cfg)
		base.Commit(cfg, ob, 7)
		or, _ := rot.Place(cfg)
		rot.Commit(cfg, or, 7)
	}
	sum := func(tr *Tracker) (s uint64) {
		for r := 0; r < g.Rows; r++ {
			for c := 0; c < g.Cols; c++ {
				s += tr.StressCycles(r, c)
			}
		}
		return s
	}
	if sum(base.Tracker()) != sum(rot.Tracker()) {
		t.Errorf("total stress differs: baseline %d, rotated %d",
			sum(base.Tracker()), sum(rot.Tracker()))
	}
	// And the rotated max must be strictly lower.
	bMax, _ := base.Utilization().Max()
	rMax, _ := rot.Utilization().Max()
	if rMax >= bMax {
		t.Errorf("rotation did not reduce max duty: baseline %v, rotated %v", bMax, rMax)
	}
}

// wearSpy records the maps a controller forwards to a wear-adaptive
// allocator.
type wearSpy struct {
	alloc.Baseline
	wear   *fabric.Wear
	health *fabric.Health
}

func (s *wearSpy) SetWear(w *fabric.Wear)     { s.wear = w }
func (s *wearSpy) SetHealth(h *fabric.Health) { s.health = h }

// TestControllerForwardsWear pins the feedback plumbing the wear-aware
// explorer depends on: SetWear reaches alloc.WearSetter implementations and
// is exposed through Wear(), symmetrically to SetHealth/HealthSetter.
func TestControllerForwardsWear(t *testing.T) {
	g := fabric.NewGeometry(2, 4)
	spy := &wearSpy{}
	ctrl, err := NewController(g, spy)
	if err != nil {
		t.Fatal(err)
	}
	if ctrl.Wear() != nil {
		t.Error("fresh controller has a wear map")
	}
	w := fabric.NewWear(g)
	ctrl.SetWear(w)
	if ctrl.Wear() != w {
		t.Error("Wear() does not return the attached map")
	}
	if spy.wear != w {
		t.Error("SetWear not forwarded to the wear-adaptive allocator")
	}
	h := fabric.NewHealth(g)
	ctrl.SetHealth(h)
	if spy.health != h {
		t.Error("SetHealth not forwarded to the health-adaptive allocator")
	}
}

// remapSpy is a minimal shape-adaptive allocator: Next always proposes the
// zero offset; RemapConfig keeps a successful translation and substitutes
// a fixed alternative for a blocked one.
type remapSpy struct {
	alloc.Baseline
	sub        *fabric.Config
	off        fabric.Offset
	ok         bool
	calls      int
	lastPlaced bool
}

func (s *remapSpy) RemapConfig(cfg *fabric.Config, off fabric.Offset, placed bool) (*fabric.Config, fabric.Offset, bool) {
	s.calls++
	s.lastPlaced = placed
	if placed {
		return cfg, off, true
	}
	return s.sub, s.off, s.ok
}

// TestPlaceOrRemap pins the controller's shape-adaptive seam: the ordinary
// path flows the translated placement through the remapper (which may keep
// it), a blocked placement lets alloc.ConfigRemapper substitute, and a
// failed remap is the GPP fallback.
func TestPlaceOrRemap(t *testing.T) {
	g := fabric.NewGeometry(2, 4)
	cfg := &fabric.Config{
		StartPC:  0x1000,
		Geom:     g,
		Ops:      []fabric.PlacedOp{{Seq: 0, Row: 0, Col: 0, Width: 1}},
		UsedCols: 1,
	}
	sub := &fabric.Config{
		StartPC:  0x1000,
		Geom:     fabric.Geometry{Rows: 1, Cols: 4, CtxLines: g.CtxLines, CfgLines: g.CfgLines},
		Ops:      []fabric.PlacedOp{{Seq: 0, Row: 0, Col: 0, Width: 1}},
		UsedCols: 1,
	}
	spy := &remapSpy{sub: sub, off: fabric.Offset{Row: 1, Col: 2}, ok: true}
	ctrl, err := NewController(g, spy)
	if err != nil {
		t.Fatal(err)
	}

	// Healthy: the remapper sees the successful placement and keeps it.
	got, _, ok := ctrl.PlaceOrRemap(cfg)
	if !ok || got != cfg {
		t.Fatalf("healthy PlaceOrRemap = (%v, ok=%v), want the original config", got, ok)
	}
	if spy.calls != 1 || !spy.lastPlaced {
		t.Fatalf("remapper saw (calls=%d, placed=%v), want the placed outcome", spy.calls, spy.lastPlaced)
	}

	// Kill the config's only cell: the baseline's zero pivot is dead, so the
	// controller must fall through to the remapper and return its substitute.
	h := fabric.NewHealth(g)
	h.Kill(fabric.Cell{Row: 0, Col: 0})
	ctrl.SetHealth(h)
	got, off, ok := ctrl.PlaceOrRemap(cfg)
	if !ok || got != sub || off != spy.off {
		t.Fatalf("blocked PlaceOrRemap = (%v, %v, ok=%v), want the substitute at %v", got, off, ok, spy.off)
	}
	if spy.calls != 2 || spy.lastPlaced {
		t.Fatalf("remapper saw (calls=%d, placed=%v), want the blocked outcome", spy.calls, spy.lastPlaced)
	}

	// A failing remap is the GPP fallback.
	spy.ok = false
	if _, _, ok := ctrl.PlaceOrRemap(cfg); ok {
		t.Fatal("PlaceOrRemap succeeded although both placement and remap failed")
	}

	// Non-remapping allocators keep the plain two-outcome contract.
	plain, err := NewController(g, alloc.Baseline{})
	if err != nil {
		t.Fatal(err)
	}
	plain.SetHealth(h)
	if _, _, ok := plain.PlaceOrRemap(cfg); ok {
		t.Fatal("baseline PlaceOrRemap succeeded on a dead pivot")
	}
}
