// Package core is the home of the paper's primary contribution: the
// aging-mitigation controller that sits between the configuration cache and
// the fabric. For every configuration execution it asks the allocation
// strategy for a pivot offset, applies the (wrap-around) movement, and
// accounts the NBTI-relevant stress: an FU belonging to the resident
// configuration is under stress for the whole residency, because the
// TransRec fabric is combinational and a configured FU is continuously
// driven while its configuration is loaded.
package core

import (
	"fmt"

	"agingcgra/internal/alloc"
	"agingcgra/internal/fabric"
)

// Tracker accumulates per-FU stress over a run.
type Tracker struct {
	geom fabric.Geometry
	// stressCycles[r*Cols+c] is how many cycles cell (r,c) spent configured.
	stressCycles []uint64
	// presentExecs[r*Cols+c] counts executions whose configuration included
	// the cell.
	presentExecs []uint64
	activeCycles uint64
	totalExecs   uint64
	// rowBase/colMod are the toroidal index tables of the wrap-around
	// movement: the physical index of virtual cell (r, c) under pivot
	// (pr, pc) is rowBase[r+pr] + colMod[c+pc], replacing the two modulo
	// reductions of Offset.Apply on the per-execution accounting path.
	rowBase []int
	colMod  []int
}

// NewTracker builds a zeroed tracker for the geometry.
func NewTracker(g fabric.Geometry) *Tracker {
	t := &Tracker{
		geom:         g,
		stressCycles: make([]uint64, g.NumFUs()),
		presentExecs: make([]uint64, g.NumFUs()),
		rowBase:      make([]int, 2*g.Rows),
		colMod:       make([]int, 2*g.Cols),
	}
	for i := range t.rowBase {
		t.rowBase[i] = (i % g.Rows) * g.Cols
	}
	for i := range t.colMod {
		t.colMod[i] = i % g.Cols
	}
	return t
}

// Geometry returns the tracked fabric geometry.
func (t *Tracker) Geometry() fabric.Geometry { return t.geom }

// Record accounts one configuration execution: cells (virtual coordinates)
// ran at pivot off for the given residency cycles.
func (t *Tracker) Record(cells []fabric.Cell, off fabric.Offset, cycles uint64) {
	if uint(off.Row) >= uint(t.geom.Rows) || uint(off.Col) >= uint(t.geom.Cols) {
		off = fabric.Offset{Row: off.Row % t.geom.Rows, Col: off.Col % t.geom.Cols}
	}
	rb := t.rowBase[off.Row:]
	cm := t.colMod[off.Col:]
	for _, c := range cells {
		i := rb[c.Row] + cm[c.Col]
		t.stressCycles[i] += cycles
		t.presentExecs[i]++
	}
	t.activeCycles += cycles
	t.totalExecs++
}

// ActiveCycles returns the total CGRA residency time.
func (t *Tracker) ActiveCycles() uint64 { return t.activeCycles }

// TotalExecs returns the number of recorded executions.
func (t *Tracker) TotalExecs() uint64 { return t.totalExecs }

// StressCycles returns the accumulated stress of cell (r, c).
func (t *Tracker) StressCycles(r, c int) uint64 {
	return t.stressCycles[r*t.geom.Cols+c]
}

// Utilization snapshots the per-FU duty cycles.
func (t *Tracker) Utilization() *UtilizationMap {
	u := &UtilizationMap{
		Geom:     t.geom,
		Duty:     make([]float64, t.geom.NumFUs()),
		Presence: make([]float64, t.geom.NumFUs()),
	}
	for i := range u.Duty {
		if t.activeCycles > 0 {
			u.Duty[i] = float64(t.stressCycles[i]) / float64(t.activeCycles)
		}
		if t.totalExecs > 0 {
			u.Presence[i] = float64(t.presentExecs[i]) / float64(t.totalExecs)
		}
	}
	return u
}

// UtilizationMap is a snapshot of per-FU utilization under two metrics.
type UtilizationMap struct {
	Geom fabric.Geometry
	// Duty is the NBTI-relevant metric: stress time / CGRA-active time.
	Duty []float64
	// Presence is the fraction of configuration executions that included
	// the FU (the "used by X% of the configurations" phrasing of Fig. 1).
	Presence []float64
}

// At returns the duty cycle of cell (r, c).
func (u *UtilizationMap) At(r, c int) float64 { return u.Duty[r*u.Geom.Cols+c] }

// PresenceAt returns the presence rate of cell (r, c).
func (u *UtilizationMap) PresenceAt(r, c int) float64 { return u.Presence[r*u.Geom.Cols+c] }

// Max returns the highest duty cycle and its cell: the FU that determines
// end-of-life.
func (u *UtilizationMap) Max() (float64, fabric.Cell) {
	best, cell := 0.0, fabric.Cell{}
	for r := 0; r < u.Geom.Rows; r++ {
		for c := 0; c < u.Geom.Cols; c++ {
			if d := u.At(r, c); d > best {
				best, cell = d, fabric.Cell{Row: r, Col: c}
			}
		}
	}
	return best, cell
}

// Avg returns the mean duty cycle over all FUs.
func (u *UtilizationMap) Avg() float64 {
	var sum float64
	for _, d := range u.Duty {
		sum += d
	}
	return sum / float64(len(u.Duty))
}

// Min returns the lowest duty cycle.
func (u *UtilizationMap) Min() float64 {
	best := 1.0
	for _, d := range u.Duty {
		if d < best {
			best = d
		}
	}
	return best
}

// Controller is the aging-mitigation controller: allocator + tracker, plus
// an optional fabric health map the placement must respect.
type Controller struct {
	geom    fabric.Geometry
	alloc   alloc.Allocator
	tracker *Tracker
	health  *fabric.Health
	wear    *fabric.Wear
}

// NewController builds a controller for geometry g using allocator a.
func NewController(g fabric.Geometry, a alloc.Allocator) (*Controller, error) {
	if err := g.Validate(); err != nil {
		return nil, err
	}
	if a == nil {
		return nil, fmt.Errorf("core: nil allocator")
	}
	return &Controller{geom: g, alloc: a, tracker: NewTracker(g)}, nil
}

// Allocator returns the strategy in use.
func (c *Controller) Allocator() alloc.Allocator { return c.alloc }

// Tracker exposes the stress tracker.
func (c *Controller) Tracker() *Tracker { return c.tracker }

// SetHealth attaches a fabric health map; Place then refuses pivots that
// would drive a failed FU, and health-adaptive allocators (alloc.
// HealthSetter) receive the map so their pivot search can exclude dead
// cells. A nil health map (the default) disables the check.
func (c *Controller) SetHealth(h *fabric.Health) {
	c.health = h
	if hs, ok := c.alloc.(alloc.HealthSetter); ok {
		hs.SetHealth(h)
	}
}

// Health returns the attached health map (nil when none).
func (c *Controller) Health() *fabric.Health { return c.health }

// SetWear attaches the fabric's accumulated-wear map; wear-adaptive
// allocators (alloc.WearSetter) receive it so their placement search can
// steer new configurations away from the most-degraded FUs. The controller
// itself never rejects a placement on wear — unlike a dead cell, a worn
// cell still computes correctly — so unlike SetHealth this only feeds the
// allocator.
func (c *Controller) SetWear(w *fabric.Wear) {
	c.wear = w
	if ws, ok := c.alloc.(alloc.WearSetter); ok {
		ws.SetWear(w)
	}
}

// Wear returns the attached wear map (nil when none).
func (c *Controller) Wear() *fabric.Wear { return c.wear }

// Place asks the allocation strategy for the pivot of the upcoming execution
// of cfg. When a health map with failed cells is attached, pivots that would
// map any op onto a dead FU are skipped, advancing the allocator's walk; if a
// full sweep of proposals finds no live placement, ok is false and the caller
// must fall back to the GPP. The caller must follow up with Commit once the
// residency duration is known (it depends on early exits).
func (c *Controller) Place(cfg *fabric.Config) (off fabric.Offset, ok bool) {
	if c.health == nil || c.health.DeadCount() == 0 {
		return c.alloc.Next(cfg), true
	}
	cells := cfg.Cells()
	for i := 0; i < c.geom.NumFUs(); i++ {
		off := c.alloc.Next(cfg)
		if c.health.PlacementOK(cells, off) {
			return off, true
		}
	}
	return fabric.Offset{}, false
}

// PlaceOrRemap asks the allocation strategy where to load cfg, like Place,
// but routes the outcome through shape-adaptive allocators
// (alloc.ConfigRemapper): when no pivot of the original rectangle avoids
// the failed cells the allocator may substitute a re-mapped,
// architecturally equivalent configuration of a different shape, and even
// when a pivot exists it may substitute a shape whose worst cell projects
// less wear. The returned configuration is cfg itself on the ordinary
// path; the caller must replay and Commit whichever configuration comes
// back. ok is false only when neither translation nor remapping finds a
// live placement — the GPP fallback.
func (c *Controller) PlaceOrRemap(cfg *fabric.Config) (*fabric.Config, fabric.Offset, bool) {
	off, ok := c.Place(cfg)
	if rm, isRemapper := c.alloc.(alloc.ConfigRemapper); isRemapper {
		return rm.RemapConfig(cfg, off, ok)
	}
	if !ok {
		return nil, fabric.Offset{}, false
	}
	return cfg, off, true
}

// Commit records the stress of a completed execution and feeds back to
// stress-adaptive allocators.
func (c *Controller) Commit(cfg *fabric.Config, off fabric.Offset, cycles uint64) {
	cells := cfg.Cells()
	c.tracker.Record(cells, off, cycles)
	if so, ok := c.alloc.(alloc.StressObserver); ok {
		so.ObserveStress(cells, off, cycles)
	}
}

// Utilization snapshots the utilization map.
func (c *Controller) Utilization() *UtilizationMap { return c.tracker.Utilization() }
