// Package energy models system energy for the stand-alone GPP and the
// TransRec system, reproducing the role of the paper's Cadence/NanGate-15nm
// power numbers and FinCACTI cache estimates. It is a component-level
// event-energy model: dynamic energy per executed instruction (cheaper on
// the CGRA, which has no fetch/decode, but taxed by its crossbars), plus
// leakage/clock power for every structure, plus per-offload context and
// reconfiguration charges.
//
// Absolute joules are not the point — the paper's Fig. 6 reports energy
// relative to the stand-alone GPP — so the constants are calibrated (see
// Calibrated) against the three scenario anchors the paper names: the best
// energy design (L16,W2) at ~0.90x, best performance (L32,W4) at ~1.20x,
// and lowest utilization (L32,W8) at ~1.46x. Every other design point and
// every trend is then left to the model.
package energy

import (
	"agingcgra/internal/dbt"
	"agingcgra/internal/fabric"
)

// Model holds the per-event energies (picojoules) and per-cycle powers
// (picojoules per cycle, i.e. mW at 1 GHz).
type Model struct {
	// GPPInstr is the dynamic energy of one instruction on the GPP
	// pipeline: fetch, decode, register file, ALU.
	GPPInstr float64
	// GPPMemExtra is the additional data-cache energy of a load or store.
	GPPMemExtra float64
	// CGRAOpBase is the dynamic energy of one operation on a fabric FU: no
	// fetch/decode, just the FU datapath.
	CGRAOpBase float64
	// CGRAOpPerCtxLine is the crossbar switching energy per operation per
	// context line: wider fabrics pay more per op.
	CGRAOpPerCtxLine float64
	// OffloadCtx is the per-offload cost of moving the input context in
	// and results out.
	OffloadCtx float64
	// ReconfigPerColumn is the configuration-cache read plus broadcast
	// energy per column reconfigured.
	ReconfigPerColumn float64

	// GPPStatic is the GPP's leakage+clock power.
	GPPStatic float64
	// FULeak is the leakage of one (clock-gated, idle) FU cell, charged
	// every cycle for every cell.
	FULeak float64
	// FUActive is the extra power of a configured (stressed) FU cell,
	// charged per stress cycle.
	FUActive float64
	// CachePerEntryStatic is the configuration cache leakage per entry,
	// scaled by the per-column configuration word.
	CachePerEntryStatic float64
}

// Calibrated returns the model used throughout the reproduction.
//
// The dynamic constants are plausible 15nm magnitudes (a few pJ per
// instruction); the three fabric constants (CGRAOpPerCtxLine, FULeak,
// FUActive) were fitted once against the paper's Fig. 6 anchors and then
// frozen. EXPERIMENTS.md records how the full 12-point design space
// reproduces under this single calibration.
func Calibrated() Model {
	return Model{
		GPPInstr:          8.0,
		GPPMemExtra:       6.0,
		CGRAOpBase:        4.0,
		CGRAOpPerCtxLine:  0.3,
		OffloadCtx:        30.0,
		ReconfigPerColumn: 1.5,

		GPPStatic:           18.0,
		FULeak:              0.08,
		FUActive:            0.12,
		CachePerEntryStatic: 0.002,
	}
}

// GPPEnergy returns the stand-alone GPP energy for a run described by its
// cycle count and per-class instruction counts.
func (m Model) GPPEnergy(cycles uint64, classes dbt.ClassCounts) float64 {
	instrs := classes.Total()
	mem := classes[classIdxLoad] + classes[classIdxStore]
	return float64(instrs)*m.GPPInstr +
		float64(mem)*m.GPPMemExtra +
		float64(cycles)*m.GPPStatic
}

// Indices into dbt.ClassCounts (mirroring isa.Class order: ALU, Mul, Div,
// Load, Store, Branch, Jump, Sys).
const (
	classIdxLoad  = 3
	classIdxStore = 4
)

// TransRecEnergy returns the full-system energy of a TransRec run.
func (m Model) TransRecEnergy(r *dbt.Report) float64 {
	g := r.Geom
	// Dynamic: instructions wherever they executed.
	e := float64(r.GPPClasses.Total())*m.GPPInstr + float64(r.CGRAClasses.Total())*m.CGRAOpBase
	memGPP := r.GPPClasses[classIdxLoad] + r.GPPClasses[classIdxStore]
	memCGRA := r.CGRAClasses[classIdxLoad] + r.CGRAClasses[classIdxStore]
	e += float64(memGPP+memCGRA) * m.GPPMemExtra
	e += float64(r.CGRAClasses.Total()) * m.CGRAOpPerCtxLine * float64(g.CtxLines)

	// Offload events.
	e += float64(r.Offloads) * m.OffloadCtx
	e += float64(r.ReconfigEvents) * m.ReconfigPerColumn * float64(g.Cols)

	// Static: the GPP clock runs for the whole execution; every FU leaks
	// for the whole execution; configured FUs draw active power while
	// stressed; the configuration cache leaks proportionally to its
	// geometry-dependent entry size.
	e += float64(r.TotalCycles) * m.GPPStatic
	e += float64(r.TotalCycles) * float64(g.NumFUs()) * m.FULeak
	e += float64(r.StressSum) * m.FUActive
	e += float64(r.TotalCycles) * float64(g.Cols) * m.CachePerEntryStatic * 128

	return e
}

// Relative returns TransRec energy normalised to the stand-alone GPP
// baseline for the same work.
func (m Model) Relative(r *dbt.Report, gppCycles uint64, gppClasses dbt.ClassCounts) float64 {
	base := m.GPPEnergy(gppCycles, gppClasses)
	if base == 0 {
		return 0
	}
	return m.TransRecEnergy(r) / base
}

// Geometry-dependent helper: bits of configuration word per column, used by
// the area model too (input mux selects, FU opcode, output mux selects).
func ConfigBitsPerColumn(g fabric.Geometry) int {
	inSel := 2 * g.Rows * log2ceil(g.CtxLines)
	opSel := 6 * g.Rows
	outSel := g.CtxLines * log2ceil(g.Rows+1)
	return inSel + opSel + outSel
}

func log2ceil(n int) int {
	b := 0
	for v := 1; v < n; v <<= 1 {
		b++
	}
	if b == 0 {
		b = 1
	}
	return b
}
