package energy

import (
	"testing"

	"agingcgra/internal/dbt"
	"agingcgra/internal/fabric"
)

func sampleReport(g fabric.Geometry) *dbt.Report {
	r := &dbt.Report{Geom: g}
	r.TotalCycles = 100_000
	r.GPPCycles = 40_000
	r.CGRACycles = 60_000
	r.GPPInstrs = 30_000
	r.CGRAInstrs = 70_000
	r.GPPClasses[0] = 25_000 // ALU
	r.GPPClasses[3] = 5_000  // loads
	r.CGRAClasses[0] = 55_000
	r.CGRAClasses[3] = 10_000
	r.CGRAClasses[4] = 5_000
	r.TotalInstrs = 100_000
	r.Offloads = 5_000
	r.ReconfigEvents = 1_000
	r.StressSum = 1_200_000
	return r
}

func TestGPPEnergyComposition(t *testing.T) {
	m := Calibrated()
	var classes dbt.ClassCounts
	classes[0] = 100 // ALU
	classes[3] = 20  // loads
	classes[4] = 10  // stores
	got := m.GPPEnergy(500, classes)
	want := 130*m.GPPInstr + 30*m.GPPMemExtra + 500*m.GPPStatic
	if got != want {
		t.Errorf("GPPEnergy = %v, want %v", got, want)
	}
}

func TestTransRecEnergyPositiveAndMonotone(t *testing.T) {
	m := Calibrated()
	small := sampleReport(fabric.NewGeometry(2, 16))
	big := sampleReport(fabric.NewGeometry(8, 32))
	eSmall := m.TransRecEnergy(small)
	eBig := m.TransRecEnergy(big)
	if eSmall <= 0 {
		t.Fatal("energy must be positive")
	}
	if eBig <= eSmall {
		t.Errorf("a 16x-larger fabric must cost more leakage: %v vs %v", eBig, eSmall)
	}
}

func TestRelative(t *testing.T) {
	m := Calibrated()
	r := sampleReport(fabric.NewGeometry(2, 16))
	var classes dbt.ClassCounts
	classes[0] = 85_000
	classes[3] = 15_000
	rel := m.Relative(r, 150_000, classes)
	if rel <= 0 {
		t.Errorf("relative energy = %v", rel)
	}
	if m.Relative(r, 0, dbt.ClassCounts{}) != 0 {
		t.Error("zero baseline must not divide")
	}
}

// The calibration anchors: a faster TransRec run on a small fabric must
// save energy versus the same work done slowly on the GPP; the energy is
// dominated by static power, so cycles matter most.
func TestStaticPowerDominatesRuntime(t *testing.T) {
	m := Calibrated()
	fast := sampleReport(fabric.NewGeometry(2, 16))
	slow := sampleReport(fabric.NewGeometry(2, 16))
	slow.TotalCycles *= 2
	if m.TransRecEnergy(slow) <= m.TransRecEnergy(fast) {
		t.Error("longer runtime must cost more energy")
	}
}

func TestConfigBitsPerColumn(t *testing.T) {
	g := fabric.NewGeometry(2, 16) // ctx = 6
	// inSel: 2*2*log2(6)=12; opSel: 12; outSel: 6*log2(3)=12 -> 36.
	if got := ConfigBitsPerColumn(g); got != 36 {
		t.Errorf("ConfigBitsPerColumn = %d, want 36", got)
	}
	big := fabric.NewGeometry(8, 32) // ctx = 18
	if ConfigBitsPerColumn(big) <= ConfigBitsPerColumn(g) {
		t.Error("config word must grow with fabric width")
	}
}

func TestCalibratedValuesSane(t *testing.T) {
	m := Calibrated()
	if m.CGRAOpBase >= m.GPPInstr {
		t.Error("a CGRA op must be cheaper than a full GPP instruction (no fetch/decode)")
	}
	if m.FULeak <= 0 || m.FULeak >= m.GPPStatic {
		t.Error("per-FU leakage must be positive and far below the whole GPP's static power")
	}
	if m.FUActive <= m.FULeak {
		t.Error("an active FU must draw more than an idle one")
	}
}
