// Package lifetime is the long-horizon simulator: it plays a TransRec
// fabric forward through years of operation, composing the layers the
// single-run experiments exercise separately. Each scenario fixes a
// geometry, an allocation strategy, a workload mix and an operating-point
// profile; the simulator advances in configurable epochs. Every epoch
//
//  1. runs the workload mix end-to-end on the co-simulation engine
//     (validating architectural results), accumulating per-FU stressed
//     cycles through the aging-mitigation controller,
//  2. converts each FU's duty cycle into effective stress-years under the
//     paper's NBTI model (Eq. 1), accelerated by the epoch's
//     temperature/Vdd conditions,
//  3. kills cells whose projected delay degradation crosses the
//     end-of-life threshold (death times interpolated within the epoch),
//     and
//  4. lets the DBT route the next epoch around the dead cells: the mapper
//     places new translations on live FUs only and the controller skips
//     pivots that would rotate a configuration onto a failure.
//
// The epoch outcome is a pure function of the fabric state the allocator
// can observe (fresh allocator, cores and caches each epoch; the GPP
// reference is memoized), so epochs between state changes are replayed from
// memo instead of re-simulated — multi-decade horizons cost one
// co-simulation per distinct fabric state. For health-only allocators that
// state is the Health version; wear-adaptive allocators (alloc.WearSetter)
// also see the accumulated fabric.Wear map, so their memo key includes the
// wear version — wear accrues every epoch, which correctly forces those
// scenarios to re-simulate as the placement search adapts.
package lifetime

import (
	"fmt"
	"math"
	"sort"

	"agingcgra/internal/aging"
	"agingcgra/internal/alloc"
	"agingcgra/internal/core"
	"agingcgra/internal/dbt"
	"agingcgra/internal/dse"
	"agingcgra/internal/fabric"
	"agingcgra/internal/isa"
	"agingcgra/internal/memostore"
	"agingcgra/internal/prog"
	recov "agingcgra/internal/recover"
	"agingcgra/internal/searchcost"
	"agingcgra/internal/trace"
)

// Phase is one segment of a time-varying operating-point profile: the
// conditions hold until UntilYears of simulated age.
type Phase struct {
	// UntilYears is the (exclusive) end of the phase; the last phase of a
	// profile extends to the end of the simulation regardless.
	UntilYears float64 `json:"until_years"`
	// Cond is the operating point during the phase.
	Cond aging.Conditions `json:"cond"`
}

// Scenario describes one long-horizon simulation: geometry × allocator ×
// workload mix × operating-point profile.
type Scenario struct {
	// Name labels the scenario in results (default "<geom>/<allocator>").
	Name string
	// Geom is the fabric size (zero value: the BE design, 2x16).
	Geom fabric.Geometry
	// Factory builds the allocation strategy (nil: baseline).
	Factory dse.AllocatorFactory
	// Mix is the workload mix run once per epoch, by benchmark name; a name
	// may repeat to weight it (default: the full ten-benchmark suite).
	Mix []string
	// Size is the workload input scale (default Tiny).
	Size prog.Size
	// EpochYears is the simulation step (default 0.5).
	EpochYears float64
	// MaxYears is the simulated horizon (default 15).
	MaxYears float64
	// Model is the NBTI end-of-life model (zero value: aging.NewModel, the
	// paper's 10%-over-3-years calibration).
	Model aging.Model
	// Cond is the constant operating point (zero value: the model's
	// calibration conditions, i.e. no acceleration). Ignored when Profile
	// is set.
	Cond aging.Conditions
	// Profile optionally varies the operating point over time.
	Profile []Phase
	// InitialDead lists FU cells already failed when the simulation starts:
	// the clustered-failure scenarios (dead column, dead quadrant,
	// checkerboard, survivor row — see fabric.PatternCells) the
	// shape-adaptive remap evaluation injects. Injected cells count toward
	// AliveFraction but not toward the death ages, which track aging deaths
	// only.
	InitialDead []fabric.Cell
	// Engine propagates engine options other than Geom/Allocator/
	// Controller/Health (cache size, latencies, timing, ...). Setting
	// Engine.StaleTranslations models a DBT whose translation memory
	// predates the failures — the regime where clustered deaths drive
	// translation-only allocators to the GPP.
	Engine dbt.Options
	// Seed seeds the scenario's deterministic fault-injection PRNG (the
	// per-(epoch, cell) keyed draws of internal/recover). The default is 1;
	// an explicit zero also selects the default, so fleet-style scenario
	// distributions pick distinct non-zero seeds per device. Unused unless
	// FaultModel or Recovery is set.
	Seed uint64
	// FaultModel enables wear-derived intermittent faults: each live cell
	// whose consumed lifetime crosses the intermittent threshold faults on
	// a fraction of its executions (hard death stays at the unchanged 10%
	// delay threshold). Intermittent faults are unobservable without the
	// checker, so FaultModel requires Recovery.
	FaultModel *FaultModel
	// Recovery enables the detection/quarantine/recovery layer and hides
	// the oracle: placement consumes the monitor's *observed* health map —
	// quarantines and probation reinstatements — instead of ground truth,
	// and hard deaths are discovered through detection like any other
	// fault. May be set without FaultModel (only hard deaths manifest).
	Recovery *recov.Policy
	// Refs memoizes stand-alone GPP references; RunScenarios installs a
	// batch-wide cache automatically.
	Refs *dse.RefCache
	// EpochMemo optionally shares epoch co-simulation outcomes across
	// scenarios and requests through a content-addressed store: the
	// fleet-scale service's generalization of the per-run epoch memo. It is
	// consulted only when Fingerprint is set and the scenario has no
	// recovery monitor — runEpoch mutates the monitor's cross-epoch state
	// (suspect counters, quarantines, probation streaks), so a store hit
	// that skipped it would diverge from a fresh computation; recovery
	// scenarios keep the run-local fixed-point memo only. Store hits are
	// byte-identical to fresh computation (they are not marked Replayed),
	// so a warm and a cold store produce identical timelines.
	EpochMemo *memostore.Store
	// Fingerprint content-addresses the scenario for EpochMemo sharing. The
	// caller must derive it from every outcome-affecting scenario parameter
	// — geometry, allocator, mix, size, epoch length, operating-point
	// profile, engine options, initial dead cells — with one deliberate
	// exception: MaxYears may be excluded, because the epoch co-simulation
	// never observes the horizon (two scenarios differing only in horizon
	// share a trajectory prefix, which is exactly the sharing the store
	// exists for). An under-descriptive fingerprint silently replays wrong
	// epochs; when in doubt, include more. Empty disables the shared store.
	Fingerprint string
	// Trace receives the run's observability event stream (see
	// internal/trace): per-epoch resolution summaries, aging deaths, fault
	// and quarantine activity, remap rescues, GPP fallbacks, and per-FU
	// duty/wear heatmap snapshots. Nil disables tracing and the emission
	// sites short-circuit without allocating. Tracing is observation-only
	// — the Result is byte-identical with or without a sink — and the
	// stream is a pure function of (scenario, seed): every event derives
	// from state the loop recomputes each epoch or from the memoized epoch
	// outcome itself, so a memo-replayed epoch re-emits the events of the
	// epoch it replays and warm/cold stores yield identical streams.
	Trace trace.Sink
}

// FaultModel derives per-execution intermittent-fault probabilities from
// consumed lifetime: zero below IntermittentAt, ramping linearly to MaxProb
// as the cell approaches end-of-life. The lifetime simulator re-derives the
// fabric.Faults map from the wear map at every epoch boundary.
type FaultModel struct {
	// IntermittentAt is the consumed-lifetime fraction (stress-years over
	// the end-of-life threshold) past which a cell starts to fault
	// intermittently (default 0.6).
	IntermittentAt float64 `json:"intermittent_at"`
	// MaxProb is the per-execution fault probability reached at consumed
	// lifetime 1.0, i.e. just before hard death (default 0.02).
	MaxProb float64 `json:"max_prob"`
}

func (fm *FaultModel) applyDefaults() {
	if fm.IntermittentAt == 0 {
		fm.IntermittentAt = 0.6
	}
	if fm.MaxProb == 0 {
		fm.MaxProb = 0.02
	}
}

// prob maps consumed lifetime to a per-execution fault probability.
func (fm FaultModel) prob(consumed float64) float64 {
	if consumed <= fm.IntermittentAt {
		return 0
	}
	span := 1 - fm.IntermittentAt
	if span <= 0 {
		return fm.MaxProb
	}
	p := fm.MaxProb * (consumed - fm.IntermittentAt) / span
	if p > fm.MaxProb {
		p = fm.MaxProb
	}
	return p
}

func (sc *Scenario) applyDefaults() {
	if sc.Geom == (fabric.Geometry{}) {
		sc.Geom = fabric.NewGeometry(2, 16)
	}
	if sc.Factory == nil {
		sc.Factory = dse.BaselineFactory
	}
	if len(sc.Mix) == 0 {
		sc.Mix = prog.Names()
	}
	if sc.EpochYears == 0 {
		sc.EpochYears = 0.5
	}
	if sc.MaxYears == 0 {
		sc.MaxYears = 15
	}
	if sc.Model == (aging.Model{}) {
		sc.Model = aging.NewModel()
	}
	if sc.Cond == (aging.Conditions{}) {
		sc.Cond = sc.Model.Cond
	}
	if sc.Refs == nil {
		sc.Refs = dse.NewRefCache()
	}
	if sc.Seed == 0 {
		sc.Seed = 1
	}
	if sc.FaultModel != nil {
		sc.FaultModel.applyDefaults()
	}
	if sc.Recovery != nil {
		sc.Recovery.ApplyDefaults()
	}
}

func (sc *Scenario) validate() error {
	if err := sc.Geom.Validate(); err != nil {
		return err
	}
	if err := sc.Model.Validate(); err != nil {
		return err
	}
	if err := sc.Cond.Validate(); err != nil {
		return err
	}
	for _, ph := range sc.Profile {
		if err := ph.Cond.Validate(); err != nil {
			return err
		}
	}
	if sc.EpochYears <= 0 {
		return fmt.Errorf("lifetime: epoch length %v years must be positive", sc.EpochYears)
	}
	if sc.MaxYears < sc.EpochYears {
		return fmt.Errorf("lifetime: horizon %v years shorter than one epoch (%v)",
			sc.MaxYears, sc.EpochYears)
	}
	for _, name := range sc.Mix {
		if _, ok := prog.ByName(name); !ok {
			return fmt.Errorf("lifetime: unknown benchmark %q in mix (want one of %v)",
				name, prog.Names())
		}
	}
	for _, c := range sc.InitialDead {
		if c.Row < 0 || c.Row >= sc.Geom.Rows || c.Col < 0 || c.Col >= sc.Geom.Cols {
			return fmt.Errorf("lifetime: initial dead cell %v outside geometry %v", c, sc.Geom)
		}
	}
	if fm := sc.FaultModel; fm != nil {
		if sc.Recovery == nil {
			return fmt.Errorf("lifetime: FaultModel requires Recovery: intermittent faults are " +
				"unobservable without the checker, so a fault-injected run without the recovery " +
				"layer would silently corrupt every measurement")
		}
		if fm.IntermittentAt < 0 || fm.IntermittentAt >= 1 {
			return fmt.Errorf("lifetime: FaultModel.IntermittentAt %v must be in [0,1)", fm.IntermittentAt)
		}
		if fm.MaxProb <= 0 || fm.MaxProb > 1 {
			return fmt.Errorf("lifetime: FaultModel.MaxProb %v must be in (0,1]", fm.MaxProb)
		}
	}
	if sc.Recovery != nil {
		if err := sc.Recovery.Validate(); err != nil {
			return err
		}
	}
	return nil
}

// condAt returns the operating point in effect at the given simulated age.
func (sc *Scenario) condAt(years float64) aging.Conditions {
	if len(sc.Profile) == 0 {
		return sc.Cond
	}
	for _, ph := range sc.Profile {
		if years < ph.UntilYears {
			return ph.Cond
		}
	}
	return sc.Profile[len(sc.Profile)-1].Cond
}

// EpochRecord is one step of the lifetime timeline.
type EpochRecord struct {
	// Epoch is the step index, Years the cumulative age at its end.
	Epoch int     `json:"epoch"`
	Years float64 `json:"years"`
	// WorstUtil and MeanUtil are the epoch's per-FU duty-cycle extremes
	// (the NBTI-relevant utilization of Section IV).
	WorstUtil float64 `json:"worst_util"`
	MeanUtil  float64 `json:"mean_util"`
	// WorstDelay is the highest projected delay degradation among live
	// cells at the end of the epoch; GuardbandFreq the matching safe clock.
	WorstDelay    float64 `json:"worst_delay"`
	GuardbandFreq float64 `json:"guardband_freq"`
	// AliveFraction is the surviving share of the fabric after this epoch's
	// failures; Deaths lists the cells that crossed end-of-life in it.
	AliveFraction float64       `json:"alive_fraction"`
	Deaths        []fabric.Cell `json:"deaths,omitempty"`
	// Speedup is the epoch mix's GPP cycles / TransRec cycles: the
	// effective acceleration left on the aging fabric. IPC is total
	// instructions / total TransRec cycles.
	Speedup  float64 `json:"speedup"`
	IPC      float64 `json:"ipc"`
	Offloads uint64  `json:"offloads"`
	// Replayed marks epochs whose co-simulation was reused from the memo
	// because the fabric health did not change.
	Replayed bool `json:"replayed,omitempty"`
	// Fault/recovery activity of the epoch (omitted on fault-free runs):
	// faulty executions, checker detections, silent-corruption escapes, and
	// the runtime's observed-dead count (quarantined cells) at epoch end.
	Faulted      uint64 `json:"faulted,omitempty"`
	Detected     uint64 `json:"detected,omitempty"`
	Escapes      uint64 `json:"escapes,omitempty"`
	ObservedDead int    `json:"observed_dead,omitempty"`
}

// Result is the lifetime timeline of one scenario.
type Result struct {
	Name          string          `json:"name"`
	Geom          fabric.Geometry `json:"geom"`
	AllocatorName string          `json:"allocator"`
	Mix           []string        `json:"mix"`
	Size          string          `json:"size"`
	EpochYears    float64         `json:"epoch_years"`
	MaxYears      float64         `json:"max_years"`

	Timeline []EpochRecord `json:"timeline"`

	// FirstDeathYears is the interpolated age of the first FU failure
	// (0 when every cell survived the horizon).
	FirstDeathYears float64 `json:"first_death_years"`
	// DeathAges lists the interpolated age of every FU failure within the
	// horizon in ascending order; DeathAges[0] equals FirstDeathYears when
	// any cell died. The time-to-second/third-death comparisons of the
	// wear-aware explorer evaluation read from here.
	DeathAges []float64 `json:"death_ages,omitempty"`
	// TotalDeaths and AliveFraction summarize the end state.
	TotalDeaths   int     `json:"total_deaths"`
	AliveFraction float64 `json:"alive_fraction"`
	// InitialSpeedup and FinalSpeedup bracket the performance decay.
	InitialSpeedup float64 `json:"initial_speedup"`
	FinalSpeedup   float64 `json:"final_speedup"`

	// Search is the derived hardware cost of the scenario's placement and
	// shape searches (explorer pivot scans, remap rescue scans,
	// translation-time ladder scans), summed over every simulated epoch —
	// replayed epochs included, since the hardware re-runs its scans each
	// epoch regardless of whether the simulator memoized the outcome. Nil
	// when the allocator ran no counted search (baseline, snake).
	Search *SearchReport `json:"search,omitempty"`

	// Recovery is the fault-injection and detection/recovery summary:
	// the runtime's measured view cross-referenced against ground truth.
	// Nil when the scenario ran with the oracle (no Recovery policy).
	Recovery *RecoveryReport `json:"recovery,omitempty"`
}

// RecoveryReport summarises a recovery-enabled scenario: the policy and
// fault model in force, the monitor's cumulative activity (replayed epochs
// re-add their memoized per-epoch deltas, like the search counts), and the
// measured-vs-truth quality metrics only the simulator — which holds both
// views — can compute.
type RecoveryReport struct {
	Policy recov.Policy `json:"policy"`
	Fault  *FaultModel  `json:"fault_model,omitempty"`
	Seed   uint64       `json:"seed"`
	Stats  recov.Stats  `json:"stats"`

	// TrueDead and ObservedDead compare the horizon end states;
	// FalseNegatives counts truth-dead cells the runtime never quarantined,
	// FalsePositivesOpen the truth-live cells still quarantined at the
	// horizon (false positives probation had not yet recovered).
	TrueDead           int `json:"true_dead"`
	ObservedDead       int `json:"observed_dead"`
	FalseNegatives     int `json:"false_negatives"`
	FalsePositivesOpen int `json:"false_positives_open"`

	// DetectedDeaths counts quarantines of genuinely dead cells;
	// Mean/MaxDetectionLatencyYears measure how long those cells kept
	// faulting (and being retried or escaping) before quarantine caught
	// them — the oracle's atomic alive→dead flip had latency zero.
	DetectedDeaths            int     `json:"detected_deaths"`
	MeanDetectionLatencyYears float64 `json:"mean_detection_latency_years,omitempty"`
	MaxDetectionLatencyYears  float64 `json:"max_detection_latency_years,omitempty"`
}

// SearchReport is the scenario-level summary of the derived search-cost
// model: raw event counts, priced cycles/energy per search family, and the
// per-offload overhead the hold periods and caches are supposed to keep
// negligible — derived numbers replacing the "asserted cheap" story.
type SearchReport struct {
	Counts searchcost.Counts    `json:"counts"`
	Cost   searchcost.Breakdown `json:"cost"`
	// TotalCycles and TotalEnergyNJ aggregate the three families.
	TotalCycles   float64 `json:"total_cycles"`
	TotalEnergyNJ float64 `json:"total_energy_nj"`
	// PerOffloadCycles is TotalCycles amortised over every offload of the
	// simulated horizon; OverheadFrac relates it to the TransRec cycles
	// actually simulated (search cycles / execution cycles).
	PerOffloadCycles float64 `json:"per_offload_cycles"`
	OverheadFrac     float64 `json:"overhead_frac"`
}

// NthDeathYears returns the interpolated age of the n-th FU failure
// (1-based); 0 when fewer than n cells died within the horizon.
func (r *Result) NthDeathYears(n int) float64 {
	if n < 1 || n > len(r.DeathAges) {
		return 0
	}
	return r.DeathAges[n-1]
}

// stateKey is the epoch memo key: the versions of exactly the fabric state
// the epoch's outcome is a pure function of, captured at epoch start.
// Fields the scenario does not observe stay zero (wear for health-only
// allocators, faults/mon without injection/recovery).
type stateKey struct {
	health, wear, faults, mon uint64
}

// epochMemoKey addresses one epoch outcome in the cross-request shared
// store: the scenario's content fingerprint plus the observed-state
// versions. Versions are only comparable within one deterministic
// trajectory, which is what the fingerprint pins — two scenarios with the
// same fingerprint replay the same trajectory, so equal version tuples mean
// equal state content.
type epochMemoKey struct {
	fp string
	st stateKey
}

// epochRun is the co-simulation outcome of one epoch: a pure function of
// the fabric health state, so it is memoized across failure-free epochs.
type epochRun struct {
	gppCycles uint64
	trCycles  uint64
	instrs    uint64
	offloads  uint64
	search    searchcost.Counts
	// recovery is the monitor's per-epoch activity delta (probes included).
	// A replayed epoch re-adds it: escapes and checks recur every epoch of
	// a steady state even though the simulator memoized the outcome.
	recovery recov.Stats
	// remaps and fallbacks count the mix's shape-adaptive substitutions
	// and refused-placement GPP retirements. They ride in the memo value
	// as the epoch's compact event record: a replayed epoch re-emits its
	// remap-rescue and GPP-fallback trace events from here, exactly as it
	// re-adds the search and recovery deltas.
	remaps    uint64
	fallbacks uint64
	util      *core.UtilizationMap
}

// Run simulates one scenario to its horizon.
func Run(sc Scenario) (*Result, error) {
	sc.applyDefaults()
	if err := sc.validate(); err != nil {
		return nil, err
	}

	probe := sc.Factory(sc.Geom)
	allocName := probe.Name()
	// Wear-adaptive allocators observe the accumulated wear map, so their
	// epoch outcomes depend on it and the memo key must include its version.
	// Shape-aware translation observes wear too (the ladder tie-break and
	// the translation-cache keying read it), so such scenarios are
	// wear-adaptive regardless of the allocator.
	_, wearAware := probe.(alloc.WearSetter)
	wearAware = wearAware || sc.Engine.ShapeTranslations
	if sc.Name == "" {
		sc.Name = fmt.Sprintf("%s/%s", sc.Geom, allocName)
	}
	res := &Result{
		Name:          sc.Name,
		Geom:          sc.Geom,
		AllocatorName: allocName,
		Mix:           sc.Mix,
		Size:          sc.Size.String(),
		EpochYears:    sc.EpochYears,
		MaxYears:      sc.MaxYears,
	}

	health := fabric.NewHealth(sc.Geom)
	// Injected clustered failures are dead before the first epoch; they are
	// not aging deaths, so they do not enter the death-age statistics.
	for _, c := range sc.InitialDead {
		health.Kill(c)
	}
	// wear accumulates each cell's t·u product in calibration-equivalent
	// years: Eq. 1 depends on t and u only through t·u, so a cell dies when
	// its stress-years reach CalibYears·CalibUtil. The same map is threaded
	// into the epoch controller so wear-adaptive allocators can steer
	// placements away from the most-degraded FUs.
	wear := fabric.NewWear(sc.Geom)
	n := sc.Geom.NumFUs()
	threshold := sc.Model.CalibYears * sc.Model.CalibUtil

	// Fault injection and the runtime's observed view. The faults map is
	// re-derived from wear at every epoch boundary; the monitor owns the
	// injection PRNG and the observed health map placement consumes when
	// the oracle is hidden.
	var faults *fabric.Faults
	if sc.FaultModel != nil {
		faults = fabric.NewFaults(sc.Geom)
	}
	var mon *recov.Monitor
	if sc.Recovery != nil {
		mon = recov.NewMonitor(sc.Geom, *sc.Recovery, health, faults, sc.Seed)
	}
	// deathAge maps each dead cell to its interpolated death age, so
	// quarantine events of truth-dead cells yield detection latencies.
	// Injected initial deaths read as age zero.
	var deathAge map[fabric.Cell]float64
	if mon != nil {
		deathAge = make(map[fabric.Cell]float64, n)
		for _, c := range sc.InitialDead {
			deathAge[c] = 0
		}
	}

	// The epoch memo key is the fabric state the epoch's outcome is a pure
	// function of, captured at epoch start: health always, wear for
	// wear-adaptive scenarios, and — per the PR 3/5 memo-key rule — the
	// fault map and the monitor's persistent observable state for
	// fault/recovery scenarios. While faults fire or the observed view
	// shifts, consecutive keys differ and epochs re-simulate; once the
	// state goes quiescent the key repeats and epochs replay, re-using the
	// memoized epoch's draws as the steady-state approximation.
	currentKey := func() stateKey {
		k := stateKey{health: health.Version()}
		if wearAware {
			k.wear = wear.Version()
		}
		if faults != nil {
			k.faults = faults.Version()
		}
		if mon != nil {
			k.mon = mon.Version()
		}
		return k
	}

	var last *epochRun
	var lastKey stateKey
	years := 0.0
	epochs := int(math.Ceil(sc.MaxYears/sc.EpochYears - 1e-9))

	// Search-cost accumulators: every simulated epoch re-runs the hardware
	// scans, so replayed epochs contribute their memoized counts too.
	var searchTotal searchcost.Counts
	var offloadTotal, trCyclesTotal uint64
	var recTotal recov.Stats
	var latencySum, latencyMax float64
	detectedDeaths := 0

	for epoch := 0; epoch < epochs; epoch++ {
		epochLen := sc.EpochYears
		if years+epochLen > sc.MaxYears {
			epochLen = sc.MaxYears - years
		}

		if faults != nil {
			updateFaults(faults, wear, health, threshold, *sc.FaultModel)
		}
		key := currentKey()
		run := last
		replayed := run != nil && key == lastKey
		var events []recov.Event
		switch {
		case replayed:
			// Within-run fixed point: the previous epoch left the observed
			// state unchanged, so its outcome repeats verbatim.
		case mon == nil && sc.EpochMemo != nil && sc.Fingerprint != "":
			// Cross-request shared memo. Sound only without a monitor:
			// runEpoch is then side-effect-free on cross-epoch state (the
			// controller and allocator are fresh per epoch, wear and health
			// mutate outside), so substituting a stored outcome for the
			// same (fingerprint, state-version) key is indistinguishable
			// from computing it.
			v, err := sc.EpochMemo.GetOrCompute(epochMemoKey{fp: sc.Fingerprint, st: key}, func() (any, error) {
				return runEpoch(&sc, health, wear, nil)
			})
			if err != nil {
				return nil, fmt.Errorf("lifetime: %s epoch %d: %w", sc.Name, epoch, err)
			}
			run, last = v.(*epochRun), v.(*epochRun)
			lastKey = key
		default:
			statsBefore := recov.Stats{}
			if mon != nil {
				statsBefore = mon.Stats()
				mon.BeginEpoch(epoch)
			}
			r, err := runEpoch(&sc, health, wear, mon)
			if err != nil {
				return nil, fmt.Errorf("lifetime: %s epoch %d: %w", sc.Name, epoch, err)
			}
			if mon != nil {
				// Probation runs at the epoch boundary, after the mix:
				// quarantined cells are probed and false positives earn
				// their way back before the next epoch places around them.
				// The probe work lands outside any engine run, so its
				// search-count delta is attributed to the epoch here.
				sb := mon.SearchCounts()
				mon.ProbeQuarantined()
				r.search.Add(mon.SearchCounts().Sub(sb))
				r.recovery = mon.Stats().Sub(statsBefore)
				events = mon.TakeEvents()
			}
			run, last = r, r
			lastKey = key
		}
		searchTotal.Add(run.search)
		offloadTotal += run.offloads
		trCyclesTotal += run.trCycles
		recTotal.Add(run.recovery)

		// Age every live cell by the epoch, accelerated by the operating
		// point in effect; cells crossing end-of-life die mid-epoch at the
		// interpolated age but keep contributing until the epoch boundary
		// (the epoch-granularity approximation).
		accel := sc.Model.AccelerationFactor(sc.condAt(years))
		var deaths []fabric.Cell
		deathsBefore := len(res.DeathAges)
		worstDelay := 0.0
		for i := 0; i < n; i++ {
			cell := fabric.Cell{Row: i / sc.Geom.Cols, Col: i % sc.Geom.Cols}
			if health.Dead(cell) {
				continue
			}
			rate := run.util.Duty[i] * accel
			before := wear.YearsAt(cell)
			wear.Add(cell, epochLen*rate)
			after := before + epochLen*rate
			if after >= threshold && rate > 0 {
				age := years + (threshold-before)/rate
				if res.FirstDeathYears == 0 || age < res.FirstDeathYears {
					res.FirstDeathYears = age
				}
				res.DeathAges = append(res.DeathAges, age)
				health.Kill(cell)
				if deathAge != nil {
					deathAge[cell] = age
				}
				deaths = append(deaths, cell)
				continue
			}
			if d := sc.Model.DelayIncrease(after, 1); d > worstDelay {
				worstDelay = d
			}
		}
		years += epochLen

		// Cross-reference the epoch's quarantine events against ground
		// truth: a quarantine of a dead cell is a detection, timed from the
		// cell's interpolated death age to the end of the detecting epoch.
		for _, ev := range events {
			if ev.Kind != recov.Quarantine || !ev.TruthDead {
				continue
			}
			lat := years - deathAge[ev.Cell]
			if lat < 0 {
				lat = 0
			}
			latencySum += lat
			if lat > latencyMax {
				latencyMax = lat
			}
			detectedDeaths++
		}

		worstUtil, _ := run.util.Max()
		speedup := 0.0
		if run.trCycles > 0 {
			speedup = float64(run.gppCycles) / float64(run.trCycles)
		}
		ipc := 0.0
		if run.trCycles > 0 {
			ipc = float64(run.instrs) / float64(run.trCycles)
		}
		rec := EpochRecord{
			Epoch:         epoch,
			Years:         years,
			WorstUtil:     worstUtil,
			MeanUtil:      run.util.Avg(),
			WorstDelay:    worstDelay,
			GuardbandFreq: 1 / (1 + worstDelay),
			AliveFraction: health.AliveFraction(),
			Deaths:        deaths,
			Speedup:       speedup,
			IPC:           ipc,
			Offloads:      run.offloads,
			Replayed:      replayed,
		}
		if mon != nil {
			rec.Faulted = run.recovery.FaultedExecs
			rec.Detected = run.recovery.DetectedFaults
			rec.Escapes = run.recovery.SilentEscapes
			rec.ObservedDead = mon.Observed().DeadCount()
		}
		res.Timeline = append(res.Timeline, rec)
		res.TotalDeaths += len(deaths)
		if sc.Trace != nil {
			// res.DeathAges is only sorted after the loop, so its tail
			// since deathsBefore still pairs with deaths in cell order.
			emitEpochEvents(&sc, run, rec, events, deaths,
				res.DeathAges[deathsBefore:], health, wear, mon)
		}
	}

	res.AliveFraction = health.AliveFraction()
	// Deaths are recorded in cell order within an epoch; the interpolated
	// ages inside one epoch need not be monotone, so sort the combined list.
	sort.Float64s(res.DeathAges)
	if len(res.Timeline) > 0 {
		res.InitialSpeedup = res.Timeline[0].Speedup
		res.FinalSpeedup = res.Timeline[len(res.Timeline)-1].Speedup
	}
	if !searchTotal.Zero() {
		cost := searchcost.DefaultModel().Assess(searchTotal)
		total := cost.Total()
		rep := &SearchReport{
			Counts:           searchTotal,
			Cost:             cost,
			TotalCycles:      total.Cycles,
			TotalEnergyNJ:    total.EnergyNJ,
			PerOffloadCycles: total.PerOffload(offloadTotal).Cycles,
		}
		if trCyclesTotal > 0 {
			rep.OverheadFrac = total.Cycles / float64(trCyclesTotal)
		}
		res.Search = rep
	}
	if mon != nil {
		rr := &RecoveryReport{
			Policy:         mon.Policy(),
			Fault:          sc.FaultModel,
			Seed:           sc.Seed,
			Stats:          recTotal,
			TrueDead:       health.DeadCount(),
			ObservedDead:   mon.Observed().DeadCount(),
			DetectedDeaths: detectedDeaths,
		}
		observed := mon.Observed()
		for r := 0; r < sc.Geom.Rows; r++ {
			for c := 0; c < sc.Geom.Cols; c++ {
				cell := fabric.Cell{Row: r, Col: c}
				switch {
				case health.Dead(cell) && !observed.Dead(cell):
					rr.FalseNegatives++
				case !health.Dead(cell) && observed.Dead(cell):
					rr.FalsePositivesOpen++
				}
			}
		}
		if detectedDeaths > 0 {
			rr.MeanDetectionLatencyYears = latencySum / float64(detectedDeaths)
			rr.MaxDetectionLatencyYears = latencyMax
		}
		res.Recovery = rr
	}
	return res, nil
}

// emitEpochEvents renders one resolved epoch as trace events, in a fixed
// order: fault activity, monitor transitions, remap rescues, GPP
// fallbacks, deaths, the epoch summary, and the heatmap snapshot. Only
// reached with a sink attached. Determinism rests on every input being
// either recomputed each epoch (deaths, wear, health, the monitor's
// observed map) or carried in the memoized epochRun (recovery and search
// deltas, remap/fallback counts, the utilization map) — which replayed
// epochs re-add verbatim, so they re-emit the same events as the epoch
// they replay. Monitor transition events only exist on freshly simulated
// epochs by construction: a transition bumps the monitor version, so the
// following epoch cannot replay.
func emitEpochEvents(sc *Scenario, run *epochRun, rec EpochRecord, events []recov.Event,
	deaths []fabric.Cell, ages []float64, health *fabric.Health, wear *fabric.Wear, mon *recov.Monitor) {
	sink := sc.Trace
	base := trace.Event{Scenario: sc.Name, Epoch: rec.Epoch, Years: rec.Years}
	if run.recovery.FaultedExecs > 0 || run.recovery.SilentEscapes > 0 || run.recovery.DetectedFaults > 0 {
		ev := base
		ev.Kind = trace.KindFault
		ev.Count = run.recovery.FaultedExecs
		ev.Detected = run.recovery.DetectedFaults
		ev.Escapes = run.recovery.SilentEscapes
		sink.Emit(ev)
	}
	for _, mev := range events {
		ev := base
		switch mev.Kind {
		case recov.Quarantine:
			ev.Kind = trace.KindQuarantine
		case recov.Reinstate:
			ev.Kind = trace.KindReinstate
		default:
			continue
		}
		cell := mev.Cell
		ev.Cell = &cell
		ev.TruthDead = mev.TruthDead
		sink.Emit(ev)
	}
	if run.remaps > 0 {
		ev := base
		ev.Kind = trace.KindRemapRescue
		ev.Count = run.remaps
		sink.Emit(ev)
	}
	if run.fallbacks > 0 {
		ev := base
		ev.Kind = trace.KindGPPFallback
		ev.Count = run.fallbacks
		sink.Emit(ev)
	}
	for i, c := range deaths {
		ev := base
		ev.Kind = trace.KindDeath
		cell := c
		ev.Cell = &cell
		ev.AgeYears = ages[i]
		sink.Emit(ev)
	}
	ep := base
	ep.Kind = trace.KindEpoch
	ep.Replayed = rec.Replayed
	ep.Speedup = rec.Speedup
	ep.AliveFraction = rec.AliveFraction
	ep.WorstUtil = rec.WorstUtil
	ep.MeanUtil = rec.MeanUtil
	ep.Offloads = rec.Offloads
	ep.Deaths = len(deaths)
	if !run.search.Zero() {
		bd := searchcost.DefaultModel().Assess(run.search)
		ep.SearchCycles = bd.Total().Cycles
		ep.RecoveryCycles = bd.Recovery.Cycles
	}
	sink.Emit(ep)

	snap := base
	snap.Kind = trace.KindSnapshot
	snap.Rows, snap.Cols = sc.Geom.Rows, sc.Geom.Cols
	// Copies throughout: run.util may live in the shared epoch store,
	// whose values are immutable, and wear/health keep evolving.
	snap.Duty = append([]float64(nil), run.util.Duty...)
	snap.WearYears = wear.CopyYears(nil)
	for i, dead := range health.DeadMask() {
		if dead {
			snap.Dead = append(snap.Dead, i)
		}
	}
	if mon != nil {
		for i, dead := range mon.Observed().DeadMask() {
			if dead {
				snap.ObservedDead = append(snap.ObservedDead, i)
			}
		}
	}
	sink.Emit(snap)
}

// updateFaults re-derives the per-execution fault probabilities from the
// accumulated wear: dead cells carry probability zero (hard death manifests
// through ground truth directly), live cells ramp per the fault model.
// fabric.Faults.Set only advances the version on actual change, so a
// quiescent fabric keeps the epoch memo valid.
func updateFaults(f *fabric.Faults, wear *fabric.Wear, health *fabric.Health, threshold float64, fm FaultModel) {
	g := f.Geometry()
	for r := 0; r < g.Rows; r++ {
		for c := 0; c < g.Cols; c++ {
			cell := fabric.Cell{Row: r, Col: c}
			if health.Dead(cell) {
				f.Set(cell, 0)
				continue
			}
			f.Set(cell, fm.prob(wear.YearsAt(cell)/threshold))
		}
	}
}

// runEpoch co-simulates the workload mix once on the current fabric state:
// a fresh allocator and controller (sharing one fabric across the mix, as a
// deployed chip would within an epoch), fresh engines and caches, and the
// scenario's health and wear maps wired into the mapper, the placement and
// any wear-adaptive allocator. With a recovery monitor attached the oracle
// is hidden: mapper and placement consume the monitor's observed health
// map, and ground truth stays with the simulator (aging, deaths and fault
// manifestation).
func runEpoch(sc *Scenario, health *fabric.Health, wear *fabric.Wear, mon *recov.Monitor) (*epochRun, error) {
	ctrl, err := core.NewController(sc.Geom, sc.Factory(sc.Geom))
	if err != nil {
		return nil, err
	}
	placeHealth := health
	if mon != nil {
		placeHealth = mon.Observed()
	}
	ctrl.SetHealth(placeHealth)
	ctrl.SetWear(wear)

	run := &epochRun{}
	for _, name := range sc.Mix {
		b, _ := prog.ByName(name) // validated up front
		ref, err := sc.Refs.Get(b, sc.Size, sc.Engine.Timing)
		if err != nil {
			return nil, fmt.Errorf("%s gpp-only: %w", name, err)
		}

		ct, err := b.NewCore(sc.Size)
		if err != nil {
			return nil, err
		}
		eopts := sc.Engine
		eopts.Geom = sc.Geom
		eopts.Controller = ctrl
		eopts.Health = placeHealth
		eopts.Recovery = mon
		eng, err := dbt.NewEngine(eopts)
		if err != nil {
			return nil, err
		}
		rep, err := eng.Run(ct, b.MaxInstructions)
		if err != nil {
			return nil, fmt.Errorf("%s transrec: %w", name, err)
		}
		// Architectural correctness must survive failures: the DBT maps
		// and places around dead cells, never through them.
		if err := b.Check(ct.Mem, ct.Regs[isa.A0], sc.Size); err != nil {
			return nil, fmt.Errorf("%s wrong result on degraded fabric: %w", name, err)
		}
		// Recycling the core's memory through the pool is invisible to the
		// epoch memo: the memo key is the observed fabric state (health,
		// wear, faults, monitor versions), never anything reachable from
		// the core, and a pooled memory is scrubbed back to zero before
		// reuse — a memoized epoch and a re-simulated one read identical
		// initial memory.
		ct.Release()

		run.gppCycles += ref.Cycles
		run.trCycles += rep.TotalCycles
		run.instrs += rep.TotalInstrs
		run.offloads += rep.Offloads
		run.search.Add(rep.Search)
		run.remaps += rep.Remaps
		run.fallbacks += rep.GPPFallbacks
	}
	run.util = ctrl.Utilization()
	return run, nil
}

// RunScenarios simulates a batch of scenarios over a worker pool (workers
// <= 0 selects all CPUs, 1 forces the serial path). Results are ordered by
// scenario index and byte-identical to a serial run; the stand-alone GPP
// references are shared across the batch.
func RunScenarios(scs []Scenario, workers int) ([]*Result, error) {
	refs := dse.NewRefCache()
	out := make([]*Result, len(scs))
	err := dse.ForEach(len(scs), workers, func(i int) error {
		sc := scs[i]
		if sc.Refs == nil {
			sc.Refs = refs
		}
		r, err := Run(sc)
		out[i] = r
		return err
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}
