package lifetime

import (
	"encoding/json"
	"testing"

	"agingcgra/internal/dse"
	"agingcgra/internal/fabric"
	"agingcgra/internal/memostore"
	recov "agingcgra/internal/recover"
)

func sharedMemoScenario(maxYears float64) Scenario {
	return Scenario{
		Geom:        fabric.NewGeometry(2, 8),
		Factory:     dse.BaselineFactory,
		Mix:         []string{"crc32"},
		EpochYears:  0.5,
		MaxYears:    maxYears,
		Fingerprint: "test-shared-memo-crc32-2x8-baseline",
	}
}

// TestSharedEpochMemoWarmEqualsCold pins the service's determinism
// foundation: a run against a warm cross-request store is byte-identical to
// a cold run, and the warm run actually hits the store.
func TestSharedEpochMemoWarmEqualsCold(t *testing.T) {
	cold := sharedMemoScenario(3)
	coldRes, err := Run(cold)
	if err != nil {
		t.Fatal(err)
	}
	coldJSON, _ := json.Marshal(coldRes)

	store := memostore.New(0)
	first := sharedMemoScenario(3)
	first.EpochMemo = store
	if _, err := Run(first); err != nil {
		t.Fatal(err)
	}
	missesAfterFirst := store.Stats().Misses

	warm := sharedMemoScenario(3)
	warm.EpochMemo = store
	warmRes, err := Run(warm)
	if err != nil {
		t.Fatal(err)
	}
	warmJSON, _ := json.Marshal(warmRes)
	if string(coldJSON) != string(warmJSON) {
		t.Fatal("warm-store run differs from cold run")
	}
	st := store.Stats()
	if st.Hits == 0 {
		t.Fatalf("warm run never hit the shared store: %+v", st)
	}
	if st.Misses != missesAfterFirst {
		t.Fatalf("warm run of an identical scenario recomputed epochs: %+v", st)
	}
}

// TestSharedEpochMemoSharesAcrossHorizons pins the one deliberate
// fingerprint exclusion: scenarios differing only in MaxYears share a
// trajectory prefix, so a longer run reuses the shorter run's epochs and
// still matches its own cold computation byte for byte.
func TestSharedEpochMemoSharesAcrossHorizons(t *testing.T) {
	store := memostore.New(0)
	short := sharedMemoScenario(2)
	short.EpochMemo = store
	if _, err := Run(short); err != nil {
		t.Fatal(err)
	}

	long := sharedMemoScenario(4)
	long.EpochMemo = store
	longRes, err := Run(long)
	if err != nil {
		t.Fatal(err)
	}
	if store.Stats().Hits == 0 {
		t.Fatal("longer horizon never reused the shorter run's epochs")
	}

	coldLong, err := Run(sharedMemoScenario(4))
	if err != nil {
		t.Fatal(err)
	}
	a, _ := json.Marshal(longRes)
	b, _ := json.Marshal(coldLong)
	if string(a) != string(b) {
		t.Fatal("store-assisted long run differs from cold long run")
	}
}

// TestSharedEpochMemoIgnoredWithRecovery pins the soundness guard: a
// recovery monitor's cross-epoch state mutates inside runEpoch, so such
// scenarios must never consult the shared store.
func TestSharedEpochMemoIgnoredWithRecovery(t *testing.T) {
	store := memostore.New(0)
	sc := sharedMemoScenario(2)
	sc.EpochMemo = store
	sc.Recovery = &recov.Policy{}
	res, err := Run(sc)
	if err != nil {
		t.Fatal(err)
	}
	if res.Recovery == nil {
		t.Fatal("recovery report missing")
	}
	st := store.Stats()
	if st.Hits != 0 || st.Misses != 0 {
		t.Fatalf("recovery scenario touched the shared epoch store: %+v", st)
	}
}
