package lifetime

import (
	"bytes"
	"encoding/json"
	"testing"

	"agingcgra/internal/dse"
	"agingcgra/internal/fabric"
	recov "agingcgra/internal/recover"
)

// batch is a small heterogeneous scenario batch: two geometries × four
// allocators, single-kernel mixes at tiny scale. The explorer scenarios
// exercise the wear-feedback path (no epoch memoization while wear evolves),
// so the batch covers both the replayed and the re-simulated timelines. The
// remap scenarios additionally inject a clustered failure under stale
// translations, so the shape-search path (and its per-(health, wear)
// remap cache) is on the deterministic clock too, and the shaped scenarios
// put the translation-time ladder search (with its state-keyed translation
// cache) under the same serial==parallel == -race contract.
func batch() []Scenario {
	mk := func(rows, cols int, f dse.AllocatorFactory, bench string) Scenario {
		return Scenario{
			Geom:       fabric.NewGeometry(rows, cols),
			Factory:    f,
			Mix:        []string{bench},
			EpochYears: 0.5,
			MaxYears:   5,
		}
	}
	clustered := func(rows, cols int, f dse.AllocatorFactory, bench, pattern string) Scenario {
		sc := mk(rows, cols, f, bench)
		cells, err := fabric.PatternCells(pattern, sc.Geom)
		if err != nil {
			panic(err)
		}
		sc.InitialDead = cells
		sc.Engine.StaleTranslations = true
		return sc
	}
	faulty := func(rows, cols int, f dse.AllocatorFactory, bench string, failStop bool) Scenario {
		sc := mk(rows, cols, f, bench)
		sc.MaxYears = 8
		sc.Seed = 99
		sc.FaultModel = &FaultModel{IntermittentAt: 0.5, MaxProb: 0.05}
		sc.Recovery = &recov.Policy{CheckEvery: 2, FailStop: failStop}
		return sc
	}
	shaped := func(rows, cols int, f dse.AllocatorFactory, bench, pattern string) Scenario {
		sc := mk(rows, cols, f, bench)
		if pattern != "" {
			cells, err := fabric.PatternCells(pattern, sc.Geom)
			if err != nil {
				panic(err)
			}
			sc.InitialDead = cells
		}
		sc.Engine.ShapeTranslations = true
		return sc
	}
	return []Scenario{
		mk(2, 16, dse.BaselineFactory, "crc32"),
		mk(2, 16, dse.ProposedFactory, "crc32"),
		mk(2, 16, dse.ExploreFactory, "crc32"),
		mk(2, 16, dse.RemapFactory, "crc32"),
		mk(4, 8, dse.BaselineFactory, "bitcount"),
		mk(4, 8, dse.ProposedFactory, "bitcount"),
		mk(4, 8, dse.ExploreFactory, "bitcount"),
		clustered(2, 16, dse.RemapFactory, "crc32", "columns:0+8"),
		clustered(2, 16, dse.RemapFactory, "crc32", "survivor-row:1"),
		clustered(4, 8, dse.RemapFactory, "bitcount", "quadrant"),
		shaped(2, 16, dse.ExploreFactory, "crc32", "columns:0+8"),
		shaped(2, 16, dse.RemapFactory, "crc32", "columns:0+8"),
		shaped(4, 8, dse.ExploreFactory, "bitcount", ""),
		// Fault-enabled scenarios put the per-(epoch, cell) keyed fault
		// draws, the checker/retry path and the quarantine/probation state
		// machine under the same serial==parallel==-race contract.
		faulty(2, 16, dse.BaselineFactory, "crc32", false),
		faulty(2, 16, dse.ProposedFactory, "crc32", true),
		faulty(4, 8, dse.RemapFactory, "bitcount", false),
	}
}

// TestSerialParallelTimelinesByteIdentical extends the dse parallel==serial
// pattern to the lifetime engine: a scenario batch fanned over the worker
// pool must produce byte-identical JSON timelines to the serial path. CI
// runs this package under -race.
func TestSerialParallelTimelinesByteIdentical(t *testing.T) {
	serial, err := RunScenarios(batch(), 1)
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := RunScenarios(batch(), 4)
	if err != nil {
		t.Fatal(err)
	}

	sj, err := json.MarshalIndent(serial, "", " ")
	if err != nil {
		t.Fatal(err)
	}
	pj, err := json.MarshalIndent(parallel, "", " ")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(sj, pj) {
		t.Fatalf("serial and parallel timelines differ:\nserial:\n%s\nparallel:\n%s", sj, pj)
	}
}

// TestRepeatedRunsByteIdentical pins run-to-run determinism of a single
// scenario (fresh caches, same bytes).
func TestRepeatedRunsByteIdentical(t *testing.T) {
	sc := batch()[1]
	a, err := Run(sc)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(batch()[1])
	if err != nil {
		t.Fatal(err)
	}
	aj, _ := json.Marshal(a)
	bj, _ := json.Marshal(b)
	if !bytes.Equal(aj, bj) {
		t.Fatalf("repeated runs differ:\n%s\n%s", aj, bj)
	}
}
