package lifetime

import (
	"encoding/json"
	"testing"

	"agingcgra/internal/dse"
	"agingcgra/internal/fabric"
	"agingcgra/internal/memostore"
	"agingcgra/internal/trace"
)

// TestTraceObservationOnly pins the tentpole's first contract: attaching
// a sink never changes the Result — traced and untraced runs of the same
// scenario produce byte-identical JSON — and the traced run actually
// emits events.
func TestTraceObservationOnly(t *testing.T) {
	plain := sharedMemoScenario(3)
	plain.Fingerprint = ""
	plainRes, err := Run(plain)
	if err != nil {
		t.Fatal(err)
	}
	plainJSON, _ := json.Marshal(plainRes)

	rec := &trace.Recorder{}
	traced := sharedMemoScenario(3)
	traced.Fingerprint = ""
	traced.Trace = rec
	tracedRes, err := Run(traced)
	if err != nil {
		t.Fatal(err)
	}
	tracedJSON, _ := json.Marshal(tracedRes)

	if string(plainJSON) != string(tracedJSON) {
		t.Fatal("tracing changed the Result bytes")
	}
	if len(rec.Events) == 0 {
		t.Fatal("traced run emitted no events")
	}
	epochs, snapshots := 0, 0
	for _, ev := range rec.Events {
		switch ev.Kind {
		case trace.KindEpoch:
			epochs++
		case trace.KindSnapshot:
			snapshots++
		}
	}
	if want := len(tracedRes.Timeline); epochs != want || snapshots != want {
		t.Fatalf("want %d epoch and %d snapshot events, got %d and %d",
			want, want, epochs, snapshots)
	}
}

// TestTraceObservationOnlyWithRecovery repeats the observation-only pin
// on the fault/recovery path, where the monitor contributes quarantine
// and fault events.
func TestTraceObservationOnlyWithRecovery(t *testing.T) {
	plainRes, err := Run(faultScenario())
	if err != nil {
		t.Fatal(err)
	}
	plainJSON, _ := json.Marshal(plainRes)

	rec := &trace.Recorder{}
	traced := faultScenario()
	traced.Trace = rec
	tracedRes, err := Run(traced)
	if err != nil {
		t.Fatal(err)
	}
	tracedJSON, _ := json.Marshal(tracedRes)
	if string(plainJSON) != string(tracedJSON) {
		t.Fatal("tracing changed the Result bytes on the recovery path")
	}
	faults := 0
	for _, ev := range rec.Events {
		if ev.Kind == trace.KindFault {
			faults++
		}
	}
	if faults == 0 {
		t.Fatal("fault-injected traced run emitted no fault events")
	}
}

// eventsByEpoch groups a recorded stream by epoch index.
func eventsByEpoch(events []trace.Event) map[int][]trace.Event {
	m := make(map[int][]trace.Event)
	for _, ev := range events {
		m[ev.Epoch] = append(m[ev.Epoch], ev)
	}
	return m
}

// memoizedRecord extracts the events a replayed epoch must re-emit from
// its memo value — the during-epoch activity (fault, remap_rescue,
// gpp_fallback) plus the run-derived epoch-summary fields — normalized
// so two epochs replaying the same outcome compare equal. State-derived
// events (deaths, alive fraction, snapshots) legitimately differ between
// an epoch and its replay, because aging continues during replay.
func memoizedRecord(events []trace.Event) []trace.Event {
	var out []trace.Event
	for _, ev := range events {
		switch ev.Kind {
		case trace.KindFault, trace.KindRemapRescue, trace.KindGPPFallback:
			ev.Epoch, ev.Years = 0, 0
			out = append(out, ev)
		case trace.KindEpoch:
			ev.Epoch, ev.Years, ev.Replayed = 0, 0, false
			ev.AliveFraction, ev.Deaths = 0, 0
			out = append(out, ev)
		}
	}
	return out
}

// TestEpochMemoKeyCoversTraceReplay extends the TestEpochMemoKeyCovers*
// family to the event stream: a memo-replayed epoch must re-emit the
// events carried in the epoch memo value. The stale-translation
// dead-column scenario is the crispest case — the health map never
// changes after injection, so every epoch past the first replays, while
// the hardware's GPP fallbacks recur every epoch and must keep
// appearing in the stream.
func TestEpochMemoKeyCoversTraceReplay(t *testing.T) {
	rec := &trace.Recorder{}
	g := fabric.NewGeometry(2, 16)
	deadCol, err := fabric.PatternCells("column:0", g)
	if err != nil {
		t.Fatal(err)
	}
	sc := Scenario{
		Geom:        g,
		Factory:     dse.BaselineFactory,
		Mix:         []string{"crc32"},
		EpochYears:  0.5,
		MaxYears:    3,
		InitialDead: deadCol,
		Trace:       rec,
	}
	sc.Engine.StaleTranslations = true
	res, err := Run(sc)
	if err != nil {
		t.Fatal(err)
	}

	replayed := 0
	for _, r := range res.Timeline {
		if r.Replayed {
			replayed++
		}
	}
	if replayed == 0 {
		t.Fatal("dead-column stale-translation scenario should replay epochs")
	}

	byEpoch := eventsByEpoch(rec.Events)
	source, err1 := json.Marshal(memoizedRecord(byEpoch[0]))
	if err1 != nil {
		t.Fatal(err1)
	}
	sawFallback := false
	for _, ev := range byEpoch[0] {
		if ev.Kind == trace.KindGPPFallback && ev.Count > 0 {
			sawFallback = true
		}
	}
	if !sawFallback {
		t.Fatal("stale translations over a dead column should fall back to the GPP")
	}
	for i, r := range res.Timeline {
		if !r.Replayed {
			continue
		}
		got, _ := json.Marshal(memoizedRecord(byEpoch[i]))
		if string(got) != string(source) {
			t.Errorf("replayed epoch %d re-emitted different events:\n got %s\nwant %s",
				i, got, source)
		}
	}
}

// TestTraceReplayFaultPathConsistency runs the recovery path: every
// replayed epoch's memoized event record matches its source epoch's (the
// nearest earlier simulated epoch), and quarantine/reinstate transitions
// never land on replayed epochs — a transition bumps the monitor
// version, which forces the next epoch to re-simulate. Fault-active
// epochs always re-simulate in this scenario (executing cells accrue
// wear, which moves the fault field version), so the nonzero-count
// re-emission pin lives in TestEpochMemoKeyCoversTraceReplay's
// GPP-fallback stream instead.
func TestTraceReplayFaultPathConsistency(t *testing.T) {
	rec := &trace.Recorder{}
	sc := faultScenario()
	sc.Trace = rec
	res, err := Run(sc)
	if err != nil {
		t.Fatal(err)
	}

	byEpoch := eventsByEpoch(rec.Events)
	replayed := 0
	for i, r := range res.Timeline {
		if !r.Replayed {
			continue
		}
		replayed++
		// Find the source epoch: the nearest earlier non-replayed epoch.
		src := i - 1
		for src >= 0 && res.Timeline[src].Replayed {
			src--
		}
		if src < 0 {
			t.Fatalf("epoch %d replayed with no earlier simulated epoch", i)
		}
		got, _ := json.Marshal(memoizedRecord(byEpoch[i]))
		want, _ := json.Marshal(memoizedRecord(byEpoch[src]))
		if string(got) != string(want) {
			t.Errorf("replayed epoch %d diverged from source epoch %d:\n got %s\nwant %s",
				i, src, got, want)
		}
		for _, ev := range byEpoch[i] {
			switch ev.Kind {
			case trace.KindQuarantine, trace.KindReinstate:
				t.Errorf("epoch %d: monitor transition event on a replayed epoch", i)
			}
		}
	}
	if replayed == 0 {
		t.Fatal("fault scenario never replayed an epoch; the consistency check is vacuous")
	}
}

// TestTraceWarmColdStoreStreamsIdentical pins the shared-store half of
// the determinism contract: the event stream against a warm
// cross-request epoch store is byte-identical to the cold stream.
func TestTraceWarmColdStoreStreamsIdentical(t *testing.T) {
	store := memostore.New(0)

	coldRec := &trace.Recorder{}
	cold := sharedMemoScenario(3)
	cold.EpochMemo = store
	cold.Trace = coldRec
	if _, err := Run(cold); err != nil {
		t.Fatal(err)
	}
	coldJSON, _ := json.Marshal(coldRec.Events)

	warmRec := &trace.Recorder{}
	warm := sharedMemoScenario(3)
	warm.EpochMemo = store
	warm.Trace = warmRec
	if _, err := Run(warm); err != nil {
		t.Fatal(err)
	}
	warmJSON, _ := json.Marshal(warmRec.Events)

	if store.Stats().Hits == 0 {
		t.Fatal("warm run never hit the store; the comparison is vacuous")
	}
	if string(coldJSON) != string(warmJSON) {
		t.Fatal("warm-store event stream differs from cold stream")
	}
}

// TestTraceSerialParallelStreamsIdentical pins the batch half: per-
// scenario event streams from a parallel RunScenarios are byte-identical
// to the serial run's. Runs under -race in CI.
func TestTraceSerialParallelStreamsIdentical(t *testing.T) {
	build := func() ([]Scenario, []*trace.Recorder) {
		names := []string{"crc32", "sha", "bitcount"}
		scs := make([]Scenario, len(names))
		recs := make([]*trace.Recorder, len(names))
		for i, n := range names {
			recs[i] = &trace.Recorder{}
			scs[i] = Scenario{
				Geom:       fabric.NewGeometry(2, 8),
				Factory:    dse.BaselineFactory,
				Mix:        []string{n},
				EpochYears: 0.5,
				MaxYears:   2,
				Trace:      recs[i],
			}
		}
		return scs, recs
	}

	serialScs, serialRecs := build()
	if _, err := RunScenarios(serialScs, 1); err != nil {
		t.Fatal(err)
	}
	parallelScs, parallelRecs := build()
	if _, err := RunScenarios(parallelScs, 4); err != nil {
		t.Fatal(err)
	}
	for i := range serialRecs {
		s, _ := json.Marshal(serialRecs[i].Events)
		p, _ := json.Marshal(parallelRecs[i].Events)
		if string(s) != string(p) {
			t.Errorf("scenario %d: parallel event stream differs from serial", i)
		}
	}
}

// TestTraceSnapshotShape sanity-checks the heatmap snapshots: one per
// epoch, row-major series sized to the geometry, wear monotonically
// non-decreasing per cell, and the injected dead cells present in the
// dead index list from the first snapshot on.
func TestTraceSnapshotShape(t *testing.T) {
	rec := &trace.Recorder{}
	g := fabric.NewGeometry(2, 8)
	sc := Scenario{
		Geom:        g,
		Factory:     dse.BaselineFactory,
		Mix:         []string{"crc32"},
		EpochYears:  0.5,
		MaxYears:    2,
		InitialDead: []fabric.Cell{{Row: 1, Col: 3}},
		Trace:       rec,
	}
	if _, err := Run(sc); err != nil {
		t.Fatal(err)
	}
	var prevWear []float64
	snaps := 0
	for _, ev := range rec.Events {
		if ev.Kind != trace.KindSnapshot {
			continue
		}
		snaps++
		if ev.Rows != g.Rows || ev.Cols != g.Cols {
			t.Fatalf("snapshot geometry %dx%d, want %dx%d", ev.Rows, ev.Cols, g.Rows, g.Cols)
		}
		if len(ev.Duty) != g.NumFUs() || len(ev.WearYears) != g.NumFUs() {
			t.Fatalf("snapshot series sized %d/%d, want %d", len(ev.Duty), len(ev.WearYears), g.NumFUs())
		}
		deadIdx := 1*g.Cols + 3
		found := false
		for _, i := range ev.Dead {
			if i == deadIdx {
				found = true
			}
		}
		if !found {
			t.Fatalf("snapshot at %gy misses injected dead cell index %d: %v", ev.Years, deadIdx, ev.Dead)
		}
		for i, w := range ev.WearYears {
			if prevWear != nil && w < prevWear[i] {
				t.Fatalf("wear shrank at cell %d: %g -> %g", i, prevWear[i], w)
			}
		}
		prevWear = ev.WearYears
	}
	if snaps != 4 {
		t.Fatalf("want 4 snapshots, got %d", snaps)
	}
}
