package lifetime

import (
	"math"
	"testing"

	"agingcgra/internal/aging"
	"agingcgra/internal/dse"
	"agingcgra/internal/fabric"
)

// beScenario is the fast test scenario: the BE design with a single-kernel
// mix at tiny scale.
func beScenario(factory dse.AllocatorFactory, maxYears float64) Scenario {
	return Scenario{
		Geom:       fabric.NewGeometry(2, 16),
		Factory:    factory,
		Mix:        []string{"crc32"},
		EpochYears: 0.25,
		MaxYears:   maxYears,
	}
}

func TestRunBaselineTimeline(t *testing.T) {
	res, err := Run(beScenario(dse.BaselineFactory, 6))
	if err != nil {
		t.Fatal(err)
	}
	if got, want := len(res.Timeline), 24; got != want {
		t.Fatalf("timeline length %d, want %d", got, want)
	}
	// The baseline concentrates stress: some FU sits at duty ~1, so the
	// first death lands at the model's 3-year calibration point.
	if math.Abs(res.FirstDeathYears-3.0) > 0.11 {
		t.Errorf("baseline first death at %v years, want ~3 (worst duty ~1)", res.FirstDeathYears)
	}
	if res.TotalDeaths == 0 || res.AliveFraction >= 1 {
		t.Errorf("expected deaths over 6 years: %d dead, alive %v", res.TotalDeaths, res.AliveFraction)
	}
	first := res.Timeline[0]
	if first.WorstUtil <= 0.9 {
		t.Errorf("baseline worst duty %v, want ~1 (Fig. 1's concentrated wear)", first.WorstUtil)
	}
	if first.Speedup <= 1 {
		t.Errorf("healthy BE fabric should accelerate crc32, got speedup %v", first.Speedup)
	}
	// Monotone time, alive fraction never increasing, guardband consistent.
	years := 0.0
	alive := 1.0
	for i, rec := range res.Timeline {
		if rec.Years <= years {
			t.Fatalf("epoch %d: years %v not increasing", i, rec.Years)
		}
		years = rec.Years
		if rec.AliveFraction > alive {
			t.Fatalf("epoch %d: alive fraction grew %v -> %v", i, alive, rec.AliveFraction)
		}
		alive = rec.AliveFraction
		if want := 1 / (1 + rec.WorstDelay); math.Abs(rec.GuardbandFreq-want) > 1e-12 {
			t.Fatalf("epoch %d: guardband %v inconsistent with delay %v", i, rec.GuardbandFreq, rec.WorstDelay)
		}
	}
}

func TestEpochMemoizationOnlyAcrossUnchangedHealth(t *testing.T) {
	res, err := Run(beScenario(dse.BaselineFactory, 6))
	if err != nil {
		t.Fatal(err)
	}
	if res.Timeline[0].Replayed {
		t.Error("first epoch can never be a replay")
	}
	sawReplay := false
	for i := 1; i < len(res.Timeline); i++ {
		prev, cur := res.Timeline[i-1], res.Timeline[i]
		if cur.Replayed {
			sawReplay = true
			if len(prev.Deaths) > 0 {
				t.Errorf("epoch %d replayed although epoch %d killed cells", i, i-1)
			}
			if cur.Speedup != prev.Speedup || cur.WorstUtil != prev.WorstUtil {
				t.Errorf("epoch %d: replayed run differs from predecessor", i)
			}
		} else if len(prev.Deaths) == 0 {
			t.Errorf("epoch %d re-simulated although health did not change", i)
		}
	}
	if !sawReplay {
		t.Error("expected memoized epochs between failure events")
	}
}

func TestRotationOutlivesBaseline(t *testing.T) {
	base, err := Run(beScenario(dse.BaselineFactory, 14))
	if err != nil {
		t.Fatal(err)
	}
	prop, err := Run(beScenario(dse.ProposedFactory, 14))
	if err != nil {
		t.Fatal(err)
	}
	if base.FirstDeathYears == 0 || prop.FirstDeathYears == 0 {
		t.Fatalf("expected deaths in both scenarios: base %v, prop %v",
			base.FirstDeathYears, prop.FirstDeathYears)
	}
	if prop.FirstDeathYears <= base.FirstDeathYears {
		t.Fatalf("utilization-aware first death %v should be after baseline %v",
			prop.FirstDeathYears, base.FirstDeathYears)
	}
}

func TestHotterConditionsShortenLifetime(t *testing.T) {
	nominal := beScenario(dse.BaselineFactory, 6)
	hot := beScenario(dse.BaselineFactory, 6)
	hot.Cond = aging.DefaultConditions()
	hot.Cond.TemperatureK += 30

	rn, err := Run(nominal)
	if err != nil {
		t.Fatal(err)
	}
	rh, err := Run(hot)
	if err != nil {
		t.Fatal(err)
	}
	if rn.FirstDeathYears == 0 || rh.FirstDeathYears == 0 {
		t.Fatal("expected deaths in both runs")
	}
	if rh.FirstDeathYears >= rn.FirstDeathYears {
		t.Errorf("hot part first death %v, want earlier than nominal %v",
			rh.FirstDeathYears, rn.FirstDeathYears)
	}
	af := rn.FirstDeathYears / rh.FirstDeathYears
	m := aging.NewModel()
	if want := m.AccelerationFactor(hot.Cond); math.Abs(af-want)/want > 0.15 {
		t.Errorf("lifetime ratio %v, want ~acceleration factor %v", af, want)
	}
}

func TestProfileSwitchesConditions(t *testing.T) {
	// Two years cool, then hot: the first death must land between the
	// all-cool and all-hot extremes.
	hot := aging.DefaultConditions()
	hot.TemperatureK += 30
	sc := beScenario(dse.BaselineFactory, 6)
	sc.Profile = []Phase{
		{UntilYears: 2, Cond: aging.DefaultConditions()},
		{UntilYears: math.Inf(1), Cond: hot},
	}
	mixed, err := Run(sc)
	if err != nil {
		t.Fatal(err)
	}
	allCool, err := Run(beScenario(dse.BaselineFactory, 6))
	if err != nil {
		t.Fatal(err)
	}
	scHot := beScenario(dse.BaselineFactory, 6)
	scHot.Cond = hot
	allHot, err := Run(scHot)
	if err != nil {
		t.Fatal(err)
	}
	if !(mixed.FirstDeathYears > allHot.FirstDeathYears &&
		mixed.FirstDeathYears < allCool.FirstDeathYears) {
		t.Errorf("mixed-profile first death %v, want within (%v, %v)",
			mixed.FirstDeathYears, allHot.FirstDeathYears, allCool.FirstDeathYears)
	}
}

func TestScenarioValidation(t *testing.T) {
	bad := beScenario(nil, 6)
	bad.Mix = []string{"no-such-kernel"}
	if _, err := Run(bad); err == nil {
		t.Error("unknown benchmark accepted")
	}
	bad = beScenario(nil, 6)
	bad.EpochYears = -1
	if _, err := Run(bad); err == nil {
		t.Error("negative epoch accepted")
	}
	bad = beScenario(nil, 0.1)
	bad.EpochYears = 0.5
	bad.MaxYears = 0.1
	if _, err := Run(bad); err == nil {
		t.Error("horizon shorter than one epoch accepted")
	}
}

func TestDeathAgesConsistent(t *testing.T) {
	res, err := Run(beScenario(dse.BaselineFactory, 8))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.DeathAges) != res.TotalDeaths {
		t.Fatalf("%d death ages for %d deaths", len(res.DeathAges), res.TotalDeaths)
	}
	if res.TotalDeaths == 0 {
		t.Fatal("expected deaths within 8 years on the baseline")
	}
	if res.DeathAges[0] != res.FirstDeathYears {
		t.Errorf("DeathAges[0] = %v, FirstDeathYears = %v", res.DeathAges[0], res.FirstDeathYears)
	}
	for i := 1; i < len(res.DeathAges); i++ {
		if res.DeathAges[i] < res.DeathAges[i-1] {
			t.Fatalf("death ages not ascending at %d: %v", i, res.DeathAges)
		}
	}
	if res.NthDeathYears(1) != res.FirstDeathYears {
		t.Error("NthDeathYears(1) != FirstDeathYears")
	}
	if res.NthDeathYears(0) != 0 || res.NthDeathYears(len(res.DeathAges)+1) != 0 {
		t.Error("out-of-range NthDeathYears should read 0")
	}
}

// TestExplorerOutlivesSkipScanAfterFailures is the package-level form of the
// headline claim: with wear feedback the explorer's time to the second FU
// death is no earlier than the snake rotation's, whose skip-scan keeps
// re-concentrating post-failure wear on whichever survivors come next in
// the pattern.
func TestExplorerOutlivesSkipScanAfterFailures(t *testing.T) {
	snake, err := Run(beScenario(dse.ProposedFactory, 40))
	if err != nil {
		t.Fatal(err)
	}
	explored, err := Run(beScenario(dse.ExploreFactory, 40))
	if err != nil {
		t.Fatal(err)
	}
	if snake.NthDeathYears(2) == 0 || explored.NthDeathYears(2) == 0 {
		t.Fatalf("expected at least two deaths each: snake %v, explore %v",
			snake.DeathAges, explored.DeathAges)
	}
	if explored.NthDeathYears(2) < snake.NthDeathYears(2) {
		t.Errorf("explorer second death %v years, earlier than snake %v",
			explored.NthDeathYears(2), snake.NthDeathYears(2))
	}
}

// clusteredScenario injects a named failure pattern before the first epoch
// under stale translations: configurations are mapped for the pristine
// fabric, so the cluster decides who stays on the CGRA.
func clusteredScenario(factory dse.AllocatorFactory, pattern string, maxYears float64) Scenario {
	sc := beScenario(factory, maxYears)
	cells, err := fabric.PatternCells(pattern, sc.Geom)
	if err != nil {
		panic(err)
	}
	sc.InitialDead = cells
	sc.Engine.StaleTranslations = true
	return sc
}

// TestClusteredFailureRemapStaysOnFabric pins the lifetime-level headline
// of the shape-adaptive remapper: with everything dead but one row and
// stale translations, the explorer (translation-only) offloads nothing —
// its first epoch runs entirely on the GPP — while the remap allocator
// keeps the kernel on-fabric with a real speedup. Injected cells count
// toward the alive fraction but never toward the aging death ages.
func TestClusteredFailureRemapStaysOnFabric(t *testing.T) {
	exp, err := Run(clusteredScenario(dse.ExploreFactory, "survivor-row:1", 3))
	if err != nil {
		t.Fatal(err)
	}
	rmp, err := Run(clusteredScenario(dse.RemapFactory, "survivor-row:1", 3))
	if err != nil {
		t.Fatal(err)
	}

	if got := exp.Timeline[0].Offloads; got != 0 {
		t.Errorf("explorer offloaded %d times through a one-row fabric with stale translations; want 0", got)
	}
	if got := rmp.Timeline[0].Offloads; got == 0 {
		t.Error("remap allocator fell back to the GPP on the survivor row")
	}
	if exp.Timeline[0].Speedup > 1+1e-9 {
		t.Errorf("explorer speedup %v on a GPP-only epoch; want no acceleration", exp.Timeline[0].Speedup)
	}
	if rmp.InitialSpeedup <= 1 {
		t.Errorf("remap speedup %v under the clustered failure; want a real acceleration", rmp.InitialSpeedup)
	}
	if rmp.InitialSpeedup <= exp.InitialSpeedup {
		t.Errorf("remap speedup %v not above explorer's %v under the clustered failure",
			rmp.InitialSpeedup, exp.InitialSpeedup)
	}

	for _, r := range []*Result{exp, rmp} {
		if af := r.Timeline[0].AliveFraction; af > 0.5+1e-9 {
			t.Errorf("%s: alive fraction %v does not reflect the injected cluster", r.Name, af)
		}
		for _, age := range r.DeathAges {
			if age <= 0 {
				t.Errorf("%s: injected failure leaked into the death ages: %v", r.Name, r.DeathAges)
			}
		}
	}
}

// TestEpochMemoKeyCoversRemapState pins the memo-key extension for the
// shape-adaptive allocator: remap is wear-adaptive (its anchor choice and
// shape cache re-rank on every wear advance), so epochs must re-simulate
// while wear accrues; a wear-adaptive scenario whose fabric sees no duty
// at all — the explorer stuck on the GPP — accrues no wear and must replay
// from memo.
func TestEpochMemoKeyCoversRemapState(t *testing.T) {
	exp, err := Run(clusteredScenario(dse.ExploreFactory, "survivor-row:1", 2))
	if err != nil {
		t.Fatal(err)
	}
	rmp, err := Run(clusteredScenario(dse.RemapFactory, "survivor-row:1", 2))
	if err != nil {
		t.Fatal(err)
	}
	// GPP-only epochs leave wear untouched: the memo must kick in.
	if !exp.Timeline[1].Replayed {
		t.Error("explorer epoch 1 re-simulated although neither health nor wear changed")
	}
	// The remapped kernel keeps stressing the survivor row, so wear moves
	// every epoch and the memo must not replay stale shape decisions.
	if rmp.Timeline[1].Replayed {
		t.Error("remap epoch 1 replayed although wear (and the shape-cache ranking) advanced")
	}
}

// TestEpochMemoKeyCoversShapeTranslationState pins the memo-key extension
// for translation-time shape search: the engine's ladder search observes
// the wear map (the tie-break) and the translation cache keys on the
// (health, wear) versions, so a scenario with ShapeTranslations is
// wear-adaptive even under a wear-blind allocator — while wear accrues,
// epochs must re-simulate, never replay a stale shape decision from memo.
func TestEpochMemoKeyCoversShapeTranslationState(t *testing.T) {
	sc := beScenario(dse.BaselineFactory, 2)
	sc.Engine.ShapeTranslations = true
	res, err := Run(sc)
	if err != nil {
		t.Fatal(err)
	}
	if res.Timeline[0].Offloads == 0 {
		t.Fatal("shape-translating baseline scenario never offloaded; the memo property is vacuous")
	}
	if res.Timeline[1].Replayed {
		t.Error("shape-translation epoch 1 replayed although wear (and the ladder tie-break's input) advanced")
	}

	// The same allocator without shape translations is wear-blind: epoch 1
	// must replay from memo, proving the re-simulation above really keys on
	// the engine's shape-search state and not on something else.
	plain, err := Run(beScenario(dse.BaselineFactory, 2))
	if err != nil {
		t.Fatal(err)
	}
	if !plain.Timeline[1].Replayed {
		t.Error("plain baseline epoch 1 re-simulated; health and wear key unchanged")
	}
}
