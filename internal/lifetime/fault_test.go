package lifetime

import (
	"strings"
	"testing"

	"agingcgra/internal/alloc"
	"agingcgra/internal/dse"
	"agingcgra/internal/fabric"
	recov "agingcgra/internal/recover"
)

// faultScenario is the shared fault-enabled config: an accelerated operating
// point so cells cross the intermittent threshold (and die) well inside the
// horizon.
func faultScenario() Scenario {
	return Scenario{
		Geom:       fabric.NewGeometry(2, 16),
		Factory:    dse.BaselineFactory,
		Mix:        []string{"crc32"},
		EpochYears: 0.5,
		MaxYears:   8,
		Seed:       42,
		FaultModel: &FaultModel{IntermittentAt: 0.4, MaxProb: 0.05},
		Recovery:   &recov.Policy{CheckEvery: 1},
	}
}

// TestEpochMemoKeyCoversFaultState pins the memo-key extension of PR 6: the
// epoch memo must re-simulate while the fault field or the monitor's
// observed state is moving and replay once they go quiescent. The fail-stop
// policy gives the crispest phases: (1) before any cell crosses the
// intermittent threshold the fault field is all-zero and constant, so the
// early epochs replay; (2) once probabilities ramp, the fault version moves
// every epoch and faults eventually fire, so those epochs re-simulate; (3)
// the first detection latches distrust, every offload routes to the GPP,
// wear freezes, all versions stop, and the tail replays.
func TestEpochMemoKeyCoversFaultState(t *testing.T) {
	sc := faultScenario()
	sc.Recovery = &recov.Policy{CheckEvery: 1, FailStop: true}
	res, err := Run(sc)
	if err != nil {
		t.Fatal(err)
	}
	var firstDetect, lastDetect = -1, -1
	for i, rec := range res.Timeline {
		if rec.Detected > 0 {
			if firstDetect < 0 {
				firstDetect = i
			}
			lastDetect = i
		}
		// Any epoch with detections changed monitor state during the
		// previous simulate, so it cannot itself be a replay... unless it
		// replayed a memoized epoch's stats. Under fail-stop the only
		// detection is the latching one, which moves the version, so:
		if rec.Detected > 0 && rec.Replayed {
			t.Errorf("epoch %d: detections recorded on a replayed epoch under fail-stop", i)
		}
	}
	if firstDetect < 0 {
		t.Fatal("scenario never detected a fault; accelerate the fault model")
	}
	replayedBefore := false
	for _, rec := range res.Timeline[:firstDetect] {
		if rec.Replayed {
			replayedBefore = true
		}
	}
	if !replayedBefore {
		t.Error("pre-fault epochs (all-zero fault field) should replay")
	}
	// Distrust stasis: after the latch (plus one re-simulated epoch that
	// observes the moved version), the tail must replay.
	tail := res.Timeline[lastDetect+2:]
	if len(tail) == 0 {
		t.Fatal("horizon too short: no epochs after distrust to check stasis")
	}
	for i, rec := range tail {
		if !rec.Replayed {
			t.Errorf("post-distrust epoch %d should replay (all-GPP stasis)", lastDetect+2+i)
		}
		if rec.Offloads != 0 {
			t.Errorf("post-distrust epoch %d offloaded %d times; distrusted fabric must not", lastDetect+2+i, rec.Offloads)
		}
	}
	if res.Recovery == nil {
		t.Fatal("recovery-enabled run must carry a RecoveryReport")
	}
	if res.Recovery.Stats.SilentEscapes != 0 {
		t.Errorf("CheckEvery=1 committed %d silent escapes", res.Recovery.Stats.SilentEscapes)
	}
}

// TestFaultMemoReSimulatesWhileVersionsMove is the quarantine-mode
// counterpart: while faults fire and quarantine/probation churn the observed
// map, epochs re-simulate; detections never land on replayed epochs.
func TestFaultMemoReSimulatesWhileVersionsMove(t *testing.T) {
	res, err := Run(faultScenario())
	if err != nil {
		t.Fatal(err)
	}
	simulated, detections := 0, uint64(0)
	for i, rec := range res.Timeline {
		if !rec.Replayed {
			simulated++
		}
		detections += rec.Detected
		if rec.Detected > 0 && rec.Replayed {
			// A replayed epoch re-adds memoized stat deltas, but the memo
			// only replays when the start key matched — and a detection in
			// the memoized epoch moved the monitor version, so its key can
			// never recur. Detections on a replay indicate a key leak.
			t.Errorf("epoch %d: detections on a replayed epoch", i)
		}
	}
	if detections == 0 {
		t.Fatal("fault-enabled scenario never detected a fault")
	}
	if simulated == len(res.Timeline) {
		t.Error("no epoch replayed; memo never engaged")
	}
	if res.Recovery.Stats.SilentEscapes != 0 {
		t.Errorf("CheckEvery=1 committed %d silent escapes", res.Recovery.Stats.SilentEscapes)
	}
}

// TestFaultModelRequiresRecovery pins validation: injecting faults with no
// detection layer would corrupt results invisibly, so the combination is
// rejected.
func TestFaultModelRequiresRecovery(t *testing.T) {
	sc := faultScenario()
	sc.Recovery = nil
	if _, err := Run(sc); err == nil {
		t.Fatal("FaultModel without Recovery should be rejected")
	}
	bad := faultScenario()
	bad.FaultModel = &FaultModel{IntermittentAt: 1.5}
	if _, err := Run(bad); err == nil {
		t.Fatal("IntermittentAt outside [0,1) should be rejected")
	}
}

// TestPanickingScenarioFailsCleanly rides the dse.ForEach panic recovery:
// a factory that panics must surface as the scenario's error, not crash the
// batch (or the process) — on the serial and the parallel path alike.
func TestPanickingScenarioFailsCleanly(t *testing.T) {
	scs := []Scenario{
		{Geom: fabric.NewGeometry(2, 16), Mix: []string{"crc32"}, EpochYears: 0.5, MaxYears: 1},
		{
			Geom:       fabric.NewGeometry(2, 16),
			Factory:    func(g fabric.Geometry) alloc.Allocator { panic("allocator factory exploded") },
			Mix:        []string{"crc32"},
			EpochYears: 0.5, MaxYears: 1,
		},
	}
	for _, workers := range []int{1, 4} {
		_, err := RunScenarios(scs, workers)
		if err == nil {
			t.Fatalf("workers=%d: panicking scenario should fail its batch", workers)
		}
		if !strings.Contains(err.Error(), "panicked") {
			t.Errorf("workers=%d: error should identify the panic, got: %v", workers, err)
		}
	}
}
