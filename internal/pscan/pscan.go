// Package pscan is the bounded-worker scan primitive shared by the
// allocation stack's searches: the explorer's pivot scan, the remapper's
// (shape × anchor) rescue scan and the DBT's translation-time shape
// ladder. It partitions an index space into contiguous stripes and runs
// one worker per stripe.
//
// Determinism is the caller's contract, and the striping is designed so it
// is easy to honour: stripe boundaries are a pure function of (n, workers),
// every index is evaluated exactly once, and the caller reduces per-stripe
// results in stripe order after Run returns. A caller whose per-index
// evaluation is independent of evaluation order (scores computed from
// shared read-only state, counters summed per stripe) therefore produces
// byte-identical results and counters for every worker count, including
// the serial path — the property the allocation searches' serial==parallel
// pins rely on.
package pscan

import "sync"

// Count returns the number of stripes Run will use for n items over the
// requested worker bound: callers size their per-stripe result slices with
// it before fanning out.
func Count(n, workers int) int {
	if n <= 0 {
		return 0
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		return 1
	}
	return workers
}

// Run partitions [0, n) into Count(n, workers) contiguous stripes and
// calls fn(stripe, lo, hi) once per stripe — synchronously on the caller's
// goroutine when a single stripe results (the serial fast path pays no
// goroutine or channel overhead), concurrently on one goroutine per stripe
// otherwise. Run returns once every stripe completed.
func Run(n, workers int, fn func(stripe, lo, hi int)) {
	stripes := Count(n, workers)
	if stripes == 0 {
		return
	}
	if stripes == 1 {
		fn(0, 0, n)
		return
	}
	var wg sync.WaitGroup
	base, rem := n/stripes, n%stripes
	lo := 0
	for s := 0; s < stripes; s++ {
		size := base
		if s < rem {
			size++
		}
		hi := lo + size
		wg.Add(1)
		go func(s, lo, hi int) {
			defer wg.Done()
			fn(s, lo, hi)
		}(s, lo, hi)
		lo = hi
	}
	wg.Wait()
}
