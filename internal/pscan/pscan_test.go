package pscan

import (
	"sync"
	"testing"
)

func TestCount(t *testing.T) {
	cases := []struct{ n, workers, want int }{
		{0, 4, 0},
		{-3, 4, 0},
		{10, 0, 1},
		{10, -1, 1},
		{10, 1, 1},
		{10, 4, 4},
		{3, 8, 3}, // never more stripes than items
		{1, 8, 1}, // single item is the serial path
		{10, 10, 10},
	}
	for _, c := range cases {
		if got := Count(c.n, c.workers); got != c.want {
			t.Errorf("Count(%d, %d) = %d, want %d", c.n, c.workers, got, c.want)
		}
	}
}

// TestRunCoversEveryIndexOnce is the determinism contract's foundation:
// for any (n, workers), the stripes are contiguous, ordered by stripe
// index, and partition [0, n) exactly — every index evaluated once.
func TestRunCoversEveryIndexOnce(t *testing.T) {
	for n := 0; n <= 33; n++ {
		for workers := -1; workers <= 9; workers++ {
			var mu sync.Mutex
			type stripe struct{ lo, hi int }
			seen := make(map[int]stripe)
			hits := make([]int, n)
			Run(n, workers, func(s, lo, hi int) {
				mu.Lock()
				defer mu.Unlock()
				seen[s] = stripe{lo, hi}
				for i := lo; i < hi; i++ {
					hits[i]++
				}
			})
			if want := Count(n, workers); len(seen) != want {
				t.Fatalf("n=%d workers=%d: %d stripes ran, Count says %d", n, workers, len(seen), want)
			}
			for i, h := range hits {
				if h != 1 {
					t.Fatalf("n=%d workers=%d: index %d evaluated %d times", n, workers, i, h)
				}
			}
			// Stripes must be contiguous in stripe order so a caller's
			// in-order reduction visits indices ascending.
			lo := 0
			for s := 0; s < len(seen); s++ {
				st, ok := seen[s]
				if !ok {
					t.Fatalf("n=%d workers=%d: stripe %d never ran", n, workers, s)
				}
				if st.lo != lo || st.hi < st.lo {
					t.Fatalf("n=%d workers=%d: stripe %d is [%d,%d), expected lo %d", n, workers, s, st.lo, st.hi, lo)
				}
				lo = st.hi
			}
			if n > 0 && lo != n {
				t.Fatalf("n=%d workers=%d: stripes end at %d", n, workers, lo)
			}
		}
	}
}

// TestRunSerialPathStaysOnCallerGoroutine pins the single-stripe fast
// path: with one stripe the callback runs synchronously, so callers may
// touch caller-local state without synchronization.
func TestRunSerialPathStaysOnCallerGoroutine(t *testing.T) {
	calls := 0 // unsynchronized on purpose; -race proves the contract
	Run(100, 1, func(s, lo, hi int) {
		if s != 0 || lo != 0 || hi != 100 {
			t.Fatalf("serial stripe = (%d, %d, %d)", s, lo, hi)
		}
		calls++
	})
	if calls != 1 {
		t.Fatalf("serial path ran %d times", calls)
	}
}
