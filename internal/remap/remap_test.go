package remap

import (
	"reflect"
	"testing"

	"agingcgra/internal/alloc"
	"agingcgra/internal/core"
	"agingcgra/internal/dbt"
	"agingcgra/internal/fabric"
	"agingcgra/internal/isa"
	"agingcgra/internal/mapper"
	"agingcgra/internal/prog"
	"agingcgra/internal/searchcost"
)

func alu(pc uint32, rd, rs1, rs2 isa.Reg) mapper.TraceEntry {
	return mapper.TraceEntry{PC: pc, Inst: isa.Inst{Op: isa.ADD, Rd: rd, Rs1: rs1, Rs2: rs2}}
}

func lw(pc uint32, rd, rs1 isa.Reg) mapper.TraceEntry {
	return mapper.TraceEntry{PC: pc, Inst: isa.Inst{Op: isa.LW, Rd: rd, Rs1: rs1}}
}

// independentALUs builds n data-independent single-column ops: the greedy
// mapper packs them row-first, column by column, filling the fabric.
func independentALUs(n int) []mapper.TraceEntry {
	out := make([]mapper.TraceEntry, n)
	for i := range out {
		out[i] = alu(0x1000+uint32(4*i), isa.T0, isa.A0, isa.A1)
	}
	return out
}

// dependentALUs builds an n-op dependence chain: strictly increasing
// columns, so the chain length bounds the shapes it fits.
func dependentALUs(n int) []mapper.TraceEntry {
	out := make([]mapper.TraceEntry, n)
	prev := isa.A0
	for i := range out {
		rd := isa.T0
		if i%2 == 1 {
			rd = isa.T1
		}
		out[i] = alu(0x1000+uint32(4*i), rd, prev, isa.A1)
		prev = rd
	}
	return out
}

// loads builds n independent loads: width-4 ops that need four consecutive
// live cells in one row wherever they go.
func loads(n int) []mapper.TraceEntry {
	out := make([]mapper.TraceEntry, n)
	for i := range out {
		out[i] = lw(0x1000+uint32(4*i), isa.T0, isa.A0)
	}
	return out
}

// mapHealthy places a trace on the pristine fabric, as the DBT would have
// translated it before any failure.
func mapHealthy(t *testing.T, trace []mapper.TraceEntry, g fabric.Geometry) *fabric.Config {
	t.Helper()
	cfg, n := mapper.Map(trace, mapper.Options{Geom: g, Lat: fabric.DefaultLatencies()})
	if cfg == nil || n != len(trace) {
		t.Fatalf("healthy mapping consumed %d/%d ops", n, len(trace))
	}
	return cfg
}

// physCellsLive checks every cell cfg occupies under off against the health
// map.
func physCellsLive(h *fabric.Health, cfg *fabric.Config, off fabric.Offset, g fabric.Geometry) bool {
	for _, c := range cfg.Cells() {
		if h.Dead(off.Apply(c, g)) {
			return false
		}
	}
	return true
}

// TestClusteredFailures is the table-driven pin of the tentpole behaviour:
// for each clustered-failure pattern, a configuration translated on the
// healthy fabric has no live pivot (the skip-scan path must fall back to
// the GPP), while the shape search finds a live placement holding the
// longest feasible prefix — and reports failure only when no placement of
// any shape exists.
func TestClusteredFailures(t *testing.T) {
	g := fabric.NewGeometry(2, 16)
	cases := []struct {
		name  string
		trace []mapper.TraceEntry
		dead  []fabric.Cell
		// wantOps is the longest prefix any placement can hold (0 = no
		// placement exists and RemapConfig must fail).
		wantOps int
	}{
		// 32 independent ops fill every cell; one dead column blocks every
		// pivot, but 30 live cells still hold a 30-op prefix.
		{"dead-column/full-fabric", independentALUs(32), fabric.DeadColumnCells(g, 5), 30},
		// The dead quadrant (row 0, columns 0-7) leaves 24 live cells.
		{"dead-quadrant/full-fabric", independentALUs(32), fabric.DeadQuadrantCells(g), 24},
		// Checkerboard: half the cells survive, none adjacent; single-column
		// ops flow around, 16 fit.
		{"checkerboard/alu", independentALUs(32), fabric.CheckerboardCells(g, 0), 16},
		// A 16-op dependence chain needs 16 strictly increasing columns; a
		// dead column caps any placement at 15 ops.
		{"dead-column/chain", dependentALUs(16), fabric.DeadColumnCells(g, 7), 15},
		// Everything dead but row 1: the two-row healthy footprint never
		// fits, the survivor row holds all eight ops.
		{"survivor-row/two-row-config", independentALUs(8), fabric.SurvivorRowCells(g, 1), 8},
		// Width-4 loads need four consecutive live cells in a row; the
		// checkerboard has none, so no placement of any shape exists.
		{"checkerboard/loads", loads(4), fabric.CheckerboardCells(g, 0), 0},
		// Nothing survives at all.
		{"fully-dead", independentALUs(8), fabric.CheckerboardCells(g, 0), 0},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := mapHealthy(t, tc.trace, g)
			dead := tc.dead
			if tc.name == "fully-dead" {
				dead = append(fabric.CheckerboardCells(g, 0), fabric.CheckerboardCells(g, 1)...)
			}
			h, err := fabric.NewHealthWithDead(g, dead)
			if err != nil {
				t.Fatal(err)
			}

			// The translation-only path: the snake skip-scan must find no
			// live pivot for the healthy-shaped rectangle.
			ctrl, err := core.NewController(g, alloc.NewUtilizationAware(g))
			if err != nil {
				t.Fatal(err)
			}
			ctrl.SetHealth(h)
			if _, ok := ctrl.Place(cfg); ok {
				t.Fatalf("skip-scan placed the healthy-shaped config despite the %s cluster", tc.name)
			}

			m := New(g, WithMinOps(1))
			m.SetHealth(h)
			m.SetWear(fabric.NewWear(g))
			mapped, off, ok := m.RemapConfig(cfg, fabric.Offset{}, false)
			if tc.wantOps == 0 {
				if ok {
					t.Fatalf("RemapConfig found a placement where none exists: %d ops at %v", len(mapped.Ops), off)
				}
				return
			}
			if !ok {
				t.Fatalf("RemapConfig found no placement; want a %d-op prefix", tc.wantOps)
			}
			if len(mapped.Ops) != tc.wantOps {
				t.Errorf("remapped prefix holds %d ops, want %d", len(mapped.Ops), tc.wantOps)
			}
			if !physCellsLive(h, mapped, off, g) {
				t.Errorf("remapped placement drives a dead FU")
			}
			if err := mapped.Validate(); err != nil {
				t.Errorf("remapped config invalid: %v", err)
			}
			// The prefix replays the original sequence: same PCs, same
			// expected directions, op for op.
			opcs, odirs := cfg.ReplayTables()
			mpcs, mdirs := mapped.ReplayTables()
			if !reflect.DeepEqual(opcs[:len(mpcs)], mpcs) || !reflect.DeepEqual(odirs[:len(mdirs)], mdirs) {
				t.Errorf("remapped replay tables diverge from the original prefix")
			}
		})
	}
}

// TestReshapeArchitecturalEquivalence is the property test behind the
// equivalence layer: for every kernel in the suite, every configuration the
// DBT translates, reshaped to every candidate shape on a healthy fabric,
// replays the identical instruction sequence — byte-identical replay
// tables and per-class op counts — whenever the shape holds the full
// sequence (e.g. 2×16 vs 1×16 vs 2×8). Shapes only redistribute ops in
// space; the architectural contract never changes.
func TestReshapeArchitecturalEquivalence(t *testing.T) {
	g := fabric.NewGeometry(2, 16)
	for _, name := range prog.Names() {
		t.Run(name, func(t *testing.T) {
			b, ok := prog.ByName(name)
			if !ok {
				t.Fatalf("unknown benchmark %q", name)
			}
			c, err := b.NewCore(prog.Tiny)
			if err != nil {
				t.Fatal(err)
			}
			eng, err := dbt.NewEngine(dbt.Options{Geom: g})
			if err != nil {
				t.Fatal(err)
			}
			if _, err := eng.Run(c, b.MaxInstructions); err != nil {
				t.Fatal(err)
			}
			cfgs := eng.Cache().Configs()
			if len(cfgs) == 0 {
				t.Skipf("%s translates no configuration at tiny scale", name)
			}
			full := 0
			for _, cfg := range cfgs {
				for _, shape := range CandidateShapes(g) {
					mc, n := Reshape(cfg, shape, fabric.Offset{}, g, nil, fabric.DefaultLatencies())
					if mc == nil || n < len(cfg.Ops) {
						continue // the narrower shape cannot hold the sequence
					}
					full++
					opcs, odirs := cfg.ReplayTables()
					mpcs, mdirs := mc.ReplayTables()
					if !reflect.DeepEqual(opcs, mpcs) || !reflect.DeepEqual(odirs, mdirs) {
						t.Fatalf("cfg %#x reshaped to %v: replay tables diverge", cfg.StartPC, shape)
					}
					for k := 0; k <= len(cfg.Ops); k++ {
						if cfg.ClassCountsFirst(k) != mc.ClassCountsFirst(k) {
							t.Fatalf("cfg %#x reshaped to %v: class counts diverge at prefix %d", cfg.StartPC, shape, k)
						}
					}
					if err := mc.Validate(); err != nil {
						t.Fatalf("cfg %#x reshaped to %v: %v", cfg.StartPC, shape, err)
					}
					for _, cell := range mc.Cells() {
						if cell.Row >= shape.Rows || cell.Col >= shape.Cols {
							t.Fatalf("cfg %#x reshaped to %v: cell %v outside shape", cfg.StartPC, shape, cell)
						}
					}
				}
			}
			if full == 0 {
				t.Errorf("%s: no (config, shape) pair held the full sequence — property vacuous", name)
			}
		})
	}
}

// TestTraceRoundTrip pins that a configuration re-mapped at its own shape
// on a healthy fabric reproduces the original placement exactly: the
// reconstructed trace carries everything the mapper saw.
func TestTraceRoundTrip(t *testing.T) {
	g := fabric.NewGeometry(2, 16)
	cfg := mapHealthy(t, dependentALUs(12), g)
	mc, n := Reshape(cfg, g, fabric.Offset{}, g, nil, fabric.DefaultLatencies())
	if mc == nil || n != len(cfg.Ops) {
		t.Fatalf("round-trip consumed %d/%d", n, len(cfg.Ops))
	}
	if !reflect.DeepEqual(cfg.Ops, mc.Ops) {
		t.Errorf("round-trip placement diverges:\n%+v\n%+v", cfg.Ops, mc.Ops)
	}
}

// TestRemapCacheKeying pins the shape-cache invalidation contract: results
// are reused while the (health, wear) versions stand still and re-searched
// as soon as either moves — a death changes which placements exist, a wear
// advance changes which one the scoring prefers.
func TestRemapCacheKeying(t *testing.T) {
	g := fabric.NewGeometry(2, 16)
	cfg := mapHealthy(t, independentALUs(32), g)
	h, err := fabric.NewHealthWithDead(g, fabric.DeadColumnCells(g, 5))
	if err != nil {
		t.Fatal(err)
	}
	w := fabric.NewWear(g)
	m := New(g)
	m.SetHealth(h)
	m.SetWear(w)

	if _, _, ok := m.RemapConfig(cfg, fabric.Offset{}, false); !ok {
		t.Fatal("remap failed on a dead column")
	}
	a1, _, _ := m.RemapConfig(cfg, fabric.Offset{}, false)
	if st := m.RemapStats(); st.Hits != 1 || st.Misses != 1 {
		t.Fatalf("stats after repeat = %+v, want 1 hit / 1 miss", st)
	}

	// A wear advance must re-rank (possibly re-choosing the anchor).
	w.Add(fabric.Cell{Row: 0, Col: 0}, 1.5)
	m.RemapConfig(cfg, fabric.Offset{}, false)
	if st := m.RemapStats(); st.Misses != 2 || st.Flushes != 1 {
		t.Fatalf("stats after wear advance = %+v, want a flush and a re-search", st)
	}

	// A further death must re-search against the new health.
	h.Kill(fabric.Cell{Row: 0, Col: 9})
	a2, _, ok := m.RemapConfig(cfg, fabric.Offset{}, false)
	if !ok {
		t.Fatal("remap failed after one more death")
	}
	if st := m.RemapStats(); st.Misses != 3 || st.Flushes != 2 {
		t.Fatalf("stats after kill = %+v, want another flush and re-search", st)
	}
	if len(a2.Ops) >= len(a1.Ops) {
		t.Errorf("prefix grew from %d to %d ops after losing a cell", len(a1.Ops), len(a2.Ops))
	}
}

// TestWearSteersAnchor pins the explore-composition: among equally long
// placements the remapper picks the one whose worst cell has the least
// projected ΔVt, so piling wear onto one half of the fabric pushes the
// chosen anchor to the other half.
func TestWearSteersAnchor(t *testing.T) {
	g := fabric.NewGeometry(2, 16)
	// An 8-op two-row block: fits at many anchors once remapped.
	cfg := mapHealthy(t, independentALUs(8), g)
	// Kill one full column so the skip-scan fails for some pivot yet many
	// remap anchors remain. (The healthy 2×4 footprint misses most offsets
	// only when the dead column cuts them; use survivor pattern instead.)
	h, err := fabric.NewHealthWithDead(g, fabric.SurvivorRowCells(g, 1))
	if err != nil {
		t.Fatal(err)
	}
	w := fabric.NewWear(g)
	// Row 1, columns 0-7 are heavily worn; columns 8-15 are fresh.
	for c := 0; c < 8; c++ {
		w.Add(fabric.Cell{Row: 1, Col: c}, 2)
	}
	m := New(g)
	m.SetHealth(h)
	m.SetWear(w)
	mapped, off, ok := m.RemapConfig(cfg, fabric.Offset{}, false)
	if !ok {
		t.Fatal("remap failed on the survivor row")
	}
	for _, cell := range mapped.Cells() {
		p := off.Apply(cell, g)
		if p.Row != 1 {
			t.Fatalf("placed on dead row: %v", p)
		}
		if p.Col < 8 {
			t.Errorf("placed on worn column %d; wear scoring should prefer the fresh half", p.Col)
		}
	}
}

// TestEngineRemapKeepsKernelOnFabric is the engine-level pin: with stale
// translations (configs mapped before the failures) and everything dead but
// one row, the explorer-backed snake path offloads nothing while the remap
// allocator keeps the kernel on-fabric — with the architectural result
// identical to the reference.
func TestEngineRemapKeepsKernelOnFabric(t *testing.T) {
	g := fabric.NewGeometry(2, 16)
	run := func(factory func(fabric.Geometry) alloc.Allocator) *dbt.Report {
		h, err := fabric.NewHealthWithDead(g, fabric.SurvivorRowCells(g, 1))
		if err != nil {
			t.Fatal(err)
		}
		b, _ := prog.ByName("crc32")
		c, err := b.NewCore(prog.Tiny)
		if err != nil {
			t.Fatal(err)
		}
		eng, err := dbt.NewEngine(dbt.Options{
			Geom: g, Allocator: factory(g), Health: h, StaleTranslations: true,
		})
		if err != nil {
			t.Fatal(err)
		}
		rep, err := eng.Run(c, b.MaxInstructions)
		if err != nil {
			t.Fatal(err)
		}
		if err := b.Check(c.Mem, c.Regs[isa.A0], prog.Tiny); err != nil {
			t.Fatalf("wrong architectural result through the remap path: %v", err)
		}
		return rep
	}
	snake := run(func(g fabric.Geometry) alloc.Allocator { return alloc.NewUtilizationAware(g) })
	remapped := run(func(g fabric.Geometry) alloc.Allocator { return New(g) })

	if snake.Offloads != 0 {
		t.Errorf("snake offloaded %d times through a one-row fabric with stale translations; want 0", snake.Offloads)
	}
	if remapped.Offloads == 0 {
		t.Error("remap allocator fell back to the GPP; want the kernel on-fabric")
	}
	if remapped.TotalInstrs != snake.TotalInstrs {
		t.Errorf("instruction totals diverge: remap %d, snake %d", remapped.TotalInstrs, snake.TotalInstrs)
	}
	if remapped.TotalCycles >= snake.TotalCycles {
		t.Errorf("remap (%d cycles) should beat the full GPP fallback (%d cycles)",
			remapped.TotalCycles, snake.TotalCycles)
	}
}

// TestWearTriggerSubstitutesBetterShape pins the second remap trigger: even
// when the translated rectangle still has a live pivot, the remapper
// substitutes a full-sequence reshape whose worst cell projects strictly
// less wear — and keeps the translation when nothing scores better, so its
// worst projected wear never exceeds the translation-only choice.
func TestWearTriggerSubstitutesBetterShape(t *testing.T) {
	g := fabric.NewGeometry(2, 16)
	// Eight independent ops: a 2×4 block at the origin.
	cfg := mapHealthy(t, independentALUs(8), g)
	// One dead cell far away keeps the fabric degraded (the trigger is
	// armed) without constraining the 2×4 block.
	h, err := fabric.NewHealthWithDead(g, []fabric.Cell{{Row: 1, Col: 15}})
	if err != nil {
		t.Fatal(err)
	}

	// Fresh wear: the translated placement at the origin is as good as any
	// reshape, so the translation must stand.
	m := New(g)
	m.SetHealth(h)
	m.SetWear(fabric.NewWear(g))
	got, off, ok := m.RemapConfig(cfg, fabric.Offset{}, true)
	if !ok || got != cfg || off != (fabric.Offset{}) {
		t.Fatalf("fresh fabric: RemapConfig = (%p, %v, %v), want the translation kept", got, off, ok)
	}

	// Pile wear onto row 0: every pivot of the two-row rectangle touches
	// row 0 somewhere, but a 1×8 reshape fits entirely into the fresh row 1.
	w := fabric.NewWear(g)
	for c := 0; c < g.Cols; c++ {
		w.Add(fabric.Cell{Row: 0, Col: c}, 2)
	}
	m2 := New(g)
	m2.SetHealth(h)
	m2.SetWear(w)
	got, off, ok = m2.RemapConfig(cfg, fabric.Offset{}, true)
	if !ok {
		t.Fatal("RemapConfig failed")
	}
	if got == cfg {
		t.Fatal("translation kept although a one-row reshape avoids the worn row entirely")
	}
	if len(got.Ops) != len(cfg.Ops) {
		t.Fatalf("wear trigger substituted a partial prefix: %d/%d ops", len(got.Ops), len(cfg.Ops))
	}
	for _, cell := range got.Cells() {
		p := off.Apply(cell, g)
		if p.Row != 1 {
			t.Errorf("substituted placement touches worn row 0 at %v", p)
		}
	}
	if s1, s0 := m2.Explorer().Score(got, off), m2.Explorer().Score(cfg, fabric.Offset{}); s1 >= s0 {
		t.Errorf("substitute scores %v, not below the translation's %v", s1, s0)
	}
}

// TestTraceRoundTripDirectJump pins Trace/Reshape on configurations
// containing width-0 direct-jump ops: a jal consumes no FU (its link value
// is a translation-time constant), yet it must survive the trace
// reconstruction and re-mapping byte-identically — the translation-time
// shape search feeds every shape decision through exactly this path.
func TestTraceRoundTripDirectJump(t *testing.T) {
	g := fabric.NewGeometry(2, 16)
	trace := []mapper.TraceEntry{
		alu(0x1000, isa.T0, isa.A0, isa.A1),
		alu(0x1004, isa.T1, isa.T0, isa.A1),
		{PC: 0x1008, Inst: isa.Inst{Op: isa.JAL, Rd: isa.RA, Imm: 16}, Taken: true},
		alu(0x1018, isa.T2, isa.T1, isa.RA),
		alu(0x101c, isa.T0, isa.T2, isa.A0),
	}
	cfg := mapHealthy(t, trace, g)

	// The jump is in the op list with zero width and occupies no cell.
	jumps := 0
	for _, op := range cfg.Ops {
		if op.Inst.Op == isa.JAL {
			jumps++
			if op.Width != 0 {
				t.Fatalf("direct jump placed with width %d", op.Width)
			}
		}
	}
	if jumps != 1 {
		t.Fatalf("%d jumps placed, want 1", jumps)
	}

	// Trace reconstruction carries the jump (PC, instruction, direction).
	rebuilt := Trace(cfg)
	for i, e := range trace {
		if rebuilt[i].PC != e.PC || rebuilt[i].Inst != e.Inst || rebuilt[i].Taken != e.Taken {
			t.Fatalf("rebuilt trace entry %d = %+v, want %+v", i, rebuilt[i], e)
		}
	}

	// Re-mapping at the original shape reproduces the placement exactly,
	// and every ladder shape holding the full sequence replays identically.
	mc, n := Reshape(cfg, g, fabric.Offset{}, g, nil, fabric.DefaultLatencies())
	if mc == nil || n != len(cfg.Ops) {
		t.Fatalf("round-trip consumed %d/%d", n, len(cfg.Ops))
	}
	if !reflect.DeepEqual(cfg.Ops, mc.Ops) {
		t.Errorf("round-trip placement diverges:\n%+v\n%+v", cfg.Ops, mc.Ops)
	}
	opcs, odirs := cfg.ReplayTables()
	for _, shape := range CandidateShapes(g) {
		sc, n := Reshape(cfg, shape, fabric.Offset{}, g, nil, fabric.DefaultLatencies())
		if sc == nil || n < len(cfg.Ops) {
			continue
		}
		spcs, sdirs := sc.ReplayTables()
		if !reflect.DeepEqual(opcs, spcs) || !reflect.DeepEqual(odirs, sdirs) {
			t.Errorf("shape %v: replay tables diverge on the jump-bearing sequence", shape)
		}
	}
}

// TestReshapeWrapAroundAnchor pins Reshape at anchors where the placement
// spans the physical column seam: the anchor-frame health mask must wrap
// exactly like the placement does, the remapped prefix must replay the
// original sequence byte-identically, and every occupied cell must land
// live under the wrapped anchor.
func TestReshapeWrapAroundAnchor(t *testing.T) {
	g := fabric.NewGeometry(2, 16)
	cfg := mapHealthy(t, independentALUs(12), g)
	// Dead cells in physical columns 2 and 3: a 2x8 shape anchored at
	// column 12 wraps onto physical columns 12..15,0..3, so the mask seen
	// in the anchor frame has its holes at virtual columns 6 and 7 —
	// beyond the seam.
	h, err := fabric.NewHealthWithDead(g, fabric.DeadColumnsCells(g, 2, 3))
	if err != nil {
		t.Fatal(err)
	}
	shape := fabric.Geometry{Rows: 2, Cols: 8, CtxLines: g.CtxLines, CfgLines: g.CfgLines}
	anchor := fabric.Offset{Row: 1, Col: 12} // wraps rows and columns
	mc, consumed := Reshape(cfg, shape, anchor, g, h, fabric.DefaultLatencies())
	if mc == nil {
		t.Fatal("no placement across the seam although 12 live cells fit the window")
	}
	if consumed != len(cfg.Ops) {
		t.Fatalf("consumed %d/%d ops; the wrapped window holds 12 live cells", consumed, len(cfg.Ops))
	}
	for _, cell := range mc.Cells() {
		p := anchor.Apply(cell, g)
		if h.Dead(p) {
			t.Errorf("virtual cell %v lands on dead physical cell %v across the seam", cell, p)
		}
		if cell.Col >= 6 && cell.Col < 8 && cell.Row >= 0 {
			// Virtual columns 6-7 are the masked (dead) window columns.
			t.Errorf("virtual cell %v occupies a masked column of the anchor frame", cell)
		}
	}
	opcs, odirs := cfg.ReplayTables()
	mpcs, mdirs := mc.ReplayTables()
	if !reflect.DeepEqual(opcs[:len(mpcs)], mpcs) || !reflect.DeepEqual(odirs[:len(mdirs)], mdirs) {
		t.Errorf("wrapped remap's replay tables diverge from the original prefix")
	}
	if err := mc.Validate(); err != nil {
		t.Errorf("wrapped remap invalid: %v", err)
	}
}

// TestRemapWorkerCountInvariance runs the same rescue search serial and
// striped over four workers on a clustered-failure fabric with a skewed
// wear map, and pins that both produce the same placement and — because
// the counters sum over the fixed viable-candidate set, not the order the
// running best happened to improve in — byte-identical searchcost Counts.
func TestRemapWorkerCountInvariance(t *testing.T) {
	g := fabric.NewGeometry(2, 16)
	cfg := mapHealthy(t, independentALUs(8), g)
	run := func(workers int) (*fabric.Config, fabric.Offset, bool, searchcost.Counts) {
		// Dead quadrant (row 0, columns 0-7): the healthy shape survives
		// at some anchors, narrower shapes at more — a real multi-shape,
		// multi-anchor scan.
		h, err := fabric.NewHealthWithDead(g, fabric.DeadQuadrantCells(g))
		if err != nil {
			t.Fatal(err)
		}
		w := fabric.NewWear(g)
		for c := 0; c < 8; c++ {
			w.Add(fabric.Cell{Row: 1, Col: c}, 2)
		}
		m := New(g, WithWorkers(workers))
		m.SetHealth(h)
		m.SetWear(w)
		mc, off, ok := m.RemapConfig(cfg, fabric.Offset{}, false)
		return mc, off, ok, m.SearchCounts()
	}
	cfgS, offS, okS, countsS := run(1)
	cfgP, offP, okP, countsP := run(4)
	if okS != okP || offS != offP {
		t.Fatalf("serial (ok=%v off=%v) != parallel (ok=%v off=%v)", okS, offS, okP, offP)
	}
	if okS {
		if cfgS.Geom != cfgP.Geom || cfgS.UsedCols != cfgP.UsedCols || len(cfgS.Ops) != len(cfgP.Ops) {
			t.Fatalf("configs diverge: serial %v/%d ops, parallel %v/%d ops",
				cfgS.Geom, len(cfgS.Ops), cfgP.Geom, len(cfgP.Ops))
		}
		for i := range cfgS.Ops {
			if cfgS.Ops[i] != cfgP.Ops[i] {
				t.Fatalf("op %d diverges: serial %+v, parallel %+v", i, cfgS.Ops[i], cfgP.Ops[i])
			}
		}
	}
	if countsS != countsP {
		t.Fatalf("searchcost counts diverge:\nserial:   %+v\nparallel: %+v", countsS, countsP)
	}
}
