// Package remap implements shape-adaptive configuration remapping: the
// allocation layer that keeps kernels on-fabric when clustered failures
// block every pivot of the originally translated rectangle.
//
// The allocators below the remap layer can only *translate*: the mapper
// produces one virtual rectangle per trace and the controller slides it
// around the fabric (with wrap-around). Once failures cluster — a dead
// column under a full-length configuration, a dead quadrant, everything
// dead but one row — no offset avoids the failed cells and the controller
// falls back to the GPP, even when plenty of scattered live capacity
// remains. That lost capacity is exactly what layout-space exploration
// recovers (HeLEx; BandMap's resource-constrained remapping): the same
// instruction sequence re-mapped to a different shape — narrower and
// taller, or flowed around the dead cells inside the rectangle — often
// still fits.
//
// Remapper wraps the wear-aware explorer: on the ordinary path it *is* the
// explorer (wear-scored pivot choice over the full-shape configuration);
// when the controller reports that no pivot of the original rectangle is
// live (alloc.ConfigRemapper), it rebuilds the configuration's dynamic
// trace and re-invokes mapper.Map once per candidate (shape × anchor) with
// a health mask expressed in that anchor's frame, so the greedy row search
// flows around dead cells inside the rectangle. Candidates are ranked by
// how much of the sequence they hold (architectural throughput first),
// then by the explorer's projected-ΔVt wear score (the placement whose
// worst cell ages least), with deterministic shape-order and row-major
// anchor tie-breaks. The search outcome — positive or negative — is
// memoized in a cfgcache.RemapCache keyed by (StartPC, health version,
// wear version): deaths change which placements exist, wear advances
// change which the scoring prefers, and both invalidate wholesale. The
// scans this costs are counted and priced by the derived hardware-cost
// model in internal/searchcost.
package remap

import (
	"agingcgra/internal/alloc"
	"agingcgra/internal/cfgcache"
	"agingcgra/internal/explore"
	"agingcgra/internal/fabric"
	"agingcgra/internal/mapper"
	"agingcgra/internal/searchcost"
)

// Remapper is the shape-adaptive allocator. It implements alloc.Allocator
// (delegating the healthy-path pivot choice to the wear-aware explorer),
// the controller feedback interfaces, and alloc.ConfigRemapper.
type Remapper struct {
	geom   fabric.Geometry
	lat    fabric.LatencyTable
	ex     *explore.Explorer
	minOps int
	shapes []fabric.Geometry

	health *fabric.Health
	wear   *fabric.Wear
	cache  *cfgcache.RemapCache

	// counts tallies the rescue-search work for the derived cost model.
	counts searchcost.Counts
}

// Option configures the Remapper.
type Option func(*Remapper)

// WithLatencies sets the latency table the shape search maps with; it must
// match the engine's (default fabric.DefaultLatencies).
func WithLatencies(lat fabric.LatencyTable) Option {
	return func(m *Remapper) { m.lat = lat }
}

// WithMinOps sets the smallest remapped prefix worth offloading (default 4,
// matching the engine's translation threshold).
func WithMinOps(n int) Option {
	return func(m *Remapper) {
		if n >= 1 {
			m.minOps = n
		}
	}
}

// WithShapes overrides the candidate shape list (default CandidateShapes).
func WithShapes(shapes ...fabric.Geometry) Option {
	return func(m *Remapper) {
		if len(shapes) > 0 {
			m.shapes = shapes
		}
	}
}

// WithLadder selects the shape ladder the rescue search expands (default
// fabric.DefaultShapeLadder). The same ladder drives the DBT's
// translation-time shape search (dbt.Options.Ladder); giving both layers
// one ladder keeps the allocation-time rescue and the translation-time
// choice searching the same space. A malformed ladder that expands to no
// shapes is ignored (the default ladder stays in force), mirroring
// WithShapes — an empty rescue scan would silently degrade the allocator
// to a plain explorer.
func WithLadder(l fabric.ShapeLadder) Option {
	return func(m *Remapper) {
		if shapes := l.Shapes(m.geom); len(shapes) > 0 {
			m.shapes = shapes
		}
	}
}

// WithExplorerOptions forwards options to the underlying wear-aware
// explorer (projection horizon, recompute period, NBTI model).
func WithExplorerOptions(opts ...explore.Option) Option {
	return func(m *Remapper) { m.ex = explore.New(m.geom, opts...) }
}

// New builds a shape-adaptive remapper for the physical geometry.
func New(g fabric.Geometry, opts ...Option) *Remapper {
	m := &Remapper{
		geom:   g,
		lat:    fabric.DefaultLatencies(),
		ex:     explore.New(g),
		minOps: 4,
		shapes: CandidateShapes(g),
		cache:  cfgcache.NewRemapCache(),
	}
	for _, o := range opts {
		o(m)
	}
	return m
}

// CandidateShapes returns the default deterministic shape ladder for a
// physical geometry: fabric.DefaultShapeLadder materialised, widest first.
// The ladder definition itself lives in internal/fabric so the DBT's
// translation-time shape search and this allocation-time rescue search
// share (and sweep) one configurable ladder.
func CandidateShapes(g fabric.Geometry) []fabric.Geometry {
	return fabric.DefaultShapeLadder().Shapes(g)
}

// Name implements alloc.Allocator.
func (m *Remapper) Name() string { return "remap" }

// Next implements alloc.Allocator: the wear-aware explorer's held pivot for
// the full-shape configuration. Remapping happens only when the controller
// reports that no pivot works (RemapConfig).
func (m *Remapper) Next(cfg *fabric.Config) fabric.Offset { return m.ex.Next(cfg) }

// SetHealth implements alloc.HealthSetter.
func (m *Remapper) SetHealth(h *fabric.Health) {
	m.health = h
	m.ex.SetHealth(h)
}

// SetWear implements alloc.WearSetter.
func (m *Remapper) SetWear(w *fabric.Wear) {
	m.wear = w
	m.ex.SetWear(w)
}

// ObserveStress implements alloc.StressObserver.
func (m *Remapper) ObserveStress(cells []fabric.Cell, off fabric.Offset, cycles uint64) {
	m.ex.ObserveStress(cells, off, cycles)
}

// Explorer exposes the underlying wear-aware explorer (tests compare its
// scores against the remapper's choices).
func (m *Remapper) Explorer() *explore.Explorer { return m.ex }

// RemapStats exposes the shape-search cache counters.
func (m *Remapper) RemapStats() cfgcache.RemapStats { return m.cache.Stats() }

// SearchCounts implements searchcost.Instrumented: the rescue scans' own
// work plus the embedded explorer's pivot-scan work.
func (m *Remapper) SearchCounts() searchcost.Counts {
	c := m.counts
	c.Add(m.ex.SearchCounts())
	return c
}

// Trace reconstructs the dynamic instruction sequence a configuration was
// translated from. The mapper places every entry of the consumed prefix (a
// direct jump becomes a width-0 op), so the configuration's op list in
// sequence order is the trace.
func Trace(cfg *fabric.Config) []mapper.TraceEntry {
	trace := make([]mapper.TraceEntry, len(cfg.Ops))
	for i, op := range cfg.Ops {
		trace[i] = mapper.TraceEntry{PC: op.PC, Inst: op.Inst, Taken: op.Taken}
	}
	return trace
}

// Reshape re-maps cfg's instruction sequence for an alternative shape
// anchored at the given pivot, flowing around dead cells: the mapper's
// free-row search sees a cell (r,c) of the shape as disabled when the
// physical cell it lands on under the anchor — ((r,c) shifted by anchor,
// wrapping in the physical geometry — is dead. It returns the remapped
// configuration and how many ops of the sequence it holds; (nil, 0) when
// not even the first op fits. A nil health map reshapes on a pristine
// fabric — the architectural-equivalence property tests use exactly that.
func Reshape(cfg *fabric.Config, shape fabric.Geometry, anchor fabric.Offset, phys fabric.Geometry, health *fabric.Health, lat fabric.LatencyTable) (*fabric.Config, int) {
	return reshapeCounted(cfg, shape, anchor, phys, health, lat, nil)
}

// reshapeCounted is Reshape with an optional mapper probe counter, so the
// rescue scan's work feeds the derived search-cost model.
func reshapeCounted(cfg *fabric.Config, shape fabric.Geometry, anchor fabric.Offset, phys fabric.Geometry, health *fabric.Health, lat fabric.LatencyTable, probes *uint64) (*fabric.Config, int) {
	var disabled func(fabric.Cell) bool
	if health != nil && health.DeadCount() > 0 {
		disabled = func(c fabric.Cell) bool {
			return health.Dead(anchor.Apply(c, phys))
		}
	}
	return mapper.Map(Trace(cfg), mapper.Options{
		Geom:     shape,
		Lat:      lat,
		Disabled: disabled,
		Probes:   probes,
	})
}

// RemapConfig implements alloc.ConfigRemapper, with two triggers:
//
//   - capacity: the translated rectangle has no live pivot (placed is
//     false). The search substitutes the candidate holding the longest
//     prefix of the sequence, breaking ties by projected wear — the GPP
//     rescue.
//   - wear: a pivot exists, but some full-sequence reshape projects a
//     strictly lower worst-cell ΔVt than the translated placement. The
//     remapper substitutes it: at decision time its placement set is a
//     superset of the explorer's, so the chosen placement never projects
//     more worst-cell wear than the translation-only choice did.
//
// Search outcomes are memoized per (StartPC, health version, wear
// version) and held until either version moves — the decision snapshots
// the duty observed at the region's first offload, mirroring the
// explorer's own pivot hold period, rather than re-ranking as within-run
// duty drifts. On a pristine fabric the remapper is exactly the explorer
// and the search never runs.
func (m *Remapper) RemapConfig(cfg *fabric.Config, off fabric.Offset, placed bool) (*fabric.Config, fabric.Offset, bool) {
	if cfg == nil || len(cfg.Ops) == 0 || m.health == nil || m.health.DeadCount() == 0 {
		if !placed {
			return nil, fabric.Offset{}, false
		}
		return cfg, off, true
	}
	healthVer := m.health.Version()
	var wearVer uint64
	if m.wear != nil {
		wearVer = m.wear.Version()
	}
	// A nil Cfg with OK set is the keep-the-translation marker: the offset
	// then follows the explorer's live pivot, not a cached one. The marker
	// is only ever written when a pivot existed; placement success is a
	// pure function of the health state, so a marker hit with placed false
	// cannot happen — recompute defensively if it ever does.
	if e, ok := m.cache.Lookup(cfg.StartPC, healthVer, wearVer); ok {
		if e.OK && e.Cfg == nil {
			if placed {
				return cfg, off, true
			}
		} else {
			return e.Cfg, e.Off, e.OK
		}
	}
	entry := m.search(cfg)
	if placed {
		// The projection is still fresh from the search pass.
		full := entry.OK && len(entry.Cfg.Ops) == len(cfg.Ops)
		if full {
			m.counts.RemapCells += uint64(len(entry.Cfg.Cells()) + len(cfg.Cells()))
		}
		if !full || m.ex.ProjectedScore(entry.Cfg, entry.Off) >= m.ex.ProjectedScore(cfg, off) {
			entry = cfgcache.RemapEntry{OK: true} // keep the translation
		}
	}
	m.cache.Insert(cfg.StartPC, healthVer, wearVer, entry)
	if entry.OK && entry.Cfg == nil {
		return cfg, off, true
	}
	return entry.Cfg, entry.Off, entry.OK
}

// search scans every candidate (shape × anchor), keeping the placement
// that holds the longest prefix of the sequence and, among equally long
// ones, minimises the explorer's projected worst-cell ΔVt. Ties beyond the
// score break by shape order then row-major anchor, so the search is
// deterministic.
func (m *Remapper) search(cfg *fabric.Config) cfgcache.RemapEntry {
	minOps := m.minOps
	if n := len(cfg.Ops); n < minOps {
		minOps = n
	}
	// One Eq. 1 projection pass serves the whole candidate scan: the
	// projection depends only on the fabric state and the observed duty,
	// neither of which changes mid-search.
	m.ex.Reproject()
	m.counts.RemapScans++
	m.counts.RemapProjections += uint64(m.geom.NumFUs())
	var best cfgcache.RemapEntry
	bestConsumed := 0
	bestScore := 0.0
	for _, shape := range m.shapes {
		if shape.Rows > m.geom.Rows || shape.Cols > m.geom.Cols {
			continue
		}
		for ar := 0; ar < m.geom.Rows; ar++ {
			for ac := 0; ac < m.geom.Cols; ac++ {
				anchor := fabric.Offset{Row: ar, Col: ac}
				m.counts.RemapCandidates++
				mc, consumed := reshapeCounted(cfg, shape, anchor, m.geom, m.health, m.lat, &m.counts.RemapProbes)
				if mc == nil || consumed < minOps || consumed < bestConsumed {
					continue
				}
				// The anchor-frame mask guarantees liveness by construction;
				// re-checking keeps the never-dead-placement invariant even
				// if a shape list with out-of-range cells sneaks in.
				if !m.health.PlacementOK(mc.Cells(), anchor) {
					continue
				}
				m.counts.RemapCells += uint64(len(mc.Cells()))
				score := m.ex.ProjectedScore(mc, anchor)
				if consumed > bestConsumed || score < bestScore {
					best = cfgcache.RemapEntry{Cfg: mc, Off: anchor, OK: true}
					bestConsumed, bestScore = consumed, score
				}
			}
		}
	}
	return best
}

var (
	_ alloc.Allocator         = (*Remapper)(nil)
	_ alloc.HealthSetter      = (*Remapper)(nil)
	_ alloc.WearSetter        = (*Remapper)(nil)
	_ alloc.StressObserver    = (*Remapper)(nil)
	_ alloc.ConfigRemapper    = (*Remapper)(nil)
	_ searchcost.Instrumented = (*Remapper)(nil)
)
