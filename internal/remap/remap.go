// Package remap implements shape-adaptive configuration remapping: the
// allocation layer that keeps kernels on-fabric when clustered failures
// block every pivot of the originally translated rectangle.
//
// The allocators below the remap layer can only *translate*: the mapper
// produces one virtual rectangle per trace and the controller slides it
// around the fabric (with wrap-around). Once failures cluster — a dead
// column under a full-length configuration, a dead quadrant, everything
// dead but one row — no offset avoids the failed cells and the controller
// falls back to the GPP, even when plenty of scattered live capacity
// remains. That lost capacity is exactly what layout-space exploration
// recovers (HeLEx; BandMap's resource-constrained remapping): the same
// instruction sequence re-mapped to a different shape — narrower and
// taller, or flowed around the dead cells inside the rectangle — often
// still fits.
//
// Remapper wraps the wear-aware explorer: on the ordinary path it *is* the
// explorer (wear-scored pivot choice over the full-shape configuration);
// when the controller reports that no pivot of the original rectangle is
// live (alloc.ConfigRemapper), it rebuilds the configuration's dynamic
// trace and re-invokes mapper.Map once per candidate (shape × anchor) with
// a health mask expressed in that anchor's frame, so the greedy row search
// flows around dead cells inside the rectangle. Candidates are ranked by
// how much of the sequence they hold (architectural throughput first),
// then by the explorer's projected-ΔVt wear score (the placement whose
// worst cell ages least), with deterministic shape-order and row-major
// anchor tie-breaks. The search outcome — positive or negative — is
// memoized in a cfgcache.RemapCache keyed by (StartPC, health version,
// wear version): deaths change which placements exist, wear advances
// change which the scoring prefers, and both invalidate wholesale. The
// scans this costs are counted and priced by the derived hardware-cost
// model in internal/searchcost.
//
// The rescue scan fans out over a bounded goroutine pool (WithWorkers):
// candidates stripe by flattened (shape, anchor) index and the reduction
// is an index-ordered argmin, so any worker count returns the identical
// placement. Every viable candidate is mapped, counted and scored — no
// running-best gate short-circuits the per-candidate work — which keeps
// the searchcost counters sums over a fixed candidate set, byte-identical
// between serial and parallel runs.
package remap

import (
	"runtime"

	"agingcgra/internal/alloc"
	"agingcgra/internal/cfgcache"
	"agingcgra/internal/explore"
	"agingcgra/internal/fabric"
	"agingcgra/internal/mapper"
	"agingcgra/internal/pscan"
	"agingcgra/internal/searchcost"
)

// minParallelCandidates is the smallest (shape × anchor) candidate count
// worth fanning the rescue scan out over goroutines; each candidate runs a
// full mapper placement, so the threshold is much lower than the explorer's
// per-pivot one.
const minParallelCandidates = 16

// Remapper is the shape-adaptive allocator. It implements alloc.Allocator
// (delegating the healthy-path pivot choice to the wear-aware explorer),
// the controller feedback interfaces, and alloc.ConfigRemapper.
type Remapper struct {
	geom    fabric.Geometry
	lat     fabric.LatencyTable
	ex      *explore.Explorer
	minOps  int
	shapes  []fabric.Geometry
	workers int

	health *fabric.Health
	wear   *fabric.Wear
	cache  *cfgcache.RemapCache

	// counts tallies the rescue-search work for the derived cost model.
	counts searchcost.Counts
}

// Option configures the Remapper.
type Option func(*Remapper)

// WithLatencies sets the latency table the shape search maps with; it must
// match the engine's (default fabric.DefaultLatencies).
func WithLatencies(lat fabric.LatencyTable) Option {
	return func(m *Remapper) { m.lat = lat }
}

// WithMinOps sets the smallest remapped prefix worth offloading (default 4,
// matching the engine's translation threshold).
func WithMinOps(n int) Option {
	return func(m *Remapper) {
		if n >= 1 {
			m.minOps = n
		}
	}
}

// WithShapes overrides the candidate shape list (default CandidateShapes).
func WithShapes(shapes ...fabric.Geometry) Option {
	return func(m *Remapper) {
		if len(shapes) > 0 {
			m.shapes = shapes
		}
	}
}

// WithLadder selects the shape ladder the rescue search expands (default
// fabric.DefaultShapeLadder). The same ladder drives the DBT's
// translation-time shape search (dbt.Options.Ladder); giving both layers
// one ladder keeps the allocation-time rescue and the translation-time
// choice searching the same space. A malformed ladder that expands to no
// shapes is ignored (the default ladder stays in force), mirroring
// WithShapes — an empty rescue scan would silently degrade the allocator
// to a plain explorer.
func WithLadder(l fabric.ShapeLadder) Option {
	return func(m *Remapper) {
		if shapes := l.Shapes(m.geom); len(shapes) > 0 {
			m.shapes = shapes
		}
	}
}

// WithExplorerOptions forwards options to the underlying wear-aware
// explorer (projection horizon, recompute period, NBTI model).
func WithExplorerOptions(opts ...explore.Option) Option {
	return func(m *Remapper) { m.ex = explore.New(m.geom, opts...) }
}

// WithWorkers bounds the goroutine pool the rescue scan fans its
// (shape × anchor) candidates out over (default 0: GOMAXPROCS; 1 forces
// the serial scan). Any worker count yields byte-identical results and
// searchcost counters: every viable candidate is mapped, counted and
// scored regardless of evaluation order, and the reduction picks the
// winner by (consumed desc, score asc, candidate index) in stripe order.
func WithWorkers(n int) Option {
	return func(m *Remapper) { m.workers = n }
}

// New builds a shape-adaptive remapper for the physical geometry.
func New(g fabric.Geometry, opts ...Option) *Remapper {
	m := &Remapper{
		geom:   g,
		lat:    fabric.DefaultLatencies(),
		ex:     explore.New(g),
		minOps: 4,
		shapes: CandidateShapes(g),
		cache:  cfgcache.NewRemapCache(),
	}
	for _, o := range opts {
		o(m)
	}
	return m
}

// CandidateShapes returns the default deterministic shape ladder for a
// physical geometry: fabric.DefaultShapeLadder materialised, widest first.
// The ladder definition itself lives in internal/fabric so the DBT's
// translation-time shape search and this allocation-time rescue search
// share (and sweep) one configurable ladder.
func CandidateShapes(g fabric.Geometry) []fabric.Geometry {
	return fabric.DefaultShapeLadder().Shapes(g)
}

// Name implements alloc.Allocator.
func (m *Remapper) Name() string { return "remap" }

// Next implements alloc.Allocator: the wear-aware explorer's held pivot for
// the full-shape configuration. Remapping happens only when the controller
// reports that no pivot works (RemapConfig).
func (m *Remapper) Next(cfg *fabric.Config) fabric.Offset { return m.ex.Next(cfg) }

// SetHealth implements alloc.HealthSetter.
func (m *Remapper) SetHealth(h *fabric.Health) {
	m.health = h
	m.ex.SetHealth(h)
}

// SetWear implements alloc.WearSetter.
func (m *Remapper) SetWear(w *fabric.Wear) {
	m.wear = w
	m.ex.SetWear(w)
}

// ObserveStress implements alloc.StressObserver.
func (m *Remapper) ObserveStress(cells []fabric.Cell, off fabric.Offset, cycles uint64) {
	m.ex.ObserveStress(cells, off, cycles)
}

// Explorer exposes the underlying wear-aware explorer (tests compare its
// scores against the remapper's choices).
func (m *Remapper) Explorer() *explore.Explorer { return m.ex }

// RemapStats exposes the shape-search cache counters.
func (m *Remapper) RemapStats() cfgcache.RemapStats { return m.cache.Stats() }

// SearchCounts implements searchcost.Instrumented: the rescue scans' own
// work plus the embedded explorer's pivot-scan work.
func (m *Remapper) SearchCounts() searchcost.Counts {
	c := m.counts
	c.Add(m.ex.SearchCounts())
	return c
}

// Trace reconstructs the dynamic instruction sequence a configuration was
// translated from. The mapper places every entry of the consumed prefix (a
// direct jump becomes a width-0 op), so the configuration's op list in
// sequence order is the trace.
func Trace(cfg *fabric.Config) []mapper.TraceEntry {
	trace := make([]mapper.TraceEntry, len(cfg.Ops))
	for i, op := range cfg.Ops {
		trace[i] = mapper.TraceEntry{PC: op.PC, Inst: op.Inst, Taken: op.Taken}
	}
	return trace
}

// Reshape re-maps cfg's instruction sequence for an alternative shape
// anchored at the given pivot, flowing around dead cells: the mapper's
// free-row search sees a cell (r,c) of the shape as disabled when the
// physical cell it lands on under the anchor — ((r,c) shifted by anchor,
// wrapping in the physical geometry — is dead. It returns the remapped
// configuration and how many ops of the sequence it holds; (nil, 0) when
// not even the first op fits. A nil health map reshapes on a pristine
// fabric — the architectural-equivalence property tests use exactly that.
func Reshape(cfg *fabric.Config, shape fabric.Geometry, anchor fabric.Offset, phys fabric.Geometry, health *fabric.Health, lat fabric.LatencyTable) (*fabric.Config, int) {
	return reshapeCounted(cfg, shape, anchor, phys, health, lat, nil)
}

// reshapeCounted is Reshape with an optional mapper probe counter, so the
// rescue scan's work feeds the derived search-cost model.
func reshapeCounted(cfg *fabric.Config, shape fabric.Geometry, anchor fabric.Offset, phys fabric.Geometry, health *fabric.Health, lat fabric.LatencyTable, probes *uint64) (*fabric.Config, int) {
	var disabled func(fabric.Cell) bool
	if health != nil && health.DeadCount() > 0 {
		disabled = func(c fabric.Cell) bool {
			return health.Dead(anchor.Apply(c, phys))
		}
	}
	return mapper.Map(Trace(cfg), mapper.Options{
		Geom:     shape,
		Lat:      lat,
		Disabled: disabled,
		Probes:   probes,
	})
}

// RemapConfig implements alloc.ConfigRemapper, with two triggers:
//
//   - capacity: the translated rectangle has no live pivot (placed is
//     false). The search substitutes the candidate holding the longest
//     prefix of the sequence, breaking ties by projected wear — the GPP
//     rescue.
//   - wear: a pivot exists, but some full-sequence reshape projects a
//     strictly lower worst-cell ΔVt than the translated placement. The
//     remapper substitutes it: at decision time its placement set is a
//     superset of the explorer's, so the chosen placement never projects
//     more worst-cell wear than the translation-only choice did.
//
// Search outcomes are memoized per (StartPC, health version, wear
// version) and held until either version moves — the decision snapshots
// the duty observed at the region's first offload, mirroring the
// explorer's own pivot hold period, rather than re-ranking as within-run
// duty drifts. On a pristine fabric the remapper is exactly the explorer
// and the search never runs.
func (m *Remapper) RemapConfig(cfg *fabric.Config, off fabric.Offset, placed bool) (*fabric.Config, fabric.Offset, bool) {
	if cfg == nil || len(cfg.Ops) == 0 || m.health == nil || m.health.DeadCount() == 0 {
		if !placed {
			return nil, fabric.Offset{}, false
		}
		return cfg, off, true
	}
	healthVer := m.health.Version()
	var wearVer uint64
	if m.wear != nil {
		wearVer = m.wear.Version()
	}
	// A nil Cfg with OK set is the keep-the-translation marker: the offset
	// then follows the explorer's live pivot, not a cached one. The marker
	// is only ever written when a pivot existed; placement success is a
	// pure function of the health state, so a marker hit with placed false
	// cannot happen — recompute defensively if it ever does.
	if e, ok := m.cache.Lookup(cfg.StartPC, healthVer, wearVer); ok {
		if e.OK && e.Cfg == nil {
			if placed {
				return cfg, off, true
			}
		} else {
			return e.Cfg, e.Off, e.OK
		}
	}
	entry := m.search(cfg)
	if placed {
		// The projection is still fresh from the search pass.
		full := entry.OK && len(entry.Cfg.Ops) == len(cfg.Ops)
		if full {
			m.counts.RemapCells += uint64(len(entry.Cfg.Cells()) + len(cfg.Cells()))
		}
		if !full || m.ex.ProjectedScore(entry.Cfg, entry.Off) >= m.ex.ProjectedScore(cfg, off) {
			entry = cfgcache.RemapEntry{OK: true} // keep the translation
		}
	}
	m.cache.Insert(cfg.StartPC, healthVer, wearVer, entry)
	if entry.OK && entry.Cfg == nil {
		return cfg, off, true
	}
	return entry.Cfg, entry.Off, entry.OK
}

// searchStripe is one stripe's share of the rescue scan: the stripe-local
// winner plus the order-invariant work counters.
type searchStripe struct {
	idx      int // winning candidate index, -1 when the stripe holds none
	consumed int
	score    float64
	cfg      *fabric.Config
	off      fabric.Offset
	probes   uint64
	cells    uint64
}

// search scans every candidate (shape × anchor), keeping the placement
// that holds the longest prefix of the sequence and, among equally long
// ones, minimises the explorer's projected worst-cell ΔVt. Ties beyond the
// score break by shape order then row-major anchor — the flattened
// candidate index — so the search is deterministic.
//
// The scan fans out over a bounded goroutine pool: candidates are
// partitioned into contiguous stripes, each worker maps, checks and scores
// its own range against shared read-only state (the trace, the health map
// and the explorer's projection, synchronised once by Reproject), and the
// reduction picks the winner by (consumed desc, score asc, index asc) in
// stripe order. Every viable candidate is mapped, counted and scored —
// there is no running-best gate short-circuiting the per-candidate work —
// so the searchcost counters are sums over a fixed candidate set,
// byte-identical for every worker count including the serial path.
func (m *Remapper) search(cfg *fabric.Config) cfgcache.RemapEntry {
	minOps := m.minOps
	if n := len(cfg.Ops); n < minOps {
		minOps = n
	}
	// One Eq. 1 projection pass serves the whole candidate scan: the
	// projection depends only on the fabric state and the observed duty,
	// neither of which changes mid-search.
	m.ex.Reproject()
	m.counts.RemapScans++
	m.counts.RemapProjections += uint64(m.geom.NumFUs())

	shapes := make([]fabric.Geometry, 0, len(m.shapes))
	for _, shape := range m.shapes {
		if shape.Rows <= m.geom.Rows && shape.Cols <= m.geom.Cols {
			shapes = append(shapes, shape)
		}
	}
	anchors := m.geom.NumFUs()
	n := len(shapes) * anchors
	if n == 0 {
		return cfgcache.RemapEntry{}
	}
	m.counts.RemapCandidates += uint64(n)
	trace := Trace(cfg)

	workers := m.workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if n < minParallelCandidates {
		workers = 1
	}
	stripes := make([]searchStripe, pscan.Count(n, workers))
	pscan.Run(n, workers, func(s, lo, hi int) {
		stripes[s] = m.searchRange(trace, shapes, minOps, lo, hi)
	})

	best := searchStripe{idx: -1}
	for _, sr := range stripes {
		m.counts.RemapProbes += sr.probes
		m.counts.RemapCells += sr.cells
		if sr.idx < 0 {
			continue
		}
		if best.idx < 0 || sr.consumed > best.consumed ||
			(sr.consumed == best.consumed && (sr.score < best.score ||
				(sr.score == best.score && sr.idx < best.idx))) {
			best = sr
		}
	}
	if best.idx < 0 {
		return cfgcache.RemapEntry{}
	}
	return cfgcache.RemapEntry{Cfg: best.cfg, Off: best.off, OK: true}
}

// searchRange evaluates the flattened candidate range [lo, hi): candidate i
// is shape i/NumFUs anchored at the row-major offset i%NumFUs. Each viable
// candidate — mappable, long enough, live — is placed, counted and scored;
// the stripe keeps the (consumed desc, score asc, index asc) winner.
func (m *Remapper) searchRange(trace []mapper.TraceEntry, shapes []fabric.Geometry, minOps, lo, hi int) searchStripe {
	sr := searchStripe{idx: -1}
	cols := m.geom.Cols
	for i := lo; i < hi; i++ {
		shape := shapes[i/m.geom.NumFUs()]
		a := i % m.geom.NumFUs()
		anchor := fabric.Offset{Row: a / cols, Col: a % cols}
		var disabled func(fabric.Cell) bool
		if m.health != nil && m.health.DeadCount() > 0 {
			disabled = func(c fabric.Cell) bool {
				return m.health.Dead(anchor.Apply(c, m.geom))
			}
		}
		mc, consumed := mapper.Map(trace, mapper.Options{
			Geom:     shape,
			Lat:      m.lat,
			Disabled: disabled,
			Probes:   &sr.probes,
		})
		if mc == nil || consumed < minOps {
			continue
		}
		// The anchor-frame mask guarantees liveness by construction;
		// re-checking keeps the never-dead-placement invariant even if a
		// shape list with out-of-range cells sneaks in.
		if !m.health.PlacementOK(mc.Cells(), anchor) {
			continue
		}
		sr.cells += uint64(len(mc.Cells()))
		score := m.ex.ProjectedScore(mc, anchor)
		if sr.idx < 0 || consumed > sr.consumed ||
			(consumed == sr.consumed && score < sr.score) {
			sr.idx, sr.consumed, sr.score = i, consumed, score
			sr.cfg, sr.off = mc, anchor
		}
	}
	return sr
}

var (
	_ alloc.Allocator         = (*Remapper)(nil)
	_ alloc.HealthSetter      = (*Remapper)(nil)
	_ alloc.WearSetter        = (*Remapper)(nil)
	_ alloc.StressObserver    = (*Remapper)(nil)
	_ alloc.ConfigRemapper    = (*Remapper)(nil)
	_ searchcost.Instrumented = (*Remapper)(nil)
)
