// Package recover implements the runtime's *observed* view of fabric
// health: the detection/quarantine/recovery layer that replaces the oracle
// the allocation stack had until now.
//
// Ground truth lives in the simulator: fabric.Health records which cells
// actually died and fabric.Faults the wear-derived per-execution
// intermittent-fault probability of the cells still alive. A deployed
// runtime sees neither. What it can do is verify a sampled fraction of
// offloads against the GPP guided-replay reference (the expected-state
// tables make the re-execution cheap), retry on-fabric a bounded number of
// times when a verification fails, back off to the GPP when retries keep
// failing, count detected faults against every cell of the faulty
// footprint, quarantine cells whose count crosses a threshold, and probe
// quarantined cells each epoch so a false positive earns its way back in.
//
// The Monitor is both halves at once: it owns the physics (it draws fault
// manifestations from the truth maps with a deterministic counter-based
// PRNG) and the belief (the observed health map, suspect counters and
// probation streaks the placement stack consumes instead of ground truth).
// Only the belief is exported to allocation — Observed() — so the
// mapper/explorer/remapper plan around what the runtime has detected, not
// around what the simulator knows.
//
// Determinism contract: every random draw is keyed on (scenario seed,
// epoch, stream, cell, per-epoch draw counter) through a splitmix64-style
// hash, so serial and parallel scenario batches stay byte-identical and an
// epoch's outcome is a pure function of the fabric state at its start.
// Version() covers exactly the cross-epoch-persistent observable state
// (observed health, suspect counters, probation streaks, the fail-stop
// latch); per-epoch draw counters reset in BeginEpoch and the Stats
// counters are excluded, so the lifetime epoch memo can key on Version and
// replay steady-state epochs.
package recover

import (
	"fmt"

	"agingcgra/internal/fabric"
	"agingcgra/internal/searchcost"
)

// Policy is the knob set of the detection/recovery layer.
type Policy struct {
	// CheckEvery samples every k-th offload for verification against the
	// GPP reference (default 4; 1 verifies every offload and commits no
	// silent escapes). Retries are always verified.
	CheckEvery int `json:"check_every"`
	// MaxRetries bounds on-fabric re-executions after a detected fault
	// before the offload backs off to the GPP (default 2).
	MaxRetries int `json:"max_retries"`
	// QuarantineAfter is the detected-fault count at which a suspect cell
	// is quarantined from placement (default 3).
	QuarantineAfter int `json:"quarantine_after"`
	// ProbationProbes is the number of consecutive clean probes a
	// quarantined cell needs before it is reinstated (default 8).
	ProbationProbes int `json:"probation_probes"`
	// ProbesPerEpoch is how many probation test vectors each quarantined
	// cell receives per epoch (default 4).
	ProbesPerEpoch int `json:"probes_per_epoch"`
	// FailStop is the no-recovery baseline: the first detected fault
	// distrusts the whole fabric and routes every later offload to the GPP
	// forever. Retries, quarantine and probation are bypassed.
	FailStop bool `json:"fail_stop,omitempty"`
}

// ApplyDefaults fills zero fields with the defaults documented on Policy.
func (p *Policy) ApplyDefaults() {
	if p.CheckEvery == 0 {
		p.CheckEvery = 4
	}
	if p.MaxRetries == 0 {
		p.MaxRetries = 2
	}
	if p.QuarantineAfter == 0 {
		p.QuarantineAfter = 3
	}
	if p.ProbationProbes == 0 {
		p.ProbationProbes = 8
	}
	if p.ProbesPerEpoch == 0 {
		p.ProbesPerEpoch = 4
	}
}

// Validate rejects negative knobs (zero selects the default).
func (p Policy) Validate() error {
	if p.CheckEvery < 0 || p.MaxRetries < 0 || p.QuarantineAfter < 0 ||
		p.ProbationProbes < 0 || p.ProbesPerEpoch < 0 {
		return fmt.Errorf("recover: negative policy knob in %+v", p)
	}
	return nil
}

// Stats counts the layer's activity. All fields are exact event counts;
// they are deliberately excluded from Version so the lifetime simulator can
// replay steady-state epochs and re-add each epoch's memoized delta (the
// hardware re-runs its checks every epoch regardless of whether the
// simulator memoized the outcome).
type Stats struct {
	// FaultedExecs counts fabric executions on which at least one occupied
	// cell misbehaved; CheckedExecs how many executions the checker
	// verified; DetectedFaults the verified executions that were faulty;
	// SilentEscapes the faulty executions that were not sampled for
	// verification and committed corrupt results.
	FaultedExecs   uint64 `json:"faulted_execs"`
	CheckedExecs   uint64 `json:"checked_execs"`
	DetectedFaults uint64 `json:"detected_faults"`
	SilentEscapes  uint64 `json:"silent_escapes"`
	// Retries counts on-fabric re-executions after a detection,
	// RetrySuccesses the retries whose verification came back clean, and
	// GPPBackoffs the offloads abandoned to the GPP after MaxRetries.
	Retries        uint64 `json:"retries"`
	RetrySuccesses uint64 `json:"retry_successes"`
	GPPBackoffs    uint64 `json:"gpp_backoffs"`
	// Quarantines counts cells removed from placement;
	// FalsePositiveQuarantines the quarantines of cells that were in truth
	// still alive; Reinstatements the quarantined cells returned to service
	// after ProbationProbes consecutive clean probes.
	Quarantines              uint64 `json:"quarantines"`
	FalsePositiveQuarantines uint64 `json:"false_positive_quarantines"`
	Reinstatements           uint64 `json:"reinstatements"`
	// Probes counts probation test vectors, CleanProbes the ones that
	// passed.
	Probes      uint64 `json:"probes"`
	CleanProbes uint64 `json:"clean_probes"`
}

// Add accumulates other into s.
func (s *Stats) Add(other Stats) {
	s.FaultedExecs += other.FaultedExecs
	s.CheckedExecs += other.CheckedExecs
	s.DetectedFaults += other.DetectedFaults
	s.SilentEscapes += other.SilentEscapes
	s.Retries += other.Retries
	s.RetrySuccesses += other.RetrySuccesses
	s.GPPBackoffs += other.GPPBackoffs
	s.Quarantines += other.Quarantines
	s.FalsePositiveQuarantines += other.FalsePositiveQuarantines
	s.Reinstatements += other.Reinstatements
	s.Probes += other.Probes
	s.CleanProbes += other.CleanProbes
}

// Sub returns s minus other, for delta accounting across epochs.
func (s Stats) Sub(other Stats) Stats {
	return Stats{
		FaultedExecs:             s.FaultedExecs - other.FaultedExecs,
		CheckedExecs:             s.CheckedExecs - other.CheckedExecs,
		DetectedFaults:           s.DetectedFaults - other.DetectedFaults,
		SilentEscapes:            s.SilentEscapes - other.SilentEscapes,
		Retries:                  s.Retries - other.Retries,
		RetrySuccesses:           s.RetrySuccesses - other.RetrySuccesses,
		GPPBackoffs:              s.GPPBackoffs - other.GPPBackoffs,
		Quarantines:              s.Quarantines - other.Quarantines,
		FalsePositiveQuarantines: s.FalsePositiveQuarantines - other.FalsePositiveQuarantines,
		Reinstatements:           s.Reinstatements - other.Reinstatements,
		Probes:                   s.Probes - other.Probes,
		CleanProbes:              s.CleanProbes - other.CleanProbes,
	}
}

// EventKind labels a quarantine-state transition.
type EventKind int

// Event kinds.
const (
	Quarantine EventKind = iota
	Reinstate
)

// Event is one quarantine-state transition, drained by the lifetime
// simulator after each simulated epoch so it can cross-reference the
// runtime's belief against ground truth (detection latency, false
// positives).
type Event struct {
	Kind EventKind
	Cell fabric.Cell
	// TruthDead snapshots ground truth at the event: a Quarantine with
	// TruthDead is a genuine detection, without it a false positive.
	TruthDead bool
}

// PRNG streams; distinct draws at the same (epoch, cell, counter) key must
// use distinct streams.
const (
	streamExec uint64 = iota + 1
	streamProbe
)

// Monitor is the per-scenario fault-injection and recovery state machine.
// It is owned by one simulated fabric instance (like Health and Wear) and
// is not safe for concurrent use; scenario sweeps give every scenario its
// own Monitor.
type Monitor struct {
	geom     fabric.Geometry
	policy   Policy
	seed     uint64
	truth    *fabric.Health
	faults   *fabric.Faults
	observed *fabric.Health

	epoch      int
	execDraws  []uint64 // per-cell draw counters, reset each epoch
	checkPhase uint64   // offload sampling phase, reset each epoch

	suspect    []int // detected faults per cell since last reset
	streak     []int // consecutive clean probes per quarantined cell
	distrusted bool  // fail-stop latch

	version uint64
	stats   Stats
	events  []Event
	search  searchcost.Counts
}

// NewMonitor builds a monitor over the scenario's ground-truth maps. The
// observed health map starts all-alive — a factory-fresh belief — even when
// truth already has dead cells: with no oracle, pre-existing failures are
// discovered the same way new ones are, through detection. faults may be
// nil (recovery without intermittent faults: only hard deaths manifest,
// with per-execution probability one).
func NewMonitor(g fabric.Geometry, p Policy, truth *fabric.Health, faults *fabric.Faults, seed uint64) *Monitor {
	p.ApplyDefaults()
	n := g.NumFUs()
	return &Monitor{
		geom:      g,
		policy:    p,
		seed:      seed,
		truth:     truth,
		faults:    faults,
		observed:  fabric.NewHealth(g),
		execDraws: make([]uint64, n),
		suspect:   make([]int, n),
		streak:    make([]int, n),
	}
}

// Policy returns the active (defaults-applied) policy.
func (m *Monitor) Policy() Policy { return m.policy }

// Observed is the runtime's health belief: the map the placement stack
// consumes instead of ground truth. Quarantines Kill it, reinstatements
// Revive it, and its version moves accordingly, so placement caches keyed
// on health versions stay correct.
func (m *Monitor) Observed() *fabric.Health { return m.observed }

// FabricDistrusted reports the fail-stop latch: once set, every offload
// routes to the GPP.
func (m *Monitor) FabricDistrusted() bool { return m.distrusted }

// MaxRetries exposes the retry bound to the engine's offload loop.
func (m *Monitor) MaxRetries() int { return m.policy.MaxRetries }

// Version covers exactly the cross-epoch-persistent observable state:
// observed health, suspect counters, probation streaks and the fail-stop
// latch. Per-epoch draw counters and the Stats counters are excluded, so an
// epoch whose activity changed no persistent state leaves the version
// untouched and the lifetime memo can replay it.
func (m *Monitor) Version() uint64 { return m.version }

// Stats returns the cumulative activity counters.
func (m *Monitor) Stats() Stats { return m.stats }

// SearchCounts implements searchcost.Instrumented: the checker, retry and
// probe work, priced by the derived cost model alongside the placement and
// shape searches.
func (m *Monitor) SearchCounts() searchcost.Counts { return m.search }

// TakeEvents drains the quarantine-state transitions recorded since the
// last call.
func (m *Monitor) TakeEvents() []Event {
	ev := m.events
	m.events = nil
	return ev
}

// BeginEpoch resets the per-epoch PRNG counters and sampling phase and
// keys subsequent draws on the epoch index. The lifetime simulator calls it
// before every simulated (non-replayed) epoch.
func (m *Monitor) BeginEpoch(epoch int) {
	m.epoch = epoch
	for i := range m.execDraws {
		m.execDraws[i] = 0
	}
	m.checkPhase = 0
}

// mix64 is the splitmix64 finalizer: a bijective avalanche over uint64.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// uniform draws a deterministic value in [0, 1) keyed on the scenario seed,
// the current epoch, the stream, the cell index and the draw counter.
func (m *Monitor) uniform(stream, cell, draw uint64) float64 {
	h := mix64(m.seed ^ (uint64(m.epoch)+1)*0x9e3779b97f4a7c15)
	h = mix64(h ^ (stream+1)*0xc2b2ae3d27d4eb4f)
	h = mix64(h ^ (cell+1)*0x165667b19e3779f9)
	h = mix64(h ^ (draw+1)*0xd6e8feb86659fd93)
	return float64(h>>11) / (1 << 53)
}

// DrawExec decides whether one fabric execution occupying the given virtual
// cells (shifted by off) manifests a fault: ground-truth-dead cells fault
// deterministically — this is how the runtime discovers deaths without an
// oracle — and live cells fault with their intermittent probability.
func (m *Monitor) DrawExec(cells []fabric.Cell, off fabric.Offset) bool {
	faulted := false
	for _, c := range cells {
		p := off.Apply(c, m.geom)
		if m.truth.Dead(p) {
			faulted = true
			continue
		}
		if m.faults == nil || !m.faults.Risky() {
			continue
		}
		pr := m.faults.At(p)
		if pr <= 0 {
			continue
		}
		i := p.Row*m.geom.Cols + p.Col
		draw := m.execDraws[i]
		m.execDraws[i]++
		if m.uniform(streamExec, uint64(i), draw) < pr {
			faulted = true
		}
	}
	if faulted {
		m.stats.FaultedExecs++
	}
	return faulted
}

// SampleCheck advances the sampling phase and reports whether this offload
// is verified against the GPP reference (every CheckEvery-th offload,
// starting with the first of each epoch).
func (m *Monitor) SampleCheck() bool {
	m.checkPhase++
	if m.policy.CheckEvery <= 1 {
		return true
	}
	return m.checkPhase%uint64(m.policy.CheckEvery) == 1
}

// PriceCheck accounts one verification of n instructions: the event counts
// the derived cost model prices as checker work.
func (m *Monitor) PriceCheck(n int) {
	m.stats.CheckedExecs++
	m.search.CheckerRuns++
	m.search.CheckerInstrs += uint64(n)
}

// RecordEscape counts a faulty execution that was not sampled for
// verification: a silent corruption committed to architectural state.
func (m *Monitor) RecordEscape() { m.stats.SilentEscapes++ }

// RecordRetry accounts one on-fabric re-execution of duration fabric
// cycles after a detection.
func (m *Monitor) RecordRetry(duration uint64) {
	m.stats.Retries++
	m.search.RetryExecs++
	m.search.RetryCycles += duration
}

// RecordRetrySuccess counts a retry whose verification came back clean.
func (m *Monitor) RecordRetrySuccess() { m.stats.RetrySuccesses++ }

// RecordBackoff counts an offload abandoned to the GPP after MaxRetries.
func (m *Monitor) RecordBackoff() { m.stats.GPPBackoffs++ }

// RecordDetection processes one verified-faulty execution: the checker
// cannot localise the corruption, so every cell of the footprint is blamed
// — whole-footprint suspicion is what creates the false positives probation
// later recovers. Cells crossing QuarantineAfter are killed in the observed
// map; under FailStop the whole fabric is distrusted instead.
func (m *Monitor) RecordDetection(cells []fabric.Cell, off fabric.Offset) {
	m.stats.DetectedFaults++
	if m.policy.FailStop {
		if !m.distrusted {
			m.distrusted = true
			m.version++
		}
		return
	}
	for _, c := range cells {
		p := off.Apply(c, m.geom)
		if m.observed.Dead(p) {
			continue
		}
		i := p.Row*m.geom.Cols + p.Col
		m.suspect[i]++
		m.version++
		if m.suspect[i] >= m.policy.QuarantineAfter {
			m.observed.Kill(p)
			m.streak[i] = 0
			m.stats.Quarantines++
			truthDead := m.truth.Dead(p)
			if !truthDead {
				m.stats.FalsePositiveQuarantines++
			}
			m.events = append(m.events, Event{Kind: Quarantine, Cell: p, TruthDead: truthDead})
			m.version++
		}
	}
}

// ProbeQuarantined runs each quarantined cell's probation test vectors for
// the epoch, in row-major order for determinism: ProbesPerEpoch draws per
// cell, a faulty probe resets the clean streak, and ProbationProbes
// consecutive clean probes reinstate the cell (Revive in the observed map,
// suspicion cleared). Ground-truth-dead cells always probe faulty, so only
// false positives can earn their way back. The lifetime simulator calls
// this after each simulated epoch's workload mix.
func (m *Monitor) ProbeQuarantined() {
	if m.distrusted {
		return
	}
	for r := 0; r < m.geom.Rows; r++ {
		for c := 0; c < m.geom.Cols; c++ {
			cell := fabric.Cell{Row: r, Col: c}
			if !m.observed.Dead(cell) {
				continue
			}
			i := r*m.geom.Cols + c
			for j := 0; j < m.policy.ProbesPerEpoch; j++ {
				m.stats.Probes++
				m.search.RecoveryProbes++
				faulty := m.truth.Dead(cell)
				if !faulty && m.faults != nil {
					if pr := m.faults.At(cell); pr > 0 &&
						m.uniform(streamProbe, uint64(i), uint64(j)) < pr {
						faulty = true
					}
				}
				if faulty {
					if m.streak[i] != 0 {
						m.streak[i] = 0
						m.version++
					}
					continue
				}
				m.stats.CleanProbes++
				m.streak[i]++
				m.version++
				if m.streak[i] >= m.policy.ProbationProbes {
					m.observed.Revive(cell)
					m.suspect[i] = 0
					m.streak[i] = 0
					m.stats.Reinstatements++
					m.events = append(m.events, Event{Kind: Reinstate, Cell: cell, TruthDead: false})
					break
				}
			}
		}
	}
}
