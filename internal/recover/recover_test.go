package recover

import (
	"testing"

	"agingcgra/internal/fabric"
)

func TestPolicyDefaultsAndValidate(t *testing.T) {
	var p Policy
	p.ApplyDefaults()
	want := Policy{CheckEvery: 4, MaxRetries: 2, QuarantineAfter: 3, ProbationProbes: 8, ProbesPerEpoch: 4}
	if p != want {
		t.Errorf("defaults %+v, want %+v", p, want)
	}
	if err := p.Validate(); err != nil {
		t.Errorf("defaults should validate: %v", err)
	}
	bad := Policy{CheckEvery: -1}
	if err := bad.Validate(); err == nil {
		t.Error("negative knob should fail validation")
	}
}

func TestDrawExecDeterministicAndHardDeathsAlwaysFault(t *testing.T) {
	g := fabric.NewGeometry(2, 4)
	truth := fabric.NewHealth(g)
	truth.Kill(fabric.Cell{Row: 0, Col: 1})
	faults := fabric.NewFaults(g)
	faults.Set(fabric.Cell{Row: 1, Col: 2}, 0.5)

	run := func() []bool {
		m := NewMonitor(g, Policy{}, truth, faults, 7)
		m.BeginEpoch(3)
		var out []bool
		dead := []fabric.Cell{{Row: 0, Col: 1}}
		risky := []fabric.Cell{{Row: 1, Col: 2}}
		clean := []fabric.Cell{{Row: 1, Col: 0}}
		for i := 0; i < 16; i++ {
			out = append(out, m.DrawExec(dead, fabric.Offset{}))
			out = append(out, m.DrawExec(risky, fabric.Offset{}))
			out = append(out, m.DrawExec(clean, fabric.Offset{}))
		}
		return out
	}
	a, b := run(), run()
	anyRisky, anyCleanRisky := false, false
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("draw %d differs between identical monitors", i)
		}
		switch i % 3 {
		case 0:
			if !a[i] {
				t.Fatalf("draw %d: ground-truth-dead footprint must always fault", i)
			}
		case 1:
			if a[i] {
				anyRisky = true
			}
		case 2:
			if a[i] {
				anyCleanRisky = true
			}
		}
	}
	if !anyRisky {
		t.Error("a 0.5-probability cell should fault at least once in 16 draws")
	}
	if anyCleanRisky {
		t.Error("a zero-probability live cell must never fault")
	}
}

func TestDrawExecKeyedOnEpochAndSeed(t *testing.T) {
	g := fabric.NewGeometry(2, 4)
	truth := fabric.NewHealth(g)
	faults := fabric.NewFaults(g)
	faults.Set(fabric.Cell{Row: 0, Col: 0}, 0.5)
	cells := []fabric.Cell{{Row: 0, Col: 0}}

	draws := func(seed uint64, epoch int) []bool {
		m := NewMonitor(g, Policy{}, truth, faults, seed)
		m.BeginEpoch(epoch)
		var out []bool
		for i := 0; i < 32; i++ {
			out = append(out, m.DrawExec(cells, fabric.Offset{}))
		}
		return out
	}
	same := func(a, b []bool) bool {
		for i := range a {
			if a[i] != b[i] {
				return false
			}
		}
		return true
	}
	if same(draws(1, 0), draws(1, 1)) {
		t.Error("different epochs should decorrelate the draw sequence")
	}
	if same(draws(1, 0), draws(2, 0)) {
		t.Error("different seeds should decorrelate the draw sequence")
	}
}

func TestSampleCheckCadence(t *testing.T) {
	g := fabric.NewGeometry(2, 4)
	m := NewMonitor(g, Policy{CheckEvery: 3}, fabric.NewHealth(g), nil, 1)
	m.BeginEpoch(0)
	var got []bool
	for i := 0; i < 7; i++ {
		got = append(got, m.SampleCheck())
	}
	want := []bool{true, false, false, true, false, false, true}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("SampleCheck cadence %v, want %v", got, want)
		}
	}
	all := NewMonitor(g, Policy{CheckEvery: 1}, fabric.NewHealth(g), nil, 1)
	all.BeginEpoch(0)
	for i := 0; i < 5; i++ {
		if !all.SampleCheck() {
			t.Fatal("CheckEvery=1 must verify every offload")
		}
	}
}

func TestRecordDetectionQuarantinesAtThreshold(t *testing.T) {
	g := fabric.NewGeometry(2, 4)
	truth := fabric.NewHealth(g)
	deadCell := fabric.Cell{Row: 0, Col: 0}
	liveCell := fabric.Cell{Row: 0, Col: 1}
	truth.Kill(deadCell)
	m := NewMonitor(g, Policy{QuarantineAfter: 3}, truth, nil, 1)
	m.BeginEpoch(0)

	foot := []fabric.Cell{deadCell, liveCell}
	for i := 0; i < 2; i++ {
		m.RecordDetection(foot, fabric.Offset{})
		if m.Observed().DeadCount() != 0 {
			t.Fatalf("quarantine before threshold (detection %d)", i+1)
		}
	}
	m.RecordDetection(foot, fabric.Offset{})
	if m.Observed().DeadCount() != 2 {
		t.Fatalf("both footprint cells should be quarantined at threshold, got %d", m.Observed().DeadCount())
	}
	st := m.Stats()
	if st.Quarantines != 2 || st.FalsePositiveQuarantines != 1 {
		t.Errorf("quarantines=%d fp=%d, want 2/1 (live cell blamed alongside the dead one)",
			st.Quarantines, st.FalsePositiveQuarantines)
	}
	ev := m.TakeEvents()
	if len(ev) != 2 {
		t.Fatalf("%d events, want 2", len(ev))
	}
	for _, e := range ev {
		if e.Kind != Quarantine {
			t.Errorf("event kind %v, want Quarantine", e.Kind)
		}
		if e.Cell == deadCell && !e.TruthDead {
			t.Error("dead cell's quarantine should be marked TruthDead")
		}
		if e.Cell == liveCell && e.TruthDead {
			t.Error("live cell's quarantine must not be marked TruthDead")
		}
	}
	if len(m.TakeEvents()) != 0 {
		t.Error("TakeEvents must drain")
	}
	// Further detections on an already-quarantined footprint are counted but
	// do not re-quarantine.
	m.RecordDetection(foot, fabric.Offset{})
	if m.Stats().Quarantines != 2 {
		t.Error("re-detection on quarantined cells must not double-quarantine")
	}
}

func TestProbationReinstatesOnlyFalsePositives(t *testing.T) {
	g := fabric.NewGeometry(2, 4)
	truth := fabric.NewHealth(g)
	deadCell := fabric.Cell{Row: 0, Col: 0}
	liveCell := fabric.Cell{Row: 1, Col: 3}
	truth.Kill(deadCell)
	// No intermittent faults: live-cell probes are always clean, so the
	// false positive reinstates after ceil(ProbationProbes/ProbesPerEpoch)
	// epochs while the truth-dead cell stays quarantined forever.
	m := NewMonitor(g, Policy{QuarantineAfter: 1, ProbationProbes: 8, ProbesPerEpoch: 4}, truth, nil, 1)
	m.BeginEpoch(0)
	m.RecordDetection([]fabric.Cell{deadCell, liveCell}, fabric.Offset{})
	if m.Observed().DeadCount() != 2 {
		t.Fatalf("observed dead %d, want 2", m.Observed().DeadCount())
	}
	m.TakeEvents()

	m.ProbeQuarantined() // streak 4
	if m.Observed().Dead(liveCell) != true {
		t.Fatal("reinstated before ProbationProbes clean probes")
	}
	m.BeginEpoch(1)
	m.ProbeQuarantined() // streak 8 -> reinstate
	if m.Observed().Dead(liveCell) {
		t.Error("false positive should be reinstated after 8 clean probes")
	}
	if !m.Observed().Dead(deadCell) {
		t.Error("ground-truth-dead cell must never be reinstated")
	}
	st := m.Stats()
	if st.Reinstatements != 1 {
		t.Errorf("reinstatements=%d, want 1", st.Reinstatements)
	}
	ev := m.TakeEvents()
	if len(ev) != 1 || ev[0].Kind != Reinstate || ev[0].Cell != liveCell {
		t.Errorf("events %+v, want one Reinstate of %v", ev, liveCell)
	}
	// Probe accounting: 2 cells × 4 probes in epoch 0; in epoch 1 the live
	// cell reinstates on its 4th probe and the dead cell burns 4 more.
	if st.Probes != 16 {
		t.Errorf("probes=%d, want 16", st.Probes)
	}
	if m.SearchCounts().RecoveryProbes != st.Probes {
		t.Error("search-cost probe count must match stats")
	}
}

func TestFailStopLatch(t *testing.T) {
	g := fabric.NewGeometry(2, 4)
	truth := fabric.NewHealth(g)
	m := NewMonitor(g, Policy{FailStop: true}, truth, nil, 1)
	m.BeginEpoch(0)
	if m.FabricDistrusted() {
		t.Fatal("fresh monitor must trust the fabric")
	}
	v0 := m.Version()
	m.RecordDetection([]fabric.Cell{{Row: 0, Col: 0}}, fabric.Offset{})
	if !m.FabricDistrusted() {
		t.Fatal("first detection under FailStop must latch distrust")
	}
	if m.Version() == v0 {
		t.Error("latching must bump the version")
	}
	if m.Observed().DeadCount() != 0 {
		t.Error("FailStop must not quarantine individual cells")
	}
	v1 := m.Version()
	m.RecordDetection([]fabric.Cell{{Row: 0, Col: 1}}, fabric.Offset{})
	if m.Version() != v1 {
		t.Error("re-latching must not move the version (memo stasis)")
	}
	m.ProbeQuarantined()
	if m.Stats().Probes != 0 {
		t.Error("a distrusted fabric must not be probed")
	}
}

// TestVersionExcludesPerEpochAndStatState pins the memo contract: draws,
// sampling phase and stats move without touching Version; only persistent
// observable state (suspects, quarantine, streaks, the latch) moves it.
func TestVersionExcludesPerEpochAndStatState(t *testing.T) {
	g := fabric.NewGeometry(2, 4)
	truth := fabric.NewHealth(g)
	faults := fabric.NewFaults(g)
	faults.Set(fabric.Cell{Row: 0, Col: 0}, 0.5)
	m := NewMonitor(g, Policy{}, truth, faults, 1)
	m.BeginEpoch(0)
	v := m.Version()
	cells := []fabric.Cell{{Row: 0, Col: 0}}
	for i := 0; i < 8; i++ {
		m.DrawExec(cells, fabric.Offset{})
		m.SampleCheck()
	}
	m.PriceCheck(100)
	m.RecordEscape()
	m.RecordRetry(32)
	m.RecordRetrySuccess()
	m.RecordBackoff()
	m.BeginEpoch(1)
	if m.Version() != v {
		t.Error("draws, sampling, pricing and stats must not move Version")
	}
	m.RecordDetection(cells, fabric.Offset{})
	if m.Version() == v {
		t.Error("a suspicion increment must move Version")
	}
}
