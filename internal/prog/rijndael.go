package prog

import (
	"crypto/aes"
	"encoding/binary"
	"fmt"

	"agingcgra/internal/gpp"
)

func rijndaelBlocks(sz Size) int {
	switch sz {
	case Tiny:
		return 6
	case Large:
		return 512
	default:
		return 72
	}
}

// aesSbox is the standard AES S-box.
var aesSbox = [256]byte{
	0x63, 0x7c, 0x77, 0x7b, 0xf2, 0x6b, 0x6f, 0xc5, 0x30, 0x01, 0x67, 0x2b, 0xfe, 0xd7, 0xab, 0x76,
	0xca, 0x82, 0xc9, 0x7d, 0xfa, 0x59, 0x47, 0xf0, 0xad, 0xd4, 0xa2, 0xaf, 0x9c, 0xa4, 0x72, 0xc0,
	0xb7, 0xfd, 0x93, 0x26, 0x36, 0x3f, 0xf7, 0xcc, 0x34, 0xa5, 0xe5, 0xf1, 0x71, 0xd8, 0x31, 0x15,
	0x04, 0xc7, 0x23, 0xc3, 0x18, 0x96, 0x05, 0x9a, 0x07, 0x12, 0x80, 0xe2, 0xeb, 0x27, 0xb2, 0x75,
	0x09, 0x83, 0x2c, 0x1a, 0x1b, 0x6e, 0x5a, 0xa0, 0x52, 0x3b, 0xd6, 0xb3, 0x29, 0xe3, 0x2f, 0x84,
	0x53, 0xd1, 0x00, 0xed, 0x20, 0xfc, 0xb1, 0x5b, 0x6a, 0xcb, 0xbe, 0x39, 0x4a, 0x4c, 0x58, 0xcf,
	0xd0, 0xef, 0xaa, 0xfb, 0x43, 0x4d, 0x33, 0x85, 0x45, 0xf9, 0x02, 0x7f, 0x50, 0x3c, 0x9f, 0xa8,
	0x51, 0xa3, 0x40, 0x8f, 0x92, 0x9d, 0x38, 0xf5, 0xbc, 0xb6, 0xda, 0x21, 0x10, 0xff, 0xf3, 0xd2,
	0xcd, 0x0c, 0x13, 0xec, 0x5f, 0x97, 0x44, 0x17, 0xc4, 0xa7, 0x7e, 0x3d, 0x64, 0x5d, 0x19, 0x73,
	0x60, 0x81, 0x4f, 0xdc, 0x22, 0x2a, 0x90, 0x88, 0x46, 0xee, 0xb8, 0x14, 0xde, 0x5e, 0x0b, 0xdb,
	0xe0, 0x32, 0x3a, 0x0a, 0x49, 0x06, 0x24, 0x5c, 0xc2, 0xd3, 0xac, 0x62, 0x91, 0x95, 0xe4, 0x79,
	0xe7, 0xc8, 0x37, 0x6d, 0x8d, 0xd5, 0x4e, 0xa9, 0x6c, 0x56, 0xf4, 0xea, 0x65, 0x7a, 0xae, 0x08,
	0xba, 0x78, 0x25, 0x2e, 0x1c, 0xa6, 0xb4, 0xc6, 0xe8, 0xdd, 0x74, 0x1f, 0x4b, 0xbd, 0x8b, 0x8a,
	0x70, 0x3e, 0xb5, 0x66, 0x48, 0x03, 0xf6, 0x0e, 0x61, 0x35, 0x57, 0xb9, 0x86, 0xc1, 0x1d, 0x9e,
	0xe1, 0xf8, 0x98, 0x11, 0x69, 0xd9, 0x8e, 0x94, 0x9b, 0x1e, 0x87, 0xe9, 0xce, 0x55, 0x28, 0xdf,
	0x8c, 0xa1, 0x89, 0x0d, 0xbf, 0xe6, 0x42, 0x68, 0x41, 0x99, 0x2d, 0x0f, 0xb0, 0x54, 0xbb, 0x16,
}

// aesKey is the fixed benchmark key (MiBench rijndael also uses a fixed
// key from its command line).
var aesKey = []byte{
	0x2b, 0x7e, 0x15, 0x16, 0x28, 0xae, 0xd2, 0xa6,
	0xab, 0xf7, 0x15, 0x88, 0x09, 0xcf, 0x4f, 0x3c,
}

func xtime(b byte) byte {
	if b&0x80 != 0 {
		return b<<1 ^ 0x1b
	}
	return b << 1
}

// aesExpandKey produces the 176-byte AES-128 round-key schedule. The key
// schedule runs once per file in MiBench, so the harness precomputes it;
// the kernel performs the per-block rounds.
func aesExpandKey(key []byte) []byte {
	rk := make([]byte, 176)
	copy(rk, key)
	rcon := byte(1)
	for i := 16; i < 176; i += 4 {
		t := [4]byte{rk[i-4], rk[i-3], rk[i-2], rk[i-1]}
		if i%16 == 0 {
			t = [4]byte{
				aesSbox[t[1]] ^ rcon,
				aesSbox[t[2]],
				aesSbox[t[3]],
				aesSbox[t[0]],
			}
			rcon = xtime(rcon)
		}
		for j := 0; j < 4; j++ {
			rk[i+j] = rk[i-16+j] ^ t[j]
		}
	}
	return rk
}

// aesShiftTab is the ShiftRows gather index table for the flat column-major
// state: out[r+4c] = in[r + 4*((c+r) mod 4)].
func aesShiftTab() []byte {
	tab := make([]byte, 16)
	for c := 0; c < 4; c++ {
		for r := 0; r < 4; r++ {
			tab[r+4*c] = byte(r + 4*((c+r)&3))
		}
	}
	return tab
}

const rijndaelSrc = `
# rijndael: AES-128 ECB encryption, byte-oriented (S-box, gather-table
# ShiftRows, xtime-based MixColumns), with precomputed round keys.
# Checksum folds the ciphertext words.
_start:
	la   s0, input
	la   s1, output
	la   s2, sbox
	la   s3, rkeys
	la   s4, shifttab
	la   s7, st
	la   s8, st2
	la   t0, params
	lw   s5, 0(t0)          # block count
	li   s6, 0
blk:
	li   t0, 0              # st = in ^ rk[0]
cp:
	add  t1, s0, t0
	lbu  t2, 0(t1)
	add  t3, s3, t0
	lbu  t4, 0(t3)
	xor  t2, t2, t4
	add  t3, s7, t0
	sb   t2, 0(t3)
	addi t0, t0, 1
	li   t1, 16
	blt  t0, t1, cp
	li   s9, 1              # rounds 1..9
rnd:
	li   t0, 0              # st2[i] = sbox[st[shifttab[i]]]
sr:
	add  t1, s4, t0
	lbu  t1, 0(t1)
	add  t1, s7, t1
	lbu  t1, 0(t1)
	add  t1, s2, t1
	lbu  t1, 0(t1)
	add  t2, s8, t0
	sb   t1, 0(t2)
	addi t0, t0, 1
	li   t1, 16
	blt  t0, t1, sr
	slli s10, s9, 4         # round key pointer
	add  s10, s10, s3
	li   t0, 0              # MixColumns + AddRoundKey, column by column
mix:
	add  t1, s8, t0
	lbu  t2, 0(t1)          # a
	lbu  t3, 1(t1)          # b
	lbu  t4, 2(t1)          # c
	lbu  t5, 3(t1)          # d
	xor  t6, t2, t3
	xor  a1, t4, t5
	xor  t6, t6, a1         # t = a^b^c^d
	add  a3, s7, t0
	add  a4, s10, t0
	xor  a1, t2, t3         # st[0] = a ^ t ^ xtime(a^b) ^ rk
	slli a1, a1, 1
	andi a2, a1, 256
	beqz a2, m0
	xori a1, a1, 0x11b
m0:
	andi a1, a1, 255
	xor  a1, a1, t2
	xor  a1, a1, t6
	lbu  a5, 0(a4)
	xor  a1, a1, a5
	sb   a1, 0(a3)
	xor  a1, t3, t4         # st[1] = b ^ t ^ xtime(b^c) ^ rk
	slli a1, a1, 1
	andi a2, a1, 256
	beqz a2, m1
	xori a1, a1, 0x11b
m1:
	andi a1, a1, 255
	xor  a1, a1, t3
	xor  a1, a1, t6
	lbu  a5, 1(a4)
	xor  a1, a1, a5
	sb   a1, 1(a3)
	xor  a1, t4, t5         # st[2] = c ^ t ^ xtime(c^d) ^ rk
	slli a1, a1, 1
	andi a2, a1, 256
	beqz a2, m2
	xori a1, a1, 0x11b
m2:
	andi a1, a1, 255
	xor  a1, a1, t4
	xor  a1, a1, t6
	lbu  a5, 2(a4)
	xor  a1, a1, a5
	sb   a1, 2(a3)
	xor  a1, t5, t2         # st[3] = d ^ t ^ xtime(d^a) ^ rk
	slli a1, a1, 1
	andi a2, a1, 256
	beqz a2, m3
	xori a1, a1, 0x11b
m3:
	andi a1, a1, 255
	xor  a1, a1, t5
	xor  a1, a1, t6
	lbu  a5, 3(a4)
	xor  a1, a1, a5
	sb   a1, 3(a3)
	addi t0, t0, 4
	li   t1, 16
	blt  t0, t1, mix
	addi s9, s9, 1
	li   t1, 10
	blt  s9, t1, rnd
	li   t0, 0              # final round: no MixColumns, straight to output
fr:
	add  t1, s4, t0
	lbu  t1, 0(t1)
	add  t1, s7, t1
	lbu  t1, 0(t1)
	add  t1, s2, t1
	lbu  t1, 0(t1)
	slli t2, s9, 4
	add  t2, t2, s3
	add  t2, t2, t0
	lbu  t2, 0(t2)
	xor  t1, t1, t2
	add  t2, s1, t0
	sb   t1, 0(t2)
	addi t0, t0, 1
	li   t2, 16
	blt  t0, t2, fr
	addi s0, s0, 16
	addi s1, s1, 16
	addi s6, s6, 1
	blt  s6, s5, blk
	la   s1, output         # checksum over ciphertext words
	la   t0, params
	lw   t1, 0(t0)
	slli t1, t1, 2
	li   t0, 0
	li   a0, 0
ck:
	slli t2, t0, 2
	add  t2, t2, s1
	lw   t3, 0(t2)
	add  a0, a0, t3
	xor  a0, a0, t0
	addi t0, t0, 1
	blt  t0, t1, ck
	ecall
`

func rijndaelPlaintext(sz Size) []byte {
	return newRNG(0xae5).bytes(rijndaelBlocks(sz) * 16)
}

func newRijndael() *Benchmark {
	l := newLayout()
	maxBytes := uint32(rijndaelBlocks(Large) * 16)
	l.alloc("params", 8)
	l.alloc("sbox", 256)
	l.alloc("shifttab", 16)
	l.alloc("rkeys", 176)
	l.alloc("st", 16)
	l.alloc("st2", 16)
	l.alloc("input", maxBytes)
	l.alloc("output", maxBytes)

	return register(&Benchmark{
		Name:        "rijndael",
		Description: "AES-128 ECB encryption (byte-oriented rounds)",
		Source:      rijndaelSrc,
		Symbols:     l.symbols,
		Setup: func(m *gpp.Memory, sz Size) error {
			if err := m.StoreWord(l.symbols["params"], uint32(rijndaelBlocks(sz))); err != nil {
				return err
			}
			if err := m.WriteBytes(l.symbols["sbox"], aesSbox[:]); err != nil {
				return err
			}
			if err := m.WriteBytes(l.symbols["shifttab"], aesShiftTab()); err != nil {
				return err
			}
			if err := m.WriteBytes(l.symbols["rkeys"], aesExpandKey(aesKey)); err != nil {
				return err
			}
			return m.WriteBytes(l.symbols["input"], rijndaelPlaintext(sz))
		},
		Check: func(m *gpp.Memory, result uint32, sz Size) error {
			blocks := rijndaelBlocks(sz)
			pt := rijndaelPlaintext(sz)
			c, err := aes.NewCipher(aesKey)
			if err != nil {
				return err
			}
			ct := make([]byte, len(pt))
			for b := 0; b < blocks; b++ {
				c.Encrypt(ct[b*16:(b+1)*16], pt[b*16:(b+1)*16])
			}
			var want uint32
			for i := 0; i < blocks*4; i++ {
				want += binary.LittleEndian.Uint32(ct[i*4:])
				want ^= uint32(i)
			}
			if result != want {
				return fmt.Errorf("rijndael checksum = %#x, want %#x", result, want)
			}
			// Ciphertext in memory must match crypto/aes exactly.
			got, err := m.ReadBytes(addrOf(l, "output"), blocks*16)
			if err != nil {
				return err
			}
			for i := range got {
				if got[i] != ct[i] {
					return fmt.Errorf("rijndael output[%d] = %#x, want %#x", i, got[i], ct[i])
				}
			}
			return nil
		},
		MaxInstructions: 100_000_000,
	})
}

var _ = newRijndael()
