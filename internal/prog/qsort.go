package prog

import (
	"fmt"
	"sort"

	"agingcgra/internal/gpp"
)

func qsortN(sz Size) int {
	switch sz {
	case Tiny:
		return 128
	case Large:
		return 16384
	default:
		return 2048
	}
}

const qsortSrc = `
# qsort: iterative Lomuto-partition quicksort over signed words, with the
# (lo,hi) work stack kept on the program stack, mirroring MiBench's qsort
# of numeric records. Checksum folds every element with its final index.
_start:
	la   s0, input
	la   t0, params
	lw   s1, 0(t0)          # N
	addi sp, sp, -8         # push (0, N-1)
	sw   zero, 0(sp)
	addi t1, s1, -1
	sw   t1, 4(sp)
	li   s2, 1              # work-stack depth
qs_loop:
	beqz s2, qs_done
	lw   a1, 0(sp)          # lo
	lw   a2, 4(sp)          # hi
	addi sp, sp, 8
	addi s2, s2, -1
	bge  a1, a2, qs_loop
	# --- partition, pivot = a[hi] ---
	slli t0, a2, 2
	add  t0, t0, s0
	lw   a3, 0(t0)          # pivot value
	mv   t1, a1             # i
	mv   t2, a1             # j
part:
	bge  t2, a2, part_done
	slli t3, t2, 2
	add  t3, t3, s0
	lw   t4, 0(t3)          # a[j]
	bge  t4, a3, part_next
	slli t5, t1, 2          # swap a[i], a[j]
	add  t5, t5, s0
	lw   t6, 0(t5)
	sw   t4, 0(t5)
	sw   t6, 0(t3)
	addi t1, t1, 1
part_next:
	addi t2, t2, 1
	j    part
part_done:
	slli t3, t1, 2          # swap a[i], a[hi]
	add  t3, t3, s0
	lw   t4, 0(t3)
	sw   a3, 0(t3)
	sw   t4, 0(t0)
	addi t5, t1, -1         # push (lo, i-1) if non-trivial
	ble  t5, a1, skip1
	addi sp, sp, -8
	sw   a1, 0(sp)
	sw   t5, 4(sp)
	addi s2, s2, 1
skip1:
	addi t5, t1, 1          # push (i+1, hi) if non-trivial
	bge  t5, a2, skip2
	addi sp, sp, -8
	sw   t5, 0(sp)
	sw   a2, 4(sp)
	addi s2, s2, 1
skip2:
	j    qs_loop
qs_done:
	li   t0, 0
	li   a0, 0
cksum:
	slli t1, t0, 2
	add  t1, t1, s0
	lw   t2, 0(t1)
	xor  t2, t2, t0
	add  a0, a0, t2
	addi t0, t0, 1
	blt  t0, s1, cksum
	ecall
`

func newQsort() *Benchmark {
	l := newLayout()
	l.alloc("params", 8)
	l.alloc("input", uint32(qsortN(Large))*4)

	gen := func(sz Size) []uint32 {
		return newRNG(0x9504f).words(qsortN(sz))
	}

	return register(&Benchmark{
		Name:        "qsort",
		Description: "iterative quicksort of signed words",
		Source:      qsortSrc,
		Symbols:     l.symbols,
		Setup: func(m *gpp.Memory, sz Size) error {
			if err := m.StoreWord(l.symbols["params"], uint32(qsortN(sz))); err != nil {
				return err
			}
			return m.WriteWords(l.symbols["input"], gen(sz))
		},
		Check: func(m *gpp.Memory, result uint32, sz Size) error {
			vals := gen(sz)
			sorted := make([]int32, len(vals))
			for i, v := range vals {
				sorted[i] = int32(v)
			}
			sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
			var want uint32
			for i, v := range sorted {
				want += uint32(v) ^ uint32(i)
			}
			if result != want {
				return fmt.Errorf("qsort checksum = %#x, want %#x", result, want)
			}
			// Stronger check: the array in memory must be exactly the
			// reference sort.
			got, err := m.ReadWords(addrOf(l, "input"), len(vals))
			if err != nil {
				return err
			}
			for i := range got {
				if int32(got[i]) != sorted[i] {
					return fmt.Errorf("qsort memory[%d] = %d, want %d", i, int32(got[i]), sorted[i])
				}
			}
			return nil
		},
		MaxInstructions: 50_000_000,
	})
}

// addrOf fetches a symbol address from a layout; panics on unknown symbols,
// which would be a programming error in the benchmark definition.
func addrOf(l *layout, name string) uint32 {
	a, ok := l.symbols[name]
	if !ok {
		panic(fmt.Sprintf("prog: unknown symbol %q", name))
	}
	return a
}

var _ = newQsort()
