package prog

// rng is a small deterministic xorshift32 generator. The suite must be
// bit-reproducible across runs and platforms, so it never touches
// math/rand's global state or any clock.
type rng struct {
	state uint32
}

func newRNG(seed uint32) *rng {
	if seed == 0 {
		seed = 0x9e3779b9
	}
	return &rng{state: seed}
}

// next returns the next 32-bit pseudo-random value.
func (r *rng) next() uint32 {
	x := r.state
	x ^= x << 13
	x ^= x >> 17
	x ^= x << 5
	r.state = x
	return x
}

// intn returns a value in [0, n).
func (r *rng) intn(n int) int {
	if n <= 0 {
		return 0
	}
	return int(r.next() % uint32(n))
}

// bytes fills a deterministic byte slice of length n.
func (r *rng) bytes(n int) []byte {
	out := make([]byte, n)
	for i := range out {
		out[i] = byte(r.next())
	}
	return out
}

// words fills a deterministic word slice of length n.
func (r *rng) words(n int) []uint32 {
	out := make([]uint32, n)
	for i := range out {
		out[i] = r.next()
	}
	return out
}
