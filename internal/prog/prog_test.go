package prog

import (
	"testing"

	"agingcgra/internal/gpp"
	"agingcgra/internal/isa"
)

func TestSuiteComplete(t *testing.T) {
	want := []string{
		"bitcount", "crc32", "dijkstra", "qsort", "rijndael",
		"sha", "stringsearch", "susan_corners", "susan_edges",
		"susan_smoothing",
	}
	got := Names()
	if len(got) != len(want) {
		t.Fatalf("suite has %d benchmarks (%v), want %d", len(got), got, len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("suite[%d] = %q, want %q", i, got[i], want[i])
		}
	}
}

func TestByName(t *testing.T) {
	b, ok := ByName("crc32")
	if !ok || b.Name != "crc32" {
		t.Fatal("ByName(crc32) failed")
	}
	if _, ok := ByName("nope"); ok {
		t.Fatal("ByName accepted unknown benchmark")
	}
}

func TestAllAssemble(t *testing.T) {
	for _, b := range All() {
		if _, err := b.Assemble(); err != nil {
			t.Errorf("%s: %v", b.Name, err)
		}
	}
}

// TestAllTiny functionally validates every kernel against its Go reference
// at the Tiny scale.
func TestAllTiny(t *testing.T) {
	for _, b := range All() {
		b := b
		t.Run(b.Name, func(t *testing.T) {
			sum, n, err := b.RunReference(Tiny)
			if err != nil {
				t.Fatal(err)
			}
			if n == 0 {
				t.Fatal("no instructions retired")
			}
			t.Logf("%s tiny: checksum %#x, %d dynamic instructions", b.Name, sum, n)
		})
	}
}

// TestAllSmall validates the experiment-scale inputs. This is the exact
// workload every figure and table in the reproduction runs on.
func TestAllSmall(t *testing.T) {
	if testing.Short() {
		t.Skip("small inputs take a few seconds; skipped with -short")
	}
	var total uint64
	for _, b := range All() {
		b := b
		t.Run(b.Name, func(t *testing.T) {
			sum, n, err := b.RunReference(Small)
			if err != nil {
				t.Fatal(err)
			}
			total += n
			t.Logf("%s small: checksum %#x, %d dynamic instructions", b.Name, sum, n)
		})
	}
}

// TestDeterminism runs a kernel twice and expects identical checksums and
// instruction counts; every experiment depends on this.
func TestDeterminism(t *testing.T) {
	b, _ := ByName("crc32")
	s1, n1, err := b.RunReference(Tiny)
	if err != nil {
		t.Fatal(err)
	}
	s2, n2, err := b.RunReference(Tiny)
	if err != nil {
		t.Fatal(err)
	}
	if s1 != s2 || n1 != n2 {
		t.Fatalf("non-deterministic run: (%#x,%d) vs (%#x,%d)", s1, n1, s2, n2)
	}
}

// TestInstructionMix sanity-checks that the suite exercises the instruction
// classes the CGRA cares about: loads, stores, branches, multiplies.
func TestInstructionMix(t *testing.T) {
	classes := make(map[isa.Class]uint64)
	for _, b := range All() {
		c, err := b.NewCore(Tiny)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := c.Run(b.MaxInstructions, func(r gpp.Retire) {
			classes[r.Inst.Op.Class()]++
		}); err != nil {
			t.Fatalf("%s: %v", b.Name, err)
		}
	}
	for _, cl := range []isa.Class{isa.ClassALU, isa.ClassLoad, isa.ClassStore, isa.ClassBranch, isa.ClassMul} {
		if classes[cl] == 0 {
			t.Errorf("suite never exercises class %d", cl)
		}
	}
	if classes[isa.ClassDiv] == 0 {
		t.Error("suite never exercises the divider (susan_smoothing should)")
	}
}

// TestSymbolsDoNotOverlapText ensures each benchmark's data region starts
// above the text segment.
func TestSymbolsDoNotOverlapText(t *testing.T) {
	for _, b := range All() {
		p, err := b.Assemble()
		if err != nil {
			t.Fatal(err)
		}
		textEnd := p.AddrOf(len(p.Text))
		for name, addr := range b.Symbols {
			if addr < textEnd {
				t.Errorf("%s: symbol %s at %#x overlaps text (ends %#x)",
					b.Name, name, addr, textEnd)
			}
		}
	}
}

func TestSizeString(t *testing.T) {
	if Tiny.String() != "tiny" || Small.String() != "small" || Large.String() != "large" {
		t.Error("Size.String wrong")
	}
	if Size(99).String() == "" {
		t.Error("unknown size should still format")
	}
}
