// Package prog provides the workload suite of the reproduction: the ten
// MiBench-style embedded kernels the paper evaluates (bitcount, CRC32,
// dijkstra, qsort, rijndael-e, sha, stringsearch and the three susan
// variants), hand-written for the RV32IM subset and paired with pure-Go
// reference implementations that validate the emulated results.
//
// Every benchmark follows the same contract: the assembly entry point is
// _start, inputs live at fixed data symbols written by Setup, and the kernel
// leaves a 32-bit checksum in a0 before executing ecall. Check recomputes
// the checksum with an independent Go implementation (or the standard
// library, where one exists) and may additionally inspect memory.
package prog

import (
	"fmt"
	"sort"
	"sync"

	"agingcgra/internal/gpp"
	"agingcgra/internal/isa"
)

// Size selects the input scale of a benchmark.
type Size int

const (
	// Tiny keeps dynamic instruction counts in the tens of thousands; used
	// by unit tests.
	Tiny Size = iota
	// Small mirrors MiBench's "small input set" and is the scale every
	// experiment in the paper reproduction runs at.
	Small
	// Large is several times Small, for stress runs.
	Large
)

func (s Size) String() string {
	switch s {
	case Tiny:
		return "tiny"
	case Small:
		return "small"
	case Large:
		return "large"
	}
	return fmt.Sprintf("size(%d)", int(s))
}

// Benchmark bundles one workload: assembly source, data layout, input
// setup and result validation.
type Benchmark struct {
	// Name is the MiBench-style identifier, e.g. "crc32".
	Name string
	// Description says what the kernel computes.
	Description string
	// Source is the RV32IM assembly, entry at _start, checksum in a0.
	Source string
	// Symbols maps the data symbols referenced by Source to addresses.
	Symbols map[string]uint32
	// Setup writes the input data (and any tables) into memory.
	Setup func(m *gpp.Memory, sz Size) error
	// Check validates the checksum the kernel left in a0, and optionally
	// memory contents, against an independent Go implementation.
	Check func(m *gpp.Memory, result uint32, sz Size) error
	// MaxInstructions bounds the run; exceeded means a kernel bug.
	MaxInstructions uint64

	asmOnce sync.Once
	prog    *isa.Program // cached assembly result
	asmErr  error
}

// Assemble returns the assembled program, caching the result. It is safe
// for concurrent use: parallel design-space sweeps assemble each benchmark
// exactly once.
func (b *Benchmark) Assemble() (*isa.Program, error) {
	b.asmOnce.Do(func() {
		p, err := isa.Assemble(b.Source, isa.AsmOptions{
			TextBase: gpp.TextBase,
			Symbols:  b.Symbols,
		})
		if err != nil {
			b.asmErr = fmt.Errorf("prog: assembling %s: %w", b.Name, err)
			return
		}
		b.prog = p
	})
	return b.prog, b.asmErr
}

// NewCore assembles the benchmark, builds a core and runs Setup for the
// given input size.
func (b *Benchmark) NewCore(sz Size) (*gpp.Core, error) {
	p, err := b.Assemble()
	if err != nil {
		return nil, err
	}
	c := gpp.New(p)
	if err := b.Setup(c.Mem, sz); err != nil {
		return nil, fmt.Errorf("prog: setup %s: %w", b.Name, err)
	}
	return c, nil
}

// RunReference executes the benchmark functionally on a plain core and
// validates the result. It returns the checksum and the dynamic instruction
// count.
func (b *Benchmark) RunReference(sz Size) (checksum uint32, dynamic uint64, err error) {
	c, err := b.NewCore(sz)
	if err != nil {
		return 0, 0, err
	}
	n, err := c.Run(b.MaxInstructions, nil)
	if err != nil {
		return 0, n, fmt.Errorf("prog: running %s: %w", b.Name, err)
	}
	result := c.Regs[isa.A0]
	if err := b.Check(c.Mem, result, sz); err != nil {
		return result, n, fmt.Errorf("prog: checking %s: %w", b.Name, err)
	}
	return result, n, nil
}

// registry holds all benchmarks in paper order.
var registry []*Benchmark

func register(b *Benchmark) *Benchmark {
	registry = append(registry, b)
	sort.SliceStable(registry, func(i, j int) bool {
		return suiteOrder(registry[i].Name) < suiteOrder(registry[j].Name)
	})
	return b
}

// suiteOrder fixes the paper's listing order (footnote 1).
func suiteOrder(name string) int {
	order := []string{
		"bitcount", "crc32", "dijkstra", "qsort", "rijndael",
		"sha", "stringsearch", "susan_corners", "susan_edges",
		"susan_smoothing",
	}
	for i, n := range order {
		if n == name {
			return i
		}
	}
	return len(order)
}

// All returns the full suite in paper order. The returned slice is fresh;
// the Benchmark pointers are shared.
func All() []*Benchmark {
	out := make([]*Benchmark, len(registry))
	copy(out, registry)
	return out
}

// ByName finds a benchmark by name.
func ByName(name string) (*Benchmark, bool) {
	for _, b := range registry {
		if b.Name == name {
			return b, true
		}
	}
	return nil, false
}

// Names returns the suite's benchmark names in paper order.
func Names() []string {
	out := make([]string, len(registry))
	for i, b := range registry {
		out[i] = b.Name
	}
	return out
}

// layout is a bump allocator for a benchmark's data segment.
type layout struct {
	next    uint32
	symbols map[string]uint32
}

func newLayout() *layout {
	return &layout{next: gpp.DataBase, symbols: make(map[string]uint32)}
}

// alloc reserves size bytes for name, 8-byte aligned.
func (l *layout) alloc(name string, size uint32) uint32 {
	addr := l.next
	l.symbols[name] = addr
	l.next += (size + 7) &^ 7
	return addr
}
