package prog

import (
	"bytes"
	"fmt"

	"agingcgra/internal/gpp"
)

// stringsearchDims returns (text length, pattern count) per size.
func stringsearchDims(sz Size) (n, pats int) {
	switch sz {
	case Tiny:
		return 768, 4
	case Large:
		return 32768, 16
	default:
		return 4096, 10
	}
}

const stringsearchSrc = `
# stringsearch: Boyer-Moore-Horspool search of several patterns over one
# text, as in MiBench's stringsearch (bmhsearch). For each pattern the
# kernel builds the 256-entry bad-character skip table, then scans.
# Checksum: sum over matches of (position + 1).
_start:
	la   s0, text
	la   s1, pats
	la   s2, plens
	la   s3, skip
	la   t0, params
	lw   s4, 0(t0)          # n = text length
	lw   s5, 4(t0)          # pattern count
	li   s6, 0              # pattern index
	li   s7, 0              # offset of pattern in pats
	li   a0, 0
pat_loop:
	slli t0, s6, 2
	add  t0, t0, s2
	lw   s8, 0(t0)          # m = len(pattern)
	li   t0, 0              # skip[*] = m
skinit:
	add  t1, s3, t0
	sb   s8, 0(t1)
	addi t0, t0, 1
	li   t2, 256
	blt  t0, t2, skinit
	add  s9, s1, s7         # pattern base
	li   t0, 0              # skip[pat[i]] = m-1-i for i < m-1
	addi t2, s8, -1
skbuild:
	bge  t0, t2, sksearch
	add  t1, s9, t0
	lbu  t1, 0(t1)
	add  t1, t1, s3
	sub  t3, t2, t0
	sb   t3, 0(t1)
	addi t0, t0, 1
	j    skbuild
sksearch:
	li   t0, 0              # window position i
	sub  t4, s4, s8         # last valid position
search:
	bgt  t0, t4, pat_done
	addi t5, s8, -1         # j = m-1, compare backwards
cmp:
	bltz t5, match
	add  t6, t0, t5
	add  t6, t6, s0
	lbu  t6, 0(t6)
	add  a1, s9, t5
	lbu  a1, 0(a1)
	bne  t6, a1, shift
	addi t5, t5, -1
	j    cmp
match:
	add  a0, a0, t0         # checksum += i + 1
	addi a0, a0, 1
shift:
	add  t6, t0, s8         # i += skip[text[i+m-1]]
	addi t6, t6, -1
	add  t6, t6, s0
	lbu  t6, 0(t6)
	add  t6, t6, s3
	lbu  t6, 0(t6)
	add  t0, t0, t6
	j    search
pat_done:
	add  s7, s7, s8
	addi s6, s6, 1
	blt  s6, s5, pat_loop
	ecall
`

// stringsearchText builds a text over a small alphabet so that partial
// matches (and hence interesting skip behaviour) are frequent.
func stringsearchText(sz Size) []byte {
	n, _ := stringsearchDims(sz)
	alphabet := []byte("abcdehlnorst ")
	r := newRNG(0x57215)
	text := make([]byte, n)
	for i := range text {
		text[i] = alphabet[r.intn(len(alphabet))]
	}
	return text
}

// stringsearchPatterns builds the pattern list: half sampled from the text
// (guaranteed hits), half random (mostly misses).
func stringsearchPatterns(sz Size) [][]byte {
	n, pats := stringsearchDims(sz)
	text := stringsearchText(sz)
	alphabet := []byte("abcdehlnorst ")
	r := newRNG(0x9a77e2)
	out := make([][]byte, 0, pats)
	for i := 0; i < pats; i++ {
		m := 3 + r.intn(6)
		if i%2 == 0 {
			start := r.intn(n - m)
			p := make([]byte, m)
			copy(p, text[start:start+m])
			out = append(out, p)
		} else {
			p := make([]byte, m)
			for j := range p {
				p[j] = alphabet[r.intn(len(alphabet))]
			}
			out = append(out, p)
		}
	}
	return out
}

func stringsearchRef(sz Size) uint32 {
	text := stringsearchText(sz)
	var sum uint32
	for _, pat := range stringsearchPatterns(sz) {
		for i := 0; i+len(pat) <= len(text); i++ {
			if bytes.Equal(text[i:i+len(pat)], pat) {
				sum += uint32(i) + 1
			}
		}
	}
	return sum
}

func newStringsearch() *Benchmark {
	l := newLayout()
	nMax, patsMax := stringsearchDims(Large)
	l.alloc("params", 8)
	l.alloc("skip", 256)
	l.alloc("plens", uint32(patsMax)*4)
	l.alloc("pats", uint32(patsMax)*16)
	l.alloc("text", uint32(nMax))

	return register(&Benchmark{
		Name:        "stringsearch",
		Description: "Boyer-Moore-Horspool multi-pattern text search",
		Source:      stringsearchSrc,
		Symbols:     l.symbols,
		Setup: func(m *gpp.Memory, sz Size) error {
			n, _ := stringsearchDims(sz)
			pats := stringsearchPatterns(sz)
			if err := m.StoreWord(l.symbols["params"], uint32(n)); err != nil {
				return err
			}
			if err := m.StoreWord(l.symbols["params"]+4, uint32(len(pats))); err != nil {
				return err
			}
			lens := make([]uint32, len(pats))
			var cat []byte
			for i, p := range pats {
				lens[i] = uint32(len(p))
				cat = append(cat, p...)
			}
			if err := m.WriteWords(l.symbols["plens"], lens); err != nil {
				return err
			}
			if err := m.WriteBytes(l.symbols["pats"], cat); err != nil {
				return err
			}
			return m.WriteBytes(l.symbols["text"], stringsearchText(sz))
		},
		Check: func(_ *gpp.Memory, result uint32, sz Size) error {
			if want := stringsearchRef(sz); result != want {
				return fmt.Errorf("stringsearch checksum = %d, want %d", result, want)
			}
			return nil
		},
		MaxInstructions: 50_000_000,
	})
}

var _ = newStringsearch()
