package prog

import (
	"fmt"
	"math"

	"agingcgra/internal/gpp"
)

// susanDims returns the image dimensions per size.
func susanDims(sz Size) (w, h int) {
	switch sz {
	case Tiny:
		return 24, 18
	case Large:
		return 96, 72
	default:
		return 48, 36
	}
}

// susanBorder is the border skipped by the circular mask.
const susanBorder = 3

// susanBrightnessThreshold is SUSAN's brightness difference threshold t.
const susanBrightnessThreshold = 20.0

// susanCornerThresholdOf and susanEdgeThresholdOf derive the geometric
// thresholds from the 37-pixel mask with similarity scaled to 0..100.
const (
	susanCornerThreshold = 37 * 100 / 2     // = 1850
	susanEdgeThreshold   = 37 * 100 * 3 / 4 // = 2775
)

// susanMaskOffsets returns the classic 37-pixel circular USAN mask as
// (dy, dx) pairs, row half-widths 1,2,3,3,3,2,1.
func susanMaskOffsets() [][2]int {
	halfWidths := []int{1, 2, 3, 3, 3, 2, 1}
	var out [][2]int
	for i, hw := range halfWidths {
		dy := i - 3
		for dx := -hw; dx <= hw; dx++ {
			out = append(out, [2]int{dy, dx})
		}
	}
	return out
}

// susanSimTable builds the 511-entry brightness similarity LUT
// sim[255+d] = round(100 * exp(-((d/t)^6))), the standard SUSAN form.
func susanSimTable() []byte {
	tab := make([]byte, 511)
	for i := range tab {
		d := float64(i - 255)
		x := d / susanBrightnessThreshold
		tab[i] = byte(math.Round(100 * math.Exp(-math.Pow(x, 6))))
	}
	return tab
}

// susanImage builds a deterministic grayscale test image: a smooth gradient
// with rectangles (corners and edges) plus mild noise.
func susanImage(sz Size) []byte {
	w, h := susanDims(sz)
	r := newRNG(0x5a5a ^ (0x1000 + uint32(w)))
	img := make([]byte, w*h)
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			v := 40 + (x*100)/w + (y*60)/h
			img[y*w+x] = byte(v)
		}
	}
	// Bright and dark rectangles create strong corners and edges.
	fill := func(x0, y0, x1, y1, val int) {
		for y := y0; y < y1 && y < h; y++ {
			for x := x0; x < x1 && x < w; x++ {
				img[y*w+x] = byte(val)
			}
		}
	}
	fill(w/6, h/6, w/2, h/2, 220)
	fill(w/2+2, h/3, w-w/6, h-h/4, 15)
	fill(w/3, h/2+3, w/3+w/4, h/2+3+h/5, 128)
	for i := range img {
		img[i] = byte(int(img[i]) + r.intn(7) - 3)
	}
	return img
}

// susanUSAN computes the USAN value (sum of similarity over the mask) for
// interior pixel p, shared by the Go references of corners and edges.
func susanUSAN(img []byte, w int, p int, offsets []int, sim []byte) int {
	c := int(img[p])
	n := 0
	for _, off := range offsets {
		q := int(img[p+off])
		n += int(sim[255+q-c])
	}
	return n
}

// susanLinearOffsets converts the (dy,dx) mask to linear pixel offsets for
// the given image width.
func susanLinearOffsets(w int) []int {
	mask := susanMaskOffsets()
	out := make([]int, len(mask))
	for i, m := range mask {
		out[i] = m[0]*w + m[1]
	}
	return out
}

// The corners and edges kernels share the USAN accumulation; they differ in
// the geometric threshold and response folding, like SUSAN's two detectors.
const susanCornersSrc = `
# susan_corners: USAN-based corner response. For each interior pixel,
# accumulate the brightness-similarity LUT over the 37-pixel circular mask;
# pixels whose USAN falls below the geometric threshold g contribute (g - n)
# to the checksum.
_start:
	la   s0, img
	la   s1, ofs            # 37 linear offsets (words)
	la   s2, simtab         # 511-byte similarity LUT, biased by 255
	la   t0, params
	lw   s3, 0(t0)          # width
	lw   s4, 4(t0)          # height
	lw   s5, 8(t0)          # threshold g
	li   a0, 0
	li   s6, 3              # y
yloop:
	addi t0, s4, -3
	bge  s6, t0, done
	li   s7, 3              # x
xloop:
	addi t0, s3, -3
	bge  s7, t0, ynext
	mul  t1, s6, s3         # p = y*w + x
	add  t1, t1, s7
	add  t2, t1, s0
	lbu  s9, 0(t2)          # c = img[p]
	li   s10, 0             # n = 0
	li   t3, 0              # k
mask:
	slli t4, t3, 2
	add  t4, t4, s1
	lw   t4, 0(t4)          # off[k]
	add  t4, t4, t1
	add  t4, t4, s0
	lbu  t4, 0(t4)          # q
	sub  t4, t4, s9
	addi t4, t4, 255
	add  t4, t4, s2
	lbu  t4, 0(t4)          # sim[255+q-c]
	add  s10, s10, t4
	addi t3, t3, 1
	li   t4, 37
	blt  t3, t4, mask
	bge  s10, s5, xnext     # not a corner
	sub  t4, s5, s10
	add  a0, a0, t4
xnext:
	addi s7, s7, 1
	j    xloop
ynext:
	addi s6, s6, 1
	j    yloop
done:
	ecall
`

const susanEdgesSrc = `
# susan_edges: USAN-based edge response. Same mask accumulation as the
# corner detector but with the higher edge threshold; each edge pixel adds
# its response plus a 2^16-weighted count to the checksum.
_start:
	la   s0, img
	la   s1, ofs
	la   s2, simtab
	la   t0, params
	lw   s3, 0(t0)          # width
	lw   s4, 4(t0)          # height
	lw   s5, 8(t0)          # threshold e
	li   a0, 0
	li   s6, 3
yloop:
	addi t0, s4, -3
	bge  s6, t0, done
	li   s7, 3
xloop:
	addi t0, s3, -3
	bge  s7, t0, ynext
	mul  t1, s6, s3
	add  t1, t1, s7
	add  t2, t1, s0
	lbu  s9, 0(t2)
	li   s10, 0
	li   t3, 0
mask:
	slli t4, t3, 2
	add  t4, t4, s1
	lw   t4, 0(t4)
	add  t4, t4, t1
	add  t4, t4, s0
	lbu  t4, 0(t4)
	sub  t4, t4, s9
	addi t4, t4, 255
	add  t4, t4, s2
	lbu  t4, 0(t4)
	add  s10, s10, t4
	addi t3, t3, 1
	li   t4, 37
	blt  t3, t4, mask
	bge  s10, s5, xnext
	sub  t4, s5, s10
	add  a0, a0, t4
	li   t4, 0x10000        # edge count in the high half
	add  a0, a0, t4
xnext:
	addi s7, s7, 1
	j    xloop
ynext:
	addi s6, s6, 1
	j    yloop
done:
	ecall
`

const susanSmoothingSrc = `
# susan_smoothing: 5x5 weighted smoothing with integer normalisation
# (multiply-accumulate plus divide), writing the smoothed interior image
# and folding it into the checksum.
_start:
	la   s0, img
	la   s1, out
	la   s2, ofs            # 25 linear offsets (words)
	la   s3, wtab           # 25 weights (bytes)
	la   t0, params
	lw   s4, 0(t0)          # width
	lw   s5, 4(t0)          # height
	lw   s6, 8(t0)          # weight sum
	li   a0, 0
	li   s7, 2              # y (border 2 for the 5x5 kernel)
yloop:
	addi t0, s5, -2
	bge  s7, t0, done
	li   s8, 2              # x
xloop:
	addi t0, s4, -2
	bge  s8, t0, ynext
	mul  t1, s7, s4         # p = y*w + x
	add  t1, t1, s8
	li   s10, 0             # acc
	li   t3, 0              # k
conv:
	slli t4, t3, 2
	add  t4, t4, s2
	lw   t4, 0(t4)          # off[k]
	add  t4, t4, t1
	add  t4, t4, s0
	lbu  t4, 0(t4)          # pixel
	add  t5, s3, t3
	lbu  t5, 0(t5)          # weight
	mul  t4, t4, t5
	add  s10, s10, t4
	addi t3, t3, 1
	li   t4, 25
	blt  t3, t4, conv
	divu s10, s10, s6       # normalise
	add  t4, t1, s1
	sb   s10, 0(t4)
	add  a0, a0, s10
	addi s8, s8, 1
	j    xloop
ynext:
	addi s7, s7, 1
	j    yloop
done:
	ecall
`

// susanSmoothWeights is the 5x5 integer kernel (binomial-like).
func susanSmoothWeights() ([]byte, uint32) {
	w := []byte{
		1, 2, 3, 2, 1,
		2, 4, 6, 4, 2,
		3, 6, 9, 6, 3,
		2, 4, 6, 4, 2,
		1, 2, 3, 2, 1,
	}
	var sum uint32
	for _, v := range w {
		sum += uint32(v)
	}
	return w, sum
}

func susan5x5Offsets(w int) []int {
	var out []int
	for dy := -2; dy <= 2; dy++ {
		for dx := -2; dx <= 2; dx++ {
			out = append(out, dy*w+dx)
		}
	}
	return out
}

// susanCornersRef / susanEdgesRef / susanSmoothingRef are the independent
// Go recomputations of each kernel's checksum.
func susanCornersRef(sz Size) uint32 {
	w, h := susanDims(sz)
	img := susanImage(sz)
	offs := susanLinearOffsets(w)
	sim := susanSimTable()
	var sum uint32
	for y := susanBorder; y < h-susanBorder; y++ {
		for x := susanBorder; x < w-susanBorder; x++ {
			n := susanUSAN(img, w, y*w+x, offs, sim)
			if n < susanCornerThreshold {
				sum += uint32(susanCornerThreshold - n)
			}
		}
	}
	return sum
}

func susanEdgesRef(sz Size) uint32 {
	w, h := susanDims(sz)
	img := susanImage(sz)
	offs := susanLinearOffsets(w)
	sim := susanSimTable()
	var sum uint32
	for y := susanBorder; y < h-susanBorder; y++ {
		for x := susanBorder; x < w-susanBorder; x++ {
			n := susanUSAN(img, w, y*w+x, offs, sim)
			if n < susanEdgeThreshold {
				sum += uint32(susanEdgeThreshold-n) + 0x10000
			}
		}
	}
	return sum
}

func susanSmoothingRef(sz Size) (uint32, []byte) {
	w, h := susanDims(sz)
	img := susanImage(sz)
	offs := susan5x5Offsets(w)
	weights, wsum := susanSmoothWeights()
	out := make([]byte, w*h)
	var sum uint32
	for y := 2; y < h-2; y++ {
		for x := 2; x < w-2; x++ {
			p := y*w + x
			var acc uint32
			for k, off := range offs {
				acc += uint32(img[p+off]) * uint32(weights[k])
			}
			v := acc / wsum
			out[p] = byte(v)
			sum += v
		}
	}
	return sum, out
}

func newSusanCommon(name, desc, src string, threshold uint32, ref func(Size) uint32) *Benchmark {
	l := newLayout()
	wMax, hMax := susanDims(Large)
	l.alloc("params", 16)
	l.alloc("simtab", 511)
	l.alloc("ofs", 37*4)
	l.alloc("img", uint32(wMax*hMax))

	return register(&Benchmark{
		Name:        name,
		Description: desc,
		Source:      src,
		Symbols:     l.symbols,
		Setup: func(m *gpp.Memory, sz Size) error {
			w, h := susanDims(sz)
			p := l.symbols["params"]
			for i, v := range []uint32{uint32(w), uint32(h), threshold} {
				if err := m.StoreWord(p+uint32(i)*4, v); err != nil {
					return err
				}
			}
			if err := m.WriteBytes(l.symbols["simtab"], susanSimTable()); err != nil {
				return err
			}
			offs := susanLinearOffsets(w)
			words := make([]uint32, len(offs))
			for i, o := range offs {
				words[i] = uint32(int32(o))
			}
			if err := m.WriteWords(l.symbols["ofs"], words); err != nil {
				return err
			}
			return m.WriteBytes(l.symbols["img"], susanImage(sz))
		},
		Check: func(_ *gpp.Memory, result uint32, sz Size) error {
			if want := ref(sz); result != want {
				return fmt.Errorf("%s checksum = %#x, want %#x", name, result, want)
			}
			return nil
		},
		MaxInstructions: 100_000_000,
	})
}

func newSusanSmoothing() *Benchmark {
	l := newLayout()
	wMax, hMax := susanDims(Large)
	l.alloc("params", 16)
	l.alloc("wtab", 32)
	l.alloc("ofs", 25*4)
	l.alloc("img", uint32(wMax*hMax))
	l.alloc("out", uint32(wMax*hMax))

	return register(&Benchmark{
		Name:        "susan_smoothing",
		Description: "5x5 weighted image smoothing with integer normalisation",
		Source:      susanSmoothingSrc,
		Symbols:     l.symbols,
		Setup: func(m *gpp.Memory, sz Size) error {
			w, h := susanDims(sz)
			weights, wsum := susanSmoothWeights()
			p := l.symbols["params"]
			for i, v := range []uint32{uint32(w), uint32(h), wsum} {
				if err := m.StoreWord(p+uint32(i)*4, v); err != nil {
					return err
				}
			}
			if err := m.WriteBytes(l.symbols["wtab"], weights); err != nil {
				return err
			}
			offs := susan5x5Offsets(w)
			words := make([]uint32, len(offs))
			for i, o := range offs {
				words[i] = uint32(int32(o))
			}
			if err := m.WriteWords(l.symbols["ofs"], words); err != nil {
				return err
			}
			return m.WriteBytes(l.symbols["img"], susanImage(sz))
		},
		Check: func(m *gpp.Memory, result uint32, sz Size) error {
			w, h := susanDims(sz)
			want, refOut := susanSmoothingRef(sz)
			if result != want {
				return fmt.Errorf("susan_smoothing checksum = %#x, want %#x", result, want)
			}
			got, err := m.ReadBytes(addrOf(l, "out"), w*h)
			if err != nil {
				return err
			}
			for y := 2; y < h-2; y++ {
				for x := 2; x < w-2; x++ {
					if got[y*w+x] != refOut[y*w+x] {
						return fmt.Errorf("susan_smoothing out[%d,%d] = %d, want %d",
							y, x, got[y*w+x], refOut[y*w+x])
					}
				}
			}
			return nil
		},
		MaxInstructions: 100_000_000,
	})
}

var (
	_ = newSusanCommon("susan_corners",
		"USAN circular-mask corner detection",
		susanCornersSrc, susanCornerThreshold, susanCornersRef)
	_ = newSusanCommon("susan_edges",
		"USAN circular-mask edge detection",
		susanEdgesSrc, susanEdgeThreshold, susanEdgesRef)
	_ = newSusanSmoothing()
)
