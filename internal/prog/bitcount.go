package prog

import (
	"fmt"
	"math/bits"

	"agingcgra/internal/gpp"
)

// bitcountN returns the number of input words per size.
func bitcountN(sz Size) int {
	switch sz {
	case Tiny:
		return 128
	case Large:
		return 16384
	default:
		return 3072
	}
}

const bitcountSrc = `
# bitcount: population count over an array of words using two of the
# classic methods from MiBench bitcnts: Kernighan clearing and a per-nibble
# lookup table. The checksum combines both totals (they must agree).
_start:
	la   s0, input
	la   t0, params
	lw   s1, 0(t0)          # N words
	la   s4, nibtab         # 16-byte nibble popcount table
	li   s2, 0              # kernighan total
	li   s3, 0              # table total
	li   t0, 0              # i
outer:
	slli t1, t0, 2
	add  t1, t1, s0
	lw   t2, 0(t1)          # x = input[i]
	mv   t3, t2
kern:
	beqz t3, kdone
	addi t4, t3, -1
	and  t3, t3, t4
	addi s2, s2, 1
	j    kern
kdone:
	mv   t3, t2
	li   t5, 8              # 8 nibbles
nib:
	andi t4, t3, 15
	add  t4, t4, s4
	lbu  t4, 0(t4)
	add  s3, s3, t4
	srli t3, t3, 4
	addi t5, t5, -1
	bnez t5, nib
	addi t0, t0, 1
	blt  t0, s1, outer
	# checksum = 31*kernighan + table
	slli a0, s2, 5
	sub  a0, a0, s2
	add  a0, a0, s3
	ecall
`

func newBitcount() *Benchmark {
	l := newLayout()
	l.alloc("params", 8)
	l.alloc("nibtab", 16)
	l.alloc("input", uint32(bitcountN(Large))*4)

	gen := func(sz Size) []uint32 {
		return newRNG(0x1bc0de).words(bitcountN(sz))
	}

	return register(&Benchmark{
		Name:        "bitcount",
		Description: "population count over a word array (Kernighan + nibble table)",
		Source:      bitcountSrc,
		Symbols:     l.symbols,
		Setup: func(m *gpp.Memory, sz Size) error {
			if err := m.StoreWord(l.symbols["params"], uint32(bitcountN(sz))); err != nil {
				return err
			}
			tab := make([]byte, 16)
			for i := range tab {
				tab[i] = byte(bits.OnesCount8(uint8(i)))
			}
			if err := m.WriteBytes(l.symbols["nibtab"], tab); err != nil {
				return err
			}
			return m.WriteWords(l.symbols["input"], gen(sz))
		},
		Check: func(_ *gpp.Memory, result uint32, sz Size) error {
			var total uint32
			for _, w := range gen(sz) {
				total += uint32(bits.OnesCount32(w))
			}
			want := 31*total + total
			if result != want {
				return fmt.Errorf("bitcount checksum = %d, want %d", result, want)
			}
			return nil
		},
		MaxInstructions: 50_000_000,
	})
}

var _ = newBitcount()
