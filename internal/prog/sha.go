package prog

import (
	"crypto/sha1"
	"encoding/binary"
	"fmt"

	"agingcgra/internal/gpp"
)

// shaMsgLen returns the raw message length in bytes per size.
func shaMsgLen(sz Size) int {
	switch sz {
	case Tiny:
		return 256
	case Large:
		return 32768
	default:
		return 6144
	}
}

const shaSrc = `
# sha: SHA-1 over a pre-padded message. The harness performs the standard
# padding and big-endian word conversion (MiBench's sha reads a file; our
# "file" is the padded block stream), the kernel does the full 80-round
# compression per block. Checksum: h0^h1^h2^h3^h4.
_start:
	la   s0, msg            # padded message as words
	la   t0, params
	lw   s1, 0(t0)          # block count
	la   s2, wbuf           # 80-word schedule
	li   s3, 0x67452301     # h0..h4
	li   s4, 0xEFCDAB89
	li   s5, 0x98BADCFE
	li   s6, 0x10325476
	li   s7, 0xC3D2E1F0
	li   s8, 0              # block index
blk:
	li   t0, 0              # w[0..15] = block words
w16:
	slli t1, t0, 2
	add  t2, t1, s0
	lw   t3, 0(t2)
	add  t2, t1, s2
	sw   t3, 0(t2)
	addi t0, t0, 1
	li   t1, 16
	blt  t0, t1, w16
wsched:                     # w[t] = rotl1(w[t-3]^w[t-8]^w[t-14]^w[t-16])
	slli t1, t0, 2
	add  t1, t1, s2
	lw   t2, -12(t1)
	lw   t3, -32(t1)
	xor  t2, t2, t3
	lw   t3, -56(t1)
	xor  t2, t2, t3
	lw   t3, -64(t1)
	xor  t2, t2, t3
	slli t3, t2, 1
	srli t2, t2, 31
	or   t2, t2, t3
	sw   t2, 0(t1)
	addi t0, t0, 1
	li   t1, 80
	blt  t0, t1, wsched
	mv   a1, s3             # a..e
	mv   a2, s4
	mv   a3, s5
	mv   a4, s6
	mv   a5, s7
	li   t0, 0              # round
round:
	li   t1, 20
	blt  t0, t1, f1
	li   t1, 40
	blt  t0, t1, f2
	li   t1, 60
	blt  t0, t1, f3
	xor  t2, a2, a3         # rounds 60..79: parity
	xor  t2, t2, a4
	li   t3, 0xCA62C1D6
	j    fdone
f1:                         # rounds 0..19: choose
	and  t2, a2, a3
	not  t3, a2
	and  t3, t3, a4
	or   t2, t2, t3
	li   t3, 0x5A827999
	j    fdone
f2:                         # rounds 20..39: parity
	xor  t2, a2, a3
	xor  t2, t2, a4
	li   t3, 0x6ED9EBA1
	j    fdone
f3:                         # rounds 40..59: majority
	and  t2, a2, a3
	and  t4, a2, a4
	or   t2, t2, t4
	and  t4, a3, a4
	or   t2, t2, t4
	li   t3, 0x8F1BBCDC
fdone:
	slli t4, a1, 5          # temp = rotl5(a)+f+e+k+w[t]
	srli t5, a1, 27
	or   t4, t4, t5
	add  t4, t4, t2
	add  t4, t4, a5
	add  t4, t4, t3
	slli t5, t0, 2
	add  t5, t5, s2
	lw   t5, 0(t5)
	add  t4, t4, t5
	mv   a5, a4             # e=d; d=c; c=rotl30(b); b=a; a=temp
	mv   a4, a3
	slli t5, a2, 30
	srli t6, a2, 2
	or   a3, t5, t6
	mv   a2, a1
	mv   a1, t4
	addi t0, t0, 1
	li   t1, 80
	blt  t0, t1, round
	add  s3, s3, a1
	add  s4, s4, a2
	add  s5, s5, a3
	add  s6, s6, a4
	add  s7, s7, a5
	addi s8, s8, 1
	addi s0, s0, 64
	blt  s8, s1, blk
	xor  a0, s3, s4
	xor  a0, a0, s5
	xor  a0, a0, s6
	xor  a0, a0, s7
	ecall
`

// shaMessage builds the raw message bytes.
func shaMessage(sz Size) []byte {
	return newRNG(0x5a1).bytes(shaMsgLen(sz))
}

// shaPadded returns the SHA-1-padded message as big-endian-converted words
// ready for little-endian lw, plus the block count.
func shaPadded(sz Size) ([]uint32, int) {
	msg := shaMessage(sz)
	bitLen := uint64(len(msg)) * 8
	padded := append([]byte{}, msg...)
	padded = append(padded, 0x80)
	for len(padded)%64 != 56 {
		padded = append(padded, 0)
	}
	var lenBytes [8]byte
	binary.BigEndian.PutUint64(lenBytes[:], bitLen)
	padded = append(padded, lenBytes[:]...)

	words := make([]uint32, len(padded)/4)
	for i := range words {
		words[i] = binary.BigEndian.Uint32(padded[i*4:])
	}
	return words, len(padded) / 64
}

func newSHA() *Benchmark {
	l := newLayout()
	maxWords, _ := shaPadded(Large)
	l.alloc("params", 8)
	l.alloc("wbuf", 80*4)
	l.alloc("msg", uint32(len(maxWords))*4)

	return register(&Benchmark{
		Name:        "sha",
		Description: "SHA-1 compression over a padded message stream",
		Source:      shaSrc,
		Symbols:     l.symbols,
		Setup: func(m *gpp.Memory, sz Size) error {
			words, blocks := shaPadded(sz)
			if err := m.StoreWord(l.symbols["params"], uint32(blocks)); err != nil {
				return err
			}
			return m.WriteWords(l.symbols["msg"], words)
		},
		Check: func(_ *gpp.Memory, result uint32, sz Size) error {
			digest := sha1.Sum(shaMessage(sz))
			var want uint32
			for i := 0; i < 5; i++ {
				want ^= binary.BigEndian.Uint32(digest[i*4:])
			}
			if result != want {
				return fmt.Errorf("sha checksum = %#x, want %#x", result, want)
			}
			return nil
		},
		MaxInstructions: 50_000_000,
	})
}

var _ = newSHA()
