package prog

import (
	"fmt"
	"hash/crc32"

	"agingcgra/internal/gpp"
)

func crc32N(sz Size) int {
	switch sz {
	case Tiny:
		return 512
	case Large:
		return 65536
	default:
		return 12288
	}
}

const crc32Src = `
# crc32: table-driven CRC-32 (IEEE polynomial, reflected form 0xEDB88320),
# matching MiBench's CRC32 benchmark. The kernel builds the 256-entry table
# and then streams the input buffer through it.
_start:
	# --- build table ---
	la   s0, crctab
	li   t0, 0              # n
tbl_outer:
	mv   t1, t0             # c = n
	li   t2, 8
tbl_inner:
	andi t3, t1, 1
	srli t1, t1, 1
	beqz t3, tbl_skip
	li   t4, 0xEDB88320
	xor  t1, t1, t4
tbl_skip:
	addi t2, t2, -1
	bnez t2, tbl_inner
	slli t3, t0, 2
	add  t3, t3, s0
	sw   t1, 0(t3)
	addi t0, t0, 1
	li   t4, 256
	blt  t0, t4, tbl_outer
	# --- stream buffer ---
	la   s1, input
	la   t0, params
	lw   s2, 0(t0)          # N bytes
	li   s3, -1             # crc = 0xffffffff
	li   t0, 0              # i
crc_loop:
	add  t1, t0, s1
	lbu  t1, 0(t1)          # b
	xor  t2, s3, t1
	andi t2, t2, 255
	slli t2, t2, 2
	add  t2, t2, s0
	lw   t2, 0(t2)          # tab[(crc ^ b) & 0xff]
	srli t3, s3, 8
	xor  s3, t2, t3
	addi t0, t0, 1
	blt  t0, s2, crc_loop
	not  a0, s3             # final xor
	ecall
`

func newCRC32() *Benchmark {
	l := newLayout()
	l.alloc("params", 8)
	l.alloc("crctab", 256*4)
	l.alloc("input", uint32(crc32N(Large)))

	gen := func(sz Size) []byte {
		return newRNG(0xc4c32).bytes(crc32N(sz))
	}

	return register(&Benchmark{
		Name:        "crc32",
		Description: "table-driven CRC-32 (IEEE) over a byte buffer",
		Source:      crc32Src,
		Symbols:     l.symbols,
		Setup: func(m *gpp.Memory, sz Size) error {
			if err := m.StoreWord(l.symbols["params"], uint32(crc32N(sz))); err != nil {
				return err
			}
			return m.WriteBytes(l.symbols["input"], gen(sz))
		},
		Check: func(_ *gpp.Memory, result uint32, sz Size) error {
			want := crc32.ChecksumIEEE(gen(sz))
			if result != want {
				return fmt.Errorf("crc32 = %#x, want %#x", result, want)
			}
			return nil
		},
		MaxInstructions: 50_000_000,
	})
}

var _ = newCRC32()
