package prog

import (
	"fmt"

	"agingcgra/internal/gpp"
)

// dijkstraDims returns (vertex count, source count) per size.
func dijkstraDims(sz Size) (v, nsrc int) {
	switch sz {
	case Tiny:
		return 20, 2
	case Large:
		return 128, 16
	default:
		return 64, 6
	}
}

const dijkstraInf = 0x3fffffff

const dijkstraSrc = `
# dijkstra: O(V^2) single-source shortest paths over a dense adjacency
# matrix (weight 0 = no edge), repeated from several sources, as in
# MiBench's dijkstra over its adjacency-matrix input file.
_start:
	la   s0, graph
	la   s1, dist
	la   s2, vis
	la   t0, params
	lw   s3, 0(t0)          # V
	lw   s8, 4(t0)          # number of sources
	li   s9, 0              # src
	li   s11, 0             # checksum accumulator
src_loop:
	# --- init dist[i]=INF, vis[i]=0 ---
	li   t0, 0
	li   t1, 0x3fffffff
init:
	slli t2, t0, 2
	add  t3, t2, s1
	sw   t1, 0(t3)
	add  t3, t2, s2
	sw   zero, 0(t3)
	addi t0, t0, 1
	blt  t0, s3, init
	slli t2, s9, 2          # dist[src] = 0
	add  t2, t2, s1
	sw   zero, 0(t2)
	li   s4, 0              # iteration count
iter:
	# --- select unvisited vertex with minimum distance ---
	li   t0, 0
	li   t1, -1             # best index
	li   t2, 0x7fffffff     # best distance
find:
	slli t3, t0, 2
	add  t4, t3, s2
	lw   t5, 0(t4)
	bnez t5, find_next
	add  t4, t3, s1
	lw   t5, 0(t4)
	bge  t5, t2, find_next
	mv   t2, t5
	mv   t1, t0
find_next:
	addi t0, t0, 1
	blt  t0, s3, find
	bltz t1, iter_done
	slli t3, t1, 2          # vis[u] = 1
	add  t4, t3, s2
	li   t5, 1
	sw   t5, 0(t4)
	add  t4, t3, s1         # du = dist[u]
	lw   s5, 0(t4)
	mul  t5, t1, s3         # row pointer = graph + u*V*4
	slli t5, t5, 2
	add  t5, t5, s0
	li   t0, 0
relax:
	slli t3, t0, 2
	add  t4, t3, t5
	lw   t6, 0(t4)          # w(u,v)
	beqz t6, relax_next
	add  t6, t6, s5         # candidate = du + w
	add  t4, t3, s1
	lw   a1, 0(t4)
	bge  t6, a1, relax_next
	sw   t6, 0(t4)
relax_next:
	addi t0, t0, 1
	blt  t0, s3, relax
	addi s4, s4, 1
	blt  s4, s3, iter
iter_done:
	# --- fold distances into the checksum ---
	li   t0, 0
sum:
	slli t2, t0, 2
	add  t2, t2, s1
	lw   t3, 0(t2)
	add  s11, s11, t3
	addi t0, t0, 1
	blt  t0, s3, sum
	addi s9, s9, 1
	addi s8, s8, -1
	bnez s8, src_loop
	mv   a0, s11
	ecall
`

// dijkstraGraph builds the dense weight matrix: roughly 25% of edges exist
// with weights 1..15.
func dijkstraGraph(sz Size) []uint32 {
	v, _ := dijkstraDims(sz)
	r := newRNG(0xd1735a)
	g := make([]uint32, v*v)
	for i := 0; i < v; i++ {
		for j := 0; j < v; j++ {
			if i == j {
				continue
			}
			if r.intn(4) == 0 {
				g[i*v+j] = uint32(1 + r.intn(15))
			}
		}
	}
	return g
}

// dijkstraRef recomputes the checksum in Go.
func dijkstraRef(sz Size) uint32 {
	v, nsrc := dijkstraDims(sz)
	g := dijkstraGraph(sz)
	var sum uint32
	for src := 0; src < nsrc; src++ {
		dist := make([]int32, v)
		vis := make([]bool, v)
		for i := range dist {
			dist[i] = dijkstraInf
		}
		dist[src] = 0
		for it := 0; it < v; it++ {
			best, bestD := -1, int32(0x7fffffff)
			for i := 0; i < v; i++ {
				if !vis[i] && dist[i] < bestD {
					best, bestD = i, dist[i]
				}
			}
			if best < 0 {
				break
			}
			vis[best] = true
			for j := 0; j < v; j++ {
				w := int32(g[best*v+j])
				if w == 0 {
					continue
				}
				if c := dist[best] + w; c < dist[j] {
					dist[j] = c
				}
			}
		}
		for _, d := range dist {
			sum += uint32(d)
		}
	}
	return sum
}

func newDijkstra() *Benchmark {
	l := newLayout()
	vMax, _ := dijkstraDims(Large)
	l.alloc("params", 8)
	l.alloc("dist", uint32(vMax)*4)
	l.alloc("vis", uint32(vMax)*4)
	l.alloc("graph", uint32(vMax*vMax)*4)

	return register(&Benchmark{
		Name:        "dijkstra",
		Description: "dense-matrix Dijkstra shortest paths from multiple sources",
		Source:      dijkstraSrc,
		Symbols:     l.symbols,
		Setup: func(m *gpp.Memory, sz Size) error {
			v, nsrc := dijkstraDims(sz)
			if err := m.StoreWord(l.symbols["params"], uint32(v)); err != nil {
				return err
			}
			if err := m.StoreWord(l.symbols["params"]+4, uint32(nsrc)); err != nil {
				return err
			}
			return m.WriteWords(l.symbols["graph"], dijkstraGraph(sz))
		},
		Check: func(_ *gpp.Memory, result uint32, sz Size) error {
			if want := dijkstraRef(sz); result != want {
				return fmt.Errorf("dijkstra checksum = %#x, want %#x", result, want)
			}
			return nil
		},
		MaxInstructions: 50_000_000,
	})
}

var _ = newDijkstra()
