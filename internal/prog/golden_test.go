package prog

import "testing"

// TestGoldenTiny pins the exact checksum and dynamic instruction count of
// every kernel at the Tiny scale. These values are functional properties of
// the kernels and inputs — any drift means a kernel, input generator or
// emulator semantics change, which would silently invalidate every
// experiment in the repository.
func TestGoldenTiny(t *testing.T) {
	golden := map[string]struct {
		checksum uint32
		dynamic  uint64
	}{
		"bitcount":        {0xff40, 18544},
		"crc32":           {0x42a4c3fd, 21004},
		"dijkstra":        {0x1e8, 13073},
		"qsort":           {0x8c0eca25, 11977},
		"rijndael":        {0x98526755, 24501},
		"sha":             {0x5a1adcc, 18058},
		"stringsearch":    {0x2d9, 16043},
		"susan_corners":   {0x1c01, 114422},
		"susan_edges":     {0x8845cb, 114904},
		"susan_smoothing": {0x7e94, 94476},
	}
	for _, b := range All() {
		want, ok := golden[b.Name]
		if !ok {
			t.Errorf("no golden entry for %s", b.Name)
			continue
		}
		sum, n, err := b.RunReference(Tiny)
		if err != nil {
			t.Errorf("%s: %v", b.Name, err)
			continue
		}
		if sum != want.checksum {
			t.Errorf("%s checksum = %#x, want %#x", b.Name, sum, want.checksum)
		}
		if n != want.dynamic {
			t.Errorf("%s dynamic instructions = %d, want %d", b.Name, n, want.dynamic)
		}
	}
}

// TestSuiteScalesWithSize ensures Small and Large genuinely grow the work.
func TestSuiteScalesWithSize(t *testing.T) {
	if testing.Short() {
		t.Skip("size-scaling check is slow")
	}
	b, _ := ByName("crc32")
	_, tiny, err := b.RunReference(Tiny)
	if err != nil {
		t.Fatal(err)
	}
	_, small, err := b.RunReference(Small)
	if err != nil {
		t.Fatal(err)
	}
	if small < 4*tiny {
		t.Errorf("small (%d) should be much larger than tiny (%d)", small, tiny)
	}
}
