package dse

import (
	"testing"

	"agingcgra/internal/prog"
)

// TestProbeSweep prints the full design-space numbers at Small scale; it is
// the calibration surface for the Fig. 6 reproduction. Run explicitly:
//
//	go test ./internal/dse/ -run TestProbeSweep -v -probe
func TestProbeSweep(t *testing.T) {
	if testing.Short() {
		t.Skip("probe sweep is slow")
	}
	results, err := Sweep(nil, BaselineFactory, Options{Size: prog.Small})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("%-10s %8s %8s %8s %8s %8s %9s", "design", "relTime", "speedup", "relE", "avgU", "worstU", "offloads")
	for _, r := range results {
		t.Logf("%-10s %8.3f %8.2f %8.3f %8.3f %8.3f %9d",
			r.Geom, r.RelTime(), r.Speedup(), r.RelEnergy(), r.AvgUtil(), r.WorstUtil(), r.Offloads)
	}
	sc := SelectScenarios(results)
	for _, s := range []Scenario{BE, BP, BU} {
		t.Logf("%s -> %s", s, sc[s].Geom)
	}
}
