package dse

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestPoolForEachRunsAllIndices(t *testing.T) {
	for _, workers := range []int{1, 2, 8} {
		p := NewPool(workers, 4)
		n := 100
		got := make([]int32, n)
		err := p.ForEach(context.Background(), n, func(i int) error {
			atomic.AddInt32(&got[i], 1)
			return nil
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i, c := range got {
			if c != 1 {
				t.Fatalf("workers=%d: index %d ran %d times", workers, i, c)
			}
		}
		p.Close()
	}
}

func TestPoolLowestIndexedErrorWins(t *testing.T) {
	p := NewPool(4, 4)
	defer p.Close()
	err := p.ForEach(context.Background(), 50, func(i int) error {
		if i == 7 || i == 30 {
			return fmt.Errorf("item %d failed", i)
		}
		return nil
	})
	if err == nil || err.Error() != "item 7 failed" {
		t.Fatalf("got %v, want item 7's error", err)
	}
}

func TestPoolPanicSurfacesAsError(t *testing.T) {
	p := NewPool(2, 2)
	defer p.Close()
	err := p.ForEach(context.Background(), 4, func(i int) error {
		if i == 2 {
			panic("kaboom")
		}
		return nil
	})
	if err == nil || !strings.Contains(err.Error(), "work item 2 panicked: kaboom") {
		t.Fatalf("got %v, want recovered panic error", err)
	}
	// The worker that recovered the panic must still be alive.
	if err := p.ForEach(context.Background(), 8, func(int) error { return nil }); err != nil {
		t.Fatalf("pool broken after panic: %v", err)
	}
}

func TestPoolCancellationSkipsPendingItems(t *testing.T) {
	p := NewPool(1, 0) // one worker, no queue: strictly one item at a time
	defer p.Close()
	ctx, cancel := context.WithCancel(context.Background())
	var ran atomic.Int32
	release := make(chan struct{})
	err := p.ForEach(ctx, 10, func(i int) error {
		ran.Add(1)
		if i == 0 {
			cancel()
			close(release)
		}
		return nil
	})
	<-release
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("got %v, want context.Canceled", err)
	}
	if n := ran.Load(); n >= 10 {
		t.Fatalf("all %d items ran despite cancellation", n)
	}
}

func TestPoolSharedAcrossConcurrentBatches(t *testing.T) {
	p := NewPool(4, 8)
	defer p.Close()
	var wg sync.WaitGroup
	var total atomic.Int64
	for b := 0; b < 6; b++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			err := p.ForEach(context.Background(), 25, func(i int) error {
				total.Add(1)
				return nil
			})
			if err != nil {
				t.Error(err)
			}
		}()
	}
	wg.Wait()
	if total.Load() != 6*25 {
		t.Fatalf("ran %d items, want %d", total.Load(), 6*25)
	}
}

func TestPoolCloseDrainsAcceptedWork(t *testing.T) {
	p := NewPool(2, 16)
	var done atomic.Int32
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		_ = p.ForEach(context.Background(), 16, func(i int) error {
			time.Sleep(time.Millisecond)
			done.Add(1)
			return nil
		})
	}()
	// Give the batch a moment to enqueue, then drain.
	time.Sleep(5 * time.Millisecond)
	p.Close()
	wg.Wait()
	// Everything accepted before Close must have completed; anything
	// rejected must not have run. Either way no goroutine leaked and the
	// counts are consistent.
	if done.Load() == 0 {
		t.Fatal("close drained nothing")
	}
	// New work after Close is rejected cleanly.
	err := p.ForEach(context.Background(), 3, func(int) error { return nil })
	if !errors.Is(err, ErrPoolClosed) {
		t.Fatalf("got %v, want ErrPoolClosed", err)
	}
}

func TestPoolCloseIdempotent(t *testing.T) {
	p := NewPool(2, 2)
	p.Close()
	p.Close()
}

func TestPoolDeterministicResultsAnyWorkerCount(t *testing.T) {
	// The byte-identity contract the service relies on: results land at
	// their index, so any worker count assembles the same output slice.
	var want []int
	for _, workers := range []int{1, 3, 8} {
		p := NewPool(workers, 4)
		out := make([]int, 64)
		err := p.ForEach(context.Background(), 64, func(i int) error {
			out[i] = i * i
			return nil
		})
		p.Close()
		if err != nil {
			t.Fatal(err)
		}
		if want == nil {
			want = out
			continue
		}
		for i := range out {
			if out[i] != want[i] {
				t.Fatalf("workers=%d: out[%d]=%d, want %d", workers, i, out[i], want[i])
			}
		}
	}
}
