// Persistent work queue: the service generalization of ForEach. ForEach
// builds a run-scoped pool, fans one batch out, and tears the goroutines
// down; a long-running server wants the inverse — one persistent worker
// pool that every request shards its items over, with a bounded queue for
// backpressure, per-request cancellation, and a graceful drain on
// shutdown. Pool is that primitive; the determinism contract is ForEach's:
// results land at their item's index, so any worker count (including one)
// produces identical output, and the lowest-indexed error wins.

package dse

import (
	"context"
	"errors"
	"runtime"
	"sync"
)

// ErrPoolClosed is returned for items submitted after Close began; items
// accepted before Close still run to completion (graceful drain).
var ErrPoolClosed = errors.New("dse: pool closed")

// Pool is a persistent bounded work queue shared across requests: a fixed
// set of worker goroutines draining one bounded job channel. Submissions
// block when the queue is full (backpressure), respect per-request context
// cancellation, and are rejected once Close begins. Safe for concurrent use
// by any number of requests.
type Pool struct {
	jobs chan func()
	quit chan struct{}

	workers    sync.WaitGroup // worker goroutines
	submitters sync.WaitGroup // in-flight Submit calls

	mu      sync.Mutex
	closed  bool
	nworker int
	depth   int
}

// NewPool starts a pool of workers goroutines (<= 0 selects
// runtime.GOMAXPROCS(0), matching ForEach) over a job queue of the given
// depth (<= 0 selects an unbuffered queue: every submission rendezvouses
// with an idle worker).
func NewPool(workers, depth int) *Pool {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if depth < 0 {
		depth = 0
	}
	p := &Pool{
		jobs:    make(chan func(), depth),
		quit:    make(chan struct{}),
		nworker: workers,
		depth:   depth,
	}
	for w := 0; w < workers; w++ {
		p.workers.Add(1)
		go func() {
			defer p.workers.Done()
			for job := range p.jobs {
				job()
			}
		}()
	}
	return p
}

// Workers returns the pool's worker count; Depth its queue bound.
func (p *Pool) Workers() int { return p.nworker }
func (p *Pool) Depth() int   { return p.depth }

// submit enqueues one job, blocking while the queue is full. It returns
// ctx.Err() on cancellation and ErrPoolClosed once Close began; in either
// case the job will not run.
func (p *Pool) submit(ctx context.Context, job func()) error {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return ErrPoolClosed
	}
	// Registering under the lock orders every in-flight submit before
	// Close's drain: Close flips closed, then waits for submitters, and
	// only then closes the job channel — no send on a closed channel.
	p.submitters.Add(1)
	p.mu.Unlock()
	defer p.submitters.Done()
	select {
	case p.jobs <- job:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	case <-p.quit:
		return ErrPoolClosed
	}
}

// ForEach runs fn(i) for every index in [0, n) on the pool's workers and
// waits for the batch to finish. The contract matches the package-level
// ForEach: results must land at their index inside fn, the lowest-indexed
// error is returned, and a panicking item surfaces as that index's error
// instead of killing a worker. Cancellation is per request: once ctx is
// done, items not yet started return ctx.Err() without running (queued
// items drain cheaply), while already-running items finish — a canceled
// request never corrupts another request's work, it only stops consuming
// workers. Every item of one call observes the same pool as every other
// request's items; fairness between concurrent requests is FIFO over the
// shared queue.
func (p *Pool) ForEach(ctx context.Context, n int, fn func(i int) error) error {
	if n <= 0 {
		return nil
	}
	errs := make([]error, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		i := i
		wg.Add(1)
		job := func() {
			defer wg.Done()
			if err := ctx.Err(); err != nil {
				errs[i] = err
				return
			}
			errs[i] = protect(i, fn)
		}
		if err := p.submit(ctx, job); err != nil {
			errs[i] = err
			wg.Done()
		}
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// Close stops accepting work and drains gracefully: submissions in flight
// are resolved (accepted jobs run, blocked ones unblock with
// ErrPoolClosed), every accepted job completes, and the workers exit.
// Close is idempotent and safe to call concurrently with submissions.
func (p *Pool) Close() {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		p.workers.Wait()
		return
	}
	p.closed = true
	close(p.quit)
	p.mu.Unlock()
	p.submitters.Wait()
	close(p.jobs)
	p.workers.Wait()
}
