package dse

import (
	"testing"

	"agingcgra/internal/core"
	"agingcgra/internal/fabric"
	"agingcgra/internal/prog"
)

func TestGrid(t *testing.T) {
	g := Grid()
	if len(g) != 12 {
		t.Fatalf("grid has %d points, want 12", len(g))
	}
	seen := map[GridPoint]bool{}
	for _, p := range g {
		if seen[p] {
			t.Errorf("duplicate point %+v", p)
		}
		seen[p] = true
	}
	for _, want := range []GridPoint{{2, 8}, {2, 16}, {4, 32}, {8, 32}} {
		if !seen[want] {
			t.Errorf("missing point %+v", want)
		}
	}
}

func TestScenarioGeometries(t *testing.T) {
	g := ScenarioGeometries()
	if g[BE] != fabric.NewGeometry(2, 16) {
		t.Errorf("BE = %v", g[BE])
	}
	if g[BP] != fabric.NewGeometry(4, 32) {
		t.Errorf("BP = %v", g[BP])
	}
	if g[BU] != fabric.NewGeometry(8, 32) {
		t.Errorf("BU = %v", g[BU])
	}
	for _, sc := range []Scenario{BE, BP, BU} {
		if sc.String() == "" {
			t.Error("empty scenario name")
		}
	}
	if Scenario(9).String() == "" {
		t.Error("unknown scenario should still format")
	}
}

func TestRunSuiteTiny(t *testing.T) {
	res, err := RunSuite(fabric.NewGeometry(2, 16), BaselineFactory, Options{
		Size:       prog.Tiny,
		Benchmarks: []string{"crc32", "bitcount"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.PerBench) != 2 {
		t.Fatalf("ran %d benchmarks", len(res.PerBench))
	}
	if res.Speedup() <= 1 {
		t.Errorf("speedup = %v", res.Speedup())
	}
	if res.RelTime() >= 1 || res.RelTime() <= 0 {
		t.Errorf("relTime = %v", res.RelTime())
	}
	if res.RelEnergy() <= 0 {
		t.Errorf("relEnergy = %v", res.RelEnergy())
	}
	if res.AvgUtil() <= 0 || res.WorstUtil() > 1 {
		t.Errorf("util: avg %v worst %v", res.AvgUtil(), res.WorstUtil())
	}
	for _, b := range res.PerBench {
		if b.Speedup() <= 0 {
			t.Errorf("%s speedup = %v", b.Name, b.Speedup())
		}
	}
}

func TestRunSuiteUnknownBenchmark(t *testing.T) {
	_, err := RunSuite(fabric.NewGeometry(2, 16), BaselineFactory, Options{
		Benchmarks: []string{"nope"},
	})
	if err == nil {
		t.Fatal("unknown benchmark accepted")
	}
}

func TestProposedBeatsBaselineWorstUtil(t *testing.T) {
	o := Options{Size: prog.Tiny, Benchmarks: []string{"crc32", "sha"}}
	g := fabric.NewGeometry(2, 16)
	base, err := RunSuite(g, BaselineFactory, o)
	if err != nil {
		t.Fatal(err)
	}
	rot, err := RunSuite(g, ProposedFactory, o)
	if err != nil {
		t.Fatal(err)
	}
	if rot.WorstUtil() >= base.WorstUtil() {
		t.Errorf("proposed worst %v >= baseline worst %v", rot.WorstUtil(), base.WorstUtil())
	}
	// Identical architectural work: same dynamic instruction totals.
	var bi, ri uint64
	for i := range base.PerBench {
		bi += base.PerBench[i].Report.TotalInstrs
		ri += rot.PerBench[i].Report.TotalInstrs
	}
	if bi != ri {
		t.Errorf("instruction totals differ: %d vs %d", bi, ri)
	}
}

// SelectScenarios on synthetic results: exercises the selection rules
// without multi-second sweeps.
func TestSelectScenariosSynthetic(t *testing.T) {
	mk := func(rows, cols int, relTime, relEnergy, avgUtil float64) *SuiteResult {
		s := &SuiteResult{Geom: fabric.NewGeometry(rows, cols)}
		s.GPPCycles = 1_000_000
		s.TRCycles = uint64(relTime * 1_000_000)
		s.GPPEnergy = 1000
		s.TREnergy = relEnergy * 1000
		s.Util = syntheticUtil(s.Geom, avgUtil)
		return s
	}
	results := []*SuiteResult{
		mk(2, 8, 0.60, 1.00, 0.50),
		mk(2, 16, 0.50, 0.90, 0.40), // BE: cheapest
		mk(4, 32, 0.480, 1.20, 0.17),
		mk(8, 32, 0.481, 1.46, 0.08), // within tie window of BP but dearer; BU by util
	}
	sel := SelectScenarios(results)
	if sel[BE].Geom != fabric.NewGeometry(2, 16) {
		t.Errorf("BE = %v", sel[BE].Geom)
	}
	if sel[BP].Geom != fabric.NewGeometry(4, 32) {
		t.Errorf("BP = %v (tie must break toward lower energy)", sel[BP].Geom)
	}
	if sel[BU].Geom != fabric.NewGeometry(8, 32) {
		t.Errorf("BU = %v", sel[BU].Geom)
	}
}

func syntheticUtil(g fabric.Geometry, avg float64) *core.UtilizationMap {
	u := &core.UtilizationMap{
		Geom:     g,
		Duty:     make([]float64, g.NumFUs()),
		Presence: make([]float64, g.NumFUs()),
	}
	for i := range u.Duty {
		u.Duty[i] = avg
	}
	return u
}
