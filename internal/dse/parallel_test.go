package dse

import (
	"reflect"
	"runtime"
	"strings"
	"sync"
	"testing"

	"agingcgra/internal/fabric"
	"agingcgra/internal/gpp"
	"agingcgra/internal/prog"
)

// testOptions keeps parallel-equality runs fast: a suite subset at Tiny.
func testOptions(workers int) Options {
	return Options{
		Size:       prog.Tiny,
		Benchmarks: []string{"crc32", "bitcount", "stringsearch"},
		Workers:    workers,
	}
}

// TestSweepParallelMatchesSerial asserts the worker-pool sweep produces
// results identical to the serial path, point for point: same ordering,
// same cycle counts, same utilization maps.
func TestSweepParallelMatchesSerial(t *testing.T) {
	points := []GridPoint{{2, 8}, {4, 8}, {2, 16}, {4, 16}}

	serial, err := Sweep(points, ProposedFactory, testOptions(1))
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := Sweep(points, ProposedFactory, testOptions(4))
	if err != nil {
		t.Fatal(err)
	}

	if len(serial) != len(parallel) {
		t.Fatalf("length mismatch: serial %d parallel %d", len(serial), len(parallel))
	}
	for i := range serial {
		if !reflect.DeepEqual(serial[i], parallel[i]) {
			t.Errorf("point %d (%v) diverges between serial and parallel sweeps", i, serial[i].Geom)
		}
	}
}

// TestRunPointsMixedFactories covers the geometry × allocator fan-out shape
// the experiment drivers use (same geometry, both allocators).
func TestRunPointsMixedFactories(t *testing.T) {
	g := fabric.NewGeometry(2, 16)
	points := []Point{
		{Geom: g, Factory: BaselineFactory},
		{Geom: g, Factory: ProposedFactory},
	}
	serial, err := RunPoints(points, testOptions(1))
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := RunPoints(points, testOptions(4))
	if err != nil {
		t.Fatal(err)
	}
	for i := range serial {
		if !reflect.DeepEqual(serial[i], parallel[i]) {
			t.Errorf("point %d diverges between serial and parallel runs", i)
		}
	}
	if serial[0].AllocatorName == serial[1].AllocatorName {
		t.Errorf("expected distinct allocators per point, both %q", serial[0].AllocatorName)
	}
}

// TestRefCacheMatchesDirect asserts the memoized GPP reference equals a
// direct RunSuite without a cache, and that repeated Gets are stable.
func TestRefCacheMatchesDirect(t *testing.T) {
	g := fabric.NewGeometry(2, 16)
	opt := testOptions(1)

	direct, err := RunSuite(g, BaselineFactory, opt)
	if err != nil {
		t.Fatal(err)
	}
	opt.Refs = NewRefCache()
	memoized, err := RunSuite(g, BaselineFactory, opt)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(direct, memoized) {
		t.Errorf("memoized suite result diverges from direct computation")
	}

	b, _ := prog.ByName("crc32")
	r1, err := opt.Refs.Get(b, prog.Tiny, gpp.Timing{})
	if err != nil {
		t.Fatal(err)
	}
	r2, err := opt.Refs.Get(b, prog.Tiny, gpp.DefaultTiming())
	if err != nil {
		t.Fatal(err)
	}
	if r1 != r2 {
		t.Errorf("zero timing should normalize to the default: %+v vs %+v", r1, r2)
	}
}

// TestForEachRecoversPanics pins the sweep primitive's panic safety: a
// panicking work item becomes that index's error on the serial and the
// parallel path alike — one malformed design point must not crash a batch.
func TestForEachRecoversPanics(t *testing.T) {
	for _, workers := range []int{1, 4} {
		var mu sync.Mutex
		done := make(map[int]bool)
		err := ForEach(8, workers, func(i int) error {
			if i == 3 {
				panic("design point exploded")
			}
			mu.Lock()
			done[i] = true
			mu.Unlock()
			return nil
		})
		if err == nil {
			t.Fatalf("workers=%d: panic should surface as an error", workers)
		}
		if !strings.Contains(err.Error(), "work item 3 panicked") {
			t.Errorf("workers=%d: error should name the panicking index, got: %v", workers, err)
		}
		if workers > 1 {
			// Parallel path drives every other item to completion.
			for i := 0; i < 8; i++ {
				if i != 3 && !done[i] {
					t.Errorf("workers=%d: item %d not driven to completion", workers, i)
				}
			}
		}
	}
}

// TestForEachDefaultWorkersFollowsGOMAXPROCS pins the Workers=0 default to
// runtime.GOMAXPROCS(0), not NumCPU: on a single-slot schedule the default
// must take the serial loop — in-order, on the caller's goroutine — rather
// than spawn NumCPU goroutines that time-slice one core and lose to the
// serial sweep (the Fig6Sweep parallel-slower artifact).
func TestForEachDefaultWorkersFollowsGOMAXPROCS(t *testing.T) {
	old := runtime.GOMAXPROCS(1)
	defer runtime.GOMAXPROCS(old)

	// Deliberately unsynchronized: legal only if ForEach stays serial.
	// Under `go test -race` this doubles as a no-goroutines proof.
	var order []int
	if err := ForEach(64, 0, func(i int) error {
		order = append(order, i)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if len(order) != 64 {
		t.Fatalf("ran %d of 64 items", len(order))
	}
	for i, got := range order {
		if got != i {
			t.Fatalf("out-of-order execution at %d: got item %d; Workers=0 on GOMAXPROCS=1 must run serial", i, got)
		}
	}
}
