package dse

import (
	"testing"

	"agingcgra/internal/energy"
	"agingcgra/internal/fabric"
	"agingcgra/internal/prog"
)

// TestCalibrateEnergy grid-searches the three fabric energy constants
// against the paper's Fig. 6 anchors (BE 0.90x, BP 1.20x, BU 1.46x).
// It is a tool, not a regression test; run explicitly with -run Calibrate.
func TestCalibrateEnergy(t *testing.T) {
	if testing.Short() {
		t.Skip("calibration is slow")
	}
	anchors := []struct {
		geom   fabric.Geometry
		target float64
	}{
		{fabric.NewGeometry(2, 16), 0.90},
		{fabric.NewGeometry(4, 32), 1.20},
		{fabric.NewGeometry(8, 32), 1.46},
	}
	// Also keep an eye on L8,W2: it must cost MORE than L16,W2 so the BE
	// selection matches the paper.
	watch := fabric.NewGeometry(2, 8)

	type raw struct {
		res *SuiteResult
	}
	var rawAnchors []raw
	for _, a := range anchors {
		res, err := RunSuite(a.geom, BaselineFactory, Options{Size: prog.Small})
		if err != nil {
			t.Fatal(err)
		}
		rawAnchors = append(rawAnchors, raw{res})
	}
	watchRes, err := RunSuite(watch, BaselineFactory, Options{Size: prog.Small})
	if err != nil {
		t.Fatal(err)
	}

	ratioWith := func(m energy.Model, res *SuiteResult) float64 {
		var tr, gp float64
		for _, b := range res.PerBench {
			tr += m.TransRecEnergy(b.Report)
		}
		// GPP energy needs class counts; recompute from stored reports'
		// full class split (GPP-only classes equal total workload classes).
		for _, b := range res.PerBench {
			classes := b.Report.GPPClasses
			classes.Add(b.Report.CGRAClasses)
			gp += m.GPPEnergy(b.GPPCycles, classes)
		}
		return tr / gp
	}

	best := energy.Calibrated()
	bestErr := 1e18
	for _, gppStatic := range []float64{4, 6, 8, 10, 14, 18, 24} {
		for _, leak := range []float64{0.005, 0.01, 0.015, 0.02, 0.03, 0.04, 0.06, 0.08, 0.1, 0.14} {
			for _, perCtx := range []float64{0.0, 0.05, 0.1, 0.2, 0.3, 0.5, 0.8} {
				for _, opBase := range []float64{0.5, 1, 2, 3, 4, 5, 6} {
					for _, offCtx := range []float64{5, 10, 20, 30, 40} {
						m := energy.Calibrated()
						m.GPPStatic = gppStatic
						m.FULeak = leak
						m.CGRAOpPerCtxLine = perCtx
						m.CGRAOpBase = opBase
						m.OffloadCtx = offCtx
						var errSum float64
						for i, a := range anchors {
							r := ratioWith(m, rawAnchors[i].res)
							d := r - a.target
							errSum += d * d
						}
						// Hard constraint: L8,W2 must cost more than L16,W2
						// so BE selection matches the paper.
						if ratioWith(m, watchRes) <= ratioWith(m, rawAnchors[0].res) {
							continue
						}
						if errSum < bestErr {
							bestErr = errSum
							best = m
						}
					}
				}
			}
		}
	}
	t.Logf("best model: GPPStatic=%v FULeak=%v PerCtx=%v OpBase=%v OffloadCtx=%v err=%v",
		best.GPPStatic, best.FULeak, best.CGRAOpPerCtxLine, best.CGRAOpBase, best.OffloadCtx, bestErr)
	for i, a := range anchors {
		t.Logf("  %v: ratio %.3f (target %.2f)", a.geom, ratioWith(best, rawAnchors[i].res), a.target)
	}
	t.Logf("  %v (watch): ratio %.3f", watch, ratioWith(best, watchRes))
}
