// Parallel sweep engine: every figure and table of the paper re-runs the
// suite across geometry × allocator design points, and the points are
// mutually independent (each owns its controller, allocator and cores), so
// they fan out over a worker pool. Two invariants keep the parallel path
// bit-identical to the serial one: results land at their point's index
// regardless of completion order, and the stand-alone GPP reference — a
// pure function of (benchmark, size, timing) that the serial path
// recomputed for every point — is memoized in a RefCache shared across the
// pool. ForEach spins up a throwaway pool per call (the sweep-command
// shape); Pool (queue.go) is the persistent, bounded-queue variant the
// lifetime service keeps across requests, with context cancellation and
// graceful drain. Both honor the same contract: indexed results, the
// lowest-indexed error, and panics recovered into that index's error.
package dse

import (
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"

	"agingcgra/internal/dbt"
	"agingcgra/internal/fabric"
	"agingcgra/internal/gpp"
	"agingcgra/internal/memostore"
	"agingcgra/internal/prog"
)

// GPPRef is the stand-alone GPP outcome for one benchmark: the reference
// every design point is normalized against.
type GPPRef struct {
	Cycles  uint64
	Classes dbt.ClassCounts
}

type refKey struct {
	bench  string
	size   prog.Size
	timing gpp.Timing
}

// RefCache memoizes GPP-only reference runs. The reference depends only on
// the benchmark, the input size and the timing model — not on the fabric
// geometry or allocator — so one cache serves an entire sweep, and the
// lifetime service holds a single process-wide instance so the references
// are shared across requests. Safe for concurrent use; each key is computed
// exactly once (single-flight) even when several workers ask for it
// simultaneously. Backed by an unbounded memostore.Store, whose hit/miss
// counters the service's /v1/stats endpoint surfaces.
type RefCache struct {
	store *memostore.Store
}

// NewRefCache builds an empty reference memo.
func NewRefCache() *RefCache {
	return &RefCache{store: memostore.New(0)}
}

// Get returns the memoized reference for (b, size, timing), computing it on
// first use. The zero timing normalizes to gpp.DefaultTiming, matching
// dbt.RunGPPOnly.
func (rc *RefCache) Get(b *prog.Benchmark, size prog.Size, timing gpp.Timing) (GPPRef, error) {
	if timing == (gpp.Timing{}) {
		timing = gpp.DefaultTiming()
	}
	key := refKey{bench: b.Name, size: size, timing: timing}
	v, err := rc.store.GetOrCompute(key, func() (any, error) {
		c, err := b.NewCore(size)
		if err != nil {
			return GPPRef{}, err
		}
		var ref GPPRef
		ref.Cycles, ref.Classes, err = dbt.RunGPPOnly(c, timing, b.MaxInstructions)
		c.Release()
		return ref, err
	})
	if err != nil {
		return GPPRef{}, err
	}
	return v.(GPPRef), nil
}

// Stats snapshots the underlying memo store's counters.
func (rc *RefCache) Stats() memostore.Stats { return rc.store.Stats() }

// Point is one design point of a sweep: a fabric geometry paired with the
// allocator strategy to run on it.
type Point struct {
	Geom    fabric.Geometry
	Factory AllocatorFactory
}

// ForEach runs fn(i) for every index in [0, n), fanned out over a worker
// pool (workers <= 0 selects the runnable-CPU bound, runtime.GOMAXPROCS;
// 1 forces the serial path, which short-circuits on the first error).
// Resolving the default against GOMAXPROCS rather than NumCPU matters on
// constrained boxes: a GOMAXPROCS=1 process gains nothing from extra
// goroutines, so the default collapses to the serial path instead of
// paying channel and scheduling overhead for zero parallelism (the
// historical Fig6Sweep "parallel slower than serial" artifact on 1-CPU
// runners). On failure the error of the
// lowest-indexed failing call is returned, matching the serial path, and
// every started call is still driven to completion. A panicking work item
// does not take down the pool (or, on the parallel path, the whole
// process): the panic is recovered and surfaces as that index's error, so
// one malformed design point fails its sweep cleanly instead of crashing a
// batch of unrelated points. It is the shared sweep primitive behind
// RunPoints and the lifetime scenario batches; fn must be safe to call from
// multiple goroutines for distinct indices.
func ForEach(n, workers int, fn func(i int) error) error {
	call := func(i int) error { return protect(i, fn) }
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			if err := call(i); err != nil {
				return err
			}
		}
		return nil
	}

	errs := make([]error, n)
	jobs := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				errs[i] = call(i)
			}
		}()
	}
	for i := 0; i < n; i++ {
		jobs <- i
	}
	close(jobs)
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// protect runs fn(i) and converts a panic into that index's error — the
// recovery contract shared by ForEach and Pool.ForEach: one malformed work
// item fails its batch cleanly instead of crashing the process (or, on the
// persistent pool, killing a worker goroutine every other request depends
// on).
func protect(i int, fn func(i int) error) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("dse: work item %d panicked: %v\n%s", i, r, debug.Stack())
		}
	}()
	return fn(i)
}

// RunPoints executes the suite on every design point, fanning the points
// out over opt.Workers goroutines (0 selects runtime.GOMAXPROCS; 1 forces
// the serial path). Results are ordered by point index and identical to running
// the points serially; on failure the error of the lowest-indexed failing
// point is returned, again matching the serial path.
func RunPoints(points []Point, opt Options) ([]*SuiteResult, error) {
	if opt.Refs == nil {
		opt.Refs = NewRefCache()
	}
	out := make([]*SuiteResult, len(points))
	err := ForEach(len(points), opt.Workers, func(i int) error {
		res, err := RunSuite(points[i].Geom, points[i].Factory, opt)
		out[i] = res
		return err
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}
