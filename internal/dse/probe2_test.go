package dse

import (
	"testing"

	"agingcgra/internal/prog"
)

// TestProbeScenarios prints the Table I surface: baseline vs proposed on
// the three scenarios.
func TestProbeScenarios(t *testing.T) {
	if testing.Short() {
		t.Skip("probe is slow")
	}
	for sc, g := range ScenarioGeometries() {
		base, err := RunSuite(g, BaselineFactory, Options{Size: prog.Small})
		if err != nil {
			t.Fatal(err)
		}
		rot, err := RunSuite(g, ProposedFactory, Options{Size: prog.Small})
		if err != nil {
			t.Fatal(err)
		}
		improv := base.WorstUtil() / rot.WorstUtil()
		perfOverhead := float64(rot.TRCycles)/float64(base.TRCycles) - 1
		t.Logf("%s %v: avg %.3f | worst base %.3f -> prop %.3f | lifetime improv %.2fx | perf overhead %.3f%%",
			sc, g, base.AvgUtil(), base.WorstUtil(), rot.WorstUtil(), improv, perfOverhead*100)
	}
}
