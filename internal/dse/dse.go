// Package dse runs the paper's design-space exploration (Section IV.B,
// Fig. 6): the MiBench-style suite over every fabric size L ∈ {8,16,24,32}
// × W ∈ {2,4,8}, producing relative execution time, relative energy and
// average FU occupancy versus the stand-alone GPP, and selecting the BE /
// BP / BU scenarios the aging evaluation uses.
package dse

import (
	"fmt"

	"agingcgra/internal/alloc"
	"agingcgra/internal/core"
	"agingcgra/internal/dbt"
	"agingcgra/internal/energy"
	"agingcgra/internal/explore"
	"agingcgra/internal/fabric"
	"agingcgra/internal/prog"
	"agingcgra/internal/remap"
)

// AllocatorFactory builds a fresh allocator for a geometry.
type AllocatorFactory func(fabric.Geometry) alloc.Allocator

// BaselineFactory builds the utilization-unaware allocator.
func BaselineFactory(fabric.Geometry) alloc.Allocator { return alloc.Baseline{} }

// ProposedFactory builds the paper's utilization-aware allocator with the
// default snake pattern.
func ProposedFactory(g fabric.Geometry) alloc.Allocator { return alloc.NewUtilizationAware(g) }

// ExploreFactory builds the wear-aware placement explorer: instead of
// rotating blindly it searches the live pivots for the placement minimising
// the maximum projected ΔVt, fed by the lifetime simulator's accumulated
// wear map.
func ExploreFactory(g fabric.Geometry) alloc.Allocator { return explore.New(g) }

// RemapFactory builds the shape-adaptive remapper: the explorer's wear-
// scored pivot choice plus configuration re-mapping to alternative shapes
// when clustered failures block every pivot of the original rectangle.
func RemapFactory(g fabric.Geometry) alloc.Allocator { return remap.New(g) }

// LadderRemapFactory builds the shape-adaptive remapper searching a
// specific candidate shape ladder — the shape-ladder DSE pairs it with the
// same ladder on the DBT side (dbt.Options.Ladder), so the allocation-time
// rescue and the translation-time search explore one space.
func LadderRemapFactory(l fabric.ShapeLadder) AllocatorFactory {
	return func(g fabric.Geometry) alloc.Allocator { return remap.New(g, remap.WithLadder(l)) }
}

// BenchResult holds one benchmark's outcome on one design.
type BenchResult struct {
	Name      string
	GPPCycles uint64
	TRCycles  uint64
	Report    *dbt.Report
}

// Speedup is GPP cycles / TransRec cycles.
func (b BenchResult) Speedup() float64 {
	if b.TRCycles == 0 {
		return 0
	}
	return float64(b.GPPCycles) / float64(b.TRCycles)
}

// SuiteResult aggregates the whole suite on one design with one allocator.
type SuiteResult struct {
	Geom          fabric.Geometry
	AllocatorName string
	Size          prog.Size

	PerBench []BenchResult

	// Suite totals.
	GPPCycles  uint64 // stand-alone GPP
	TRCycles   uint64 // TransRec
	GPPEnergy  float64
	TREnergy   float64
	Offloads   uint64
	EarlyExits uint64

	// Util is the stress-aggregated utilization over the whole suite: the
	// map the paper's Fig. 1 and Fig. 7 heat maps show.
	Util *core.UtilizationMap
}

// RelTime is suite execution time relative to the GPP (lower is faster).
func (s *SuiteResult) RelTime() float64 {
	if s.GPPCycles == 0 {
		return 0
	}
	return float64(s.TRCycles) / float64(s.GPPCycles)
}

// Speedup is the inverse of RelTime.
func (s *SuiteResult) Speedup() float64 {
	if s.TRCycles == 0 {
		return 0
	}
	return float64(s.GPPCycles) / float64(s.TRCycles)
}

// RelEnergy is suite energy relative to the GPP (lower is better).
func (s *SuiteResult) RelEnergy() float64 {
	if s.GPPEnergy == 0 {
		return 0
	}
	return s.TREnergy / s.GPPEnergy
}

// AvgUtil is the mean FU duty cycle.
func (s *SuiteResult) AvgUtil() float64 { return s.Util.Avg() }

// WorstUtil is the highest FU duty cycle; it determines lifetime.
func (s *SuiteResult) WorstUtil() float64 {
	m, _ := s.Util.Max()
	return m
}

// Options tunes a suite run.
type Options struct {
	// Size selects the input scale (default Small, the paper's setting).
	Size prog.Size
	// Benchmarks restricts the suite (default: all ten).
	Benchmarks []string
	// Model is the energy model (default Calibrated).
	Model *energy.Model
	// Engine propagates engine options other than Geom/Allocator/Controller.
	Engine dbt.Options
	// Workers bounds sweep parallelism: 0 selects runtime.NumCPU, 1 forces
	// the serial path. Individual suite runs are always sequential (the
	// benchmarks accumulate stress on one shared fabric); parallelism is
	// across design points.
	Workers int
	// Refs memoizes the stand-alone GPP reference runs across design
	// points; nil means each RunSuite computes its own references (Sweep
	// and RunPoints install a shared cache automatically).
	Refs *RefCache
}

// RunSuite executes the benchmark suite on one design point with one
// allocator, accumulating stress on a single shared fabric.
func RunSuite(geom fabric.Geometry, factory AllocatorFactory, opt Options) (*SuiteResult, error) {
	if factory == nil {
		factory = BaselineFactory
	}
	model := energy.Calibrated()
	if opt.Model != nil {
		model = *opt.Model
	}
	size := opt.Size
	names := opt.Benchmarks
	if len(names) == 0 {
		names = prog.Names()
	}

	allocator := factory(geom)
	ctrl, err := core.NewController(geom, allocator)
	if err != nil {
		return nil, err
	}

	res := &SuiteResult{
		Geom:          geom,
		AllocatorName: allocator.Name(),
		Size:          size,
	}

	for _, name := range names {
		b, ok := prog.ByName(name)
		if !ok {
			return nil, fmt.Errorf("dse: unknown benchmark %q", name)
		}

		// Stand-alone GPP reference, memoized across design points when a
		// RefCache is installed: the reference depends only on the
		// benchmark, size and timing, never on the geometry or allocator.
		var gppCycles uint64
		var gppClasses dbt.ClassCounts
		if opt.Refs != nil {
			ref, err := opt.Refs.Get(b, size, opt.Engine.Timing)
			if err != nil {
				return nil, fmt.Errorf("dse: %s gpp-only: %w", name, err)
			}
			gppCycles, gppClasses = ref.Cycles, ref.Classes
		} else {
			cg, err := b.NewCore(size)
			if err != nil {
				return nil, err
			}
			gppCycles, gppClasses, err = dbt.RunGPPOnly(cg, opt.Engine.Timing, b.MaxInstructions)
			if err != nil {
				return nil, fmt.Errorf("dse: %s gpp-only: %w", name, err)
			}
		}

		// TransRec run sharing the suite controller.
		ct, err := b.NewCore(size)
		if err != nil {
			return nil, err
		}
		eopts := opt.Engine
		eopts.Geom = geom
		eopts.Controller = ctrl
		eng, err := dbt.NewEngine(eopts)
		if err != nil {
			return nil, err
		}
		rep, err := eng.Run(ct, b.MaxInstructions)
		if err != nil {
			return nil, fmt.Errorf("dse: %s transrec: %w", name, err)
		}

		res.PerBench = append(res.PerBench, BenchResult{
			Name:      name,
			GPPCycles: gppCycles,
			TRCycles:  rep.TotalCycles,
			Report:    rep,
		})
		res.GPPCycles += gppCycles
		res.TRCycles += rep.TotalCycles
		res.GPPEnergy += model.GPPEnergy(gppCycles, gppClasses)
		res.TREnergy += model.TransRecEnergy(rep)
		res.Offloads += rep.Offloads
		res.EarlyExits += rep.EarlyExits
	}

	res.Util = ctrl.Utilization()
	return res, nil
}

// GridPoint is one (W, L) fabric size of the exploration.
type GridPoint struct{ Rows, Cols int }

// Grid returns the paper's 12 design points: L from 8 to 32, W from 2 to 8.
func Grid() []GridPoint {
	var out []GridPoint
	for _, cols := range []int{8, 16, 24, 32} {
		for _, rows := range []int{2, 4, 8} {
			out = append(out, GridPoint{Rows: rows, Cols: cols})
		}
	}
	return out
}

// Sweep runs the suite over every grid point, fanning the points out over
// opt.Workers goroutines (0 selects runtime.NumCPU). Results are in point
// order and identical to a serial sweep.
func Sweep(points []GridPoint, factory AllocatorFactory, opt Options) ([]*SuiteResult, error) {
	if len(points) == 0 {
		points = Grid()
	}
	pts := make([]Point, len(points))
	for i, p := range points {
		pts[i] = Point{Geom: fabric.NewGeometry(p.Rows, p.Cols), Factory: factory}
	}
	return RunPoints(pts, opt)
}

// Scenario identifies the three designs of interest the paper selects.
type Scenario int

const (
	// BE is the best-energy design, (L16, W2) in the paper.
	BE Scenario = iota
	// BP is the best-performance design, (L32, W4) in the paper.
	BP
	// BU is the lowest-utilization design, (L32, W8) in the paper.
	BU
)

func (s Scenario) String() string {
	switch s {
	case BE:
		return "BE"
	case BP:
		return "BP"
	case BU:
		return "BU"
	}
	return fmt.Sprintf("scenario(%d)", int(s))
}

// ScenarioGeometries returns the paper's chosen design points.
func ScenarioGeometries() map[Scenario]fabric.Geometry {
	return map[Scenario]fabric.Geometry{
		BE: fabric.NewGeometry(2, 16),
		BP: fabric.NewGeometry(4, 32),
		BU: fabric.NewGeometry(8, 32),
	}
}

// SelectScenarios picks BE (minimum energy), BP (minimum time; designs
// within half a percent count as equally fast, as in the paper where
// (L32,W4) and (L32,W8) share the same speedup, and the cheaper one wins)
// and BU (minimum average utilization) from sweep results.
func SelectScenarios(results []*SuiteResult) map[Scenario]*SuiteResult {
	const timeTie = 0.005
	out := make(map[Scenario]*SuiteResult, 3)
	for _, r := range results {
		if be, ok := out[BE]; !ok || r.RelEnergy() < be.RelEnergy() {
			out[BE] = r
		}
		if bp, ok := out[BP]; !ok ||
			r.RelTime() < bp.RelTime()-timeTie ||
			(abs(r.RelTime()-bp.RelTime()) <= timeTie && r.RelEnergy() < bp.RelEnergy()) {
			out[BP] = r
		}
		if bu, ok := out[BU]; !ok || r.AvgUtil() < bu.AvgUtil() {
			out[BU] = r
		}
	}
	return out
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
