package dbt

import (
	"reflect"
	"testing"

	"agingcgra/internal/fabric"
	"agingcgra/internal/isa"
	"agingcgra/internal/mapper"
	"agingcgra/internal/prog"
	"agingcgra/internal/remap"
)

// TestShapeTranslationsAccelerateLoop pins the healthy-path behaviour of
// translation-time shape search: the hot loop still translates, offloads
// and computes the right result, and the ladder scan is counted for the
// derived cost model.
func TestShapeTranslationsAccelerateLoop(t *testing.T) {
	c := loopCore(t)
	e, err := NewEngine(Options{
		Geom:              fabric.NewGeometry(2, 16),
		ShapeTranslations: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := e.Run(c, 1_000_000)
	if err != nil {
		t.Fatal(err)
	}
	if c.Regs[isa.A0] != loopReference(200) {
		t.Fatalf("architectural result corrupted: %d", c.Regs[isa.A0])
	}
	if rep.Offloads == 0 {
		t.Fatal("hot loop never offloaded under shape translations")
	}
	if rep.Search.LadderScans == 0 || rep.Search.LadderCandidates == 0 || rep.Search.LadderProbes == 0 {
		t.Errorf("ladder scan uncounted: %+v", rep.Search)
	}
	if rep.Search.LadderScans != rep.Translations {
		// Scans without a winning candidate (too small / unprofitable) do
		// not insert, so scans >= translations.
		if rep.Search.LadderScans < rep.Translations {
			t.Errorf("%d ladder scans for %d translations", rep.Search.LadderScans, rep.Translations)
		}
	}
}

// TestShapeTranslationsRejectStaleCombination pins the regime exclusivity:
// shape-aware translation keys the translation memory on the fabric state,
// stale translation models memory predating it — asking for both is a
// configuration error.
func TestShapeTranslationsRejectStaleCombination(t *testing.T) {
	_, err := NewEngine(Options{
		Geom:              fabric.NewGeometry(2, 16),
		ShapeTranslations: true,
		StaleTranslations: true,
	})
	if err == nil {
		t.Fatal("ShapeTranslations+StaleTranslations accepted")
	}
}

// TestShapeTranslationsFlowAroundDeadColumns pins the health-aware half of
// the search: with two dead columns the shape-aware DBT still keeps the
// kernel on-fabric (every translation's identity placement avoids the dead
// cells), where the same translations mapped blind for the pristine fabric
// would have no live pivot.
func TestShapeTranslationsFlowAroundDeadColumns(t *testing.T) {
	g := fabric.NewGeometry(2, 16)
	h, err := fabric.NewHealthWithDead(g, fabric.DeadColumnsCells(g, 0, 8))
	if err != nil {
		t.Fatal(err)
	}
	b, _ := prog.ByName("crc32")
	c, err := b.NewCore(prog.Tiny)
	if err != nil {
		t.Fatal(err)
	}
	e, err := NewEngine(Options{
		Geom:              g,
		Allocator:         remap.New(g),
		Health:            h,
		ShapeTranslations: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := e.Run(c, b.MaxInstructions)
	if err != nil {
		t.Fatal(err)
	}
	if err := b.Check(c.Mem, c.Regs[isa.A0], prog.Tiny); err != nil {
		t.Fatalf("wrong architectural result: %v", err)
	}
	if rep.Offloads == 0 {
		t.Error("kernel fell back to the GPP although shape-aware translations fit the live cells")
	}
	// Every shape decision is live by construction at the anchor its mask
	// was expressed in: each cached translation must have at least one live
	// pivot on the degraded fabric.
	for _, cfg := range e.Cache().Configs() {
		live := false
		for r := 0; r < g.Rows && !live; r++ {
			for c := 0; c < g.Cols && !live; c++ {
				live = h.PlacementOK(cfg.Cells(), fabric.Offset{Row: r, Col: c})
			}
		}
		if !live {
			t.Fatalf("translation %#x has no live pivot despite the health-aware shape search", cfg.StartPC)
		}
	}
}

// TestShapeTranslationsRetranslateOnStateChange pins the translation-cache
// keying: the resident translations' shape decisions are valid for exactly
// one (health version, wear version) pair — a death or a wear advance
// flushes them wholesale (cfgcache.Cache.SyncState, mirroring RemapCache)
// and the re-captured traces translate against the new state.
func TestShapeTranslationsRetranslateOnStateChange(t *testing.T) {
	g := fabric.NewGeometry(2, 16)
	h := fabric.NewHealth(g)
	w := fabric.NewWear(g)
	e, err := NewEngine(Options{
		Geom:              g,
		Health:            h,
		Wear:              w,
		ShapeTranslations: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Run(loopCore(t), 1_000_000); err != nil {
		t.Fatal(err)
	}
	before := e.Cache().Stats()
	if before.Flushes != 0 {
		t.Fatalf("flushed %d times without a state change", before.Flushes)
	}

	// A death moves the health version: the next run must flush and
	// re-translate around the dead cell.
	dead := fabric.Cell{Row: 0, Col: 0}
	h.Kill(dead)
	rep2, err := e.Run(loopCore(t), 1_000_000)
	if err != nil {
		t.Fatal(err)
	}
	if got := e.Cache().Stats().Flushes; got != 1 {
		t.Fatalf("flushes = %d after a death, want 1", got)
	}
	if rep2.Translations == 0 {
		t.Error("no re-translation after the flush")
	}
	for _, cfg := range e.Cache().Configs() {
		live := false
		for r := 0; r < g.Rows && !live; r++ {
			for c := 0; c < g.Cols && !live; c++ {
				live = h.PlacementOK(cfg.Cells(), fabric.Offset{Row: r, Col: c})
			}
		}
		if !live {
			t.Fatalf("post-flush translation %#x has no live pivot", cfg.StartPC)
		}
	}

	// A wear advance moves the wear version: the shape tie-break's input
	// changed, so the decisions flush too.
	w.Add(fabric.Cell{Row: 1, Col: 3}, 2)
	if _, err := e.Run(loopCore(t), 1_000_000); err != nil {
		t.Fatal(err)
	}
	if got := e.Cache().Stats().Flushes; got != 2 {
		t.Errorf("flushes = %d after a wear advance, want 2", got)
	}
}

// TestShapeTranslationWearTieBreak pins the wear-aware tie-break: two
// independent single-column ops fit the full 2×16 shape (a vertical pair in
// column 0) and the 1×16 shape (a horizontal pair) in the same single
// cycle, so heavy wear on the row-1 cell must steer the search to the
// one-row shape whose identity placement avoids it.
func TestShapeTranslationWearTieBreak(t *testing.T) {
	g := fabric.NewGeometry(2, 16)
	trace := []mapper.TraceEntry{
		{PC: 0x1000, Inst: isa.Inst{Op: isa.ADD, Rd: isa.T0, Rs1: isa.A0, Rs2: isa.A1}},
		{PC: 0x1004, Inst: isa.Inst{Op: isa.ADD, Rd: isa.T1, Rs1: isa.A0, Rs2: isa.A1}},
	}

	fresh, err := NewEngine(Options{Geom: g, ShapeTranslations: true})
	if err != nil {
		t.Fatal(err)
	}
	fresh.trace = trace
	cfg, consumed := fresh.translateShapes()
	if cfg == nil || consumed != 2 {
		t.Fatalf("fresh search consumed %d/2", consumed)
	}
	if cfg.Geom.Rows != g.Rows {
		t.Errorf("fresh fabric chose %v; want the full shape (first rung) on a tie", cfg.Geom)
	}

	w := fabric.NewWear(g)
	w.Add(fabric.Cell{Row: 1, Col: 0}, 3)
	worn, err := NewEngine(Options{Geom: g, ShapeTranslations: true, Wear: w})
	if err != nil {
		t.Fatal(err)
	}
	worn.trace = trace
	cfg, consumed = worn.translateShapes()
	if cfg == nil || consumed != 2 {
		t.Fatalf("worn search consumed %d/2", consumed)
	}
	if cfg.Geom.Rows != 1 {
		t.Errorf("worn row 1: search chose %v; want a one-row shape avoiding the worn cell", cfg.Geom)
	}
	for _, cell := range cfg.Cells() {
		if w.YearsAt(cell) > 0 {
			t.Errorf("chosen placement touches worn cell %v", cell)
		}
	}
}

// TestShapeTranslationsRejectEmptyLadder pins the malformed-ladder guard:
// a ladder that expands to no candidate shapes must be a configuration
// error, not a silent fall-back to identity translation.
func TestShapeTranslationsRejectEmptyLadder(t *testing.T) {
	_, err := NewEngine(Options{
		Geom:              fabric.NewGeometry(2, 16),
		ShapeTranslations: true,
		Ladder:            fabric.ShapeLadder{Name: "custom", ColFracs: []float64{0.5}},
	})
	if err == nil {
		t.Fatal("ladder with no row fractions accepted")
	}
}

// TestShapeSearchWorkerCountInvariance pins the SearchWorkers determinism
// contract: the translation-time ladder scan striped over four workers
// produces a byte-identical report — same offloads, same translations,
// same searchcost counters — and the same architectural result as the
// forced-serial scan.
func TestShapeSearchWorkerCountInvariance(t *testing.T) {
	run := func(workers int) (*Report, uint32) {
		c := loopCore(t)
		e, err := NewEngine(Options{
			Geom:              fabric.NewGeometry(2, 16),
			ShapeTranslations: true,
			SearchWorkers:     workers,
		})
		if err != nil {
			t.Fatal(err)
		}
		rep, err := e.Run(c, 1_000_000)
		if err != nil {
			t.Fatal(err)
		}
		return rep, c.Regs[isa.A0]
	}
	repS, a0S := run(1)
	repP, a0P := run(4)
	if a0S != a0P {
		t.Fatalf("architectural result diverges: serial %d, parallel %d", a0S, a0P)
	}
	if !reflect.DeepEqual(repS, repP) {
		t.Fatalf("reports diverge:\nserial:   %+v\nparallel: %+v", repS, repP)
	}
}
