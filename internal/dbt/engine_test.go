package dbt

import (
	"testing"

	"agingcgra/internal/alloc"
	"agingcgra/internal/fabric"
	"agingcgra/internal/gpp"
	"agingcgra/internal/isa"
	"agingcgra/internal/prog"
)

// loopProgram is a simple hot loop: the DBT must translate it and offload
// subsequent iterations.
const loopProgram = `
_start:
	li   s0, 0          # sum
	li   s1, 0          # i
	li   s2, 200        # iterations
loop:
	slli t0, s1, 1
	xor  t1, s1, s0
	add  t2, t0, t1
	add  s0, s0, t2
	addi s1, s1, 1
	blt  s1, s2, loop
	mv   a0, s0
	ecall
`

func loopCore(t *testing.T) *gpp.Core {
	t.Helper()
	p, err := isa.Assemble(loopProgram, isa.AsmOptions{TextBase: gpp.TextBase})
	if err != nil {
		t.Fatal(err)
	}
	return gpp.New(p)
}

func newTestEngine(t *testing.T, a alloc.Allocator) *Engine {
	t.Helper()
	e, err := NewEngine(Options{
		Geom:      fabric.NewGeometry(2, 16),
		Allocator: a,
	})
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func TestEngineAcceleratesLoop(t *testing.T) {
	// Reference GPP-only cycles.
	cRef := loopCore(t)
	gppCycles, _, err := RunGPPOnly(cRef, gpp.DefaultTiming(), 1_000_000)
	if err != nil {
		t.Fatal(err)
	}

	c := loopCore(t)
	e := newTestEngine(t, nil)
	rep, err := e.Run(c, 1_000_000)
	if err != nil {
		t.Fatal(err)
	}
	if c.Regs[isa.A0] != loopReference(200) {
		t.Fatalf("architectural result corrupted: %d", c.Regs[isa.A0])
	}
	if rep.Offloads == 0 {
		t.Fatal("hot loop never offloaded")
	}
	if rep.CGRAInstrs == 0 || rep.OffloadRate() < 0.5 {
		t.Errorf("offload rate = %v, want > 0.5 for a hot loop", rep.OffloadRate())
	}
	if rep.TotalCycles >= gppCycles {
		t.Errorf("no speedup: transrec %d vs gpp %d cycles", rep.TotalCycles, gppCycles)
	}
	if rep.TotalCycles != rep.GPPCycles+rep.CGRACycles {
		t.Error("cycle accounting inconsistent")
	}
	if rep.TotalInstrs != rep.GPPInstrs+rep.CGRAInstrs {
		t.Error("instruction accounting inconsistent")
	}
}

// loopReference mirrors loopProgram's arithmetic.
func loopReference(n int) uint32 {
	var sum uint32
	for i := uint32(0); i < uint32(n); i++ {
		sum += (i << 1) + (i ^ sum)
	}
	return sum
}

// Architectural results must be identical regardless of allocator: movement
// changes where configurations execute, never what they compute.
func TestAllocatorsPreserveArchitecturalState(t *testing.T) {
	g := fabric.NewGeometry(2, 16)
	allocators := []alloc.Allocator{
		alloc.Baseline{},
		alloc.NewUtilizationAware(g),
		alloc.NewUtilizationAware(g, WithDiagonal()),
		alloc.NewHealthAware(g, 8),
	}
	var want uint32
	for i, a := range allocators {
		c := loopCore(t)
		e := newTestEngine(t, a)
		if _, err := e.Run(c, 1_000_000); err != nil {
			t.Fatal(err)
		}
		if i == 0 {
			want = c.Regs[isa.A0]
			continue
		}
		if c.Regs[isa.A0] != want {
			t.Errorf("%s changed the result: %d vs %d", a.Name(), c.Regs[isa.A0], want)
		}
	}
}

// WithDiagonal is a tiny helper to keep the table above readable.
func WithDiagonal() alloc.Option { return alloc.WithPattern(alloc.Diagonal{}) }

func TestBaselineUtilizationBiasedTopLeft(t *testing.T) {
	c := loopCore(t)
	e := newTestEngine(t, alloc.Baseline{})
	rep, err := e.Run(c, 1_000_000)
	if err != nil {
		t.Fatal(err)
	}
	u := rep.Util
	maxD, cell := u.Max()
	if maxD == 0 {
		t.Fatal("no utilization recorded")
	}
	if cell.Col > 2 {
		t.Errorf("hottest FU at %v, expected near column 0 (greedy corner bias)", cell)
	}
	// Row 0 must be at least as hot as row 1 on average.
	var r0, r1 float64
	for col := 0; col < u.Geom.Cols; col++ {
		r0 += u.At(0, col)
		r1 += u.At(1, col)
	}
	if r0 < r1 {
		t.Errorf("row 0 avg %v < row 1 avg %v; greedy bias missing", r0, r1)
	}
}

func TestRotationFlattensUtilization(t *testing.T) {
	g := fabric.NewGeometry(2, 16)
	run := func(a alloc.Allocator) *Report {
		c := loopCore(t)
		e := newTestEngine(t, a)
		rep, err := e.Run(c, 1_000_000)
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}
	base := run(alloc.Baseline{})
	rot := run(alloc.NewUtilizationAware(g))

	bMax, _ := base.Util.Max()
	rMax, _ := rot.Util.Max()
	if rMax >= bMax {
		t.Errorf("rotation did not reduce worst-case duty: %v vs %v", rMax, bMax)
	}
	// Averages should be close: rotation redistributes, it does not add
	// work (durations can differ slightly via reconfiguration charges).
	if ratio := rot.Util.Avg() / base.Util.Avg(); ratio < 0.8 || ratio > 1.25 {
		t.Errorf("rotation changed average duty too much: ratio %v", ratio)
	}
}

func TestRotationPerformanceOverheadNegligible(t *testing.T) {
	g := fabric.NewGeometry(2, 16)
	run := func(a alloc.Allocator) uint64 {
		c := loopCore(t)
		e := newTestEngine(t, a)
		rep, err := e.Run(c, 1_000_000)
		if err != nil {
			t.Fatal(err)
		}
		return rep.TotalCycles
	}
	base := run(alloc.Baseline{})
	rot := run(alloc.NewUtilizationAware(g))
	overhead := float64(rot)/float64(base) - 1
	if overhead > 0.02 {
		t.Errorf("rotation performance overhead %.2f%% exceeds 2%%", overhead*100)
	}
}

func TestEarlyExitOnDivergentBranch(t *testing.T) {
	// A loop with a data-dependent inner branch: configurations capturing
	// one direction must early-exit when the other direction occurs.
	src := `
	_start:
		li   s0, 0
		li   s1, 0
		li   s2, 300
	loop:
		andi t0, s1, 3
		beqz t0, skip
		addi s0, s0, 7
	skip:
		addi s0, s0, 1
		addi s1, s1, 1
		blt  s1, s2, loop
		mv   a0, s0
		ecall
	`
	p, err := isa.Assemble(src, isa.AsmOptions{TextBase: gpp.TextBase})
	if err != nil {
		t.Fatal(err)
	}
	c := gpp.New(p)
	e := newTestEngine(t, nil)
	rep, err := e.Run(c, 1_000_000)
	if err != nil {
		t.Fatal(err)
	}
	want := uint32(300 + 225*7)
	if c.Regs[isa.A0] != want {
		t.Fatalf("result %d, want %d", c.Regs[isa.A0], want)
	}
	if rep.Offloads > 0 && rep.EarlyExits == 0 {
		t.Error("data-dependent branch never caused an early exit")
	}
}

func TestProfitGate(t *testing.T) {
	// With the gate on, no configuration may be projected slower than GPP.
	c := loopCore(t)
	e := newTestEngine(t, nil)
	rep, err := e.Run(c, 1_000_000)
	if err != nil {
		t.Fatal(err)
	}
	for _, cfg := range e.Cache().Configs() {
		var gppCycles uint64
		tm := gpp.DefaultTiming()
		for _, op := range cfg.Ops {
			gppCycles += tm.CyclesFor(op.Inst, op.Taken)
		}
		if 4+cfg.ExecCycles() >= gppCycles {
			t.Errorf("unprofitable config at %#x cached", cfg.StartPC)
		}
	}
	_ = rep
}

func TestEngineOnRealBenchmark(t *testing.T) {
	b, _ := prog.ByName("crc32")
	c, err := b.NewCore(prog.Tiny)
	if err != nil {
		t.Fatal(err)
	}
	e := newTestEngine(t, nil)
	rep, err := e.Run(c, b.MaxInstructions)
	if err != nil {
		t.Fatal(err)
	}
	// Architectural correctness through the whole engine.
	if err := b.Check(c.Mem, c.Regs[isa.A0], prog.Tiny); err != nil {
		t.Fatal(err)
	}
	if rep.Offloads == 0 {
		t.Error("crc32 hot loop never offloaded")
	}
	if rep.Translations == 0 || rep.Cache.Insertions == 0 {
		t.Error("no translations recorded")
	}
}

// TestUnplaceableConfigFallsBackToGPP kills the whole fabric between two
// runs sharing one engine: the cached configurations (translated healthy)
// have no live placement left, so the baseline allocator cannot move them
// and every offload must fall back to the GPP — with the architectural
// result still correct and all cycles attributed to the GPP.
func TestUnplaceableConfigFallsBackToGPP(t *testing.T) {
	b, _ := prog.ByName("crc32")
	geom := fabric.NewGeometry(2, 8)
	health := fabric.NewHealth(geom)
	e, err := NewEngine(Options{Geom: geom, Health: health})
	if err != nil {
		t.Fatal(err)
	}

	c1, err := b.NewCore(prog.Tiny)
	if err != nil {
		t.Fatal(err)
	}
	rep1, err := e.Run(c1, b.MaxInstructions)
	if err != nil {
		t.Fatal(err)
	}
	if rep1.Offloads == 0 {
		t.Fatal("healthy run never offloaded; the fallback test needs cached configs")
	}

	for r := 0; r < geom.Rows; r++ {
		for col := 0; col < geom.Cols; col++ {
			health.Kill(fabric.Cell{Row: r, Col: col})
		}
	}
	c2, err := b.NewCore(prog.Tiny)
	if err != nil {
		t.Fatal(err)
	}
	rep2, err := e.Run(c2, b.MaxInstructions)
	if err != nil {
		t.Fatal(err)
	}
	if err := b.Check(c2.Mem, c2.Regs[isa.A0], prog.Tiny); err != nil {
		t.Fatalf("wrong result on fully dead fabric: %v", err)
	}
	// Report counters accumulate across runs on a shared engine; the
	// second run must have added no offloads and no CGRA instructions.
	if rep2.Offloads != rep1.Offloads {
		t.Errorf("dead fabric still offloaded: %d -> %d", rep1.Offloads, rep2.Offloads)
	}
	if rep2.CGRAInstrs != rep1.CGRAInstrs {
		t.Errorf("dead fabric executed CGRA instructions: %d -> %d", rep1.CGRAInstrs, rep2.CGRAInstrs)
	}
	if got := rep2.GPPInstrs - rep1.GPPInstrs; got != c2.RetiredCount() {
		t.Errorf("GPP fallback attributed %d instrs, want all %d retired", got, c2.RetiredCount())
	}
}

func TestRunGPPOnlyMatchesInterpreter(t *testing.T) {
	c := loopCore(t)
	cycles, classes, err := RunGPPOnly(c, gpp.DefaultTiming(), 1_000_000)
	if err != nil {
		t.Fatal(err)
	}
	if cycles == 0 || classes.Total() != c.RetiredCount() {
		t.Errorf("cycles=%d classTotal=%d retired=%d", cycles, classes.Total(), c.RetiredCount())
	}
	if c.Regs[isa.A0] != loopReference(200) {
		t.Error("GPP-only run corrupted result")
	}
}

func TestEngineLimit(t *testing.T) {
	p, err := isa.Assemble("loop: j loop", isa.AsmOptions{TextBase: gpp.TextBase})
	if err != nil {
		t.Fatal(err)
	}
	e := newTestEngine(t, nil)
	if _, err := e.Run(gpp.New(p), 1000); err == nil {
		t.Fatal("expected instruction-limit error")
	}
}

func TestOptionsValidation(t *testing.T) {
	if _, err := NewEngine(Options{}); err == nil {
		t.Error("zero geometry accepted")
	}
	bad := Options{Geom: fabric.NewGeometry(2, 8)}
	bad.Lat = fabric.LatencyTable{ALU: 1} // missing others
	if _, err := NewEngine(bad); err == nil {
		t.Error("invalid latency table accepted")
	}
}
