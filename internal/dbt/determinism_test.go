package dbt

import (
	"reflect"
	"testing"

	"agingcgra/internal/alloc"
	"agingcgra/internal/cfgcache"
	"agingcgra/internal/core"
	"agingcgra/internal/fabric"
	"agingcgra/internal/gpp"
	"agingcgra/internal/isa"
	"agingcgra/internal/mapper"
	"agingcgra/internal/prog"
	"agingcgra/internal/remap"
)

// naiveEngine is an independent reference implementation of the TransRec
// co-simulation, transcribed from the original (pre-optimization) engine:
// per-instruction map probes through the plain cfgcache API, per-op replay
// accounting, and switch-dispatched timing attribution. The optimized
// Engine must produce bit-identical Reports against it on every workload.
type naiveEngine struct {
	opts  Options
	cache *cfgcache.Cache
	ctrl  *core.Controller

	trace []mapper.TraceEntry

	residentPC  uint32
	residentOff fabric.Offset
	hasResident bool

	rep Report
}

func newNaiveEngine(opts Options) (*naiveEngine, error) {
	opts.applyDefaults()
	if err := opts.Geom.Validate(); err != nil {
		return nil, err
	}
	ctrl, err := core.NewController(opts.Geom, opts.Allocator)
	if err != nil {
		return nil, err
	}
	return &naiveEngine{
		opts:  opts,
		cache: cfgcache.New(opts.CacheCapacity, opts.CachePolicy),
		ctrl:  ctrl,
	}, nil
}

func (e *naiveEngine) run(c *gpp.Core, limit uint64) (*Report, error) {
	for !c.Halted() {
		if c.RetiredCount() >= limit {
			return nil, errLimit
		}
		if cfg, ok := e.cache.Lookup(c.PC); ok {
			e.finalizeTrace()
			if err := e.offload(c, cfg); err != nil {
				return nil, err
			}
			continue
		}
		r, err := c.Step()
		if err != nil {
			return nil, err
		}
		e.rep.GPPCycles += e.opts.Timing.CyclesFor(r.Inst, r.Taken)
		e.rep.GPPInstrs++
		e.rep.GPPClasses[r.Inst.Op.Class()]++
		e.observe(r)
	}
	e.finalizeTrace()
	e.rep.Geom = e.opts.Geom
	e.rep.AllocatorName = e.ctrl.Allocator().Name()
	e.rep.TotalCycles = e.rep.GPPCycles + e.rep.CGRACycles
	e.rep.TotalInstrs = e.rep.GPPInstrs + e.rep.CGRAInstrs
	e.rep.Cache = e.cache.Stats()
	e.rep.Util = e.ctrl.Utilization()
	rep := e.rep
	return &rep, nil
}

var errLimit = &limitError{}

type limitError struct{}

func (*limitError) Error() string { return "naive: instruction limit reached" }

func (e *naiveEngine) offload(c *gpp.Core, cfg *fabric.Config) error {
	off, _ := e.ctrl.Place(cfg)

	exitSeq := cfg.Ops[0].Seq
	early := false
	for _, op := range cfg.Ops {
		if c.PC != op.PC {
			early = true
			break
		}
		r, err := c.Step()
		if err != nil {
			return err
		}
		e.rep.CGRAInstrs++
		e.rep.CGRAClasses[op.Inst.Op.Class()]++
		exitSeq = op.Seq
		if op.Inst.IsBranch() && r.Taken != op.Taken {
			early = true
			break
		}
	}

	execCycles := cfg.ExecCyclesTo(exitSeq)
	overhead := e.opts.OffloadOverhead
	var reconfig uint64
	if !e.hasResident || e.residentPC != cfg.StartPC || e.residentOff != off {
		if e.opts.ExposeReconfig {
			if rc := e.opts.Geom.ReconfigCycles(); rc > overhead {
				reconfig = rc - overhead
			}
		}
		e.residentPC, e.residentOff, e.hasResident = cfg.StartPC, off, true
		e.rep.ReconfigEvents++
	}
	duration := overhead + reconfig + execCycles
	e.ctrl.Commit(cfg, off, duration)

	e.rep.StressSum += uint64(len(cfg.Cells())) * duration
	e.rep.CGRACycles += duration
	e.rep.OverheadCycles += overhead
	e.rep.ReconfigCycles += reconfig
	e.rep.Offloads++
	if early {
		e.rep.EarlyExits++
	}
	return nil
}

func (e *naiveEngine) observe(r gpp.Retire) {
	e.trace = append(e.trace, mapper.TraceEntry{PC: r.PC, Inst: r.Inst, Taken: r.Taken})
	backEdge := r.Taken && r.Inst.IsControl() && r.Inst.Imm < 0
	terminator := r.Inst.Op == isa.JALR ||
		r.Inst.Op == isa.ECALL ||
		backEdge ||
		len(e.trace) >= e.opts.MaxTraceLen ||
		e.cache.Contains(r.NextPC)
	if terminator {
		e.finalizeTrace()
	}
}

func (e *naiveEngine) finalizeTrace() {
	if len(e.trace) < e.opts.MinOps {
		e.trace = e.trace[:0]
		return
	}
	cfg, consumed := mapper.Map(e.trace, mapper.Options{
		Geom: e.opts.Geom,
		Lat:  e.opts.Lat,
	})
	e.trace = e.trace[:0]
	if cfg == nil || consumed < e.opts.MinOps {
		return
	}
	if !e.opts.NoProfitGate {
		var gppCycles uint64
		for _, op := range cfg.Ops {
			gppCycles += e.opts.Timing.CyclesFor(op.Inst, op.Taken)
		}
		if e.opts.OffloadOverhead+cfg.ExecCycles() >= gppCycles {
			return
		}
	}
	e.cache.Insert(cfg)
	e.rep.Translations++
}

// TestEngineMatchesNaiveReference asserts that the optimized Engine (dense
// translation table, guided replay, batched prefix accounting, precomputed
// timing tables) produces a Report identical in every field — cycle and
// instruction counters, class vectors, cache statistics and the
// utilization map — to the naive reference implementation, across
// workloads and allocators.
func TestEngineMatchesNaiveReference(t *testing.T) {
	workloads := []string{"crc32", "bitcount", "stringsearch"}
	allocators := []struct {
		name    string
		factory func(fabric.Geometry) alloc.Allocator
	}{
		{"baseline", func(fabric.Geometry) alloc.Allocator { return alloc.Baseline{} }},
		{"utilization-aware", func(g fabric.Geometry) alloc.Allocator { return alloc.NewUtilizationAware(g) }},
	}
	geom := fabric.NewGeometry(2, 16)

	for _, name := range workloads {
		b, ok := prog.ByName(name)
		if !ok {
			t.Fatalf("unknown benchmark %q", name)
		}
		for _, al := range allocators {
			t.Run(name+"/"+al.name, func(t *testing.T) {
				cNaive, err := b.NewCore(prog.Tiny)
				if err != nil {
					t.Fatal(err)
				}
				ref, err := newNaiveEngine(Options{Geom: geom, Allocator: al.factory(geom)})
				if err != nil {
					t.Fatal(err)
				}
				want, err := ref.run(cNaive, b.MaxInstructions)
				if err != nil {
					t.Fatal(err)
				}

				cOpt, err := b.NewCore(prog.Tiny)
				if err != nil {
					t.Fatal(err)
				}
				eng, err := NewEngine(Options{Geom: geom, Allocator: al.factory(geom)})
				if err != nil {
					t.Fatal(err)
				}
				got, err := eng.Run(cOpt, b.MaxInstructions)
				if err != nil {
					t.Fatal(err)
				}

				if !reflect.DeepEqual(want, got) {
					t.Errorf("optimized report diverges from naive reference\nnaive: %+v\n  opt: %+v", want, got)
				}
				if cNaive.Regs != cOpt.Regs {
					t.Errorf("architectural register state diverges")
				}
			})
		}
	}
}

// TestShapeEquivalentArchitecturalState is the engine-level half of the
// architectural-equivalence layer behind the shape-adaptive remapper and
// the translation-time shape search: for every kernel in the suite,
// co-simulating on reshaped fabrics (2×16, 4×8, 8×4, 16×2 — the same 32
// FUs in different rectangles) under the remap allocator yields
// byte-identical architectural state in the Report and the core — the same
// retired-instruction total and the same final register file, with the
// golden checksum intact — and the same holds when the DBT itself chooses
// the shape per translation (ShapeTranslations walking the candidate
// ladder). Shapes redistribute ops in space and change only the
// performance numbers; any divergence here means a mapping leaked into
// architectural behaviour and reshaping (at either layer) would be
// unsound.
func TestShapeEquivalentArchitecturalState(t *testing.T) {
	geoms := []fabric.Geometry{
		fabric.NewGeometry(2, 16),
		fabric.NewGeometry(4, 8),
		fabric.NewGeometry(8, 4),
		fabric.NewGeometry(16, 2),
	}
	modes := []struct {
		name   string
		shaped bool
	}{
		{"identity-translation", false},
		{"dbt-chosen-shapes", true},
	}
	for _, name := range prog.Names() {
		t.Run(name, func(t *testing.T) {
			b, ok := prog.ByName(name)
			if !ok {
				t.Fatalf("unknown benchmark %q", name)
			}
			type outcome struct {
				geom   fabric.Geometry
				mode   string
				regs   [isa.NumRegs]uint32
				instrs uint64
			}
			var first *outcome
			for _, mode := range modes {
				for _, g := range geoms {
					c, err := b.NewCore(prog.Tiny)
					if err != nil {
						t.Fatal(err)
					}
					eng, err := NewEngine(Options{
						Geom:              g,
						Allocator:         remap.New(g),
						ShapeTranslations: mode.shaped,
					})
					if err != nil {
						t.Fatal(err)
					}
					rep, err := eng.Run(c, b.MaxInstructions)
					if err != nil {
						t.Fatal(err)
					}
					if err := b.Check(c.Mem, c.Regs[isa.A0], prog.Tiny); err != nil {
						t.Fatalf("%v/%s: wrong architectural result: %v", g, mode.name, err)
					}
					got := &outcome{geom: g, mode: mode.name, regs: c.Regs, instrs: rep.TotalInstrs}
					if first == nil {
						first = got
						continue
					}
					if got.regs != first.regs {
						t.Errorf("register file diverges between %v/%s and %v/%s",
							first.geom, first.mode, g, mode.name)
					}
					if got.instrs != first.instrs {
						t.Errorf("retired instructions diverge: %v/%s ran %d, %v/%s ran %d",
							first.geom, first.mode, first.instrs, g, mode.name, got.instrs)
					}
				}
			}
		})
	}
}
