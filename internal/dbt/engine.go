// Package dbt implements the TransRec execution engine (Fig. 2 of the
// paper): a GPP core running the application, a dynamic binary translation
// module that captures retired instruction sequences and maps them onto the
// CGRA, a PC-indexed configuration cache, and the reconfigurable unit
// itself with the aging-mitigation controller deciding where each
// configuration lands.
//
// Functional execution always happens on the gpp.Core interpreter; the
// engine attributes cycles and NBTI stress to the GPP or the CGRA according
// to where each dynamic instruction logically executed. This trace-driven
// split keeps architectural state trivially correct while modelling the
// performance and aging behaviour the paper measures.
package dbt

import (
	"fmt"
	"runtime"

	"agingcgra/internal/alloc"
	"agingcgra/internal/cfgcache"
	"agingcgra/internal/core"
	"agingcgra/internal/fabric"
	"agingcgra/internal/gpp"
	"agingcgra/internal/isa"
	"agingcgra/internal/mapper"
	"agingcgra/internal/pscan"
	recov "agingcgra/internal/recover"
	"agingcgra/internal/searchcost"
)

// Options configures an engine instance.
type Options struct {
	// Geom is the CGRA fabric geometry.
	Geom fabric.Geometry
	// Lat is the per-class column latency table; zero value selects
	// fabric.DefaultLatencies.
	Lat fabric.LatencyTable
	// Timing is the GPP cycle model; zero value selects gpp.DefaultTiming.
	Timing gpp.Timing
	// Allocator decides configuration placement; nil selects the baseline.
	Allocator alloc.Allocator
	// CacheCapacity is the configuration cache size in entries
	// (default 128).
	CacheCapacity int
	// CachePolicy is the replacement policy (default LRU).
	CachePolicy cfgcache.Policy
	// MinOps is the smallest profitable configuration (default 4).
	MinOps int
	// MaxTraceLen caps captured trace length (default 32): the DBT's
	// translation window, a property of the hardware translator (its
	// reorder-buffer depth), independent of the fabric size. Traces also
	// terminate at backward-taken branches (superblock formation), so loop
	// bodies become whole configurations re-executed per iteration.
	MaxTraceLen int
	// OffloadOverhead is the per-offload cycle cost of moving the input
	// context in and results out (default 2; the unit is tightly coupled
	// to the GPP register file). Configuration broadcast overlaps with it;
	// only the excess reconfiguration time is charged.
	OffloadOverhead uint64
	// NoProfitGate disables the DBT's profitability filter. By default a
	// translated configuration is only cached when its projected CGRA time
	// beats its projected GPP time.
	NoProfitGate bool
	// ExposeReconfig disables the wavefront overlap of configuration
	// broadcast and execution: an ablation that charges the excess of
	// ReconfigCycles over the offload overhead whenever the resident
	// configuration (or its offset) changes. The default design streams
	// configuration columns ahead of the execution wave (CfgLines >
	// ColumnsPerCycle), hiding the reload entirely.
	ExposeReconfig bool
	// Controller, when non-nil, is shared with the engine instead of
	// creating a fresh one. Sharing lets a suite of applications accumulate
	// stress on one fabric, as a deployed chip would; the Allocator option
	// is ignored in that case.
	Controller *core.Controller
	// DisabledCells marks failed FUs the DBT must map around (the
	// graceful-degradation extension). Existing cached configurations are
	// not retrofitted; pair with a fresh engine to model a post-failure
	// restart.
	DisabledCells []fabric.Cell
	// Health is the first-class form of DisabledCells: a mutable fabric
	// health map shared between the mapper (which places new translations
	// only on live cells) and the aging-mitigation controller (which skips
	// pivot offsets that would rotate a configuration onto a dead FU). When
	// both Health and DisabledCells are set, Health wins.
	Health *fabric.Health
	// StaleTranslations models a DBT whose translation memory predates the
	// failures: new translations are mapped for the pristine fabric (no
	// health mask), as configurations translated at deploy time would be,
	// and only placement respects the health map. This is the regime where
	// clustered failures bite — no pivot of a healthy-shaped full-length
	// configuration avoids a dead column — and the regime the shape-adaptive
	// remap allocator (alloc.ConfigRemapper) is built to rescue. The default
	// (false) re-translates against current health, modelling a DBT flushed
	// on every failure event.
	StaleTranslations bool
	// Wear is the fabric's accumulated cross-epoch NBTI stress map.
	// Wear-adaptive allocators (alloc.WearSetter) receive it through the
	// controller and re-explore their placement whenever its version
	// changes; the engine then observes the new pivot through the resident
	// (StartPC, Offset) identity and accounts a reconfiguration event,
	// exactly as it does when a kill forces the placement off a dead cell.
	// Wear never affects placeability — a worn FU still computes — so the
	// unplaceable memo below stays keyed on health alone.
	Wear *fabric.Wear
	// ShapeTranslations enables translation-time shape search: instead of
	// mapping every hot trace at the identity full-fabric shape, the DBT
	// maps it once per rung of the candidate shape ladder (Ladder) against
	// the current health mask and keeps the candidate consuming the most
	// ops, then the fewest ExecCycles, then the least projected wear on the
	// cells it would occupy — fresh translations are born shape- and
	// health-aware instead of relying on the allocation-time remap rescue.
	// Because the chosen shape is a decision taken under one fabric state,
	// the translation cache is then keyed on the (health, wear) versions
	// (cfgcache.Cache.SyncState, mirroring RemapCache): any version move
	// flushes the translations wholesale and the trace builder re-captures
	// against the new state. Mutually exclusive with StaleTranslations —
	// shape-aware translation is precisely the regime where the DBT's
	// translation memory follows the fabric state instead of predating it.
	ShapeTranslations bool
	// Ladder is the candidate shape ladder the translation-time search
	// walks (zero value: fabric.DefaultShapeLadder, the same ladder the
	// shape-adaptive remapper searches). Only consulted when
	// ShapeTranslations is set.
	Ladder fabric.ShapeLadder
	// SearchWorkers bounds the goroutine pool the translation-time ladder
	// scan fans its rungs out over (<= 0 selects GOMAXPROCS; 1 forces the
	// serial scan). Any worker count yields byte-identical translations
	// and searchcost counters: every rung is mapped and counted, and the
	// reduction picks the winner by (consumed desc, ExecCycles asc, wear
	// asc, ladder order) in stripe order. Only consulted when
	// ShapeTranslations is set.
	SearchWorkers int
	// Recovery attaches the fault-injection and detection/recovery monitor
	// (internal/recover). When set, every offload draws fault
	// manifestations from the monitor's truth maps, sampled offloads are
	// verified against the GPP reference, detected faults trigger bounded
	// on-fabric retries and then GPP backoff, and the fail-stop latch
	// routes everything to the GPP. In this regime Health should be the
	// monitor's *observed* map, not ground truth — the whole point is that
	// placement plans around what the runtime detected. Nil (the default)
	// costs the fault-free path nothing.
	Recovery *recov.Monitor
}

func (o *Options) applyDefaults() {
	if o.Lat == (fabric.LatencyTable{}) {
		o.Lat = fabric.DefaultLatencies()
	}
	if o.Timing == (gpp.Timing{}) {
		o.Timing = gpp.DefaultTiming()
	}
	if o.Allocator == nil {
		o.Allocator = alloc.Baseline{}
	}
	if o.CacheCapacity == 0 {
		o.CacheCapacity = 128
	}
	if o.MinOps == 0 {
		o.MinOps = 4
	}
	if o.MaxTraceLen == 0 {
		o.MaxTraceLen = 32
	}
	if o.OffloadOverhead == 0 {
		o.OffloadOverhead = 2
	}
}

// ClassCounts indexes dynamic instruction counts by isa.Class.
type ClassCounts [8]uint64

// Total sums all classes.
func (c ClassCounts) Total() uint64 {
	var t uint64
	for _, v := range c {
		t += v
	}
	return t
}

// Add accumulates other into c.
func (c *ClassCounts) Add(other ClassCounts) {
	for i := range c {
		c[i] += other[i]
	}
}

// Report aggregates everything a run produced; the energy and aging models
// consume it.
type Report struct {
	// Geom and AllocatorName identify the configuration.
	Geom          fabric.Geometry
	AllocatorName string

	// Cycle accounting. TotalCycles = GPPCycles + CGRACycles;
	// CGRACycles includes OverheadCycles and ReconfigCycles.
	TotalCycles    uint64
	GPPCycles      uint64
	CGRACycles     uint64
	OverheadCycles uint64
	ReconfigCycles uint64

	// Instruction accounting.
	TotalInstrs uint64
	GPPInstrs   uint64
	CGRAInstrs  uint64
	GPPClasses  ClassCounts
	CGRAClasses ClassCounts

	// Offload behaviour.
	Offloads       uint64
	EarlyExits     uint64
	Translations   uint64
	ReconfigEvents uint64
	Cache          cfgcache.Stats

	// Placement outcomes under failures. Remaps counts offloads kept
	// on-fabric by a shape-adaptive substitution (PlaceOrRemap returned a
	// configuration other than the translated one); GPPFallbacks counts
	// offloads the placement refused outright — every pivot would drive a
	// failed FU and no alternative shape fit — so the step retired on the
	// GPP (fresh refusals and unplaceable-memo hits alike). Both stay zero
	// on a healthy fabric.
	Remaps       uint64
	GPPFallbacks uint64

	// Search tallies the run's placement/shape-search work — the engine's
	// own translation-time ladder scans plus the allocator's pivot and
	// rescue scans (searchcost.Instrumented), as deltas over this run — so
	// the derived hardware-cost model can price the searches the hold
	// periods and caches amortise.
	Search searchcost.Counts

	// StressSum is the total FU-cycle product of this run: for every
	// offload, the number of configured cells times the residency cycles.
	// The energy model charges active FU power against it.
	StressSum uint64

	// Util is the per-FU utilization snapshot.
	Util *core.UtilizationMap
}

// OffloadRate is the fraction of dynamic instructions executed on the CGRA.
func (r *Report) OffloadRate() float64 {
	if r.TotalInstrs == 0 {
		return 0
	}
	return float64(r.CGRAInstrs) / float64(r.TotalInstrs)
}

// Engine co-simulates one workload on the TransRec system.
type Engine struct {
	opts     Options
	cache    *cfgcache.Cache
	ctrl     *core.Controller
	health   *fabric.Health
	disabled func(fabric.Cell) bool

	// shapes is the materialised translation-time shape ladder (nil when
	// ShapeTranslations is off); search tallies the ladder scans for the
	// derived cost model. stateFlushed records that a SyncState flush
	// happened in finalizeTrace after the current offload's configuration
	// was already looked up — that configuration's shape decision is stale
	// and the offload must take the GPP path even though the cache state
	// is already resynced.
	shapes       []fabric.Geometry
	search       searchcost.Counts
	stateFlushed bool

	// unplaceable memoizes configurations the controller found no live
	// placement for, keyed by StartPC and invalidated whenever the health
	// map changes.
	unplaceable    map[uint32]bool
	unplaceableVer uint64

	// Trace capture state.
	trace []mapper.TraceEntry

	// Resident configuration identity for reconfiguration accounting.
	residentPC  uint32
	residentOff fabric.Offset
	hasResident bool

	// Per-text-index timing/class tables for the GPP attribution path,
	// built once per program: cycle cost for the not-taken and taken
	// outcomes and the instruction class, so the per-retirement accounting
	// is three array loads instead of two switch dispatches.
	tabProg    *isa.Program
	cycNT, cyc []uint64
	class      []isa.Class

	rep Report
}

// ensureTables (re)builds the per-instruction attribution tables for p.
func (e *Engine) ensureTables(p *isa.Program) {
	if e.tabProg == p {
		return
	}
	e.tabProg = p
	e.cycNT = make([]uint64, len(p.Text))
	e.cyc = make([]uint64, len(p.Text))
	e.class = make([]isa.Class, len(p.Text))
	for i, in := range p.Text {
		e.cycNT[i] = e.opts.Timing.CyclesFor(in, false)
		e.cyc[i] = e.opts.Timing.CyclesFor(in, true)
		e.class[i] = in.Op.Class()
	}
}

// NewEngine validates options and builds an engine.
func NewEngine(opts Options) (*Engine, error) {
	opts.applyDefaults()
	if err := opts.Geom.Validate(); err != nil {
		return nil, err
	}
	if err := opts.Lat.Validate(); err != nil {
		return nil, err
	}
	ctrl := opts.Controller
	if ctrl == nil {
		var err error
		ctrl, err = core.NewController(opts.Geom, opts.Allocator)
		if err != nil {
			return nil, err
		}
	} else if ctrl.Tracker().Geometry() != opts.Geom {
		return nil, fmt.Errorf("dbt: shared controller geometry %v does not match engine geometry %v",
			ctrl.Tracker().Geometry(), opts.Geom)
	}
	health := opts.Health
	if health == nil && len(opts.DisabledCells) > 0 {
		h, err := fabric.NewHealthWithDead(opts.Geom, opts.DisabledCells)
		if err != nil {
			return nil, fmt.Errorf("dbt: %w", err)
		}
		health = h
	}
	if opts.ShapeTranslations && opts.StaleTranslations {
		return nil, fmt.Errorf("dbt: ShapeTranslations and StaleTranslations are mutually exclusive: " +
			"shape-aware translation keys the translation memory on the fabric state, stale translation predates it")
	}
	e := &Engine{
		opts:   opts,
		cache:  cfgcache.New(opts.CacheCapacity, opts.CachePolicy),
		ctrl:   ctrl,
		health: health,
		trace:  make([]mapper.TraceEntry, 0, opts.MaxTraceLen),
	}
	if opts.ShapeTranslations {
		ladder := opts.Ladder
		if ladder.Name == "" && len(ladder.ColFracs) == 0 && len(ladder.RowFracs) == 0 {
			ladder = fabric.DefaultShapeLadder()
		}
		e.shapes = ladder.Shapes(opts.Geom)
		if len(e.shapes) == 0 {
			// A malformed ladder (e.g. fractions on one axis only) must not
			// silently degrade to identity translation while the run is
			// treated as shape-aware everywhere else.
			return nil, fmt.Errorf("dbt: shape ladder %q expands to no candidate shapes for %v",
				ladder.Name, opts.Geom)
		}
	}
	if health != nil {
		// StaleTranslations withholds the mask from the mapper: new
		// translations assume a pristine fabric, so clustered failures can
		// make them unplaceable — the case the remap layer rescues.
		if !opts.StaleTranslations {
			e.disabled = health.Dead
		}
		// An engine-owned controller adopts the health map so placement
		// avoids dead cells; a shared controller's health is the owner's
		// business (the lifetime simulator attaches the same map to both).
		if opts.Controller == nil {
			ctrl.SetHealth(health)
		}
	}
	// Same ownership rule for the wear map: an engine-owned controller
	// adopts it so wear-adaptive allocators see the aging history.
	if opts.Wear != nil && opts.Controller == nil {
		ctrl.SetWear(opts.Wear)
	}
	return e, nil
}

// Controller exposes the aging-mitigation controller.
func (e *Engine) Controller() *core.Controller { return e.ctrl }

// Cache exposes the configuration cache.
func (e *Engine) Cache() *cfgcache.Cache { return e.cache }

// Run executes the core to completion (or the instruction limit) on the
// TransRec system and returns the report.
func (e *Engine) Run(c *gpp.Core, limit uint64) (*Report, error) {
	// Index the configuration cache densely over the text segment so the
	// two per-retired-instruction residency probes (Lookup below and
	// Contains in observe) are array loads instead of map operations, and
	// precompute the per-instruction timing/class attribution tables.
	if p := c.Program(); p != nil {
		e.cache.EnableDense(p.TextBase, len(p.Text))
		e.ensureTables(p)
	}
	// The allocator may be shared across a suite of engines (one fabric),
	// so its search counters are attributed to this run as a delta.
	var allocStart searchcost.Counts
	instrumented, _ := e.ctrl.Allocator().(searchcost.Instrumented)
	if instrumented != nil {
		allocStart = instrumented.SearchCounts()
	}
	// Same delta convention for the recovery monitor's checker/retry work:
	// the monitor persists across the epoch's engines.
	var monStart searchcost.Counts
	if e.opts.Recovery != nil {
		monStart = e.opts.Recovery.SearchCounts()
	}
	for !c.Halted() {
		if c.RetiredCount() >= limit {
			return nil, fmt.Errorf("dbt: instruction limit %d reached at pc %#x", limit, c.PC)
		}
		if cfg, ok := e.cache.Lookup(c.PC); ok {
			// Step 5-7 of Fig. 2: offload to the CGRA.
			e.finalizeTrace()
			if err := e.offload(c, cfg); err != nil {
				return nil, err
			}
			continue
		}
		// Steps 1-3: execute on the GPP while the DBT captures the trace.
		r, err := e.stepOnGPP(c)
		if err != nil {
			return nil, err
		}
		e.observe(r)
	}
	e.finalizeTrace()
	e.rep.Geom = e.opts.Geom
	e.rep.AllocatorName = e.ctrl.Allocator().Name()
	e.rep.TotalCycles = e.rep.GPPCycles + e.rep.CGRACycles
	e.rep.TotalInstrs = e.rep.GPPInstrs + e.rep.CGRAInstrs
	e.rep.Cache = e.cache.Stats()
	e.rep.Util = e.ctrl.Utilization()
	e.rep.Search = e.search
	if instrumented != nil {
		e.rep.Search.Add(instrumented.SearchCounts().Sub(allocStart))
	}
	if e.opts.Recovery != nil {
		e.rep.Search.Add(e.opts.Recovery.SearchCounts().Sub(monStart))
	}
	rep := e.rep
	return &rep, nil
}

// offload replays one configuration on the CGRA: the functional core steps
// through the recorded sequence, exiting early if a branch diverges from
// the captured direction. Per-op accounting is batched through the
// config's memoized prefix tables: the loop only executes and checks for
// divergence, and the instruction/class/cycle attribution is applied once
// from the count of ops that ran.
func (e *Engine) offload(c *gpp.Core, cfg *fabric.Config) error {
	if mon := e.opts.Recovery; mon != nil && mon.FabricDistrusted() {
		// Fail-stop: the first detected fault condemned the whole fabric and
		// every later offload retires on the GPP (the no-recovery baseline
		// the recovery policy is measured against). The region is already
		// translated, so the trace builder is not re-engaged.
		_, err := e.stepOnGPP(c)
		return err
	}
	if e.opts.ShapeTranslations {
		// The resident translations' shapes were decided under one
		// (health, wear) state; if either version moved, every decision is
		// stale — flush wholesale (mirroring RemapCache) and retire this
		// instruction on the GPP with the trace builder engaged, so the
		// region re-translates against the new state. finalizeTrace may
		// already have consumed the flush between this offload's cache hit
		// and this check (stateFlushed): the looked-up configuration is
		// stale all the same.
		if e.cache.SyncState(e.stateVersions()) || e.stateFlushed {
			e.stateFlushed = false
			r, err := e.stepOnGPP(c)
			if err != nil {
				return err
			}
			e.observe(r)
			return nil
		}
	}
	if h := e.ctrl.Health(); h != nil && e.unplaceable != nil {
		if e.unplaceableVer != h.Version() {
			e.unplaceable, e.unplaceableVer = nil, h.Version()
		} else if e.unplaceable[cfg.StartPC] {
			e.rep.GPPFallbacks++
			_, err := e.stepOnGPP(c)
			return err
		}
	}
	// PlaceOrRemap returns cfg itself on the ordinary path; when clustered
	// failures block every pivot of the original rectangle, a shape-adaptive
	// allocator may substitute an architecturally equivalent remapped
	// configuration (same instruction sequence, possibly a shorter prefix —
	// the rest of the region then retires on the GPP and the trace builder
	// re-engages past it). All replay and accounting below runs on whatever
	// configuration actually loads.
	mapped, off, ok := e.ctrl.PlaceOrRemap(cfg)
	if !ok {
		// Every pivot the allocator proposed would drive a failed FU and no
		// alternative shape fits either: the controller refuses the offload
		// and this step runs on the GPP. The region is already translated,
		// so the trace builder is not re-engaged.
		if e.unplaceable == nil {
			e.unplaceable = make(map[uint32]bool)
			e.unplaceableVer = e.ctrl.Health().Version()
		}
		e.unplaceable[cfg.StartPC] = true
		e.rep.GPPFallbacks++
		_, err := e.stepOnGPP(c)
		return err
	}
	if mapped != cfg {
		e.rep.Remaps++
	}

	pcs, dirs := mapped.ReplayTables()
	n, early, err := c.RunExpected(pcs, dirs)
	if err != nil {
		return err
	}

	execCycles := mapped.ExecCyclesFirst(n)
	overhead := e.opts.OffloadOverhead
	var reconfig uint64
	if !e.hasResident || e.residentPC != mapped.StartPC || e.residentOff != off {
		// Configuration broadcast (Fig. 5a) proceeds as a wavefront ahead
		// of execution and costs no extra cycles; the ExposeReconfig
		// ablation charges the excess over the offload overhead instead.
		if e.opts.ExposeReconfig {
			if rc := e.opts.Geom.ReconfigCycles(); rc > overhead {
				reconfig = rc - overhead
			}
		}
		e.residentPC, e.residentOff, e.hasResident = mapped.StartPC, off, true
		e.rep.ReconfigEvents++
	}

	if e.opts.Recovery != nil {
		e.offloadWithRecovery(mapped, off, n, early, overhead, reconfig, execCycles)
		return nil
	}

	e.rep.CGRAInstrs += uint64(n)
	e.rep.CGRAClasses.Add(ClassCounts(mapped.ClassCountsFirst(n)))
	duration := overhead + reconfig + execCycles
	e.ctrl.Commit(mapped, off, duration)

	e.rep.StressSum += uint64(len(mapped.Cells())) * duration
	e.rep.CGRACycles += duration
	e.rep.OverheadCycles += overhead
	e.rep.ReconfigCycles += reconfig
	e.rep.Offloads++
	if early {
		e.rep.EarlyExits++
	}
	return nil
}

// offloadWithRecovery runs the fault-manifestation and detection loop of
// one offload. The architectural result is already computed (functional
// execution stays on the GPP interpreter — the trace-driven split); what
// faults corrupt is the *accounting* world: a faulty unchecked execution
// commits as a silent escape, a detected one is retried on-fabric up to
// MaxRetries (each retry a real execution: stress, cycles, a fresh context
// transfer) and then abandoned to the GPP, whose re-execution cost is
// attributed at the GPP timing model over the same instruction prefix.
func (e *Engine) offloadWithRecovery(mapped *fabric.Config, off fabric.Offset, n int, early bool, overhead, reconfig, execCycles uint64) {
	mon := e.opts.Recovery
	cells := mapped.Cells()
	toGPP := false
	for attempt := 0; ; attempt++ {
		duration := overhead + execCycles
		if attempt == 0 {
			duration += reconfig
		} else {
			mon.RecordRetry(duration)
		}
		e.ctrl.Commit(mapped, off, duration)
		e.rep.StressSum += uint64(len(cells)) * duration
		e.rep.CGRACycles += duration
		e.rep.OverheadCycles += overhead
		if attempt == 0 {
			e.rep.ReconfigCycles += reconfig
			e.rep.Offloads++
		}
		faulted := mon.DrawExec(cells, off)
		checked := attempt > 0 || mon.SampleCheck()
		if !checked {
			if faulted {
				mon.RecordEscape()
			}
			break
		}
		mon.PriceCheck(n)
		if !faulted {
			if attempt > 0 {
				mon.RecordRetrySuccess()
			}
			break
		}
		mon.RecordDetection(cells, off)
		if attempt >= mon.MaxRetries() || mon.FabricDistrusted() {
			mon.RecordBackoff()
			toGPP = true
			break
		}
	}
	if toGPP {
		// The region's architectural work lands on the GPP re-execution.
		e.rep.GPPInstrs += uint64(n)
		e.rep.GPPClasses.Add(ClassCounts(mapped.ClassCountsFirst(n)))
		e.rep.GPPCycles += e.gppCyclesFirst(mapped, n)
	} else {
		e.rep.CGRAInstrs += uint64(n)
		e.rep.CGRAClasses.Add(ClassCounts(mapped.ClassCountsFirst(n)))
	}
	if early {
		e.rep.EarlyExits++
	}
}

// gppCyclesFirst prices the first n ops of a configuration at the GPP
// timing model: the backoff path's attribution. Backoffs are rare (they
// need MaxRetries consecutive detected faults), so the O(n) walk is fine.
func (e *Engine) gppCyclesFirst(cfg *fabric.Config, n int) uint64 {
	var cycles uint64
	for _, op := range cfg.Ops[:n] {
		cycles += e.opts.Timing.CyclesFor(op.Inst, op.Taken)
	}
	return cycles
}

// stateVersions snapshots the (health, wear) versions the shape decisions
// key on; an unattached map reads as version zero.
func (e *Engine) stateVersions() (healthVer, wearVer uint64) {
	if e.health != nil {
		healthVer = e.health.Version()
	}
	if w := e.ctrl.Wear(); w != nil {
		wearVer = w.Version()
	}
	return healthVer, wearVer
}

// stepOnGPP retires one instruction on the GPP and attributes its cycles,
// instruction count and class: the shared accounting of the normal GPP path
// and the unplaceable-configuration fallback (which skips the trace
// builder, since its region is already translated).
func (e *Engine) stepOnGPP(c *gpp.Core) (gpp.Retire, error) {
	r, err := c.Step()
	if err != nil {
		return r, err
	}
	if r.Taken {
		e.rep.GPPCycles += e.cyc[r.Index]
	} else {
		e.rep.GPPCycles += e.cycNT[r.Index]
	}
	e.rep.GPPInstrs++
	e.rep.GPPClasses[e.class[r.Index]]++
	return r, nil
}

// observe feeds one retired instruction to the DBT's trace builder. Traces
// end at indirect jumps, system calls, backward-taken control transfers
// (superblock formation: a loop body becomes one configuration), window
// exhaustion, or when the next PC is already translated.
func (e *Engine) observe(r gpp.Retire) {
	e.trace = append(e.trace, mapper.TraceEntry{PC: r.PC, Inst: r.Inst, Taken: r.Taken})
	backEdge := r.Taken && r.Inst.IsControl() && r.Inst.Imm < 0
	terminator := r.Inst.Op == isa.JALR ||
		r.Inst.Op == isa.ECALL ||
		backEdge ||
		len(e.trace) >= e.opts.MaxTraceLen ||
		e.cache.Contains(r.NextPC)
	if terminator {
		e.finalizeTrace()
	}
}

// finalizeTrace maps the captured trace and inserts the configuration if it
// is big enough and projected profitable. Under ShapeTranslations the
// mapping is a search over the candidate shape ladder instead of a single
// identity-shape placement.
func (e *Engine) finalizeTrace() {
	if len(e.trace) < e.opts.MinOps {
		e.trace = e.trace[:0]
		return
	}
	var cfg *fabric.Config
	var consumed int
	if e.shapes != nil {
		// Key the insert on the state the shape decision is about to be
		// taken under: if the versions moved since the resident entries
		// were decided, they are stale and flush here — otherwise this
		// fresh translation would be recorded under the old state and
		// wrongly flushed (wasting its ladder scan) at its own first
		// offload. A configuration looked up before this flush is still
		// stale; remember the flush so the offload path rejects it.
		if e.cache.SyncState(e.stateVersions()) {
			e.stateFlushed = true
		}
		cfg, consumed = e.translateShapes()
	} else {
		cfg, consumed = mapper.Map(e.trace, mapper.Options{
			Geom:     e.opts.Geom,
			Lat:      e.opts.Lat,
			Disabled: e.disabled,
		})
	}
	e.trace = e.trace[:0]
	if cfg == nil || consumed < e.opts.MinOps {
		return
	}
	if !e.opts.NoProfitGate && !e.profitable(cfg) {
		return
	}
	e.cache.Insert(cfg)
	e.rep.Translations++
}

// ladderStripe is one stripe's share of the translation-time ladder scan:
// the stripe-local winner plus the order-invariant probe counter.
type ladderStripe struct {
	idx      int // winning rung index, -1 when the stripe holds none
	cfg      *fabric.Config
	consumed int
	cycles   uint64
	wearY    float64
	probes   uint64
}

// translateShapes is the translation-time shape search: the captured trace
// is mapped once per rung of the shape ladder against the current health
// mask (identity frame — the allocation layer still chooses the pivot),
// and the candidate consuming the most ops wins — architectural throughput
// first — with ties broken by fewest ExecCycles (the denser placement),
// then least accumulated wear over the cells of the candidate's mapped
// (identity) frame — a shape-selection proxy: the allocation layer still
// chooses the actual pivot wear-aware, this tie-break only prefers, among
// equally fast shapes, one whose home footprint shows the allocator a
// fresher starting window — then ladder order for determinism. One mapper
// run per rung keeps this a
// pure ladder scan — an order of magnitude cheaper than the remap rescue's
// (shape × anchor) scan, which remains the backstop for placements the
// identity-frame mask cannot serve. The scan is counted for the derived
// search-cost model.
//
// Rungs fan out over a bounded goroutine pool (Options.SearchWorkers):
// every rung is mapped against shared read-only state and classified
// regardless of evaluation order, per-stripe probe counters are summed in
// stripe order, and the winner is the lexicographic minimum over
// (consumed desc, cycles asc, wear asc, rung index) — so translations and
// counters are byte-identical for every worker count.
func (e *Engine) translateShapes() (*fabric.Config, int) {
	e.search.LadderScans++
	e.search.LadderCandidates += uint64(len(e.shapes))
	wear := e.ctrl.Wear()
	n := len(e.shapes)
	if n == 0 {
		return nil, 0
	}
	workers := e.opts.SearchWorkers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if pscan.Count(n, workers) == 1 {
		// Serial fast path: no stripe slice or closure per translation.
		sr := e.scanLadder(wear, 0, n)
		e.search.LadderProbes += sr.probes
		return sr.cfg, sr.consumed
	}
	stripes := make([]ladderStripe, pscan.Count(n, workers))
	pscan.Run(n, workers, func(s, lo, hi int) {
		stripes[s] = e.scanLadder(wear, lo, hi)
	})
	best := ladderStripe{idx: -1}
	for _, sr := range stripes {
		e.search.LadderProbes += sr.probes
		if sr.idx < 0 {
			continue
		}
		if best.idx < 0 || sr.consumed > best.consumed ||
			(sr.consumed == best.consumed && (sr.cycles < best.cycles ||
				(sr.cycles == best.cycles && (sr.wearY < best.wearY ||
					(sr.wearY == best.wearY && sr.idx < best.idx))))) {
			best = sr
		}
	}
	return best.cfg, best.consumed
}

// scanLadder maps the trace at ladder rungs [lo, hi) and returns the
// stripe-local winner by (consumed desc, ExecCycles asc, wear asc, rung
// order). Cycles and wear are evaluated for every mapped rung — there is
// no running-best gate — so the stripe outcome is a pure function of the
// rung range and the shared read-only state.
func (e *Engine) scanLadder(wear *fabric.Wear, lo, hi int) ladderStripe {
	sr := ladderStripe{idx: -1}
	for i := lo; i < hi; i++ {
		cfg, consumed := mapper.Map(e.trace, mapper.Options{
			Geom:     e.shapes[i],
			Lat:      e.opts.Lat,
			Disabled: e.disabled,
			Probes:   &sr.probes,
		})
		if cfg == nil {
			continue
		}
		cycles := cfg.ExecCycles()
		wearYears := 0.0
		if wear != nil {
			for _, cell := range cfg.Cells() {
				if y := wear.YearsAt(cell); y > wearYears {
					wearYears = y
				}
			}
		}
		if sr.idx < 0 || consumed > sr.consumed ||
			(consumed == sr.consumed && (cycles < sr.cycles ||
				(cycles == sr.cycles && wearYears < sr.wearY))) {
			sr.idx, sr.cfg, sr.consumed, sr.cycles, sr.wearY = i, cfg, consumed, cycles, wearYears
		}
	}
	return sr
}

// profitable projects whether executing cfg on the CGRA beats the GPP.
func (e *Engine) profitable(cfg *fabric.Config) bool {
	var gppCycles uint64
	for _, op := range cfg.Ops {
		gppCycles += e.opts.Timing.CyclesFor(op.Inst, op.Taken)
	}
	cgraCycles := e.opts.OffloadOverhead + cfg.ExecCycles()
	return cgraCycles < gppCycles
}

// RunGPPOnly measures the stand-alone GPP: the red reference square of
// Fig. 6. It runs the core to completion under the same timing model with
// no acceleration.
func RunGPPOnly(c *gpp.Core, timing gpp.Timing, limit uint64) (cycles uint64, classes ClassCounts, err error) {
	if timing == (gpp.Timing{}) {
		timing = gpp.DefaultTiming()
	}
	var remaining uint64
	if n := c.RetiredCount(); n < limit {
		remaining = limit - n
	}
	n, err := c.Run(remaining, func(r gpp.Retire) {
		cycles += timing.CyclesFor(r.Inst, r.Taken)
		classes[r.Inst.Op.Class()]++
	})
	if err != nil {
		if !c.Halted() && n >= remaining {
			return cycles, classes, fmt.Errorf("dbt: instruction limit %d reached", limit)
		}
		return cycles, classes, err
	}
	return cycles, classes, nil
}
