// Package dfg builds dataflow graphs over dynamic instruction sequences
// and derives the schedule-independent properties the mapper and the
// analysis tooling reason about: register and memory dependences, ASAP
// levels, critical paths (unit and latency-weighted) and ILP. It is the
// analytical counterpart of internal/mapper: where the mapper commits to
// one greedy placement, the graph bounds what any placement could do.
package dfg

import (
	"agingcgra/internal/fabric"
	"agingcgra/internal/isa"
)

// DepKind classifies a dependence edge.
type DepKind uint8

const (
	// DepData is a register read-after-write dependence.
	DepData DepKind = iota
	// DepMemory orders memory operations around stores.
	DepMemory
	// DepControl orders non-speculable operations (stores) after branches.
	DepControl
)

// Edge is one dependence from a producer node to a consumer node.
type Edge struct {
	From, To int
	Kind     DepKind
}

// Node is one instruction in the graph.
type Node struct {
	Index int
	Inst  isa.Inst
	// Preds and Succs hold edge endpoints by node index.
	Preds []int
	Succs []int
	// Depth is the ASAP level: 0 for nodes with no predecessors.
	Depth int
}

// Graph is a dependence DAG over an instruction sequence.
type Graph struct {
	Nodes []Node
	Edges []Edge

	liveIns  []isa.Reg
	liveOuts []isa.Reg
}

// Build constructs the dependence graph of a straight-line instruction
// sequence under the same ordering rules the mapper enforces: register
// RAW dependences, loads and stores ordered around stores (no
// disambiguation), and stores ordered after branches (no speculative
// memory writes). WAR/WAW register hazards are not edges: the fabric
// renames through distinct FUs and context lines.
func Build(insts []isa.Inst) *Graph {
	g := &Graph{Nodes: make([]Node, len(insts))}
	for i, in := range insts {
		g.Nodes[i] = Node{Index: i, Inst: in}
	}

	lastWriter := map[isa.Reg]int{}
	liveInSet := map[isa.Reg]bool{}
	written := map[isa.Reg]bool{}
	lastStore := -1
	var loadsSinceStore []int
	lastBranch := -1

	addEdge := func(from, to int, kind DepKind) {
		if from < 0 || from == to {
			return
		}
		g.Edges = append(g.Edges, Edge{From: from, To: to, Kind: kind})
		g.Nodes[to].Preds = append(g.Nodes[to].Preds, from)
		g.Nodes[from].Succs = append(g.Nodes[from].Succs, to)
	}

	for i, in := range insts {
		readReg := func(r isa.Reg) {
			if r == isa.X0 {
				return
			}
			if w, ok := lastWriter[r]; ok {
				addEdge(w, i, DepData)
			} else if !written[r] && !liveInSet[r] {
				liveInSet[r] = true
				g.liveIns = append(g.liveIns, r)
			}
		}
		if in.ReadsRs1() {
			readReg(in.Rs1)
		}
		if in.ReadsRs2() {
			readReg(in.Rs2)
		}
		switch {
		case in.IsLoad():
			addEdge(lastStore, i, DepMemory)
			loadsSinceStore = append(loadsSinceStore, i)
		case in.IsStore():
			addEdge(lastStore, i, DepMemory)
			for _, l := range loadsSinceStore {
				addEdge(l, i, DepMemory)
			}
			addEdge(lastBranch, i, DepControl)
			lastStore = i
			loadsSinceStore = nil
		case in.IsBranch():
			lastBranch = i
		}
		if in.WritesRd() {
			lastWriter[in.Rd] = i
			written[in.Rd] = true
		}
	}

	// Live-outs: registers whose final writer has no later overwrite.
	for r, w := range lastWriter {
		_ = w
		g.liveOuts = append(g.liveOuts, r)
	}
	sortRegs(g.liveIns)
	sortRegs(g.liveOuts)

	g.computeDepths()
	return g
}

func sortRegs(rs []isa.Reg) {
	for i := 1; i < len(rs); i++ {
		for j := i; j > 0 && rs[j-1] > rs[j]; j-- {
			rs[j-1], rs[j] = rs[j], rs[j-1]
		}
	}
}

// computeDepths assigns ASAP levels; nodes appear in topological (program)
// order by construction, so one forward pass suffices.
func (g *Graph) computeDepths() {
	for i := range g.Nodes {
		d := 0
		for _, p := range g.Nodes[i].Preds {
			if g.Nodes[p].Depth+1 > d {
				d = g.Nodes[p].Depth + 1
			}
		}
		g.Nodes[i].Depth = d
	}
}

// LiveIns returns the registers read before being written, in ascending
// order: the values the input context must supply.
func (g *Graph) LiveIns() []isa.Reg { return g.liveIns }

// LiveOuts returns the registers written by the sequence, in ascending
// order: the values written back to the GPP at commit.
func (g *Graph) LiveOuts() []isa.Reg { return g.liveOuts }

// CriticalPathLen returns the longest dependence chain in instructions
// (unit latency). An empty graph returns 0.
func (g *Graph) CriticalPathLen() int {
	max := 0
	for _, n := range g.Nodes {
		if n.Depth+1 > max {
			max = n.Depth + 1
		}
	}
	return max
}

// CriticalPathColumns returns the longest dependence chain weighted by the
// fabric latency table, in columns: a lower bound on any placement's
// UsedCols.
func (g *Graph) CriticalPathColumns(lat fabric.LatencyTable) int {
	if len(g.Nodes) == 0 {
		return 0
	}
	end := make([]int, len(g.Nodes))
	max := 0
	for i := range g.Nodes {
		start := 0
		for _, p := range g.Nodes[i].Preds {
			if end[p] > start {
				start = end[p]
			}
		}
		end[i] = start + lat.Columns(g.Nodes[i].Inst.Op.Class())
		if end[i] > max {
			max = end[i]
		}
	}
	return max
}

// MaxWidth returns the maximum number of nodes sharing one ASAP level: the
// peak ILP an unconstrained fabric could exploit.
func (g *Graph) MaxWidth() int {
	counts := map[int]int{}
	max := 0
	for _, n := range g.Nodes {
		counts[n.Depth]++
		if counts[n.Depth] > max {
			max = counts[n.Depth]
		}
	}
	return max
}

// AvgILP returns instructions per dependence level: the average
// parallelism available in the sequence.
func (g *Graph) AvgILP() float64 {
	cp := g.CriticalPathLen()
	if cp == 0 {
		return 0
	}
	return float64(len(g.Nodes)) / float64(cp)
}

// EdgeCount returns the number of dependence edges of the given kind.
func (g *Graph) EdgeCount(kind DepKind) int {
	n := 0
	for _, e := range g.Edges {
		if e.Kind == kind {
			n++
		}
	}
	return n
}
