package dfg

import (
	"math/rand"
	"testing"

	"agingcgra/internal/fabric"
	"agingcgra/internal/isa"
)

func alu(rd, rs1, rs2 isa.Reg) isa.Inst {
	return isa.Inst{Op: isa.ADD, Rd: rd, Rs1: rs1, Rs2: rs2}
}

func TestChainDepths(t *testing.T) {
	g := Build([]isa.Inst{
		alu(isa.T0, isa.A0, isa.A1),
		alu(isa.T1, isa.T0, isa.A1),
		alu(isa.T2, isa.T1, isa.T0),
	})
	wantDepths := []int{0, 1, 2}
	for i, w := range wantDepths {
		if g.Nodes[i].Depth != w {
			t.Errorf("node %d depth = %d, want %d", i, g.Nodes[i].Depth, w)
		}
	}
	if g.CriticalPathLen() != 3 {
		t.Errorf("critical path = %d, want 3", g.CriticalPathLen())
	}
	if g.MaxWidth() != 1 {
		t.Errorf("max width = %d, want 1", g.MaxWidth())
	}
}

func TestIndependentOps(t *testing.T) {
	g := Build([]isa.Inst{
		alu(isa.T0, isa.A0, isa.A1),
		alu(isa.T1, isa.A2, isa.A3),
		alu(isa.T2, isa.A4, isa.A5),
	})
	if g.CriticalPathLen() != 1 || g.MaxWidth() != 3 {
		t.Errorf("cp=%d width=%d, want 1/3", g.CriticalPathLen(), g.MaxWidth())
	}
	if g.AvgILP() != 3 {
		t.Errorf("avg ILP = %v, want 3", g.AvgILP())
	}
	if len(g.Edges) != 0 {
		t.Errorf("independent ops produced %d edges", len(g.Edges))
	}
}

func TestLiveInsAndOuts(t *testing.T) {
	g := Build([]isa.Inst{
		alu(isa.T0, isa.A0, isa.A1), // reads a0,a1 (live-in), writes t0
		alu(isa.A0, isa.T0, isa.T0), // overwrites a0
	})
	ins := g.LiveIns()
	if len(ins) != 2 || ins[0] != isa.A0 || ins[1] != isa.A1 {
		t.Errorf("live-ins = %v, want [a0 a1]", ins)
	}
	outs := g.LiveOuts()
	// Ascending architectural order: t0 is x5, a0 is x10.
	if len(outs) != 2 || outs[0] != isa.T0 || outs[1] != isa.A0 {
		t.Errorf("live-outs = %v, want [t0 a0]", outs)
	}
}

func TestMemoryOrdering(t *testing.T) {
	g := Build([]isa.Inst{
		{Op: isa.LW, Rd: isa.T0, Rs1: isa.A0},  // 0: load
		{Op: isa.SW, Rs1: isa.A1, Rs2: isa.T1}, // 1: store (after load 0)
		{Op: isa.LW, Rd: isa.T2, Rs1: isa.A2},  // 2: load (after store 1)
		{Op: isa.SW, Rs1: isa.A3, Rs2: isa.T3}, // 3: store (after store 1 and load 2)
	})
	if got := g.EdgeCount(DepMemory); got != 4 {
		t.Errorf("memory edges = %d, want 4 (load0->store1, store1->load2, store1->store3, load2->store3)", got)
	}
	// Loads do not depend on earlier loads.
	for _, e := range g.Edges {
		if e.Kind == DepMemory && g.Nodes[e.From].Inst.IsLoad() && g.Nodes[e.To].Inst.IsLoad() {
			t.Error("load-load ordering edge found")
		}
	}
}

func TestStoreAfterBranch(t *testing.T) {
	g := Build([]isa.Inst{
		{Op: isa.BNE, Rs1: isa.A0, Rs2: isa.A1, Imm: 8},
		{Op: isa.SW, Rs1: isa.A2, Rs2: isa.A3},
		alu(isa.T0, isa.A4, isa.A5),
	})
	if g.EdgeCount(DepControl) != 1 {
		t.Errorf("control edges = %d, want 1", g.EdgeCount(DepControl))
	}
	// The ALU op is free to execute at depth 0.
	if g.Nodes[2].Depth != 0 {
		t.Errorf("speculable ALU depth = %d, want 0", g.Nodes[2].Depth)
	}
	if g.Nodes[1].Depth != 1 {
		t.Errorf("store depth = %d, want 1 (after branch)", g.Nodes[1].Depth)
	}
}

func TestX0NeverDependency(t *testing.T) {
	g := Build([]isa.Inst{
		alu(isa.X0, isa.A0, isa.A1), // write to x0 discards
		alu(isa.T0, isa.X0, isa.X0), // reads of x0 are constants
	})
	if len(g.Edges) != 0 {
		t.Errorf("x0 created %d edges", len(g.Edges))
	}
	if len(g.LiveIns()) != 2 {
		t.Errorf("live-ins = %v (x0 must not be a live-in)", g.LiveIns())
	}
}

func TestCriticalPathColumns(t *testing.T) {
	lat := fabric.DefaultLatencies()
	g := Build([]isa.Inst{
		{Op: isa.LW, Rd: isa.T0, Rs1: isa.A0},               // 4 columns
		alu(isa.T1, isa.T0, isa.A1),                         // +1
		{Op: isa.MUL, Rd: isa.T2, Rs1: isa.T1, Rs2: isa.T1}, // +2
	})
	if got := g.CriticalPathColumns(lat); got != 7 {
		t.Errorf("critical path columns = %d, want 7", got)
	}
	if Build(nil).CriticalPathColumns(lat) != 0 {
		t.Error("empty graph must have zero-length path")
	}
}

// Property: the mapper can never beat the DFG critical-path lower bound.
func TestMapperRespectsLowerBound(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	regs := []isa.Reg{isa.T0, isa.T1, isa.A0, isa.A1, isa.S0}
	ops := []isa.Op{isa.ADD, isa.XOR, isa.MUL, isa.LW, isa.SW, isa.ADDI}
	lat := fabric.DefaultLatencies()
	for iter := 0; iter < 300; iter++ {
		n := 1 + r.Intn(20)
		insts := make([]isa.Inst, n)
		for i := range insts {
			op := ops[r.Intn(len(ops))]
			insts[i] = isa.Inst{
				Op:  op,
				Rd:  regs[r.Intn(len(regs))],
				Rs1: regs[r.Intn(len(regs))],
				Rs2: regs[r.Intn(len(regs))],
			}
			if op == isa.ADDI {
				insts[i].Rs2 = 0
			}
		}
		g := Build(insts)
		// Depth of every node exceeds all its preds.
		for _, node := range g.Nodes {
			for _, p := range node.Preds {
				if g.Nodes[p].Depth >= node.Depth {
					t.Fatalf("iter %d: depth not increasing along edge %d->%d", iter, p, node.Index)
				}
			}
		}
		// Sanity relations.
		if g.CriticalPathLen() > n {
			t.Fatalf("iter %d: critical path longer than sequence", iter)
		}
		if g.CriticalPathColumns(lat) < g.CriticalPathLen() {
			t.Fatalf("iter %d: weighted path shorter than unit path", iter)
		}
	}
}
