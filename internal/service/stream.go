package service

import (
	"encoding/json"
	"net/http"

	"agingcgra/internal/lifetime"
	"agingcgra/internal/trace"
)

// streamResultLine is the terminal NDJSON line of a successful stream.
type streamResultLine struct {
	Kind   string      `json:"kind"`
	Result *ResultJSON `json:"result"`
}

// streamErrorLine is the terminal NDJSON line of a stream that failed
// after events were already sent (the status line is long committed, so
// the error travels in-band).
type streamErrorLine struct {
	Kind  string `json:"kind"`
	Error string `json:"error"`
}

// handleLifetimeStream runs one scenario and streams its observability
// events as NDJSON — one trace.Event per line, in emission order, with a
// terminal {"kind":"result",...} line carrying the full Result. The body
// is the same scenario object as /v1/lifetime.
//
// The stream is a pure function of (request body, seed): the simulator's
// event-determinism contract makes the bytes identical at any worker
// count and any epoch-store temperature. The run deliberately bypasses
// the result store — a result-store hit would skip the simulation and
// with it every event — but still feeds and consults the shared epoch
// store and GPP-reference memo, so streamed scenarios stay cheap and
// keep warming the same state as everything else.
//
// Cancellation follows the pool contract: a disconnected client's queued
// run is skipped (nothing was sent, so the handler reports 499
// server-side); a run already executing completes on the worker, its
// remaining writes failing silently against the dead connection.
func (s *Server) handleLifetimeStream(w http.ResponseWriter, r *http.Request) {
	var req ScenarioRequest
	if err := decodeBody(r, &req); err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	cfg, err := req.config()
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	sc, err := cfg.Scenario()
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	sc.Refs = s.refs
	if req.Faults == nil && req.Recovery == nil {
		sc.EpochMemo = s.epochs
		sc.Fingerprint = req.epochFingerprint()
	}

	flusher, _ := w.(http.Flusher)
	// started flips on the first event, committing the 200 status line.
	// It is written by the pool worker running the scenario and read here
	// after ForEach returns; the pool's completion WaitGroup orders the
	// two, so there is no race — and no concurrent writer either, since
	// the handler goroutine only writes after ForEach returns.
	started := false
	writeLine := func(v any) {
		if !started {
			w.Header().Set("Content-Type", "application/x-ndjson")
			w.WriteHeader(http.StatusOK)
			started = true
		}
		b, err := json.Marshal(v)
		if err != nil {
			return
		}
		// Write errors (client gone mid-stream) are deliberately dropped:
		// the simulation must finish either way to keep the shared epoch
		// store consistent with a non-canceled run.
		w.Write(append(b, '\n'))
		if flusher != nil {
			flusher.Flush()
		}
	}
	sc.Trace = trace.Func(func(ev trace.Event) { writeLine(ev) })

	var res *ResultJSON
	err = s.pool.ForEach(r.Context(), 1, func(int) error {
		var err error
		res, err = lifetime.Run(sc)
		return err
	})
	switch {
	case err != nil && !started:
		// Nothing sent yet: a normal JSON error response still fits.
		writeError(w, failStatus(err), err.Error())
	case err != nil:
		writeLine(streamErrorLine{Kind: "error", Error: err.Error()})
	default:
		writeLine(streamResultLine{Kind: "result", Result: res})
	}
}
