package service

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

// fastScenario is the cheapest interesting scenario: one benchmark, a
// small fabric, four epochs.
const fastScenario = `{"rows": 2, "cols": 8, "benchmarks": ["crc32"], "max_years": 2}`

func newTestServer(t *testing.T, o Options) (*Server, *httptest.Server) {
	t.Helper()
	s := New(o)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		s.Close()
	})
	return s, ts
}

func post(t *testing.T, ts *httptest.Server, path, body string) (int, string) {
	t.Helper()
	resp, err := http.Post(ts.URL+path, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(b)
}

func get(t *testing.T, ts *httptest.Server, path string) (int, string) {
	t.Helper()
	resp, err := http.Get(ts.URL + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(b)
}

func TestHealthz(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 1})
	code, body := get(t, ts, "/healthz")
	if code != http.StatusOK || !strings.Contains(body, `"ok"`) {
		t.Fatalf("healthz: %d %s", code, body)
	}
}

func TestLifetimeHappyPath(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 1})
	code, body := post(t, ts, "/v1/lifetime", fastScenario)
	if code != http.StatusOK {
		t.Fatalf("lifetime: %d %s", code, body)
	}
	var resp struct {
		Result *ResultJSON `json:"result"`
	}
	if err := json.Unmarshal([]byte(body), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Result == nil || len(resp.Result.Timeline) != 4 {
		t.Fatalf("want a 4-epoch timeline, got %+v", resp.Result)
	}
	if resp.Result.AllocatorName == "" || resp.Result.InitialSpeedup <= 0 {
		t.Fatalf("result missing fields: %+v", resp.Result)
	}
}

func TestRepeatRequestIsByteIdenticalAndMemoized(t *testing.T) {
	s, ts := newTestServer(t, Options{Workers: 1})
	_, first := post(t, ts, "/v1/lifetime", fastScenario)
	_, second := post(t, ts, "/v1/lifetime", fastScenario)
	if first != second {
		t.Fatal("repeated identical request returned different bytes")
	}
	if st := s.results.Stats(); st.Hits == 0 || st.Misses != 1 {
		t.Fatalf("second request should hit the result store: %+v", st)
	}
}

func TestClientErrorsAre4xxWithMessage(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 1})
	cases := []struct {
		name, path, body string
		wantCode         int
		wantMsg          string
	}{
		{"malformed JSON", "/v1/lifetime", `{not json`, 400, "decoding request"},
		{"unknown field", "/v1/lifetime", `{"allocater": "baseline"}`, 400, "unknown field"},
		{"trailing garbage", "/v1/lifetime", `{} {}`, 400, "trailing data"},
		{"unknown allocator", "/v1/lifetime", `{"allocator": "bogus"}`, 400, "unknown allocator"},
		{"unknown size", "/v1/lifetime", `{"size": "jumbo"}`, 400, "unknown size"},
		{"unknown pattern", "/v1/lifetime", `{"dead_pattern": "zigzag"}`, 400, "pattern"},
		{"unknown ladder", "/v1/lifetime",
			`{"shape_translations": true, "shape_ladder": "bogus"}`, 400, "ladder"},
		{"unknown benchmark", "/v1/lifetime", `{"benchmarks": ["doom"], "max_years": 1}`, 400, "unknown benchmark"},
		{"faults without recovery", "/v1/lifetime",
			`{"benchmarks": ["crc32"], "max_years": 1, "faults": {}}`, 400, "requires Recovery"},
		{"empty batch", "/v1/batch", `{}`, 400, "no scenarios"},
		{"zero devices", "/v1/fleet", `{"base": {}}`, 400, "devices"},
		{"too many devices", "/v1/fleet", `{"devices": 1000000}`, 400, "limit"},
		{"negative weight", "/v1/fleet",
			`{"devices": 2, "base": {}, "mixes": [{"weight": -1, "benchmarks": ["crc32"]}]}`, 400, "weight"},
		{"bad percentile", "/v1/fleet",
			`{"devices": 2, "base": {"benchmarks": ["crc32"], "max_years": 1}, "percentiles": [0]}`, 400, "percentile"},
		{"bad nth death", "/v1/fleet",
			`{"devices": 2, "base": {"benchmarks": ["crc32"], "max_years": 1}, "deaths": [0]}`, 400, "death"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			code, body := post(t, ts, c.path, c.body)
			if code != c.wantCode {
				t.Fatalf("got %d %s, want %d", code, body, c.wantCode)
			}
			var e errorBody
			if err := json.Unmarshal([]byte(body), &e); err != nil {
				t.Fatalf("error response is not JSON: %s", body)
			}
			if !strings.Contains(e.Error, c.wantMsg) {
				t.Fatalf("error %q does not mention %q", e.Error, c.wantMsg)
			}
		})
	}
}

func TestMethodNotAllowed(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 1})
	code, body := get(t, ts, "/v1/lifetime")
	if code != http.StatusMethodNotAllowed || !strings.Contains(body, "error") {
		t.Fatalf("GET on POST endpoint: %d %s", code, body)
	}
	code, body = post(t, ts, "/v1/stats", "{}")
	if code != http.StatusMethodNotAllowed || !strings.Contains(body, "error") {
		t.Fatalf("POST on GET endpoint: %d %s", code, body)
	}
}

func TestBatchOrderAndDedup(t *testing.T) {
	s, ts := newTestServer(t, Options{Workers: 4})
	body := fmt.Sprintf(`{"scenarios": [%s, %s, %s]}`,
		`{"name": "a", "rows": 2, "cols": 8, "benchmarks": ["crc32"], "max_years": 2}`,
		`{"name": "b", "rows": 2, "cols": 8, "benchmarks": ["crc32"], "max_years": 2, "allocator": "utilization-aware"}`,
		`{"name": "a", "rows": 2, "cols": 8, "benchmarks": ["crc32"], "max_years": 2}`)
	code, out := post(t, ts, "/v1/batch", body)
	if code != http.StatusOK {
		t.Fatalf("batch: %d %s", code, out)
	}
	var resp batchResponse
	if err := json.Unmarshal([]byte(out), &resp); err != nil {
		t.Fatal(err)
	}
	if len(resp.Results) != 3 {
		t.Fatalf("want 3 results, got %d", len(resp.Results))
	}
	if resp.Results[0].Name != "a" || resp.Results[1].Name != "b" || resp.Results[2].Name != "a" {
		t.Fatalf("results out of order: %s / %s / %s",
			resp.Results[0].Name, resp.Results[1].Name, resp.Results[2].Name)
	}
	// Scenarios 0 and 2 are identical: the result store must have served
	// one of them.
	if st := s.results.Stats(); st.Misses != 2 || st.Hits != 1 {
		t.Fatalf("batch dedupe: %+v", st)
	}
}

// fleetBody is a fleet over 2 mixes x 2 patterns = at most 4 combos.
const fleetBody = `{
  "devices": 200, "seed": 7,
  "base": {"rows": 2, "cols": 8, "max_years": 2},
  "mixes": [{"benchmarks": ["crc32"]}, {"benchmarks": ["sha"], "weight": 2}],
  "patterns": [{"pattern": "healthy"}, {"pattern": "column:0"}]
}`

func TestFleetDeterministicAcrossWorkerCountsAndRepeats(t *testing.T) {
	var bodies []string
	for _, workers := range []int{1, 8} {
		_, ts := newTestServer(t, Options{Workers: workers})
		code, first := post(t, ts, "/v1/fleet", fleetBody)
		if code != http.StatusOK {
			t.Fatalf("workers=%d: %d %s", workers, code, first)
		}
		// Repeat on the now-warm server: stores must not leak into the body.
		code, second := post(t, ts, "/v1/fleet", fleetBody)
		if code != http.StatusOK {
			t.Fatalf("workers=%d repeat: %d %s", workers, code, second)
		}
		if first != second {
			t.Fatalf("workers=%d: warm repeat differs from cold response", workers)
		}
		bodies = append(bodies, first)
	}
	if bodies[0] != bodies[1] {
		t.Fatalf("fleet response differs across worker counts:\n%s\n%s", bodies[0], bodies[1])
	}
}

func TestFleetResponseShape(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 4})
	code, out := post(t, ts, "/v1/fleet", fleetBody)
	if code != http.StatusOK {
		t.Fatalf("fleet: %d %s", code, out)
	}
	var resp FleetResponse
	if err := json.Unmarshal([]byte(out), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Devices != 200 || resp.Seed != 7 {
		t.Fatalf("echo fields wrong: %+v", resp)
	}
	if resp.Combos < 2 || resp.Combos > 4 {
		t.Fatalf("2x2 distributions must draw 2..4 combos, got %d", resp.Combos)
	}
	if resp.Memo.Hits+resp.Memo.Misses != resp.Devices || resp.Memo.Misses != resp.Combos {
		t.Fatalf("request-scoped memo counters inconsistent: %+v", resp.Memo)
	}
	if len(resp.Deaths) != 1 || resp.Deaths[0].Nth != 1 || len(resp.Deaths[0].Percentiles) != 3 {
		t.Fatalf("default death curve wrong: %+v", resp.Deaths)
	}
	if len(resp.Throughput) != 3 {
		t.Fatalf("default throughput curve wrong: %+v", resp.Throughput)
	}
	for _, tv := range resp.Throughput {
		if tv.Speedup <= 0 {
			t.Fatalf("non-positive speedup percentile: %+v", tv)
		}
	}
	// The column:0 devices start with dead cells but the horizon is short:
	// percentile points must be either a finite year or flagged survived.
	for _, pv := range resp.Deaths[0].Percentiles {
		if !pv.Survived && pv.Years <= 0 {
			t.Fatalf("percentile neither survived nor a positive age: %+v", pv)
		}
	}
}

// TestFleetThousandDevicesHitRate pins the acceptance criterion: a
// 1000-device fleet over at most 32 distinct combos costs only the distinct
// simulations and reports a memo hit rate of at least 95%.
func TestFleetThousandDevicesHitRate(t *testing.T) {
	if testing.Short() {
		t.Skip("fleet of 1000 devices in -short mode")
	}
	_, ts := newTestServer(t, Options{})
	body := `{
	  "devices": 1000, "seed": 3,
	  "base": {"rows": 2, "cols": 8, "max_years": 1},
	  "mixes": [{"benchmarks": ["crc32"]}, {"benchmarks": ["sha"]},
	            {"benchmarks": ["bitcount"]}, {"benchmarks": ["qsort"]}],
	  "profiles": [{"phases": [{"until_years": 1}]},
	               {"phases": [{"until_years": 0.5, "temperature_k": 350}, {"until_years": 1}]}],
	  "patterns": [{"pattern": "healthy"}, {"pattern": "column:0"},
	               {"pattern": "checkerboard"}, {"pattern": "survivor-row:0"}]
	}`
	code, out := post(t, ts, "/v1/fleet", body)
	if code != http.StatusOK {
		t.Fatalf("fleet: %d %s", code, out)
	}
	var resp FleetResponse
	if err := json.Unmarshal([]byte(out), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Combos > 32 {
		t.Fatalf("4x2x4 distributions drew %d combos, want <= 32", resp.Combos)
	}
	if resp.Memo.HitRate < 0.95 {
		t.Fatalf("memo hit rate %.3f < 0.95 (combos %d)", resp.Memo.HitRate, resp.Combos)
	}
}

func TestCancellationMidBatch(t *testing.T) {
	s := New(Options{Workers: 1, QueueDepth: 0})
	defer s.Close()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	req := httptest.NewRequest(http.MethodPost, "/v1/batch",
		strings.NewReader(`{"scenarios": [`+fastScenario+`, `+fastScenario+`]}`)).WithContext(ctx)
	rec := httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, req)
	if rec.Code != statusClientClosedRequest {
		t.Fatalf("canceled batch: %d %s", rec.Code, rec.Body.String())
	}
	// The pool itself must still serve later requests.
	if err := s.fleetSmoke(); err != nil {
		t.Fatal(err)
	}
}

// fleetSmoke runs a minimal fleet query directly, bypassing HTTP.
func (s *Server) fleetSmoke() error {
	_, err := s.fleet(context.Background(), FleetRequest{
		Devices: 2,
		Base:    ScenarioRequest{Rows: 2, Cols: 8, Benchmarks: []string{"crc32"}, MaxYears: 1},
	})
	return err
}

func TestClosedServerReturns503(t *testing.T) {
	s := New(Options{Workers: 1})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	s.Close()
	resp, err := http.Post(ts.URL+"/v1/lifetime", "application/json", strings.NewReader(fastScenario))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("closed pool: %d", resp.StatusCode)
	}
}

func TestStatsEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 2, QueueDepth: 5})
	post(t, ts, "/v1/lifetime", fastScenario)
	for _, path := range []string{"/v1/stats", "/stats"} {
		code, body := get(t, ts, path)
		if code != http.StatusOK {
			t.Fatalf("%s: %d %s", path, code, body)
		}
		var resp statsResponse
		if err := json.Unmarshal([]byte(body), &resp); err != nil {
			t.Fatal(err)
		}
		if resp.Results.Misses != 1 || resp.Pool.Workers != 2 || resp.Pool.QueueDepth != 5 {
			t.Fatalf("%s: unexpected stats %s", path, body)
		}
		if resp.Refs.Misses == 0 {
			t.Fatalf("%s: GPP reference memo never consulted: %s", path, body)
		}
	}
}

// TestHorizonExtensionSharesEpochs pins the cross-request epoch sharing:
// rerunning the same scenario with a longer horizon reuses the shorter
// run's epochs through the shared store instead of starting over.
func TestHorizonExtensionSharesEpochs(t *testing.T) {
	s, ts := newTestServer(t, Options{Workers: 1})
	if code, body := post(t, ts, "/v1/lifetime", fastScenario); code != http.StatusOK {
		t.Fatalf("short: %d %s", code, body)
	}
	longer := strings.Replace(fastScenario, `"max_years": 2`, `"max_years": 3`, 1)
	if code, body := post(t, ts, "/v1/lifetime", longer); code != http.StatusOK {
		t.Fatalf("long: %d %s", code, body)
	}
	if st := s.epochs.Stats(); st.Hits == 0 {
		t.Fatalf("horizon extension recomputed every epoch: %+v", st)
	}
}

func TestPoolClosedErrorMapsTo503AndCanceledTo499(t *testing.T) {
	if got := failStatus(context.Canceled); got != statusClientClosedRequest {
		t.Fatalf("canceled -> %d", got)
	}
	if got := failStatus(fmt.Errorf("wrapped: %w", errors.New("x"))); got != http.StatusBadRequest {
		t.Fatalf("generic -> %d", got)
	}
}
