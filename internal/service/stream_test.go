package service

import (
	"bufio"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

// streamBody POSTs the scenario to /v1/lifetime/stream and returns the
// status code and full body.
func streamBody(t *testing.T, ts *httptest.Server, body string) (int, string) {
	t.Helper()
	return post(t, ts, "/v1/lifetime/stream", body)
}

// parseLines splits an NDJSON body and unmarshals each line's kind.
func parseLines(t *testing.T, body string) (kinds []string, lines []string) {
	t.Helper()
	for _, line := range strings.Split(strings.TrimSuffix(body, "\n"), "\n") {
		var probe struct {
			Kind string `json:"kind"`
		}
		if err := json.Unmarshal([]byte(line), &probe); err != nil {
			t.Fatalf("non-JSON stream line %q: %v", line, err)
		}
		kinds = append(kinds, probe.Kind)
		lines = append(lines, line)
	}
	return kinds, lines
}

func TestStreamHappyPath(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 1})
	code, body := streamBody(t, ts, fastScenario)
	if code != http.StatusOK {
		t.Fatalf("stream: %d %s", code, body)
	}
	kinds, lines := parseLines(t, body)

	epochs, snapshots := 0, 0
	for _, k := range kinds {
		switch k {
		case "epoch":
			epochs++
		case "snapshot":
			snapshots++
		}
	}
	if epochs != 4 || snapshots != 4 {
		t.Fatalf("want 4 epoch + 4 snapshot events, got %d + %d (kinds %v)", epochs, snapshots, kinds)
	}
	if kinds[len(kinds)-1] != "result" {
		t.Fatalf("last line should be the terminal result, got %q", kinds[len(kinds)-1])
	}

	// The terminal result must be byte-identical to the non-streaming
	// endpoint's result for the same scenario: tracing is observation-only.
	var terminal struct {
		Result json.RawMessage `json:"result"`
	}
	if err := json.Unmarshal([]byte(lines[len(lines)-1]), &terminal); err != nil {
		t.Fatal(err)
	}
	_, plain := post(t, ts, "/v1/lifetime", fastScenario)
	var plainResp struct {
		Result json.RawMessage `json:"result"`
	}
	if err := json.Unmarshal([]byte(plain), &plainResp); err != nil {
		t.Fatal(err)
	}
	if string(terminal.Result) != string(plainResp.Result) {
		t.Fatal("streamed terminal result differs from /v1/lifetime result")
	}
}

// TestStreamDeterminism pins the endpoint's contract: byte-identical
// NDJSON at any worker count and any epoch-store temperature — including
// the events re-emitted from memo-replayed epochs, and regardless of a
// warm result store (the stream bypasses it, so events never disappear
// behind a result-store hit).
func TestStreamDeterminism(t *testing.T) {
	// Cold server, serial pool.
	_, serial := newTestServer(t, Options{Workers: 1})
	_, cold := streamBody(t, serial, fastScenario)

	// Same server again: epoch store is now warm.
	_, warm := streamBody(t, serial, fastScenario)
	if cold != warm {
		t.Fatal("warm epoch store changed the stream bytes")
	}

	// Fresh server with a parallel pool and a result store pre-warmed by
	// the non-streaming endpoint.
	_, parallel := newTestServer(t, Options{Workers: 8})
	post(t, parallel, "/v1/lifetime", fastScenario)
	_, par := streamBody(t, parallel, fastScenario)
	if cold != par {
		t.Fatal("parallel pool / warm result store changed the stream bytes")
	}
}

func TestStreamClientErrors(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 1})
	cases := []struct {
		name, body string
		wantMsg    string
	}{
		{"malformed JSON", `{not json`, "decoding request"},
		{"unknown allocator", `{"allocator": "bogus"}`, "unknown allocator"},
		{"unknown benchmark", `{"benchmarks": ["doom"], "max_years": 1}`, "unknown benchmark"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			code, body := streamBody(t, ts, tc.body)
			if code != http.StatusBadRequest || !strings.Contains(body, tc.wantMsg) {
				t.Fatalf("want 400 with %q, got %d %s", tc.wantMsg, code, body)
			}
			var e struct {
				Error string `json:"error"`
			}
			if err := json.Unmarshal([]byte(body), &e); err != nil || e.Error == "" {
				t.Fatalf("pre-stream failure should be a plain JSON error: %s", body)
			}
		})
	}
}

func TestStreamMethodNotAllowed(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 1})
	code, body := get(t, ts, "/v1/lifetime/stream")
	if code != http.StatusMethodNotAllowed {
		t.Fatalf("GET on stream: %d %s", code, body)
	}
}

// TestStreamCancelMidStreamKeepsServing disconnects a streaming client
// after the first line and verifies the server — whose worker finishes
// the run against the dead connection — keeps serving requests.
func TestStreamCancelMidStreamKeepsServing(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 1})

	ctx, cancel := context.WithCancel(context.Background())
	req, err := http.NewRequestWithContext(ctx, http.MethodPost,
		ts.URL+"/v1/lifetime/stream",
		strings.NewReader(`{"rows": 2, "cols": 8, "benchmarks": ["crc32"], "max_years": 15}`))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	br := bufio.NewReader(resp.Body)
	if _, err := br.ReadString('\n'); err != nil {
		t.Fatalf("reading first stream line: %v", err)
	}
	cancel()
	resp.Body.Close()

	code, body := post(t, ts, "/v1/lifetime", fastScenario)
	if code != http.StatusOK {
		t.Fatalf("server stopped serving after canceled stream: %d %s", code, body)
	}
	if code, _ := get(t, ts, "/healthz"); code != http.StatusOK {
		t.Fatal("healthz failed after canceled stream")
	}
}
