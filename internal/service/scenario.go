package service

import (
	"encoding/json"
	"fmt"

	"agingcgra"
	"agingcgra/internal/lifetime"
)

// ResultJSON is the JSON shape of one scenario outcome — the simulator's
// own result type, served verbatim.
type ResultJSON = lifetime.Result

// ScenarioRequest is the JSON shape of one lifetime scenario. Zero values
// select the same defaults as the library facade: the BE design (2x16),
// the baseline allocator, the full ten-benchmark suite at tiny scale,
// half-year epochs over a 15-year horizon at the calibration corner.
type ScenarioRequest struct {
	// Name labels the scenario in its result (default "<geom>/<allocator>").
	Name string `json:"name,omitempty"`
	// Rows and Cols size the fabric.
	Rows int `json:"rows,omitempty"`
	Cols int `json:"cols,omitempty"`
	// Allocator names the strategy (see agingcgra.AllocatorNames).
	Allocator string `json:"allocator,omitempty"`
	// Benchmarks is the per-epoch workload mix; a name may repeat to
	// weight it.
	Benchmarks []string `json:"benchmarks,omitempty"`
	// Size is the workload input scale: "tiny", "small" or "large".
	Size string `json:"size,omitempty"`
	// EpochYears and MaxYears set the simulation step and horizon.
	EpochYears float64 `json:"epoch_years,omitempty"`
	MaxYears   float64 `json:"max_years,omitempty"`
	// TemperatureK and Vdd override the constant operating point (0 keeps
	// the model's calibration corner). Ignored when Profile is set.
	TemperatureK float64 `json:"temperature_k,omitempty"`
	Vdd          float64 `json:"vdd,omitempty"`
	// Profile varies the operating point over time; each phase holds until
	// its until_years, the last extends to the horizon.
	Profile []agingcgra.LifetimePhase `json:"profile,omitempty"`
	// DeadPattern names a clustered-failure layout injected before the
	// first epoch (see fabric.PatternCells): "column[:c]", "columns:c1+c2",
	// "quadrant", "checkerboard[:p]", "survivor-row[:r]", "healthy".
	DeadPattern string `json:"dead_pattern,omitempty"`
	// StaleTranslations / ShapeTranslations select the translation regime
	// (mutually exclusive); ShapeLadder names the candidate shape ladder.
	StaleTranslations bool   `json:"stale_translations,omitempty"`
	ShapeTranslations bool   `json:"shape_translations,omitempty"`
	ShapeLadder       string `json:"shape_ladder,omitempty"`
	// Seed seeds the fault-injection PRNG; unused (and excluded from
	// fingerprints) unless Faults or Recovery is set.
	Seed uint64 `json:"seed,omitempty"`
	// Faults enables wear-derived intermittent faults (requires Recovery);
	// Recovery enables the detection/quarantine/recovery layer.
	Faults   *agingcgra.FaultModel     `json:"faults,omitempty"`
	Recovery *agingcgra.RecoveryPolicy `json:"recovery,omitempty"`
}

// config converts the request to a facade LifetimeConfig; name resolution
// and validation happen in LifetimeConfig.Scenario / lifetime.Run.
func (r ScenarioRequest) config() (agingcgra.LifetimeConfig, error) {
	size, err := parseSize(r.Size)
	if err != nil {
		return agingcgra.LifetimeConfig{}, err
	}
	return agingcgra.LifetimeConfig{
		Name:              r.Name,
		Rows:              r.Rows,
		Cols:              r.Cols,
		Allocator:         r.Allocator,
		Benchmarks:        r.Benchmarks,
		Size:              size,
		EpochYears:        r.EpochYears,
		MaxYears:          r.MaxYears,
		TemperatureK:      r.TemperatureK,
		Vdd:               r.Vdd,
		Profile:           r.Profile,
		DeadPattern:       r.DeadPattern,
		StaleTranslations: r.StaleTranslations,
		ShapeTranslations: r.ShapeTranslations,
		ShapeLadder:       r.ShapeLadder,
		Seed:              r.Seed,
		Faults:            r.Faults,
		Recovery:          r.Recovery,
	}, nil
}

func parseSize(s string) (agingcgra.Size, error) {
	switch s {
	case "", "tiny":
		return agingcgra.Tiny, nil
	case "small":
		return agingcgra.Small, nil
	case "large":
		return agingcgra.Large, nil
	}
	return 0, fmt.Errorf(`unknown size %q (want "tiny", "small" or "large")`, s)
}

// normalized fills defaulted fields with their effective values and drops
// fields that cannot affect the outcome, so equivalent requests share one
// fingerprint. Normalization is best-effort: a missed equivalence (e.g. an
// allocator alias) only costs a duplicate store entry, never correctness.
func (r ScenarioRequest) normalized() ScenarioRequest {
	if r.Rows == 0 {
		r.Rows = 2
	}
	if r.Cols == 0 {
		r.Cols = 16
	}
	if r.Allocator == "" {
		r.Allocator = "baseline"
	}
	if len(r.Benchmarks) == 0 {
		r.Benchmarks = agingcgra.Benchmarks()
	}
	if r.Size == "" {
		r.Size = "tiny"
	}
	if r.EpochYears == 0 {
		r.EpochYears = 0.5
	}
	if r.MaxYears == 0 {
		r.MaxYears = 15
	}
	if len(r.Profile) > 0 {
		// The profile overrides the constant operating point entirely.
		r.TemperatureK, r.Vdd = 0, 0
	}
	if r.DeadPattern == "healthy" || r.DeadPattern == "none" {
		r.DeadPattern = ""
	}
	if r.Faults == nil && r.Recovery == nil {
		r.Seed = 0 // the PRNG is never consulted
	} else if r.Seed == 0 {
		r.Seed = 1 // the simulator's default
	}
	return r
}

// resultKey keys the result-level store.
type resultKey struct{ fp string }

// fingerprint content-addresses the full request for the result store:
// canonical JSON of the normalized request, covering every field that can
// influence the response bytes (including Name and MaxYears).
func (r ScenarioRequest) fingerprint() string {
	b, err := json.Marshal(r.normalized())
	if err != nil {
		// Every field is a plain value; marshal cannot fail.
		panic(fmt.Sprintf("service: fingerprinting scenario: %v", err))
	}
	return string(b)
}

// epochFingerprint content-addresses the scenario for the shared epoch
// store. It drops Name (a label, invisible to the co-simulation) and
// MaxYears (the epoch loop never observes the horizon, so scenarios that
// differ only in horizon share a trajectory prefix — the sharing the store
// exists for). Only called for fault-free, recovery-free scenarios, where
// Seed/Faults/Recovery are already normalized away.
func (r ScenarioRequest) epochFingerprint() string {
	n := r.normalized()
	n.Name = ""
	n.MaxYears = 0
	b, err := json.Marshal(n)
	if err != nil {
		panic(fmt.Sprintf("service: fingerprinting scenario: %v", err))
	}
	return string(b)
}

// runScenario resolves, runs and memoizes one scenario. The result comes
// from the result-level store when an identical request already ran;
// otherwise the run consults the shared epoch store (fault-free scenarios
// only — a recovery monitor's cross-epoch state makes epoch outcomes
// non-shareable) and the shared GPP-reference memo. Results are immutable
// once stored; callers only read and marshal them.
func (s *Server) runScenario(req ScenarioRequest) (*ResultJSON, error) {
	cfg, err := req.config()
	if err != nil {
		return nil, err
	}
	sc, err := cfg.Scenario()
	if err != nil {
		return nil, err
	}
	sc.Refs = s.refs
	if req.Faults == nil && req.Recovery == nil {
		sc.EpochMemo = s.epochs
		sc.Fingerprint = req.epochFingerprint()
	}
	v, err := s.results.GetOrCompute(resultKey{fp: req.fingerprint()}, func() (any, error) {
		return lifetime.Run(sc)
	})
	if err != nil {
		return nil, err
	}
	return v.(*ResultJSON), nil
}
