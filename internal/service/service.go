// Package service is the fleet-scale lifetime query server behind
// cmd/cgra-lifetimed: an HTTP/JSON front end over the lifetime simulator
// with all expensive state shared across requests.
//
// A Server owns four long-lived pieces:
//
//   - a persistent dse.Pool: every scenario — single query, batch item or
//     fleet combo — runs on the same bounded worker pool, so concurrent
//     requests share backpressure instead of each spawning goroutines;
//   - a result store (memostore.Store): full-request fingerprint →
//     *lifetime.Result, so a repeated scenario is served from memory;
//   - an epoch store (memostore.Store): (epoch fingerprint, state-version
//     key) → epoch outcome, shared through lifetime.Scenario.EpochMemo, so
//     scenarios that differ only in horizon (or repeat across requests)
//     reuse each other's epoch co-simulations;
//   - a GPP-reference memo (dse.RefCache), shared the same way.
//
// Contract: every response is a pure function of (request body, seed) — a
// fleet query returns byte-identical JSON at any worker count and any
// store temperature, because results land at deterministic indices, store
// hits are byte-identical to fresh computation, and the memo counters in
// responses are request-scoped (derived from the request alone), never
// cumulative. Cumulative store counters are exposed only on /v1/stats,
// which is explicitly outside the determinism contract. Client errors —
// malformed JSON, unknown allocator/pattern/ladder/size/benchmark names,
// invalid distributions — are 4xx with a JSON error message; handlers are
// panic-recovered so no input crashes the server.
package service

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"

	"agingcgra/internal/dse"
	"agingcgra/internal/memostore"
)

// maxBodyBytes bounds request bodies; a fleet request is a few KB.
const maxBodyBytes = 1 << 20

// statusClientClosedRequest reports a request canceled by its client
// mid-run (the nginx 499 convention); the client is gone, so the code is
// for logs and tests only.
const statusClientClosedRequest = 499

// Options configures a Server. Zero values select the documented defaults.
type Options struct {
	// Workers sizes the shared scenario pool (0: runtime.GOMAXPROCS).
	Workers int
	// QueueDepth bounds the pool's pending-work queue (default 64).
	QueueDepth int
	// MemoEntries is the LRU capacity of the result store and the shared
	// epoch store, each (default 4096; negative: unbounded).
	MemoEntries int
}

// Server is the shared state behind all endpoints. Create with New, serve
// via Handler, release the worker pool with Close.
type Server struct {
	pool    *dse.Pool
	results *memostore.Store
	epochs  *memostore.Store
	refs    *dse.RefCache
	mux     *http.ServeMux
}

// New builds a Server and its shared pool and stores.
func New(o Options) *Server {
	if o.QueueDepth == 0 {
		o.QueueDepth = 64
	}
	entries := o.MemoEntries
	switch {
	case entries == 0:
		entries = 4096
	case entries < 0:
		entries = 0 // memostore convention: <= 0 is unbounded
	}
	s := &Server{
		pool:    dse.NewPool(o.Workers, o.QueueDepth),
		results: memostore.New(entries),
		epochs:  memostore.New(entries),
		refs:    dse.NewRefCache(),
	}
	mux := http.NewServeMux()
	s.route(mux, "/healthz", http.MethodGet, s.handleHealthz)
	s.route(mux, "/v1/lifetime", http.MethodPost, s.handleLifetime)
	s.route(mux, "/v1/lifetime/stream", http.MethodPost, s.handleLifetimeStream)
	s.route(mux, "/v1/batch", http.MethodPost, s.handleBatch)
	s.route(mux, "/v1/fleet", http.MethodPost, s.handleFleet)
	s.route(mux, "/v1/stats", http.MethodGet, s.handleStats)
	s.route(mux, "/stats", http.MethodGet, s.handleStats)
	s.mux = mux
	return s
}

// Handler returns the HTTP handler serving all endpoints.
func (s *Server) Handler() http.Handler { return s.mux }

// Close drains and releases the worker pool: accepted work completes,
// later requests fail with dse.ErrPoolClosed. Idempotent.
func (s *Server) Close() { s.pool.Close() }

// route registers a method-checked, panic-recovered handler.
func (s *Server) route(mux *http.ServeMux, path, method string, h http.HandlerFunc) {
	mux.HandleFunc(path, func(w http.ResponseWriter, r *http.Request) {
		defer func() {
			if rec := recover(); rec != nil {
				// Best effort: if the handler already wrote, this is a no-op
				// on the status line but the connection still closes cleanly.
				writeError(w, http.StatusInternalServerError, fmt.Sprintf("internal error: %v", rec))
			}
		}()
		if r.Method != method {
			w.Header().Set("Allow", method)
			writeError(w, http.StatusMethodNotAllowed,
				fmt.Sprintf("method %s not allowed on %s (want %s)", r.Method, path, method))
			return
		}
		h(w, r)
	})
}

// errorBody is the uniform error payload of every non-2xx response.
type errorBody struct {
	Error string `json:"error"`
}

func writeError(w http.ResponseWriter, status int, msg string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	b, _ := json.Marshal(errorBody{Error: msg})
	w.Write(append(b, '\n'))
}

// writeJSON marshals v once and writes it; marshaling before WriteHeader
// keeps a marshal failure from committing a 200.
func writeJSON(w http.ResponseWriter, v any) {
	b, err := json.Marshal(v)
	if err != nil {
		writeError(w, http.StatusInternalServerError, fmt.Sprintf("encoding response: %v", err))
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Write(append(b, '\n'))
}

// decodeBody strictly decodes the request body into v: unknown fields are
// rejected (a typoed field name silently reverting to a default would be a
// debugging trap), and trailing garbage is an error.
func decodeBody(r *http.Request, v any) error {
	dec := json.NewDecoder(http.MaxBytesReader(nil, r.Body, maxBodyBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return fmt.Errorf("decoding request: %w", err)
	}
	if err := dec.Decode(new(json.RawMessage)); err != io.EOF {
		return errors.New("decoding request: trailing data after JSON body")
	}
	return nil
}

// failStatus maps a request-processing error to its HTTP status: client
// cancellation is 499, pool shutdown 503, everything else a client error —
// scenario construction and simulation errors are deterministic properties
// of the request (unknown names, invalid ranges, mutually exclusive
// options), never server faults.
func failStatus(err error) int {
	switch {
	case errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded):
		return statusClientClosedRequest
	case errors.Is(err, dse.ErrPoolClosed):
		return http.StatusServiceUnavailable
	default:
		return http.StatusBadRequest
	}
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, map[string]string{"status": "ok"})
}

// lifetimeResponse wraps a single-scenario result.
type lifetimeResponse struct {
	Result *ResultJSON `json:"result"`
}

func (s *Server) handleLifetime(w http.ResponseWriter, r *http.Request) {
	var req ScenarioRequest
	if err := decodeBody(r, &req); err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	var res *ResultJSON
	err := s.pool.ForEach(r.Context(), 1, func(int) error {
		var err error
		res, err = s.runScenario(req)
		return err
	})
	if err != nil {
		writeError(w, failStatus(err), err.Error())
		return
	}
	writeJSON(w, lifetimeResponse{Result: res})
}

// batchRequest is a list of scenarios run as one unit of work.
type batchRequest struct {
	Scenarios []ScenarioRequest `json:"scenarios"`
}

// batchResponse returns results in request order (byte-identical at any
// worker count).
type batchResponse struct {
	Results []*ResultJSON `json:"results"`
}

func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	var req batchRequest
	if err := decodeBody(r, &req); err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	if len(req.Scenarios) == 0 {
		writeError(w, http.StatusBadRequest, "batch has no scenarios")
		return
	}
	out := make([]*ResultJSON, len(req.Scenarios))
	err := s.pool.ForEach(r.Context(), len(req.Scenarios), func(i int) error {
		res, err := s.runScenario(req.Scenarios[i])
		out[i] = res
		if err != nil {
			return fmt.Errorf("scenario %d: %w", i, err)
		}
		return nil
	})
	if err != nil {
		writeError(w, failStatus(err), err.Error())
		return
	}
	writeJSON(w, batchResponse{Results: out})
}

func (s *Server) handleFleet(w http.ResponseWriter, r *http.Request) {
	var req FleetRequest
	if err := decodeBody(r, &req); err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	resp, err := s.fleet(r.Context(), req)
	if err != nil {
		writeError(w, failStatus(err), err.Error())
		return
	}
	writeJSON(w, resp)
}

// statsResponse exposes the cumulative counters of the shared stores and
// the pool shape. These are process-lifetime values — deliberately outside
// the per-request determinism contract.
type statsResponse struct {
	Results memostore.Stats `json:"results"`
	Epochs  memostore.Stats `json:"epochs"`
	Refs    memostore.Stats `json:"refs"`
	Pool    poolStats       `json:"pool"`
}

type poolStats struct {
	Workers    int `json:"workers"`
	QueueDepth int `json:"queue_depth"`
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, statsResponse{
		Results: s.results.Stats(),
		Epochs:  s.epochs.Stats(),
		Refs:    s.refs.Stats(),
		Pool:    poolStats{Workers: s.pool.Workers(), QueueDepth: s.pool.Depth()},
	})
}
