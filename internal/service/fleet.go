package service

import (
	"context"
	"fmt"
	"math"

	"agingcgra"
	"agingcgra/internal/stats"
)

// maxFleetDevices bounds one fleet request; the cost driver is distinct
// combos, not devices, but the per-device bookkeeping is still linear.
const maxFleetDevices = 100000

// FleetRequest draws Devices scenario instances from seeded weighted
// distributions over workload mix, operating-point profile and
// dead-pattern, runs every distinct combination once, and aggregates the
// per-device outcomes into percentile curves. The draw is a pure function
// of (Seed, device index): the same request returns byte-identical JSON on
// every server at any worker count.
type FleetRequest struct {
	// Devices is the fleet size (1..100000).
	Devices int `json:"devices"`
	// Seed keys the device draws (default 1).
	Seed uint64 `json:"seed,omitempty"`
	// Base is the scenario every device starts from; the drawn mix,
	// profile and pattern override the corresponding Base fields. When
	// Base enables Faults or Recovery, each device additionally gets a
	// distinct drawn PRNG seed (so no two devices share a fault history —
	// and result sharing across devices disappears by design).
	Base ScenarioRequest `json:"base"`
	// Mixes, Profiles and Patterns are the weighted distributions; an
	// empty list keeps the Base field for every device. Weights default
	// to 1 and must not be negative.
	Mixes    []WeightedMix     `json:"mixes,omitempty"`
	Profiles []WeightedProfile `json:"profiles,omitempty"`
	Patterns []WeightedPattern `json:"patterns,omitempty"`
	// Percentiles selects the reported points (default [50, 90, 99]),
	// each in (0, 100].
	Percentiles []float64 `json:"percentiles,omitempty"`
	// Deaths selects which Nth-death times to aggregate (default [1]:
	// time to first death), each >= 1.
	Deaths []int `json:"deaths,omitempty"`
}

// WeightedMix is one workload-mix option of a fleet distribution.
type WeightedMix struct {
	Weight     float64  `json:"weight,omitempty"`
	Benchmarks []string `json:"benchmarks"`
}

// WeightedProfile is one operating-point phase-profile option.
type WeightedProfile struct {
	Weight float64                   `json:"weight,omitempty"`
	Phases []agingcgra.LifetimePhase `json:"phases"`
}

// WeightedPattern is one dead-pattern option.
type WeightedPattern struct {
	Weight  float64 `json:"weight,omitempty"`
	Pattern string  `json:"pattern"`
}

// FleetResponse aggregates a fleet run. Every field is a pure function of
// the request: Memo holds the request-scoped sharing counters (devices
// minus distinct combos), not the cumulative store state of /v1/stats.
type FleetResponse struct {
	Devices int    `json:"devices"`
	Seed    uint64 `json:"seed"`
	// Combos counts distinct drawn scenario fingerprints — the number of
	// simulations actually run.
	Combos int          `json:"combos"`
	Memo   MemoCounters `json:"memo"`
	// Deaths has one curve per requested Nth death, in request order;
	// Throughput is the percentile curve of end-of-horizon on-fabric
	// speedup over the fleet.
	Deaths     []DeathCurve      `json:"deaths"`
	Throughput []ThroughputValue `json:"throughput"`
}

// MemoCounters is the request-scoped sharing summary of one fleet query.
type MemoCounters struct {
	Hits    int     `json:"hits"`
	Misses  int     `json:"misses"`
	HitRate float64 `json:"hit_rate"`
}

// DeathCurve is the fleet distribution of the time to the Nth FU death.
type DeathCurve struct {
	Nth int `json:"nth"`
	// Survivors counts devices whose fabric saw fewer than Nth deaths
	// within the horizon; they sort after every finite death age.
	Survivors   int               `json:"survivors"`
	Percentiles []PercentileValue `json:"percentiles"`
}

// PercentileValue is one point of a percentile curve. Survived marks a
// point that landed on a device which outlived the horizon (its death age
// is beyond the simulation, so Years is omitted).
type PercentileValue struct {
	P        float64 `json:"p"`
	Years    float64 `json:"years,omitempty"`
	Survived bool    `json:"survived,omitempty"`
}

// ThroughputValue is one point of the on-fabric throughput curve: the
// percentile of end-of-horizon speedup (GPP cycles / TransRec cycles)
// across the fleet. Lower percentiles are the worst-degraded devices.
type ThroughputValue struct {
	P       float64 `json:"p"`
	Speedup float64 `json:"speedup"`
}

// mix64 is the splitmix64 finalizer (the keyed-hash convention of
// internal/recover): device draws come from hashing (seed, device,
// stream), never from shared PRNG state, so draw d is independent of how
// many draws preceded it.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// Draw streams: one per distribution, plus the per-device scenario seed.
const (
	streamMix = iota
	streamProfile
	streamPattern
	streamSeed
)

// deviceDraw returns a uniform [0, 1) draw keyed on (seed, device, stream).
func deviceDraw(seed uint64, device, stream int) float64 {
	h := deviceHash(seed, device, stream)
	return float64(h>>11) / (1 << 53)
}

func deviceHash(seed uint64, device, stream int) uint64 {
	h := mix64(seed ^ (uint64(device)+1)*0x9e3779b97f4a7c15)
	return mix64(h ^ (uint64(stream)+1)*0xc2b2ae3d27d4eb4f)
}

// pickWeighted maps a uniform draw to an option index. Zero weights count
// as 1 (the "unweighted list" convention); weights were validated
// non-negative beforehand.
func pickWeighted(u float64, weights []float64) int {
	var total float64
	for _, w := range weights {
		total += effWeight(w)
	}
	x := u * total
	for i, w := range weights {
		x -= effWeight(w)
		if x < 0 {
			return i
		}
	}
	return len(weights) - 1
}

func effWeight(w float64) float64 {
	if w == 0 {
		return 1
	}
	return w
}

func validateWeights(kind string, ws []float64) error {
	for i, w := range ws {
		if w < 0 || math.IsNaN(w) || math.IsInf(w, 0) {
			return fmt.Errorf("%s[%d]: weight %v must be a finite non-negative number", kind, i, w)
		}
	}
	return nil
}

// fleet runs one fleet query: draw devices, deduplicate into distinct
// combos, run each combo once on the shared pool, aggregate.
func (s *Server) fleet(ctx context.Context, fr FleetRequest) (*FleetResponse, error) {
	if fr.Devices <= 0 {
		return nil, fmt.Errorf("devices must be positive (got %d)", fr.Devices)
	}
	if fr.Devices > maxFleetDevices {
		return nil, fmt.Errorf("devices %d exceeds the per-request limit %d", fr.Devices, maxFleetDevices)
	}
	seed := fr.Seed
	if seed == 0 {
		seed = 1
	}
	mixW := make([]float64, len(fr.Mixes))
	for i, m := range fr.Mixes {
		mixW[i] = m.Weight
	}
	profW := make([]float64, len(fr.Profiles))
	for i, p := range fr.Profiles {
		profW[i] = p.Weight
	}
	patW := make([]float64, len(fr.Patterns))
	for i, p := range fr.Patterns {
		patW[i] = p.Weight
	}
	if err := validateWeights("mixes", mixW); err != nil {
		return nil, err
	}
	if err := validateWeights("profiles", profW); err != nil {
		return nil, err
	}
	if err := validateWeights("patterns", patW); err != nil {
		return nil, err
	}
	percentiles := fr.Percentiles
	if len(percentiles) == 0 {
		percentiles = []float64{50, 90, 99}
	}
	for _, p := range percentiles {
		if !(p > 0 && p <= 100) {
			return nil, fmt.Errorf("percentile %v must be in (0, 100]", p)
		}
	}
	deaths := fr.Deaths
	if len(deaths) == 0 {
		deaths = []int{1}
	}
	for _, n := range deaths {
		if n < 1 {
			return nil, fmt.Errorf("nth death %d must be >= 1", n)
		}
	}

	// Draw every device, deduplicating into distinct combos in
	// first-appearance order (deterministic: the draw is keyed, not
	// stateful).
	fps := make([]string, fr.Devices)
	byFP := make(map[string]ScenarioRequest)
	var order []string
	for d := 0; d < fr.Devices; d++ {
		req := fr.Base
		if len(fr.Mixes) > 0 {
			req.Benchmarks = fr.Mixes[pickWeighted(deviceDraw(seed, d, streamMix), mixW)].Benchmarks
		}
		if len(fr.Profiles) > 0 {
			req.Profile = fr.Profiles[pickWeighted(deviceDraw(seed, d, streamProfile), profW)].Phases
		}
		if len(fr.Patterns) > 0 {
			req.DeadPattern = fr.Patterns[pickWeighted(deviceDraw(seed, d, streamPattern), patW)].Pattern
		}
		if req.Faults != nil || req.Recovery != nil {
			ds := deviceHash(seed, d, streamSeed)
			if ds == 0 {
				ds = 1
			}
			req.Seed = ds
		}
		fp := req.fingerprint()
		fps[d] = fp
		if _, ok := byFP[fp]; !ok {
			byFP[fp] = req
			order = append(order, fp)
		}
	}

	// One simulation per distinct combo; wall-clock is the combo count,
	// not the device count.
	results := make([]*ResultJSON, len(order))
	err := s.pool.ForEach(ctx, len(order), func(i int) error {
		res, err := s.runScenario(byFP[order[i]])
		results[i] = res
		if err != nil {
			return fmt.Errorf("combo %d: %w", i, err)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	byFPResult := make(map[string]*ResultJSON, len(order))
	for i, fp := range order {
		byFPResult[fp] = results[i]
	}

	resp := &FleetResponse{
		Devices: fr.Devices,
		Seed:    seed,
		Combos:  len(order),
		Memo: MemoCounters{
			Hits:    fr.Devices - len(order),
			Misses:  len(order),
			HitRate: float64(fr.Devices-len(order)) / float64(fr.Devices),
		},
	}
	for _, nth := range deaths {
		ages := make([]float64, fr.Devices)
		survivors := 0
		for d, fp := range fps {
			res := byFPResult[fp]
			if len(res.DeathAges) >= nth {
				ages[d] = res.DeathAges[nth-1]
			} else {
				ages[d] = math.Inf(1)
				survivors++
			}
		}
		curve := DeathCurve{Nth: nth, Survivors: survivors}
		for _, p := range percentiles {
			v := stats.Percentile(ages, p)
			if math.IsInf(v, 1) {
				curve.Percentiles = append(curve.Percentiles, PercentileValue{P: p, Survived: true})
			} else {
				curve.Percentiles = append(curve.Percentiles, PercentileValue{P: p, Years: v})
			}
		}
		resp.Deaths = append(resp.Deaths, curve)
	}
	speedups := make([]float64, fr.Devices)
	for d, fp := range fps {
		speedups[d] = byFPResult[fp].FinalSpeedup
	}
	for _, p := range percentiles {
		resp.Throughput = append(resp.Throughput, ThroughputValue{P: p, Speedup: stats.Percentile(speedups, p)})
	}
	return resp, nil
}
