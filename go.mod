module agingcgra

go 1.24
