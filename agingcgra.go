// Package agingcgra is a full reproduction of "Proactive Aging Mitigation
// in CGRAs through Utilization-Aware Allocation" (Brandalero, Lignati,
// Beck, Shafique, Hübner — DAC 2020).
//
// The library contains everything the paper's evaluation rests on, built
// from scratch: an RV32IM subset with assembler and cycle-approximate GPP
// core (internal/isa, internal/gpp), the ten MiBench-style workloads
// (internal/prog), the TransRec CGRA fabric and its dynamic binary
// translation engine with configuration cache (internal/fabric,
// internal/mapper, internal/cfgcache, internal/dbt), the utilization-aware
// allocation strategies of Section III (internal/alloc, internal/core),
// and the NBTI aging, energy and area models of Section IV
// (internal/aging, internal/energy, internal/area).
//
// This root package is the user-facing facade: build a System, run
// workloads, and regenerate every figure and table of the paper through
// the Fig*/Table* experiment drivers.
package agingcgra

import (
	"fmt"

	"agingcgra/internal/aging"
	"agingcgra/internal/alloc"
	"agingcgra/internal/dbt"
	"agingcgra/internal/dse"
	"agingcgra/internal/energy"
	"agingcgra/internal/explore"
	"agingcgra/internal/fabric"
	"agingcgra/internal/gpp"
	"agingcgra/internal/isa"
	"agingcgra/internal/lifetime"
	"agingcgra/internal/prog"
	recov "agingcgra/internal/recover"
	"agingcgra/internal/remap"
	"agingcgra/internal/trace"
)

// Re-exported building blocks, so downstream code can stay on the facade.
type (
	// Geometry is a CGRA fabric size (rows x columns).
	Geometry = fabric.Geometry
	// Cell identifies one FU position in a fabric.
	Cell = fabric.Cell
	// Allocator decides where configurations execute.
	Allocator = alloc.Allocator
	// Report is the detailed outcome of one TransRec run.
	Report = dbt.Report
	// SuiteResult aggregates a benchmark suite on one design.
	SuiteResult = dse.SuiteResult
	// Size selects workload input scale.
	Size = prog.Size
)

// Workload sizes.
const (
	Tiny  = prog.Tiny
	Small = prog.Small
	Large = prog.Large
)

// NewGeometry builds a fabric geometry with default provisioning.
func NewGeometry(rows, cols int) Geometry { return fabric.NewGeometry(rows, cols) }

// Benchmarks returns the names of the ten-benchmark suite in paper order.
func Benchmarks() []string { return prog.Names() }

// AllocatorNames lists the selectable allocation strategies.
func AllocatorNames() []string {
	return []string{
		"baseline",
		"utilization-aware",
		"utilization-aware-rowmajor",
		"utilization-aware-diagonal",
		"utilization-aware-horizontal",
		"utilization-aware-vertical",
		"utilization-aware-shuffled",
		"health-aware",
		"explore",
		"remap",
	}
}

// NewAllocator builds a named allocation strategy for a geometry.
func NewAllocator(name string, g Geometry) (Allocator, error) {
	switch name {
	case "", "baseline":
		return alloc.Baseline{}, nil
	case "utilization-aware", "proposed", "snake":
		return alloc.NewUtilizationAware(g), nil
	case "utilization-aware-rowmajor":
		return alloc.NewUtilizationAware(g, alloc.WithPattern(alloc.RowMajor{})), nil
	case "utilization-aware-diagonal":
		return alloc.NewUtilizationAware(g, alloc.WithPattern(alloc.Diagonal{})), nil
	case "utilization-aware-horizontal":
		return alloc.NewUtilizationAware(g, alloc.WithPattern(alloc.HorizontalOnly{})), nil
	case "utilization-aware-vertical":
		return alloc.NewUtilizationAware(g, alloc.WithPattern(alloc.VerticalOnly{})), nil
	case "utilization-aware-shuffled":
		return alloc.NewUtilizationAware(g, alloc.WithPattern(alloc.Shuffled{})), nil
	case "health-aware":
		return alloc.NewHealthAware(g, 16), nil
	case "explore", "wear-aware", "explorer":
		return explore.New(g), nil
	case "remap", "shape-adaptive":
		return remap.New(g), nil
	}
	return nil, fmt.Errorf("agingcgra: unknown allocator %q (want one of %v)", name, AllocatorNames())
}

// Config describes a TransRec system instance.
type Config struct {
	// Rows and Cols size the fabric (default: the BE scenario, 2x16).
	Rows, Cols int
	// Allocator names the allocation strategy (default "baseline").
	Allocator string
	// CacheEntries sizes the configuration cache (default 128).
	CacheEntries int
}

// System is a configured TransRec instance ready to run workloads.
type System struct {
	geom      Geometry
	allocName string
	cacheCap  int
	// refs memoizes the stand-alone GPP reference runs: the reference is a
	// pure function of (benchmark, size), so repeated RunBenchmark calls
	// pay for it once.
	refs *dse.RefCache
}

// NewSystem validates the configuration and builds a system.
func NewSystem(cfg Config) (*System, error) {
	if cfg.Rows == 0 {
		cfg.Rows = 2
	}
	if cfg.Cols == 0 {
		cfg.Cols = 16
	}
	g := fabric.NewGeometry(cfg.Rows, cfg.Cols)
	if err := g.Validate(); err != nil {
		return nil, err
	}
	if _, err := NewAllocator(cfg.Allocator, g); err != nil {
		return nil, err
	}
	cap := cfg.CacheEntries
	if cap == 0 {
		cap = 128
	}
	return &System{geom: g, allocName: cfg.Allocator, cacheCap: cap, refs: dse.NewRefCache()}, nil
}

// Geometry returns the system's fabric geometry.
func (s *System) Geometry() Geometry { return s.geom }

// RunResult is the outcome of running one benchmark on a System.
type RunResult struct {
	// Benchmark is the workload name.
	Benchmark string
	// Checksum is the architectural result (also validated internally).
	Checksum uint32
	// GPPCycles is the stand-alone GPP reference time.
	GPPCycles uint64
	// Report is the detailed TransRec outcome.
	Report *Report
	// RelEnergy is TransRec energy relative to the stand-alone GPP.
	RelEnergy float64
}

// Speedup returns GPP cycles / TransRec cycles.
func (r *RunResult) Speedup() float64 {
	if r.Report.TotalCycles == 0 {
		return 0
	}
	return float64(r.GPPCycles) / float64(r.Report.TotalCycles)
}

// RunBenchmark executes one named workload at the given input scale,
// validating the architectural result against the Go reference.
func (s *System) RunBenchmark(name string, size Size) (*RunResult, error) {
	b, ok := prog.ByName(name)
	if !ok {
		return nil, fmt.Errorf("agingcgra: unknown benchmark %q (want one of %v)", name, prog.Names())
	}

	ref, err := s.refs.Get(b, size, gpp.DefaultTiming())
	if err != nil {
		return nil, err
	}
	gppCycles, gppClasses := ref.Cycles, ref.Classes

	ct, err := b.NewCore(size)
	if err != nil {
		return nil, err
	}
	allocator, err := NewAllocator(s.allocName, s.geom)
	if err != nil {
		return nil, err
	}
	eng, err := dbt.NewEngine(dbt.Options{
		Geom:          s.geom,
		Allocator:     allocator,
		CacheCapacity: s.cacheCap,
	})
	if err != nil {
		return nil, err
	}
	rep, err := eng.Run(ct, b.MaxInstructions)
	if err != nil {
		return nil, err
	}
	checksum := ct.Regs[isa.A0]
	if err := b.Check(ct.Mem, checksum, size); err != nil {
		return nil, fmt.Errorf("agingcgra: %s produced a wrong result on the CGRA: %w", name, err)
	}
	model := energy.Calibrated()
	return &RunResult{
		Benchmark: name,
		Checksum:  checksum,
		GPPCycles: gppCycles,
		Report:    rep,
		RelEnergy: model.Relative(rep, gppCycles, gppClasses),
	}, nil
}

// Lifetime simulation: the multi-year epoch loop of internal/lifetime,
// surfaced with allocators selected by name.
type (
	// LifetimeResult is the timeline of one long-horizon simulation.
	LifetimeResult = lifetime.Result
	// LifetimeRecord is one epoch of a lifetime timeline.
	LifetimeRecord = lifetime.EpochRecord
	// FaultModel maps consumed lifetime to intermittent-fault probability.
	FaultModel = lifetime.FaultModel
	// RecoveryPolicy is the detection/quarantine/recovery knob set.
	RecoveryPolicy = recov.Policy
	// RecoveryReport summarises a recovery-enabled lifetime run.
	RecoveryReport = lifetime.RecoveryReport
	// TraceEvent is one observability record of a traced lifetime run.
	TraceEvent = trace.Event
	// TraceSink receives a traced run's event stream.
	TraceSink = trace.Sink
	// TraceRecorder is a TraceSink collecting events in emission order.
	TraceRecorder = trace.Recorder
)

// LifetimePhase is one segment of a time-varying operating-point profile:
// the phase's temperature/Vdd hold until UntilYears of simulated age
// (zero fields keep the model's calibration corner, like
// LifetimeConfig.TemperatureK/Vdd).
type LifetimePhase struct {
	UntilYears   float64 `json:"until_years"`
	TemperatureK float64 `json:"temperature_k,omitempty"`
	Vdd          float64 `json:"vdd,omitempty"`
}

// LifetimeConfig describes one lifetime scenario with the allocator chosen
// by name; zero values select the BE design under the paper's calibration.
type LifetimeConfig struct {
	// Name labels the scenario (default "<geom>/<allocator>").
	Name string
	// Rows and Cols size the fabric (default 2x16, the BE design).
	Rows, Cols int
	// Allocator names the allocation strategy (default "baseline").
	Allocator string
	// Benchmarks is the per-epoch workload mix (default: the full suite).
	Benchmarks []string
	// Size is the workload input scale (default Tiny).
	Size Size
	// EpochYears is the simulation step (default 0.5).
	EpochYears float64
	// MaxYears is the simulated horizon (default 15).
	MaxYears float64
	// TemperatureK and Vdd override the operating point (0 keeps the
	// model's calibration corner); hotter or higher-voltage parts age
	// faster by Eq. 1's acceleration factor. Ignored when Profile is set.
	TemperatureK float64
	Vdd          float64
	// Profile optionally varies the operating point over time: each phase
	// holds until its UntilYears of simulated age, and the last phase
	// extends to the horizon. The fleet service draws device profiles from
	// weighted distributions over these.
	Profile []LifetimePhase
	// DeadPattern names a clustered-failure layout injected before the
	// first epoch: "column[:c]", "columns:c1+c2", "quadrant",
	// "checkerboard[:p]", "survivor-row[:r]" or "healthy" (see
	// fabric.PatternCells). InitialDead adds explicit cells on top.
	DeadPattern string
	InitialDead []Cell
	// StaleTranslations models a DBT whose translation memory predates the
	// failures: configurations are mapped for the pristine fabric and only
	// placement respects the health map. This is the regime where clustered
	// failures drive translation-only allocators to the GPP and the "remap"
	// allocator keeps the kernel on-fabric by re-mapping shapes.
	StaleTranslations bool
	// ShapeTranslations enables translation-time shape search: the DBT
	// maps each hot trace over the candidate shape ladder against current
	// health and wear instead of only the identity full-fabric shape, and
	// the translation cache is keyed on the (health, wear) versions the
	// shape decisions were taken under. Mutually exclusive with
	// StaleTranslations.
	ShapeTranslations bool
	// ShapeLadder names the candidate shape ladder ("halving", "full-only",
	// "columns", "rows", "fine"; empty: halving) shared by the
	// translation-time search and the remap allocator's rescue scan.
	ShapeLadder string
	// Seed seeds the scenario's deterministic fault-injection PRNG
	// (default 1; an explicit zero also selects the default).
	Seed uint64
	// Faults enables wear-dependent intermittent fault injection; requires
	// Recovery, since injecting faults with no detection layer would
	// corrupt results invisibly.
	Faults *FaultModel
	// Recovery enables the detection/quarantine/recovery layer: placement
	// consumes the runtime's observed health map instead of the oracle, and
	// the result carries a RecoveryReport.
	Recovery *RecoveryPolicy
	// Trace receives the run's observability event stream (epoch
	// summaries, deaths, fault/quarantine activity, remap rescues, GPP
	// fallbacks, per-FU duty/wear snapshots). Nil disables tracing;
	// tracing is observation-only and never changes the result.
	Trace TraceSink
}

// lifetimeRefs memoizes the stand-alone GPP reference runs across every
// facade-level lifetime entry point. The reference is a pure function of
// (benchmark, size, timing) — independent of geometry, allocator, health
// and wear — so one process-wide cache lets a baseline/snake/explore
// comparison (and any warm-up run before it) pay for each reference exactly
// once instead of once per allocator.
var lifetimeRefs = dse.NewRefCache()

// Scenario resolves the configuration into the internal lifetime.Scenario
// it denotes: names validated and bound (allocator, pattern, ladder,
// benchmarks), the operating point or phase profile built against the
// model's calibration corner, and the process-wide GPP-reference memo
// attached. It is the seam the lifetime service builds on — resolve once,
// then attach cross-request shared state (Scenario.Refs, EpochMemo,
// Fingerprint) before lifetime.Run.
func (c LifetimeConfig) Scenario() (lifetime.Scenario, error) {
	rows, cols := c.Rows, c.Cols
	if rows == 0 {
		rows = 2
	}
	if cols == 0 {
		cols = 16
	}
	g := fabric.NewGeometry(rows, cols)
	if err := g.Validate(); err != nil {
		return lifetime.Scenario{}, err
	}
	if _, err := NewAllocator(c.Allocator, g); err != nil {
		return lifetime.Scenario{}, err
	}
	if c.ShapeTranslations && c.StaleTranslations {
		return lifetime.Scenario{}, fmt.Errorf(
			"agingcgra: ShapeTranslations and StaleTranslations are mutually exclusive")
	}
	ladder, err := fabric.ShapeLadderByName(c.ShapeLadder)
	if err != nil {
		return lifetime.Scenario{}, err
	}
	if c.ShapeLadder != "" && !c.ShapeTranslations &&
		c.Allocator != "remap" && c.Allocator != "shape-adaptive" {
		// Nothing in this configuration walks a ladder: silently ignoring
		// the name would mislabel the results as a ladder sweep.
		return lifetime.Scenario{}, fmt.Errorf(
			"agingcgra: ShapeLadder %q has no effect without ShapeTranslations or the remap allocator", c.ShapeLadder)
	}
	allocName := c.Allocator
	factory := func(g fabric.Geometry) alloc.Allocator {
		a, err := NewAllocator(allocName, g)
		if err != nil {
			a = alloc.Baseline{}
		}
		return a
	}
	if c.ShapeLadder != "" && (allocName == "remap" || allocName == "shape-adaptive") {
		// Keep the allocation-time rescue searching the same ladder the
		// translation-time search walks.
		factory = dse.LadderRemapFactory(ladder)
	}
	model := aging.NewModel()
	cond := model.Cond
	if c.TemperatureK > 0 {
		cond.TemperatureK = c.TemperatureK
	}
	if c.Vdd > 0 {
		cond.Vdd = c.Vdd
	}
	if err := cond.Validate(); err != nil {
		return lifetime.Scenario{}, err
	}
	var profile []lifetime.Phase
	for i, p := range c.Profile {
		pc := model.Cond
		if p.TemperatureK > 0 {
			pc.TemperatureK = p.TemperatureK
		}
		if p.Vdd > 0 {
			pc.Vdd = p.Vdd
		}
		if err := pc.Validate(); err != nil {
			return lifetime.Scenario{}, fmt.Errorf("agingcgra: profile phase %d: %w", i, err)
		}
		if i > 0 && p.UntilYears < c.Profile[i-1].UntilYears {
			return lifetime.Scenario{}, fmt.Errorf(
				"agingcgra: profile phase %d ends at %.3g years, before phase %d", i, p.UntilYears, i-1)
		}
		profile = append(profile, lifetime.Phase{UntilYears: p.UntilYears, Cond: pc})
	}
	dead := append([]fabric.Cell(nil), c.InitialDead...)
	if c.DeadPattern != "" {
		cells, err := fabric.PatternCells(c.DeadPattern, g)
		if err != nil {
			return lifetime.Scenario{}, err
		}
		dead = append(dead, cells...)
	}
	sc := lifetime.Scenario{
		Name:        c.Name,
		Geom:        g,
		Factory:     factory,
		Mix:         c.Benchmarks,
		Size:        c.Size,
		EpochYears:  c.EpochYears,
		MaxYears:    c.MaxYears,
		Model:       model,
		Cond:        cond,
		Profile:     profile,
		InitialDead: dead,
		Refs:        lifetimeRefs,
		Seed:        c.Seed,
		FaultModel:  c.Faults,
		Recovery:    c.Recovery,
		Trace:       c.Trace,
	}
	sc.Engine.StaleTranslations = c.StaleTranslations
	sc.Engine.ShapeTranslations = c.ShapeTranslations
	if c.ShapeTranslations {
		sc.Engine.Ladder = ladder
	}
	return sc, nil
}

// RunLifetime simulates one lifetime scenario to its horizon.
func RunLifetime(c LifetimeConfig) (*LifetimeResult, error) {
	sc, err := c.Scenario()
	if err != nil {
		return nil, err
	}
	return lifetime.Run(sc)
}

// RunLifetimes simulates a batch of scenarios over a worker pool (workers
// <= 0 selects all CPUs, 1 forces the serial path). Results are ordered by
// scenario index and byte-identical between serial and parallel runs.
func RunLifetimes(cs []LifetimeConfig, workers int) ([]*LifetimeResult, error) {
	scs := make([]lifetime.Scenario, len(cs))
	for i, c := range cs {
		sc, err := c.Scenario()
		if err != nil {
			return nil, err
		}
		scs[i] = sc
	}
	return lifetime.RunScenarios(scs, workers)
}

// RunSuite executes the whole benchmark suite on this system's design,
// accumulating stress on one shared fabric.
func (s *System) RunSuite(size Size) (*SuiteResult, error) {
	factory := func(g fabric.Geometry) alloc.Allocator {
		a, err := NewAllocator(s.allocName, g)
		if err != nil {
			a = alloc.Baseline{}
		}
		return a
	}
	return dse.RunSuite(s.geom, factory, dse.Options{Size: size, Refs: s.refs})
}
