package agingcgra

import (
	"fmt"
	"strings"

	"agingcgra/internal/dse"
	"agingcgra/internal/fabric"
	"agingcgra/internal/lifetime"
	"agingcgra/internal/report"
)

// ShapeSweepOptions configures the shape-ladder design-space exploration:
// the candidate ladder the translation-time shape search and the remap
// rescue share was a fixed halving ladder until this sweep existed, so the
// grid crosses the named ladder variants with clustered-failure scenarios
// and reports both the lifetime outcomes and the derived search cost of
// each ladder — richer ladders search more and place better, and the sweep
// quantifies both sides of that trade.
type ShapeSweepOptions struct {
	// Rows and Cols size the fabric (default 2×16, the BE design).
	Rows, Cols int
	// Ladders names the candidate shape ladders swept
	// (fabric.ShapeLadderNames; default all of them).
	Ladders []string
	// Failures lists named failure patterns injected before the first
	// epoch (fabric.PatternCells; default healthy, column, columns:0+8).
	Failures []string
	// Benchmarks is the per-epoch mix (default crc32).
	Benchmarks []string
	// Size is the workload scale (default Tiny).
	Size Size
	// EpochYears and MaxYears shape the timeline (default 0.5 / 20).
	EpochYears float64
	MaxYears   float64
	// Workers bounds scenario parallelism (0: all CPUs, 1: serial).
	Workers int
}

func (o *ShapeSweepOptions) applyDefaults() {
	if o.Rows == 0 {
		o.Rows = 2
	}
	if o.Cols == 0 {
		o.Cols = 16
	}
	if len(o.Ladders) == 0 {
		o.Ladders = fabric.ShapeLadderNames()
	}
	if len(o.Failures) == 0 {
		o.Failures = []string{"healthy", "column", "columns:0+8"}
	}
	if len(o.Benchmarks) == 0 {
		o.Benchmarks = []string{"crc32"}
	}
	if o.EpochYears == 0 {
		o.EpochYears = 0.5
	}
	if o.MaxYears == 0 {
		o.MaxYears = 20
	}
}

// ShapeSweepPoint is one (ladder, failure) outcome: lifetime summary plus
// the derived search overhead the ladder cost.
type ShapeSweepPoint struct {
	Ladder         string  `json:"ladder"`
	Rungs          int     `json:"rungs"`
	Failure        string  `json:"failure"`
	FirstDeath     float64 `json:"first_death_years"`
	SecondDeath    float64 `json:"second_death_years"`
	ThirdDeath     float64 `json:"third_death_years"`
	TotalDeaths    int     `json:"total_deaths"`
	AliveFraction  float64 `json:"alive_fraction"`
	InitialSpeedup float64 `json:"initial_speedup"`
	FinalSpeedup   float64 `json:"final_speedup"`
	// SearchPerOffloadCycles is the derived per-offload search overhead
	// (explorer + rescue + ladder scans) under searchcost.DefaultModel.
	SearchPerOffloadCycles float64 `json:"search_per_offload_cycles"`
}

// ShapeSweepResult is the full grid in deterministic order: failures
// outermost, then ladders.
type ShapeSweepResult struct {
	Geom   Geometry          `json:"geom"`
	Points []ShapeSweepPoint `json:"points"`
}

// ShapeSweep runs the (ladder × failure) grid through the lifetime
// engine's scenario batch: every point is the shape-adaptive remapper with
// the ladder wired into both layers (translation-time search and rescue
// scan), translation-time shape search enabled. Deterministic point order,
// byte-identical results between serial and parallel runs.
func ShapeSweep(opt ShapeSweepOptions) (*ShapeSweepResult, error) {
	opt.applyDefaults()
	g := fabric.NewGeometry(opt.Rows, opt.Cols)
	if err := g.Validate(); err != nil {
		return nil, err
	}

	type key struct {
		ladder  string
		rungs   int
		failure string
	}
	var keys []key
	var scs []lifetime.Scenario
	for _, failure := range opt.Failures {
		dead, err := fabric.PatternCells(failure, g)
		if err != nil {
			return nil, err
		}
		for _, name := range opt.Ladders {
			ladder, err := fabric.ShapeLadderByName(name)
			if err != nil {
				return nil, err
			}
			sc := lifetime.Scenario{
				Name:        fmt.Sprintf("%v/shapedbt/ladder=%s/%s", g, ladder.Name, failure),
				Geom:        g,
				Factory:     dse.LadderRemapFactory(ladder),
				Mix:         opt.Benchmarks,
				Size:        opt.Size,
				EpochYears:  opt.EpochYears,
				MaxYears:    opt.MaxYears,
				InitialDead: dead,
			}
			sc.Engine.ShapeTranslations = true
			sc.Engine.Ladder = ladder
			keys = append(keys, key{ladder: ladder.Name, rungs: ladder.Len(g), failure: failure})
			scs = append(scs, sc)
		}
	}

	results, err := lifetime.RunScenarios(scs, opt.Workers)
	if err != nil {
		return nil, err
	}
	out := &ShapeSweepResult{Geom: g}
	for i, r := range results {
		p := ShapeSweepPoint{
			Ladder:         keys[i].ladder,
			Rungs:          keys[i].rungs,
			Failure:        keys[i].failure,
			FirstDeath:     r.NthDeathYears(1),
			SecondDeath:    r.NthDeathYears(2),
			ThirdDeath:     r.NthDeathYears(3),
			TotalDeaths:    r.TotalDeaths,
			AliveFraction:  r.AliveFraction,
			InitialSpeedup: r.InitialSpeedup,
			FinalSpeedup:   r.FinalSpeedup,
		}
		if r.Search != nil {
			p.SearchPerOffloadCycles = r.Search.PerOffloadCycles
		}
		out.Points = append(out.Points, p)
	}
	return out, nil
}

// Render prints the grid as a table, one block per failure scenario.
func (r *ShapeSweepResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Shape-ladder DSE - ladder variants x failure scenarios on %v (shape-aware translation)\n", r.Geom)
	byFailure := make(map[string][]ShapeSweepPoint)
	var order []string
	for _, p := range r.Points {
		if _, ok := byFailure[p.Failure]; !ok {
			order = append(order, p.Failure)
		}
		byFailure[p.Failure] = append(byFailure[p.Failure], p)
	}
	death := func(y float64) string {
		if y == 0 {
			return "none"
		}
		return fmt.Sprintf("%.2fy", y)
	}
	for _, failure := range order {
		fmt.Fprintf(&b, "\n[failure: %s]\n", failure)
		tab := &report.Table{Header: []string{
			"ladder", "rungs", "1st death", "2nd death", "3rd death", "deaths", "alive", "speedup@0", "speedup@end", "search/offload",
		}}
		for _, p := range byFailure[failure] {
			tab.AddRow(
				p.Ladder,
				fmt.Sprintf("%d", p.Rungs),
				death(p.FirstDeath), death(p.SecondDeath), death(p.ThirdDeath),
				fmt.Sprintf("%d", p.TotalDeaths),
				fmt.Sprintf("%.0f%%", 100*p.AliveFraction),
				fmt.Sprintf("%.2f", p.InitialSpeedup),
				fmt.Sprintf("%.2f", p.FinalSpeedup),
				fmt.Sprintf("%.1fcy", p.SearchPerOffloadCycles),
			)
		}
		b.WriteString(tab.String())
	}
	return b.String()
}

// CSVRows flattens the grid for report.WriteCSV, matching CSVHeader.
func (r *ShapeSweepResult) CSVRows() [][]string {
	rows := make([][]string, 0, len(r.Points))
	for _, p := range r.Points {
		rows = append(rows, []string{
			p.Failure,
			p.Ladder,
			fmt.Sprintf("%d", p.Rungs),
			fmt.Sprintf("%.6f", p.FirstDeath),
			fmt.Sprintf("%.6f", p.SecondDeath),
			fmt.Sprintf("%.6f", p.ThirdDeath),
			fmt.Sprintf("%d", p.TotalDeaths),
			fmt.Sprintf("%.6f", p.AliveFraction),
			fmt.Sprintf("%.6f", p.InitialSpeedup),
			fmt.Sprintf("%.6f", p.FinalSpeedup),
			fmt.Sprintf("%.6f", p.SearchPerOffloadCycles),
		})
	}
	return rows
}

// CSVHeader names the CSVRows columns.
func (r *ShapeSweepResult) CSVHeader() []string {
	return []string{
		"failure", "ladder", "rungs",
		"first_death_years", "second_death_years", "third_death_years",
		"total_deaths", "alive_fraction", "initial_speedup", "final_speedup",
		"search_per_offload_cycles",
	}
}
