package main

import (
	"bytes"
	"encoding/json"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// buildVet compiles the cgra-vet binary once into a test temp dir.
func buildVet(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "cgra-vet")
	cmd := exec.Command("go", "build", "-o", bin, ".")
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("building cgra-vet: %v\n%s", err, out)
	}
	return bin
}

// writeModule lays out a throwaway module named agingcgra (the
// analyzers scope to the project module path) containing one
// simulation package.
func writeModule(t *testing.T, src string) string {
	t.Helper()
	dir := t.TempDir()
	files := map[string]string{
		"go.mod":              "module agingcgra\n\ngo 1.24\n",
		"internal/sim/sim.go": src,
	}
	for name, content := range files {
		path := filepath.Join(dir, filepath.FromSlash(name))
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dir
}

// runVet invokes `go vet -vettool=bin ./...` in dir.
func runVet(t *testing.T, bin, dir string) (string, error) {
	t.Helper()
	cmd := exec.Command("go", "vet", "-vettool="+bin, "./...")
	cmd.Dir = dir
	var out bytes.Buffer
	cmd.Stdout = &out
	cmd.Stderr = &out
	err := cmd.Run()
	return out.String(), err
}

// TestSeededViolationFailsVet is the CI-gate demonstration: a module
// with a wallclock violation in a simulation package must make
// `go vet -vettool=cgra-vet` exit non-zero and name the finding.
func TestSeededViolationFailsVet(t *testing.T) {
	bin := buildVet(t)
	dir := writeModule(t, `package sim

import "time"

// Stamp breaks the determinism contract on purpose.
func Stamp() time.Time { return time.Now() }
`)
	out, err := runVet(t, bin, dir)
	if err == nil {
		t.Fatalf("go vet succeeded on a module with a seeded wallclock violation; output:\n%s", out)
	}
	if !strings.Contains(out, "time.Now reads the wall clock") {
		t.Fatalf("go vet failed but not with the wallclock finding; output:\n%s", out)
	}
}

// TestCleanModulePassesVet checks the inverse: deterministic code and
// a properly annotated exception produce exit status 0.
func TestCleanModulePassesVet(t *testing.T) {
	bin := buildVet(t)
	dir := writeModule(t, `package sim

import "time"

// Span is pure duration arithmetic: no wall-clock read.
func Span(d time.Duration) time.Duration { return 2 * d }

// Deadline is an audited exception.
func Deadline() time.Time {
	return time.Now() //cgravet:ignore wallclock request deadline plumbing is caller-visible wall time
}
`)
	out, err := runVet(t, bin, dir)
	if err != nil {
		t.Fatalf("go vet failed on a clean module: %v\noutput:\n%s", err, out)
	}
}

// TestVersionHandshake checks the -V=full output cmd/go parses to
// derive the tool's build ID: "<name> version <words> buildID=<hex>".
func TestVersionHandshake(t *testing.T) {
	bin := buildVet(t)
	out, err := exec.Command(bin, "-V=full").Output()
	if err != nil {
		t.Fatalf("cgra-vet -V=full: %v", err)
	}
	re := regexp.MustCompile(`^cgra-vet version [^\n]* buildID=[0-9a-f]+\n$`)
	if !re.Match(out) {
		t.Fatalf("-V=full output %q does not match %v", out, re)
	}
}

// TestFlagsHandshake checks the -flags output is the JSON flag list
// cmd/go expects.
func TestFlagsHandshake(t *testing.T) {
	bin := buildVet(t)
	out, err := exec.Command(bin, "-flags").Output()
	if err != nil {
		t.Fatalf("cgra-vet -flags: %v", err)
	}
	var flags []struct {
		Name  string
		Bool  bool
		Usage string
	}
	if err := json.Unmarshal(out, &flags); err != nil {
		t.Fatalf("-flags output is not the expected JSON: %v\n%s", err, out)
	}
	names := map[string]bool{}
	for _, f := range flags {
		names[f.Name] = true
	}
	for _, want := range []string{"wallclock", "globalrand", "maporder", "traceemit", "nilness", "unusedwrite"} {
		if !names[want] {
			t.Errorf("-flags output lacks the %s toggle; got %s", want, out)
		}
	}
}
