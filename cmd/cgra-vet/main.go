// Command cgra-vet is the project's invariants-as-lint multichecker:
// the custom analyzers of internal/lint (wallclock, globalrand,
// maporder, traceemit — the determinism and memo-key contracts from
// ROADMAP.md as machine-checked rules) plus stdlib reimplementations
// of the stock nilness and unusedwrite checks, speaking the `go vet
// -vettool` protocol.
//
// Usage:
//
//	go build -o cgra-vet ./cmd/cgra-vet
//	go vet -vettool=./cgra-vet ./...
//
// or, equivalently (the tool re-executes itself through go vet):
//
//	go run ./cmd/cgra-vet ./...
//
// Disable an analyzer with -<name>=false. Suppress a single finding
// with an audited directive: //cgravet:ignore <analyzer> <reason> —
// the reason is mandatory.
package main

import "agingcgra/internal/lint"

func main() {
	lint.Main(lint.Suite()...)
}
