// cgra-lifetime plays a TransRec fabric forward through years of operation:
// multi-year NBTI aging per Eq. 1, end-of-life failure injection, and
// DBT remapping around dead FUs, for one scenario per selected allocator.
// It prints a human-readable comparison — the headline is the three-way
// baseline / snake / explore time-to-first/second/third-death table — and
// emits the full timelines as machine-readable JSON. The stand-alone GPP
// reference is memoized across all selected allocators: adding the explorer
// as a third co-simulation pass does not recompute it.
//
// Usage:
//
//	cgra-lifetime                           # BE design, baseline/snake/explore/remap
//	cgra-lifetime -rows 8 -cols 32 -years 40 \
//	    -allocators baseline,utilization-aware,health-aware,explore,remap \
//	    -bench crc32,sha -epoch 0.25 -o lifetime.json
//	cgra-lifetime -dead survivor-row:1 -stale-translations \
//	    -allocators explore,remap          # clustered failure: remap vs explorer
//	cgra-lifetime -faults -recovery -check-every 1 \
//	    -allocators baseline,explore       # no oracle: detect/quarantine/recover
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"strings"

	"agingcgra"
	"agingcgra/internal/report"
)

// Output is the emitted JSON document.
type Output struct {
	Schema    string                      `json:"schema"`
	GoVersion string                      `json:"go_version"`
	Scenarios []*agingcgra.LifetimeResult `json:"scenarios"`
}

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "cgra-lifetime:", err)
		os.Exit(1)
	}
}

// run is the testable entry point: flag parsing, scenario validation and
// execution, with all failures (unknown allocator, pattern, ladder, size)
// surfaced as errors instead of panics.
func run(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("cgra-lifetime", flag.ContinueOnError)
	fs.SetOutput(stderr)
	rows := fs.Int("rows", 2, "fabric rows W")
	cols := fs.Int("cols", 16, "fabric columns L")
	allocators := fs.String("allocators", "baseline,utilization-aware,explore,remap",
		"comma-separated allocation strategies to compare")
	dead := fs.String("dead", "",
		"clustered-failure pattern injected before the first epoch: column[:c], columns:c1+c2, quadrant, checkerboard[:p], survivor-row[:r]")
	stale := fs.Bool("stale-translations", false,
		"translate for the pristine fabric (configs predate the failures); placement still respects health")
	shaped := fs.Bool("shape-translations", false,
		"translation-time shape search: map each hot trace over the candidate shape ladder against current health/wear")
	ladder := fs.String("ladder", "",
		"candidate shape ladder for the shape searches: halving (default), full-only, columns, rows, fine")
	bench := fs.String("bench", "", "comma-separated workload mix (default: full suite)")
	sizeName := fs.String("size", "tiny", "workload size: tiny, small, large")
	epoch := fs.Float64("epoch", 0.5, "epoch length in years")
	years := fs.Float64("years", 15, "simulated horizon in years")
	temp := fs.Float64("temp", 0, "junction temperature in kelvin (0: model default)")
	vdd := fs.Float64("vdd", 0, "supply voltage in volts (0: model default)")
	seed := fs.Uint64("seed", 0, "fault-injection PRNG seed (0: default 1)")
	faults := fs.Bool("faults", false,
		"inject wear-dependent intermittent faults once consumed lifetime crosses -fault-at (requires -recovery)")
	faultAt := fs.Float64("fault-at", 0,
		"consumed-lifetime fraction at which intermittent faults start (0: default 0.6)")
	faultProb := fs.Float64("fault-prob", 0,
		"per-execution fault probability reached just before hard death (0: default 0.02)")
	recovery := fs.Bool("recovery", false,
		"replace the health oracle with the detection/quarantine/recovery layer: placement consumes the runtime's observed health map")
	checkEvery := fs.Int("check-every", 0, "verify every k-th offload against the GPP reference (0: default 4; 1: every offload)")
	retries := fs.Int("retries", 0, "on-fabric retries after a detected fault before GPP backoff (0: default 2)")
	quarantineAfter := fs.Int("quarantine-after", 0, "detected faults per cell before quarantine (0: default 3)")
	probation := fs.Int("probation", 0, "consecutive clean probes to reinstate a quarantined cell (0: default 8)")
	failStop := fs.Bool("fail-stop", false,
		"no-recovery baseline: first detected fault routes every later offload to the GPP forever")
	workers := fs.Int("workers", 0, "scenario parallelism (0: all CPUs, 1: serial)")
	traceOut := fs.String("trace", "",
		"write observability artifacts under this path prefix: PREFIX.events.csv (epoch/death/fault/quarantine/remap/fallback events), PREFIX.snapshots.csv (per-FU duty/wear per epoch) and PREFIX.html (standalone heatmap + timeline report)")
	out := fs.String("o", "-", "JSON output path ('-' for stdout)")
	if err := fs.Parse(args); err != nil {
		return err
	}

	size, err := parseSize(*sizeName)
	if err != nil {
		return err
	}
	var mix []string
	if *bench != "" {
		mix = strings.Split(*bench, ",")
	}
	var fm *agingcgra.FaultModel
	if *faults {
		fm = &agingcgra.FaultModel{IntermittentAt: *faultAt, MaxProb: *faultProb}
	}
	var rp *agingcgra.RecoveryPolicy
	if *recovery || *faults || *failStop {
		rp = &agingcgra.RecoveryPolicy{
			CheckEvery:      *checkEvery,
			MaxRetries:      *retries,
			QuarantineAfter: *quarantineAfter,
			ProbationProbes: *probation,
			FailStop:        *failStop,
		}
	}

	var configs []agingcgra.LifetimeConfig
	for _, name := range strings.Split(*allocators, ",") {
		configs = append(configs, agingcgra.LifetimeConfig{
			Rows:              *rows,
			Cols:              *cols,
			Allocator:         strings.TrimSpace(name),
			Benchmarks:        mix,
			Size:              size,
			EpochYears:        *epoch,
			MaxYears:          *years,
			TemperatureK:      *temp,
			Vdd:               *vdd,
			DeadPattern:       *dead,
			StaleTranslations: *stale,
			ShapeTranslations: *shaped,
			ShapeLadder:       *ladder,
			Seed:              *seed,
			Faults:            fm,
			Recovery:          rp,
		})
	}

	// One recorder per scenario: each Run emits into its own sink, so the
	// combined stream (concatenated in scenario order) is identical at any
	// -workers value.
	var recorders []*agingcgra.TraceRecorder
	if *traceOut != "" {
		recorders = make([]*agingcgra.TraceRecorder, len(configs))
		for i := range configs {
			recorders[i] = &agingcgra.TraceRecorder{}
			configs[i].Trace = recorders[i]
		}
	}

	results, err := agingcgra.RunLifetimes(configs, *workers)
	if err != nil {
		return err
	}

	printSummary(stderr, results)

	if *traceOut != "" {
		var events []agingcgra.TraceEvent
		for _, rec := range recorders {
			events = append(events, rec.Events...)
		}
		if err := writeTraceArtifacts(*traceOut, events, stderr); err != nil {
			return err
		}
	}

	blob, err := json.MarshalIndent(Output{
		Schema:    "agingcgra-lifetime/v1",
		GoVersion: runtime.Version(),
		Scenarios: results,
	}, "", "  ")
	if err != nil {
		return err
	}
	if *out == "-" {
		fmt.Fprintln(stdout, string(blob))
	} else {
		if err := os.WriteFile(*out, append(blob, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Fprintf(stderr, "wrote %s\n", *out)
	}
	return nil
}

// writeTraceArtifacts renders the recorded event stream as the three
// observability artifacts: the flat event CSV, the per-FU snapshot CSV,
// and the standalone HTML report.
func writeTraceArtifacts(prefix string, events []agingcgra.TraceEvent, stderr io.Writer) error {
	write := func(suffix string, render func(io.Writer) error) error {
		path := prefix + suffix
		var b strings.Builder
		if err := render(&b); err != nil {
			return err
		}
		if err := os.WriteFile(path, []byte(b.String()), 0o644); err != nil {
			return err
		}
		fmt.Fprintf(stderr, "wrote %s\n", path)
		return nil
	}
	if err := write(".events.csv", func(w io.Writer) error {
		return report.TraceEventsCSV(w, events)
	}); err != nil {
		return err
	}
	if err := write(".snapshots.csv", func(w io.Writer) error {
		return report.TraceSnapshotsCSV(w, events)
	}); err != nil {
		return err
	}
	return write(".html", func(w io.Writer) error {
		return report.TraceHTML(w, "cgra-lifetime trace", events)
	})
}

func printSummary(w io.Writer, results []*agingcgra.LifetimeResult) {
	fmt.Fprintf(w, "%-42s %10s %10s %10s %8s %8s %10s %10s\n",
		"scenario", "1st death", "2nd death", "3rd death", "deaths", "alive", "speedup@0", "speedup@end")
	for _, r := range results {
		fmt.Fprintf(w, "%-42s %10s %10s %10s %8d %7.0f%% %10.2f %10.2f\n",
			r.Name, deathAge(r, 1), deathAge(r, 2), deathAge(r, 3),
			r.TotalDeaths, 100*r.AliveFraction,
			r.InitialSpeedup, r.FinalSpeedup)
	}
	// Rank against the shortest-lived scenario per death index: the paper's
	// Table I phrasing generalised from first failure to the n-th. A
	// scenario with no n-th death *survived* — the best outcome, not
	// missing data — so the ratio line only makes sense when every
	// scenario reached that death count.
	for n := 1; n <= 3; n++ {
		var longest, shortest *agingcgra.LifetimeResult
		for _, r := range results {
			if r.NthDeathYears(n) == 0 {
				fmt.Fprintf(w, "%s reaches the horizon without death #%d (outlives all)\n",
					r.AllocatorName, n)
				longest, shortest = nil, nil
				break
			}
			if shortest == nil || r.NthDeathYears(n) < shortest.NthDeathYears(n) {
				shortest = r
			}
			if longest == nil || r.NthDeathYears(n) > longest.NthDeathYears(n) {
				longest = r
			}
		}
		if longest != nil && shortest != nil && longest != shortest {
			fmt.Fprintf(w, "%s outlives %s to death #%d by %.2fx\n",
				longest.AllocatorName, shortest.AllocatorName, n,
				longest.NthDeathYears(n)/shortest.NthDeathYears(n))
		}
	}
	printSearchCost(w, results)
	printRecovery(w, results)
}

// printSearchCost renders the derived hardware cost of each scenario's
// placement/shape searches and recovery-layer verification: the searchcost
// model's replacement for the "asserted cheap" hold-period story.
func printSearchCost(w io.Writer, results []*agingcgra.LifetimeResult) {
	var rows []report.SearchCostRow
	for _, r := range results {
		if r.Search == nil {
			continue
		}
		rows = append(rows, report.SearchCostRow{
			Name:              r.Name,
			ExplorerCycles:    r.Search.Cost.Explorer.Cycles,
			RemapCycles:       r.Search.Cost.Remap.Cycles,
			TranslationCycles: r.Search.Cost.Translation.Cycles,
			RecoveryCycles:    r.Search.Cost.Recovery.Cycles,
			TotalCycles:       r.Search.TotalCycles,
			EnergyNJ:          r.Search.TotalEnergyNJ,
			PerOffloadCycles:  r.Search.PerOffloadCycles,
			OverheadFrac:      r.Search.OverheadFrac,
		})
	}
	if len(rows) == 0 {
		return
	}
	fmt.Fprintf(w, "\nderived search cost (explorer pivot scans, remap rescue scans, translation ladder scans, recovery checks):\n%s",
		report.SearchCostTable(rows))
}

// printRecovery renders the fault-detection/recovery summary of every
// recovery-enabled scenario: the runtime's measured view against ground
// truth.
func printRecovery(w io.Writer, results []*agingcgra.LifetimeResult) {
	var rows []report.RecoveryRow
	for _, r := range results {
		rec := r.Recovery
		if rec == nil {
			continue
		}
		rows = append(rows, report.RecoveryRow{
			Name:               r.Name,
			Faulted:            rec.Stats.FaultedExecs,
			Detected:           rec.Stats.DetectedFaults,
			Escapes:            rec.Stats.SilentEscapes,
			Retries:            rec.Stats.Retries,
			Backoffs:           rec.Stats.GPPBackoffs,
			Quarantines:        rec.Stats.Quarantines,
			Reinstated:         rec.Stats.Reinstatements,
			TrueDead:           rec.TrueDead,
			ObservedDead:       rec.ObservedDead,
			FalseNegatives:     rec.FalseNegatives,
			FalsePositivesOpen: rec.FalsePositivesOpen,
			MeanLatencyYears:   rec.MeanDetectionLatencyYears,
		})
	}
	if len(rows) == 0 {
		return
	}
	fmt.Fprintf(w, "\nfault detection & recovery (observed vs ground truth):\n%s",
		report.RecoveryTable(rows))
}

func deathAge(r *agingcgra.LifetimeResult, n int) string {
	if y := r.NthDeathYears(n); y > 0 {
		return fmt.Sprintf("%.2f y", y)
	}
	return "none"
}

func parseSize(s string) (agingcgra.Size, error) {
	switch s {
	case "tiny":
		return agingcgra.Tiny, nil
	case "small":
		return agingcgra.Small, nil
	case "large":
		return agingcgra.Large, nil
	}
	return 0, fmt.Errorf("unknown size %q", s)
}
