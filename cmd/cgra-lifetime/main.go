// cgra-lifetime plays a TransRec fabric forward through years of operation:
// multi-year NBTI aging per Eq. 1, end-of-life failure injection, and
// DBT remapping around dead FUs, for one scenario per selected allocator.
// It prints a human-readable comparison — the headline is the three-way
// baseline / snake / explore time-to-first/second/third-death table — and
// emits the full timelines as machine-readable JSON. The stand-alone GPP
// reference is memoized across all selected allocators: adding the explorer
// as a third co-simulation pass does not recompute it.
//
// Usage:
//
//	cgra-lifetime                           # BE design, baseline/snake/explore/remap
//	cgra-lifetime -rows 8 -cols 32 -years 40 \
//	    -allocators baseline,utilization-aware,health-aware,explore,remap \
//	    -bench crc32,sha -epoch 0.25 -o lifetime.json
//	cgra-lifetime -dead survivor-row:1 -stale-translations \
//	    -allocators explore,remap          # clustered failure: remap vs explorer
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"

	"agingcgra"
	"agingcgra/internal/report"
)

// Output is the emitted JSON document.
type Output struct {
	Schema    string                      `json:"schema"`
	GoVersion string                      `json:"go_version"`
	Scenarios []*agingcgra.LifetimeResult `json:"scenarios"`
}

func main() {
	rows := flag.Int("rows", 2, "fabric rows W")
	cols := flag.Int("cols", 16, "fabric columns L")
	allocators := flag.String("allocators", "baseline,utilization-aware,explore,remap",
		"comma-separated allocation strategies to compare")
	dead := flag.String("dead", "",
		"clustered-failure pattern injected before the first epoch: column[:c], columns:c1+c2, quadrant, checkerboard[:p], survivor-row[:r]")
	stale := flag.Bool("stale-translations", false,
		"translate for the pristine fabric (configs predate the failures); placement still respects health")
	shaped := flag.Bool("shape-translations", false,
		"translation-time shape search: map each hot trace over the candidate shape ladder against current health/wear")
	ladder := flag.String("ladder", "",
		"candidate shape ladder for the shape searches: halving (default), full-only, columns, rows, fine")
	bench := flag.String("bench", "", "comma-separated workload mix (default: full suite)")
	sizeName := flag.String("size", "tiny", "workload size: tiny, small, large")
	epoch := flag.Float64("epoch", 0.5, "epoch length in years")
	years := flag.Float64("years", 15, "simulated horizon in years")
	temp := flag.Float64("temp", 0, "junction temperature in kelvin (0: model default)")
	vdd := flag.Float64("vdd", 0, "supply voltage in volts (0: model default)")
	workers := flag.Int("workers", 0, "scenario parallelism (0: all CPUs, 1: serial)")
	out := flag.String("o", "-", "JSON output path ('-' for stdout)")
	flag.Parse()

	size, err := parseSize(*sizeName)
	if err != nil {
		fatal(err)
	}
	var mix []string
	if *bench != "" {
		mix = strings.Split(*bench, ",")
	}

	var configs []agingcgra.LifetimeConfig
	for _, name := range strings.Split(*allocators, ",") {
		configs = append(configs, agingcgra.LifetimeConfig{
			Rows:              *rows,
			Cols:              *cols,
			Allocator:         strings.TrimSpace(name),
			Benchmarks:        mix,
			Size:              size,
			EpochYears:        *epoch,
			MaxYears:          *years,
			TemperatureK:      *temp,
			Vdd:               *vdd,
			DeadPattern:       *dead,
			StaleTranslations: *stale,
			ShapeTranslations: *shaped,
			ShapeLadder:       *ladder,
		})
	}

	results, err := agingcgra.RunLifetimes(configs, *workers)
	if err != nil {
		fatal(err)
	}

	printSummary(results)

	blob, err := json.MarshalIndent(Output{
		Schema:    "agingcgra-lifetime/v1",
		GoVersion: runtime.Version(),
		Scenarios: results,
	}, "", "  ")
	if err != nil {
		fatal(err)
	}
	if *out == "-" {
		fmt.Println(string(blob))
	} else {
		if err := os.WriteFile(*out, append(blob, '\n'), 0o644); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "wrote %s\n", *out)
	}
}

func printSummary(results []*agingcgra.LifetimeResult) {
	fmt.Fprintf(os.Stderr, "%-42s %10s %10s %10s %8s %8s %10s %10s\n",
		"scenario", "1st death", "2nd death", "3rd death", "deaths", "alive", "speedup@0", "speedup@end")
	for _, r := range results {
		fmt.Fprintf(os.Stderr, "%-42s %10s %10s %10s %8d %7.0f%% %10.2f %10.2f\n",
			r.Name, deathAge(r, 1), deathAge(r, 2), deathAge(r, 3),
			r.TotalDeaths, 100*r.AliveFraction,
			r.InitialSpeedup, r.FinalSpeedup)
	}
	// Rank against the shortest-lived scenario per death index: the paper's
	// Table I phrasing generalised from first failure to the n-th. A
	// scenario with no n-th death *survived* — the best outcome, not
	// missing data — so the ratio line only makes sense when every
	// scenario reached that death count.
	for n := 1; n <= 3; n++ {
		var longest, shortest *agingcgra.LifetimeResult
		for _, r := range results {
			if r.NthDeathYears(n) == 0 {
				fmt.Fprintf(os.Stderr, "%s reaches the horizon without death #%d (outlives all)\n",
					r.AllocatorName, n)
				longest, shortest = nil, nil
				break
			}
			if shortest == nil || r.NthDeathYears(n) < shortest.NthDeathYears(n) {
				shortest = r
			}
			if longest == nil || r.NthDeathYears(n) > longest.NthDeathYears(n) {
				longest = r
			}
		}
		if longest != nil && shortest != nil && longest != shortest {
			fmt.Fprintf(os.Stderr, "%s outlives %s to death #%d by %.2fx\n",
				longest.AllocatorName, shortest.AllocatorName, n,
				longest.NthDeathYears(n)/shortest.NthDeathYears(n))
		}
	}
	printSearchCost(results)
}

// printSearchCost renders the derived hardware cost of each scenario's
// placement/shape searches: the searchcost model's replacement for the
// "asserted cheap" hold-period story.
func printSearchCost(results []*agingcgra.LifetimeResult) {
	var rows []report.SearchCostRow
	for _, r := range results {
		if r.Search == nil {
			continue
		}
		rows = append(rows, report.SearchCostRow{
			Name:              r.Name,
			ExplorerCycles:    r.Search.Cost.Explorer.Cycles,
			RemapCycles:       r.Search.Cost.Remap.Cycles,
			TranslationCycles: r.Search.Cost.Translation.Cycles,
			TotalCycles:       r.Search.TotalCycles,
			EnergyNJ:          r.Search.TotalEnergyNJ,
			PerOffloadCycles:  r.Search.PerOffloadCycles,
			OverheadFrac:      r.Search.OverheadFrac,
		})
	}
	if len(rows) == 0 {
		return
	}
	fmt.Fprintf(os.Stderr, "\nderived search cost (explorer pivot scans, remap rescue scans, translation ladder scans):\n%s",
		report.SearchCostTable(rows))
}

func deathAge(r *agingcgra.LifetimeResult, n int) string {
	if y := r.NthDeathYears(n); y > 0 {
		return fmt.Sprintf("%.2f y", y)
	}
	return "none"
}

func parseSize(s string) (agingcgra.Size, error) {
	switch s {
	case "tiny":
		return agingcgra.Tiny, nil
	case "small":
		return agingcgra.Small, nil
	case "large":
		return agingcgra.Large, nil
	}
	return 0, fmt.Errorf("unknown size %q", s)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "cgra-lifetime:", err)
	os.Exit(1)
}
