package main

import (
	"bytes"
	"strings"
	"testing"
)

// TestRunRejectsUnknownNames pins the CLI's error path: unknown allocator,
// pattern, ladder and size names must fail with a descriptive error (the
// process exits non-zero), not panic mid-batch.
func TestRunRejectsUnknownNames(t *testing.T) {
	cases := []struct {
		name string
		args []string
		want string
	}{
		{"allocator", []string{"-allocators", "nonsense", "-years", "1"}, "unknown allocator"},
		{"pattern", []string{"-dead", "mystery-pattern", "-years", "1"}, "unknown failure pattern"},
		{"ladder", []string{"-shape-translations", "-ladder", "bogus", "-years", "1"}, "unknown shape ladder"},
		{"size", []string{"-size", "jumbo", "-years", "1"}, "unknown size"},
		{"faults without recovery knobs still validates", []string{"-faults", "-fault-at", "1.5", "-years", "1"}, "IntermittentAt"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var stdout, stderr bytes.Buffer
			err := run(tc.args, &stdout, &stderr)
			if err == nil {
				t.Fatalf("args %v: expected an error", tc.args)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Errorf("args %v: error %q does not mention %q", tc.args, err, tc.want)
			}
		})
	}
}

// TestRunFaultRecoverySummary runs a tiny fault-enabled comparison end to
// end and checks the recovery table reaches the summary output.
func TestRunFaultRecoverySummary(t *testing.T) {
	var stdout, stderr bytes.Buffer
	err := run([]string{
		"-allocators", "baseline",
		"-bench", "crc32",
		"-years", "6",
		"-faults", "-fault-at", "0.4", "-fault-prob", "0.05",
		"-recovery", "-check-every", "1",
		"-workers", "1",
	}, &stdout, &stderr)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(stderr.String(), "fault detection & recovery") {
		t.Error("summary should include the recovery table")
	}
	if !strings.Contains(stdout.String(), "\"recovery\"") {
		t.Error("JSON output should carry the recovery report")
	}
}
