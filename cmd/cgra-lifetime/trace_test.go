package main

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var updateGolden = flag.Bool("update", false, "rewrite golden trace artifacts")

// TestRunTraceGolden runs a tiny deterministic scenario with -trace and
// compares every artifact byte for byte against the committed goldens:
// the CSV/HTML renderers and the event stream behind them are pure
// functions of the scenario, so any drift here is a real contract change
// (regenerate deliberately with `go test -run TraceGolden -update`).
func TestRunTraceGolden(t *testing.T) {
	dir := t.TempDir()
	prefix := filepath.Join(dir, "trace")
	var stdout, stderr bytes.Buffer
	err := run([]string{
		"-rows", "2", "-cols", "8",
		"-allocators", "baseline",
		"-bench", "crc32",
		"-years", "2",
		"-workers", "1",
		"-trace", prefix,
		"-o", filepath.Join(dir, "out.json"),
	}, &stdout, &stderr)
	if err != nil {
		t.Fatal(err)
	}
	for _, suffix := range []string{".events.csv", ".snapshots.csv", ".html"} {
		got, err := os.ReadFile(prefix + suffix)
		if err != nil {
			t.Fatalf("missing artifact: %v", err)
		}
		golden := filepath.Join("testdata", "trace"+suffix+".golden")
		if *updateGolden {
			if err := os.MkdirAll("testdata", 0o755); err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(golden, got, 0o644); err != nil {
				t.Fatal(err)
			}
			continue
		}
		want, err := os.ReadFile(golden)
		if err != nil {
			t.Fatalf("reading golden (regenerate with -update): %v", err)
		}
		if !bytes.Equal(got, want) {
			t.Errorf("%s drifted from golden %s (regenerate deliberately with -update)",
				prefix+suffix, golden)
		}
		if !strings.Contains(stderr.String(), "wrote "+prefix+suffix) {
			t.Errorf("stderr does not mention %s", prefix+suffix)
		}
	}
}

// TestRunTraceAtAnyWorkerCount pins the CLI half of the determinism
// contract: -trace artifacts are byte-identical at -workers 1 and 4,
// because each scenario records into its own recorder and the combined
// stream is concatenated in scenario order.
func TestRunTraceAtAnyWorkerCount(t *testing.T) {
	render := func(workers string) map[string][]byte {
		t.Helper()
		dir := t.TempDir()
		prefix := filepath.Join(dir, "trace")
		var stdout, stderr bytes.Buffer
		err := run([]string{
			"-rows", "2", "-cols", "8",
			"-allocators", "baseline,utilization-aware,remap",
			"-bench", "crc32",
			"-years", "3",
			"-workers", workers,
			"-trace", prefix,
			"-o", filepath.Join(dir, "out.json"),
		}, &stdout, &stderr)
		if err != nil {
			t.Fatal(err)
		}
		out := make(map[string][]byte)
		for _, suffix := range []string{".events.csv", ".snapshots.csv", ".html"} {
			b, err := os.ReadFile(prefix + suffix)
			if err != nil {
				t.Fatal(err)
			}
			out[suffix] = b
		}
		return out
	}
	serial := render("1")
	parallel := render("4")
	for suffix, want := range serial {
		if !bytes.Equal(parallel[suffix], want) {
			t.Errorf("%s differs between -workers 1 and 4", suffix)
		}
	}
}
