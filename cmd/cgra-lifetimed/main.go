// cgra-lifetimed serves the lifetime simulator over HTTP/JSON: single
// scenario queries, scenario batches, and fleet-scale queries that draw
// thousands of devices from seeded distributions and aggregate them into
// percentile lifetime curves. All expensive state — the scenario worker
// pool, the result and epoch memo stores, the GPP-reference memo — is
// shared across requests, so a fleet of 1000 devices over a few dozen
// distinct configurations costs a few dozen simulations.
//
// Endpoints (see docs/SERVICE.md for the full API reference):
//
//	GET  /healthz             liveness probe
//	POST /v1/lifetime         run one scenario
//	POST /v1/lifetime/stream  run one scenario, streaming its observability
//	                          events as NDJSON with a terminal result line
//	POST /v1/batch            run a scenario list, results in request order
//	POST /v1/fleet            seeded fleet draw + percentile aggregation
//	GET  /v1/stats            cumulative memo-store and pool counters
//
// Usage:
//
//	cgra-lifetimed                       # listen on :8080
//	cgra-lifetimed -addr 127.0.0.1:9000 -workers 8 -queue-depth 128
//	cgra-lifetimed -memo-entries 16384   # larger result/epoch stores
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"agingcgra/internal/service"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "cgra-lifetimed:", err)
		os.Exit(1)
	}
}

// run is the testable entry point: it parses flags, binds the listener,
// serves until ctx is canceled (SIGINT/SIGTERM in main), then shuts down
// gracefully — in-flight requests get shutdownGrace to finish, and the
// scenario pool drains its accepted work before run returns.
func run(ctx context.Context, args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("cgra-lifetimed", flag.ContinueOnError)
	fs.SetOutput(stderr)
	addr := fs.String("addr", ":8080", "listen address (host:port; port 0 picks a free port)")
	workers := fs.Int("workers", 0, "scenario worker goroutines shared by all requests (0: all CPUs)")
	queueDepth := fs.Int("queue-depth", 64, "bounded depth of the shared scenario work queue")
	memoEntries := fs.Int("memo-entries", 4096,
		"LRU capacity of the result store and the shared epoch store, each (negative: unbounded)")
	grace := fs.Duration("shutdown-grace", 10*time.Second,
		"how long in-flight requests may run after a shutdown signal")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() > 0 {
		return fmt.Errorf("unexpected arguments: %v", fs.Args())
	}

	srv := service.New(service.Options{
		Workers:     *workers,
		QueueDepth:  *queueDepth,
		MemoEntries: *memoEntries,
	})
	defer srv.Close()

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	fmt.Fprintf(stdout, "cgra-lifetimed listening on %s\n", ln.Addr())

	hs := &http.Server{Handler: srv.Handler()}
	serveErr := make(chan error, 1)
	go func() { serveErr <- hs.Serve(ln) }()

	select {
	case err := <-serveErr:
		return err
	case <-ctx.Done():
	}
	shutCtx, cancel := context.WithTimeout(context.Background(), *grace)
	defer cancel()
	if err := hs.Shutdown(shutCtx); err != nil {
		return fmt.Errorf("shutdown: %w", err)
	}
	if err := <-serveErr; !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	fmt.Fprintln(stdout, "cgra-lifetimed: drained, bye")
	return nil
}
