package main

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"
)

// syncBuffer lets the test read run's stdout while run is still writing.
type syncBuffer struct {
	mu sync.Mutex
	b  bytes.Buffer
}

func (s *syncBuffer) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.Write(p)
}

func (s *syncBuffer) String() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.String()
}

func TestRunRejectsBadFlags(t *testing.T) {
	var out, errOut bytes.Buffer
	if err := run(context.Background(), []string{"-bogus"}, &out, &errOut); err == nil {
		t.Fatal("unknown flag accepted")
	}
	if err := run(context.Background(), []string{"positional"}, &out, &errOut); err == nil ||
		!strings.Contains(err.Error(), "unexpected arguments") {
		t.Fatal("positional arguments accepted")
	}
	if err := run(context.Background(), []string{"-addr", "999.999.999.999:1"}, &out, &errOut); err == nil {
		t.Fatal("unbindable address accepted")
	}
}

// TestRunServesAndShutsDownGracefully boots the daemon on a free port,
// queries it over real HTTP, then cancels the context and expects a clean
// drain.
func TestRunServesAndShutsDownGracefully(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var stdout syncBuffer
	var stderr bytes.Buffer
	done := make(chan error, 1)
	go func() {
		done <- run(ctx, []string{"-addr", "127.0.0.1:0", "-workers", "1"}, &stdout, &stderr)
	}()

	// Wait for the listen line and extract the bound address.
	var addr string
	deadline := time.Now().Add(10 * time.Second)
	for addr == "" {
		if time.Now().After(deadline) {
			t.Fatalf("daemon never reported its address; stdout=%q stderr=%q", stdout.String(), stderr.String())
		}
		if s := stdout.String(); strings.Contains(s, "listening on ") {
			line := s[strings.Index(s, "listening on ")+len("listening on "):]
			addr = strings.TrimSpace(strings.SplitN(line, "\n", 2)[0])
		} else {
			time.Sleep(10 * time.Millisecond)
		}
	}

	resp, err := http.Get(fmt.Sprintf("http://%s/healthz", addr))
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(body), "ok") {
		t.Fatalf("healthz: %d %s", resp.StatusCode, body)
	}

	resp, err = http.Post(fmt.Sprintf("http://%s/v1/lifetime", addr), "application/json",
		strings.NewReader(`{"rows": 2, "cols": 8, "benchmarks": ["crc32"], "max_years": 1}`))
	if err != nil {
		t.Fatal(err)
	}
	body, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(body), "timeline") {
		t.Fatalf("lifetime: %d %s", resp.StatusCode, body)
	}

	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("run returned %v; stderr=%q", err, stderr.String())
		}
	case <-time.After(15 * time.Second):
		t.Fatal("daemon did not shut down")
	}
	if !strings.Contains(stdout.String(), "drained") {
		t.Fatalf("missing drain confirmation: %q", stdout.String())
	}
}
