// cgra-repro regenerates every table and figure of the paper's evaluation
// in one run and prints the paper-vs-measured comparison that EXPERIMENTS.md
// records.
//
// Usage:
//
//	cgra-repro -size small          # full reproduction (~30 s)
//	cgra-repro -size small -exp fig6
package main

import (
	"flag"
	"fmt"
	"os"

	"agingcgra"
)

// paperTable1 holds the published Table I values for the comparison.
var paperTable1 = map[string][3]float64{
	// scenario -> {avg util, baseline worst, proposed worst}
	"BE": {0.397, 0.945, 0.411},
	"BP": {0.171, 0.981, 0.224},
	"BU": {0.085, 0.981, 0.123},
}

var paperImprovements = map[string]float64{"BE": 2.29, "BP": 4.37, "BU": 7.97}

func main() {
	sizeName := flag.String("size", "small", "input size: tiny, small, large")
	exp := flag.String("exp", "all", "experiment: fig1, fig6, fig7, fig8, table1, table2 or all")
	workers := flag.Int("workers", 0, "parallel design points (0 = all CPUs, 1 = serial)")
	flag.Parse()

	size, err := parseSize(*sizeName)
	if err != nil {
		fatal(err)
	}
	opt := agingcgra.ExperimentOptions{Size: size, Workers: *workers}

	fmt.Println("Reproduction of: Proactive Aging Mitigation in CGRAs through")
	fmt.Println("Utilization-Aware Allocation (Brandalero et al., DAC 2020)")
	fmt.Printf("workload scale: %v\n\n", size)

	fmt.Println("validating the workload suite against its Go references...")
	if err := agingcgra.ValidateSuiteSmall(size); err != nil {
		fatal(err)
	}
	fmt.Println("all 10 benchmarks validated.")
	fmt.Println()

	run := func(name string) bool { return *exp == "all" || *exp == name }

	if run("fig1") {
		r, err := agingcgra.Fig1(opt)
		if err != nil {
			fatal(err)
		}
		fmt.Println(r.Render())
		fmt.Println("paper: 100% top-left corner decaying to 1% bottom-right.")
		fmt.Println()
	}
	if run("fig6") {
		r, err := agingcgra.Fig6(opt)
		if err != nil {
			fatal(err)
		}
		fmt.Println(r.Render())
		fmt.Println("paper: BE=(L16,W2) 2.14x speedup 0.90x energy; BP=(L32,W4) 2.45x, 1.20x;")
		fmt.Println("       BU=(L32,W8) 2.45x, 1.46x; occupations 39.7% / 17.8% / 8.9%.")
		fmt.Println()
	}
	if run("fig7") {
		r, err := agingcgra.Fig7(opt)
		if err != nil {
			fatal(err)
		}
		fmt.Println(r.Render())
		fmt.Println("paper: max utilization drops from 94.5% to 41.2% on the BE design.")
		fmt.Println()
	}
	if run("fig8") {
		r, err := agingcgra.Fig8(opt)
		if err != nil {
			fatal(err)
		}
		fmt.Println(r.Render())
		fmt.Println("paper: larger fabrics show wider baseline spreads and bigger gains;")
		fmt.Println("       BE baseline hits 10% delay at ~3 years, proposed at ~7 years.")
		fmt.Println()
	}
	if run("table1") {
		r, err := agingcgra.Table1(opt)
		if err != nil {
			fatal(err)
		}
		fmt.Println(r.Render())
		fmt.Println("paper vs measured (lifetime improvement):")
		for _, row := range r.Rows {
			name := row.Scenario.String()
			p := paperTable1[name]
			fmt.Printf("  %s: paper avg %.1f%% worst %.1f%%->%.1f%% improv %.2fx | measured avg %.1f%% worst %.1f%%->%.1f%% improv %.2fx\n",
				name, 100*p[0], 100*p[1], 100*p[2], paperImprovements[name],
				100*row.AvgUtil, 100*row.BaselineWorst, 100*row.ProposedWorst, row.LifetimeImprovement)
		}
		fmt.Println()
	}
	if run("table2") {
		r := agingcgra.Table2()
		fmt.Println(r.Render())
		fmt.Println("paper: 28,995 -> 30,199 um2 (+4.15%), 79,540 -> 83,083 cells (+4.45%),")
		fmt.Println("       120 ps column latency unchanged.")
		fmt.Println()
	}
}

func parseSize(s string) (agingcgra.Size, error) {
	switch s {
	case "tiny":
		return agingcgra.Tiny, nil
	case "small":
		return agingcgra.Small, nil
	case "large":
		return agingcgra.Large, nil
	}
	return 0, fmt.Errorf("unknown size %q", s)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "cgra-repro:", err)
	os.Exit(1)
}
