// cgra-dse runs the paper's Fig. 6 design-space exploration: the benchmark
// suite over every fabric size, reporting execution time, energy and
// occupancy relative to the stand-alone GPP, and the BE/BP/BU selection.
//
// Usage:
//
//	cgra-dse -size small -csv fig6.csv
//	cgra-dse -allocator explore        # sweep with the wear-aware explorer
//	cgra-dse -explorer-sweep           # (horizon x period) x failure DSE
//	cgra-dse -shape-sweep              # shape-ladder x failure DSE (shape-aware translation)
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"agingcgra"
	"agingcgra/internal/report"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "cgra-dse:", err)
		os.Exit(1)
	}
}

// run is the testable entry point: flag parsing, sweep selection and
// execution, with unknown allocator/ladder/pattern/size names surfaced as
// errors instead of panics.
func run(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("cgra-dse", flag.ContinueOnError)
	fs.SetOutput(stderr)
	sizeName := fs.String("size", "small", "input size: tiny, small, large")
	csvPath := fs.String("csv", "", "also write the points as CSV to this file")
	workers := fs.Int("workers", 0, "parallel design points (0 = all CPUs, 1 = serial)")
	allocator := fs.String("allocator", "baseline",
		"allocation strategy to sweep with (baseline, utilization-aware, explore, remap, ...)")
	explorerSweep := fs.Bool("explorer-sweep", false,
		"run the explorer's own DSE instead of Fig. 6: (projection horizon x recompute period) across clustered-failure scenarios")
	shapeSweep := fs.Bool("shape-sweep", false,
		"run the shape-ladder DSE instead of Fig. 6: candidate ladder variants x failure scenarios under translation-time shape search")
	horizons := fs.String("horizons", "", "explorer-sweep projection horizons in years, comma-separated (default 0.25,1,4)")
	periods := fs.String("periods", "", "explorer-sweep recompute periods, comma-separated (default 4,16,64)")
	ladders := fs.String("ladders", "", "shape-sweep ladder variants, comma-separated (default all: halving,full-only,columns,rows,fine)")
	failures := fs.String("failures", "", "sweep failure patterns, comma-separated (explorer default healthy,column,quadrant; shape default healthy,column,columns:0+8)")
	years := fs.Float64("years", 20, "sweep simulated horizon in years")
	if err := fs.Parse(args); err != nil {
		return err
	}

	size, err := parseSize(*sizeName)
	if err != nil {
		return err
	}

	if *shapeSweep {
		opt := agingcgra.ShapeSweepOptions{
			Size:     size,
			MaxYears: *years,
			Workers:  *workers,
		}
		if *ladders != "" {
			opt.Ladders = splitList(*ladders)
		}
		if *failures != "" {
			opt.Failures = splitList(*failures)
		}
		res, err := agingcgra.ShapeSweep(opt)
		if err != nil {
			return err
		}
		fmt.Fprint(stdout, res.Render())
		if *csvPath != "" {
			return writeCSV(stdout, *csvPath, res.CSVHeader(), res.CSVRows())
		}
		return nil
	}
	if *explorerSweep {
		opt := agingcgra.ExplorerSweepOptions{
			Size:     size,
			MaxYears: *years,
			Workers:  *workers,
		}
		if *horizons != "" {
			if opt.Horizons, err = parseFloats(*horizons); err != nil {
				return err
			}
		}
		if *periods != "" {
			if opt.Periods, err = parseInts(*periods); err != nil {
				return err
			}
		}
		if *failures != "" {
			opt.Failures = splitList(*failures)
		}
		res, err := agingcgra.ExplorerSweep(opt)
		if err != nil {
			return err
		}
		fmt.Fprint(stdout, res.Render())
		if *csvPath != "" {
			return writeCSV(stdout, *csvPath, res.CSVHeader(), res.CSVRows())
		}
		return nil
	}
	res, err := agingcgra.Fig6(agingcgra.ExperimentOptions{
		Size: size, Workers: *workers, Allocator: *allocator,
	})
	if err != nil {
		return err
	}
	fmt.Fprint(stdout, res.Render())

	if *csvPath != "" {
		rows := make([][]string, 0, len(res.Points))
		for _, p := range res.Points {
			rows = append(rows, []string{
				p.Geom.String(),
				fmt.Sprintf("%d", p.Geom.Rows),
				fmt.Sprintf("%d", p.Geom.Cols),
				fmt.Sprintf("%.6f", p.RelTime),
				fmt.Sprintf("%.6f", p.RelEnergy),
				fmt.Sprintf("%.6f", p.AvgUtil),
			})
		}
		return writeCSV(stdout, *csvPath, []string{"design", "rows", "cols", "rel_time", "rel_energy", "avg_util"}, rows)
	}
	return nil
}

func splitList(s string) []string {
	var out []string
	for _, part := range strings.Split(s, ",") {
		out = append(out, strings.TrimSpace(part))
	}
	return out
}

func writeCSV(stdout io.Writer, path string, header []string, rows [][]string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := report.WriteCSV(f, header, rows); err != nil {
		return err
	}
	fmt.Fprintf(stdout, "wrote %s\n", path)
	return nil
}

func parseFloats(s string) ([]float64, error) {
	var out []float64
	for _, part := range strings.Split(s, ",") {
		v, err := strconv.ParseFloat(strings.TrimSpace(part), 64)
		if err != nil {
			return nil, fmt.Errorf("bad float %q in %q", part, s)
		}
		out = append(out, v)
	}
	return out, nil
}

func parseInts(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil {
			return nil, fmt.Errorf("bad integer %q in %q", part, s)
		}
		out = append(out, v)
	}
	return out, nil
}

func parseSize(s string) (agingcgra.Size, error) {
	switch s {
	case "tiny":
		return agingcgra.Tiny, nil
	case "small":
		return agingcgra.Small, nil
	case "large":
		return agingcgra.Large, nil
	}
	return 0, fmt.Errorf("unknown size %q", s)
}
