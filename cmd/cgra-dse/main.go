// cgra-dse runs the paper's Fig. 6 design-space exploration: the benchmark
// suite over every fabric size, reporting execution time, energy and
// occupancy relative to the stand-alone GPP, and the BE/BP/BU selection.
//
// Usage:
//
//	cgra-dse -size small -csv fig6.csv
//	cgra-dse -allocator explore        # sweep with the wear-aware explorer
package main

import (
	"flag"
	"fmt"
	"os"

	"agingcgra"
	"agingcgra/internal/report"
)

func main() {
	sizeName := flag.String("size", "small", "input size: tiny, small, large")
	csvPath := flag.String("csv", "", "also write the points as CSV to this file")
	workers := flag.Int("workers", 0, "parallel design points (0 = all CPUs, 1 = serial)")
	allocator := flag.String("allocator", "baseline",
		"allocation strategy to sweep with (baseline, utilization-aware, explore, ...)")
	flag.Parse()

	size, err := parseSize(*sizeName)
	if err != nil {
		fatal(err)
	}
	res, err := agingcgra.Fig6(agingcgra.ExperimentOptions{
		Size: size, Workers: *workers, Allocator: *allocator,
	})
	if err != nil {
		fatal(err)
	}
	fmt.Print(res.Render())

	if *csvPath != "" {
		f, err := os.Create(*csvPath)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		rows := make([][]string, 0, len(res.Points))
		for _, p := range res.Points {
			rows = append(rows, []string{
				p.Geom.String(),
				fmt.Sprintf("%d", p.Geom.Rows),
				fmt.Sprintf("%d", p.Geom.Cols),
				fmt.Sprintf("%.6f", p.RelTime),
				fmt.Sprintf("%.6f", p.RelEnergy),
				fmt.Sprintf("%.6f", p.AvgUtil),
			})
		}
		if err := report.WriteCSV(f, []string{"design", "rows", "cols", "rel_time", "rel_energy", "avg_util"}, rows); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote %s\n", *csvPath)
	}
}

func parseSize(s string) (agingcgra.Size, error) {
	switch s {
	case "tiny":
		return agingcgra.Tiny, nil
	case "small":
		return agingcgra.Small, nil
	case "large":
		return agingcgra.Large, nil
	}
	return 0, fmt.Errorf("unknown size %q", s)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "cgra-dse:", err)
	os.Exit(1)
}
