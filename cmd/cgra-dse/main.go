// cgra-dse runs the paper's Fig. 6 design-space exploration: the benchmark
// suite over every fabric size, reporting execution time, energy and
// occupancy relative to the stand-alone GPP, and the BE/BP/BU selection.
//
// Usage:
//
//	cgra-dse -size small -csv fig6.csv
//	cgra-dse -allocator explore        # sweep with the wear-aware explorer
//	cgra-dse -explorer-sweep           # (horizon x period) x failure DSE
//	cgra-dse -shape-sweep              # shape-ladder x failure DSE (shape-aware translation)
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"agingcgra"
	"agingcgra/internal/report"
)

func main() {
	sizeName := flag.String("size", "small", "input size: tiny, small, large")
	csvPath := flag.String("csv", "", "also write the points as CSV to this file")
	workers := flag.Int("workers", 0, "parallel design points (0 = all CPUs, 1 = serial)")
	allocator := flag.String("allocator", "baseline",
		"allocation strategy to sweep with (baseline, utilization-aware, explore, remap, ...)")
	explorerSweep := flag.Bool("explorer-sweep", false,
		"run the explorer's own DSE instead of Fig. 6: (projection horizon x recompute period) across clustered-failure scenarios")
	shapeSweep := flag.Bool("shape-sweep", false,
		"run the shape-ladder DSE instead of Fig. 6: candidate ladder variants x failure scenarios under translation-time shape search")
	horizons := flag.String("horizons", "", "explorer-sweep projection horizons in years, comma-separated (default 0.25,1,4)")
	periods := flag.String("periods", "", "explorer-sweep recompute periods, comma-separated (default 4,16,64)")
	ladders := flag.String("ladders", "", "shape-sweep ladder variants, comma-separated (default all: halving,full-only,columns,rows,fine)")
	failures := flag.String("failures", "", "sweep failure patterns, comma-separated (explorer default healthy,column,quadrant; shape default healthy,column,columns:0+8)")
	years := flag.Float64("years", 20, "sweep simulated horizon in years")
	flag.Parse()

	size, err := parseSize(*sizeName)
	if err != nil {
		fatal(err)
	}

	if *shapeSweep {
		opt := agingcgra.ShapeSweepOptions{
			Size:     size,
			MaxYears: *years,
			Workers:  *workers,
		}
		if *ladders != "" {
			opt.Ladders = splitList(*ladders)
		}
		if *failures != "" {
			opt.Failures = splitList(*failures)
		}
		res, err := agingcgra.ShapeSweep(opt)
		if err != nil {
			fatal(err)
		}
		fmt.Print(res.Render())
		if *csvPath != "" {
			writeCSV(*csvPath, res.CSVHeader(), res.CSVRows())
		}
		return
	}
	if *explorerSweep {
		opt := agingcgra.ExplorerSweepOptions{
			Size:     size,
			MaxYears: *years,
			Workers:  *workers,
		}
		if *horizons != "" {
			if opt.Horizons, err = parseFloats(*horizons); err != nil {
				fatal(err)
			}
		}
		if *periods != "" {
			if opt.Periods, err = parseInts(*periods); err != nil {
				fatal(err)
			}
		}
		if *failures != "" {
			opt.Failures = splitList(*failures)
		}
		res, err := agingcgra.ExplorerSweep(opt)
		if err != nil {
			fatal(err)
		}
		fmt.Print(res.Render())
		if *csvPath != "" {
			writeCSV(*csvPath, res.CSVHeader(), res.CSVRows())
		}
		return
	}
	res, err := agingcgra.Fig6(agingcgra.ExperimentOptions{
		Size: size, Workers: *workers, Allocator: *allocator,
	})
	if err != nil {
		fatal(err)
	}
	fmt.Print(res.Render())

	if *csvPath != "" {
		rows := make([][]string, 0, len(res.Points))
		for _, p := range res.Points {
			rows = append(rows, []string{
				p.Geom.String(),
				fmt.Sprintf("%d", p.Geom.Rows),
				fmt.Sprintf("%d", p.Geom.Cols),
				fmt.Sprintf("%.6f", p.RelTime),
				fmt.Sprintf("%.6f", p.RelEnergy),
				fmt.Sprintf("%.6f", p.AvgUtil),
			})
		}
		writeCSV(*csvPath, []string{"design", "rows", "cols", "rel_time", "rel_energy", "avg_util"}, rows)
	}
}

func splitList(s string) []string {
	var out []string
	for _, part := range strings.Split(s, ",") {
		out = append(out, strings.TrimSpace(part))
	}
	return out
}

func writeCSV(path string, header []string, rows [][]string) {
	f, err := os.Create(path)
	if err != nil {
		fatal(err)
	}
	defer f.Close()
	if err := report.WriteCSV(f, header, rows); err != nil {
		fatal(err)
	}
	fmt.Printf("wrote %s\n", path)
}

func parseFloats(s string) ([]float64, error) {
	var out []float64
	for _, part := range strings.Split(s, ",") {
		v, err := strconv.ParseFloat(strings.TrimSpace(part), 64)
		if err != nil {
			return nil, fmt.Errorf("bad float %q in %q", part, s)
		}
		out = append(out, v)
	}
	return out, nil
}

func parseInts(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil {
			return nil, fmt.Errorf("bad integer %q in %q", part, s)
		}
		out = append(out, v)
	}
	return out, nil
}

func parseSize(s string) (agingcgra.Size, error) {
	switch s {
	case "tiny":
		return agingcgra.Tiny, nil
	case "small":
		return agingcgra.Small, nil
	case "large":
		return agingcgra.Large, nil
	}
	return 0, fmt.Errorf("unknown size %q", s)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "cgra-dse:", err)
	os.Exit(1)
}
