package main

import (
	"bytes"
	"strings"
	"testing"
)

// TestRunRejectsUnknownNames pins the CLI's error path: unknown allocator,
// size, ladder and failure-pattern names must fail with a descriptive error
// (the process exits non-zero), not panic mid-sweep.
func TestRunRejectsUnknownNames(t *testing.T) {
	cases := []struct {
		name string
		args []string
		want string
	}{
		{"allocator", []string{"-allocator", "nonsense"}, "unknown allocator"},
		{"size", []string{"-size", "jumbo"}, "unknown size"},
		{"ladder", []string{"-shape-sweep", "-ladders", "bogus", "-years", "1"}, "unknown shape ladder"},
		{"failure", []string{"-explorer-sweep", "-failures", "mystery", "-years", "1"}, "unknown failure pattern"},
		{"bad horizon", []string{"-explorer-sweep", "-horizons", "abc"}, "bad float"},
		{"bad period", []string{"-explorer-sweep", "-periods", "x"}, "bad integer"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var stdout, stderr bytes.Buffer
			err := run(tc.args, &stdout, &stderr)
			if err == nil {
				t.Fatalf("args %v: expected an error", tc.args)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Errorf("args %v: error %q does not mention %q", tc.args, err, tc.want)
			}
		})
	}
}
