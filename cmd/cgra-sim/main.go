// cgra-sim runs one benchmark of the MiBench-style suite on a TransRec
// system and prints the performance, energy and utilization outcome.
//
// Usage:
//
//	cgra-sim -bench crc32 -rows 2 -cols 16 -alloc utilization-aware -size small
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"agingcgra"
	"agingcgra/internal/dbt"
	"agingcgra/internal/dfg"
	"agingcgra/internal/fabric"
	"agingcgra/internal/isa"
	"agingcgra/internal/prog"
	"agingcgra/internal/report"
)

func main() {
	bench := flag.String("bench", "crc32", "benchmark name (or 'all'); one of "+strings.Join(agingcgra.Benchmarks(), ", "))
	rows := flag.Int("rows", 2, "fabric rows (W)")
	cols := flag.Int("cols", 16, "fabric columns (L)")
	allocName := flag.String("alloc", "baseline", "allocation strategy: "+strings.Join(agingcgra.AllocatorNames(), ", "))
	sizeName := flag.String("size", "small", "input size: tiny, small, large")
	heat := flag.Bool("heatmap", false, "print the per-FU utilization heat map")
	analyze := flag.Bool("analyze", false, "print dataflow analysis of the translated configurations")
	flag.Parse()

	size, err := parseSize(*sizeName)
	if err != nil {
		fatal(err)
	}
	sys, err := agingcgra.NewSystem(agingcgra.Config{
		Rows: *rows, Cols: *cols, Allocator: *allocName,
	})
	if err != nil {
		fatal(err)
	}

	names := []string{*bench}
	if *bench == "all" {
		names = agingcgra.Benchmarks()
	}
	for _, name := range names {
		res, err := sys.RunBenchmark(name, size)
		if err != nil {
			fatal(err)
		}
		rep := res.Report
		fmt.Printf("%-16s %v alloc=%s\n", name, sys.Geometry(), rep.AllocatorName)
		fmt.Printf("  checksum        %#x (validated against the Go reference)\n", res.Checksum)
		fmt.Printf("  GPP-only        %d cycles\n", res.GPPCycles)
		fmt.Printf("  TransRec        %d cycles  (speedup %.2fx)\n", rep.TotalCycles, res.Speedup())
		fmt.Printf("  rel. energy     %.3fx\n", res.RelEnergy)
		fmt.Printf("  offload rate    %.1f%% of %d instructions, %d offloads, %d early exits\n",
			100*rep.OffloadRate(), rep.TotalInstrs, rep.Offloads, rep.EarlyExits)
		fmt.Printf("  translations    %d (cache: %d hits, %d misses, %d evictions)\n",
			rep.Translations, rep.Cache.Hits, rep.Cache.Misses, rep.Cache.Evictions)
		maxD, cell := rep.Util.Max()
		fmt.Printf("  utilization     avg %.1f%%, max %.1f%% at (R%d,C%d)\n",
			100*rep.Util.Avg(), 100*maxD, cell.Row+1, cell.Col+1)
		if *heat {
			fmt.Print(report.Heatmap(rep.Util))
		}
		if *analyze {
			if err := analyzeConfigs(name, size, sys.Geometry(), *allocName); err != nil {
				fatal(err)
			}
		}
	}
}

// analyzeConfigs re-runs the benchmark with direct engine access and
// reports dataflow properties of every cached configuration: size, depth,
// the latency-weighted critical-path lower bound and the achieved columns.
func analyzeConfigs(name string, size agingcgra.Size, geom fabric.Geometry, allocName string) error {
	b, ok := prog.ByName(name)
	if !ok {
		return fmt.Errorf("unknown benchmark %q", name)
	}
	c, err := b.NewCore(size)
	if err != nil {
		return err
	}
	allocator, err := agingcgra.NewAllocator(allocName, geom)
	if err != nil {
		return err
	}
	eng, err := dbt.NewEngine(dbt.Options{Geom: geom, Allocator: allocator})
	if err != nil {
		return err
	}
	if _, err := eng.Run(c, b.MaxInstructions); err != nil {
		return err
	}
	fmt.Printf("  configurations resident after the run (%d):\n", eng.Cache().Len())
	tab := &report.Table{Header: []string{"start PC", "ops", "cols used", "CP bound", "depth", "avg ILP", "live-ins"}}
	for _, cfg := range eng.Cache().Configs() {
		insts := make([]isa.Inst, len(cfg.Ops))
		for i, op := range cfg.Ops {
			insts[i] = op.Inst
		}
		g := dfg.Build(insts)
		tab.AddRow(
			fmt.Sprintf("%#x", cfg.StartPC),
			fmt.Sprintf("%d", cfg.NumOps()),
			fmt.Sprintf("%d", cfg.UsedCols),
			fmt.Sprintf("%d", g.CriticalPathColumns(fabric.DefaultLatencies())),
			fmt.Sprintf("%d", g.CriticalPathLen()),
			fmt.Sprintf("%.2f", g.AvgILP()),
			fmt.Sprintf("%d", len(g.LiveIns())),
		)
	}
	fmt.Print(tab.String())
	return nil
}

func parseSize(s string) (agingcgra.Size, error) {
	switch s {
	case "tiny":
		return agingcgra.Tiny, nil
	case "small":
		return agingcgra.Small, nil
	case "large":
		return agingcgra.Large, nil
	}
	return 0, fmt.Errorf("unknown size %q (want tiny, small or large)", s)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "cgra-sim:", err)
	os.Exit(1)
}
