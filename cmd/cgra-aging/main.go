// cgra-aging runs the aging evaluation of the paper: the Fig. 7 heat-map
// comparison, the Fig. 8 utilization distributions and delay curves, and
// Table I's lifetime improvements.
//
// Usage:
//
//	cgra-aging -size small -exp all
package main

import (
	"flag"
	"fmt"
	"os"

	"agingcgra"
)

func main() {
	sizeName := flag.String("size", "small", "input size: tiny, small, large")
	exp := flag.String("exp", "all", "experiment: fig7, fig8, table1 or all")
	flag.Parse()

	size, err := parseSize(*sizeName)
	if err != nil {
		fatal(err)
	}
	opt := agingcgra.ExperimentOptions{Size: size}

	if *exp == "fig7" || *exp == "all" {
		r, err := agingcgra.Fig7(opt)
		if err != nil {
			fatal(err)
		}
		fmt.Println(r.Render())
	}
	if *exp == "fig8" || *exp == "all" {
		r, err := agingcgra.Fig8(opt)
		if err != nil {
			fatal(err)
		}
		fmt.Println(r.Render())
	}
	if *exp == "table1" || *exp == "all" {
		r, err := agingcgra.Table1(opt)
		if err != nil {
			fatal(err)
		}
		fmt.Println(r.Render())
	}
}

func parseSize(s string) (agingcgra.Size, error) {
	switch s {
	case "tiny":
		return agingcgra.Tiny, nil
	case "small":
		return agingcgra.Small, nil
	case "large":
		return agingcgra.Large, nil
	}
	return 0, fmt.Errorf("unknown size %q", s)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "cgra-aging:", err)
	os.Exit(1)
}
