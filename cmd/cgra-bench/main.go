// cgra-bench measures the simulator's performance-critical paths — raw
// co-simulation throughput, the Fig. 6 design-space sweep and the lifetime
// engine's epoch loop — and emits a machine-readable JSON report so
// successive commits can be compared (the BENCH_results.json trajectory in
// CI).
//
// The -compare mode turns the trajectory into a regression gate: measured
// (or -replay'ed) results are checked against a committed baseline and the
// command exits non-zero when engine ns/op or lifetime epochs_per_sec
// regress by more than -compare-threshold (default 25%).
//
// Usage:
//
//	cgra-bench                       # default: 5 engine iters, tiny sweep
//	cgra-bench -o BENCH_results.json -size small -iters 10 -full-sweep
//	cgra-bench -compare BENCH_baseline.json            # measure, then gate
//	cgra-bench -replay BENCH_results.json -compare BENCH_baseline.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"os"
	"runtime"
	"strings"
	"time"

	"agingcgra"
)

// Result is one measured benchmark in the report.
type Result struct {
	Name         string  `json:"name"`
	Iterations   int     `json:"iterations"`
	NsPerOp      float64 `json:"ns_per_op"`
	InstrsPerSec float64 `json:"instrs_per_sec,omitempty"`
	EpochsPerSec float64 `json:"epochs_per_sec,omitempty"`
	SpeedupVs    string  `json:"speedup_vs,omitempty"`
	Speedup      float64 `json:"speedup,omitempty"`
}

// Report is the full emitted document. NumCPU and GoMaxProcs are recorded
// separately because they gate different things: NumCPU is the machine,
// GOMAXPROCS is the schedule the parallel paths actually ran under (a
// 64-core runner with GOMAXPROCS=1 benches like a single-core box).
type Report struct {
	Schema     string   `json:"schema"`
	Timestamp  string   `json:"timestamp"`
	GoVersion  string   `json:"go_version"`
	NumCPU     int      `json:"num_cpu"`
	GoMaxProcs int      `json:"gomaxprocs,omitempty"`
	Size       string   `json:"workload_size"`
	Results    []Result `json:"results"`
}

func main() {
	out := flag.String("o", "BENCH_results.json", "output path ('-' for stdout only)")
	sizeName := flag.String("size", "tiny", "workload size: tiny, small, large")
	iters := flag.Int("iters", 5, "engine-throughput iterations")
	fullSweep := flag.Bool("full-sweep", false, "run the sweep at the chosen size (default sweeps tiny)")
	compare := flag.String("compare", "", "baseline report to gate against; exits 1 on regression")
	threshold := flag.Float64("compare-threshold", 0.25, "maximum tolerated fractional regression")
	replay := flag.String("replay", "", "gate an existing results file instead of re-measuring")
	allowEnvMismatch := flag.Bool("allow-env-mismatch", false,
		"compare across differing num_cpu/gomaxprocs/workload_size instead of failing")
	flag.Parse()

	var rep Report
	if *replay != "" {
		if *compare == "" {
			fatal(fmt.Errorf("-replay only makes sense with -compare (nothing to gate against)"))
		}
		r, err := loadReport(*replay)
		if err != nil {
			fatal(err)
		}
		rep = r
	} else {
		size, err := parseSize(*sizeName)
		if err != nil {
			fatal(err)
		}
		if *iters < 1 {
			fatal(fmt.Errorf("-iters %d: need at least one iteration", *iters))
		}

		rep = Report{
			Schema:     "agingcgra-bench/v1",
			Timestamp:  time.Now().UTC().Format(time.RFC3339),
			GoVersion:  runtime.Version(),
			NumCPU:     runtime.NumCPU(),
			GoMaxProcs: runtime.GOMAXPROCS(0),
			Size:       *sizeName,
		}

		engine, err := benchEngineThroughput(size, *iters)
		if err != nil {
			fatal(err)
		}
		rep.Results = append(rep.Results, engine)

		sweepSize := agingcgra.Tiny
		if *fullSweep {
			sweepSize = size
		}
		serial, parallel, err := benchFig6Sweep(sweepSize)
		if err != nil {
			fatal(err)
		}
		rep.Results = append(rep.Results, serial, parallel)

		// The lifetime scenarios run as one batch each and the facade
		// memoizes the stand-alone GPP reference process-wide, so the
		// reference co-simulation is computed once for all of them (and for
		// the warm-up), not once per allocator. The shapedbt scenario is the
		// translation-time shape search on the remap allocator — the
		// translation hot path with the ladder scan on the clock.
		for _, lc := range []struct {
			cfg   agingcgra.LifetimeConfig
			label string
		}{
			{agingcgra.LifetimeConfig{Allocator: "utilization-aware"}, "Lifetime/BE-snake-crc32-20y"},
			{agingcgra.LifetimeConfig{Allocator: "explore"}, "Lifetime/BE-explore-crc32-20y"},
			{agingcgra.LifetimeConfig{Allocator: "remap"}, "Lifetime/BE-remap-crc32-20y"},
			{agingcgra.LifetimeConfig{Allocator: "remap", ShapeTranslations: true}, "Lifetime/BE-shapedbt-crc32-20y"},
		} {
			life, err := benchLifetimeScenario(lc.cfg, lc.label)
			if err != nil {
				fatal(err)
			}
			rep.Results = append(rep.Results, life)
		}

		blob, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			fatal(err)
		}
		fmt.Println(string(blob))
		if *out != "-" {
			if err := os.WriteFile(*out, append(blob, '\n'), 0o644); err != nil {
				fatal(err)
			}
			fmt.Fprintf(os.Stderr, "wrote %s\n", *out)
		}
	}

	if *compare != "" {
		base, err := loadReport(*compare)
		if err != nil {
			fatal(err)
		}
		if mismatches := envMismatches(base, rep); len(mismatches) > 0 {
			for _, m := range mismatches {
				fmt.Fprintln(os.Stderr, "cgra-bench: environment mismatch:", m)
			}
			if !*allowEnvMismatch {
				fmt.Fprintln(os.Stderr, "cgra-bench: refusing to gate across differing environments"+
					" (timings are not comparable); re-baseline on this runner or pass -allow-env-mismatch")
				os.Exit(1)
			}
			fmt.Fprintln(os.Stderr, "cgra-bench: -allow-env-mismatch set, comparing anyway")
		}
		if failed := compareReports(base, rep, *threshold); failed {
			fmt.Fprintf(os.Stderr, "cgra-bench: regression beyond %.0f%% against %s\n",
				100**threshold, *compare)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "cgra-bench: no regression beyond %.0f%% against %s\n",
			100**threshold, *compare)
	}
}

// loadReport reads a previously emitted BENCH json document.
func loadReport(path string) (Report, error) {
	blob, err := os.ReadFile(path)
	if err != nil {
		return Report{}, err
	}
	var rep Report
	if err := json.Unmarshal(blob, &rep); err != nil {
		return Report{}, fmt.Errorf("%s: %w", path, err)
	}
	return rep, nil
}

// envMismatches lists the environment fields on which the two reports
// disagree. A baseline measured on a different core count, GOMAXPROCS
// schedule or workload size gates nothing meaningful — a 25% threshold is
// easily dwarfed by either difference — so -compare fails on any mismatch
// unless -allow-env-mismatch. GoMaxProcs is only checked when both reports
// carry it: baselines emitted before the field existed decode as zero and
// must stay comparable.
func envMismatches(base, cur Report) []string {
	var ms []string
	if base.NumCPU != cur.NumCPU {
		ms = append(ms, fmt.Sprintf("num_cpu: baseline %d, current %d", base.NumCPU, cur.NumCPU))
	}
	if base.GoMaxProcs != 0 && cur.GoMaxProcs != 0 && base.GoMaxProcs != cur.GoMaxProcs {
		ms = append(ms, fmt.Sprintf("gomaxprocs: baseline %d, current %d", base.GoMaxProcs, cur.GoMaxProcs))
	}
	if base.Size != cur.Size {
		ms = append(ms, fmt.Sprintf("workload_size: baseline %q, current %q", base.Size, cur.Size))
	}
	return ms
}

// compareReports gates the two regression-sensitive metric families: engine
// throughput (ns/op, higher is worse) and lifetime simulation rate
// (epochs_per_sec, lower is worse). Sweep wall-clock results are reported
// but not gated — they scale with the runner's core count, which the
// baseline cannot pin. A gated baseline entry missing from the current
// report counts as a failure: silently dropping a benchmark must not
// disarm the gate.
func compareReports(base, cur Report, threshold float64) (failed bool) {
	byName := make(map[string]Result, len(cur.Results))
	for _, r := range cur.Results {
		byName[r.Name] = r
	}
	fmt.Fprintf(os.Stderr, "%-34s %-14s %14s %14s %9s\n",
		"benchmark", "metric", "baseline", "current", "delta")
	for _, b := range base.Results {
		var metric string
		var baseVal, curVal float64
		lowerIsBetter := false
		c, ok := byName[b.Name]
		switch {
		case strings.HasPrefix(b.Name, "EngineThroughput"):
			metric, lowerIsBetter = "ns/op", true
			baseVal, curVal = b.NsPerOp, c.NsPerOp
		case strings.HasPrefix(b.Name, "Lifetime"):
			metric = "epochs/sec"
			baseVal, curVal = b.EpochsPerSec, c.EpochsPerSec
		default:
			continue // un-gated family (sweep wall clock)
		}
		if !ok {
			fmt.Fprintf(os.Stderr, "%-34s %-14s %14.1f %14s %9s\n",
				b.Name, metric, baseVal, "missing", "FAIL")
			failed = true
			continue
		}
		// A gated metric reading zero on either side is broken measurement
		// or a schema drift, not a 100% improvement; like a missing entry,
		// it must not disarm the gate.
		if baseVal <= 0 || curVal <= 0 {
			fmt.Fprintf(os.Stderr, "%-34s %-14s %14.1f %14.1f %9s\n",
				b.Name, metric, baseVal, curVal, "zero FAIL")
			failed = true
			continue
		}
		// delta is the raw relative change; the regression is the change in
		// the metric's bad direction.
		delta := curVal/baseVal - 1
		regression := -delta
		if lowerIsBetter {
			regression = delta
		}
		verdict := fmt.Sprintf("%+.1f%%", 100*delta)
		if regression > threshold {
			verdict += " FAIL"
			failed = true
		}
		fmt.Fprintf(os.Stderr, "%-34s %-14s %14.1f %14.1f %9s\n",
			b.Name, metric, baseVal, curVal, verdict)
	}
	return failed
}

// benchEngineThroughput mirrors BenchmarkEngineThroughput: repeated crc32
// co-simulation on the BE design with the utilization-aware allocator.
func benchEngineThroughput(size agingcgra.Size, iters int) (Result, error) {
	s, err := agingcgra.NewSystem(agingcgra.Config{Allocator: "utilization-aware"})
	if err != nil {
		return Result{}, err
	}
	// Warm-up outside the timed region: assembles the kernel and memoizes
	// the GPP reference, as the steady state of a long-lived System.
	if _, err := s.RunBenchmark("crc32", size); err != nil {
		return Result{}, err
	}
	// Each iteration runs the identical deterministic workload, so the
	// fastest one is the least-perturbed measurement; reporting the minimum
	// (instead of the mean) keeps the -compare gate from tripping on
	// scheduler noise spikes, which on shared CI runners easily exceed the
	// regression threshold for mean-of-few-iterations timings.
	var instrs uint64
	best := time.Duration(math.MaxInt64)
	for i := 0; i < iters; i++ {
		start := time.Now()
		res, err := s.RunBenchmark("crc32", size)
		if err != nil {
			return Result{}, err
		}
		if elapsed := time.Since(start); elapsed < best {
			best = elapsed
			instrs = res.Report.TotalInstrs
		}
	}
	return Result{
		Name:         "EngineThroughput/crc32",
		Iterations:   iters,
		NsPerOp:      float64(best.Nanoseconds()),
		InstrsPerSec: float64(instrs) / best.Seconds(),
	}, nil
}

// benchFig6Sweep times the 12-point design-space exploration serially and
// with the worker pool, reporting the parallel speedup.
func benchFig6Sweep(size agingcgra.Size) (serial, parallel Result, err error) {
	// Untimed warm-up so the one-time benchmark assembly cost doesn't land
	// on whichever timed run goes first and bias the speedup.
	if _, err := timeFig6(size, 1); err != nil {
		return Result{}, Result{}, err
	}
	time1, err := timeFig6(size, 1)
	if err != nil {
		return Result{}, Result{}, err
	}
	timeN, err := timeFig6(size, 0) // 0 = all CPUs
	if err != nil {
		return Result{}, Result{}, err
	}
	serial = Result{Name: "Fig6Sweep/serial", Iterations: 1, NsPerOp: float64(time1.Nanoseconds())}
	parallel = Result{
		Name:       "Fig6Sweep/parallel",
		Iterations: 1,
		NsPerOp:    float64(timeN.Nanoseconds()),
		SpeedupVs:  "Fig6Sweep/serial",
		Speedup:    float64(time1.Nanoseconds()) / float64(timeN.Nanoseconds()),
	}
	return serial, parallel, nil
}

// benchLifetimeScenario times the lifetime engine's hot loop: a 20-year
// BE-design scenario under the given configuration, fabric failures
// included (so the epoch memo, the post-death re-simulation path, the
// per-epoch placement exploration and — for shape-aware translation — the
// ladder scan are all on the clock).
func benchLifetimeScenario(cfg agingcgra.LifetimeConfig, label string) (Result, error) {
	cfg.Benchmarks = []string{"crc32"}
	cfg.EpochYears = 0.25
	cfg.MaxYears = 20
	// Warm-up: kernel assembly (cached process-wide). The timed region runs
	// the iterations as one batch so the stand-alone GPP reference is
	// memoized across them and paid once, not per iteration.
	if _, err := agingcgra.RunLifetime(cfg); err != nil {
		return Result{}, err
	}
	const iters = 3
	batch := make([]agingcgra.LifetimeConfig, iters)
	for i := range batch {
		batch[i] = cfg
	}
	var epochs int
	start := time.Now()
	results, err := agingcgra.RunLifetimes(batch, 1)
	if err != nil {
		return Result{}, err
	}
	for _, res := range results {
		epochs += len(res.Timeline)
	}
	elapsed := time.Since(start)
	return Result{
		Name:         label,
		Iterations:   iters,
		NsPerOp:      float64(elapsed.Nanoseconds()) / float64(iters),
		EpochsPerSec: float64(epochs) / elapsed.Seconds(),
	}, nil
}

func timeFig6(size agingcgra.Size, workers int) (time.Duration, error) {
	start := time.Now()
	if _, err := agingcgra.Fig6(agingcgra.ExperimentOptions{Size: size, Workers: workers}); err != nil {
		return 0, err
	}
	return time.Since(start), nil
}

func parseSize(s string) (agingcgra.Size, error) {
	switch s {
	case "tiny":
		return agingcgra.Tiny, nil
	case "small":
		return agingcgra.Small, nil
	case "large":
		return agingcgra.Large, nil
	}
	return 0, fmt.Errorf("unknown size %q", s)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "cgra-bench:", err)
	os.Exit(1)
}
