// cgra-bench measures the simulator's two performance-critical paths — raw
// co-simulation throughput and the Fig. 6 design-space sweep — and emits a
// machine-readable JSON report so successive commits can be compared
// (the BENCH_results.json trajectory in CI).
//
// Usage:
//
//	cgra-bench                       # default: 5 engine iters, tiny sweep
//	cgra-bench -o BENCH_results.json -size small -iters 10 -full-sweep
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	"agingcgra"
)

// Result is one measured benchmark in the report.
type Result struct {
	Name         string  `json:"name"`
	Iterations   int     `json:"iterations"`
	NsPerOp      float64 `json:"ns_per_op"`
	InstrsPerSec float64 `json:"instrs_per_sec,omitempty"`
	EpochsPerSec float64 `json:"epochs_per_sec,omitempty"`
	SpeedupVs    string  `json:"speedup_vs,omitempty"`
	Speedup      float64 `json:"speedup,omitempty"`
}

// Report is the full emitted document.
type Report struct {
	Schema    string   `json:"schema"`
	Timestamp string   `json:"timestamp"`
	GoVersion string   `json:"go_version"`
	NumCPU    int      `json:"num_cpu"`
	Size      string   `json:"workload_size"`
	Results   []Result `json:"results"`
}

func main() {
	out := flag.String("o", "BENCH_results.json", "output path ('-' for stdout only)")
	sizeName := flag.String("size", "tiny", "workload size: tiny, small, large")
	iters := flag.Int("iters", 5, "engine-throughput iterations")
	fullSweep := flag.Bool("full-sweep", false, "run the sweep at the chosen size (default sweeps tiny)")
	flag.Parse()

	size, err := parseSize(*sizeName)
	if err != nil {
		fatal(err)
	}

	rep := Report{
		Schema:    "agingcgra-bench/v1",
		Timestamp: time.Now().UTC().Format(time.RFC3339),
		GoVersion: runtime.Version(),
		NumCPU:    runtime.NumCPU(),
		Size:      *sizeName,
	}

	engine, err := benchEngineThroughput(size, *iters)
	if err != nil {
		fatal(err)
	}
	rep.Results = append(rep.Results, engine)

	sweepSize := agingcgra.Tiny
	if *fullSweep {
		sweepSize = size
	}
	serial, parallel, err := benchFig6Sweep(sweepSize)
	if err != nil {
		fatal(err)
	}
	rep.Results = append(rep.Results, serial, parallel)

	life, err := benchLifetimeScenario()
	if err != nil {
		fatal(err)
	}
	rep.Results = append(rep.Results, life)

	blob, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fatal(err)
	}
	fmt.Println(string(blob))
	if *out != "-" {
		if err := os.WriteFile(*out, append(blob, '\n'), 0o644); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "wrote %s\n", *out)
	}
}

// benchEngineThroughput mirrors BenchmarkEngineThroughput: repeated crc32
// co-simulation on the BE design with the utilization-aware allocator.
func benchEngineThroughput(size agingcgra.Size, iters int) (Result, error) {
	s, err := agingcgra.NewSystem(agingcgra.Config{Allocator: "utilization-aware"})
	if err != nil {
		return Result{}, err
	}
	// Warm-up outside the timed region: assembles the kernel and memoizes
	// the GPP reference, as the steady state of a long-lived System.
	if _, err := s.RunBenchmark("crc32", size); err != nil {
		return Result{}, err
	}
	var instrs uint64
	start := time.Now()
	for i := 0; i < iters; i++ {
		res, err := s.RunBenchmark("crc32", size)
		if err != nil {
			return Result{}, err
		}
		instrs += res.Report.TotalInstrs
	}
	elapsed := time.Since(start)
	return Result{
		Name:         "EngineThroughput/crc32",
		Iterations:   iters,
		NsPerOp:      float64(elapsed.Nanoseconds()) / float64(iters),
		InstrsPerSec: float64(instrs) / elapsed.Seconds(),
	}, nil
}

// benchFig6Sweep times the 12-point design-space exploration serially and
// with the worker pool, reporting the parallel speedup.
func benchFig6Sweep(size agingcgra.Size) (serial, parallel Result, err error) {
	// Untimed warm-up so the one-time benchmark assembly cost doesn't land
	// on whichever timed run goes first and bias the speedup.
	if _, err := timeFig6(size, 1); err != nil {
		return Result{}, Result{}, err
	}
	time1, err := timeFig6(size, 1)
	if err != nil {
		return Result{}, Result{}, err
	}
	timeN, err := timeFig6(size, 0) // 0 = all CPUs
	if err != nil {
		return Result{}, Result{}, err
	}
	serial = Result{Name: "Fig6Sweep/serial", Iterations: 1, NsPerOp: float64(time1.Nanoseconds())}
	parallel = Result{
		Name:       "Fig6Sweep/parallel",
		Iterations: 1,
		NsPerOp:    float64(timeN.Nanoseconds()),
		SpeedupVs:  "Fig6Sweep/serial",
		Speedup:    float64(time1.Nanoseconds()) / float64(timeN.Nanoseconds()),
	}
	return serial, parallel, nil
}

// benchLifetimeScenario times the lifetime engine's hot loop: a 20-year
// BE-design scenario under the utilization-aware allocator, fabric failures
// included (so both the epoch memo and the post-death re-simulation paths
// are on the clock).
func benchLifetimeScenario() (Result, error) {
	cfg := agingcgra.LifetimeConfig{
		Allocator:  "utilization-aware",
		Benchmarks: []string{"crc32"},
		EpochYears: 0.25,
		MaxYears:   20,
	}
	// Warm-up: kernel assembly (cached process-wide). The timed region runs
	// the iterations as one batch so the stand-alone GPP reference is
	// memoized across them and paid once, not per iteration.
	if _, err := agingcgra.RunLifetime(cfg); err != nil {
		return Result{}, err
	}
	const iters = 3
	batch := make([]agingcgra.LifetimeConfig, iters)
	for i := range batch {
		batch[i] = cfg
	}
	var epochs int
	start := time.Now()
	results, err := agingcgra.RunLifetimes(batch, 1)
	if err != nil {
		return Result{}, err
	}
	for _, res := range results {
		epochs += len(res.Timeline)
	}
	elapsed := time.Since(start)
	return Result{
		Name:         "Lifetime/BE-snake-crc32-20y",
		Iterations:   iters,
		NsPerOp:      float64(elapsed.Nanoseconds()) / float64(iters),
		EpochsPerSec: float64(epochs) / elapsed.Seconds(),
	}, nil
}

func timeFig6(size agingcgra.Size, workers int) (time.Duration, error) {
	start := time.Now()
	if _, err := agingcgra.Fig6(agingcgra.ExperimentOptions{Size: size, Workers: workers}); err != nil {
		return 0, err
	}
	return time.Since(start), nil
}

func parseSize(s string) (agingcgra.Size, error) {
	switch s {
	case "tiny":
		return agingcgra.Tiny, nil
	case "small":
		return agingcgra.Small, nil
	case "large":
		return agingcgra.Large, nil
	}
	return 0, fmt.Errorf("unknown size %q", s)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "cgra-bench:", err)
	os.Exit(1)
}
