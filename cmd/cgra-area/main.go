// cgra-area evaluates the structural area model: Table II for the BE
// design by default, or any geometry via flags, including the full
// component inventory.
//
// Usage:
//
//	cgra-area -rows 2 -cols 16 -inventory
package main

import (
	"flag"
	"fmt"

	"agingcgra"
	"agingcgra/internal/area"
	"agingcgra/internal/fabric"
)

func main() {
	rows := flag.Int("rows", 2, "fabric rows (W)")
	cols := flag.Int("cols", 16, "fabric columns (L)")
	inventory := flag.Bool("inventory", false, "print the full component inventory")
	flag.Parse()

	if *rows == 2 && *cols == 16 {
		// The paper's Table II design: use the experiment driver.
		fmt.Println(agingcgra.Table2().Render())
	}

	m := area.NewModel()
	g := fabric.NewGeometry(*rows, *cols)
	o := m.Overhead(g)
	fmt.Println(o)
	fmt.Printf("column critical path: baseline %.0f ps, modified %.0f ps\n",
		m.ColumnCriticalPathPs(g, false), m.ColumnCriticalPathPs(g, true))
	fmt.Printf("config cache (128 entries): %.0f um2 (SRAM estimate)\n",
		m.ConfigCacheAreaUm2(g, 128))

	if *inventory {
		fmt.Println("\nbaseline inventory:")
		for _, c := range m.Baseline(g).Components {
			fmt.Printf("  %-24s %8d cells %10.0f um2\n", c.Name, c.Cells, c.Area)
		}
		fmt.Println("movement hardware:")
		for _, c := range m.MovementHardware(g).Components {
			fmt.Printf("  %-24s %8d cells %10.0f um2\n", c.Name, c.Cells, c.Area)
		}
	}
}
