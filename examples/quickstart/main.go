// Quickstart: build a TransRec system with the paper's utilization-aware
// allocation, run one benchmark, and look at what the aging mitigation did.
package main

import (
	"fmt"
	"log"

	"agingcgra"
	"agingcgra/internal/report"
)

func main() {
	// The paper's BE design: 16 columns, 2 rows, utilization-aware
	// allocation with the snake movement pattern of Fig. 3.
	sys, err := agingcgra.NewSystem(agingcgra.Config{
		Rows:      2,
		Cols:      16,
		Allocator: "utilization-aware",
	})
	if err != nil {
		log.Fatal(err)
	}

	// Run the CRC32 benchmark at the paper's "small" input scale. The
	// result is validated against Go's hash/crc32 internally.
	res, err := sys.RunBenchmark("crc32", agingcgra.Small)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("crc32 on %v:\n", sys.Geometry())
	fmt.Printf("  checksum     %#x\n", res.Checksum)
	fmt.Printf("  speedup      %.2fx over the stand-alone GPP\n", res.Speedup())
	fmt.Printf("  energy       %.2fx relative to the GPP\n", res.RelEnergy)
	fmt.Printf("  offloaded    %.1f%% of dynamic instructions\n", 100*res.Report.OffloadRate())

	maxD, cell := res.Report.Util.Max()
	fmt.Printf("  worst FU     %.1f%% duty at (R%d,C%d)\n\n", 100*maxD, cell.Row+1, cell.Col+1)
	fmt.Println("per-FU utilization (note how flat rotation keeps it):")
	fmt.Print(report.Heatmap(res.Report.Util))
}
