// Custom kernel: write your own RV32IM assembly, run it through the whole
// TransRec pipeline — GPP execution, dynamic binary translation, CGRA
// offloading with utilization-aware allocation — and check the result.
//
// The kernel is a fixed-point dot product with saturation, a typical DSP
// inner loop the paper's system would accelerate transparently.
package main

import (
	"fmt"
	"log"

	"agingcgra/internal/alloc"
	"agingcgra/internal/dbt"
	"agingcgra/internal/fabric"
	"agingcgra/internal/gpp"
	"agingcgra/internal/isa"
	"agingcgra/internal/report"
)

const kernel = `
# Q15 dot product with saturation.
# inputs:  vecA, vecB (halfwords), params[0] = element count
# output:  a0 = saturated accumulator
_start:
	la   s0, vecA
	la   s1, vecB
	la   t0, params
	lw   s2, 0(t0)          # n
	li   s3, 0              # acc (32-bit)
	li   t0, 0              # i
loop:
	slli t1, t0, 1
	add  t2, t1, s0
	lh   t3, 0(t2)          # a[i]
	add  t2, t1, s1
	lh   t4, 0(t2)          # b[i]
	mul  t5, t3, t4
	srai t5, t5, 15         # Q15 renormalise
	add  s3, s3, t5
	addi t0, t0, 1
	blt  t0, s2, loop
	# saturate to 16 bits
	li   t1, 32767
	ble  s3, t1, not_hi
	mv   s3, t1
not_hi:
	li   t1, -32768
	bge  s3, t1, done
	mv   s3, t1
done:
	mv   a0, s3
	ecall
`

func main() {
	const n = 512
	const base = uint32(0x10000)

	// 1. Assemble against a custom data layout.
	symbols := map[string]uint32{
		"params": base,
		"vecA":   base + 16,
		"vecB":   base + 16 + 2*n,
	}
	prog, err := isa.Assemble(kernel, isa.AsmOptions{TextBase: gpp.TextBase, Symbols: symbols})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("assembled %d instructions\n", len(prog.Text))

	// 2. Load the core and write the input vectors.
	core := gpp.New(prog)
	if err := core.Mem.StoreWord(symbols["params"], n); err != nil {
		log.Fatal(err)
	}
	var want int32
	for i := 0; i < n; i++ {
		a := int16((i*2913 + 7) % 65536)
		b := int16((i*1117 + 3) % 65536)
		if err := core.Mem.StoreHalf(symbols["vecA"]+uint32(2*i), uint16(a)); err != nil {
			log.Fatal(err)
		}
		if err := core.Mem.StoreHalf(symbols["vecB"]+uint32(2*i), uint16(b)); err != nil {
			log.Fatal(err)
		}
		want += int32(a) * int32(b) >> 15
	}
	if want > 32767 {
		want = 32767
	}
	if want < -32768 {
		want = -32768
	}

	// 3. Run through the full TransRec engine with the paper's allocator.
	geom := fabric.NewGeometry(2, 16)
	eng, err := dbt.NewEngine(dbt.Options{
		Geom:      geom,
		Allocator: alloc.NewUtilizationAware(geom),
	})
	if err != nil {
		log.Fatal(err)
	}
	rep, err := eng.Run(core, 10_000_000)
	if err != nil {
		log.Fatal(err)
	}

	got := int32(core.Regs[isa.A0])
	fmt.Printf("dot product = %d (reference %d)\n", got, want)
	if got != want {
		log.Fatal("MISMATCH: kernel result differs from reference")
	}

	fmt.Printf("offloaded %.1f%% of %d instructions in %d offloads\n",
		100*rep.OffloadRate(), rep.TotalInstrs, rep.Offloads)
	fmt.Printf("CGRA time: %d cycles total\n", rep.TotalCycles)
	fmt.Println("\nutilization after this kernel alone:")
	fmt.Print(report.Heatmap(rep.Util))
}
