// Lifetime planning: use the NBTI model (Eq. 1 of the paper) the way a
// product team would — exploring how temperature, supply voltage and the
// allocation strategy trade against end-of-life and frequency guardbands.
package main

import (
	"fmt"

	"agingcgra/internal/aging"
	"agingcgra/internal/report"
)

func main() {
	model := aging.NewModel()

	fmt.Println("NBTI lifetime planning with Eq. 1 (10% delay degradation = end of life)")
	fmt.Println()

	// 1. Lifetime vs worst-case utilization: the knob the paper's
	// allocator turns.
	tab := &report.Table{Header: []string{"worst-case utilization", "lifetime", "delay @ 3y", "safe freq @ 3y"}}
	for _, u := range []float64{1.0, 0.945, 0.75, 0.5, 0.411, 0.224, 0.123, 0.05} {
		tab.AddRow(
			fmt.Sprintf("%.1f%%", 100*u),
			fmt.Sprintf("%5.1f years", model.Lifetime(u)),
			fmt.Sprintf("%.2f%%", 100*model.DelayIncrease(3, u)),
			fmt.Sprintf("%.1f%% of nominal", 100*model.GuardbandFrequency(3, u)),
		)
	}
	fmt.Print(tab.String())
	fmt.Println()

	// 2. Environmental sensitivity: the same fabric in a hotter enclosure
	// or at a higher voltage corner.
	fmt.Println("delay degradation after 3 years at 94.5% utilization (BE baseline):")
	env := &report.Table{Header: []string{"corner", "T [K]", "Vdd [V]", "delta-Vt [mV]"}}
	for _, c := range []struct {
		name string
		t, v float64
	}{
		{"cool, low voltage", 320, 0.7},
		{"nominal", 350, 0.8},
		{"hot", 380, 0.8},
		{"hot, overdrive", 380, 0.9},
	} {
		cond := aging.DefaultConditions()
		cond.TemperatureK = c.t
		cond.Vdd = c.v
		env.AddRow(c.name,
			fmt.Sprintf("%.0f", c.t),
			fmt.Sprintf("%.1f", c.v),
			fmt.Sprintf("%.3f", 1000*cond.DeltaVt(3, 0.945)))
	}
	fmt.Print(env.String())
	fmt.Println()

	// 3. The paper's headline, in planning terms.
	fmt.Println("planning view of the paper's BE scenario:")
	fmt.Printf("  baseline (worst 94.5%%): replace or re-guardband after %.1f years\n",
		model.Lifetime(0.945))
	fmt.Printf("  proposed (worst 41.1%%): replace or re-guardband after %.1f years\n",
		model.Lifetime(0.411))
	fmt.Printf("  the rotation hardware costs <10%% area and buys %.2fx product life\n",
		model.Improvement(0.945, 0.411))
}
