// Lifetime planning: use the NBTI model (Eq. 1 of the paper) and the
// long-horizon lifetime simulator the way a product team would — first the
// closed-form trade-offs (temperature, voltage, utilization vs end-of-life
// and frequency guardbands), then an actual multi-year simulation of the BE
// design under both allocators, watching FUs die and performance decay.
package main

import (
	"fmt"
	"log"

	"agingcgra"
	"agingcgra/internal/aging"
	"agingcgra/internal/report"
)

func main() {
	model := aging.NewModel()

	fmt.Println("NBTI lifetime planning with Eq. 1 (10% delay degradation = end of life)")
	fmt.Println()

	// 1. Lifetime vs worst-case utilization: the knob the paper's
	// allocator turns.
	tab := &report.Table{Header: []string{"worst-case utilization", "lifetime", "delay @ 3y", "safe freq @ 3y"}}
	for _, u := range []float64{1.0, 0.945, 0.75, 0.5, 0.411, 0.224, 0.123, 0.05} {
		tab.AddRow(
			fmt.Sprintf("%.1f%%", 100*u),
			fmt.Sprintf("%5.1f years", model.Lifetime(u)),
			fmt.Sprintf("%.2f%%", 100*model.DelayIncrease(3, u)),
			fmt.Sprintf("%.1f%% of nominal", 100*model.GuardbandFrequency(3, u)),
		)
	}
	fmt.Print(tab.String())
	fmt.Println()

	// 2. Environmental sensitivity: the same fabric in a hotter enclosure
	// or at a higher voltage corner ages faster by the acceleration factor.
	env := &report.Table{Header: []string{"corner", "T [K]", "Vdd [V]", "aging acceleration"}}
	for _, c := range []struct {
		name string
		t, v float64
	}{
		{"cool, low voltage", 320, 0.7},
		{"nominal", 350, 0.8},
		{"hot", 380, 0.8},
		{"hot, overdrive", 380, 0.9},
	} {
		cond := aging.DefaultConditions()
		cond.TemperatureK = c.t
		cond.Vdd = c.v
		env.AddRow(c.name,
			fmt.Sprintf("%.0f", c.t),
			fmt.Sprintf("%.1f", c.v),
			fmt.Sprintf("%.2fx", model.AccelerationFactor(cond)))
	}
	fmt.Print(env.String())
	fmt.Println()

	// 3. The multi-year simulation: play the BE design forward under all
	// three allocators with a crc32+sha duty mix — the blind rotation, the
	// baseline, and the wear-aware placement explorer that keeps adapting
	// to the accumulated stress map as FUs age and die.
	fmt.Println("simulating 20 years of the BE design (crc32+sha mix, 0.5-year epochs):")
	results, err := agingcgra.RunLifetimes([]agingcgra.LifetimeConfig{
		{Allocator: "baseline", Benchmarks: []string{"crc32", "sha"}, MaxYears: 20},
		{Allocator: "utilization-aware", Benchmarks: []string{"crc32", "sha"}, MaxYears: 20},
		{Allocator: "explore", Benchmarks: []string{"crc32", "sha"}, MaxYears: 20},
	}, 0)
	if err != nil {
		log.Fatal(err)
	}
	sim := &report.Table{Header: []string{
		"scenario", "worst util", "1st death", "2nd death", "dead @ 20y", "speedup @ 0y", "speedup @ 20y"}}
	for _, r := range results {
		death := func(n int) string {
			if y := r.NthDeathYears(n); y > 0 {
				return fmt.Sprintf("%.1f years", y)
			}
			return "none"
		}
		sim.AddRow(
			r.AllocatorName,
			fmt.Sprintf("%.1f%%", 100*r.Timeline[0].WorstUtil),
			death(1),
			death(2),
			fmt.Sprintf("%d FUs", r.TotalDeaths),
			fmt.Sprintf("%.2fx", r.InitialSpeedup),
			fmt.Sprintf("%.2fx", r.FinalSpeedup),
		)
	}
	fmt.Print(sim.String())
	fmt.Println()

	base, prop := results[0], results[1]
	if base.FirstDeathYears > 0 && prop.FirstDeathYears > 0 {
		fmt.Printf("planning view: rotation hardware costs <10%% area and moves the first\n")
		fmt.Printf("FU failure from %.1f to %.1f years — %.2fx, the worst-utilization ratio\n",
			base.FirstDeathYears, prop.FirstDeathYears,
			prop.FirstDeathYears/base.FirstDeathYears)
		fmt.Printf("(closed form: %.2fx). Full timelines: go run ./cmd/cgra-lifetime\n",
			model.Improvement(base.Timeline[0].WorstUtil, prop.Timeline[0].WorstUtil))
	}
}
